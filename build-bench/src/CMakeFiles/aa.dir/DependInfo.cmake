
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/aa.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/aa.dir/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/aa.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/aa.dir/common/rng.cpp.o.d"
  "/root/repo/src/core/baseline.cpp" "src/CMakeFiles/aa.dir/core/baseline.cpp.o" "gcc" "src/CMakeFiles/aa.dir/core/baseline.cpp.o.d"
  "/root/repo/src/core/closeness.cpp" "src/CMakeFiles/aa.dir/core/closeness.cpp.o" "gcc" "src/CMakeFiles/aa.dir/core/closeness.cpp.o.d"
  "/root/repo/src/core/distance_store.cpp" "src/CMakeFiles/aa.dir/core/distance_store.cpp.o" "gcc" "src/CMakeFiles/aa.dir/core/distance_store.cpp.o.d"
  "/root/repo/src/core/edge_add.cpp" "src/CMakeFiles/aa.dir/core/edge_add.cpp.o" "gcc" "src/CMakeFiles/aa.dir/core/edge_add.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/aa.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/aa.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/ia.cpp" "src/CMakeFiles/aa.dir/core/ia.cpp.o" "gcc" "src/CMakeFiles/aa.dir/core/ia.cpp.o.d"
  "/root/repo/src/core/quality.cpp" "src/CMakeFiles/aa.dir/core/quality.cpp.o" "gcc" "src/CMakeFiles/aa.dir/core/quality.cpp.o.d"
  "/root/repo/src/core/rc.cpp" "src/CMakeFiles/aa.dir/core/rc.cpp.o" "gcc" "src/CMakeFiles/aa.dir/core/rc.cpp.o.d"
  "/root/repo/src/core/repartition.cpp" "src/CMakeFiles/aa.dir/core/repartition.cpp.o" "gcc" "src/CMakeFiles/aa.dir/core/repartition.cpp.o.d"
  "/root/repo/src/core/strategies.cpp" "src/CMakeFiles/aa.dir/core/strategies.cpp.o" "gcc" "src/CMakeFiles/aa.dir/core/strategies.cpp.o.d"
  "/root/repo/src/core/subgraph.cpp" "src/CMakeFiles/aa.dir/core/subgraph.cpp.o" "gcc" "src/CMakeFiles/aa.dir/core/subgraph.cpp.o.d"
  "/root/repo/src/graph/community.cpp" "src/CMakeFiles/aa.dir/graph/community.cpp.o" "gcc" "src/CMakeFiles/aa.dir/graph/community.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/CMakeFiles/aa.dir/graph/csr.cpp.o" "gcc" "src/CMakeFiles/aa.dir/graph/csr.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/aa.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/aa.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/aa.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/aa.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/aa.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/aa.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/metrics.cpp" "src/CMakeFiles/aa.dir/graph/metrics.cpp.o" "gcc" "src/CMakeFiles/aa.dir/graph/metrics.cpp.o.d"
  "/root/repo/src/measures/betweenness.cpp" "src/CMakeFiles/aa.dir/measures/betweenness.cpp.o" "gcc" "src/CMakeFiles/aa.dir/measures/betweenness.cpp.o.d"
  "/root/repo/src/measures/degree.cpp" "src/CMakeFiles/aa.dir/measures/degree.cpp.o" "gcc" "src/CMakeFiles/aa.dir/measures/degree.cpp.o.d"
  "/root/repo/src/measures/pagerank.cpp" "src/CMakeFiles/aa.dir/measures/pagerank.cpp.o" "gcc" "src/CMakeFiles/aa.dir/measures/pagerank.cpp.o.d"
  "/root/repo/src/partition/coarsen.cpp" "src/CMakeFiles/aa.dir/partition/coarsen.cpp.o" "gcc" "src/CMakeFiles/aa.dir/partition/coarsen.cpp.o.d"
  "/root/repo/src/partition/initial.cpp" "src/CMakeFiles/aa.dir/partition/initial.cpp.o" "gcc" "src/CMakeFiles/aa.dir/partition/initial.cpp.o.d"
  "/root/repo/src/partition/matching.cpp" "src/CMakeFiles/aa.dir/partition/matching.cpp.o" "gcc" "src/CMakeFiles/aa.dir/partition/matching.cpp.o.d"
  "/root/repo/src/partition/multilevel.cpp" "src/CMakeFiles/aa.dir/partition/multilevel.cpp.o" "gcc" "src/CMakeFiles/aa.dir/partition/multilevel.cpp.o.d"
  "/root/repo/src/partition/partition.cpp" "src/CMakeFiles/aa.dir/partition/partition.cpp.o" "gcc" "src/CMakeFiles/aa.dir/partition/partition.cpp.o.d"
  "/root/repo/src/partition/refine.cpp" "src/CMakeFiles/aa.dir/partition/refine.cpp.o" "gcc" "src/CMakeFiles/aa.dir/partition/refine.cpp.o.d"
  "/root/repo/src/partition/simple.cpp" "src/CMakeFiles/aa.dir/partition/simple.cpp.o" "gcc" "src/CMakeFiles/aa.dir/partition/simple.cpp.o.d"
  "/root/repo/src/runtime/alltoall.cpp" "src/CMakeFiles/aa.dir/runtime/alltoall.cpp.o" "gcc" "src/CMakeFiles/aa.dir/runtime/alltoall.cpp.o.d"
  "/root/repo/src/runtime/cluster.cpp" "src/CMakeFiles/aa.dir/runtime/cluster.cpp.o" "gcc" "src/CMakeFiles/aa.dir/runtime/cluster.cpp.o.d"
  "/root/repo/src/runtime/logp.cpp" "src/CMakeFiles/aa.dir/runtime/logp.cpp.o" "gcc" "src/CMakeFiles/aa.dir/runtime/logp.cpp.o.d"
  "/root/repo/src/runtime/mailbox.cpp" "src/CMakeFiles/aa.dir/runtime/mailbox.cpp.o" "gcc" "src/CMakeFiles/aa.dir/runtime/mailbox.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "src/CMakeFiles/aa.dir/runtime/thread_pool.cpp.o" "gcc" "src/CMakeFiles/aa.dir/runtime/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
