file(REMOVE_RECURSE
  "libaa.a"
)
