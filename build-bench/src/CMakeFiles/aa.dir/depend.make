# Empty dependencies file for aa.
# This may be replaced when dependencies are built.
