file(REMOVE_RECURSE
  "CMakeFiles/temporal_replay.dir/temporal_replay.cpp.o"
  "CMakeFiles/temporal_replay.dir/temporal_replay.cpp.o.d"
  "temporal_replay"
  "temporal_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
