# Empty dependencies file for temporal_replay.
# This may be replaced when dependencies are built.
