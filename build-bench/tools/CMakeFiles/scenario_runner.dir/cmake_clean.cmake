file(REMOVE_RECURSE
  "CMakeFiles/scenario_runner.dir/scenario_runner.cpp.o"
  "CMakeFiles/scenario_runner.dir/scenario_runner.cpp.o.d"
  "scenario_runner"
  "scenario_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
