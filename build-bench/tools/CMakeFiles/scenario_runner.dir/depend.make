# Empty dependencies file for scenario_runner.
# This may be replaced when dependencies are built.
