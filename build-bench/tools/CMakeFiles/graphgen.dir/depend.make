# Empty dependencies file for graphgen.
# This may be replaced when dependencies are built.
