file(REMOVE_RECURSE
  "CMakeFiles/graphgen.dir/graphgen.cpp.o"
  "CMakeFiles/graphgen.dir/graphgen.cpp.o.d"
  "graphgen"
  "graphgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
