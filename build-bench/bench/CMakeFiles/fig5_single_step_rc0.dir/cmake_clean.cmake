file(REMOVE_RECURSE
  "CMakeFiles/fig5_single_step_rc0.dir/fig5_single_step_rc0.cpp.o"
  "CMakeFiles/fig5_single_step_rc0.dir/fig5_single_step_rc0.cpp.o.d"
  "fig5_single_step_rc0"
  "fig5_single_step_rc0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_single_step_rc0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
