# Empty dependencies file for fig5_single_step_rc0.
# This may be replaced when dependencies are built.
