file(REMOVE_RECURSE
  "CMakeFiles/fig6_single_step_rc8.dir/fig6_single_step_rc8.cpp.o"
  "CMakeFiles/fig6_single_step_rc8.dir/fig6_single_step_rc8.cpp.o.d"
  "fig6_single_step_rc8"
  "fig6_single_step_rc8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_single_step_rc8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
