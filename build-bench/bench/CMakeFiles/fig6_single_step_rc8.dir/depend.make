# Empty dependencies file for fig6_single_step_rc8.
# This may be replaced when dependencies are built.
