# Empty dependencies file for ablate_betweenness_anytime.
# This may be replaced when dependencies are built.
