file(REMOVE_RECURSE
  "CMakeFiles/ablate_betweenness_anytime.dir/ablate_betweenness_anytime.cpp.o"
  "CMakeFiles/ablate_betweenness_anytime.dir/ablate_betweenness_anytime.cpp.o.d"
  "ablate_betweenness_anytime"
  "ablate_betweenness_anytime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_betweenness_anytime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
