file(REMOVE_RECURSE
  "CMakeFiles/ablate_anytime_quality.dir/ablate_anytime_quality.cpp.o"
  "CMakeFiles/ablate_anytime_quality.dir/ablate_anytime_quality.cpp.o.d"
  "ablate_anytime_quality"
  "ablate_anytime_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_anytime_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
