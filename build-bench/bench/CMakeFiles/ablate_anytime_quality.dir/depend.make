# Empty dependencies file for ablate_anytime_quality.
# This may be replaced when dependencies are built.
