# Empty dependencies file for ablate_partitioners.
# This may be replaced when dependencies are built.
