file(REMOVE_RECURSE
  "CMakeFiles/ablate_partitioners.dir/ablate_partitioners.cpp.o"
  "CMakeFiles/ablate_partitioners.dir/ablate_partitioners.cpp.o.d"
  "ablate_partitioners"
  "ablate_partitioners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_partitioners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
