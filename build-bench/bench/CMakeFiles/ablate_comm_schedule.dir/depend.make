# Empty dependencies file for ablate_comm_schedule.
# This may be replaced when dependencies are built.
