file(REMOVE_RECURSE
  "CMakeFiles/ablate_comm_schedule.dir/ablate_comm_schedule.cpp.o"
  "CMakeFiles/ablate_comm_schedule.dir/ablate_comm_schedule.cpp.o.d"
  "ablate_comm_schedule"
  "ablate_comm_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_comm_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
