# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig7_new_cut_edges.
