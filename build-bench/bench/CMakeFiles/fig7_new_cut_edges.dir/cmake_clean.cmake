file(REMOVE_RECURSE
  "CMakeFiles/fig7_new_cut_edges.dir/fig7_new_cut_edges.cpp.o"
  "CMakeFiles/fig7_new_cut_edges.dir/fig7_new_cut_edges.cpp.o.d"
  "fig7_new_cut_edges"
  "fig7_new_cut_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_new_cut_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
