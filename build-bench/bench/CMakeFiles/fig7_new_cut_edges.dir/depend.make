# Empty dependencies file for fig7_new_cut_edges.
# This may be replaced when dependencies are built.
