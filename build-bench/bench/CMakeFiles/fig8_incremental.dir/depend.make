# Empty dependencies file for fig8_incremental.
# This may be replaced when dependencies are built.
