file(REMOVE_RECURSE
  "CMakeFiles/fig8_incremental.dir/fig8_incremental.cpp.o"
  "CMakeFiles/fig8_incremental.dir/fig8_incremental.cpp.o.d"
  "fig8_incremental"
  "fig8_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
