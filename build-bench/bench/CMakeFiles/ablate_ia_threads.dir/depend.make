# Empty dependencies file for ablate_ia_threads.
# This may be replaced when dependencies are built.
