file(REMOVE_RECURSE
  "CMakeFiles/ablate_ia_threads.dir/ablate_ia_threads.cpp.o"
  "CMakeFiles/ablate_ia_threads.dir/ablate_ia_threads.cpp.o.d"
  "ablate_ia_threads"
  "ablate_ia_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_ia_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
