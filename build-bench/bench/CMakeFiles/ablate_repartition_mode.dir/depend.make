# Empty dependencies file for ablate_repartition_mode.
# This may be replaced when dependencies are built.
