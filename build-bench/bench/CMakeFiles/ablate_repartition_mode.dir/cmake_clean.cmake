file(REMOVE_RECURSE
  "CMakeFiles/ablate_repartition_mode.dir/ablate_repartition_mode.cpp.o"
  "CMakeFiles/ablate_repartition_mode.dir/ablate_repartition_mode.cpp.o.d"
  "ablate_repartition_mode"
  "ablate_repartition_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_repartition_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
