# Empty dependencies file for aa_bench_common.
# This may be replaced when dependencies are built.
