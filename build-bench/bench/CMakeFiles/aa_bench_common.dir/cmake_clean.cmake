file(REMOVE_RECURSE
  "CMakeFiles/aa_bench_common.dir/harness.cpp.o"
  "CMakeFiles/aa_bench_common.dir/harness.cpp.o.d"
  "libaa_bench_common.a"
  "libaa_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aa_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
