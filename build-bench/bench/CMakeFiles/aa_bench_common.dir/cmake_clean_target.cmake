file(REMOVE_RECURSE
  "libaa_bench_common.a"
)
