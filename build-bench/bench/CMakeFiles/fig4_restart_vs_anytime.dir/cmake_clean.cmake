file(REMOVE_RECURSE
  "CMakeFiles/fig4_restart_vs_anytime.dir/fig4_restart_vs_anytime.cpp.o"
  "CMakeFiles/fig4_restart_vs_anytime.dir/fig4_restart_vs_anytime.cpp.o.d"
  "fig4_restart_vs_anytime"
  "fig4_restart_vs_anytime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_restart_vs_anytime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
