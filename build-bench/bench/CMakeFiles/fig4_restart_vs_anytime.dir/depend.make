# Empty dependencies file for fig4_restart_vs_anytime.
# This may be replaced when dependencies are built.
