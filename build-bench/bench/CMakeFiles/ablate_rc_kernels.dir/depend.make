# Empty dependencies file for ablate_rc_kernels.
# This may be replaced when dependencies are built.
