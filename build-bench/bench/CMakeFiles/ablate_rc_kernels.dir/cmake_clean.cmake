file(REMOVE_RECURSE
  "CMakeFiles/ablate_rc_kernels.dir/ablate_rc_kernels.cpp.o"
  "CMakeFiles/ablate_rc_kernels.dir/ablate_rc_kernels.cpp.o.d"
  "ablate_rc_kernels"
  "ablate_rc_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_rc_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
