file(REMOVE_RECURSE
  "CMakeFiles/ablate_scaling.dir/ablate_scaling.cpp.o"
  "CMakeFiles/ablate_scaling.dir/ablate_scaling.cpp.o.d"
  "ablate_scaling"
  "ablate_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
