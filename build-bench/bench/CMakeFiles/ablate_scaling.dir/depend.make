# Empty dependencies file for ablate_scaling.
# This may be replaced when dependencies are built.
