// Per-rank outbox/inbox pairs. Messages posted during a superstep are
// buffered in the sender's outbox and only become visible in receivers'
// inboxes after the cluster runs its exchange — mirroring a BSP-style
// communication phase.
//
// Concurrency contract: post(message) touches only outboxes_[message.from]
// and take_inbox(r) only inboxes_[r], so distinct ranks may post/drain
// concurrently (the ThreadedBackend compute phase). Everything that crosses
// boxes — deliver / deliver_all / has_pending / peek_outbox — is driver-only
// and must not overlap any rank-side call.
#pragma once

#include <vector>

#include "runtime/message.hpp"

namespace aa {

class MailboxSystem {
public:
    explicit MailboxSystem(std::uint32_t num_ranks);

    std::uint32_t num_ranks() const { return static_cast<std::uint32_t>(inboxes_.size()); }

    /// Buffer a message in `from`'s outbox.
    void post(Message message);

    /// True if any rank has a buffered outgoing message.
    bool has_pending() const;

    /// Move all outbox messages into receiver inboxes, ordered by the given
    /// (from, to) schedule; pairs without a pending message are skipped.
    /// Messages not covered by the schedule remain buffered. Returns the
    /// delivered messages' total payload bytes.
    std::size_t deliver(const std::vector<std::pair<RankId, RankId>>& schedule);

    /// Deliver everything (arbitrary but deterministic order).
    std::size_t deliver_all();

    /// Drain every outbox *without* delivering: the messages are returned in
    /// the canonical all-to-all order — pair (from, to) order of the given
    /// schedule, post order within a pair — which is exactly the inbox order
    /// deliver() would have produced per receiver. The event-driven exchange
    /// uses this to take custody of the in-flight messages and hand each to
    /// its receiver at its own simulated arrival time instead of at a
    /// collective barrier. Messages not covered by the schedule remain
    /// buffered. Driver-only, like deliver().
    std::vector<Message> drain_outboxes(
        const std::vector<std::pair<RankId, RankId>>& schedule);

    /// Drain and return rank r's inbox.
    std::vector<Message> take_inbox(RankId r);

    const std::vector<Message>& peek_outbox(RankId r) const;

private:
    std::vector<std::vector<Message>> outboxes_;
    std::vector<std::vector<Message>> inboxes_;
};

}  // namespace aa
