#include "runtime/logp.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace aa {

double LogPParams::message_time(std::size_t bytes) const {
    AA_ASSERT(max_message_bytes > 0);
    const std::size_t chunks =
        bytes == 0 ? 1 : (bytes + max_message_bytes - 1) / max_message_bytes;
    return static_cast<double>(chunks) * (2 * overhead + latency) +
           static_cast<double>(bytes) * gap_per_byte;
}

double LogPParams::compute_time(double ops, std::size_t threads) const {
    AA_ASSERT(threads >= 1);
    AA_ASSERT(ops >= 0);
    return ops * seconds_per_op / static_cast<double>(threads);
}

void SimClock::advance(double seconds) {
    AA_ASSERT_MSG(seconds >= 0, "clock cannot run backwards");
    now_ += seconds;
}

void SimClock::advance_to(double t) { now_ = std::max(now_, t); }

}  // namespace aa
