// ExecutionBackend: who runs the per-rank phase bodies.
//
// The paper's RC loop is embarrassingly rank-parallel — between collectives,
// each simulated processor only touches its own sub-graph, its own
// DistanceStore rows, its own clock and its own outbox. The engine therefore
// expresses every per-rank phase (IA Dijkstra, RC post/ingest/propagate,
// addition extend/propagate, repartition seeding and re-marking) as a closure
// over one rank's state and hands the *execution* of those closures to a
// pluggable backend:
//
//   * SequentialBackend — ascending rank order on the calling thread. This is
//     the historical behavior and the default; results, telemetry span order
//     and simulated-time pricing are bit-identical to the pre-backend engine.
//   * ThreadedBackend — the closures run concurrently on a private worker
//     pool (thread-per-rank when sized by the engine default), so real cores
//     execute ranks in parallel between the collectives, exactly like the
//     OpenMP/MPI deployment the paper measures.
//
// Determinism contract: for a fixed seed and config, closeness output and
// sim_seconds() are bit-identical across backends and thread schedules. The
// engine earns that by construction —
//   * rank closures only mutate rank-confined state (see the concurrency
//     contracts on Cluster, MailboxSystem and DistanceStore), so no
//     interleaving can change any rank's values;
//   * floating-point accumulations across ranks (report ops, step stats) are
//     reduced from per-rank slots in ascending rank order after the barrier,
//     never in completion order;
//   * telemetry spans are buffered per rank inside the closure and merged in
//     rank order at the barrier (MetricsRegistry is single-writer);
//   * simulated-time pricing is per-rank clock arithmetic, unaffected by who
//     advances the clock or when.
// tests/test_backend.cpp enforces the contract property-style over graphs ×
// P × schedules × backends, including mid-RC addition batches.
//
// run_ranks() is a barrier: it returns only after every closure has finished,
// with all their writes visible to the caller (the driver thread). Collective
// operations (exchange, broadcast, barrier, stats reads) stay on the driver
// thread between run_ranks() calls. The event-driven RC exchange keeps the
// same shape: pipelined_exchange() and the EventQueue processing loop
// (including relax-on-arrival ingest) run entirely on the driver thread
// between rank phases, so the event order — and with it the async delivery
// trace — is identical across backends and across repeated threaded runs.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string_view>

#include "common/types.hpp"
#include "runtime/thread_pool.hpp"

namespace aa {

/// Backend selector carried by EngineConfig and the tools' --backend flag.
enum class BackendKind {
    Sequential,  // "seq": rank loops on the driver thread (default)
    Threaded,    // "threaded": one worker per rank between collectives
};

/// Canonical flag spelling ("seq" / "threaded").
std::string_view backend_kind_name(BackendKind kind);

/// Parse a --backend flag value. Returns false (leaving `kind` untouched) for
/// anything but the canonical spellings.
bool parse_backend_kind(std::string_view name, BackendKind& kind);

class ExecutionBackend {
public:
    virtual ~ExecutionBackend() = default;

    /// Canonical name (matches backend_kind_name of the kind that made it).
    virtual std::string_view name() const = 0;

    /// True when run_ranks may execute closures concurrently. The engine uses
    /// this to keep the shared intra-rank ThreadPool out of the kernels in
    /// concurrent mode (each rank then runs its kernels on its own worker;
    /// pricing is unaffected — see AnytimeEngine::ia_pool()).
    virtual bool concurrent() const = 0;

    /// Execute fn(r) once for every rank r in [0, num_ranks) and return when
    /// all of them completed (barrier semantics: every write a closure made
    /// happens-before the return). fn must confine itself to rank-r state
    /// plus the rank-confined Cluster/MailboxSystem entry points
    /// (charge_compute / send / receive of its own rank) and must not throw.
    virtual void run_ranks(std::size_t num_ranks,
                           const std::function<void(RankId)>& fn) = 0;
};

/// Ascending rank order on the calling thread — the reference execution.
class SequentialBackend final : public ExecutionBackend {
public:
    std::string_view name() const override { return "seq"; }
    bool concurrent() const override { return false; }
    void run_ranks(std::size_t num_ranks,
                   const std::function<void(RankId)>& fn) override;
};

/// Concurrent execution on a private pool. `workers` worker threads plus the
/// calling thread execute the rank closures; the factory sizes it at P
/// workers by default so every rank gets its own executor (thread-per-rank).
/// With fewer workers than ranks, contiguous rank ranges share an executor —
/// still concurrent across ranges, still deterministic by contract.
/// `workers <= 1` degenerates to inline (sequential) execution — correct,
/// just without parallelism, the expected situation on a single-core host.
class ThreadedBackend final : public ExecutionBackend {
public:
    explicit ThreadedBackend(std::size_t workers);

    std::string_view name() const override { return "threaded"; }
    bool concurrent() const override { return true; }
    void run_ranks(std::size_t num_ranks,
                   const std::function<void(RankId)>& fn) override;

private:
    ThreadPool pool_;
};

/// Factory keyed by EngineConfig: `workers` only applies to Threaded (0 picks
/// num_ranks, i.e. thread-per-rank).
std::unique_ptr<ExecutionBackend> make_backend(BackendKind kind,
                                               std::size_t num_ranks,
                                               std::size_t workers = 0);

}  // namespace aa
