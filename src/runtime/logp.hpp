// LogP/LogGP cost model for the simulated cluster.
//
// The paper analyses its algorithm under LogP (latency L, per-message overhead
// o, gap g, processors P) and evaluates on a 32-node 1 Gb/s Ethernet cluster.
// We execute all ranks in one process and *price* their real, counted work
// with this model: computation is counted in abstract operations, and
// communication in messages and bytes under the paper's serialized
// personalized all-to-all schedule. The simulated time this produces plays
// the role of the paper's measured wall time (see DESIGN.md §2).
#pragma once

#include <cstddef>

namespace aa {

struct LogPParams {
    /// Wire latency per message (seconds). L in LogP.
    double latency{50e-6};
    /// CPU overhead to send or receive one message (seconds). o in LogP.
    double overhead{5e-6};
    /// Per-byte gap, i.e. inverse bandwidth (seconds/byte). G in LogGP.
    /// Default: 1 Gb/s Ethernet = 125 MB/s => 8 ns/byte.
    double gap_per_byte{8e-9};
    /// Seconds per abstract computation operation (one distance comparison /
    /// relaxation step). Default 2 ns ~ a few cycles on the paper's Xeons.
    double seconds_per_op{2e-9};
    /// Maximum size of one message on the wire; larger payloads are chunked.
    /// The paper bounds message size by processor memory and chooses it "such
    /// that the network remains lightly loaded".
    std::size_t max_message_bytes{1 << 20};

    /// Time to push one payload of `bytes` through the network, including
    /// chunking and the sender+receiver overheads per chunk.
    double message_time(std::size_t bytes) const;

    /// Time for `ops` operations spread over `threads` threads (the paper's
    /// O(ops / T) multithreaded IA model).
    double compute_time(double ops, std::size_t threads = 1) const;
};

/// A monotonically advancing simulated clock, one per rank.
class SimClock {
public:
    double now() const { return now_; }

    void advance(double seconds);

    /// Jump forward to `t` if it is later than now (barrier semantics).
    void advance_to(double t);

private:
    double now_{0};
};

}  // namespace aa
