// LogP/LogGP cost model for the simulated cluster.
//
// The paper analyses its algorithm under LogP (latency L, per-message overhead
// o, gap g, processors P) and evaluates on a 32-node 1 Gb/s Ethernet cluster.
// We execute all ranks in one process and *price* their real, counted work
// with this model: computation is counted in abstract operations, and
// communication in messages and bytes under the paper's serialized
// personalized all-to-all schedule. The simulated time this produces plays
// the role of the paper's measured wall time (see DESIGN.md §2).
#pragma once

#include <cstddef>
#include <cstdint>

namespace aa {

/// What the bandwidth term of the cost model charges a message for.
///
/// PerByte prices exactly the bytes the serializer put on the wire — the
/// historical behaviour, and the right model when the experiment is about
/// transport (wire-format ablations, schedule ablations). PerEntry prices a
/// boundary-DV message by its *decoded* entry footprint (16-byte header +
/// entries x sizeof(DvEntry)) regardless of how cleverly the payload was
/// encoded, so transport wins (v2's varint/RLE columns) stop leaking into
/// algorithmic `sim_seconds`: under PerEntry, v1 and v2 runs of the same
/// schedule produce bit-identical simulated times, which is what lets an
/// experiment attribute a speedup to the algorithm rather than the encoder.
/// Non-boundary messages (control, broadcasts, migrations) carry no entry
/// count and are priced by wire bytes under both models.
enum class PriceModel : std::uint8_t {
    PerByte = 1,
    PerEntry = 2,
};

struct LogPParams {
    /// Wire latency per message (seconds). L in LogP.
    double latency{50e-6};
    /// CPU overhead to send or receive one message (seconds). o in LogP.
    double overhead{5e-6};
    /// Per-byte gap, i.e. inverse bandwidth (seconds/byte). G in LogGP.
    /// Default: 1 Gb/s Ethernet = 125 MB/s => 8 ns/byte.
    double gap_per_byte{8e-9};
    /// Seconds per abstract computation operation (one distance comparison /
    /// relaxation step). Default 2 ns ~ a few cycles on the paper's Xeons.
    double seconds_per_op{2e-9};
    /// Maximum size of one message on the wire; larger payloads are chunked.
    /// The paper bounds message size by processor memory and chooses it "such
    /// that the network remains lightly loaded".
    std::size_t max_message_bytes{1 << 20};

    /// Time to push one payload of `bytes` through the network, including
    /// chunking and the sender+receiver overheads per chunk.
    double message_time(std::size_t bytes) const;

    /// Time for `ops` operations spread over `threads` threads (the paper's
    /// O(ops / T) multithreaded IA model).
    double compute_time(double ops, std::size_t threads = 1) const;
};

/// A monotonically advancing simulated clock, one per rank.
class SimClock {
public:
    double now() const { return now_; }

    void advance(double seconds);

    /// Jump forward to `t` if it is later than now (barrier semantics).
    void advance_to(double t);

private:
    double now_{0};
};

}  // namespace aa
