#include "runtime/alltoall.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace aa {

std::vector<std::pair<RankId, RankId>> all_to_all_pairs(std::uint32_t num_ranks) {
    std::vector<std::pair<RankId, RankId>> pairs;
    if (num_ranks < 2) {
        return pairs;
    }
    pairs.reserve(static_cast<std::size_t>(num_ranks) * (num_ranks - 1));
    for (std::uint32_t round = 1; round < num_ranks; ++round) {
        for (RankId sender = 0; sender < num_ranks; ++sender) {
            pairs.emplace_back(sender, (sender + round) % num_ranks);
        }
    }
    return pairs;
}

double exchange_duration(const std::vector<std::size_t>& bytes_matrix,
                         std::uint32_t num_ranks, const LogPParams& params,
                         CommSchedule schedule) {
    AA_ASSERT(bytes_matrix.size() ==
              static_cast<std::size_t>(num_ranks) * num_ranks);
    const auto bytes_at = [&](RankId i, RankId j) {
        return bytes_matrix[static_cast<std::size_t>(i) * num_ranks + j];
    };

    switch (schedule) {
        case CommSchedule::SerializedAllToAll: {
            // One message in flight at a time: total = sum of message times.
            double total = 0;
            for (const auto& [from, to] : all_to_all_pairs(num_ranks)) {
                const std::size_t bytes = bytes_at(from, to);
                if (bytes > 0) {
                    total += params.message_time(bytes);
                }
            }
            return total;
        }
        case CommSchedule::ParallelRounds: {
            // Each round costs the maximum message in that round.
            double total = 0;
            for (std::uint32_t round = 1; round < num_ranks; ++round) {
                double round_max = 0;
                for (RankId sender = 0; sender < num_ranks; ++sender) {
                    const std::size_t bytes =
                        bytes_at(sender, (sender + round) % num_ranks);
                    if (bytes > 0) {
                        round_max = std::max(round_max, params.message_time(bytes));
                    }
                }
                total += round_max;
            }
            return total;
        }
        case CommSchedule::Flooding: {
            // All messages at once; the shared medium stretches each transfer
            // by the number of concurrent non-empty messages.
            std::size_t concurrent = 0;
            double longest = 0;
            for (RankId i = 0; i < num_ranks; ++i) {
                for (RankId j = 0; j < num_ranks; ++j) {
                    const std::size_t bytes = bytes_at(i, j);
                    if (i != j && bytes > 0) {
                        ++concurrent;
                        longest = std::max(longest, params.message_time(bytes));
                    }
                }
            }
            return longest * static_cast<double>(std::max<std::size_t>(concurrent, 1));
        }
        case CommSchedule::Pipelined: {
            // Sender-side serialization only: each sender pushes its messages
            // back to back, distinct senders overlap. The makespan is the
            // busiest sender's injection time.
            double makespan = 0;
            for (RankId i = 0; i < num_ranks; ++i) {
                double sender = 0;
                for (std::uint32_t round = 1; round < num_ranks; ++round) {
                    const std::size_t bytes = bytes_at(i, (i + round) % num_ranks);
                    if (bytes > 0) {
                        sender += params.message_time(bytes);
                    }
                }
                makespan = std::max(makespan, sender);
            }
            return makespan;
        }
    }
    return 0;
}

std::vector<std::size_t> per_pair_bytes(const std::vector<const Message*>& messages,
                                        std::uint32_t num_ranks) {
    std::vector<std::size_t> matrix(static_cast<std::size_t>(num_ranks) * num_ranks,
                                    0);
    for (const Message* message : messages) {
        AA_ASSERT(message != nullptr);
        matrix[static_cast<std::size_t>(message->from) * num_ranks + message->to] +=
            message->size_bytes();
    }
    return matrix;
}

void schedule_arrivals(std::vector<InFlightMessage>& messages,
                       std::uint32_t num_ranks, const std::vector<double>& ready,
                       const LogPParams& params, CommSchedule schedule) {
    AA_ASSERT(ready.size() == num_ranks);
    for (const InFlightMessage& m : messages) {
        AA_ASSERT(m.from < num_ranks && m.to < num_ranks && m.from != m.to);
    }
    switch (schedule) {
        case CommSchedule::SerializedAllToAll: {
            // One shared wire, canonical order, but a message may depart as
            // soon as the wire is free AND its sender has finished posting —
            // a fast rank's traffic no longer waits for the slowest poster.
            double wire_free = 0;
            for (InFlightMessage& m : messages) {
                const double start = std::max(wire_free, ready[m.from]);
                m.arrive = start + params.message_time(m.bytes);
                wire_free = m.arrive;
            }
            return;
        }
        case CommSchedule::ParallelRounds: {
            // Canonical order is round-major, so consecutive messages of one
            // round form a run: the round starts when the previous round is
            // over and all of its senders are ready.
            const auto round_of = [num_ranks](const InFlightMessage& m) {
                return (m.to + num_ranks - m.from) % num_ranks;
            };
            double prev_round_end = 0;
            std::size_t i = 0;
            while (i < messages.size()) {
                const std::uint32_t round = round_of(messages[i]);
                std::size_t j = i;
                double start = prev_round_end;
                while (j < messages.size() && round_of(messages[j]) == round) {
                    start = std::max(start, ready[messages[j].from]);
                    ++j;
                }
                double round_end = start;
                for (std::size_t k = i; k < j; ++k) {
                    messages[k].arrive = start + params.message_time(messages[k].bytes);
                    round_end = std::max(round_end, messages[k].arrive);
                }
                prev_round_end = round_end;
                i = j;
            }
            return;
        }
        case CommSchedule::Flooding: {
            double start = 0;
            for (const InFlightMessage& m : messages) {
                start = std::max(start, ready[m.from]);
            }
            const auto concurrent =
                static_cast<double>(std::max<std::size_t>(messages.size(), 1));
            for (InFlightMessage& m : messages) {
                m.arrive = start + params.message_time(m.bytes) * concurrent;
            }
            return;
        }
        case CommSchedule::Pipelined: {
            std::vector<double> sender_free(ready);
            for (InFlightMessage& m : messages) {
                m.arrive = sender_free[m.from] + params.message_time(m.bytes);
                sender_free[m.from] = m.arrive;
            }
            return;
        }
    }
}

std::vector<RankTraffic> per_rank_traffic(const std::vector<std::size_t>& per_pair_bytes,
                                          std::uint32_t num_ranks) {
    AA_ASSERT(per_pair_bytes.size() ==
              static_cast<std::size_t>(num_ranks) * num_ranks);
    std::vector<RankTraffic> traffic(num_ranks);
    for (RankId i = 0; i < num_ranks; ++i) {
        for (RankId j = 0; j < num_ranks; ++j) {
            const std::size_t bytes =
                per_pair_bytes[static_cast<std::size_t>(i) * num_ranks + j];
            traffic[i].bytes_out += bytes;
            traffic[j].bytes_in += bytes;
        }
    }
    return traffic;
}

}  // namespace aa
