#include "runtime/cluster.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/metrics.hpp"

namespace aa {

Cluster::Cluster(std::uint32_t num_ranks, LogPParams params, CommSchedule schedule,
                 PriceModel price_model)
    : num_ranks_(num_ranks),
      params_(params),
      schedule_(schedule),
      price_model_(price_model),
      mailboxes_(num_ranks),
      clocks_(num_ranks),
      rank_stats_(num_ranks) {
    AA_ASSERT_MSG(num_ranks >= 1, "cluster needs at least one rank");
}

void Cluster::charge_compute(RankId r, double ops, std::size_t threads) {
    AA_ASSERT(r < num_ranks_);
    clocks_[r].advance(params_.compute_time(ops, threads));
    rank_stats_[r].ops += ops;
    rank_stats_[r].compute_seconds += params_.compute_time(ops, threads);
}

std::size_t Cluster::priced_bytes(const Message& message) const {
    if (price_model_ == PriceModel::PerEntry && message.entries > 0) {
        // Decoded footprint: the 16-byte message header plus one DvEntry
        // (u32 column + f64 distance, padded to 16 bytes) per decoded entry —
        // what the receiver materializes regardless of wire encoding.
        return 16 + message.entries * 16;
    }
    return message.size_bytes();
}

void Cluster::send(RankId from, RankId to, MessageTag tag,
                   std::vector<std::byte> payload, std::size_t entries) {
    Message message;
    message.from = from;
    message.to = to;
    message.tag = tag;
    message.entries = entries;
    message.payload = Message::share(std::move(payload));
    // Only rank-confined writes (the sender's stats slot and outbox): the
    // cluster-wide totals are derived in stats() so concurrent senders never
    // share a cache line, let alone a counter.
    rank_stats_[from].messages_sent += 1;
    rank_stats_[from].bytes_sent += message.size_bytes();
    mailboxes_.post(std::move(message));
}

double Cluster::exchange() {
    // Price the pending traffic. `matrix` holds wire bytes (the accounting
    // truth); under a non-default price model a second matrix feeds the
    // duration computation so pricing never leaks into the byte bookkeeping.
    std::vector<std::size_t> matrix(
        static_cast<std::size_t>(num_ranks_) * num_ranks_, 0);
    const bool reprice = price_model_ != PriceModel::PerByte;
    std::vector<std::size_t> priced;
    if (reprice) {
        priced.assign(matrix.size(), 0);
    }
    bool any = false;
    for (RankId r = 0; r < num_ranks_; ++r) {
        for (const Message& m : mailboxes_.peek_outbox(r)) {
            const std::size_t slot =
                static_cast<std::size_t>(m.from) * num_ranks_ + m.to;
            matrix[slot] += m.size_bytes();
            if (reprice) {
                priced[slot] += priced_bytes(m);
            }
            // Delivery is certain once priced, so the receiver's accounting
            // advances here (see RankStats).
            rank_stats_[m.to].messages_received += 1;
            rank_stats_[m.to].bytes_received += m.size_bytes();
            any = true;
        }
    }
    double duration = 0;
    std::size_t exchanged_bytes = 0;
    if (any) {
        for (const RankTraffic& t : per_rank_traffic(matrix, num_ranks_)) {
            exchanged_bytes += t.bytes_out;
        }
        duration = exchange_duration(reprice ? priced : matrix, num_ranks_,
                                     params_, schedule_);
        mailboxes_.deliver(all_to_all_pairs(num_ranks_));
        // Safety: the all-to-all covers every (i, j) pair, so nothing should
        // remain buffered.
        AA_ASSERT(!mailboxes_.has_pending());
    }
    // Barrier semantics: everyone leaves the exchange at the same instant.
    const double start = max_time();
    for (auto& clock : clocks_) {
        clock.advance_to(start + duration);
    }
    stats_.comm_seconds += duration;
    stats_.exchanges += 1;
    if (metrics_ != nullptr && metrics_->enabled()) {
        static constexpr std::array<double, 8> kByteBounds{
            1 << 10, 16 << 10, 256 << 10, 1 << 20,
            16 << 20, 64 << 20, 256 << 20, 1 << 30};
        metrics_->observe(metrics_->histogram("exchange.bytes", kByteBounds),
                          static_cast<double>(exchanged_bytes));
        static constexpr std::array<double, 8> kSecondBounds{
            1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
        metrics_->observe(metrics_->histogram("exchange.seconds", kSecondBounds),
                          duration);
        metrics_->add(metrics_->counter("exchange.count"), 1);
    }
    return duration;
}

std::vector<DeliveryEvent> Cluster::pipelined_exchange() {
    std::vector<Message> drained =
        mailboxes_.drain_outboxes(all_to_all_pairs(num_ranks_));
    // The all-to-all covers every (i, j) pair, so nothing should remain.
    AA_ASSERT(!mailboxes_.has_pending());

    std::vector<double> ready(num_ranks_);
    for (RankId r = 0; r < num_ranks_; ++r) {
        ready[r] = clocks_[r].now();
    }

    std::vector<InFlightMessage> inflight;
    inflight.reserve(drained.size());
    std::size_t exchanged_bytes = 0;
    for (const Message& m : drained) {
        // Delivery is certain once scheduled, so the receiver's accounting
        // advances here — wire bytes, like the collective path: the price
        // model changes simulated time, never the byte bookkeeping.
        rank_stats_[m.to].messages_received += 1;
        rank_stats_[m.to].bytes_received += m.size_bytes();
        exchanged_bytes += m.size_bytes();
        inflight.push_back(InFlightMessage{m.from, m.to, priced_bytes(m), 0});
    }
    schedule_arrivals(inflight, num_ranks_, ready, params_, schedule_);

    double makespan = 0;
    if (!inflight.empty()) {
        double first_ready = std::numeric_limits<double>::infinity();
        double last_arrive = 0;
        for (const InFlightMessage& m : inflight) {
            first_ready = std::min(first_ready, ready[m.from]);
            last_arrive = std::max(last_arrive, m.arrive);
        }
        makespan = last_arrive - first_ready;
    }
    stats_.comm_seconds += makespan;
    stats_.exchanges += 1;
    if (metrics_ != nullptr && metrics_->enabled()) {
        static constexpr std::array<double, 8> kByteBounds{
            1 << 10, 16 << 10, 256 << 10, 1 << 20,
            16 << 20, 64 << 20, 256 << 20, 1 << 30};
        metrics_->observe(metrics_->histogram("exchange.bytes", kByteBounds),
                          static_cast<double>(exchanged_bytes));
        static constexpr std::array<double, 8> kSecondBounds{
            1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
        metrics_->observe(metrics_->histogram("exchange.seconds", kSecondBounds),
                          makespan);
        metrics_->add(metrics_->counter("exchange.count"), 1);
    }

    // Canonical drain order, monotone seq: the (time, source, seq) total
    // order over these events is a pure function of the simulated state.
    std::vector<DeliveryEvent> events;
    events.reserve(drained.size());
    for (std::size_t i = 0; i < drained.size(); ++i) {
        DeliveryEvent event;
        event.time = inflight[i].arrive;
        event.source = drained[i].from;
        event.seq = event_seq_++;
        event.message = std::move(drained[i]);
        events.push_back(std::move(event));
    }
    return events;
}

void Cluster::advance_rank_to(RankId r, double t) {
    AA_ASSERT(r < num_ranks_);
    clocks_[r].advance_to(t);
}

double Cluster::broadcast(RankId from, MessageTag tag,
                          std::vector<std::byte> payload) {
    AA_ASSERT(from < num_ranks_);
    if (num_ranks_ == 1) {
        return 0;
    }
    const std::size_t bytes = payload.size() + 16;
    const double rounds = std::ceil(std::log2(static_cast<double>(num_ranks_)));
    const double duration = rounds * params_.message_time(bytes);

    const auto shared = Message::share(std::move(payload));
    for (RankId to = 0; to < num_ranks_; ++to) {
        if (to == from) {
            continue;
        }
        Message message;
        message.from = from;
        message.to = to;
        message.tag = tag;
        message.payload = shared;  // zero-copy fan-out of immutable bytes
        mailboxes_.post(std::move(message));
    }
    mailboxes_.deliver_all();

    rank_stats_[from].messages_sent += num_ranks_ - 1;
    rank_stats_[from].bytes_sent += bytes * (num_ranks_ - 1);
    for (RankId to = 0; to < num_ranks_; ++to) {
        if (to == from) {
            continue;
        }
        rank_stats_[to].messages_received += 1;
        rank_stats_[to].bytes_received += bytes;
    }
    stats_.comm_seconds += duration;
    stats_.broadcasts += 1;
    if (metrics_ != nullptr && metrics_->enabled()) {
        static constexpr std::array<double, 6> kByteBounds{
            256, 4 << 10, 64 << 10, 1 << 20, 16 << 20, 256 << 20};
        metrics_->observe(metrics_->histogram("broadcast.bytes", kByteBounds),
                          static_cast<double>(bytes));
        metrics_->add(metrics_->counter("broadcast.count"), 1);
    }

    const double start = max_time();
    for (auto& clock : clocks_) {
        clock.advance_to(start + duration);
    }
    return duration;
}

double Cluster::barrier() {
    const double t = max_time();
    for (auto& clock : clocks_) {
        clock.advance_to(t);
    }
    return t;
}

void Cluster::fast_forward(double t) {
    for (auto& clock : clocks_) {
        clock.advance_to(t);
    }
}

double Cluster::time(RankId r) const {
    AA_ASSERT(r < num_ranks_);
    return clocks_[r].now();
}

double Cluster::max_time() const {
    double t = 0;
    for (const auto& clock : clocks_) {
        t = std::max(t, clock.now());
    }
    return t;
}

const RankStats& Cluster::rank_stats(RankId r) const {
    AA_ASSERT(r < num_ranks_);
    return rank_stats_[r];
}

ClusterStats Cluster::stats() const {
    ClusterStats s = stats_;
    for (const RankStats& r : rank_stats_) {
        s.total_messages += r.messages_sent;
        s.total_bytes += r.bytes_sent;
    }
    return s;
}

void Cluster::reset() {
    mailboxes_ = MailboxSystem(num_ranks_);
    clocks_.assign(num_ranks_, SimClock{});
    rank_stats_.assign(num_ranks_, RankStats{});
    stats_ = ClusterStats{};
    event_seq_ = 0;
}

}  // namespace aa
