// Communication schedules.
//
// The paper uses a personalized all-to-all schedule in which "only one
// message traverses the network at any given time in order to prevent network
// flooding and obtain predictable performance" — O(P^2) sequential message
// slots per RC step. We reproduce that schedule, plus alternatives for the
// ablation benchmark (ideal parallel exchange, contention-penalized
// flooding).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "runtime/logp.hpp"
#include "runtime/message.hpp"

namespace aa {

enum class CommSchedule {
    /// The paper's schedule: rounds r = 1..P-1, within a round sender i
    /// transmits to (i + r) mod P; transmissions are fully serialized.
    SerializedAllToAll,
    /// Idealized: all messages of a round proceed in parallel (lower bound).
    ParallelRounds,
    /// Naive flooding: every rank sends simultaneously; the shared network
    /// stretches every transfer by the number of concurrent messages.
    Flooding,
    /// LogGP pipelined injection: each sender pushes its personalized
    /// messages back-to-back (in destination round order — the sender-side
    /// gap serialization of LogGP), while distinct senders' transfers
    /// proceed concurrently. Receivers are not modeled as a bottleneck
    /// beyond the per-message overhead already inside message_time. This is
    /// the schedule that drops the paper's one-message-at-a-time policy and
    /// makes the network makespan max-per-sender instead of sum-over-pairs.
    Pipelined,
};

/// The ordered (sender, receiver) pairs of the personalized all-to-all for P
/// ranks. Size P*(P-1).
std::vector<std::pair<RankId, RankId>> all_to_all_pairs(std::uint32_t num_ranks);

/// Simulated duration of delivering `messages` (given per-message payload
/// sizes) under a schedule. `per_pair_bytes[i*P + j]` = bytes from i to j.
double exchange_duration(const std::vector<std::size_t>& per_pair_bytes,
                         std::uint32_t num_ranks, const LogPParams& params,
                         CommSchedule schedule);

/// Helper: bucket messages into a per-pair byte matrix (P*P, row = sender).
std::vector<std::size_t> per_pair_bytes(const std::vector<const Message*>& messages,
                                        std::uint32_t num_ranks);

/// Per-rank traffic of one exchange, reduced from the per-pair byte matrix:
/// bytes_out = row sum (rank as sender), bytes_in = column sum (rank as
/// receiver). Feeds the cluster's per-rank accounting and the telemetry
/// exporters.
struct RankTraffic {
    std::size_t bytes_out{0};
    std::size_t bytes_in{0};
};
std::vector<RankTraffic> per_rank_traffic(const std::vector<std::size_t>& per_pair_bytes,
                                          std::uint32_t num_ranks);

/// One message of an event-driven exchange, before and after scheduling.
/// `bytes` is the *priced* size (wire bytes or per-entry footprint, per the
/// cluster's PriceModel); `arrive` is filled in by schedule_arrivals.
struct InFlightMessage {
    RankId from{0};
    RankId to{0};
    std::size_t bytes{0};
    double arrive{0};
};

/// Compute deterministic arrival times for an exchange whose senders depart
/// at their own clocks instead of a collective barrier. `messages` must be
/// in canonical all-to-all order (pair order of all_to_all_pairs, post order
/// within a pair — what MailboxSystem::drain_outboxes produces); `ready[i]`
/// is sender i's simulated clock when the exchange starts. Arrival rules per
/// schedule (all reduce to the matching exchange_duration makespan when
/// every ready time is equal):
///   * SerializedAllToAll — a single shared wire: each message starts at
///     max(wire free, sender ready) in canonical order and occupies the wire
///     for its full message_time.
///   * ParallelRounds — round barriers: round r starts when the previous
///     round ended and every sender with traffic in round r is ready; its
///     messages arrive start + message_time each.
///   * Flooding — everything departs when the last sender is ready; every
///     transfer is stretched by the number of concurrent non-empty messages.
///   * Pipelined — per-sender serialization: sender i's k-th message starts
///     when its (k-1)-th finished (first at ready[i]); distinct senders
///     overlap freely.
/// Deterministic: a pure function of (messages, ready, params, schedule).
void schedule_arrivals(std::vector<InFlightMessage>& messages,
                       std::uint32_t num_ranks, const std::vector<double>& ready,
                       const LogPParams& params, CommSchedule schedule);

}  // namespace aa
