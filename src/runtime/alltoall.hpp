// Communication schedules.
//
// The paper uses a personalized all-to-all schedule in which "only one
// message traverses the network at any given time in order to prevent network
// flooding and obtain predictable performance" — O(P^2) sequential message
// slots per RC step. We reproduce that schedule, plus alternatives for the
// ablation benchmark (ideal parallel exchange, contention-penalized
// flooding).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "runtime/logp.hpp"
#include "runtime/message.hpp"

namespace aa {

enum class CommSchedule {
    /// The paper's schedule: rounds r = 1..P-1, within a round sender i
    /// transmits to (i + r) mod P; transmissions are fully serialized.
    SerializedAllToAll,
    /// Idealized: all messages of a round proceed in parallel (lower bound).
    ParallelRounds,
    /// Naive flooding: every rank sends simultaneously; the shared network
    /// stretches every transfer by the number of concurrent messages.
    Flooding,
};

/// The ordered (sender, receiver) pairs of the personalized all-to-all for P
/// ranks. Size P*(P-1).
std::vector<std::pair<RankId, RankId>> all_to_all_pairs(std::uint32_t num_ranks);

/// Simulated duration of delivering `messages` (given per-message payload
/// sizes) under a schedule. `per_pair_bytes[i*P + j]` = bytes from i to j.
double exchange_duration(const std::vector<std::size_t>& per_pair_bytes,
                         std::uint32_t num_ranks, const LogPParams& params,
                         CommSchedule schedule);

/// Helper: bucket messages into a per-pair byte matrix (P*P, row = sender).
std::vector<std::size_t> per_pair_bytes(const std::vector<const Message*>& messages,
                                        std::uint32_t num_ranks);

/// Per-rank traffic of one exchange, reduced from the per-pair byte matrix:
/// bytes_out = row sum (rank as sender), bytes_in = column sum (rank as
/// receiver). Feeds the cluster's per-rank accounting and the telemetry
/// exporters.
struct RankTraffic {
    std::size_t bytes_out{0};
    std::size_t bytes_in{0};
};
std::vector<RankTraffic> per_rank_traffic(const std::vector<std::size_t>& per_pair_bytes,
                                          std::uint32_t num_ranks);

}  // namespace aa
