#include "runtime/thread_pool.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace aa {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads > 1) {
        workers_.reserve(threads);
        for (std::size_t i = 0; i < threads; ++i) {
            workers_.emplace_back([this] { worker_loop(); });
        }
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        shutdown_ = true;
    }
    work_ready_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            work_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
            if (shutdown_ && tasks_.empty()) {
                return;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
        {
            std::lock_guard lock(mutex_);
            AA_ASSERT(in_flight_ > 0);
            --in_flight_;
            if (in_flight_ == 0) {
                work_done_.notify_all();
            }
        }
    }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
    if (begin >= end) {
        return;
    }
    if (workers_.empty()) {
        for (std::size_t i = begin; i < end; ++i) {
            fn(i);
        }
        return;
    }

    // The calling thread takes a chunk too: it would otherwise block idle,
    // wasting a core (and on small hosts, contending context-switches).
    const std::size_t total = end - begin;
    const std::size_t chunks = std::min(total, workers_.size() + 1);
    const std::size_t chunk_size = (total + chunks - 1) / chunks;

    if (chunks > 1) {
        std::lock_guard lock(mutex_);
        in_flight_ += chunks - 1;
        for (std::size_t c = 1; c < chunks; ++c) {
            const std::size_t lo = begin + c * chunk_size;
            const std::size_t hi = std::min(end, lo + chunk_size);
            tasks_.push([lo, hi, &fn] {
                for (std::size_t i = lo; i < hi; ++i) {
                    fn(i);
                }
            });
        }
        work_ready_.notify_all();
    }

    // Chunk 0 runs inline while the workers drain the rest.
    for (std::size_t i = begin; i < std::min(end, begin + chunk_size); ++i) {
        fn(i);
    }

    if (chunks > 1) {
        std::unique_lock lock(mutex_);
        work_done_.wait(lock, [this] { return in_flight_ == 0; });
    }
}

}  // namespace aa
