#include "runtime/backend.hpp"

#include "common/assert.hpp"

namespace aa {

std::string_view backend_kind_name(BackendKind kind) {
    switch (kind) {
        case BackendKind::Sequential: return "seq";
        case BackendKind::Threaded: return "threaded";
    }
    return "?";
}

bool parse_backend_kind(std::string_view name, BackendKind& kind) {
    if (name == "seq") {
        kind = BackendKind::Sequential;
    } else if (name == "threaded") {
        kind = BackendKind::Threaded;
    } else {
        return false;
    }
    return true;
}

void SequentialBackend::run_ranks(std::size_t num_ranks,
                                  const std::function<void(RankId)>& fn) {
    for (std::size_t r = 0; r < num_ranks; ++r) {
        fn(static_cast<RankId>(r));
    }
}

ThreadedBackend::ThreadedBackend(std::size_t workers) : pool_(workers) {}

void ThreadedBackend::run_ranks(std::size_t num_ranks,
                                const std::function<void(RankId)>& fn) {
    // parallel_for statically chunks [0, P) over the workers plus the calling
    // thread and blocks until every iteration completed — exactly the barrier
    // run_ranks promises. Each index runs exactly once.
    pool_.parallel_for(0, num_ranks,
                       [&fn](std::size_t r) { fn(static_cast<RankId>(r)); });
}

std::unique_ptr<ExecutionBackend> make_backend(BackendKind kind,
                                               std::size_t num_ranks,
                                               std::size_t workers) {
    AA_ASSERT_MSG(num_ranks >= 1, "backend needs at least one rank");
    switch (kind) {
        case BackendKind::Sequential:
            return std::make_unique<SequentialBackend>();
        case BackendKind::Threaded:
            // Thread-per-rank by default. P workers rather than P-1: the
            // driver executes one rank chunk itself, but ThreadPool treats a
            // worker count of 1 as "run inline", which would serialize the
            // P=2 case if we sized it P-1.
            return std::make_unique<ThreadedBackend>(
                workers != 0 ? workers : num_ranks);
    }
    AA_ASSERT_MSG(false, "unknown backend kind");
    return nullptr;
}

}  // namespace aa
