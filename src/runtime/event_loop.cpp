#include "runtime/event_loop.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace aa {

void EventQueue::push(DeliveryEvent event) {
    // A NaN timestamp compares false with everything and would quietly
    // destroy the heap invariant; a negative one would deliver before the
    // simulation began. Both are scheduler bugs (or hostile inputs in the
    // fuzz tests), not states to limp through.
    AA_ASSERT_MSG(std::isfinite(event.time), "event timestamp not finite");
    AA_ASSERT_MSG(event.time >= 0, "event timestamp negative");
    heap_.push_back(std::move(event));
    std::push_heap(heap_.begin(), heap_.end(), DeliveryAfter{});
}

const DeliveryEvent& EventQueue::top() const {
    AA_ASSERT_MSG(!heap_.empty(), "top() on empty event queue");
    return heap_.front();
}

DeliveryEvent EventQueue::pop() {
    AA_ASSERT_MSG(!heap_.empty(), "pop() on empty event queue");
    std::pop_heap(heap_.begin(), heap_.end(), DeliveryAfter{});
    DeliveryEvent event = std::move(heap_.back());
    heap_.pop_back();
    return event;
}

}  // namespace aa
