// Event-queue scheduler for the event-driven exchange.
//
// The step-synchronous RC loop delivers every message at one collective
// barrier. The event-driven mode instead turns each in-flight message into a
// timestamped DeliveryEvent and lets the engine drain them in simulated-time
// order, so a rank may begin ingesting its first arrival while later payloads
// are still on the (simulated) wire.
//
// Ordering contract. Events are totally ordered by
//     (time, source rank, sequence number)
// compared lexicographically. The timestamp alone is not enough: two
// messages can legitimately arrive at the same instant (equal payloads under
// ParallelRounds, zero-byte control traffic), and a heap tie broken by
// allocation order would make the processing order — and therefore the span
// stream and the delivery trace — depend on the host. Source rank then
// sequence number break every tie deterministically; sequence numbers are
// assigned by the driver in canonical drain order, so the full pop sequence
// is a pure function of the simulated state. This is what makes async runs
// reproducible across backends and across repeated ThreadedBackend runs.
//
// Timestamps are contract-checked at push: a NaN or negative time would
// silently corrupt the heap order (NaN compares false with everything), so
// hostile timestamps die on AA_ASSERT instead of reordering the simulation.
//
// The queue is driver-only: the engine processes events between the backend's
// rank phases, never from rank closures (see runtime/backend.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/message.hpp"

namespace aa {

/// One scheduled delivery: `message` becomes visible to its receiver at
/// simulated time `time`. `source` duplicates message.from for ordering;
/// `seq` is the driver-assigned tie-breaker (unique per queue lifetime).
struct DeliveryEvent {
    double time{0};
    RankId source{0};
    std::uint64_t seq{0};
    Message message;
};

/// Strict-weak ordering: a < b when a is delivered *later* (max-heap
/// adapter convention is hidden inside EventQueue; this comparator answers
/// "does a come after b in delivery order").
struct DeliveryAfter {
    bool operator()(const DeliveryEvent& a, const DeliveryEvent& b) const {
        if (a.time != b.time) {
            return a.time > b.time;
        }
        if (a.source != b.source) {
            return a.source > b.source;
        }
        return a.seq > b.seq;
    }
};

/// Min-heap of DeliveryEvents under the (time, source, seq) order.
class EventQueue {
public:
    /// Enqueue one delivery. Dies on a non-finite or negative timestamp (see
    /// the header comment). Sequence uniqueness is the driver's job — use
    /// next_seq() — and is not re-checked here.
    void push(DeliveryEvent event);

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /// The earliest event under the total order. Dies when empty.
    const DeliveryEvent& top() const;

    /// Remove and return the earliest event. Dies when empty.
    DeliveryEvent pop();

    /// Monotone sequence numbers for tie-breaking, starting at 0.
    std::uint64_t next_seq() { return seq_counter_++; }

private:
    std::vector<DeliveryEvent> heap_;
    std::uint64_t seq_counter_{0};
};

}  // namespace aa
