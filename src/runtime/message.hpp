// Message payloads and byte-level serialization.
//
// Rank-to-rank messages are flat byte buffers, as they would be on an MPI
// wire. Serializing for real (rather than passing pointers between "ranks")
// keeps the ranks' address spaces honestly separate and gives the LogP model
// exact byte counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace aa {

/// Application-level tag identifying what a payload contains.
enum class MessageTag : std::uint32_t {
    BoundaryDvUpdate = 1,   // RC step: changed boundary distance-vector entries
    NewVertexDvRow = 2,     // vertex addition: broadcast DV row of a new vertex
    MigratedRows = 3,       // Repartition-S: DV rows moving to a new owner
    Control = 4,            // small control messages (counts, convergence votes)
    // Fully-dynamic shrink path (core/edge_delete.cpp):
    ShrinkEndpointRow = 5,      // pre-cascade DV row of a deleted edge's endpoint
    ShrinkAffectedColumns = 6,  // gather/broadcast of the affected-column union
    ShrinkBoundaryView = 7,     // boundary rows restricted to affected columns
    ShrinkRaise = 8,            // invalidated (vertex, column, old value) raises
    // Incremental shard migration (core/migrate.cpp):
    ShardMigration = 9,  // one shard's DV rows + adjacency moving to a new rank
};

struct Message {
    RankId from{0};
    RankId to{0};
    MessageTag tag{MessageTag::Control};
    /// Decoded DV-entry count carried by a BoundaryDvUpdate payload (0 for
    /// everything else). Pure pricing metadata: under PriceModel::PerEntry
    /// the cluster charges the bandwidth term for `entries * sizeof(DvEntry)`
    /// instead of the encoded payload size, so the simulated time of an
    /// exchange is independent of the wire encoding. Senders that don't set
    /// it fall back to wire-byte pricing (entries == 0 is never charged as
    /// "free": the per-chunk latency/overhead terms always apply).
    std::size_t entries{0};
    /// Immutable payload. Shared so that a tree broadcast can hand the same
    /// bytes to P-1 receivers without physical copies (receivers only read;
    /// the LogP model still charges every logical transmission).
    std::shared_ptr<const std::vector<std::byte>> payload;

    static std::shared_ptr<const std::vector<std::byte>> share(
        std::vector<std::byte> bytes) {
        return std::make_shared<const std::vector<std::byte>>(std::move(bytes));
    }

    std::span<const std::byte> bytes() const {
        return payload ? std::span<const std::byte>(*payload)
                       : std::span<const std::byte>{};
    }
    std::size_t size_bytes() const {
        return (payload ? payload->size() : 0) + 16;  // +header
    }
};

/// Append-only little-endian writer.
class Serializer {
public:
    template <typename T>
        requires std::is_trivially_copyable_v<T>
    void write(const T& value) {
        const auto* raw = reinterpret_cast<const std::byte*>(&value);
        buffer_.insert(buffer_.end(), raw, raw + sizeof(T));
    }

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    void write_span(std::span<const T> values) {
        write(static_cast<std::uint64_t>(values.size()));
        const auto* raw = reinterpret_cast<const std::byte*>(values.data());
        buffer_.insert(buffer_.end(), raw, raw + values.size_bytes());
    }

    /// LEB128 unsigned varint: 7 payload bits per byte, high bit = "more
    /// bytes follow". Small values — sorted-column deltas, entry counts —
    /// shrink from 4-8 fixed bytes to 1-2, which is what makes the v2
    /// boundary-DV column array cheap on the (simulated) wire.
    void write_varint(std::uint64_t value) {
        while (value >= 0x80) {
            buffer_.push_back(static_cast<std::byte>((value & 0x7F) | 0x80));
            value >>= 7;
        }
        buffer_.push_back(static_cast<std::byte>(value));
    }

    /// Append raw bytes with no length prefix — for caller-framed data whose
    /// extent is recoverable from context (e.g. the v2 boundary block's f64
    /// run, whose length is the already-written entry count).
    void write_bytes(std::span<const std::byte> bytes) {
        buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
    }

    /// Append zero bytes until the buffer size is a multiple of `alignment`
    /// (a power of two). The v2 boundary-block encoder uses this to land each
    /// block's f64 distance run on an 8-byte boundary so receivers can read
    /// it in place as an aligned span.
    void pad_to(std::size_t alignment) {
        AA_ASSERT((alignment & (alignment - 1)) == 0);
        while ((buffer_.size() & (alignment - 1)) != 0) {
            buffer_.push_back(std::byte{0});
        }
    }

    std::vector<std::byte> take() { return std::move(buffer_); }
    std::size_t size() const { return buffer_.size(); }

    /// The bytes written so far, without giving up the buffer — for callers
    /// that copy one encoding into several payloads (e.g. a boundary block
    /// shared by multiple destination ranks).
    std::span<const std::byte> view() const { return buffer_; }

    /// Forget the contents but keep the capacity, so one Serializer can be
    /// reused across many small encodings without reallocating.
    void clear() { buffer_.clear(); }

private:
    std::vector<std::byte> buffer_;
};

/// Sequential reader over a received payload.
class Deserializer {
public:
    explicit Deserializer(std::span<const std::byte> data) : data_(data) {}

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    T read() {
        AA_ASSERT_MSG(cursor_ + sizeof(T) <= data_.size(), "payload underrun");
        T value;
        std::memcpy(&value, data_.data() + cursor_, sizeof(T));
        cursor_ += sizeof(T);
        return value;
    }

    template <typename T>
        requires std::is_trivially_copyable_v<T>
    std::vector<T> read_vector() {
        const auto count = read<std::uint64_t>();
        // Divide instead of multiplying: count * sizeof(T) can wrap for a
        // hostile length prefix, which would pass the check and then attempt
        // a huge allocation.
        AA_ASSERT_MSG(count <= (data_.size() - cursor_) / sizeof(T), "payload underrun");
        std::vector<T> values(count);
        if (count != 0) {  // empty vector data() may be null: UB for memcpy
            std::memcpy(values.data(), data_.data() + cursor_, count * sizeof(T));
        }
        cursor_ += count * sizeof(T);
        return values;
    }

    bool exhausted() const { return cursor_ == data_.size(); }
    std::size_t remaining() const { return data_.size() - cursor_; }

private:
    std::span<const std::byte> data_;
    std::size_t cursor_{0};
};

/// Decode one LEB128 varint that must fit a u32, advancing `cursor`.
/// Structural validation is part of the contract: a continuation bit set at
/// the end of the payload ("varint truncated") or an encoding of five bytes
/// whose final byte spills past 32 bits ("varint overlong") dies on the
/// AA_ASSERT check — a hostile payload can never make the decoder read past
/// `data` or return a silently wrapped value.
inline std::uint32_t read_varint_u32(std::span<const std::byte> data,
                                     std::size_t& cursor) {
    std::uint32_t value = 0;
    for (unsigned shift = 0; shift < 35; shift += 7) {
        AA_ASSERT_MSG(cursor < data.size(), "varint truncated");
        const auto byte = static_cast<std::uint8_t>(data[cursor++]);
        AA_ASSERT_MSG(shift != 28 || (byte & 0xF0) == 0, "varint overlong");
        value |= static_cast<std::uint32_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) {
            return value;
        }
    }
    AA_ASSERT_MSG(false, "varint overlong");
    return 0;  // unreachable
}

/// Wire size of a value under the LEB128 encoding above.
inline constexpr std::size_t varint_size(std::uint64_t value) {
    std::size_t bytes = 1;
    while (value >= 0x80) {
        value >>= 7;
        ++bytes;
    }
    return bytes;
}

}  // namespace aa
