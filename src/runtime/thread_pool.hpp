// Fixed-size thread pool with a blocking parallel_for, used by the IA phase's
// multithreaded Dijkstra (the paper uses OpenMP; std::thread keeps the build
// dependency-free). The pool is also what the LogP model's `threads` divisor
// corresponds to: simulated IA time scales with the configured thread count
// even on a single-core host.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace aa {

class ThreadPool {
public:
    /// `threads == 0` or `1` runs tasks inline (no worker threads).
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t num_threads() const { return workers_.empty() ? 1 : workers_.size(); }

    /// Run fn(i) for i in [begin, end), statically chunked across the pool
    /// plus the calling thread (which executes the first chunk itself instead
    /// of blocking idle); returns when all iterations complete. fn must not
    /// throw. Only one parallel_for may be in flight per pool at a time, and
    /// fn must not re-enter parallel_for on the same pool.
    void parallel_for(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& fn);

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable work_done_;
    std::queue<std::function<void()>> tasks_;
    std::size_t in_flight_{0};
    bool shutdown_{false};
};

}  // namespace aa
