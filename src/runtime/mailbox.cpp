#include "runtime/mailbox.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace aa {

MailboxSystem::MailboxSystem(std::uint32_t num_ranks)
    : outboxes_(num_ranks), inboxes_(num_ranks) {}

void MailboxSystem::post(Message message) {
    AA_ASSERT(message.from < num_ranks() && message.to < num_ranks());
    AA_ASSERT_MSG(message.from != message.to, "self-sends are a logic error");
    outboxes_[message.from].push_back(std::move(message));
}

bool MailboxSystem::has_pending() const {
    return std::any_of(outboxes_.begin(), outboxes_.end(),
                       [](const auto& box) { return !box.empty(); });
}

std::size_t MailboxSystem::deliver(
    const std::vector<std::pair<RankId, RankId>>& schedule) {
    std::size_t bytes = 0;
    for (const auto& [from, to] : schedule) {
        AA_ASSERT(from < num_ranks() && to < num_ranks());
        auto& outbox = outboxes_[from];
        // Deliver every pending message for this (from, to) pair, preserving
        // post order.
        for (auto it = outbox.begin(); it != outbox.end();) {
            if (it->to == to) {
                bytes += it->size_bytes();
                inboxes_[to].push_back(std::move(*it));
                it = outbox.erase(it);
            } else {
                ++it;
            }
        }
    }
    return bytes;
}

std::size_t MailboxSystem::deliver_all() {
    std::size_t bytes = 0;
    for (auto& outbox : outboxes_) {
        for (auto& message : outbox) {
            bytes += message.size_bytes();
            inboxes_[message.to].push_back(std::move(message));
        }
        outbox.clear();
    }
    return bytes;
}

std::vector<Message> MailboxSystem::drain_outboxes(
    const std::vector<std::pair<RankId, RankId>>& schedule) {
    std::vector<Message> drained;
    for (const auto& [from, to] : schedule) {
        AA_ASSERT(from < num_ranks() && to < num_ranks());
        auto& outbox = outboxes_[from];
        for (auto it = outbox.begin(); it != outbox.end();) {
            if (it->to == to) {
                drained.push_back(std::move(*it));
                it = outbox.erase(it);
            } else {
                ++it;
            }
        }
    }
    return drained;
}

std::vector<Message> MailboxSystem::take_inbox(RankId r) {
    AA_ASSERT(r < num_ranks());
    std::vector<Message> out = std::move(inboxes_[r]);
    inboxes_[r].clear();
    return out;
}

const std::vector<Message>& MailboxSystem::peek_outbox(RankId r) const {
    AA_ASSERT(r < num_ranks());
    return outboxes_[r];
}

}  // namespace aa
