// Cluster: the simulated distributed-memory machine.
//
// P ranks with private state, BSP-style supersteps: ranks compute (charging
// their simulated clocks via the LogP model), post messages, then a collective
// exchange delivers everything under the configured communication schedule
// and synchronizes the clocks — the barrier between the paper's RC steps.
//
// The engine executes real work (actual Dijkstra runs, actual DV relaxations,
// actual serialized payloads); the cluster merely *prices* it, so simulated
// time faithfully tracks the executed operation and byte counts.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/alltoall.hpp"
#include "runtime/logp.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/message.hpp"

namespace aa {

class MetricsRegistry;

/// Cumulative per-rank accounting, for reports and tests. Sent-side counters
/// advance at send() time; received-side counters advance at delivery
/// (exchange / broadcast), so an in-flight message is visible on exactly one
/// side.
struct RankStats {
    double ops{0};
    double compute_seconds{0};
    std::size_t messages_sent{0};
    std::size_t bytes_sent{0};
    std::size_t messages_received{0};
    std::size_t bytes_received{0};
};

/// Cluster-wide accounting.
struct ClusterStats {
    double comm_seconds{0};
    std::size_t exchanges{0};
    std::size_t broadcasts{0};
    std::size_t total_messages{0};
    std::size_t total_bytes{0};
};

class Cluster {
public:
    explicit Cluster(std::uint32_t num_ranks, LogPParams params = {},
                     CommSchedule schedule = CommSchedule::SerializedAllToAll);

    std::uint32_t num_ranks() const { return num_ranks_; }
    const LogPParams& params() const { return params_; }
    CommSchedule schedule() const { return schedule_; }

    /// Charge `ops` abstract operations to rank r's clock, spread over
    /// `threads` threads (the paper's multithreaded IA model).
    void charge_compute(RankId r, double ops, std::size_t threads = 1);

    /// Post a message; it is delivered (and priced) at the next exchange().
    void send(RankId from, RankId to, MessageTag tag, std::vector<std::byte> payload);

    /// True if any message is waiting to be exchanged.
    bool has_pending_messages() const { return mailboxes_.has_pending(); }

    /// Collective exchange: price all pending messages under the schedule,
    /// deliver them, and synchronize every clock to (max clock + duration).
    /// Returns the exchange duration.
    double exchange();

    /// Tree broadcast from `from` to all other ranks (the paper's new-vertex
    /// DV row broadcast): delivers immediately, priced as ceil(log2 P)
    /// pipelined rounds, and synchronizes clocks (it is a collective).
    double broadcast(RankId from, MessageTag tag, std::vector<std::byte> payload);

    /// Drain rank r's inbox.
    std::vector<Message> receive(RankId r) { return mailboxes_.take_inbox(r); }

    /// Synchronize all clocks to the maximum. Returns the barrier time.
    double barrier();

    /// Jump every clock forward to at least `t` (checkpoint restore: the
    /// resumed analysis continues from the saved simulated time).
    void fast_forward(double t);

    double time(RankId r) const;
    double max_time() const;

    const RankStats& rank_stats(RankId r) const;
    const ClusterStats& stats() const { return stats_; }

    /// Attach a metrics registry (not owned; may be null). While the registry
    /// is enabled the cluster feeds per-collective histograms ("exchange.bytes",
    /// "exchange.seconds", "broadcast.bytes") and counters; a disabled or
    /// absent registry costs one branch per collective.
    void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

    /// Reset clocks and statistics, drop all undelivered messages. Used by
    /// the baseline-restart strategy (a restart forfeits in-flight work) and
    /// by tests.
    void reset();

private:
    std::uint32_t num_ranks_;
    LogPParams params_;
    CommSchedule schedule_;
    MailboxSystem mailboxes_;
    std::vector<SimClock> clocks_;
    std::vector<RankStats> rank_stats_;
    ClusterStats stats_;
    MetricsRegistry* metrics_{nullptr};
};

}  // namespace aa
