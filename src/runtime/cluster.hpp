// Cluster: the simulated distributed-memory machine.
//
// P ranks with private state, BSP-style supersteps: ranks compute (charging
// their simulated clocks via the LogP model), post messages, then a collective
// exchange delivers everything under the configured communication schedule
// and synchronizes the clocks — the barrier between the paper's RC steps.
//
// The engine executes real work (actual Dijkstra runs, actual DV relaxations,
// actual serialized payloads); the cluster merely *prices* it, so simulated
// time faithfully tracks the executed operation and byte counts.
//
// Concurrency contract (what lets a ThreadedBackend run ranks in parallel):
//   * rank-confined entry points — charge_compute(r, ...), send(from=r, ...)
//     and receive(r) touch only rank r's clock, stats slot, outbox or inbox.
//     They may be called concurrently from distinct ranks' threads; calling
//     any of them for the *same* rank from two threads is a data race. There
//     is no shared mutable state on the send path: the cluster-wide traffic
//     totals are derived from the per-rank sent counters when stats() is
//     read, not accumulated at post time.
//   * driver-only entry points — exchange(), broadcast(), barrier(),
//     fast_forward(), reset(), has_pending_messages(), time()/max_time(),
//     rank_stats()/stats() and set_metrics() must run on the driver thread
//     while no rank closure is in flight (between the backend's barriers).
// ExecutionBackend::run_ranks provides the happens-before edges at both ends.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/alltoall.hpp"
#include "runtime/event_loop.hpp"
#include "runtime/logp.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/message.hpp"

namespace aa {

class MetricsRegistry;

/// Cumulative per-rank accounting, for reports and tests. Sent-side counters
/// advance at send() time; received-side counters advance at delivery
/// (exchange / broadcast), so an in-flight message is visible on exactly one
/// side.
struct RankStats {
    double ops{0};
    double compute_seconds{0};
    std::size_t messages_sent{0};
    std::size_t bytes_sent{0};
    std::size_t messages_received{0};
    std::size_t bytes_received{0};
};

/// Cluster-wide accounting. total_messages/total_bytes count the sent side
/// (they are the sums of the per-rank sent counters, materialized by
/// Cluster::stats()); the collective counters advance at exchange/broadcast.
struct ClusterStats {
    double comm_seconds{0};
    std::size_t exchanges{0};
    std::size_t broadcasts{0};
    std::size_t total_messages{0};
    std::size_t total_bytes{0};
};

class Cluster {
public:
    explicit Cluster(std::uint32_t num_ranks, LogPParams params = {},
                     CommSchedule schedule = CommSchedule::SerializedAllToAll,
                     PriceModel price_model = PriceModel::PerByte);

    std::uint32_t num_ranks() const { return num_ranks_; }
    const LogPParams& params() const { return params_; }
    CommSchedule schedule() const { return schedule_; }
    PriceModel price_model() const { return price_model_; }

    /// Bytes the bandwidth term charges for one message: the wire size under
    /// PriceModel::PerByte, the decoded entry footprint (16-byte header +
    /// entries x sizeof(DvEntry)) under PerEntry for messages that declare an
    /// entry count, the wire size otherwise. Traffic *accounting* (RankStats,
    /// ClusterStats, metrics histograms) always records wire bytes — the
    /// price model changes simulated time, never the byte bookkeeping.
    std::size_t priced_bytes(const Message& message) const;

    /// Charge `ops` abstract operations to rank r's clock, spread over
    /// `threads` threads (the paper's multithreaded IA model). Rank-confined:
    /// safe from concurrent callers for distinct r.
    void charge_compute(RankId r, double ops, std::size_t threads = 1);

    /// Post a message; it is delivered (and priced) at the next exchange()
    /// or pipelined_exchange(). Rank-confined by `from`: safe from concurrent
    /// callers for distinct senders (per-sender outboxes, per-sender stats
    /// slots, no global accumulation). `entries` is the decoded DV-entry
    /// count of a boundary payload, used only by PriceModel::PerEntry.
    void send(RankId from, RankId to, MessageTag tag, std::vector<std::byte> payload,
              std::size_t entries = 0);

    /// True if any message is waiting to be exchanged.
    bool has_pending_messages() const { return mailboxes_.has_pending(); }

    /// Collective exchange: price all pending messages under the schedule,
    /// deliver them, and synchronize every clock to (max clock + duration).
    /// Returns the exchange duration.
    double exchange();

    /// Event-driven exchange (driver-only): drain every outbox in canonical
    /// all-to-all order, price each message under the price model, and
    /// compute its deterministic arrival time with senders departing at
    /// their *own* clocks (no entry barrier — see schedule_arrivals). The
    /// returned events are in canonical order with monotone `seq`; messages
    /// are NOT placed in inboxes — the caller owns delivery, advancing each
    /// receiver's clock with advance_rank_to(to, event.time) before handing
    /// it the payload. Receiver-side traffic accounting advances here (wire
    /// bytes — delivery is certain once scheduled); comm_seconds accumulates
    /// the exchange makespan (last arrival minus earliest sender departure)
    /// and the exchange.* metrics record the same wire-byte totals as the
    /// collective path. Clocks are left untouched.
    std::vector<DeliveryEvent> pipelined_exchange();

    /// Advance rank r's clock to at least `t` (event delivery: the receiver
    /// cannot process a payload before it arrives). Rank-confined.
    void advance_rank_to(RankId r, double t);

    /// Tree broadcast from `from` to all other ranks (the paper's new-vertex
    /// DV row broadcast): delivers immediately, priced as ceil(log2 P)
    /// pipelined rounds, and synchronizes clocks (it is a collective).
    double broadcast(RankId from, MessageTag tag, std::vector<std::byte> payload);

    /// Drain rank r's inbox. Rank-confined: safe from concurrent callers for
    /// distinct r (delivery itself happens in the driver-side collectives).
    std::vector<Message> receive(RankId r) { return mailboxes_.take_inbox(r); }

    /// Synchronize all clocks to the maximum. Returns the barrier time.
    double barrier();

    /// Jump every clock forward to at least `t` (checkpoint restore: the
    /// resumed analysis continues from the saved simulated time).
    void fast_forward(double t);

    double time(RankId r) const;
    double max_time() const;

    const RankStats& rank_stats(RankId r) const;
    /// Cluster-wide accounting, materialized on read: the traffic totals are
    /// the sums of the per-rank sent counters (so the send path stays free of
    /// shared mutable state — see the concurrency contract above).
    ClusterStats stats() const;

    /// Attach a metrics registry (not owned; may be null). While the registry
    /// is enabled the cluster feeds per-collective histograms ("exchange.bytes",
    /// "exchange.seconds", "broadcast.bytes") and counters; a disabled or
    /// absent registry costs one branch per collective.
    void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

    /// Reset clocks and statistics, drop all undelivered messages. Used by
    /// the baseline-restart strategy (a restart forfeits in-flight work) and
    /// by tests.
    ///
    /// The attached MetricsRegistry is *intentionally left untouched*: the
    /// registry is experiment-scoped observability (its collective histograms
    /// and counters describe everything that happened, including work a
    /// restart forfeits), while reset() rewinds the machine-scoped accounting
    /// a restart legitimately starts over. A baseline-restart run therefore
    /// keeps its full pre-restart telemetry; callers that want a clean
    /// registry call MetricsRegistry::clear() themselves.
    /// (Pinned by Cluster.ResetLeavesAttachedMetricsUntouched.)
    void reset();

private:
    std::uint32_t num_ranks_;
    LogPParams params_;
    CommSchedule schedule_;
    PriceModel price_model_;
    MailboxSystem mailboxes_;
    std::vector<SimClock> clocks_;
    std::vector<RankStats> rank_stats_;
    ClusterStats stats_;
    /// Tie-breaker for DeliveryEvents, monotone across pipelined exchanges
    /// (unique per cluster lifetime; rewound by reset()).
    std::uint64_t event_seq_{0};
    MetricsRegistry* metrics_{nullptr};
};

}  // namespace aa
