#include "measures/betweenness.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "common/assert.hpp"
#include "runtime/message.hpp"

namespace aa {

void brandes_accumulate(const DynamicGraph& g, VertexId s,
                        std::vector<double>& scores) {
    const std::size_t n = g.num_vertices();
    AA_ASSERT(scores.size() == n);
    AA_ASSERT(s < n);

    // Weighted Brandes: Dijkstra with shortest-path counting, then
    // dependency accumulation in reverse-settlement order.
    std::vector<Weight> dist(n, kInfinity);
    std::vector<double> sigma(n, 0);
    std::vector<std::vector<VertexId>> predecessors(n);
    std::vector<VertexId> order;  // settlement order
    std::vector<std::uint8_t> settled(n, 0);

    using HeapItem = std::pair<Weight, VertexId>;
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
    dist[s] = 0;
    sigma[s] = 1;
    heap.push({0, s});
    while (!heap.empty()) {
        const auto [d, u] = heap.top();
        heap.pop();
        if (settled[u] != 0 || d > dist[u]) {
            continue;
        }
        settled[u] = 1;
        order.push_back(u);
        for (const Neighbor& nb : g.neighbors(u)) {
            const Weight candidate = d + nb.weight;
            if (candidate < dist[nb.to] - 1e-12) {
                dist[nb.to] = candidate;
                sigma[nb.to] = sigma[u];
                predecessors[nb.to].assign(1, u);
                heap.push({candidate, nb.to});
            } else if (std::abs(candidate - dist[nb.to]) <= 1e-12 &&
                       settled[nb.to] == 0) {
                sigma[nb.to] += sigma[u];
                predecessors[nb.to].push_back(u);
            }
        }
    }

    std::vector<double> delta(n, 0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const VertexId w = *it;
        for (const VertexId u : predecessors[w]) {
            delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w]);
        }
        if (w != s) {
            // Undirected convention: each pair is counted from both
            // endpoints across the full source loop, so halve here.
            scores[w] += delta[w] / 2.0;
        }
    }
}

std::vector<double> exact_betweenness(const DynamicGraph& g) {
    std::vector<double> scores(g.num_vertices(), 0);
    for (VertexId s = 0; s < g.num_vertices(); ++s) {
        brandes_accumulate(g, s, scores);
    }
    return scores;
}

std::vector<double> approx_betweenness(const DynamicGraph& g, std::size_t pivots,
                                       Rng& rng) {
    const std::size_t n = g.num_vertices();
    pivots = std::min(pivots, n);
    std::vector<VertexId> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    std::vector<double> scores(n, 0);
    for (std::size_t i = 0; i < pivots; ++i) {
        brandes_accumulate(g, order[i], scores);
    }
    if (pivots > 0 && pivots < n) {
        const double scale = static_cast<double>(n) / static_cast<double>(pivots);
        for (double& s : scores) {
            s *= scale;
        }
    }
    return scores;
}

BetweennessEngine::BetweennessEngine(DynamicGraph graph, EngineConfig cluster_config)
    : graph_(std::move(graph)),
      config_(cluster_config),
      cluster_(std::make_unique<Cluster>(cluster_config.num_ranks,
                                         cluster_config.logp,
                                         cluster_config.schedule)),
      rng_(cluster_config.seed) {}

BetweennessEngine::~BetweennessEngine() = default;

double BetweennessEngine::sim_seconds() const { return cluster_->max_time(); }

void BetweennessEngine::initialize() {
    AA_ASSERT_MSG(!initialized_, "initialize() called twice");
    initialized_ = true;

    // Replication: rank 0 tree-broadcasts the edge list (pivot-parallel
    // betweenness wants the whole graph everywhere; this is its real cost).
    const auto edges = graph_.edges();
    Serializer out;
    out.write(static_cast<std::uint64_t>(graph_.num_vertices()));
    out.write_span(std::span<const Edge>(edges));
    cluster_->broadcast(0, MessageTag::Control, out.take());
    for (RankId r = 0; r < cluster_->num_ranks(); ++r) {
        (void)cluster_->receive(r);  // ranks conceptually rebuild the graph
        cluster_->charge_compute(r, static_cast<double>(edges.size()));
    }

    pivot_order_.resize(graph_.num_vertices());
    std::iota(pivot_order_.begin(), pivot_order_.end(), 0);
    rng_.shuffle(pivot_order_);
    partial_.assign(cluster_->num_ranks(),
                    std::vector<double>(graph_.num_vertices(), 0));
}

std::size_t BetweennessEngine::refine(std::size_t count) {
    AA_ASSERT_MSG(initialized_, "initialize() must run first");
    const std::size_t available = pivot_order_.size() - next_pivot_;
    count = std::min(count, available);
    const auto num_ranks = cluster_->num_ranks();

    // Round-robin pivots over the ranks; charge each rank its Brandes work
    // (~ m + n log n per pivot, counted as executed relaxations would be —
    // we use the structural bound since the sequential kernel runs here).
    const double per_pivot_ops =
        static_cast<double>(graph_.num_edges()) +
        static_cast<double>(graph_.num_vertices()) *
            std::log2(static_cast<double>(graph_.num_vertices()) + 2);
    for (std::size_t i = 0; i < count; ++i) {
        const RankId r = static_cast<RankId>(i % num_ranks);
        brandes_accumulate(graph_, pivot_order_[next_pivot_ + i], partial_[r]);
        cluster_->charge_compute(r, per_pivot_ops);
    }
    next_pivot_ += count;

    // Reduce partials to rank 0 (priced). Ranks keep their partials so the
    // reduction is repeatable after further refinement.
    for (RankId r = 1; r < num_ranks; ++r) {
        Serializer out;
        out.write_span(std::span<const double>(partial_[r]));
        cluster_->send(r, 0, MessageTag::Control, out.take());
    }
    cluster_->exchange();
    for (const Message& message : cluster_->receive(0)) {
        cluster_->charge_compute(
            0, static_cast<double>(graph_.num_vertices()));
        (void)message;  // content mirrored in partial_; pricing is the point
    }
    cluster_->barrier();
    return count;
}

std::vector<double> BetweennessEngine::scores() const {
    std::vector<double> total(graph_.num_vertices(), 0);
    for (const auto& partial : partial_) {
        for (std::size_t v = 0; v < total.size(); ++v) {
            total[v] += partial[v];
        }
    }
    if (next_pivot_ > 0 && next_pivot_ < pivot_order_.size()) {
        const double scale = static_cast<double>(pivot_order_.size()) /
                             static_cast<double>(next_pivot_);
        for (double& s : total) {
            s *= scale;
        }
    }
    return total;
}

}  // namespace aa
