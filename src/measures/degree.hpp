// Degree centrality — the simplest SNA measure in the paper's family
// ([21][22]). Inherently "anytime anywhere": degree updates are local and
// exact under every dynamic change.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace aa {

/// Raw degree of every vertex.
std::vector<std::size_t> degree_centrality(const DynamicGraph& g);

/// Degree normalized by (n - 1) (Freeman's definition); 0 for n <= 1.
std::vector<double> normalized_degree_centrality(const DynamicGraph& g);

/// Weighted degree (vertex strength).
std::vector<Weight> strength_centrality(const DynamicGraph& g);

/// Ranking by descending degree (ties by id).
std::vector<VertexId> degree_ranking(const DynamicGraph& g);

/// Freeman's graph-level degree centralization in [0, 1]: 1 for a star,
/// 0 for a regular graph.
double degree_centralization(const DynamicGraph& g);

}  // namespace aa
