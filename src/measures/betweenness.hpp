// Betweenness centrality: exact Brandes plus the pivot-sampled approximation
// of Bader, Kintali, Madduri & Mihail — the betweenness approach the paper
// cites as background ([17]) — distributed across the simulated cluster.
//
// Sampled betweenness parallelizes "embarrassingly" over pivot sources, so
// the standard deployment (and ours) replicates the graph on every rank and
// splits the pivots; partial dependency scores are reduced at the end. The
// anytime property takes the form "more pivots, better estimate": the
// engine exposes batched refinement so callers can stop at any accuracy.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"
#include "runtime/cluster.hpp"

namespace aa {

/// Exact betweenness (Brandes 2001) for weighted undirected graphs. Each
/// unordered pair contributes once (the undirected convention: accumulated
/// dependencies are halved).
std::vector<double> exact_betweenness(const DynamicGraph& g);

/// Single-source Brandes dependency accumulation (exposed for tests and for
/// the distributed engine). Adds source `s`'s dependencies into `scores`.
void brandes_accumulate(const DynamicGraph& g, VertexId s,
                        std::vector<double>& scores);

/// Pivot-sampled approximation: extrapolate from `pivots` uniformly sampled
/// sources (scores scaled by n / |pivots|).
std::vector<double> approx_betweenness(const DynamicGraph& g, std::size_t pivots,
                                       Rng& rng);

class BetweennessEngine {
public:
    BetweennessEngine(DynamicGraph graph, EngineConfig cluster_config);
    ~BetweennessEngine();

    BetweennessEngine(const BetweennessEngine&) = delete;
    BetweennessEngine& operator=(const BetweennessEngine&) = delete;

    /// Replicate the graph to every rank (priced as a tree broadcast of the
    /// edge list) and shuffle the pivot order.
    void initialize();

    /// Process `count` more pivots, split round-robin across ranks (each
    /// rank's Brandes runs are charged to its clock; the batch ends with a
    /// partial-score reduction to rank 0, priced as messages). Returns the
    /// number of pivots actually processed (capped by n).
    std::size_t refine(std::size_t count);

    /// Current estimate, scaled to extrapolate from the processed pivots
    /// (exact once every vertex has been a pivot).
    std::vector<double> scores() const;

    std::size_t pivots_processed() const { return next_pivot_; }
    bool exact() const { return next_pivot_ >= pivot_order_.size(); }
    double sim_seconds() const;
    const Cluster& cluster() const { return *cluster_; }

private:
    DynamicGraph graph_;
    EngineConfig config_;
    std::unique_ptr<Cluster> cluster_;
    Rng rng_;
    std::vector<VertexId> pivot_order_;
    std::size_t next_pivot_{0};
    // Per-rank partial dependency sums (rank-private, reduced on demand).
    std::vector<std::vector<double>> partial_;
    bool initialized_{false};
};

}  // namespace aa
