#include "measures/degree.hpp"

#include <algorithm>
#include <numeric>

namespace aa {

std::vector<std::size_t> degree_centrality(const DynamicGraph& g) {
    std::vector<std::size_t> degrees(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        degrees[v] = g.degree(v);
    }
    return degrees;
}

std::vector<double> normalized_degree_centrality(const DynamicGraph& g) {
    const std::size_t n = g.num_vertices();
    std::vector<double> scores(n, 0);
    if (n <= 1) {
        return scores;
    }
    for (VertexId v = 0; v < n; ++v) {
        scores[v] = static_cast<double>(g.degree(v)) / static_cast<double>(n - 1);
    }
    return scores;
}

std::vector<Weight> strength_centrality(const DynamicGraph& g) {
    std::vector<Weight> scores(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        scores[v] = g.weighted_degree(v);
    }
    return scores;
}

std::vector<VertexId> degree_ranking(const DynamicGraph& g) {
    std::vector<VertexId> order(g.num_vertices());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&g](VertexId a, VertexId b) {
        if (g.degree(a) != g.degree(b)) {
            return g.degree(a) > g.degree(b);
        }
        return a < b;
    });
    return order;
}

double degree_centralization(const DynamicGraph& g) {
    const std::size_t n = g.num_vertices();
    if (n <= 2) {
        return 0.0;
    }
    std::size_t max_degree = 0;
    for (VertexId v = 0; v < n; ++v) {
        max_degree = std::max(max_degree, g.degree(v));
    }
    double sum = 0;
    for (VertexId v = 0; v < n; ++v) {
        sum += static_cast<double>(max_degree - g.degree(v));
    }
    // Freeman normalization: the star graph maximizes the numerator at
    // (n - 1)(n - 2).
    return sum / (static_cast<double>(n - 1) * static_cast<double>(n - 2));
}

}  // namespace aa
