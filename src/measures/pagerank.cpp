#include "measures/pagerank.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "runtime/message.hpp"

namespace aa {

namespace {

/// Wire entry: contribution flowing along a cut edge to `target`.
struct Contribution {
    VertexId target;
    double value;
};
static_assert(std::is_trivially_copyable_v<Contribution>);

}  // namespace

std::vector<double> exact_pagerank(const DynamicGraph& g,
                                   const PageRankConfig& config) {
    const std::size_t n = g.num_vertices();
    if (n == 0) {
        return {};
    }
    std::vector<double> score(n, 1.0 / static_cast<double>(n));
    std::vector<double> next(n, 0);
    for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
        double dangling = 0;
        std::fill(next.begin(), next.end(), 0.0);
        for (VertexId v = 0; v < n; ++v) {
            const std::size_t degree = g.degree(v);
            if (degree == 0) {
                dangling += score[v];
                continue;
            }
            const double share = score[v] / static_cast<double>(degree);
            for (const Neighbor& nb : g.neighbors(v)) {
                next[nb.to] += share;
            }
        }
        const double base =
            (1.0 - config.damping + config.damping * dangling) /
            static_cast<double>(n);
        double delta = 0;
        for (VertexId v = 0; v < n; ++v) {
            const double updated = base + config.damping * next[v];
            delta += std::abs(updated - score[v]);
            score[v] = updated;
        }
        if (delta < config.tolerance) {
            break;
        }
    }
    return score;
}

PageRankEngine::PageRankEngine(DynamicGraph graph, EngineConfig cluster_config,
                               PageRankConfig pagerank_config)
    : graph_(std::move(graph)),
      cluster_config_(cluster_config),
      config_(pagerank_config),
      cluster_(std::make_unique<Cluster>(cluster_config.num_ranks,
                                         cluster_config.logp,
                                         cluster_config.schedule)),
      rng_(cluster_config.seed) {}

PageRankEngine::~PageRankEngine() = default;

double PageRankEngine::sim_seconds() const { return cluster_->max_time(); }

void PageRankEngine::initialize() {
    AA_ASSERT_MSG(!initialized_, "initialize() called twice");
    initialized_ = true;

    const std::size_t n = graph_.num_vertices();
    const auto num_ranks = cluster_->num_ranks();

    // Same DD phase as the closeness engine.
    Rng partition_rng = rng_.fork();
    const Partitioning partition = multilevel_partition(
        graph_, num_ranks, partition_rng, cluster_config_.partition);
    owners_ = partition.assignment;

    ranks_.clear();
    ranks_.reserve(num_ranks);
    for (RankId r = 0; r < num_ranks; ++r) {
        RankState state;
        state.sg = LocalSubgraph(r, owners_);
        state.score.assign(state.sg.num_local(), 1.0 / static_cast<double>(n));
        state.incoming.assign(state.sg.num_local(), 0.0);
        ranks_.push_back(std::move(state));
    }
    for (const Edge& e : graph_.edges()) {
        const RankId ru = owners_[e.u];
        const RankId rv = owners_[e.v];
        ranks_[ru].sg.add_local_edge(e.u, e.v, e.weight);
        if (rv != ru) {
            ranks_[rv].sg.add_local_edge(e.u, e.v, e.weight);
        }
    }
}

bool PageRankEngine::iteration() {
    AA_ASSERT_MSG(initialized_, "initialize() must run first");
    if (last_delta_ < config_.tolerance) {
        return false;
    }
    const std::size_t n = graph_.num_vertices();
    const auto num_ranks = cluster_->num_ranks();

    // Scatter: every owned vertex pushes score/degree along each edge.
    // Contributions to remote owners are batched into one message per
    // destination rank; dangling mass is shared via tiny control messages
    // (the allreduce a real deployment would do).
    std::vector<double> dangling_share(num_ranks, 0);
    for (RankId r = 0; r < num_ranks; ++r) {
        RankState& state = ranks_[r];
        std::fill(state.incoming.begin(), state.incoming.end(), 0.0);
        std::vector<std::vector<Contribution>> remote(num_ranks);
        double ops = 0;
        for (LocalId l = 0; l < state.sg.num_local(); ++l) {
            const auto neighbors = state.sg.neighbors(l);
            if (neighbors.empty()) {
                dangling_share[r] += state.score[l];
                continue;
            }
            const double share =
                state.score[l] / static_cast<double>(neighbors.size());
            for (const Neighbor& nb : neighbors) {
                ops += 1;
                const RankId dest = state.sg.owner(nb.to);
                if (dest == r) {
                    state.incoming[state.sg.local_id(nb.to)] += share;
                } else {
                    remote[dest].push_back({nb.to, share});
                }
            }
        }
        for (RankId dest = 0; dest < num_ranks; ++dest) {
            if (dest == r || remote[dest].empty()) {
                continue;
            }
            Serializer out;
            out.write(0.0);  // header slot kept for format stability
            out.write_span(std::span<const Contribution>(remote[dest]));
            cluster_->send(r, dest, MessageTag::Control, out.take());
        }
        cluster_->charge_compute(r, ops);
    }
    // Dangling mass must reach every rank; a real deployment allreduces one
    // scalar per rank — a Θ(P) reduction, charged as such.
    double global_dangling = 0;
    for (RankId r = 0; r < num_ranks; ++r) {
        global_dangling += dangling_share[r];
        cluster_->charge_compute(r, 1);
    }

    cluster_->exchange();

    // Gather & apply.
    const double base = (1.0 - config_.damping) / static_cast<double>(n);
    double total_delta = 0;
    for (RankId r = 0; r < num_ranks; ++r) {
        RankState& state = ranks_[r];
        double ops = 0;
        for (const Message& message : cluster_->receive(r)) {
            Deserializer in(message.bytes());
            global_dangling += in.read<double>();
            for (const Contribution& c : in.read_vector<Contribution>()) {
                state.incoming[state.sg.local_id(c.target)] += c.value;
                ops += 1;
            }
        }
        cluster_->charge_compute(r, ops);
    }
    const double dangling_base =
        config_.damping * global_dangling / static_cast<double>(n);
    for (RankId r = 0; r < num_ranks; ++r) {
        RankState& state = ranks_[r];
        double delta = 0;
        for (LocalId l = 0; l < state.sg.num_local(); ++l) {
            const double updated =
                base + dangling_base + config_.damping * state.incoming[l];
            delta += std::abs(updated - state.score[l]);
            state.score[l] = updated;
        }
        cluster_->charge_compute(r, static_cast<double>(state.sg.num_local()));
        total_delta += delta;
    }
    cluster_->barrier();

    last_delta_ = total_delta;
    ++iterations_;
    return total_delta >= config_.tolerance;
}

std::size_t PageRankEngine::run_to_convergence() {
    std::size_t count = 0;
    while (count < config_.max_iterations && iteration()) {
        ++count;
    }
    return count;
}

void PageRankEngine::add_vertices(const GrowthBatch& batch) {
    AA_ASSERT_MSG(initialized_, "initialize() must run first");
    AA_ASSERT_MSG(batch.base_id == graph_.num_vertices(),
                  "batch does not follow the current vertex space");
    const std::size_t k = batch.num_new;
    const std::size_t new_n = graph_.num_vertices() + k;
    const auto num_ranks = cluster_->num_ranks();

    graph_.add_vertices(k);
    std::vector<RankId> assignment(k);
    for (std::size_t i = 0; i < k; ++i) {
        assignment[i] =
            static_cast<RankId>((round_robin_offset_ + i) % num_ranks);
    }
    round_robin_offset_ =
        static_cast<std::uint32_t>((round_robin_offset_ + k) % num_ranks);
    owners_.insert(owners_.end(), assignment.begin(), assignment.end());

    for (RankId r = 0; r < num_ranks; ++r) {
        RankState& state = ranks_[r];
        state.sg.extend_ownership(assignment);
        state.score.resize(state.sg.num_local(), 1.0 / static_cast<double>(new_n));
        state.incoming.resize(state.sg.num_local(), 0.0);
        cluster_->charge_compute(r, static_cast<double>(k));
    }
    for (const Edge& e : batch.edges) {
        if (!graph_.add_edge(e.u, e.v, e.weight)) {
            continue;
        }
        const RankId ru = owners_[e.u];
        const RankId rv = owners_[e.v];
        ranks_[ru].sg.add_local_edge(e.u, e.v, e.weight);
        if (rv != ru) {
            ranks_[rv].sg.add_local_edge(e.u, e.v, e.weight);
        }
    }
    // The iteration continues from the (now slightly denormalized) scores;
    // power iteration reconverges to the grown graph's fixed point.
    last_delta_ = 1.0;
}

std::vector<double> PageRankEngine::scores() const {
    std::vector<double> out(graph_.num_vertices(), 0);
    for (const RankState& state : ranks_) {
        for (LocalId l = 0; l < state.sg.num_local(); ++l) {
            out[state.sg.global_id(l)] = state.score[l];
        }
    }
    return out;
}

}  // namespace aa
