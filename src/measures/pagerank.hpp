// Distributed PageRank (eigenvector-centrality family) on the same
// anytime-anywhere substrate as the closeness engine.
//
// The paper's framework ([3], prior work [6][8]) covers SNA measures beyond
// closeness; this module demonstrates the claim: the DD phase, the simulated
// cluster, and the anywhere-style dynamic vertex additions are reused
// unchanged, with power iteration as the RC-style refinement loop.
//   * anytime  — every iteration's scores are a valid approximation whose
//     residual shrinks monotonically (up to damping-factor contraction),
//   * anywhere — vertex additions extend the score vector mid-run; the
//     iteration simply continues and reconverges on the grown graph.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/subgraph.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "partition/multilevel.hpp"
#include "runtime/cluster.hpp"

namespace aa {

struct PageRankConfig {
    double damping{0.85};
    /// Converged when the L1 change of one iteration falls below this.
    double tolerance{1e-10};
    std::size_t max_iterations{500};
};

/// Sequential reference implementation.
std::vector<double> exact_pagerank(const DynamicGraph& g,
                                   const PageRankConfig& config = {});

class PageRankEngine {
public:
    PageRankEngine(DynamicGraph graph, EngineConfig cluster_config,
                   PageRankConfig pagerank_config = {});
    ~PageRankEngine();

    PageRankEngine(const PageRankEngine&) = delete;
    PageRankEngine& operator=(const PageRankEngine&) = delete;

    /// DD (multilevel partition) + uniform initial scores.
    void initialize();

    /// One power-iteration superstep: scatter contributions along edges
    /// (cut edges travel as priced messages), gather, apply damping.
    /// Returns false once converged (L1 delta < tolerance).
    bool iteration();

    /// Iterate until convergence or the iteration cap; returns iterations
    /// executed.
    std::size_t run_to_convergence();

    /// Anywhere-style dynamic vertex addition: extend the score space,
    /// assign new vertices round-robin, keep iterating afterwards.
    void add_vertices(const GrowthBatch& batch);

    std::size_t num_vertices() const { return graph_.num_vertices(); }
    double sim_seconds() const;
    /// L1 change of the most recent iteration (anytime residual).
    double last_delta() const { return last_delta_; }
    std::size_t iterations_completed() const { return iterations_; }
    const Cluster& cluster() const { return *cluster_; }

    /// Gathered scores (observer; sums to 1).
    std::vector<double> scores() const;

private:
    struct RankState {
        LocalSubgraph sg;
        std::vector<double> score;      // by local id
        std::vector<double> incoming;   // accumulation buffer
    };

    DynamicGraph graph_;
    EngineConfig cluster_config_;
    PageRankConfig config_;
    std::unique_ptr<Cluster> cluster_;
    Rng rng_;
    std::vector<RankId> owners_;
    std::vector<RankState> ranks_;
    std::size_t iterations_{0};
    double last_delta_{1.0};
    std::uint32_t round_robin_offset_{0};
    bool initialized_{false};
};

}  // namespace aa
