// Closeness centrality: the paper's target measure, plus an exact sequential
// reference used for validation and for measuring anytime solution quality.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace aa {

struct ClosenessScores {
    /// closeness[v] = 1 / sum_t d(v, t) over reachable t (the paper's §IV
    /// definition); 0 if v reaches nothing.
    std::vector<Weight> closeness;
    /// Number of vertices v currently reaches (including itself). With
    /// partial (anytime) results this is how much of the row has converged
    /// to a finite estimate.
    std::vector<std::size_t> reachable;
};

/// Closeness from a full distance matrix (rows may contain kInfinity).
ClosenessScores closeness_from_matrix(const std::vector<std::vector<Weight>>& dist);

/// Exact APSP by sequential Dijkstra from every vertex. O(n (m + n) log n);
/// intended for validation at test scales.
std::vector<std::vector<Weight>> exact_apsp(const DynamicGraph& g);

/// Exact single-source shortest paths.
std::vector<Weight> exact_sssp(const DynamicGraph& g, VertexId source);

/// Exact closeness of every vertex.
ClosenessScores exact_closeness(const DynamicGraph& g);

/// Ranking: vertex ids sorted by descending closeness (ties by id).
std::vector<VertexId> closeness_ranking(const ClosenessScores& scores);

/// Harmonic closeness: sum of 1/d(v, t) over t != v. Unlike the paper's
/// inverse-sum definition it is well-behaved on disconnected graphs
/// (unreachable targets contribute 0 instead of poisoning the sum), so it is
/// the variant to use on multi-component data.
std::vector<Weight> harmonic_closeness_from_matrix(
    const std::vector<std::vector<Weight>>& dist);
std::vector<Weight> exact_harmonic_closeness(const DynamicGraph& g);

/// Eccentricity of each vertex (max finite distance; 0 if nothing reached)
/// and the derived graph diameter / radius over the largest distances.
struct EccentricityStats {
    std::vector<Weight> eccentricity;
    Weight diameter{0};  // max eccentricity
    Weight radius{0};    // min nonzero eccentricity (0 if none)
};
EccentricityStats eccentricity_from_matrix(
    const std::vector<std::vector<Weight>>& dist);

}  // namespace aa
