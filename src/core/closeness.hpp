// Closeness centrality: the paper's target measure, plus an exact sequential
// reference used for validation and for measuring anytime solution quality.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace aa {

/// Which closeness formula to evaluate on (possibly disconnected) graphs.
enum class ClosenessVariant {
    /// Wasserman–Faust component correction (the default):
    ///   c(v) = ((reached-1) / (n-1)) * ((reached-1) / sum),
    /// where `reached` counts v itself. The second factor is classical
    /// closeness within v's reachable set; the first scales it by the
    /// fraction of the graph v can reach, so a vertex in a tiny component
    /// can no longer out-rank hub vertices of the giant component just
    /// because its few finite distances have a small sum. On a connected
    /// graph this is (n-1)/sum — the same ranking as Raw, values scaled by
    /// the constant n-1.
    Corrected,
    /// The paper's raw inverse-sum (1/sum over reachable targets; 0 if v
    /// reaches nothing). Kept behind this flag for figure parity with the
    /// source paper, which evaluates on connected graphs only.
    Raw,
};

/// The shared scoring expression. Every path that turns a distance row into
/// a closeness score (observer-side closeness_from_matrix, the distributed
/// per-rank reduction in AnytimeEngine::compute_closeness_distributed) calls
/// this one inline function so the two agree bit-for-bit.
inline Weight closeness_score(Weight sum, std::size_t reached, std::size_t n,
                              ClosenessVariant variant) {
    if (variant == ClosenessVariant::Raw) {
        return sum > 0 ? 1.0 / sum : 0.0;
    }
    if (sum <= 0 || reached < 2 || n < 2) {
        return 0.0;  // isolated vertex (or singleton graph)
    }
    const Weight r = static_cast<Weight>(reached - 1);
    return (r / static_cast<Weight>(n - 1)) * (r / sum);
}

struct ClosenessScores {
    /// closeness[v] per the requested ClosenessVariant (Corrected unless the
    /// caller asked for Raw).
    std::vector<Weight> closeness;
    /// Number of vertices v currently reaches (including itself). With
    /// partial (anytime) results this is how much of the row has converged
    /// to a finite estimate.
    std::vector<std::size_t> reachable;
};

/// Closeness from a full distance matrix (rows may contain kInfinity).
ClosenessScores closeness_from_matrix(
    const std::vector<std::vector<Weight>>& dist,
    ClosenessVariant variant = ClosenessVariant::Corrected);

/// Exact APSP by sequential Dijkstra from every vertex. O(n (m + n) log n);
/// intended for validation at test scales.
std::vector<std::vector<Weight>> exact_apsp(const DynamicGraph& g);

/// Exact single-source shortest paths.
std::vector<Weight> exact_sssp(const DynamicGraph& g, VertexId source);

/// Exact closeness of every vertex.
ClosenessScores exact_closeness(
    const DynamicGraph& g,
    ClosenessVariant variant = ClosenessVariant::Corrected);

/// Ranking: vertex ids sorted by descending closeness (ties by id).
std::vector<VertexId> closeness_ranking(const ClosenessScores& scores);

/// Harmonic closeness: sum of 1/d(v, t) over t != v. Unlike the paper's
/// inverse-sum definition it is well-behaved on disconnected graphs
/// (unreachable targets contribute 0 instead of poisoning the sum), so it is
/// the variant to use on multi-component data.
std::vector<Weight> harmonic_closeness_from_matrix(
    const std::vector<std::vector<Weight>>& dist);
std::vector<Weight> exact_harmonic_closeness(const DynamicGraph& g);

/// Eccentricity of each vertex (max finite distance; 0 if nothing reached)
/// and the derived graph diameter / radius over the largest distances.
struct EccentricityStats {
    std::vector<Weight> eccentricity;
    Weight diameter{0};  // max eccentricity
    Weight radius{0};    // min nonzero eccentricity (0 if none)
};
EccentricityStats eccentricity_from_matrix(
    const std::vector<std::vector<Weight>>& dist);

}  // namespace aa
