// Vertex-addition recombination strategies (paper §IV.C.1.a/b).
//
// A strategy decides *where* new vertices go and *how* their information is
// incorporated:
//   * RoundRobinPS — cyclic processor assignment + anywhere addition.
//     Cheap, perfectly balanced counts, blind to batch structure.
//   * CutEdgePS    — partitions the batch's internal graph with the
//     multilevel (METIS-style) partitioner, maps parts to the ranks they
//     share the most host edges with, then anywhere addition. Minimizes the
//     new cut-edges a community-structured batch introduces.
//   * RepartitionS — repartitions the whole grown graph and migrates the
//     partial results (DV rows), trading a fixed repartition+migration cost
//     for not paying the per-edge anywhere-update overhead; wins for large
//     batches.
#pragma once

#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

namespace aa {

class VertexAdditionStrategy {
public:
    virtual ~VertexAdditionStrategy() = default;
    virtual std::string_view name() const = 0;
    /// Incorporate `batch` into the running engine.
    virtual void apply(AnytimeEngine& engine, const GrowthBatch& batch) = 0;
};

class RoundRobinPS final : public VertexAdditionStrategy {
public:
    std::string_view name() const override { return "RoundRobin-PS"; }
    void apply(AnytimeEngine& engine, const GrowthBatch& batch) override;

    /// The assignment rule, exposed for tests: vertex i -> (i + offset) % P.
    static std::vector<RankId> assignment(std::size_t count, std::uint32_t num_ranks,
                                          std::uint32_t offset);

private:
    // Rotates across calls so successive batches do not all start at rank 0.
    std::uint32_t offset_{0};
};

class CutEdgePS final : public VertexAdditionStrategy {
public:
    /// `candidates` = number of independently seeded batch partitions to try;
    /// the paper has every processor compute one and keeps the best cut.
    explicit CutEdgePS(std::uint64_t seed = 0xC07, std::size_t candidates = 0)
        : rng_(seed), candidates_(candidates) {}

    std::string_view name() const override { return "CutEdge-PS"; }
    void apply(AnytimeEngine& engine, const GrowthBatch& batch) override;

    /// Compute the assignment without applying it (exposed for tests and the
    /// cut-edge benchmark): partitions the batch-internal graph and maps each
    /// part to the rank with the strongest host affinity.
    std::vector<RankId> assignment(const AnytimeEngine& engine,
                                   const GrowthBatch& batch);

private:
    Rng rng_;
    std::size_t candidates_;  // 0 = one per rank
};

class RepartitionS final : public VertexAdditionStrategy {
public:
    std::string_view name() const override { return "Repartition-S"; }
    void apply(AnytimeEngine& engine, const GrowthBatch& batch) override;
};

}  // namespace aa
