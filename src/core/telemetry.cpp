#include "core/telemetry.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/metrics.hpp"
#include "core/engine.hpp"
#include "runtime/cluster.hpp"

namespace aa {

namespace {

std::string format_double(double v) {
    char buf[64];
    for (int prec = 6; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v) break;
    }
    return buf;
}

}  // namespace

std::string telemetry_json(const AnytimeEngine& engine, int indent) {
    const std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent), ' ');
    const std::string in1 = pad + "  ";
    const std::string in2 = pad + "    ";
    const Cluster& cluster = engine.cluster();

    std::string out = "{\n";
    out += in1 + "\"schema\": \"aa.timeline.v1\",\n";
    out += in1 + "\"sim_seconds\": " + format_double(engine.sim_seconds()) + ",\n";
    out += in1 + "\"rc_steps\": " + std::to_string(engine.rc_steps_completed()) +
           ",\n";
    out += in1 + "\"num_ranks\": " + std::to_string(engine.num_ranks()) + ",\n";

    out += in1 + "\"per_rank\": [";
    for (std::size_t r = 0; r < engine.num_ranks(); ++r) {
        const RankStats& rs = cluster.rank_stats(static_cast<RankId>(r));
        out += (r == 0 ? "\n" : ",\n");
        out += in2 + "{\"rank\":" + std::to_string(r) +
               ",\"ops\":" + format_double(rs.ops) +
               ",\"compute_seconds\":" + format_double(rs.compute_seconds) +
               ",\"messages_sent\":" + std::to_string(rs.messages_sent) +
               ",\"bytes_sent\":" + std::to_string(rs.bytes_sent) +
               ",\"messages_received\":" + std::to_string(rs.messages_received) +
               ",\"bytes_received\":" + std::to_string(rs.bytes_received) + "}";
    }
    out += "\n" + in1 + "],\n";

    out += in1 + "\"steps\": [";
    const auto& history = engine.step_history();
    for (std::size_t i = 0; i < history.size(); ++i) {
        const RcStepStats& s = history[i];
        out += (i == 0 ? "\n" : ",\n");
        out += in2 + "{\"step\":" + std::to_string(s.step) +
               ",\"exchange_seconds\":" + format_double(s.exchange_seconds) +
               ",\"messages\":" + std::to_string(s.messages) +
               ",\"bytes\":" + std::to_string(s.bytes) +
               ",\"ops\":" + format_double(s.ops) +
               ",\"sim_seconds_after\":" + format_double(s.sim_seconds_after) +
               "}";
    }
    if (!history.empty()) {
        out += "\n" + in1;
    }
    out += "],\n";

    out += in1 + "\"metrics\": " + metrics_to_json(engine.metrics(), indent + 2) +
           "\n";
    out += pad + "}";
    return out;
}

std::string telemetry_csv(const AnytimeEngine& engine) {
    return spans_to_csv(engine.metrics().spans());
}

}  // namespace aa
