// Recombination (RC) step primitives.
//
// One RC step (paper Figure 1) is:
//   1. every rank packages the changed entries of its boundary-vertex DVs
//      into one personalized message per neighbouring rank,
//   2. a personalized all-to-all exchange delivers them (priced by the
//      cluster's LogP model under the serialized schedule),
//   3. every rank relaxes its local vertices through the incident cut edges
//      using the received external boundary DVs, then propagates the
//      improvements within its sub-graph to a local fixpoint (the paper's
//      Floyd-Warshall-style local DV refresh, realized as worklist
//      Bellman-Ford relaxations — same fixpoint, incremental cost).
//
// The engine sequences these per rank; the functions here are the per-rank
// kernels and each returns the abstract op count it executed.
//
// Execution modes. The default kernels run *batched*: whole DV-entry spans
// are relaxed through DistanceStore::relax_batch instead of per-element
// relax() calls, and, when a ThreadPool is supplied, the row sweeps run in
// parallel (rows are written by exactly one task each; the worklist merge is
// the only synchronization point). The `_scalar` variants preserve the
// original per-element implementation as the reference for the
// kernel-equivalence tests and the ablation bench. All modes execute the
// same relaxation schedule, so they produce bit-identical distance matrices,
// identical dirty-set contents, and identical op counts — threading changes
// host wall-clock time only, never the simulated LogP accounting.
//
// Op accounting (what each kernel charges to the simulated clock):
//   * rc_post_boundary_updates — one op per drained send column (drain +
//     pack; invalidated — non-finite — columns are drained and charged but
//     never serialized: infinity relaxes nothing remotely, and distance
//     raises travel as explicit ShrinkRaise messages in the deletion path,
//     see core/edge_delete.cpp), plus one op per serialized DV entry *per
//     block*, charged once
//     even when the block is replicated to several destination ranks: the
//     block is encoded once and the bytes are shared across the outgoing
//     messages, so charging per destination would double-count work the
//     implementation (and an MPI rank) does not do. The per-message wire
//     cost is priced separately by the LogP model from the payload bytes.
//   * rc_ingest_updates — one op per received DV entry per incident cut
//     edge (each is one relaxation attempt).
//   * rc_propagate_local — one op per drained column per local neighbour of
//     the drained row (again one attempted relaxation each).
//
// Wire formats and the bytes-on-wire accounting change. The boundary-DV
// payload exists in two layouts (BoundaryWireFormat in distance_store.hpp):
// the historical v1 array-of-structs blocks and the v2 struct-of-arrays
// blocks (delta/run-length varint columns + aligned f64 run). Op pricing is
// charged identically under both — per drained column and per serialized
// entry per block, never per byte — so the relaxation schedule, distance
// matrices, dirty-append order, and op counts are bit-identical across
// formats. What deliberately changes is the *byte count* handed to the LogP
// model: v2 payloads are smaller, so exchange time (and therefore
// sim_seconds) improves under v2. This is an intentional accounting change
// of the same kind as PR 1's encode-once pricing: the simulated cluster
// charges for the bytes an MPI rank would actually put on the wire, and the
// wire just got cheaper. To keep the schedule format-independent, the post
// kernel canonicalizes each block's columns into ascending order for BOTH
// formats (columns within a block are unique, so ordering cannot change any
// relaxation outcome, op count, or dirty-set content — it only fixes the
// within-block entry order and makes payload bytes a pure function of the
// drained set), and the ingest window accounting below measures both formats
// by their *decoded* footprint (entries x sizeof(DvEntry)), so window splits
// are identical under either format.
#pragma once

#include "core/distance_store.hpp"
#include "core/subgraph.hpp"
#include "runtime/cluster.hpp"
#include "runtime/thread_pool.hpp"

namespace aa {

/// Optional kernel-level telemetry, filled when the caller passes a profile
/// (the engine does so only while its MetricsRegistry is enabled). Counters
/// are incremented once per block / window / drained row — never inside the
/// relaxation loops — so profiling cannot perturb kernel-equivalence or the
/// op accounting above.
struct RcPostProfile {
    std::size_t rows_drained{0};  // send-lists drained (incl. interior rows)
    std::size_t blocks{0};        // boundary blocks encoded
    std::size_t entries{0};       // DV entries serialized (once per block)
    std::size_t messages{0};      // personalized messages posted
    std::size_t bytes{0};         // payload bytes posted (replicas counted)
};
struct RcIngestProfile {
    std::size_t blocks{0};          // received blocks with a local audience
    std::size_t entries{0};         // wire entries in those blocks
    std::size_t windows{0};         // payload windows processed
    std::size_t relax_attempts{0};  // (row, entry) relaxation attempts
};
struct RcPropagateProfile {
    std::size_t rows_drained{0};    // worklist pops with a non-empty drain
    std::size_t relax_attempts{0};  // drained columns x neighbour rows
};

/// Phase 1: drain every row's send-list and post one BoundaryDvUpdate message
/// per neighbouring rank that shares a cut edge with the row's vertex. Each
/// row's block is serialized once — in the requested wire format, columns
/// canonically sorted ascending — and the encoded bytes are appended to every
/// destination payload (see the accounting note above). Send-lists of
/// interior rows are drained too (they have no audience; a row that later
/// becomes boundary is re-marked in full by the edge-addition path).
///
/// `row_order` (the refine planner's output, see refine/planner.hpp) makes
/// the drain visit rows in that order instead of ascending LocalId; it must
/// be a permutation of all local rows when non-empty. Reordering the drain
/// changes which blocks land earlier in each destination payload — and
/// therefore the receivers' relaxation order — never the drained set, the
/// op count, or any converged value. An empty order is the historical
/// ascending sweep, byte-identical to the pre-refine kernel.
/// Returns ops.
double rc_post_boundary_updates(const LocalSubgraph& sg, DistanceStore& store,
                                Cluster& cluster,
                                BoundaryWireFormat format = BoundaryWireFormat::V2Soa,
                                RcPostProfile* profile = nullptr,
                                std::span<const LocalId> row_order = {});

/// Minimum relaxation-attempt count per payload window before the window's
/// row groups fan out to the pool: below this, parallel_for dispatch latency
/// outweighs the sweeps. Tests force the parallel branch by passing 1.
inline constexpr std::size_t kRcIngestParallelGrain = 8192;

/// Default payload-window size for the ingest kernel, chosen to keep one
/// window of decoded wire entries resident in the last-level cache while its
/// destination rows are swept. Configurable per engine via
/// EngineConfig::rc_ingest_window_bytes; windowing never changes results
/// (blocks are never torn, within-row arrival order is preserved), only the
/// cache behaviour of the sweep.
inline constexpr std::size_t kRcIngestWindowBytes = std::size_t{128} << 20;

/// Adaptive resolution of the window size for EngineConfig's 0 sentinel: the
/// host's last-level cache size divided by the number of ranks whose ingest
/// phases share it (a ThreadedBackend runs them concurrently), clamped to
/// [4 MiB, 128 MiB]. Falls back to the L2 size, then to 32 MiB, when the host
/// does not report an LLC. Windowing never changes results, so the adaptive
/// choice only moves the cache sweet spot — an explicit config value always
/// wins (pinned by RcIngest.AdaptiveWindowMatchesFixed).
std::size_t adaptive_rc_ingest_window_bytes(std::size_t live_ranks);

/// Phase 3a: apply received BoundaryDvUpdate messages — relax every local
/// endpoint of each cut edge incident to an updated external vertex.
/// Non-BoundaryDvUpdate messages are ignored (callers drain those contexts
/// separately). `format` must match what the senders posted (the payload is
/// not self-describing; the engine applies one config-wide format). Batched:
/// blocks are decoded in place (zero copy — v2 column arrays are the one
/// materialized piece) and processed in payload windows of ~window_bytes of
/// decoded entries whose work is grouped by destination row, so a row is
/// streamed from memory once per window instead of once per incident block
/// and the window's entries stay cache-resident across all their sweeps;
/// within each row, block-arrival order is preserved, keeping results
/// bit-identical to the scalar kernel. With a multi-thread `pool`, a
/// window's row groups (pairwise-disjoint rows) are relaxed in parallel.
/// Returns ops.
double rc_ingest_updates(const LocalSubgraph& sg, DistanceStore& store,
                         const std::vector<Message>& inbox,
                         BoundaryWireFormat format = BoundaryWireFormat::V2Soa,
                         ThreadPool* pool = nullptr,
                         std::size_t parallel_grain = kRcIngestParallelGrain,
                         std::size_t window_bytes = kRcIngestWindowBytes,
                         RcIngestProfile* profile = nullptr);

/// Minimum relaxation-attempt count (drained columns x neighbour rows) before
/// one drained row's sweep fans out to the pool: below this, parallel_for
/// dispatch latency outweighs the sweep. Tests force the parallel branch by
/// passing 1.
inline constexpr std::size_t kRcPropagateParallelGrain = 8192;

/// Column-tile width of the row-blocked propagate sweep. A drained row's
/// changed source values are gathered tile-by-tile into a contiguous scratch
/// buffer (tile_cols x 8 bytes — the default keeps it L1-resident) which is
/// then swept into *every* neighbour row while still hot, so the scattered
/// source-row gather happens once per tile instead of once per neighbour.
/// 0 disables tiling (the per-neighbour relax_batch_from_row reference path,
/// kept for the kernel ablation bench). Tiling cannot change results: each
/// (neighbour, column) pair is relaxed exactly once with the same candidate,
/// columns stay in ascending order per neighbour, and worklist pushes happen
/// in neighbour order after the row's full sweep either way.
inline constexpr std::size_t kRcPropagateTileCols = 4096;

/// Phase 3b: within-rank propagation to fixpoint. Drains the prop worklists
/// in FIFO order, relaxing neighbouring rows through local edges until
/// quiescent. Batched and row-blocked: each drained row's changed columns are
/// gathered into contiguous tiles (see kRcPropagateTileCols) and swept into
/// every local neighbour row with relax_batch_soa; with a multi-thread
/// `pool`, the neighbour rows of one drained row are relaxed in parallel
/// (they are pairwise distinct, so only the worklist merge needs
/// coordination).
///
/// `seed_order` (the refine planner's output) seeds the FIFO in that order
/// instead of ascending LocalId, so hot rows drain — and their improvements
/// recirculate — first. It must be a permutation of all local rows when
/// non-empty; an empty order is the historical ascending seed, byte-identical
/// schedule to the pre-refine kernel. Either way every marked row drains and
/// the same fixpoint is reached (relaxations are monotone), though epsilon-
/// band acceptance means intermediate bits can differ between orders.
///
/// `max_ops` > 0 bounds this call's relaxation attempts: the budget is
/// checked at the top of the drain loop, *before* a row is popped, so an
/// exhausted call leaves every undrained row still marked (convergence is
/// deferred to later steps, never lost) and at least one marked row always
/// drains. 0 = unlimited (the historical drain-to-fixpoint behaviour).
/// Returns ops.
double rc_propagate_local(const LocalSubgraph& sg, DistanceStore& store,
                          ThreadPool* pool = nullptr,
                          std::size_t parallel_grain = kRcPropagateParallelGrain,
                          RcPropagateProfile* profile = nullptr,
                          std::size_t tile_cols = kRcPropagateTileCols,
                          std::span<const LocalId> seed_order = {},
                          double max_ops = 0);

/// Reference implementations: the original one-(row, column)-at-a-time
/// kernels. Kept as ground truth for tests and the rc-kernel ablation bench;
/// bit-identical results and op counts to the batched/threaded paths.
double rc_ingest_updates_scalar(const LocalSubgraph& sg, DistanceStore& store,
                                const std::vector<Message>& inbox,
                                BoundaryWireFormat format = BoundaryWireFormat::V2Soa);
double rc_propagate_local_scalar(const LocalSubgraph& sg, DistanceStore& store);

/// Serialize the payload of one boundary update: repeated blocks, layout per
/// `format`.
///   V1Aos: [u32 vertex][u64 count][count x 12-byte DvEntry].
///   V2Soa: [u32 vertex][varint count][u8 col_encoding][columns]
///          [zero pad to 8][count x f64], where the columns are either
///          delta-varints (encoding 0: first column absolute, then raw
///          deltas >= 1) or run-length runs (encoding 1: varint run count,
///          then per run a varint start gap and a varint (length - 1)); the
///          encoder picks whichever is smaller per block (ties -> deltas).
///          Every v2 block's total size is a multiple of 8, so concatenated
///          blocks keep each distance run 8-aligned — the property that lets
///          receivers view it in place as an aligned f64 span.
/// V2 requires each block's entries sorted by strictly ascending column
/// (asserted); rc_post_boundary_updates canonicalizes to that order for both
/// formats.
struct BoundaryBlock {
    VertexId vertex;
    std::vector<DvEntry> entries;
};
std::vector<std::byte> encode_boundary_blocks(
    const std::vector<BoundaryBlock>& blocks,
    BoundaryWireFormat format = BoundaryWireFormat::V2Soa);

/// Decode a boundary-update payload. The payload is validated structurally
/// before anything proportional to a declared count is allocated; malformed
/// payloads (truncated headers or varints, overlong varints, unknown column
/// encodings, non-monotone or overflowing column deltas, run lengths that
/// disagree with the entry count, nonzero padding, entry counts past the
/// payload end — overflow-safely) fail an AA_ASSERT contract check.
std::vector<BoundaryBlock> decode_boundary_blocks(
    std::span<const std::byte> payload,
    BoundaryWireFormat format = BoundaryWireFormat::V2Soa);

/// Zero-copy v1 variant: the same structural validation, but each block's
/// entries stay in place as a DvEntrySpan over the payload bytes instead of
/// being copied into an owning vector. Views are valid only while the
/// payload's storage is alive — the ingest kernel consumes them inside the
/// message loop. This is the decode the batched kernel uses for v1 payloads:
/// the copying variant would stream every entry through memory twice before
/// the first relaxation reads it.
struct BoundaryBlockView {
    VertexId vertex;
    DvEntrySpan entries;
};
std::vector<BoundaryBlockView> decode_boundary_block_views(
    std::span<const std::byte> payload);

/// Zero-copy v2 variant: per block, a strictly-ascending column span and the
/// aligned in-place f64 distance span — exactly the shape
/// DistanceStore::relax_batch_soa consumes. The distance spans point into
/// `payload`; the column spans point into `column_arena`, which the call
/// clears and refills (varint columns are the one piece that must be
/// materialized). Views are valid while both the payload bytes and the arena
/// remain alive and the arena is not mutated. Same validation contract as
/// decode_boundary_blocks; a hostile payload can never force an allocation
/// larger than O(payload size).
struct BoundaryBlockSoaView {
    VertexId vertex;
    std::span<const VertexId> cols;
    std::span<const Weight> dists;
};
std::vector<BoundaryBlockSoaView> decode_boundary_block_soa_views(
    std::span<const std::byte> payload, std::vector<VertexId>& column_arena);

}  // namespace aa
