// Recombination (RC) step primitives.
//
// One RC step (paper Figure 1) is:
//   1. every rank packages the changed entries of its boundary-vertex DVs
//      into one personalized message per neighbouring rank,
//   2. a personalized all-to-all exchange delivers them (priced by the
//      cluster's LogP model under the serialized schedule),
//   3. every rank relaxes its local vertices through the incident cut edges
//      using the received external boundary DVs, then propagates the
//      improvements within its sub-graph to a local fixpoint (the paper's
//      Floyd-Warshall-style local DV refresh, realized as worklist
//      Bellman-Ford relaxations — same fixpoint, incremental cost).
//
// The engine sequences these per rank; the functions here are the per-rank
// kernels and each returns the abstract op count it executed.
//
// Execution modes. The default kernels run *batched*: whole DV-entry spans
// are relaxed through DistanceStore::relax_batch instead of per-element
// relax() calls, and, when a ThreadPool is supplied, the row sweeps run in
// parallel (rows are written by exactly one task each; the worklist merge is
// the only synchronization point). The `_scalar` variants preserve the
// original per-element implementation as the reference for the
// kernel-equivalence tests and the ablation bench. All modes execute the
// same relaxation schedule, so they produce bit-identical distance matrices,
// identical dirty-set contents, and identical op counts — threading changes
// host wall-clock time only, never the simulated LogP accounting.
//
// Op accounting (what each kernel charges to the simulated clock):
//   * rc_post_boundary_updates — one op per drained send column (drain +
//     pack), plus one op per serialized DV entry *per block*, charged once
//     even when the block is replicated to several destination ranks: the
//     block is encoded once and the bytes are shared across the outgoing
//     messages, so charging per destination would double-count work the
//     implementation (and an MPI rank) does not do. The per-message wire
//     cost is priced separately by the LogP model from the payload bytes.
//   * rc_ingest_updates — one op per received DV entry per incident cut
//     edge (each is one relaxation attempt).
//   * rc_propagate_local — one op per drained column per local neighbour of
//     the drained row (again one attempted relaxation each).
#pragma once

#include "core/distance_store.hpp"
#include "core/subgraph.hpp"
#include "runtime/cluster.hpp"
#include "runtime/thread_pool.hpp"

namespace aa {

/// Optional kernel-level telemetry, filled when the caller passes a profile
/// (the engine does so only while its MetricsRegistry is enabled). Counters
/// are incremented once per block / window / drained row — never inside the
/// relaxation loops — so profiling cannot perturb kernel-equivalence or the
/// op accounting above.
struct RcPostProfile {
    std::size_t rows_drained{0};  // send-lists drained (incl. interior rows)
    std::size_t blocks{0};        // boundary blocks encoded
    std::size_t entries{0};       // DV entries serialized (once per block)
    std::size_t messages{0};      // personalized messages posted
    std::size_t bytes{0};         // payload bytes posted (replicas counted)
};
struct RcIngestProfile {
    std::size_t blocks{0};          // received blocks with a local audience
    std::size_t entries{0};         // wire entries in those blocks
    std::size_t windows{0};         // payload windows processed
    std::size_t relax_attempts{0};  // (row, entry) relaxation attempts
};
struct RcPropagateProfile {
    std::size_t rows_drained{0};    // worklist pops with a non-empty drain
    std::size_t relax_attempts{0};  // drained columns x neighbour rows
};

/// Phase 1: drain every row's send-list and post one BoundaryDvUpdate message
/// per neighbouring rank that shares a cut edge with the row's vertex. Each
/// row's block is serialized once and the encoded bytes are appended to every
/// destination payload (see the accounting note above). Send-lists of
/// interior rows are drained too (they have no audience; a row that later
/// becomes boundary is re-marked in full by the edge-addition path).
/// Returns ops.
double rc_post_boundary_updates(const LocalSubgraph& sg, DistanceStore& store,
                                Cluster& cluster,
                                RcPostProfile* profile = nullptr);

/// Minimum relaxation-attempt count per payload window before the window's
/// row groups fan out to the pool: below this, parallel_for dispatch latency
/// outweighs the sweeps. Tests force the parallel branch by passing 1.
inline constexpr std::size_t kRcIngestParallelGrain = 8192;

/// Phase 3a: apply received BoundaryDvUpdate messages — relax every local
/// endpoint of each cut edge incident to an updated external vertex.
/// Non-BoundaryDvUpdate messages are ignored (callers drain those contexts
/// separately). Batched: blocks are decoded in place (zero copy) and
/// processed in LLC-sized payload windows whose work is grouped by
/// destination row, so a row is streamed from memory once per window instead
/// of once per incident block and the window's entries stay cache-resident
/// across all their sweeps; within each row, block-arrival order is
/// preserved, keeping results bit-identical to the scalar kernel. With a
/// multi-thread `pool`, a window's row groups (pairwise-disjoint rows) are
/// relaxed in parallel. Returns ops.
double rc_ingest_updates(const LocalSubgraph& sg, DistanceStore& store,
                         const std::vector<Message>& inbox,
                         ThreadPool* pool = nullptr,
                         std::size_t parallel_grain = kRcIngestParallelGrain,
                         RcIngestProfile* profile = nullptr);

/// Minimum relaxation-attempt count (drained columns x neighbour rows) before
/// one drained row's sweep fans out to the pool: below this, parallel_for
/// dispatch latency outweighs the sweep. Tests force the parallel branch by
/// passing 1.
inline constexpr std::size_t kRcPropagateParallelGrain = 8192;

/// Phase 3b: within-rank propagation to fixpoint. Drains the prop worklists
/// in FIFO order, relaxing neighbouring rows through local edges until
/// quiescent. Batched: each drained row's changed columns are swept into
/// every local neighbour row with relax_batch; with a multi-thread `pool`,
/// the neighbour rows of one drained row are relaxed in parallel (they are
/// pairwise distinct, so only the worklist merge needs coordination).
/// Returns ops.
double rc_propagate_local(const LocalSubgraph& sg, DistanceStore& store,
                          ThreadPool* pool = nullptr,
                          std::size_t parallel_grain = kRcPropagateParallelGrain,
                          RcPropagateProfile* profile = nullptr);

/// Reference implementations: the original one-(row, column)-at-a-time
/// kernels. Kept as ground truth for tests and the rc-kernel ablation bench;
/// bit-identical results and op counts to the batched/threaded paths.
double rc_ingest_updates_scalar(const LocalSubgraph& sg, DistanceStore& store,
                                const std::vector<Message>& inbox);
double rc_propagate_local_scalar(const LocalSubgraph& sg, DistanceStore& store);

/// Serialize the payload of one boundary update: repeated blocks of
/// [global vertex][entry count][entries].
struct BoundaryBlock {
    VertexId vertex;
    std::vector<DvEntry> entries;
};
std::vector<std::byte> encode_boundary_blocks(const std::vector<BoundaryBlock>& blocks);

/// Decode a boundary-update payload. The payload is validated structurally
/// (headers complete, every declared entry count fits in the remaining
/// bytes — overflow-safely) before any allocation happens; malformed
/// payloads fail an AA_ASSERT contract check.
std::vector<BoundaryBlock> decode_boundary_blocks(std::span<const std::byte> payload);

/// Zero-copy variant: the same structural validation, but each block's
/// entries stay in place as a DvEntrySpan over the payload bytes instead of
/// being copied into an owning vector. Views are valid only while the
/// payload's storage is alive — the ingest kernel consumes them inside the
/// message loop. This is the decode the batched kernel uses: the copying
/// variant would stream every entry through memory twice before the first
/// relaxation reads it.
struct BoundaryBlockView {
    VertexId vertex;
    DvEntrySpan entries;
};
std::vector<BoundaryBlockView> decode_boundary_block_views(
    std::span<const std::byte> payload);

}  // namespace aa
