// Recombination (RC) step primitives.
//
// One RC step (paper Figure 1) is:
//   1. every rank packages the changed entries of its boundary-vertex DVs
//      into one personalized message per neighbouring rank,
//   2. a personalized all-to-all exchange delivers them (priced by the
//      cluster's LogP model under the serialized schedule),
//   3. every rank relaxes its local vertices through the incident cut edges
//      using the received external boundary DVs, then propagates the
//      improvements within its sub-graph to a local fixpoint (the paper's
//      Floyd-Warshall-style local DV refresh, realized as worklist
//      Bellman-Ford relaxations — same fixpoint, incremental cost).
//
// The engine sequences these per rank; the functions here are the per-rank
// kernels and each returns the abstract op count it executed.
#pragma once

#include "core/distance_store.hpp"
#include "core/subgraph.hpp"
#include "runtime/cluster.hpp"

namespace aa {

/// Phase 1: drain every row's send-list and post one BoundaryDvUpdate message
/// per neighbouring rank that shares a cut edge with the row's vertex.
/// Send-lists of interior rows are drained too (they have no audience; a row
/// that later becomes boundary is re-marked in full by the edge-addition
/// path). Returns ops.
double rc_post_boundary_updates(const LocalSubgraph& sg, DistanceStore& store,
                                Cluster& cluster);

/// Phase 3a: apply received BoundaryDvUpdate messages — relax every local
/// endpoint of each cut edge incident to an updated external vertex.
/// Non-BoundaryDvUpdate messages are ignored (callers drain those contexts
/// separately). Returns ops.
double rc_ingest_updates(const LocalSubgraph& sg, DistanceStore& store,
                         const std::vector<Message>& inbox);

/// Phase 3b: within-rank propagation to fixpoint. Drains the prop worklists,
/// relaxing neighbouring rows through local edges until quiescent. Returns
/// ops.
double rc_propagate_local(const LocalSubgraph& sg, DistanceStore& store);

/// Serialize the payload of one boundary update: repeated blocks of
/// [global vertex][entry count][entries].
struct BoundaryBlock {
    VertexId vertex;
    std::vector<DvEntry> entries;
};
std::vector<std::byte> encode_boundary_blocks(const std::vector<BoundaryBlock>& blocks);
std::vector<BoundaryBlock> decode_boundary_blocks(std::span<const std::byte> payload);

}  // namespace aa
