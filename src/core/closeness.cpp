#include "core/closeness.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/assert.hpp"

namespace aa {

ClosenessScores closeness_from_matrix(const std::vector<std::vector<Weight>>& dist,
                                      ClosenessVariant variant) {
    ClosenessScores scores;
    const std::size_t n = dist.size();
    scores.closeness.resize(n, 0);
    scores.reachable.resize(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
        AA_ASSERT(dist[v].size() == n);
        Weight sum = 0;
        std::size_t reached = 0;
        for (std::size_t t = 0; t < n; ++t) {
            if (dist[v][t] < kInfinity) {
                sum += dist[v][t];
                ++reached;
            }
        }
        scores.reachable[v] = reached;
        scores.closeness[v] = closeness_score(sum, reached, n, variant);
    }
    return scores;
}

std::vector<Weight> exact_sssp(const DynamicGraph& g, VertexId source) {
    const std::size_t n = g.num_vertices();
    AA_ASSERT(source < n);
    std::vector<Weight> dist(n, kInfinity);
    using HeapItem = std::pair<Weight, VertexId>;
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
    dist[source] = 0;
    heap.push({0, source});
    while (!heap.empty()) {
        const auto [d, u] = heap.top();
        heap.pop();
        if (d > dist[u]) {
            continue;
        }
        for (const Neighbor& nb : g.neighbors(u)) {
            const Weight candidate = d + nb.weight;
            if (candidate < dist[nb.to]) {
                dist[nb.to] = candidate;
                heap.push({candidate, nb.to});
            }
        }
    }
    return dist;
}

std::vector<std::vector<Weight>> exact_apsp(const DynamicGraph& g) {
    std::vector<std::vector<Weight>> dist;
    dist.reserve(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        dist.push_back(exact_sssp(g, v));
    }
    return dist;
}

ClosenessScores exact_closeness(const DynamicGraph& g, ClosenessVariant variant) {
    return closeness_from_matrix(exact_apsp(g), variant);
}

std::vector<Weight> harmonic_closeness_from_matrix(
    const std::vector<std::vector<Weight>>& dist) {
    const std::size_t n = dist.size();
    std::vector<Weight> scores(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
        AA_ASSERT(dist[v].size() == n);
        Weight sum = 0;
        for (std::size_t t = 0; t < n; ++t) {
            if (t != v && dist[v][t] < kInfinity && dist[v][t] > 0) {
                sum += 1.0 / dist[v][t];
            }
        }
        scores[v] = sum;
    }
    return scores;
}

std::vector<Weight> exact_harmonic_closeness(const DynamicGraph& g) {
    return harmonic_closeness_from_matrix(exact_apsp(g));
}

EccentricityStats eccentricity_from_matrix(
    const std::vector<std::vector<Weight>>& dist) {
    EccentricityStats stats;
    const std::size_t n = dist.size();
    stats.eccentricity.resize(n, 0);
    bool any = false;
    for (std::size_t v = 0; v < n; ++v) {
        Weight ecc = 0;
        for (std::size_t t = 0; t < n; ++t) {
            if (dist[v][t] < kInfinity) {
                ecc = std::max(ecc, dist[v][t]);
            }
        }
        stats.eccentricity[v] = ecc;
        if (ecc > 0) {
            stats.radius = any ? std::min(stats.radius, ecc) : ecc;
            stats.diameter = std::max(stats.diameter, ecc);
            any = true;
        }
    }
    return stats;
}

std::vector<VertexId> closeness_ranking(const ClosenessScores& scores) {
    std::vector<VertexId> order(scores.closeness.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
        if (scores.closeness[a] != scores.closeness[b]) {
            return scores.closeness[a] > scores.closeness[b];
        }
        return a < b;
    });
    return order;
}

}  // namespace aa
