// Per-rank local sub-graph state.
//
// Following the paper's §IV.A: rank p owns vertex set V_p; its local
// sub-graph G_p = (V_p ∪ B_p, E_p) where E_p is every edge with at least one
// endpoint in V_p and B_p is the set of *external boundary vertices* —
// vertices owned elsewhere that are adjacent to V_p. Local vertices with a
// cut edge are *local boundary vertices*; their distance vectors are what
// gets exchanged in each RC step.
//
// Each rank also keeps the global ownership map (as every MPI rank would
// after the DD phase broadcast) so it can route updates. Since PR 9 that map
// is the two-level ShardOwnership (vertex -> shard -> rank): repointing a
// shard re-routes every vertex in it without touching the per-vertex table,
// which is what incremental migration (release()/adopt_migrated()) keys off.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"
#include "shard/ownership.hpp"

namespace aa {

class LocalSubgraph {
public:
    LocalSubgraph() = default;

    /// Create for rank `rank` given the shard ownership map; adopts every
    /// vertex v with owner(v) == rank in ascending global order. Adjacency
    /// must then be populated via add_local_edge for each global edge
    /// incident to an owned vertex.
    LocalSubgraph(RankId rank, ShardOwnership ownership);

    /// Flat-map convenience (tests, kernel fixtures): wraps `owners` in a
    /// one-shard-per-rank ShardOwnership, which resolves identically.
    LocalSubgraph(RankId rank, std::vector<RankId> owners);

    RankId rank() const { return rank_; }

    std::size_t num_local() const { return locals_.size(); }
    std::size_t num_global() const { return ownership_.num_vertices(); }

    bool owns(VertexId global) const { return ownership_.owned_by(global, rank_); }
    RankId owner(VertexId global) const { return ownership_.owner(global); }

    /// This rank's replica of the global shard map.
    const ShardOwnership& ownership() const { return ownership_; }

    LocalId local_id(VertexId global) const {
        const auto it = index_.find(global);
        AA_ASSERT_MSG(it != index_.end(), "vertex not owned by this rank");
        return it->second;
    }
    VertexId global_id(LocalId local) const {
        AA_ASSERT(local < locals_.size());
        return locals_[local];
    }
    const std::vector<VertexId>& local_vertices() const { return locals_; }

    /// Neighbors (by global id) of an owned vertex.
    std::span<const Neighbor> neighbors(LocalId local) const {
        AA_ASSERT(local < adjacency_.size());
        return adjacency_[local];
    }

    /// Record that the global graph gained `count` vertices owned per
    /// `new_owners` (appended to the ownership map). Returns local ids of the
    /// ones this rank adopted (in input order, kInvalidVertex for others).
    void extend_ownership(std::span<const RankId> new_owners);

    /// Adopt ownership of an (already registered) global vertex.
    LocalId adopt(VertexId global);

    /// Repoint shard `s` in this rank's replica of the shard map (migration
    /// publish). Pure metadata: local rows are moved separately via
    /// release()/adopt_migrated().
    void set_shard_rank(ShardId s, RankId rank) { ownership_.set_shard_rank(s, rank); }

    /// Migration, outbound side: drop the (formerly owned, now remote) vertex
    /// from the local structures. The shard map must already point its shard
    /// elsewhere. Its still-local neighbors keep their adjacency entries and
    /// gain the matching external (cut-edge) reverse index; the last local row
    /// is swap-moved into the vacated slot. Returns that slot so the caller
    /// can mirror the swap in its DistanceStore (swap_remove_row).
    LocalId release(VertexId global);

    /// Migration, inbound side: adopt `global` (whose shard now maps here)
    /// together with its full adjacency as shipped by the releasing rank.
    /// Reverse cut-edge indices are rebuilt on both sides of the move.
    LocalId adopt_migrated(VertexId global, std::span<const Neighbor> adjacency);

    /// Add edge {u, v} to the local adjacency; at least one endpoint must be
    /// owned. Stored on each owned endpoint. Idempotent additions are the
    /// caller's responsibility (mirrors DynamicGraph::add_edge semantics).
    void add_local_edge(VertexId u, VertexId v, Weight w);

    /// Update the weight of an existing local edge {u, v} on every owned
    /// endpoint (including the external-adjacency mirror entries).
    void update_edge_weight(VertexId u, VertexId v, Weight w);

    /// Remove edge {u, v} from every owned endpoint's adjacency and from the
    /// external-adjacency mirror. A vertex left with no cut edges drops out of
    /// external_boundary(). No-op if the edge is not present locally.
    void remove_local_edge(VertexId u, VertexId v);

    /// True if the owned vertex has at least one neighbor on another rank.
    bool is_boundary(LocalId local) const;

    /// Ranks owning at least one neighbor of `local` (excluding this rank).
    std::vector<RankId> neighbor_ranks(LocalId local) const;

    /// Local endpoints (with edge weights) of cut edges to the external
    /// vertex `global`; empty if `global` is not an external boundary vertex
    /// of this rank. This is the reverse index used to apply received
    /// boundary-DV updates.
    std::span<const std::pair<LocalId, Weight>> external_neighbors(VertexId global) const;

    /// All external boundary vertices (B_p) currently adjacent to this rank.
    std::vector<VertexId> external_boundary() const;

    /// Replace the ownership map wholesale (Repartition-S). The caller must
    /// rebuild locals/adjacency afterwards via adopt()/add_local_edge().
    void reset_ownership(ShardOwnership ownership);

    /// Flat-map convenience overload (tests): one shard per rank.
    void reset_ownership(std::vector<RankId> owners);

private:
    RankId rank_{0};
    ShardOwnership ownership_;                       // global vertex -> shard -> rank
    std::vector<VertexId> locals_;                   // local -> global
    std::unordered_map<VertexId, LocalId> index_;    // global -> local
    std::vector<std::vector<Neighbor>> adjacency_;   // by local id, global targets
    // external vertex -> (local endpoint, weight) of each incident cut edge
    std::unordered_map<VertexId, std::vector<std::pair<LocalId, Weight>>> external_adj_;
};

}  // namespace aa
