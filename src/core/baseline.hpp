// Baseline restart: the comparison point of the paper's Figure 4 and 8 —
// a static analysis that throws everything away and recomputes DD+IA+RC from
// scratch whenever the graph changes.
#pragma once

#include <cstddef>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace aa {

/// `host` grown by `batch` (vertices appended, edges added).
DynamicGraph apply_batch(const DynamicGraph& host, const GrowthBatch& batch);

/// Simulated time of one full static run (DD + IA + RC to quiescence).
struct StaticRun {
    double sim_seconds{0};
    std::size_t rc_steps{0};
};
StaticRun static_run(const DynamicGraph& graph, const EngineConfig& config);

/// The restart policy for a single batch injected at RC step `inject_step`:
/// progress on the host graph up to that step is wasted, then the grown graph
/// is recomputed from scratch.
struct RestartRun {
    double wasted_seconds{0};     // progress discarded at the change
    double recompute_seconds{0};  // the from-scratch rerun
    std::size_t recompute_rc_steps{0};

    double total_seconds() const { return wasted_seconds + recompute_seconds; }
};
RestartRun baseline_restart(const DynamicGraph& host, const GrowthBatch& batch,
                            std::size_t inject_step, const EngineConfig& config);

}  // namespace aa
