#include "core/ia.hpp"

#include <atomic>
#include <cmath>
#include <numeric>
#include <queue>
#include <unordered_map>
#include <vector>

namespace aa {

namespace {

/// The local sub-graph in index-compressed form: owned vertices keep their
/// LocalId; external boundary vertices get ids [num_local, num_local + |B_p|).
///
/// External vertices are *terminals*, not transit nodes: cut edges point into
/// them but they have no outgoing adjacency. A path that left the partition
/// and re-entered through a second cut edge would produce an estimate whose
/// intermediate value exists in no rank's row (the external owner never
/// computed it), silently breaking the support invariant every row write
/// otherwise maintains — each finite d(x, t) is witnessed by a graph
/// neighbour y with d(x, t) >= w(x, y) + d(y, t) against y's owner row.
/// Fully-dynamic deletions depend on that invariant to find every stale
/// entry (see edge_delete.cpp); the through-boundary shortcuts IA would
/// otherwise discover arrive anyway with the first RC exchange.
struct SubCsr {
    std::vector<VertexId> sub_to_global;
    std::vector<std::vector<std::pair<std::uint32_t, Weight>>> adjacency;
};

SubCsr build_sub_csr(const LocalSubgraph& sg) {
    SubCsr csr;
    const std::size_t num_local = sg.num_local();
    csr.sub_to_global.resize(num_local);
    for (LocalId l = 0; l < num_local; ++l) {
        csr.sub_to_global[l] = sg.global_id(l);
    }
    std::unordered_map<VertexId, std::uint32_t> external_index;
    const auto externals = sg.external_boundary();
    for (const VertexId b : externals) {
        external_index.emplace(b, static_cast<std::uint32_t>(csr.sub_to_global.size()));
        csr.sub_to_global.push_back(b);
    }

    csr.adjacency.resize(csr.sub_to_global.size());
    for (LocalId l = 0; l < num_local; ++l) {
        for (const Neighbor& nb : sg.neighbors(l)) {
            std::uint32_t target;
            if (sg.owns(nb.to)) {
                target = sg.local_id(nb.to);
                // Local-local edges appear in both endpoints' adjacency;
                // adding only the forward direction here keeps them single.
                csr.adjacency[l].push_back({target, nb.weight});
            } else {
                // Terminal only: no reverse entry (see the SubCsr comment).
                target = external_index.at(nb.to);
                csr.adjacency[l].push_back({target, nb.weight});
            }
        }
    }
    return csr;
}

}  // namespace

double ia_dijkstra(const LocalSubgraph& sg, DistanceStore& store, ThreadPool& pool,
                   std::span<const LocalId> sources, bool mark_prop,
                   IaProfile* profile) {
    if (sources.empty() || sg.num_local() == 0) {
        return 0;
    }
    const SubCsr csr = build_sub_csr(sg);
    const std::size_t sub_n = csr.sub_to_global.size();

    std::vector<double> ops(sources.size(), 0);
    // Per-source so the parallel fold below stays race-free.
    std::vector<std::size_t> folds(sources.size(), 0);

    pool.parallel_for(0, sources.size(), [&](std::size_t i) {
        const LocalId source = sources[i];
        double local_ops = 0;

        std::vector<Weight> dist(sub_n, kInfinity);
        using HeapItem = std::pair<Weight, std::uint32_t>;
        std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
        dist[source] = 0;
        heap.push({0, source});

        while (!heap.empty()) {
            const auto [d, u] = heap.top();
            heap.pop();
            local_ops += std::log2(static_cast<double>(heap.size() + 2));
            if (d > dist[u]) {
                continue;  // stale entry
            }
            for (const auto& [v, w] : csr.adjacency[u]) {
                local_ops += 1;
                const Weight candidate = d + w;
                if (candidate < dist[v]) {
                    dist[v] = candidate;
                    heap.push({candidate, v});
                    local_ops += std::log2(static_cast<double>(heap.size() + 2));
                }
            }
        }

        // Fold into the distance store. Rows are disjoint across sources, so
        // this is race-free under parallel_for.
        for (std::uint32_t s = 0; s < sub_n; ++s) {
            if (dist[s] < kInfinity) {
                store.relax(source, csr.sub_to_global[s], dist[s], mark_prop,
                            /*mark_send=*/true);
                local_ops += 1;
                ++folds[i];
            }
        }
        ops[i] = local_ops;
    });

    if (profile != nullptr) {
        profile->sources += sources.size();
        profile->sub_vertices += sub_n;
        profile->folds += std::accumulate(folds.begin(), folds.end(),
                                          std::size_t{0});
    }
    return std::accumulate(ops.begin(), ops.end(), 0.0);
}

double ia_dijkstra_all(const LocalSubgraph& sg, DistanceStore& store,
                       ThreadPool& pool, IaProfile* profile) {
    std::vector<LocalId> sources(sg.num_local());
    std::iota(sources.begin(), sources.end(), 0);
    return ia_dijkstra(sg, store, pool, sources, /*mark_prop=*/false, profile);
}

double ia_delta_stepping(const LocalSubgraph& sg, DistanceStore& store,
                         ThreadPool& pool, std::span<const LocalId> sources,
                         bool mark_prop, Weight delta, IaProfile* profile) {
    if (sources.empty() || sg.num_local() == 0) {
        return 0;
    }
    const SubCsr csr = build_sub_csr(sg);
    const std::size_t sub_n = csr.sub_to_global.size();

    if (delta <= 0) {
        // Heuristic: average edge weight (Meyer & Sanders suggest Θ(1/max
        // degree) for unit weights; the average works well for our graphs).
        Weight total = 0;
        std::size_t count = 0;
        for (const auto& adjacency : csr.adjacency) {
            for (const auto& [v, w] : adjacency) {
                total += w;
                ++count;
            }
        }
        delta = count > 0 ? std::max<Weight>(total / static_cast<Weight>(count), 1e-9)
                          : 1.0;
    }

    // Pre-split edges into light (w <= delta) and heavy.
    std::vector<std::vector<std::pair<std::uint32_t, Weight>>> light(sub_n);
    std::vector<std::vector<std::pair<std::uint32_t, Weight>>> heavy(sub_n);
    for (std::uint32_t u = 0; u < sub_n; ++u) {
        for (const auto& [v, w] : csr.adjacency[u]) {
            (w <= delta ? light : heavy)[u].push_back({v, w});
        }
    }

    std::vector<double> ops(sources.size(), 0);
    std::vector<std::size_t> folds(sources.size(), 0);
    const Weight local_delta = delta;

    pool.parallel_for(0, sources.size(), [&](std::size_t i) {
        const LocalId source = sources[i];
        double local_ops = 0;

        std::vector<Weight> dist(sub_n, kInfinity);
        std::vector<std::vector<std::uint32_t>> buckets(1);
        const auto bucket_of = [&](Weight d) {
            return static_cast<std::size_t>(d / local_delta);
        };
        const auto place = [&](std::uint32_t v, Weight d) {
            const std::size_t b = bucket_of(d);
            if (b >= buckets.size()) {
                buckets.resize(b + 1);
            }
            buckets[b].push_back(v);
        };

        dist[source] = 0;
        place(source, 0);

        std::vector<std::uint32_t> settled;
        std::vector<std::uint32_t> frontier;
        for (std::size_t b = 0; b < buckets.size(); ++b) {
            settled.clear();
            // Light-edge phase: reprocess the bucket until it stops refilling
            // (light relaxations can reinsert into the same bucket).
            while (!buckets[b].empty()) {
                frontier.swap(buckets[b]);
                buckets[b].clear();
                for (const std::uint32_t u : frontier) {
                    local_ops += 1;
                    if (bucket_of(dist[u]) != b) {
                        continue;  // stale entry (improved into an earlier bucket)
                    }
                    settled.push_back(u);
                    for (const auto& [v, w] : light[u]) {
                        local_ops += 1;
                        const Weight candidate = dist[u] + w;
                        if (candidate < dist[v]) {
                            dist[v] = candidate;
                            place(v, candidate);
                        }
                    }
                }
            }
            // Heavy-edge phase: each settled vertex relaxes its heavy edges
            // once (they always land in later buckets).
            for (const std::uint32_t u : settled) {
                for (const auto& [v, w] : heavy[u]) {
                    local_ops += 1;
                    const Weight candidate = dist[u] + w;
                    if (candidate < dist[v]) {
                        dist[v] = candidate;
                        place(v, candidate);
                    }
                }
            }
        }

        // `settled` may contain duplicates of vertices later re-settled in
        // the same bucket epoch; dist[] is the single source of truth when
        // folding into the store.
        for (std::uint32_t s = 0; s < sub_n; ++s) {
            if (dist[s] < kInfinity) {
                store.relax(source, csr.sub_to_global[s], dist[s], mark_prop,
                            /*mark_send=*/true);
                local_ops += 1;
                ++folds[i];
            }
        }
        ops[i] = local_ops;
    });

    if (profile != nullptr) {
        profile->sources += sources.size();
        profile->sub_vertices += sub_n;
        profile->folds += std::accumulate(folds.begin(), folds.end(),
                                          std::size_t{0});
    }
    return std::accumulate(ops.begin(), ops.end(), 0.0);
}

}  // namespace aa
