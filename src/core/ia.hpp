// Initial approximation (IA): multithreaded Dijkstra on the local sub-graph.
//
// Each rank seeds its distance vectors by running Dijkstra from every owned
// vertex over G_p = (V_p ∪ B_p, E_p) — the paper's IA phase (§IV.B). The
// same routine seeds freshly created rows after Repartition-S.
#pragma once

#include <span>

#include "core/distance_store.hpp"
#include "core/subgraph.hpp"
#include "runtime/thread_pool.hpp"

namespace aa {

/// Optional kernel-level telemetry, filled when the caller passes a profile
/// (the engine does so only while its MetricsRegistry is enabled). `folds`
/// counts the finite distances folded into the store — i.e. how much of the
/// sub-graph each IA sweep actually reached — aggregated over all sources.
struct IaProfile {
    std::size_t sources{0};
    std::size_t sub_vertices{0};  // owned + external boundary vertices
    std::size_t folds{0};
};

/// Run Dijkstra from each of `sources` (row / local ids) on the local
/// sub-graph and fold the results into `store` via relax().
///
/// `mark_prop` controls whether improvements enter the local propagation
/// worklist: false for a full IA (every row is already at the local-subgraph
/// fixpoint), true for partial seeding (other rows still need to hear about
/// these values). Improvements are always marked for sending.
///
/// Returns the abstract operation count (heap operations + edge relaxations)
/// for LogP charging; the caller divides by the thread count via
/// Cluster::charge_compute.
double ia_dijkstra(const LocalSubgraph& sg, DistanceStore& store, ThreadPool& pool,
                   std::span<const LocalId> sources, bool mark_prop,
                   IaProfile* profile = nullptr);

/// Convenience: run from every owned vertex (the full IA phase).
double ia_dijkstra_all(const LocalSubgraph& sg, DistanceStore& store,
                       ThreadPool& pool, IaProfile* profile = nullptr);

/// Delta-stepping SSSP (Meyer & Sanders) as an alternative IA kernel: bucket
/// the tentative distances in width-`delta` ranges, settle a bucket with
/// light-edge relaxations, then relax its heavy edges. For delta <= min edge
/// weight it degenerates to Dijkstra; larger deltas trade extra relaxations
/// for bucket-level parallelism — the knob `ablate_ia_kernel` sweeps.
/// delta <= 0 picks a heuristic (average edge weight).
double ia_delta_stepping(const LocalSubgraph& sg, DistanceStore& store,
                         ThreadPool& pool, std::span<const LocalId> sources,
                         bool mark_prop, Weight delta = 0,
                         IaProfile* profile = nullptr);

}  // namespace aa
