#include "core/baseline.hpp"

namespace aa {

DynamicGraph apply_batch(const DynamicGraph& host, const GrowthBatch& batch) {
    DynamicGraph grown = host;
    const VertexId base = grown.add_vertices(batch.num_new);
    AA_ASSERT_MSG(base == batch.base_id, "batch does not follow the host graph");
    for (const Edge& e : batch.edges) {
        grown.add_edge(e.u, e.v, e.weight);
    }
    return grown;
}

StaticRun static_run(const DynamicGraph& graph, const EngineConfig& config) {
    AnytimeEngine engine(graph, config);
    engine.initialize();
    StaticRun run;
    run.rc_steps = engine.run_to_quiescence();
    run.sim_seconds = engine.sim_seconds();
    return run;
}

RestartRun baseline_restart(const DynamicGraph& host, const GrowthBatch& batch,
                            std::size_t inject_step, const EngineConfig& config) {
    RestartRun result;
    {
        // Progress until the change arrives; all of it is thrown away.
        AnytimeEngine engine(host, config);
        engine.initialize();
        engine.run_rc_steps(inject_step);
        result.wasted_seconds = engine.sim_seconds();
    }
    const StaticRun rerun = static_run(apply_batch(host, batch), config);
    result.recompute_seconds = rerun.sim_seconds;
    result.recompute_rc_steps = rerun.rc_steps;
    return result;
}

}  // namespace aa
