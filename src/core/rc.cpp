#include "core/rc.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <deque>
#include <limits>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "runtime/message.hpp"

namespace aa {

namespace {

/// v2 column-encoding selectors (the u8 after the entry-count varint).
constexpr std::uint8_t kColDeltaVarint = 0;
constexpr std::uint8_t kColRunLength = 1;

/// Wire size of the delta-varint encoding of a strictly ascending column
/// array: first column absolute, then raw deltas (>= 1 by strictness).
std::size_t delta_columns_size(std::span<const VertexId> cols) {
    std::size_t bytes = varint_size(cols[0]);
    for (std::size_t i = 1; i < cols.size(); ++i) {
        bytes += varint_size(cols[i] - cols[i - 1]);
    }
    return bytes;
}

/// Wire size of the run-length encoding: varint run count, then per maximal
/// consecutive run a varint start gap (absolute for the first run, offset
/// from the previous run's last column otherwise — always >= 2, since a gap
/// of 1 would merge the runs) and a varint (run length - 1). Dense blocks —
/// later RC rounds ship near-full rows — collapse to a few bytes total,
/// which is what pushes the aggregate byte reduction past what per-entry
/// deltas alone can reach (a delta is never smaller than 1 byte/entry).
std::size_t rle_columns_size(std::span<const VertexId> cols) {
    std::size_t runs = 0;
    std::size_t bytes = 0;
    std::size_t i = 0;
    while (i < cols.size()) {
        std::size_t j = i + 1;
        while (j < cols.size() && cols[j] == cols[j - 1] + 1) {
            ++j;
        }
        const std::uint32_t gap =
            runs == 0 ? cols[i] : cols[i] - cols[i - 1];  // cols[i-1] = prev run end
        bytes += varint_size(gap) + varint_size(j - i - 1);
        ++runs;
        i = j;
    }
    return bytes + varint_size(runs);
}

void write_delta_columns(Serializer& out, std::span<const VertexId> cols) {
    out.write_varint(cols[0]);
    for (std::size_t i = 1; i < cols.size(); ++i) {
        out.write_varint(cols[i] - cols[i - 1]);
    }
}

void write_rle_columns(Serializer& out, std::span<const VertexId> cols,
                       std::size_t num_runs) {
    out.write_varint(num_runs);
    std::size_t runs = 0;
    std::size_t i = 0;
    while (i < cols.size()) {
        std::size_t j = i + 1;
        while (j < cols.size() && cols[j] == cols[j - 1] + 1) {
            ++j;
        }
        out.write_varint(runs == 0 ? cols[i] : cols[i] - cols[i - 1]);
        out.write_varint(j - i - 1);
        ++runs;
        i = j;
    }
    AA_ASSERT(runs == num_runs);
}

/// Encode one v2 block. `cols` must be strictly ascending (asserted); the
/// encoder deterministically picks the smaller column encoding (tie goes to
/// delta-varint) so identical inputs always produce identical bytes. The
/// trailing pad keeps the block size a multiple of 8 — every block in a
/// concatenated payload therefore starts 8-aligned and its f64 run can be
/// read in place.
void encode_v2_block(Serializer& out, VertexId vertex, std::span<const VertexId> cols,
                     std::span<const Weight> dists) {
    AA_ASSERT(cols.size() == dists.size());
    out.write(vertex);
    out.write_varint(cols.size());
    if (cols.empty()) {
        out.write(kColDeltaVarint);
    } else {
        for (std::size_t i = 1; i < cols.size(); ++i) {
            AA_ASSERT_MSG(cols[i] > cols[i - 1], "v2 block columns not ascending");
        }
        const std::size_t delta_bytes = delta_columns_size(cols);
        // Probe the RLE size only when it can win: it needs at most one
        // varint pair per run, so with r runs it beats n deltas only if the
        // run structure is coarse. Computing both sizes is O(n) either way;
        // keep it simple and exact.
        const std::size_t rle_bytes = rle_columns_size(cols);
        if (rle_bytes < delta_bytes) {
            out.write(kColRunLength);
            // Recover the run count from the size pass: rle_columns_size
            // walked the same runs; recompute here to avoid threading state.
            std::size_t runs = 0;
            for (std::size_t i = 0; i < cols.size();) {
                std::size_t j = i + 1;
                while (j < cols.size() && cols[j] == cols[j - 1] + 1) {
                    ++j;
                }
                ++runs;
                i = j;
            }
            write_rle_columns(out, cols, runs);
        } else {
            out.write(kColDeltaVarint);
            write_delta_columns(out, cols);
        }
    }
    out.pad_to(sizeof(Weight));
    out.write_bytes(std::as_bytes(dists));
}

/// Decode the column section of one v2 block into `out` (appending exactly
/// `count` strictly ascending columns) and advance `cursor` past it. All
/// structural failure modes assert with greppable messages (see rc.hpp).
void decode_v2_columns(std::span<const std::byte> payload, std::size_t& cursor,
                       std::uint32_t count, std::uint8_t encoding,
                       std::vector<VertexId>& out) {
    if (encoding == kColDeltaVarint) {
        std::uint64_t col = read_varint_u32(payload, cursor);
        out.push_back(static_cast<VertexId>(col));
        for (std::uint32_t i = 1; i < count; ++i) {
            const std::uint32_t delta = read_varint_u32(payload, cursor);
            AA_ASSERT_MSG(delta >= 1, "boundary block non-monotone column delta");
            col += delta;
            AA_ASSERT_MSG(col <= std::numeric_limits<VertexId>::max(),
                          "boundary block column overflow");
            out.push_back(static_cast<VertexId>(col));
        }
    } else {
        const std::uint32_t num_runs = read_varint_u32(payload, cursor);
        AA_ASSERT_MSG(num_runs >= 1 && num_runs <= count,
                      "boundary block run count invalid");
        std::uint64_t produced = 0;
        std::uint64_t prev_end = 0;
        for (std::uint32_t r = 0; r < num_runs; ++r) {
            const std::uint32_t gap = read_varint_u32(payload, cursor);
            std::uint64_t start;
            if (r == 0) {
                start = gap;
            } else {
                AA_ASSERT_MSG(gap >= 1, "boundary block non-monotone column delta");
                start = prev_end + gap;
            }
            const std::uint64_t len =
                static_cast<std::uint64_t>(read_varint_u32(payload, cursor)) + 1;
            AA_ASSERT_MSG(produced + len <= count,
                          "boundary block run length mismatch");
            const std::uint64_t end = start + len - 1;
            AA_ASSERT_MSG(end <= std::numeric_limits<VertexId>::max(),
                          "boundary block column overflow");
            for (std::uint64_t c = start; c <= end; ++c) {
                out.push_back(static_cast<VertexId>(c));
            }
            produced += len;
            prev_end = end;
        }
        AA_ASSERT_MSG(produced == count, "boundary block run length mismatch");
    }
}

/// Shared v1 validation pass: walk the block headers and check every
/// declared entry count against the remaining payload *before* anything is
/// allocated, so a malformed (or hostile) length prefix cannot trigger a
/// huge allocation. Returns the number of blocks.
std::size_t validate_boundary_payload_v1(std::span<const std::byte> payload) {
    constexpr std::size_t kHeaderBytes = sizeof(VertexId) + sizeof(std::uint64_t);
    std::size_t cursor = 0;
    std::size_t block_count = 0;
    while (cursor < payload.size()) {
        AA_ASSERT_MSG(payload.size() - cursor >= kHeaderBytes,
                      "boundary block header truncated");
        std::uint64_t declared = 0;
        std::memcpy(&declared, payload.data() + cursor + sizeof(VertexId),
                    sizeof(declared));
        cursor += kHeaderBytes;
        // Division keeps the comparison overflow-safe even for declared
        // counts near 2^64.
        AA_ASSERT_MSG(declared <= (payload.size() - cursor) / sizeof(DvEntry),
                      "boundary block entry count exceeds payload");
        cursor += static_cast<std::size_t>(declared) * sizeof(DvEntry);
        ++block_count;
    }
    return block_count;
}

}  // namespace

std::vector<std::byte> encode_boundary_blocks(const std::vector<BoundaryBlock>& blocks,
                                              BoundaryWireFormat format) {
    Serializer out;
    std::vector<VertexId> cols;
    std::vector<Weight> dists;
    for (const BoundaryBlock& block : blocks) {
        if (format == BoundaryWireFormat::V1Aos) {
            out.write(block.vertex);
            out.write_span(std::span<const DvEntry>(block.entries));
        } else {
            cols.clear();
            dists.clear();
            for (const DvEntry& entry : block.entries) {
                cols.push_back(entry.column);
                dists.push_back(entry.distance);
            }
            encode_v2_block(out, block.vertex, cols, dists);
        }
    }
    return out.take();
}

std::vector<BoundaryBlock> decode_boundary_blocks(std::span<const std::byte> payload,
                                                  BoundaryWireFormat format) {
    std::vector<BoundaryBlock> blocks;
    if (format == BoundaryWireFormat::V2Soa) {
        std::vector<VertexId> arena;
        for (const BoundaryBlockSoaView& view :
             decode_boundary_block_soa_views(payload, arena)) {
            BoundaryBlock block;
            block.vertex = view.vertex;
            block.entries.reserve(view.cols.size());
            for (std::size_t i = 0; i < view.cols.size(); ++i) {
                block.entries.push_back({view.cols[i], view.dists[i]});
            }
            blocks.push_back(std::move(block));
        }
        return blocks;
    }
    blocks.reserve(validate_boundary_payload_v1(payload));
    Deserializer in(payload);
    while (!in.exhausted()) {
        BoundaryBlock block;
        block.vertex = in.read<VertexId>();
        block.entries = in.read_vector<DvEntry>();
        blocks.push_back(std::move(block));
    }
    return blocks;
}

std::vector<BoundaryBlockSoaView> decode_boundary_block_soa_views(
    std::span<const std::byte> payload, std::vector<VertexId>& column_arena) {
    column_arena.clear();
    // The arena may still reallocate while blocks stream in, so record index
    // ranges first and convert them to spans only once the walk is done. Any
    // hostile count is bounded before columns are materialized: `count`
    // entries need count * 8 distance bytes later in the payload, so a block
    // can never append more than remaining/8 columns before the exact check
    // below rejects it — total allocation stays O(payload size).
    struct RawBlock {
        VertexId vertex;
        std::size_t col_start;
        std::uint32_t count;
        std::size_t dist_offset;
    };
    std::vector<RawBlock> raw;
    std::size_t cursor = 0;
    while (cursor < payload.size()) {
        AA_ASSERT_MSG(payload.size() - cursor >= sizeof(VertexId),
                      "boundary block header truncated");
        VertexId vertex;
        std::memcpy(&vertex, payload.data() + cursor, sizeof(vertex));
        cursor += sizeof(vertex);
        const std::uint32_t count = read_varint_u32(payload, cursor);
        AA_ASSERT_MSG(count <= (payload.size() - cursor) / sizeof(Weight),
                      "boundary block entry count exceeds payload");
        AA_ASSERT_MSG(cursor < payload.size(), "boundary block header truncated");
        const auto encoding = static_cast<std::uint8_t>(payload[cursor++]);
        AA_ASSERT_MSG(encoding == kColDeltaVarint || encoding == kColRunLength,
                      "boundary block unknown column encoding");
        const std::size_t col_start = column_arena.size();
        if (count > 0) {
            decode_v2_columns(payload, cursor, count, encoding, column_arena);
        }
        while ((cursor & (sizeof(Weight) - 1)) != 0) {
            AA_ASSERT_MSG(cursor < payload.size(), "boundary block padding truncated");
            AA_ASSERT_MSG(payload[cursor] == std::byte{0},
                          "boundary block padding corrupt");
            ++cursor;
        }
        AA_ASSERT_MSG(count <= (payload.size() - cursor) / sizeof(Weight),
                      "boundary block entry count exceeds payload");
        raw.push_back({vertex, col_start, count, cursor});
        cursor += static_cast<std::size_t>(count) * sizeof(Weight);
    }
    std::vector<BoundaryBlockSoaView> views;
    views.reserve(raw.size());
    for (const RawBlock& block : raw) {
        const std::byte* dist_bytes = payload.data() + block.dist_offset;
        // In-place f64 view: the encoder's 8-byte block quantum plus the
        // allocator's >= 8-byte base alignment make this cast safe; asserted
        // because a caller handing us an offset sub-span would break it.
        AA_ASSERT((reinterpret_cast<std::uintptr_t>(dist_bytes) &
                   (alignof(Weight) - 1)) == 0);
        views.push_back({block.vertex,
                         {column_arena.data() + block.col_start, block.count},
                         {reinterpret_cast<const Weight*>(dist_bytes), block.count}});
    }
    return views;
}

std::vector<BoundaryBlockView> decode_boundary_block_views(
    std::span<const std::byte> payload) {
    std::vector<BoundaryBlockView> blocks;
    blocks.reserve(validate_boundary_payload_v1(payload));
    constexpr std::size_t kHeaderBytes = sizeof(VertexId) + sizeof(std::uint64_t);
    std::size_t cursor = 0;
    while (cursor < payload.size()) {
        BoundaryBlockView block;
        std::memcpy(&block.vertex, payload.data() + cursor, sizeof(VertexId));
        std::uint64_t declared = 0;
        std::memcpy(&declared, payload.data() + cursor + sizeof(VertexId),
                    sizeof(declared));
        cursor += kHeaderBytes;
        block.entries = DvEntrySpan(payload.data() + cursor,
                                    static_cast<std::size_t>(declared));
        cursor += static_cast<std::size_t>(declared) * sizeof(DvEntry);
        blocks.push_back(block);
    }
    return blocks;
}

double rc_post_boundary_updates(const LocalSubgraph& sg, DistanceStore& store,
                                Cluster& cluster, BoundaryWireFormat format,
                                RcPostProfile* profile,
                                std::span<const LocalId> row_order) {
    AA_ASSERT_MSG(row_order.empty() || row_order.size() == sg.num_local(),
                  "refine plan must be a permutation of all local rows");
    const RankId me = sg.rank();
    const std::uint32_t num_ranks = cluster.num_ranks();
    double ops = 0;

    // Per-destination payloads: each sending row's block is encoded exactly
    // once and its bytes appended to every destination buffer (both payload
    // formats are plain concatenations of self-aligned blocks). The entry
    // counts ride along so the cluster can price the message by decoded
    // footprint under PriceModel::PerEntry.
    std::vector<std::vector<std::byte>> outgoing(num_ranks);
    std::vector<std::size_t> outgoing_entries(num_ranks, 0);
    std::vector<VertexId> sorted_cols;  // reused across rows
    std::vector<DvEntry> entries;       // reused across rows (v1)
    std::vector<Weight> dists;          // reused across rows (v2)
    Serializer encoder;                 // reused across rows

    for (std::size_t i = 0; i < sg.num_local(); ++i) {
        // A refine plan visits rows in planner priority order; the empty
        // default is the historical ascending sweep (see rc.hpp).
        const LocalId l =
            row_order.empty() ? static_cast<LocalId>(i) : row_order[i];
        if (!store.has_send(l)) {
            continue;
        }
        const auto cols = store.take_send(l);
        const auto destinations = sg.neighbor_ranks(l);
        ops += static_cast<double>(cols.size());
        if (profile != nullptr) {
            ++profile->rows_drained;
        }
        if (destinations.empty()) {
            continue;  // interior row: changes have no external audience
        }
        // Canonicalize to ascending column order for BOTH formats: columns
        // within a drain are unique, so ordering cannot change any receiver
        // outcome or the op count — it makes the block bytes a pure function
        // of the drained set (v2's delta encoding requires it, v1 follows so
        // the two formats execute the identical relaxation schedule).
        // Non-finite entries are dropped at drain time: an invalidated column
        // may sit in the send set (the deletion path re-dirties what it
        // raises), but infinity relaxes nothing remotely — raises travel as
        // explicit ShrinkRaise messages, never as boundary-DV entries.
        const auto row = store.row(l);
        sorted_cols.clear();
        for (const VertexId col : cols) {
            if (row[col] < kInfinity) {
                sorted_cols.push_back(col);
            }
        }
        std::sort(sorted_cols.begin(), sorted_cols.end());
        if (sorted_cols.empty()) {
            continue;
        }
        encoder.clear();
        if (format == BoundaryWireFormat::V2Soa) {
            dists.clear();
            dists.reserve(sorted_cols.size());
            for (const VertexId col : sorted_cols) {
                dists.push_back(row[col]);
            }
            encode_v2_block(encoder, sg.global_id(l), sorted_cols, dists);
        } else {
            entries.clear();
            entries.reserve(sorted_cols.size());
            for (const VertexId col : sorted_cols) {
                entries.push_back({col, row[col]});
            }
            encoder.write(sg.global_id(l));
            encoder.write_span(std::span<const DvEntry>(entries));
        }
        const auto block_bytes = encoder.view();
        // Serialization cost is charged once per block, not once per
        // destination: the encoded bytes are shared (see rc.hpp).
        ops += static_cast<double>(sorted_cols.size());
        if (profile != nullptr) {
            ++profile->blocks;
            profile->entries += sorted_cols.size();
        }
        for (const RankId dest : destinations) {
            outgoing[dest].insert(outgoing[dest].end(), block_bytes.begin(),
                                  block_bytes.end());
            outgoing_entries[dest] += sorted_cols.size();
        }
    }

    for (RankId dest = 0; dest < num_ranks; ++dest) {
        if (dest == me || outgoing[dest].empty()) {
            continue;
        }
        if (profile != nullptr) {
            ++profile->messages;
            profile->bytes += outgoing[dest].size();
        }
        cluster.send(me, dest, MessageTag::BoundaryDvUpdate, std::move(outgoing[dest]),
                     outgoing_entries[dest]);
    }
    return ops;
}

std::size_t adaptive_rc_ingest_window_bytes(std::size_t live_ranks) {
    long llc = -1;
#if defined(_SC_LEVEL3_CACHE_SIZE)
    llc = ::sysconf(_SC_LEVEL3_CACHE_SIZE);
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
    if (llc <= 0) {
        llc = ::sysconf(_SC_LEVEL2_CACHE_SIZE);
    }
#endif
    const std::size_t cache =
        llc > 0 ? static_cast<std::size_t>(llc) : (std::size_t{32} << 20);
    const std::size_t share = cache / std::max<std::size_t>(live_ranks, 1);
    return std::clamp(share, std::size_t{4} << 20, std::size_t{128} << 20);
}

namespace {

/// One relaxation work item: apply block `block` to local row `row` through
/// a cut edge of weight `w`.
struct IngestPair {
    LocalId row;
    std::uint32_t block;
    Weight w;
};

}  // namespace

double rc_ingest_updates(const LocalSubgraph& sg, DistanceStore& store,
                         const std::vector<Message>& inbox, BoundaryWireFormat format,
                         ThreadPool* pool, std::size_t parallel_grain,
                         std::size_t window_bytes, RcIngestProfile* profile) {
    // Pass 1: decode every received block in place (zero copy — v1 views and
    // v2 distance spans point into the message payloads, which outlive this
    // call; v2 column spans point into per-message arenas kept alive below)
    // and flatten the work into (row, block, weight) pairs, one per incident
    // cut edge, in block-arrival order.
    double ops = 0;
    std::vector<BoundaryBlockView> views;          // v1 blocks
    std::vector<BoundaryBlockSoaView> soa_views;   // v2 blocks
    std::vector<std::vector<VertexId>> arenas;     // v2 column storage
    std::vector<IngestPair> pairs;
    // Shared admission step: record the block's work if it has a local
    // audience. Returns true if the caller should keep the decoded block.
    const auto admit = [&](VertexId vertex, std::size_t entry_count,
                           std::uint32_t view_index) {
        const auto locals = sg.external_neighbors(vertex);
        if (locals.empty() || entry_count == 0) {
            return false;
        }
        ops += static_cast<double>(entry_count) * static_cast<double>(locals.size());
        if (profile != nullptr) {
            ++profile->blocks;
            profile->entries += entry_count;
            profile->relax_attempts += entry_count * locals.size();
        }
        for (const auto& [local, w] : locals) {
            pairs.push_back({local, view_index, w});
        }
        return true;
    };
    for (const Message& message : inbox) {
        if (message.tag != MessageTag::BoundaryDvUpdate) {
            continue;
        }
        if (format == BoundaryWireFormat::V2Soa) {
            auto& arena = arenas.emplace_back();
            for (const BoundaryBlockSoaView& block :
                 decode_boundary_block_soa_views(message.bytes(), arena)) {
                if (admit(block.vertex, block.cols.size(),
                          static_cast<std::uint32_t>(soa_views.size()))) {
                    soa_views.push_back(block);
                }
            }
        } else {
            for (const BoundaryBlockView& block :
                 decode_boundary_block_views(message.bytes())) {
                if (admit(block.vertex, block.entries.size(),
                          static_cast<std::uint32_t>(views.size()))) {
                    views.push_back(block);
                }
            }
        }
    }
    if (pairs.empty()) {
        return ops;
    }
    // Window accounting and the relaxation sweep, format-abstracted. Window
    // sizes are measured in *decoded* entry footprint (sizeof(DvEntry) per
    // entry) for both formats, so the window splits — and therefore the
    // whole schedule — are identical whichever format is on the wire.
    const auto block_entries = [&](std::uint32_t b) {
        return format == BoundaryWireFormat::V2Soa ? soa_views[b].cols.size()
                                                   : views[b].entries.size();
    };
    const auto relax_block = [&](const IngestPair& pr) {
        if (format == BoundaryWireFormat::V2Soa) {
            const BoundaryBlockSoaView& b = soa_views[pr.block];
            store.relax_batch_soa(pr.row, b.cols, b.dists, pr.w);
        } else {
            store.relax_batch(pr.row, views[pr.block].entries, pr.w);
        }
    };

    // Pass 2: process the pairs in payload *windows*. A round's inbox can be
    // far larger than the cache, and the blocks incident to one row arrive
    // scattered across it — sweeping in raw arrival order re-streams every
    // destination row from DRAM once per incident block. Instead, take blocks
    // (in arrival order) until their entries total ~kRcIngestWindowBytes,
    // bucket that window's pairs stably by destination row, and sweep each
    // row's pairs back to back: the row's cache lines are loaded once per
    // window instead of once per block, and the window's payload stays
    // LLC-resident across all of its sweeps. Relaxation outcomes are
    // bit-identical to the scalar kernel: rows are independent, and within
    // one row the stable bucketing preserves block-arrival order, so every
    // (row, column) sees the same candidates in the same order.
    const std::size_t num_rows = sg.num_local();
    std::vector<std::uint32_t> bucket(num_rows + 1);
    std::vector<IngestPair> by_row;        // window pairs grouped by row
    std::vector<std::uint32_t> group_start;  // pair index where each row group begins
    std::size_t p = 0;
    while (p < pairs.size()) {
        const std::size_t begin = p;
        std::size_t accumulated_bytes = 0;
        std::size_t window_attempts = 0;
        std::uint32_t last_block = std::numeric_limits<std::uint32_t>::max();
        while (p < pairs.size()) {
            const IngestPair& pr = pairs[p];
            if (pr.block != last_block) {
                // Pairs of one block are consecutive, so windows split only
                // at block boundaries (a block is never torn across windows,
                // and a window always takes at least one block even when a
                // single block exceeds window_bytes).
                const std::size_t bytes = block_entries(pr.block) * sizeof(DvEntry);
                if (accumulated_bytes != 0 && accumulated_bytes + bytes > window_bytes) {
                    break;
                }
                accumulated_bytes += bytes;
                last_block = pr.block;
            }
            window_attempts += block_entries(pr.block);
            ++p;
        }

        if (profile != nullptr) {
            ++profile->windows;
        }

        // Stable counting sort of the window's pairs by destination row.
        const std::span<const IngestPair> window(pairs.data() + begin, p - begin);
        std::fill(bucket.begin(), bucket.end(), 0);
        for (const IngestPair& pr : window) {
            ++bucket[pr.row + 1];
        }
        for (std::size_t r = 0; r < num_rows; ++r) {
            bucket[r + 1] += bucket[r];
        }
        by_row.resize(window.size());
        for (const IngestPair& pr : window) {
            by_row[bucket[pr.row]++] = pr;
        }

        group_start.clear();
        for (std::size_t i = 0; i < by_row.size(); ++i) {
            if (i == 0 || by_row[i].row != by_row[i - 1].row) {
                group_start.push_back(static_cast<std::uint32_t>(i));
            }
        }
        group_start.push_back(static_cast<std::uint32_t>(by_row.size()));

        // Each group is one destination row — groups are pairwise disjoint,
        // so they can fan out to the pool with the worklist merge inside the
        // store as the only shared state per row.
        const std::size_t num_groups = group_start.size() - 1;
        if (pool != nullptr && pool->num_threads() > 1 && num_groups > 1 &&
            window_attempts >= parallel_grain) {
            pool->parallel_for(0, num_groups, [&](std::size_t g) {
                for (std::uint32_t i = group_start[g]; i < group_start[g + 1]; ++i) {
                    relax_block(by_row[i]);
                }
            });
        } else {
            for (std::size_t g = 0; g < num_groups; ++g) {
                for (std::uint32_t i = group_start[g]; i < group_start[g + 1]; ++i) {
                    relax_block(by_row[i]);
                }
            }
        }
    }
    return ops;
}

double rc_propagate_local(const LocalSubgraph& sg, DistanceStore& store,
                          ThreadPool* pool, std::size_t parallel_grain,
                          RcPropagateProfile* profile, std::size_t tile_cols,
                          std::span<const LocalId> seed_order, double max_ops) {
    AA_ASSERT_MSG(seed_order.empty() || seed_order.size() == sg.num_local(),
                  "refine plan must be a permutation of all local rows");
    double ops = 0;
    std::deque<LocalId> worklist;
    std::vector<std::uint8_t> queued(sg.num_local(), 0);
    for (std::size_t i = 0; i < sg.num_local(); ++i) {
        const LocalId l =
            seed_order.empty() ? static_cast<LocalId>(i) : seed_order[i];
        if (store.has_prop(l)) {
            worklist.push_back(l);
            queued[l] = 1;
        }
    }

    struct Target {
        LocalId v;
        Weight w;
    };
    std::vector<Target> targets;       // reused: local neighbour rows
    std::vector<std::uint8_t> improved;  // reused: per-target improvement flags
    std::vector<VertexId> sorted_cols;   // reused: drained columns in column order
    std::vector<Weight> gathered;        // reused: contiguous drained source values
    // Scratch bitmap for linear-time column ordering (one bit per column).
    std::vector<std::uint64_t> col_bits((store.num_columns() + 63) / 64, 0);

    while (!worklist.empty()) {
        // Budget check *before* the pop: an exhausted call leaves every
        // undrained row marked, so nothing is lost — later steps finish the
        // drain (see rc.hpp). ops starts at 0 < max_ops, so at least one
        // marked row always drains per call.
        if (max_ops > 0 && ops >= max_ops) {
            break;
        }
        const LocalId u = worklist.front();
        worklist.pop_front();
        queued[u] = 0;
        const auto cols = store.take_prop(u);
        if (cols.empty()) {
            continue;
        }
        if (profile != nullptr) {
            ++profile->rows_drained;
        }
        // Order the drained columns. They are unique (epoch-deduplicated), so
        // reordering cannot change any relaxation outcome — but a sorted
        // sweep walks both the source and the target row forward instead of
        // scattering, and the ordering cost is paid once per drained row yet
        // reused across all its neighbours. Large drains order via the
        // scratch bitmap in O(k + columns/64); small ones with a plain sort.
        sorted_cols.assign(cols.begin(), cols.end());
        if (sorted_cols.size() >= 64) {
            for (const VertexId col : sorted_cols) {
                col_bits[col >> 6] |= std::uint64_t{1} << (col & 63);
            }
            sorted_cols.clear();
            for (std::size_t w = 0; w < col_bits.size(); ++w) {
                std::uint64_t word = col_bits[w];
                if (word == 0) {
                    continue;
                }
                col_bits[w] = 0;
                while (word != 0) {
                    const auto bit = static_cast<VertexId>(std::countr_zero(word));
                    sorted_cols.push_back(static_cast<VertexId>(w << 6) + bit);
                    word &= word - 1;
                }
            }
        } else {
            std::sort(sorted_cols.begin(), sorted_cols.end());
        }
        const auto row_u = store.row(u);
        targets.clear();
        for (const Neighbor& nb : sg.neighbors(u)) {
            if (!sg.owns(nb.to)) {
                continue;  // cross-rank propagation happens via RC messages
            }
            targets.push_back({sg.local_id(nb.to), nb.weight});
        }
        if (targets.empty()) {
            continue;
        }
        ops += static_cast<double>(sorted_cols.size()) *
               static_cast<double>(targets.size());
        if (profile != nullptr) {
            profile->relax_attempts += sorted_cols.size() * targets.size();
        }

        // Fan the sweep out only when the work dwarfs the dispatch cost.
        // Neighbour rows are pairwise distinct (simple graph) and distinct
        // from u, so each task owns its destination row exclusively; the
        // worklist merge below is the only synchronization point.
        const bool fan_out = pool != nullptr && pool->num_threads() > 1 &&
                             targets.size() > 1 &&
                             sorted_cols.size() * targets.size() >= parallel_grain;
        if (tile_cols == 0) {
            // Untiled reference path: every neighbour re-gathers the source
            // values through the column indices (kept for the kernel bench).
            if (fan_out) {
                improved.assign(targets.size(), 0);
                pool->parallel_for(0, targets.size(), [&](std::size_t i) {
                    improved[i] = store.relax_batch_from_row(targets[i].v, sorted_cols,
                                                             row_u, targets[i].w) > 0
                                      ? 1
                                      : 0;
                });
            } else {
                improved.assign(targets.size(), 0);
                for (std::size_t i = 0; i < targets.size(); ++i) {
                    improved[i] = store.relax_batch_from_row(targets[i].v, sorted_cols,
                                                             row_u, targets[i].w) > 0
                                      ? 1
                                      : 0;
                }
            }
        } else {
            // Row-blocked sweep: gather the drained source values once into a
            // contiguous buffer, then sweep each tile through every neighbour
            // while the tile is still cache-hot (see kRcPropagateTileCols in
            // rc.hpp for why this cannot change results). The parallel branch
            // sweeps each neighbour's full span instead — threads share the
            // read-only gathered buffer and tiling across tasks would only
            // multiply dispatches.
            gathered.resize(sorted_cols.size());
            for (std::size_t i = 0; i < sorted_cols.size(); ++i) {
                gathered[i] = row_u[sorted_cols[i]];
            }
            const std::span<const VertexId> all_cols(sorted_cols);
            const std::span<const Weight> all_dists(gathered);
            improved.assign(targets.size(), 0);
            if (fan_out) {
                pool->parallel_for(0, targets.size(), [&](std::size_t i) {
                    improved[i] = store.relax_batch_soa(targets[i].v, all_cols,
                                                        all_dists, targets[i].w) > 0
                                      ? 1
                                      : 0;
                });
            } else {
                for (std::size_t tile = 0; tile < all_cols.size(); tile += tile_cols) {
                    const std::size_t n = std::min(tile_cols, all_cols.size() - tile);
                    const auto tile_colspan = all_cols.subspan(tile, n);
                    const auto tile_dists = all_dists.subspan(tile, n);
                    for (std::size_t i = 0; i < targets.size(); ++i) {
                        if (store.relax_batch_soa(targets[i].v, tile_colspan,
                                                  tile_dists, targets[i].w) > 0) {
                            improved[i] = 1;
                        }
                    }
                }
            }
        }
        for (std::size_t i = 0; i < targets.size(); ++i) {
            const LocalId v = targets[i].v;
            if (improved[i] != 0 && queued[v] == 0) {
                worklist.push_back(v);
                queued[v] = 1;
            }
        }
    }
    return ops;
}

double rc_ingest_updates_scalar(const LocalSubgraph& sg, DistanceStore& store,
                                const std::vector<Message>& inbox,
                                BoundaryWireFormat format) {
    double ops = 0;
    for (const Message& message : inbox) {
        if (message.tag != MessageTag::BoundaryDvUpdate) {
            continue;
        }
        for (const BoundaryBlock& block : decode_boundary_blocks(message.bytes(), format)) {
            // Relax every local endpoint of every cut edge to the updated
            // external vertex: d(local, t) <= w(local, ext) + d(ext, t).
            const auto locals = sg.external_neighbors(block.vertex);
            for (const auto& [local, w] : locals) {
                for (const DvEntry& entry : block.entries) {
                    store.relax(local, entry.column, w + entry.distance);
                    ops += 1;
                }
            }
        }
    }
    return ops;
}

double rc_propagate_local_scalar(const LocalSubgraph& sg, DistanceStore& store) {
    double ops = 0;
    std::deque<LocalId> worklist;
    std::vector<std::uint8_t> queued(sg.num_local(), 0);
    for (LocalId l = 0; l < sg.num_local(); ++l) {
        if (store.has_prop(l)) {
            worklist.push_back(l);
            queued[l] = 1;
        }
    }

    while (!worklist.empty()) {
        const LocalId u = worklist.front();
        worklist.pop_front();
        queued[u] = 0;
        const auto cols = store.take_prop(u);
        if (cols.empty()) {
            continue;
        }
        const auto row_u = store.row(u);
        for (const Neighbor& nb : sg.neighbors(u)) {
            if (!sg.owns(nb.to)) {
                continue;  // cross-rank propagation happens via RC messages
            }
            const LocalId v = sg.local_id(nb.to);
            bool improved = false;
            for (const VertexId col : cols) {
                improved |= store.relax(v, col, row_u[col] + nb.weight);
                ops += 1;
            }
            if (improved && queued[v] == 0) {
                worklist.push_back(v);
                queued[v] = 1;
            }
        }
    }
    return ops;
}

}  // namespace aa
