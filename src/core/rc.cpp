#include "core/rc.hpp"

#include <deque>

#include "runtime/message.hpp"

namespace aa {

std::vector<std::byte> encode_boundary_blocks(const std::vector<BoundaryBlock>& blocks) {
    Serializer out;
    for (const BoundaryBlock& block : blocks) {
        out.write(block.vertex);
        out.write_span(std::span<const DvEntry>(block.entries));
    }
    return out.take();
}

std::vector<BoundaryBlock> decode_boundary_blocks(std::span<const std::byte> payload) {
    Deserializer in(payload);
    std::vector<BoundaryBlock> blocks;
    while (!in.exhausted()) {
        BoundaryBlock block;
        block.vertex = in.read<VertexId>();
        block.entries = in.read_vector<DvEntry>();
        blocks.push_back(std::move(block));
    }
    return blocks;
}

double rc_post_boundary_updates(const LocalSubgraph& sg, DistanceStore& store,
                                Cluster& cluster) {
    const RankId me = sg.rank();
    const std::uint32_t num_ranks = cluster.num_ranks();
    double ops = 0;

    // Per-destination accumulation of boundary blocks.
    std::vector<std::vector<BoundaryBlock>> outgoing(num_ranks);

    for (LocalId l = 0; l < sg.num_local(); ++l) {
        if (!store.has_send(l)) {
            continue;
        }
        const auto cols = store.take_send(l);
        const auto destinations = sg.neighbor_ranks(l);
        ops += static_cast<double>(cols.size());
        if (destinations.empty()) {
            continue;  // interior row: changes have no external audience
        }
        BoundaryBlock block;
        block.vertex = sg.global_id(l);
        block.entries.reserve(cols.size());
        const auto row = store.row(l);
        for (const VertexId col : cols) {
            block.entries.push_back({col, row[col]});
        }
        for (const RankId dest : destinations) {
            outgoing[dest].push_back(block);
            ops += static_cast<double>(block.entries.size());  // serialization
        }
    }

    for (RankId dest = 0; dest < num_ranks; ++dest) {
        if (dest == me || outgoing[dest].empty()) {
            continue;
        }
        cluster.send(me, dest, MessageTag::BoundaryDvUpdate,
                     encode_boundary_blocks(outgoing[dest]));
    }
    return ops;
}

double rc_ingest_updates(const LocalSubgraph& sg, DistanceStore& store,
                         const std::vector<Message>& inbox) {
    double ops = 0;
    for (const Message& message : inbox) {
        if (message.tag != MessageTag::BoundaryDvUpdate) {
            continue;
        }
        for (const BoundaryBlock& block : decode_boundary_blocks(message.bytes())) {
            // Relax every local endpoint of every cut edge to the updated
            // external vertex: d(local, t) <= w(local, ext) + d(ext, t).
            const auto locals = sg.external_neighbors(block.vertex);
            for (const auto& [local, w] : locals) {
                for (const DvEntry& entry : block.entries) {
                    store.relax(local, entry.column, w + entry.distance);
                    ops += 1;
                }
            }
        }
    }
    return ops;
}

double rc_propagate_local(const LocalSubgraph& sg, DistanceStore& store) {
    double ops = 0;
    std::deque<LocalId> worklist;
    std::vector<std::uint8_t> queued(sg.num_local(), 0);
    for (LocalId l = 0; l < sg.num_local(); ++l) {
        if (store.has_prop(l)) {
            worklist.push_back(l);
            queued[l] = 1;
        }
    }

    while (!worklist.empty()) {
        const LocalId u = worklist.front();
        worklist.pop_front();
        queued[u] = 0;
        const auto cols = store.take_prop(u);
        if (cols.empty()) {
            continue;
        }
        const auto row_u = store.row(u);
        for (const Neighbor& nb : sg.neighbors(u)) {
            if (!sg.owns(nb.to)) {
                continue;  // cross-rank propagation happens via RC messages
            }
            const LocalId v = sg.local_id(nb.to);
            bool improved = false;
            for (const VertexId col : cols) {
                improved |= store.relax(v, col, row_u[col] + nb.weight);
                ops += 1;
            }
            if (improved && queued[v] == 0) {
                worklist.push_back(v);
                queued[v] = 1;
            }
        }
    }
    return ops;
}

}  // namespace aa
