#include "core/rc.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <deque>
#include <limits>

#include "runtime/message.hpp"

namespace aa {

std::vector<std::byte> encode_boundary_blocks(const std::vector<BoundaryBlock>& blocks) {
    Serializer out;
    for (const BoundaryBlock& block : blocks) {
        out.write(block.vertex);
        out.write_span(std::span<const DvEntry>(block.entries));
    }
    return out.take();
}

namespace {

/// Shared validation pass: walk the block headers and check every declared
/// entry count against the remaining payload *before* anything is allocated,
/// so a malformed (or hostile) length prefix cannot trigger a huge
/// allocation. Returns the number of blocks.
std::size_t validate_boundary_payload(std::span<const std::byte> payload) {
    constexpr std::size_t kHeaderBytes = sizeof(VertexId) + sizeof(std::uint64_t);
    std::size_t cursor = 0;
    std::size_t block_count = 0;
    while (cursor < payload.size()) {
        AA_ASSERT_MSG(payload.size() - cursor >= kHeaderBytes,
                      "boundary block header truncated");
        std::uint64_t declared = 0;
        std::memcpy(&declared, payload.data() + cursor + sizeof(VertexId),
                    sizeof(declared));
        cursor += kHeaderBytes;
        // Division keeps the comparison overflow-safe even for declared
        // counts near 2^64.
        AA_ASSERT_MSG(declared <= (payload.size() - cursor) / sizeof(DvEntry),
                      "boundary block entry count exceeds payload");
        cursor += static_cast<std::size_t>(declared) * sizeof(DvEntry);
        ++block_count;
    }
    return block_count;
}

}  // namespace

std::vector<BoundaryBlock> decode_boundary_blocks(std::span<const std::byte> payload) {
    std::vector<BoundaryBlock> blocks;
    blocks.reserve(validate_boundary_payload(payload));
    Deserializer in(payload);
    while (!in.exhausted()) {
        BoundaryBlock block;
        block.vertex = in.read<VertexId>();
        block.entries = in.read_vector<DvEntry>();
        blocks.push_back(std::move(block));
    }
    return blocks;
}

std::vector<BoundaryBlockView> decode_boundary_block_views(
    std::span<const std::byte> payload) {
    std::vector<BoundaryBlockView> blocks;
    blocks.reserve(validate_boundary_payload(payload));
    constexpr std::size_t kHeaderBytes = sizeof(VertexId) + sizeof(std::uint64_t);
    std::size_t cursor = 0;
    while (cursor < payload.size()) {
        BoundaryBlockView block;
        std::memcpy(&block.vertex, payload.data() + cursor, sizeof(VertexId));
        std::uint64_t declared = 0;
        std::memcpy(&declared, payload.data() + cursor + sizeof(VertexId),
                    sizeof(declared));
        cursor += kHeaderBytes;
        block.entries = DvEntrySpan(payload.data() + cursor,
                                    static_cast<std::size_t>(declared));
        cursor += static_cast<std::size_t>(declared) * sizeof(DvEntry);
        blocks.push_back(block);
    }
    return blocks;
}

double rc_post_boundary_updates(const LocalSubgraph& sg, DistanceStore& store,
                                Cluster& cluster, RcPostProfile* profile) {
    const RankId me = sg.rank();
    const std::uint32_t num_ranks = cluster.num_ranks();
    double ops = 0;

    // Per-destination payloads: each sending row's block is encoded exactly
    // once and its bytes appended to every destination buffer (the payload
    // format is a plain concatenation of blocks).
    std::vector<std::vector<std::byte>> outgoing(num_ranks);
    std::vector<DvEntry> entries;  // reused across rows
    Serializer encoder;            // reused across rows

    for (LocalId l = 0; l < sg.num_local(); ++l) {
        if (!store.has_send(l)) {
            continue;
        }
        const auto cols = store.take_send(l);
        const auto destinations = sg.neighbor_ranks(l);
        ops += static_cast<double>(cols.size());
        if (profile != nullptr) {
            ++profile->rows_drained;
        }
        if (destinations.empty()) {
            continue;  // interior row: changes have no external audience
        }
        entries.clear();
        entries.reserve(cols.size());
        const auto row = store.row(l);
        for (const VertexId col : cols) {
            entries.push_back({col, row[col]});
        }
        encoder.clear();
        encoder.write(sg.global_id(l));
        encoder.write_span(std::span<const DvEntry>(entries));
        const auto block_bytes = encoder.view();
        // Serialization cost is charged once per block, not once per
        // destination: the encoded bytes are shared (see rc.hpp).
        ops += static_cast<double>(entries.size());
        if (profile != nullptr) {
            ++profile->blocks;
            profile->entries += entries.size();
        }
        for (const RankId dest : destinations) {
            outgoing[dest].insert(outgoing[dest].end(), block_bytes.begin(),
                                  block_bytes.end());
        }
    }

    for (RankId dest = 0; dest < num_ranks; ++dest) {
        if (dest == me || outgoing[dest].empty()) {
            continue;
        }
        if (profile != nullptr) {
            ++profile->messages;
            profile->bytes += outgoing[dest].size();
        }
        cluster.send(me, dest, MessageTag::BoundaryDvUpdate, std::move(outgoing[dest]));
    }
    return ops;
}

namespace {

/// Payload-window size for the ingest kernel, chosen to keep one window of
/// wire entries resident in the last-level cache while its destination rows
/// are swept. See rc_ingest_updates.
constexpr std::size_t kRcIngestWindowBytes = std::size_t{128} << 20;

/// One relaxation work item: apply `views[block]` to local row `row` through
/// a cut edge of weight `w`.
struct IngestPair {
    LocalId row;
    std::uint32_t block;
    Weight w;
};

}  // namespace

double rc_ingest_updates(const LocalSubgraph& sg, DistanceStore& store,
                         const std::vector<Message>& inbox, ThreadPool* pool,
                         std::size_t parallel_grain, RcIngestProfile* profile) {
    // Pass 1: decode every received block in place (zero copy — the views
    // point into the message payloads, which outlive this call) and flatten
    // the work into (row, block, weight) pairs, one per incident cut edge,
    // in block-arrival order.
    double ops = 0;
    std::vector<BoundaryBlockView> views;
    std::vector<IngestPair> pairs;
    for (const Message& message : inbox) {
        if (message.tag != MessageTag::BoundaryDvUpdate) {
            continue;
        }
        for (const BoundaryBlockView& block : decode_boundary_block_views(message.bytes())) {
            const auto locals = sg.external_neighbors(block.vertex);
            if (locals.empty() || block.entries.size() == 0) {
                continue;
            }
            ops += static_cast<double>(block.entries.size()) *
                   static_cast<double>(locals.size());
            if (profile != nullptr) {
                ++profile->blocks;
                profile->entries += block.entries.size();
                profile->relax_attempts += block.entries.size() * locals.size();
            }
            const auto view_index = static_cast<std::uint32_t>(views.size());
            views.push_back(block);
            for (const auto& [local, w] : locals) {
                pairs.push_back({local, view_index, w});
            }
        }
    }
    if (pairs.empty()) {
        return ops;
    }

    // Pass 2: process the pairs in payload *windows*. A round's inbox can be
    // far larger than the cache, and the blocks incident to one row arrive
    // scattered across it — sweeping in raw arrival order re-streams every
    // destination row from DRAM once per incident block. Instead, take blocks
    // (in arrival order) until their entries total ~kRcIngestWindowBytes,
    // bucket that window's pairs stably by destination row, and sweep each
    // row's pairs back to back: the row's cache lines are loaded once per
    // window instead of once per block, and the window's payload stays
    // LLC-resident across all of its sweeps. Relaxation outcomes are
    // bit-identical to the scalar kernel: rows are independent, and within
    // one row the stable bucketing preserves block-arrival order, so every
    // (row, column) sees the same candidates in the same order.
    const std::size_t num_rows = sg.num_local();
    std::vector<std::uint32_t> bucket(num_rows + 1);
    std::vector<IngestPair> by_row;        // window pairs grouped by row
    std::vector<std::uint32_t> group_start;  // pair index where each row group begins
    std::size_t p = 0;
    while (p < pairs.size()) {
        const std::size_t begin = p;
        std::size_t window_bytes = 0;
        std::size_t window_attempts = 0;
        std::uint32_t last_block = std::numeric_limits<std::uint32_t>::max();
        while (p < pairs.size()) {
            const IngestPair& pr = pairs[p];
            if (pr.block != last_block) {
                // Pairs of one block are consecutive, so windows split only
                // at block boundaries (a block is never torn across windows).
                const std::size_t bytes = views[pr.block].entries.size() * sizeof(DvEntry);
                if (window_bytes != 0 && window_bytes + bytes > kRcIngestWindowBytes) {
                    break;
                }
                window_bytes += bytes;
                last_block = pr.block;
            }
            window_attempts += views[pr.block].entries.size();
            ++p;
        }

        if (profile != nullptr) {
            ++profile->windows;
        }

        // Stable counting sort of the window's pairs by destination row.
        const std::span<const IngestPair> window(pairs.data() + begin, p - begin);
        std::fill(bucket.begin(), bucket.end(), 0);
        for (const IngestPair& pr : window) {
            ++bucket[pr.row + 1];
        }
        for (std::size_t r = 0; r < num_rows; ++r) {
            bucket[r + 1] += bucket[r];
        }
        by_row.resize(window.size());
        for (const IngestPair& pr : window) {
            by_row[bucket[pr.row]++] = pr;
        }

        group_start.clear();
        for (std::size_t i = 0; i < by_row.size(); ++i) {
            if (i == 0 || by_row[i].row != by_row[i - 1].row) {
                group_start.push_back(static_cast<std::uint32_t>(i));
            }
        }
        group_start.push_back(static_cast<std::uint32_t>(by_row.size()));

        // Each group is one destination row — groups are pairwise disjoint,
        // so they can fan out to the pool with the worklist merge inside the
        // store as the only shared state per row.
        const std::size_t num_groups = group_start.size() - 1;
        if (pool != nullptr && pool->num_threads() > 1 && num_groups > 1 &&
            window_attempts >= parallel_grain) {
            pool->parallel_for(0, num_groups, [&](std::size_t g) {
                for (std::uint32_t i = group_start[g]; i < group_start[g + 1]; ++i) {
                    store.relax_batch(by_row[i].row, views[by_row[i].block].entries,
                                      by_row[i].w);
                }
            });
        } else {
            for (std::size_t g = 0; g < num_groups; ++g) {
                for (std::uint32_t i = group_start[g]; i < group_start[g + 1]; ++i) {
                    store.relax_batch(by_row[i].row, views[by_row[i].block].entries,
                                      by_row[i].w);
                }
            }
        }
    }
    return ops;
}

double rc_propagate_local(const LocalSubgraph& sg, DistanceStore& store,
                          ThreadPool* pool, std::size_t parallel_grain,
                          RcPropagateProfile* profile) {
    double ops = 0;
    std::deque<LocalId> worklist;
    std::vector<std::uint8_t> queued(sg.num_local(), 0);
    for (LocalId l = 0; l < sg.num_local(); ++l) {
        if (store.has_prop(l)) {
            worklist.push_back(l);
            queued[l] = 1;
        }
    }

    struct Target {
        LocalId v;
        Weight w;
    };
    std::vector<Target> targets;       // reused: local neighbour rows
    std::vector<std::uint8_t> improved;  // reused: per-target improvement flags
    std::vector<VertexId> sorted_cols;   // reused: drained columns in column order
    // Scratch bitmap for linear-time column ordering (one bit per column).
    std::vector<std::uint64_t> col_bits((store.num_columns() + 63) / 64, 0);

    while (!worklist.empty()) {
        const LocalId u = worklist.front();
        worklist.pop_front();
        queued[u] = 0;
        const auto cols = store.take_prop(u);
        if (cols.empty()) {
            continue;
        }
        if (profile != nullptr) {
            ++profile->rows_drained;
        }
        // Order the drained columns. They are unique (epoch-deduplicated), so
        // reordering cannot change any relaxation outcome — but a sorted
        // sweep walks both the source and the target row forward instead of
        // scattering, and the ordering cost is paid once per drained row yet
        // reused across all its neighbours. Large drains order via the
        // scratch bitmap in O(k + columns/64); small ones with a plain sort.
        sorted_cols.assign(cols.begin(), cols.end());
        if (sorted_cols.size() >= 64) {
            for (const VertexId col : sorted_cols) {
                col_bits[col >> 6] |= std::uint64_t{1} << (col & 63);
            }
            sorted_cols.clear();
            for (std::size_t w = 0; w < col_bits.size(); ++w) {
                std::uint64_t word = col_bits[w];
                if (word == 0) {
                    continue;
                }
                col_bits[w] = 0;
                while (word != 0) {
                    const auto bit = static_cast<VertexId>(std::countr_zero(word));
                    sorted_cols.push_back(static_cast<VertexId>(w << 6) + bit);
                    word &= word - 1;
                }
            }
        } else {
            std::sort(sorted_cols.begin(), sorted_cols.end());
        }
        const auto row_u = store.row(u);
        targets.clear();
        for (const Neighbor& nb : sg.neighbors(u)) {
            if (!sg.owns(nb.to)) {
                continue;  // cross-rank propagation happens via RC messages
            }
            targets.push_back({sg.local_id(nb.to), nb.weight});
        }
        if (targets.empty()) {
            continue;
        }
        ops += static_cast<double>(sorted_cols.size()) *
               static_cast<double>(targets.size());
        if (profile != nullptr) {
            profile->relax_attempts += sorted_cols.size() * targets.size();
        }

        // Fan the sweep out only when the work dwarfs the dispatch cost.
        // Neighbour rows are pairwise distinct (simple graph) and distinct
        // from u, so each task owns its destination row exclusively; the
        // worklist merge below is the only synchronization point.
        if (pool != nullptr && pool->num_threads() > 1 && targets.size() > 1 &&
            sorted_cols.size() * targets.size() >= parallel_grain) {
            improved.assign(targets.size(), 0);
            pool->parallel_for(0, targets.size(), [&](std::size_t i) {
                improved[i] = store.relax_batch_from_row(targets[i].v, sorted_cols,
                                                         row_u, targets[i].w) > 0
                                  ? 1
                                  : 0;
            });
            for (std::size_t i = 0; i < targets.size(); ++i) {
                const LocalId v = targets[i].v;
                if (improved[i] != 0 && queued[v] == 0) {
                    worklist.push_back(v);
                    queued[v] = 1;
                }
            }
        } else {
            for (const Target& t : targets) {
                const bool any =
                    store.relax_batch_from_row(t.v, sorted_cols, row_u, t.w) > 0;
                if (any && queued[t.v] == 0) {
                    worklist.push_back(t.v);
                    queued[t.v] = 1;
                }
            }
        }
    }
    return ops;
}

double rc_ingest_updates_scalar(const LocalSubgraph& sg, DistanceStore& store,
                                const std::vector<Message>& inbox) {
    double ops = 0;
    for (const Message& message : inbox) {
        if (message.tag != MessageTag::BoundaryDvUpdate) {
            continue;
        }
        for (const BoundaryBlock& block : decode_boundary_blocks(message.bytes())) {
            // Relax every local endpoint of every cut edge to the updated
            // external vertex: d(local, t) <= w(local, ext) + d(ext, t).
            const auto locals = sg.external_neighbors(block.vertex);
            for (const auto& [local, w] : locals) {
                for (const DvEntry& entry : block.entries) {
                    store.relax(local, entry.column, w + entry.distance);
                    ops += 1;
                }
            }
        }
    }
    return ops;
}

double rc_propagate_local_scalar(const LocalSubgraph& sg, DistanceStore& store) {
    double ops = 0;
    std::deque<LocalId> worklist;
    std::vector<std::uint8_t> queued(sg.num_local(), 0);
    for (LocalId l = 0; l < sg.num_local(); ++l) {
        if (store.has_prop(l)) {
            worklist.push_back(l);
            queued[l] = 1;
        }
    }

    while (!worklist.empty()) {
        const LocalId u = worklist.front();
        worklist.pop_front();
        queued[u] = 0;
        const auto cols = store.take_prop(u);
        if (cols.empty()) {
            continue;
        }
        const auto row_u = store.row(u);
        for (const Neighbor& nb : sg.neighbors(u)) {
            if (!sg.owns(nb.to)) {
                continue;  // cross-rank propagation happens via RC messages
            }
            const LocalId v = sg.local_id(nb.to);
            bool improved = false;
            for (const VertexId col : cols) {
                improved |= store.relax(v, col, row_u[col] + nb.weight);
                ops += 1;
            }
            if (improved && queued[v] == 0) {
                worklist.push_back(v);
                queued[v] = 1;
            }
        }
    }
    return ops;
}

}  // namespace aa
