#include "core/subgraph.hpp"

#include <algorithm>

namespace aa {
namespace {

std::uint32_t rank_count(std::span<const RankId> owners, RankId at_least) {
    RankId max_rank = at_least;
    for (const RankId r : owners) {
        max_rank = std::max(max_rank, r);
    }
    return max_rank + 1;
}

}  // namespace

LocalSubgraph::LocalSubgraph(RankId rank, ShardOwnership ownership)
    : rank_(rank), ownership_(std::move(ownership)) {
    for (VertexId v = 0; v < ownership_.num_vertices(); ++v) {
        if (ownership_.owned_by(v, rank_)) {
            adopt(v);
        }
    }
}

LocalSubgraph::LocalSubgraph(RankId rank, std::vector<RankId> owners)
    : LocalSubgraph(rank, ShardOwnership::from_partition(
                              owners, rank_count(owners, rank), 1)) {}

void LocalSubgraph::extend_ownership(std::span<const RankId> new_owners) {
    const auto base = static_cast<VertexId>(ownership_.num_vertices());
    ownership_.extend(new_owners);
    for (std::size_t i = 0; i < new_owners.size(); ++i) {
        if (new_owners[i] == rank_) {
            adopt(base + static_cast<VertexId>(i));
        }
    }
}

LocalId LocalSubgraph::adopt(VertexId global) {
    AA_ASSERT(global < ownership_.num_vertices());
    AA_ASSERT(ownership_.owned_by(global, rank_));
    AA_ASSERT_MSG(!index_.contains(global), "vertex adopted twice");
    const auto local = static_cast<LocalId>(locals_.size());
    locals_.push_back(global);
    index_.emplace(global, local);
    adjacency_.emplace_back();
    return local;
}

LocalId LocalSubgraph::release(VertexId global) {
    AA_ASSERT_MSG(!owns(global), "release before repointing the shard map");
    const auto it = index_.find(global);
    AA_ASSERT_MSG(it != index_.end(), "releasing a vertex this rank never held");
    const LocalId slot = it->second;
    std::vector<Neighbor> released = std::move(adjacency_[slot]);

    // Drop the released row's reverse-index entries for neighbors that stay
    // external; still-local neighbors are handled after the swap, once their
    // local ids are final.
    for (const Neighbor& nb : released) {
        if (!owns(nb.to)) {
            const auto ext = external_adj_.find(nb.to);
            if (ext != external_adj_.end()) {
                std::erase_if(ext->second,
                              [slot](const std::pair<LocalId, Weight>& e) {
                                  return e.first == slot;
                              });
                if (ext->second.empty()) {
                    external_adj_.erase(ext);
                }
            }
        }
    }

    // Swap-remove, renumbering the displaced last row's reverse entries.
    const auto last = static_cast<LocalId>(locals_.size() - 1);
    if (slot != last) {
        locals_[slot] = locals_[last];
        index_[locals_[slot]] = slot;
        adjacency_[slot] = std::move(adjacency_[last]);
        for (const Neighbor& nb : adjacency_[slot]) {
            if (!owns(nb.to)) {
                const auto ext = external_adj_.find(nb.to);
                if (ext != external_adj_.end()) {
                    for (auto& e : ext->second) {
                        if (e.first == last) {
                            e.first = slot;
                        }
                    }
                }
            }
        }
    }
    locals_.pop_back();
    adjacency_.pop_back();
    index_.erase(global);

    // The departed vertex is now an external boundary vertex of every
    // neighbor it left behind.
    std::vector<std::pair<LocalId, Weight>> left_behind;
    for (const Neighbor& nb : released) {
        if (owns(nb.to)) {
            left_behind.emplace_back(index_.at(nb.to), nb.weight);
        }
    }
    if (!left_behind.empty()) {
        external_adj_[global] = std::move(left_behind);
    }
    return slot;
}

LocalId LocalSubgraph::adopt_migrated(VertexId global,
                                      std::span<const Neighbor> adjacency) {
    const LocalId local = adopt(global);
    adjacency_[local].assign(adjacency.begin(), adjacency.end());
    // The arrival stops being an external boundary vertex here; its cut
    // edges to still-remote neighbors gain reverse entries instead.
    external_adj_.erase(global);
    for (const Neighbor& nb : adjacency_[local]) {
        if (!owns(nb.to)) {
            external_adj_[nb.to].emplace_back(local, nb.weight);
        }
    }
    return local;
}

void LocalSubgraph::add_local_edge(VertexId u, VertexId v, Weight w) {
    AA_ASSERT_MSG(owns(u) || owns(v), "edge touches no owned vertex");
    AA_ASSERT(u != v);
    if (owns(u)) {
        adjacency_[index_.at(u)].push_back({v, w});
        if (!owns(v)) {
            external_adj_[v].push_back({index_.at(u), w});
        }
    }
    if (owns(v)) {
        adjacency_[index_.at(v)].push_back({u, w});
        if (!owns(u)) {
            external_adj_[u].push_back({index_.at(v), w});
        }
    }
}

void LocalSubgraph::update_edge_weight(VertexId u, VertexId v, Weight w) {
    AA_ASSERT_MSG(owns(u) || owns(v), "edge touches no owned vertex");
    const auto update_list = [this, w](VertexId owned, VertexId other) {
        for (Neighbor& nb : adjacency_[index_.at(owned)]) {
            if (nb.to == other) {
                nb.weight = w;
            }
        }
        if (!owns(other)) {
            const LocalId local = index_.at(owned);
            for (auto& [l, edge_w] : external_adj_[other]) {
                if (l == local) {
                    edge_w = w;
                }
            }
        }
    };
    if (owns(u)) {
        update_list(u, v);
    }
    if (owns(v)) {
        update_list(v, u);
    }
}

void LocalSubgraph::remove_local_edge(VertexId u, VertexId v) {
    AA_ASSERT_MSG(owns(u) || owns(v), "edge touches no owned vertex");
    const auto remove_from = [this](VertexId owned, VertexId other) {
        const LocalId local = index_.at(owned);
        std::erase_if(adjacency_[local],
                      [other](const Neighbor& nb) { return nb.to == other; });
        if (!owns(other)) {
            const auto it = external_adj_.find(other);
            if (it != external_adj_.end()) {
                std::erase_if(it->second,
                              [local](const std::pair<LocalId, Weight>& e) {
                                  return e.first == local;
                              });
                if (it->second.empty()) {
                    external_adj_.erase(it);
                }
            }
        }
    };
    if (owns(u)) {
        remove_from(u, v);
    }
    if (owns(v)) {
        remove_from(v, u);
    }
}

std::span<const std::pair<LocalId, Weight>> LocalSubgraph::external_neighbors(
    VertexId global) const {
    const auto it = external_adj_.find(global);
    if (it == external_adj_.end()) {
        return {};
    }
    return it->second;
}

std::vector<VertexId> LocalSubgraph::external_boundary() const {
    std::vector<VertexId> externals;
    externals.reserve(external_adj_.size());
    for (const auto& [global, edges] : external_adj_) {
        externals.push_back(global);
    }
    std::sort(externals.begin(), externals.end());
    return externals;
}

bool LocalSubgraph::is_boundary(LocalId local) const {
    AA_ASSERT(local < adjacency_.size());
    return std::any_of(adjacency_[local].begin(), adjacency_[local].end(),
                       [this](const Neighbor& nb) { return !owns(nb.to); });
}

std::vector<RankId> LocalSubgraph::neighbor_ranks(LocalId local) const {
    AA_ASSERT(local < adjacency_.size());
    std::vector<RankId> ranks;
    for (const Neighbor& nb : adjacency_[local]) {
        const RankId r = ownership_.owner(nb.to);
        if (r != rank_ && std::find(ranks.begin(), ranks.end(), r) == ranks.end()) {
            ranks.push_back(r);
        }
    }
    std::sort(ranks.begin(), ranks.end());
    return ranks;
}

void LocalSubgraph::reset_ownership(ShardOwnership ownership) {
    ownership_ = std::move(ownership);
    locals_.clear();
    index_.clear();
    adjacency_.clear();
    external_adj_.clear();
}

void LocalSubgraph::reset_ownership(std::vector<RankId> owners) {
    reset_ownership(
        ShardOwnership::from_partition(owners, rank_count(owners, rank_), 1));
}

}  // namespace aa
