#include "core/subgraph.hpp"

#include <algorithm>

namespace aa {

LocalSubgraph::LocalSubgraph(RankId rank, std::vector<RankId> owners)
    : rank_(rank), owners_(std::move(owners)) {
    for (VertexId v = 0; v < owners_.size(); ++v) {
        if (owners_[v] == rank_) {
            adopt(v);
        }
    }
}

void LocalSubgraph::extend_ownership(std::span<const RankId> new_owners) {
    const auto base = static_cast<VertexId>(owners_.size());
    owners_.insert(owners_.end(), new_owners.begin(), new_owners.end());
    for (std::size_t i = 0; i < new_owners.size(); ++i) {
        if (new_owners[i] == rank_) {
            adopt(base + static_cast<VertexId>(i));
        }
    }
}

LocalId LocalSubgraph::adopt(VertexId global) {
    AA_ASSERT(global < owners_.size());
    AA_ASSERT(owners_[global] == rank_);
    AA_ASSERT_MSG(!index_.contains(global), "vertex adopted twice");
    const auto local = static_cast<LocalId>(locals_.size());
    locals_.push_back(global);
    index_.emplace(global, local);
    adjacency_.emplace_back();
    return local;
}

void LocalSubgraph::add_local_edge(VertexId u, VertexId v, Weight w) {
    AA_ASSERT_MSG(owns(u) || owns(v), "edge touches no owned vertex");
    AA_ASSERT(u != v);
    if (owns(u)) {
        adjacency_[index_.at(u)].push_back({v, w});
        if (!owns(v)) {
            external_adj_[v].push_back({index_.at(u), w});
        }
    }
    if (owns(v)) {
        adjacency_[index_.at(v)].push_back({u, w});
        if (!owns(u)) {
            external_adj_[u].push_back({index_.at(v), w});
        }
    }
}

void LocalSubgraph::update_edge_weight(VertexId u, VertexId v, Weight w) {
    AA_ASSERT_MSG(owns(u) || owns(v), "edge touches no owned vertex");
    const auto update_list = [this, w](VertexId owned, VertexId other) {
        for (Neighbor& nb : adjacency_[index_.at(owned)]) {
            if (nb.to == other) {
                nb.weight = w;
            }
        }
        if (!owns(other)) {
            const LocalId local = index_.at(owned);
            for (auto& [l, edge_w] : external_adj_[other]) {
                if (l == local) {
                    edge_w = w;
                }
            }
        }
    };
    if (owns(u)) {
        update_list(u, v);
    }
    if (owns(v)) {
        update_list(v, u);
    }
}

void LocalSubgraph::remove_local_edge(VertexId u, VertexId v) {
    AA_ASSERT_MSG(owns(u) || owns(v), "edge touches no owned vertex");
    const auto remove_from = [this](VertexId owned, VertexId other) {
        const LocalId local = index_.at(owned);
        std::erase_if(adjacency_[local],
                      [other](const Neighbor& nb) { return nb.to == other; });
        if (!owns(other)) {
            const auto it = external_adj_.find(other);
            if (it != external_adj_.end()) {
                std::erase_if(it->second,
                              [local](const std::pair<LocalId, Weight>& e) {
                                  return e.first == local;
                              });
                if (it->second.empty()) {
                    external_adj_.erase(it);
                }
            }
        }
    };
    if (owns(u)) {
        remove_from(u, v);
    }
    if (owns(v)) {
        remove_from(v, u);
    }
}

std::span<const std::pair<LocalId, Weight>> LocalSubgraph::external_neighbors(
    VertexId global) const {
    const auto it = external_adj_.find(global);
    if (it == external_adj_.end()) {
        return {};
    }
    return it->second;
}

std::vector<VertexId> LocalSubgraph::external_boundary() const {
    std::vector<VertexId> externals;
    externals.reserve(external_adj_.size());
    for (const auto& [global, edges] : external_adj_) {
        externals.push_back(global);
    }
    std::sort(externals.begin(), externals.end());
    return externals;
}

bool LocalSubgraph::is_boundary(LocalId local) const {
    AA_ASSERT(local < adjacency_.size());
    return std::any_of(adjacency_[local].begin(), adjacency_[local].end(),
                       [this](const Neighbor& nb) { return owners_[nb.to] != rank_; });
}

std::vector<RankId> LocalSubgraph::neighbor_ranks(LocalId local) const {
    AA_ASSERT(local < adjacency_.size());
    std::vector<RankId> ranks;
    for (const Neighbor& nb : adjacency_[local]) {
        const RankId r = owners_[nb.to];
        if (r != rank_ && std::find(ranks.begin(), ranks.end(), r) == ranks.end()) {
            ranks.push_back(r);
        }
    }
    std::sort(ranks.begin(), ranks.end());
    return ranks;
}

void LocalSubgraph::reset_ownership(std::vector<RankId> owners) {
    owners_ = std::move(owners);
    locals_.clear();
    index_.clear();
    adjacency_.clear();
    external_adj_.clear();
}

}  // namespace aa
