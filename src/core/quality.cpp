#include "core/quality.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "core/closeness.hpp"

namespace aa {

QualityMetrics evaluate_quality(const std::vector<std::vector<Weight>>& approx,
                                const std::vector<std::vector<Weight>>& exact,
                                QualityContract contract) {
    AA_ASSERT(approx.size() == exact.size());
    QualityMetrics metrics;
    const std::size_t n = exact.size();
    if (n == 0) {
        metrics.frac_exact = 1.0;
        return metrics;
    }

    std::size_t total = 0;
    std::size_t exact_count = 0;
    std::size_t unknown = 0;
    std::size_t both_finite = 0;
    double excess_sum = 0;
    for (std::size_t v = 0; v < n; ++v) {
        AA_ASSERT(approx[v].size() == n && exact[v].size() == n);
        for (std::size_t t = 0; t < n; ++t) {
            ++total;
            const Weight a = approx[v][t];
            const Weight e = exact[v][t];
            const bool a_inf = !(a < kInfinity);
            const bool e_inf = !(e < kInfinity);
            if (a_inf && e_inf) {
                ++exact_count;
            } else if (a_inf && !e_inf) {
                ++unknown;
            } else if (e_inf) {
                // Finite estimate for an unreachable pair: impossible in a
                // growth-only history, expected mid-settle after a deletion.
                AA_ASSERT_MSG(contract == QualityContract::FullyDynamic,
                              "estimate finite where exact is infinite");
                ++metrics.stale_finite;
            } else {
                const double excess = a - e;
                if (excess <= -1e-6) {
                    // Below the true distance: a stale path through a
                    // removed or raised edge awaiting invalidation.
                    AA_ASSERT_MSG(contract == QualityContract::FullyDynamic,
                                  "estimate below the true distance");
                    ++metrics.stale_low;
                    continue;
                }
                ++both_finite;
                excess_sum += std::max(excess, 0.0);
                metrics.max_excess = std::max(metrics.max_excess, excess);
                if (excess <= 1e-9) {
                    ++exact_count;
                }
            }
        }
    }
    metrics.frac_exact = static_cast<double>(exact_count) / static_cast<double>(total);
    metrics.frac_unknown = static_cast<double>(unknown) / static_cast<double>(total);
    metrics.mean_excess =
        both_finite > 0 ? excess_sum / static_cast<double>(both_finite) : 0.0;

    const ClosenessScores approx_scores = closeness_from_matrix(approx);
    const ClosenessScores exact_scores = closeness_from_matrix(exact);
    double rel_sum = 0;
    std::size_t rel_count = 0;
    for (std::size_t v = 0; v < n; ++v) {
        if (exact_scores.closeness[v] > 0) {
            rel_sum += std::abs(approx_scores.closeness[v] - exact_scores.closeness[v]) /
                       exact_scores.closeness[v];
            ++rel_count;
        }
    }
    metrics.closeness_mean_rel_error =
        rel_count > 0 ? rel_sum / static_cast<double>(rel_count) : 0.0;
    return metrics;
}

bool quality_monotone(const QualityMetrics& earlier, const QualityMetrics& later) {
    return later.frac_exact >= earlier.frac_exact - 1e-12 &&
           later.frac_unknown <= earlier.frac_unknown + 1e-12;
}

}  // namespace aa
