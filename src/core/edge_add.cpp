// Anywhere dynamic updates built on the edge-addition algorithm of the
// authors' prior work [9]:
//   * AnytimeEngine::anywhere_add      — vertex additions (paper Figure 3),
//   * AnytimeEngine::add_edges         — edge additions between existing
//                                        vertices ("new relationship
//                                        formations", [9]),
//   * AnytimeEngine::decrease_edge_weight — edge weight decreases ([7];
//                                        increases are routed to the
//                                        deletion machinery in
//                                        core/edge_delete.cpp).
//
// All three share one primitive: the owner of an endpoint tree-broadcasts
// that endpoint's DV row; every rank folds the row in through its cut edges,
// owners fold it through the new/changed edge, and every rank bridges the
// two endpoint columns of its local rows (the paper's
// D[x][t] > D[x][u] + w + D[v][t] inequality, applied where it can bind
// immediately). Remaining consequences flow through the normal prop/send
// worklists, which reach the same fixpoint as the paper's full sweep at
// incremental cost.
#include <algorithm>

#include "common/assert.hpp"
#include "core/engine.hpp"
#include "core/rc.hpp"
#include "runtime/message.hpp"

namespace aa {

namespace {

struct EdgeBroadcast {
    VertexId from;  // the broadcast carries row(from)
    VertexId to;    // the other endpoint of the new/changed edge
    Weight weight;
    std::vector<DvEntry> entries;  // finite entries of row(from)
};

std::vector<std::byte> encode_edge_broadcast(const EdgeBroadcast& b) {
    Serializer out;
    out.write(b.from);
    out.write(b.to);
    out.write(b.weight);
    out.write_span(std::span<const DvEntry>(b.entries));
    return out.take();
}

EdgeBroadcast decode_edge_broadcast(std::span<const std::byte> payload) {
    Deserializer in(payload);
    EdgeBroadcast b;
    b.from = in.read<VertexId>();
    b.to = in.read<VertexId>();
    b.weight = in.read<Weight>();
    b.entries = in.read_vector<DvEntry>();
    return b;
}

}  // namespace

double AnytimeEngine::broadcast_edge_update(VertexId from, VertexId to, Weight w) {
    const auto num_ranks = cluster_->num_ranks();
    const RankId r_from = ownership_.owner(from);
    const RankId r_to = ownership_.owner(to);
    double total_ops = 0;

    // Tree broadcast of row(from) — paper Figure 3, line 22.
    EdgeBroadcast b;
    b.from = from;
    b.to = to;
    b.weight = w;
    b.entries = ranks_[r_from].store.finite_entries(ranks_[r_from].sg.local_id(from));
    cluster_->charge_compute(r_from, static_cast<double>(b.entries.size()));
    total_ops += static_cast<double>(b.entries.size());
    cluster_->broadcast(r_from, MessageTag::NewVertexDvRow,
                        encode_edge_broadcast(b));

    // Apply the update at every rank. Receivers parse the wire payload; the
    // sender applies its own copy directly (`b` is read-only from here, so
    // concurrent rank closures may share it).
    std::vector<double> rank_ops(num_ranks, 0);
    run_rank_phase([&](RankId r, std::vector<MetricSpan>&) {
        RankState& state = ranks_[r];
        const EdgeBroadcast* update = &b;
        EdgeBroadcast decoded;
        if (r != r_from) {
            const auto inbox = cluster_->receive(r);
            AA_ASSERT(!inbox.empty());
            decoded = decode_edge_broadcast(inbox.back().bytes());
            update = &decoded;
        }
        double ops = 0;
        // Same-rank edge: fold row(from) through the edge into row(to)
        // directly (the cross-rank case is covered by the cut-edge ingestion
        // below, which sees the new edge in its external adjacency).
        if (r == r_to && r_from == r_to) {
            const LocalId l_to = state.sg.local_id(to);
            for (const DvEntry& entry : update->entries) {
                state.store.relax(l_to, entry.column, update->weight + entry.distance);
                ops += 1;
            }
        }
        // Any rank with a cut edge to `from` ingests the broadcast as it
        // would a boundary-DV update: d(x, t) <= w(x, from) + d(from, t).
        for (const auto& [local, edge_w] : state.sg.external_neighbors(from)) {
            for (const DvEntry& entry : update->entries) {
                state.store.relax(local, entry.column, edge_w + entry.distance);
                ops += 1;
            }
        }
        // Every rank bridges the endpoint columns of its local rows:
        // d(x, to) <= d(x, from) + w and d(x, from) <= d(x, to) + w.
        for (LocalId x = 0; x < state.sg.num_local(); ++x) {
            const Weight d_from = state.store.at(x, from);
            if (d_from < kInfinity) {
                state.store.relax(x, to, d_from + w);
            }
            const Weight d_to = state.store.at(x, to);
            if (d_to < kInfinity) {
                state.store.relax(x, from, d_to + w);
            }
            ops += 2;
        }
        cluster_->charge_compute(r, ops);
        rank_ops[r] = ops;
    });
    for (RankId r = 0; r < num_ranks; ++r) {
        total_ops += rank_ops[r];
    }
    return total_ops;
}

void AnytimeEngine::anywhere_add(const GrowthBatch& batch,
                                 const std::vector<RankId>& assignment) {
    AA_ASSERT_MSG(initialized_, "initialize() must run before dynamic updates");
    AA_ASSERT(assignment.size() == batch.num_new);
    AA_ASSERT_MSG(batch.base_id == graph_.num_vertices(),
                  "batch does not follow the current vertex space");

    const std::size_t k = batch.num_new;
    const std::size_t new_n = graph_.num_vertices() + k;
    const auto num_ranks = cluster_->num_ranks();
    double dynamic_ops = 0;
    const bool mx = metrics_->enabled();

    // ---- 1. Structural extension (Figure 3, lines 11-18). ----
    auto extend_span = MetricsRegistry::kNullHandle;
    if (mx) {
        extend_span = metrics_->span_open("add.extend", -1,
                                          static_cast<std::int64_t>(rc_steps_),
                                          sim_seconds());
    }
    graph_.add_vertices(k);
    ownership_.extend(assignment);
    std::vector<double> extend_ops(num_ranks, 0);
    run_rank_phase([&](RankId r, std::vector<MetricSpan>&) {
        RankState& state = ranks_[r];
        state.sg.extend_ownership(assignment);
        // DV resize: one new column per existing row (amortized via doubling
        // growth, the paper's O(n) bound), plus a fresh row per adopted
        // vertex (added below in adoption order).
        const double ops =
            static_cast<double>(state.store.num_rows()) + static_cast<double>(k);
        state.store.grow_columns(new_n);
        cluster_->charge_compute(r, ops);
        extend_ops[r] = ops;
    });
    for (RankId r = 0; r < num_ranks; ++r) {
        dynamic_ops += extend_ops[r];
    }
    for (std::size_t i = 0; i < k; ++i) {
        const VertexId v = batch.base_id + static_cast<VertexId>(i);
        RankState& owner = ranks_[assignment[i]];
        const LocalId row = owner.store.add_row(v);
        AA_ASSERT_MSG(owner.sg.global_id(row) == v,
                      "row order diverged from adoption order");
        cluster_->charge_compute(assignment[i], static_cast<double>(new_n));
        dynamic_ops += static_cast<double>(new_n);
    }

    if (mx) {
        metrics_->span_add(extend_span, dynamic_ops);
        metrics_->span_close(extend_span, sim_seconds());
    }

    // ---- 2. Edge additions (Figure 3, lines 19-44). The broadcast carries
    //          the *existing* endpoint's row; the new endpoint's row starts
    //          near-empty and its content reaches neighbours through the
    //          regular RC sends as it fills in. ----
    auto broadcast_span = MetricsRegistry::kNullHandle;
    if (mx) {
        broadcast_span = metrics_->span_open(
            "add.broadcast", -1, static_cast<std::int64_t>(rc_steps_),
            sim_seconds());
    }
    const double ops_before_edges = dynamic_ops;
    for (const Edge& e : batch.edges) {
        const VertexId lo = std::min(e.u, e.v);
        const VertexId hi = std::max(e.u, e.v);
        AA_ASSERT_MSG(hi >= batch.base_id, "batch edge touches no new vertex");
        if (!graph_.add_edge(lo, hi, e.weight)) {
            continue;  // duplicate within the batch
        }
        const RankId r_lo = ownership_.owner(lo);
        const RankId r_hi = ownership_.owner(hi);
        ranks_[r_lo].sg.add_local_edge(lo, hi, e.weight);
        if (r_hi != r_lo) {
            ranks_[r_hi].sg.add_local_edge(lo, hi, e.weight);
        }
        dynamic_ops += broadcast_edge_update(lo, hi, e.weight);
    }
    if (mx) {
        metrics_->span_add(broadcast_span, dynamic_ops - ops_before_edges);
        metrics_->span_attr(broadcast_span, "edges",
                            std::to_string(batch.edges.size()));
        metrics_->span_close(broadcast_span, sim_seconds());
    }

    // ---- 3. Within-rank propagation to fixpoint. ----
    auto propagate_span = MetricsRegistry::kNullHandle;
    if (mx) {
        propagate_span = metrics_->span_open(
            "add.propagate", -1, static_cast<std::int64_t>(rc_steps_),
            sim_seconds());
    }
    const double ops_before_prop = dynamic_ops;
    std::vector<double> prop_ops(num_ranks, 0);
    run_rank_phase([&](RankId r, std::vector<MetricSpan>&) {
        const double ops =
            rc_propagate_local(ranks_[r].sg, ranks_[r].store, kernel_pool());
        cluster_->charge_compute(r, ops);
        prop_ops[r] = ops;
    });
    for (RankId r = 0; r < num_ranks; ++r) {
        dynamic_ops += prop_ops[r];
    }
    cluster_->barrier();
    if (mx) {
        metrics_->span_add(propagate_span, dynamic_ops - ops_before_prop);
        metrics_->span_close(propagate_span, sim_seconds());
    }
    report_.dynamic_ops += dynamic_ops;
    note_structural_change();
}

void AnytimeEngine::add_edges(std::span<const Edge> edges) {
    AA_ASSERT_MSG(initialized_, "initialize() must run before dynamic updates");
    const auto num_ranks = cluster_->num_ranks();
    double dynamic_ops = 0;

    for (const Edge& e : edges) {
        AA_ASSERT(e.u < graph_.num_vertices() && e.v < graph_.num_vertices());
        if (!graph_.add_edge(e.u, e.v, e.weight)) {
            continue;  // duplicate
        }
        const RankId r_u = ownership_.owner(e.u);
        const RankId r_v = ownership_.owner(e.v);
        ranks_[r_u].sg.add_local_edge(e.u, e.v, e.weight);
        if (r_v != r_u) {
            ranks_[r_v].sg.add_local_edge(e.u, e.v, e.weight);
        }
        // Both endpoints are established vertices with full rows, so both
        // rows are broadcast (prior work [9] evaluates the new-edge
        // inequality in both directions).
        dynamic_ops += broadcast_edge_update(e.u, e.v, e.weight);
        dynamic_ops += broadcast_edge_update(e.v, e.u, e.weight);
        report_.edge_additions += 1;
    }

    std::vector<double> prop_ops(num_ranks, 0);
    run_rank_phase([&](RankId r, std::vector<MetricSpan>&) {
        const double ops =
            rc_propagate_local(ranks_[r].sg, ranks_[r].store, kernel_pool());
        cluster_->charge_compute(r, ops);
        prop_ops[r] = ops;
    });
    for (RankId r = 0; r < num_ranks; ++r) {
        dynamic_ops += prop_ops[r];
    }
    cluster_->barrier();
    report_.dynamic_ops += dynamic_ops;
    note_structural_change();
    fire_boundary_hook();
}

bool AnytimeEngine::decrease_edge_weight(VertexId u, VertexId v, Weight new_weight) {
    AA_ASSERT_MSG(initialized_, "initialize() must run before dynamic updates");
    AA_ASSERT(u < graph_.num_vertices() && v < graph_.num_vertices());
    AA_ASSERT_MSG(new_weight > 0, "edge weights must be positive");
    const Weight current = graph_.edge_weight(u, v);
    if (!(current < kInfinity)) {
        return false;  // no such edge
    }
    if (new_weight > current) {
        // A weight increase can raise distances; route it through the
        // invalidate/re-settle machinery instead of the monotone broadcast.
        ShrinkBatch batch;
        batch.reweights.push_back({u, v, new_weight});
        apply_deletion(batch);
        return true;
    }
    if (new_weight == current) {
        return true;
    }

    graph_.set_edge_weight(u, v, new_weight);
    const RankId r_u = ownership_.owner(u);
    const RankId r_v = ownership_.owner(v);
    ranks_[r_u].sg.update_edge_weight(u, v, new_weight);
    if (r_v != r_u) {
        ranks_[r_v].sg.update_edge_weight(u, v, new_weight);
    }

    double dynamic_ops = broadcast_edge_update(u, v, new_weight);
    dynamic_ops += broadcast_edge_update(v, u, new_weight);
    std::vector<double> prop_ops(cluster_->num_ranks(), 0);
    run_rank_phase([&](RankId r, std::vector<MetricSpan>&) {
        const double ops =
            rc_propagate_local(ranks_[r].sg, ranks_[r].store, kernel_pool());
        cluster_->charge_compute(r, ops);
        prop_ops[r] = ops;
    });
    for (RankId r = 0; r < cluster_->num_ranks(); ++r) {
        dynamic_ops += prop_ops[r];
    }
    cluster_->barrier();
    report_.dynamic_ops += dynamic_ops;
    note_structural_change();
    fire_boundary_hook();
    return true;
}

}  // namespace aa
