// AnytimeEngine: the anytime-anywhere closeness-centrality engine.
//
// Orchestrates the paper's three phases on the simulated cluster:
//   DD  — multilevel cut-minimizing partition, rank state construction,
//   IA  — per-rank multithreaded Dijkstra,
//   RC  — iterated boundary-DV exchange + local relaxation, with dynamic
//         vertex additions injected between steps through a
//         VertexAdditionStrategy (RoundRobin-PS / CutEdge-PS / Repartition-S).
//
// The engine executes the real distributed algorithm (per-rank private state,
// serialized messages); the Cluster prices every operation and byte with the
// LogP model, so `sim_seconds()` plays the role of the paper's measured wall
// time. See DESIGN.md §2.
//
// Typical use:
//   AnytimeEngine engine(graph, config);
//   engine.initialize();                  // DD + IA
//   engine.run_rc_steps(4);               // progress to RC4
//   RoundRobinPS strategy;
//   engine.apply_addition(batch, strategy);
//   engine.run_to_quiescence();
//   auto scores = engine.closeness();
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "core/closeness.hpp"
#include "core/distance_store.hpp"
#include "core/edge_delete.hpp"
#include "core/rc.hpp"
#include "core/subgraph.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "partition/multilevel.hpp"
#include "refine/bounds.hpp"
#include "refine/demand.hpp"
#include "refine/planner.hpp"
#include "runtime/backend.hpp"
#include "runtime/cluster.hpp"
#include "runtime/thread_pool.hpp"
#include "shard/migration.hpp"
#include "shard/ownership.hpp"

namespace aa {

class VertexAdditionStrategy;

/// How Repartition-S obtains the new partition.
enum class RepartitionMode {
    /// Partition the grown graph from scratch with the multilevel algorithm
    /// (the paper's choice: "we reused the algorithm from the DD phase").
    Scratch,
    /// Adaptive repartitioning (ParMETIS-AdaptiveRepart style, an extension):
    /// place new vertices by host-edge affinity and run FM refinement from
    /// the current assignment. Far fewer vertices move, so the migration and
    /// re-marking cost shrinks; cut quality can be slightly worse.
    Adaptive,
};

/// SSSP kernel used by the IA phase (and Repartition-S row seeding).
enum class IaKernel {
    Dijkstra,       // binary-heap Dijkstra (the paper's choice)
    DeltaStepping,  // Meyer-Sanders delta-stepping (alternative HPC kernel)
};

struct EngineConfig {
    /// Number of simulated processors (the paper evaluates with 16).
    std::uint32_t num_ranks{16};
    /// Threads per rank for the IA-phase Dijkstra (the paper's OpenMP T).
    std::size_t ia_threads{4};
    /// IA SSSP kernel.
    IaKernel ia_kernel{IaKernel::Dijkstra};
    /// Delta-stepping bucket width; <= 0 picks a heuristic.
    Weight ia_delta{0};
    /// Cost model of the simulated interconnect.
    LogPParams logp{};
    /// RC-step communication schedule.
    CommSchedule schedule{CommSchedule::SerializedAllToAll};
    /// Bandwidth price model for the simulated interconnect (see PriceModel
    /// in runtime/logp.hpp). PerByte — the default, bit-identical to the
    /// historical behaviour — charges the serialized wire size; PerEntry
    /// charges boundary messages by decoded entry footprint so sim_seconds
    /// stops depending on the wire encoding.
    PriceModel price_model{PriceModel::PerByte};
    /// Event-driven RC exchange (relax-on-arrival): boundary messages become
    /// timestamped delivery events (see runtime/event_loop.hpp) scheduled
    /// under `schedule` with senders departing at their own clocks, and each
    /// rank ingests a message as soon as it arrives instead of waiting for
    /// the collective barrier. Distances, dirty order, op counts, and message
    /// traffic are bit-identical to the step-synchronous default at every
    /// step — ingest preserves the canonical per-receiver message order, so
    /// only the simulated timeline (sim_seconds, span bounds) changes.
    bool rc_async{false};
    /// DD / Repartition-S partitioner parameters.
    MultilevelConfig partition{};
    /// Seed for the partitioner and any stochastic strategy components.
    std::uint64_t seed{0x5EED};
    /// Abstract ops charged per (vertex + edge) * log2(n) unit of multilevel
    /// partitioning work (calibrates DD/Repartition cost vs. METIS).
    double partition_cost_factor{8.0};
    /// Repartition-S variant (see RepartitionMode).
    RepartitionMode repartition_mode{RepartitionMode::Scratch};
    /// Closeness formula (Wasserman–Faust corrected vs. the paper's raw
    /// inverse-sum; see ClosenessVariant). Applied by closeness() and the
    /// distributed reduction alike.
    ClosenessVariant closeness_variant{ClosenessVariant::Corrected};
    /// Record phase/step spans and comm metrics on the simulated clock (see
    /// common/metrics.hpp and core/telemetry.hpp). Off by default: a
    /// disabled registry costs one branch per phase and allocates nothing.
    bool enable_metrics{false};
    /// Who executes the per-rank phase bodies (see runtime/backend.hpp):
    /// Sequential (default, rank loops on the driver thread) or Threaded
    /// (thread-per-rank between collectives). Results, telemetry and
    /// sim_seconds() are bit-identical across backends by contract.
    BackendKind backend{BackendKind::Sequential};
    /// Worker threads for the threaded backend; 0 = one per rank.
    std::size_t backend_threads{0};
    /// Boundary-DV wire format for the RC exchange (see
    /// BoundaryWireFormat in core/distance_store.hpp and the accounting note
    /// in core/rc.hpp). Distances, dirty order and op counts are
    /// bit-identical across formats; v2 ships fewer bytes, so exchange time
    /// (and sim_seconds) improves under it.
    BoundaryWireFormat wire_format{BoundaryWireFormat::V2Soa};
    /// Payload-window size for the RC ingest kernel (see rc.hpp). Windowing
    /// never changes results — a 256-byte window and a 128 MB window produce
    /// bit-identical state — only cache behaviour. 0 (the default) resolves
    /// adaptively at engine construction: the host LLC divided by the number
    /// of ranks that ingest concurrently (all of them under the threaded
    /// backend, one under the sequential), clamped to [4 MiB, 128 MiB] — see
    /// adaptive_rc_ingest_window_bytes. An explicit value always wins.
    std::size_t rc_ingest_window_bytes{0};
    /// Allow the explicit SIMD relaxation sweeps (effective only when built
    /// with -DAA_ENABLE_SIMD=ON on hardware with AVX2; results are
    /// bit-identical to the scalar reference either way).
    bool rc_simd{true};
    /// How the RC kernels order per-rank work (see refine/planner.hpp).
    /// Uniform — the default — keeps the historical ascending sweeps and is
    /// bit-identical to the pre-refine engine by contract (schedule, ops,
    /// dirty-append order, span sequence); QueryHeat / TopKPruned reorder
    /// the post and propagate worklists toward query-hot rows whenever the
    /// DemandTracker (or the top-k focus set) holds a positive signal.
    /// Reordering never changes the converged state, only which rows become
    /// exact first.
    RefinePolicy refine_policy{RefinePolicy::Uniform};
    /// Per-rank, per-step cap on propagate relaxation attempts (see
    /// rc_propagate_local's max_ops). 0 — the default — drains to the local
    /// fixpoint every step, the historical behaviour. A positive budget
    /// makes steps incremental: undrained rows stay marked and convergence
    /// is spread over more (cheaper) steps, which is what gives a refine
    /// policy room to finish hot rows first. Applies under any policy.
    double refine_budget_ops{0};
    /// How a positive refine_budget_ops is split across ranks (see
    /// refine/planner.hpp). Static — the default — gives every rank the
    /// configured per-rank budget, bit-identical to the pre-split engine;
    /// DemandProportional steers the same total toward the ranks owning the
    /// query-hot vertices.
    RefineBudgetSplit refine_budget_split{RefineBudgetSplit::Static};
    /// Logical shards per rank in the vertex -> shard -> rank ownership
    /// indirection (see shard/ownership.hpp). Any granularity resolves
    /// ownership identically while no shard has been migrated — results,
    /// ops, messages and span sequences are bit-identical across values —
    /// but a larger count gives the migration planner finer moves. 1
    /// degenerates to the historical one-bucket-per-rank map.
    std::uint32_t shards_per_rank{8};
    /// Plan and apply shard migrations automatically at RC-step boundaries
    /// (see shard/migration.hpp). Off by default: a disabled planner still
    /// observes load (free) but the engine never moves a shard, keeping the
    /// bit-identity contract with the pre-shard engine.
    bool auto_migrate{false};
    /// Auto-migration: most shards moved per RC-step boundary.
    std::uint32_t migrate_max_shards{1};
    /// Auto-migration: max/mean per-rank load (EWMA of measured relax ops)
    /// that must be exceeded before a move is planned.
    double migrate_imbalance_threshold{1.25};
};

/// Counters describing one engine lifetime; used by benchmarks and reports.
struct EngineReport {
    std::size_t rc_steps{0};
    double sim_seconds{0};
    double ia_ops{0};
    double rc_ops{0};
    double dynamic_ops{0};
    std::size_t vertex_additions{0};
    std::size_t edge_additions{0};
    std::size_t edge_deletions{0};
    std::size_t weight_updates{0};
    /// (row, column) entries reset to infinity by deletion cascades.
    std::size_t invalidated_entries{0};
    /// Shards repointed to another rank (incremental migration).
    std::size_t shard_migrations{0};
    /// DV rows shipped by those migrations.
    std::size_t migrated_rows{0};
};

/// One processed delivery event of an event-driven RC step, recorded in
/// event-loop pop order (the (time, source, seq) total order — see
/// runtime/event_loop.hpp). The trace is what the determinism tests compare
/// across backends and across repeated threaded runs: identical traces mean
/// the whole relax-on-arrival schedule replayed identically.
struct DeliveryTraceEntry {
    std::size_t step{0};
    double time{0};
    RankId from{0};
    RankId to{0};
    std::uint64_t seq{0};
    std::size_t bytes{0};
};

/// Telemetry for one RC step (appended by every rc_step()).
struct RcStepStats {
    std::size_t step{0};
    /// Duration of this step's all-to-all exchange.
    double exchange_seconds{0};
    /// Messages / payload bytes shipped in this step.
    std::size_t messages{0};
    std::size_t bytes{0};
    /// Relaxation work performed (post + ingest + propagate ops).
    double ops{0};
    /// Simulated clock after the step's barrier.
    double sim_seconds_after{0};
};

class AnytimeEngine {
public:
    explicit AnytimeEngine(DynamicGraph graph, EngineConfig config = {});
    ~AnytimeEngine();

    AnytimeEngine(const AnytimeEngine&) = delete;
    AnytimeEngine& operator=(const AnytimeEngine&) = delete;
    AnytimeEngine(AnytimeEngine&&) noexcept = default;
    AnytimeEngine& operator=(AnytimeEngine&&) noexcept = default;

    // ---- phases -----------------------------------------------------------

    /// DD + IA. Must be called exactly once before any RC step.
    void initialize();

    /// One recombination step. Returns false (and does nothing) if the system
    /// is already quiescent — no pending sends, propagations or messages.
    bool rc_step();

    /// Run up to `max_steps` RC steps (default: until quiescent). Returns the
    /// number of steps executed.
    std::size_t run_rc_steps(std::size_t max_steps);
    std::size_t run_to_quiescence();

    /// True when no rank holds unsent/unpropagated changes and no message is
    /// in flight: the distance vectors equal the exact APSP of the current
    /// graph (within the relaxation epsilon; exactly, for uniform weights).
    bool quiescent() const;

    // ---- dynamic updates --------------------------------------------------

    /// Incorporate a batch of new vertices using the given strategy. The
    /// engine applies the structural change and the strategy's update
    /// algorithm; the caller then resumes RC stepping to convergence.
    void apply_addition(const GrowthBatch& batch, VertexAdditionStrategy& strategy);

    /// The "anywhere" vertex-addition algorithm (paper Figure 3) with an
    /// explicit per-vertex rank assignment (assignment[i] = rank of the i-th
    /// new vertex). RoundRobin-PS / CutEdge-PS call this.
    void anywhere_add(const GrowthBatch& batch, const std::vector<RankId>& assignment);

    /// Repartition-S: integrate the batch structurally, repartition the whole
    /// grown graph, migrate DV rows to their new owners, seed new rows.
    void repartition_add(const GrowthBatch& batch);

    /// Anywhere edge additions between *existing* vertices (the authors'
    /// prior work [9], which vertex addition builds on). Duplicates are
    /// skipped. Resume RC stepping afterwards to converge.
    void add_edges(std::span<const Edge> edges);

    /// Anywhere edge-weight decrease (prior work [7]). Returns false if the
    /// edge does not exist. Weight *increases* are routed through the
    /// deletion machinery (apply_deletion's invalidate/re-settle path).
    bool decrease_edge_weight(VertexId u, VertexId v, Weight new_weight);

    /// Fully-dynamic shrink updates: edge/vertex deletions and weight
    /// increases via SSSP-Del-style invalidate/re-settle, weight decreases
    /// via the growth-path broadcast (see core/edge_delete.hpp for the batch
    /// semantics and the phase overview). Resume RC stepping afterwards; at
    /// quiescence the state matches a from-scratch engine on the final graph.
    ShrinkReport apply_deletion(const ShrinkBatch& batch);

    /// Mixed edge-weight updates (weight = the new weight): increases run
    /// through apply_deletion's cascade, decreases through the broadcast
    /// path, in one atomic batch. Absent edges are skipped.
    ShrinkReport update_edge_weights(std::span<const Edge> updates);

    // ---- incremental shard migration ---------------------------------------

    /// Apply the given shard moves through the migration protocol
    /// (core/migrate.cpp): drain in-flight boundary messages, ship each
    /// moving shard's DV rows + adjacency over the wire (boundary-block
    /// encoding, both formats), republish the shard map, splice the rows out
    /// of / into the rank states, and re-settle locally. Converged state
    /// afterwards is bit-identical to a from-scratch engine on the final
    /// assignment. No-op moves (unknown shard, same rank) are skipped.
    void migrate_shards(std::span<const ShardMove> moves);

    /// What the telemetry-driven planner would move right now (bounded by
    /// `max_moves`); empty while measured load stays under the configured
    /// imbalance threshold. Pure planning — applies nothing.
    std::vector<ShardMove> plan_migration(std::uint32_t max_moves) const;

    /// The telemetry-driven migration planner (per-rank load EWMA fed from
    /// each RC step's measured relax ops).
    const MigrationPlanner& migration_planner() const { return planner_; }

    // ---- results & introspection -------------------------------------------

    std::size_t num_vertices() const { return graph_.num_vertices(); }
    /// True once initialize() (or a checkpoint restore) has run.
    bool initialized() const { return initialized_; }
    std::size_t num_ranks() const;
    std::size_t rc_steps_completed() const { return rc_steps_; }
    double sim_seconds() const;
    const Cluster& cluster() const;
    Cluster& cluster();
    /// The execution backend running the per-rank phase bodies.
    const ExecutionBackend& backend() const { return *backend_; }
    const DynamicGraph& graph() const { return graph_; }
    /// The flat vertex -> rank map, materialized from the shard indirection
    /// (partition evaluation, placement strategies).
    std::vector<RankId> owners() const { return ownership_.owners(); }
    /// The two-level vertex -> shard -> rank ownership map.
    const ShardOwnership& shard_ownership() const { return ownership_; }
    const EngineReport& report() const { return report_; }
    Rng& rng() { return rng_; }
    const EngineConfig& config() const { return config_; }

    /// Current cut-edge count of the live partition.
    std::size_t current_cut_edges() const;

    /// Gather the distance row of one vertex from its owning rank.
    /// Observer only (no charges).
    std::vector<Weight> distance_row(VertexId v) const;

    /// Point query "current estimate of d(u, v)" the way a deployed service
    /// would answer it: a request/response message pair with the owning rank,
    /// priced by the cost model. Returns kInfinity while unknown.
    Weight query_distance(VertexId u, VertexId v);

    /// Gather the full n x n matrix (testing / quality measurement only).
    std::vector<std::vector<Weight>> full_distance_matrix() const;

    /// Observer-only visitor over every vertex's current DV row (one call
    /// per vertex, unspecified order; the span is valid only inside the
    /// call). Charges nothing; the serve layer's snapshot builder uses it to
    /// avoid materializing the full matrix. Must run on the driver thread —
    /// rows race with RC relaxation otherwise.
    void visit_rows(
        const std::function<void(VertexId, std::span<const Weight>)>& fn) const;

    /// Zero-copy observer of one vertex's current DV row. Driver thread
    /// only; the span is invalidated by the next engine mutation. The delta
    /// snapshot builder re-sums candidate rows through this instead of
    /// copying them (distance_row) or walking all rows (visit_rows).
    std::span<const Weight> row_view(VertexId v) const;

    /// Rows whose values may have changed since the previous call (global
    /// vertex ids). `all` is the conservative answer after any structural
    /// change (additions, deletions, reweights, repartition, migration,
    /// checkpoint restore) — every row must be treated as changed; otherwise
    /// `rows` is the exact touched set (ascending, deduplicated), drained
    /// from the per-row stamps every DistanceStore mutation sets. Driver
    /// thread only, engine idle (boundary-hook contract); draining resets
    /// the stamps, so each mutation is reported exactly once.
    struct ChangedRows {
        bool all{false};
        std::vector<VertexId> rows;
    };
    ChangedRows take_changed_rows();

    /// Boundary hook for the serve layer: when set, invoked after
    /// initialize(), after every *completed* rc_step(), and after each
    /// dynamic-update entry point (apply_addition, add_edges, and a
    /// decrease_edge_weight that changed a weight). Runs on the calling
    /// thread with the engine idle between phases; the hook must only
    /// observe the algorithmic state (query state, build snapshots) — never
    /// mutate it. Refinement *hints* (demand().record, set_refine_focus) are
    /// the one sanctioned exception: they steer the schedule, not the answer.
    void set_boundary_hook(std::function<void(AnytimeEngine&)> hook);

    // ---- demand-driven refinement ------------------------------------------

    /// The per-vertex query-heat accumulator the serve layer feeds and the
    /// refine planner reads (see refine/demand.hpp). record() is safe from
    /// any thread; the engine decays it once per boundary.
    DemandTracker& demand() { return *demand_; }
    const DemandTracker& demand() const { return *demand_; }

    RefinePolicy refine_policy() const { return config_.refine_policy; }
    void set_refine_policy(RefinePolicy policy) {
        config_.refine_policy = policy;
    }
    void set_refine_budget_ops(double ops) { config_.refine_budget_ops = ops; }
    /// Toggle planner-driven migration at RC-step boundaries (scenario
    /// tooling; construction-time config everywhere else).
    void set_auto_migrate(bool on) { config_.auto_migrate = on; }
    /// Adjust the planner's max/mean load trigger (scenario tooling).
    void set_migrate_imbalance_threshold(double threshold) {
        config_.migrate_imbalance_threshold = threshold;
    }

    /// Replace the top-k focus set (the serve layer's uncertain top-k
    /// candidates). Only consulted under RefinePolicy::TopKPruned; focus
    /// rows order ahead of plain heat. Out-of-range ids are ignored.
    void set_refine_focus(const std::vector<VertexId>& focus);

    /// Completed RC steps since the last structural base case (-1 right
    /// after a checkpoint restore) — the k of the wavefront settledness
    /// certificate in refine/bounds.hpp. Budgeted steps (refine_budget_ops
    /// > 0) do not advance it: they may stop short of the local fixpoint the
    /// certificate's induction needs.
    std::int64_t wavefront_steps() const { return wavefront_k_; }

    /// The engine-side inputs of the closeness interval math, captured from
    /// the current state (see refine/bounds.hpp).
    BoundsParams bounds_params() const;

    /// Certified [lo, hi] enclosure of v's *converged* closeness score from
    /// its current row. Observer only (no charges); O(n) row scan.
    ClosenessInterval closeness_interval(VertexId v) const;

    /// Closeness scores from the current (possibly partial) DVs.
    /// Observer only: reads rank state directly, charges nothing.
    ClosenessScores closeness() const;

    /// Closeness computed the way the deployed system would: each rank
    /// reduces its own rows (charged compute), ships (vertex, score, reach)
    /// triples to rank 0 (priced messages), which assembles the result.
    /// Advances the simulated clock.
    ClosenessScores compute_closeness_distributed();

    /// Per-RC-step telemetry since construction.
    const std::vector<RcStepStats>& step_history() const { return step_history_; }

    /// Delivery events processed by event-driven RC steps, in processing
    /// order (empty unless EngineConfig::rc_async).
    const std::vector<DeliveryTraceEntry>& delivery_trace() const {
        return delivery_trace_;
    }

    /// The ingest window actually in effect (the adaptive resolution of the
    /// config's 0 sentinel, or the explicit configured value).
    std::size_t rc_ingest_window_bytes_effective() const {
        return rc_ingest_window_bytes_;
    }

    /// The engine's metrics registry (always present; enabled iff
    /// EngineConfig::enable_metrics, or by calling metrics().enable() before
    /// the phases of interest). Spans are stamped with the simulated clock.
    /// telemetry_json() / telemetry_csv() in core/telemetry.hpp render it.
    MetricsRegistry& metrics() { return *metrics_; }
    const MetricsRegistry& metrics() const { return *metrics_; }

    /// Existing vertices whose owner changed in the most recent
    /// repartition_add (0 after anywhere additions, which never move
    /// established vertices).
    std::size_t last_moved_vertices() const { return last_moved_vertices_; }

    // ---- checkpointing ------------------------------------------------------

    /// Serialize the full analysis state (graph, ownership, distance rows,
    /// progress counters, simulated clock) — the anytime property turned
    /// into persistence: an interrupted analysis can resume later or on
    /// another machine.
    void save_checkpoint(std::ostream& out) const;

    /// Rebuild an engine from a checkpoint. The restored engine owes one
    /// consistency sweep (pending worklist marks are not part of the
    /// checkpoint), which is re-established conservatively; resuming RC
    /// steps continues exactly where the saved analysis left off.
    static AnytimeEngine load_checkpoint(std::istream& in, EngineConfig config);

private:
    struct RankState {
        LocalSubgraph sg;
        DistanceStore store;
    };

    void distribute_edge(VertexId u, VertexId v, Weight w);
    /// Run one per-rank phase body on the execution backend: fn(r, sink) is
    /// called once per rank (possibly concurrently — it must confine itself
    /// to rank-r state plus the rank-confined Cluster entry points), spans
    /// pushed into `sink` are merged into the registry in ascending rank
    /// order after the barrier, so telemetry is identical across backends.
    void run_rank_phase(
        const std::function<void(RankId, std::vector<MetricSpan>&)>& fn);
    /// Pool the per-rank kernels may fan intra-rank work out to: the shared
    /// IA pool under a sequential backend; an inline (no-worker) pool / null
    /// when ranks run concurrently — ThreadPool::parallel_for must not be
    /// entered from two ranks at once, and thread-per-rank already owns the
    /// cores. Pricing never depends on this choice (kernels return identical
    /// op counts with and without a pool).
    ThreadPool& ia_pool();
    ThreadPool* kernel_pool();
    /// Phases 2+3 of an event-driven rc_step (EngineConfig::rc_async): the
    /// pipelined exchange, the event loop with relax-on-arrival ingest, and
    /// the deferred per-rank propagate. Runs on the driver thread between
    /// backend phases (see runtime/backend.hpp). Fills stats.exchange_seconds
    /// and accumulates per-rank ingest + propagate ops into phase3_ops.
    void rc_step_async(RcStepStats& stats, std::int64_t step_no,
                       const std::vector<RankStats>& comm_before,
                       std::vector<double>& phase3_ops,
                       const std::vector<std::vector<LocalId>>& refine_plans,
                       const std::vector<double>& step_budgets);
    /// Decay query heat, export the refine.demand.* gauges, then invoke
    /// boundary_hook_ if set (phase entry points call this last).
    void fire_boundary_hook();
    /// Per-rank refine sweep orders for the starting RC step (empty vectors
    /// = the historical ascending order). Runs on the driver thread before
    /// the post phase; deterministic given the heat/focus state.
    std::vector<std::vector<LocalId>> plan_refine_orders();
    /// Per-rank propagate budgets for the starting RC step (see
    /// plan_rank_budgets in refine/planner.hpp). Static split returns the
    /// configured per-rank budget for every rank.
    std::vector<double> plan_step_budgets() const;
    /// Static per-shard weight (vertices + incident edges) the migration
    /// planner scales measured rank load by.
    std::vector<double> shard_static_weights() const;
    /// Deliver and ingest any in-flight boundary messages (migration
    /// prologue: blocks addressed under the old shard map must land before
    /// rows move). Charged like a regular ingest phase.
    void drain_in_flight_updates();
    /// Every structural-update path calls this after its local re-settlement:
    /// resets the wavefront certificate to its k = 0 base case, recomputes
    /// the live w_min/w_max, and grows demand/focus state to the new vertex
    /// count.
    void note_structural_change();
    /// Recompute w_min_/w_max_ from the live graph.
    void refresh_weight_extremes();
    /// Returns the total ops charged (for the DD telemetry span).
    double charge_partition_cost(std::size_t vertices, std::size_t edges);
    /// Broadcast row(from) and apply the new/changed edge {from, to, w}
    /// everywhere it can bind immediately. Returns the ops charged.
    double broadcast_edge_update(VertexId from, VertexId to, Weight w);

    DynamicGraph graph_;  // ground-truth mirror of the distributed graph
    EngineConfig config_;
    std::unique_ptr<Cluster> cluster_;
    std::unique_ptr<ExecutionBackend> backend_;
    std::unique_ptr<ThreadPool> pool_;
    std::unique_ptr<ThreadPool> inline_pool_;  // no-worker pool, see ia_pool()
    Rng rng_;
    ShardOwnership ownership_;
    MigrationPlanner planner_;
    std::vector<RankState> ranks_;
    std::size_t rc_steps_{0};
    bool initialized_{false};
    EngineReport report_;
    std::vector<RcStepStats> step_history_;
    std::vector<DeliveryTraceEntry> delivery_trace_;
    std::size_t rc_ingest_window_bytes_{0};  // resolved from config at ctor
    std::unique_ptr<MetricsRegistry> metrics_;
    std::size_t last_moved_vertices_{0};
    std::function<void(AnytimeEngine&)> boundary_hook_;
    // unique_ptr because DemandTracker (SharedSlot member) is neither
    // copyable nor movable, and the engine keeps its defaulted moves.
    std::unique_ptr<DemandTracker> demand_;
    std::vector<std::uint8_t> refine_focus_mask_;  // 0/1 per global vertex
    bool refine_focus_any_{false};
    /// Wavefront certificate counter (see wavefront_steps()).
    std::int64_t wavefront_k_{-1};
    /// Conservative changed-rows answer (see take_changed_rows): true from
    /// construction and after every structural change, cleared by the drain.
    bool serve_rows_all_changed_{true};
    /// Live min/max edge weight (kInfinity / 0 on an edgeless graph),
    /// recomputed at every structural boundary.
    Weight w_min_{kInfinity};
    Weight w_max_{0};
};

}  // namespace aa
