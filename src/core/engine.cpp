#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <cstring>
#include <istream>
#include <iterator>
#include <ostream>

#include "common/assert.hpp"
#include "core/ia.hpp"
#include "core/rc.hpp"
#include "core/strategies.hpp"
#include "runtime/message.hpp"

namespace aa {

AnytimeEngine::AnytimeEngine(DynamicGraph graph, EngineConfig config)
    : graph_(std::move(graph)),
      config_(config),
      cluster_(std::make_unique<Cluster>(config.num_ranks, config.logp,
                                         config.schedule, config.price_model)),
      backend_(make_backend(config.backend, config.num_ranks,
                            config.backend_threads)),
      pool_(std::make_unique<ThreadPool>(config.ia_threads)),
      inline_pool_(std::make_unique<ThreadPool>(1)),
      rng_(config.seed),
      metrics_(std::make_unique<MetricsRegistry>()),
      demand_(std::make_unique<DemandTracker>(graph_.num_vertices())) {
    AA_ASSERT_MSG(config_.num_ranks >= 1, "need at least one rank");
    // Resolve the ingest window once: the 0 sentinel adapts to the host LLC
    // shared by however many ranks ingest concurrently (all of them under a
    // concurrent backend). An explicit configured value always wins.
    rc_ingest_window_bytes_ =
        config_.rc_ingest_window_bytes != 0
            ? config_.rc_ingest_window_bytes
            : adaptive_rc_ingest_window_bytes(
                  backend_->concurrent() ? config_.num_ranks : 1);
    if (config_.enable_metrics) {
        metrics_->enable();
    }
    cluster_->set_metrics(metrics_.get());
}

AnytimeEngine::~AnytimeEngine() = default;

std::size_t AnytimeEngine::num_ranks() const { return cluster_->num_ranks(); }

double AnytimeEngine::sim_seconds() const { return cluster_->max_time(); }

const Cluster& AnytimeEngine::cluster() const { return *cluster_; }
Cluster& AnytimeEngine::cluster() { return *cluster_; }

void AnytimeEngine::set_boundary_hook(std::function<void(AnytimeEngine&)> hook) {
    boundary_hook_ = std::move(hook);
}

void AnytimeEngine::fire_boundary_hook() {
    // Query heat ages once per engine boundary so stale interest fades; the
    // decay skips zero cells, so an idle tracker costs one pass of loads.
    demand_->decay(kDefaultHeatDecay);
    if (metrics_->enabled()) {
        const DemandTracker::Totals totals = demand_->totals();
        metrics_->set(metrics_->gauge("refine.demand.total"), totals.total);
        metrics_->set(metrics_->gauge("refine.demand.max"), totals.max);
        metrics_->set(metrics_->gauge("refine.demand.hot"),
                      static_cast<double>(totals.hot));
    }
    if (boundary_hook_) {
        boundary_hook_(*this);
    }
}

void AnytimeEngine::set_refine_focus(const std::vector<VertexId>& focus) {
    refine_focus_mask_.assign(graph_.num_vertices(), 0);
    refine_focus_any_ = false;
    for (const VertexId v : focus) {
        if (v < refine_focus_mask_.size()) {
            refine_focus_mask_[v] = 1;
            refine_focus_any_ = true;
        }
    }
}

std::vector<std::vector<LocalId>> AnytimeEngine::plan_refine_orders() {
    std::vector<std::vector<LocalId>> plans(ranks_.size());
    if (config_.refine_policy == RefinePolicy::Uniform) {
        return plans;  // contract: empty plans = the historical schedule
    }
    std::vector<double> heat;
    const bool any_heat = demand_->snapshot(heat);
    const bool use_focus = config_.refine_policy == RefinePolicy::TopKPruned &&
                           refine_focus_any_;
    if (!any_heat && !use_focus) {
        return plans;  // no demand signal: bit-identical to Uniform
    }
    const std::span<const double> heat_span =
        any_heat ? std::span<const double>(heat) : std::span<const double>{};
    const std::span<const std::uint8_t> focus_span =
        use_focus ? std::span<const std::uint8_t>(refine_focus_mask_)
                  : std::span<const std::uint8_t>{};
    for (RankId r = 0; r < ranks_.size(); ++r) {
        plans[r] = plan_rank_order(ranks_[r].sg, heat_span, focus_span);
    }
    return plans;
}

void AnytimeEngine::refresh_weight_extremes() {
    w_min_ = kInfinity;
    w_max_ = 0;
    for (const Edge& e : graph_.edges()) {
        w_min_ = std::min(w_min_, e.weight);
        w_max_ = std::max(w_max_, e.weight);
    }
}

void AnytimeEngine::note_structural_change() {
    // Every caller has just re-settled its ranks to the local fixpoint (and
    // the deletion cascade only leaves certified-or-invalidated entries), so
    // the wavefront certificate restarts from its intra-rank base case.
    wavefront_k_ = 0;
    refresh_weight_extremes();
    demand_->resize(graph_.num_vertices());
    if (refine_focus_mask_.size() != graph_.num_vertices()) {
        refine_focus_mask_.resize(graph_.num_vertices(), 0);
    }
    // Structural changes move rows wholesale (add/swap/extract/replace) and
    // change n, which re-normalizes every closeness score under the
    // corrected variant — so the next take_changed_rows() must answer "all".
    serve_rows_all_changed_ = true;
}

BoundsParams AnytimeEngine::bounds_params() const {
    BoundsParams params;
    params.n = graph_.num_vertices();
    params.variant = config_.closeness_variant;
    params.w_min = w_min_;
    params.w_max = w_max_;
    params.wavefront_k = wavefront_k_;
    params.quiescent = initialized_ && quiescent();
    return params;
}

ClosenessInterval AnytimeEngine::closeness_interval(VertexId v) const {
    AA_ASSERT_MSG(initialized_, "initialize() must run first");
    AA_ASSERT(v < ownership_.num_vertices());
    const RankState& state = ranks_[ownership_.owner(v)];
    return row_closeness_interval(state.store.row(state.sg.local_id(v)), v,
                                  bounds_params());
}

void AnytimeEngine::run_rank_phase(
    const std::function<void(RankId, std::vector<MetricSpan>&)>& fn) {
    // Per-rank span sinks, merged in ascending rank order after the backend's
    // barrier: the registry sees the exact sequence the sequential loop would
    // have produced, regardless of completion order.
    std::vector<std::vector<MetricSpan>> sinks(ranks_.size());
    backend_->run_ranks(ranks_.size(), [&fn, &sinks](RankId r) {
        fn(r, sinks[r]);
    });
    for (std::vector<MetricSpan>& sink : sinks) {
        for (MetricSpan& span : sink) {
            metrics_->record_span(std::move(span));
        }
    }
}

ThreadPool& AnytimeEngine::ia_pool() {
    // An inline pool (no workers) touches no shared state in parallel_for, so
    // concurrent rank closures may each drive it; the shared multi-worker pool
    // may not be entered concurrently.
    return backend_->concurrent() ? *inline_pool_ : *pool_;
}

ThreadPool* AnytimeEngine::kernel_pool() {
    return backend_->concurrent() ? nullptr : pool_.get();
}

double AnytimeEngine::charge_partition_cost(std::size_t vertices, std::size_t edges) {
    // Multilevel partitioning is O((V + E) log V)-ish; the paper runs
    // ParMETIS in parallel across the ranks, so divide by P.
    const double units = static_cast<double>(vertices + edges) *
                         std::log2(static_cast<double>(std::max<std::size_t>(vertices, 2)));
    const double per_rank =
        config_.partition_cost_factor * units / static_cast<double>(num_ranks());
    for (RankId r = 0; r < cluster_->num_ranks(); ++r) {
        cluster_->charge_compute(r, per_rank);
    }
    return per_rank * static_cast<double>(num_ranks());
}

void AnytimeEngine::distribute_edge(VertexId u, VertexId v, Weight w) {
    const RankId ru = ownership_.owner(u);
    const RankId rv = ownership_.owner(v);
    ranks_[ru].sg.add_local_edge(u, v, w);
    if (rv != ru) {
        ranks_[rv].sg.add_local_edge(u, v, w);
    }
}

void AnytimeEngine::initialize() {
    AA_ASSERT_MSG(!initialized_, "initialize() called twice");
    initialized_ = true;

    const std::size_t n = graph_.num_vertices();
    const auto num_ranks = cluster_->num_ranks();
    const bool mx = metrics_->enabled();

    // ---- DD: cut-minimizing partition (the paper uses ParMETIS). ----
    const double dd_begin = cluster_->max_time();
    Rng partition_rng = rng_.fork();
    const Partitioning partition =
        multilevel_partition(graph_, num_ranks, partition_rng, config_.partition);
    // The flat assignment becomes the two-level shard map; owner resolution
    // is identical for any shards_per_rank until a shard is migrated.
    ownership_ = ShardOwnership::from_partition(partition.assignment, num_ranks,
                                                config_.shards_per_rank);
    const double dd_ops = charge_partition_cost(n, graph_.num_edges());
    if (mx) {
        MetricSpan span;
        span.name = "dd";
        span.t_begin = dd_begin;
        span.t_end = cluster_->max_time();
        span.ops = dd_ops;
        span.attrs.emplace_back("vertices", std::to_string(n));
        span.attrs.emplace_back("edges", std::to_string(graph_.num_edges()));
        span.attrs.emplace_back("cut_edges", std::to_string(current_cut_edges()));
        metrics_->record_span(std::move(span));
    }

    // Build rank states: sub-graphs, then distance rows in adoption order.
    ranks_.clear();
    ranks_.reserve(num_ranks);
    for (RankId r = 0; r < num_ranks; ++r) {
        RankState state;
        state.sg = LocalSubgraph(r, ownership_);
        state.store = DistanceStore(n);
        state.store.set_simd_enabled(config_.rc_simd);
        for (const VertexId v : state.sg.local_vertices()) {
            state.store.add_row(v);
        }
        ranks_.push_back(std::move(state));
    }
    for (const Edge& e : graph_.edges()) {
        distribute_edge(e.u, e.v, e.weight);
    }

    // ---- IA: per-rank multithreaded SSSP (Dijkstra or delta-stepping). ----
    std::vector<double> ia_ops(num_ranks, 0);
    run_rank_phase([&](RankId r, std::vector<MetricSpan>& sink) {
        IaProfile profile;
        const double ia_begin = cluster_->time(r);
        double ops = 0;
        if (config_.ia_kernel == IaKernel::DeltaStepping) {
            std::vector<LocalId> sources(ranks_[r].sg.num_local());
            std::iota(sources.begin(), sources.end(), 0);
            ops = ia_delta_stepping(ranks_[r].sg, ranks_[r].store, ia_pool(),
                                    sources,
                                    /*mark_prop=*/false, config_.ia_delta,
                                    mx ? &profile : nullptr);
        } else {
            ops = ia_dijkstra_all(ranks_[r].sg, ranks_[r].store, ia_pool(),
                                  mx ? &profile : nullptr);
        }
        cluster_->charge_compute(r, ops, config_.ia_threads);
        ia_ops[r] = ops;
        if (mx) {
            MetricSpan span;
            span.name = "ia";
            span.rank = static_cast<std::int32_t>(r);
            span.t_begin = ia_begin;
            span.t_end = cluster_->time(r);
            span.ops = ops;
            span.attrs.emplace_back("sources", std::to_string(profile.sources));
            span.attrs.emplace_back("sub_vertices",
                                    std::to_string(profile.sub_vertices));
            span.attrs.emplace_back("folds", std::to_string(profile.folds));
            sink.push_back(std::move(span));
        }
    });
    for (RankId r = 0; r < num_ranks; ++r) {
        report_.ia_ops += ia_ops[r];
    }
    cluster_->barrier();
    // IA leaves every intra-rank pair exact: the wavefront certificate's
    // k = 0 base case (see refine/bounds.hpp).
    wavefront_k_ = 0;
    refresh_weight_extremes();
    demand_->resize(n);
    fire_boundary_hook();
}

bool AnytimeEngine::quiescent() const {
    if (cluster_->has_pending_messages()) {
        return false;
    }
    for (const RankState& state : ranks_) {
        if (state.store.any_send_pending() || state.store.any_prop_pending()) {
            return false;
        }
    }
    return true;
}

bool AnytimeEngine::rc_step() {
    AA_ASSERT_MSG(initialized_, "initialize() must run before RC steps");
    if (quiescent()) {
        return false;
    }

    RcStepStats stats;
    stats.step = rc_steps_ + 1;
    const std::size_t messages_before = cluster_->stats().total_messages;
    const std::size_t bytes_before = cluster_->stats().total_bytes;
    const bool mx = metrics_->enabled();
    const auto step_no = static_cast<std::int64_t>(rc_steps_ + 1);
    // Snapshot per-rank comm accounting before the step so the exchange span
    // can carry this step's per-rank in/out deltas.
    std::vector<RankStats> comm_before;
    if (mx) {
        comm_before.reserve(ranks_.size());
        for (RankId r = 0; r < ranks_.size(); ++r) {
            comm_before.push_back(cluster_->rank_stats(r));
        }
    }

    // Refine plans for this step: per-rank sweep orders from the query-heat
    // and top-k focus signals (all empty under Uniform / no demand — the
    // kernels then take their historical ascending sweeps, bit-identically).
    // Planned once on the driver thread so both phases below — and both the
    // sync and async propagate paths — order work consistently.
    const std::vector<std::vector<LocalId>> refine_plans = plan_refine_orders();
    // Per-rank propagate budgets (static split: the configured per-rank
    // budget everywhere, bit-identically; demand split: the same total
    // steered toward the query-hot ranks).
    const std::vector<double> step_budgets = plan_step_budgets();

    // Phase 1: package & post boundary DV updates. Rank-confined throughout
    // (each closure serializes its own rows and posts from its own outbox).
    std::vector<double> post_ops(ranks_.size(), 0);
    run_rank_phase([&](RankId r, std::vector<MetricSpan>& sink) {
        RcPostProfile profile;
        const double t0 = cluster_->time(r);
        const double ops = rc_post_boundary_updates(
            ranks_[r].sg, ranks_[r].store, *cluster_, config_.wire_format,
            mx ? &profile : nullptr, refine_plans[r]);
        cluster_->charge_compute(r, ops);
        post_ops[r] = ops;
        if (mx) {
            MetricSpan span;
            span.name = "rc.post";
            span.rank = static_cast<std::int32_t>(r);
            span.step = step_no;
            span.t_begin = t0;
            span.t_end = cluster_->time(r);
            span.ops = ops;
            span.bytes = profile.bytes;
            span.messages = profile.messages;
            span.attrs.emplace_back("blocks", std::to_string(profile.blocks));
            span.attrs.emplace_back("entries", std::to_string(profile.entries));
            sink.push_back(std::move(span));
        }
    });
    for (RankId r = 0; r < ranks_.size(); ++r) {
        report_.rc_ops += post_ops[r];
        stats.ops += post_ops[r];
    }

    std::vector<double> phase3_ops(ranks_.size(), 0);
    if (config_.rc_async) {
        rc_step_async(stats, step_no, comm_before, phase3_ops, refine_plans,
                      step_budgets);
    } else {
        // Phase 2: personalized all-to-all exchange (priced, barrier
        // semantics).
        const double exchange_begin = cluster_->max_time();
        stats.exchange_seconds = cluster_->exchange();
        if (mx) {
            // Everyone enters and leaves the collective at the same instants,
            // so the per-rank children share the parent's bounds; each
            // carries its own rank's sent-side load plus the received side as
            // attributes.
            const auto h =
                metrics_->span_open("rc.exchange", -1, step_no, exchange_begin);
            for (RankId r = 0; r < ranks_.size(); ++r) {
                const RankStats& now = cluster_->rank_stats(r);
                MetricSpan span;
                span.name = "rc.exchange.rank";
                span.rank = static_cast<std::int32_t>(r);
                span.step = step_no;
                span.t_begin = exchange_begin;
                span.t_end = cluster_->max_time();
                span.bytes = now.bytes_sent - comm_before[r].bytes_sent;
                span.messages = now.messages_sent - comm_before[r].messages_sent;
                span.attrs.emplace_back(
                    "bytes_in", std::to_string(now.bytes_received -
                                               comm_before[r].bytes_received));
                span.attrs.emplace_back(
                    "messages_in", std::to_string(now.messages_received -
                                                  comm_before[r].messages_received));
                metrics_->record_span(std::move(span));
                metrics_->span_add(h, 0, span.bytes, span.messages);
            }
            metrics_->span_close(h, cluster_->max_time());
        }

        // Phase 3: ingest external updates, then local propagation to
        // fixpoint. The batched kernels run the row sweeps on the IA thread
        // pool when the backend is sequential (kernel_pool()) — that
        // accelerates host wall-clock time only; the simulated clock still
        // prices RC single-threaded per rank (the paper's model), so
        // `threads` stays 1 in charge_compute. Ingest and propagate are
        // charged separately so their spans cover disjoint intervals;
        // compute_time is linear in ops, so the split charge advances the
        // clock exactly as the former combined one.
        run_rank_phase([&](RankId r, std::vector<MetricSpan>& sink) {
            const auto inbox = cluster_->receive(r);
            RcIngestProfile ingest_profile;
            const double t0 = cluster_->time(r);
            const double ingest_ops = rc_ingest_updates(
                ranks_[r].sg, ranks_[r].store, inbox, config_.wire_format,
                kernel_pool(), kRcIngestParallelGrain,
                rc_ingest_window_bytes_, mx ? &ingest_profile : nullptr);
            cluster_->charge_compute(r, ingest_ops);
            const double t1 = cluster_->time(r);
            RcPropagateProfile prop_profile;
            const double prop_ops = rc_propagate_local(
                ranks_[r].sg, ranks_[r].store, kernel_pool(),
                kRcPropagateParallelGrain, mx ? &prop_profile : nullptr,
                kRcPropagateTileCols, refine_plans[r], step_budgets[r]);
            cluster_->charge_compute(r, prop_ops);
            phase3_ops[r] = ingest_ops + prop_ops;
            if (mx) {
                MetricSpan ingest_span;
                ingest_span.name = "rc.ingest";
                ingest_span.rank = static_cast<std::int32_t>(r);
                ingest_span.step = step_no;
                ingest_span.t_begin = t0;
                ingest_span.t_end = t1;
                ingest_span.ops = ingest_ops;
                ingest_span.attrs.emplace_back(
                    "blocks", std::to_string(ingest_profile.blocks));
                ingest_span.attrs.emplace_back(
                    "entries", std::to_string(ingest_profile.entries));
                ingest_span.attrs.emplace_back(
                    "windows", std::to_string(ingest_profile.windows));
                sink.push_back(std::move(ingest_span));
                MetricSpan prop_span;
                prop_span.name = "rc.propagate";
                prop_span.rank = static_cast<std::int32_t>(r);
                prop_span.step = step_no;
                prop_span.t_begin = t1;
                prop_span.t_end = cluster_->time(r);
                prop_span.ops = prop_ops;
                prop_span.attrs.emplace_back(
                    "rows_drained", std::to_string(prop_profile.rows_drained));
                sink.push_back(std::move(prop_span));
            }
        });
    }
    for (RankId r = 0; r < ranks_.size(); ++r) {
        report_.rc_ops += phase3_ops[r];
        stats.ops += phase3_ops[r];
    }
    cluster_->barrier();

    ++rc_steps_;
    // Advance the wavefront certificate only for full-fixpoint steps: a
    // budgeted propagate may stop short of the local fixpoint the
    // certificate's induction needs (settled entries stay settled either
    // way, so a stale k is sound, just loose).
    if (config_.refine_budget_ops <= 0) {
        wavefront_k_ = wavefront_k_ < 0 ? 0 : wavefront_k_ + 1;
    }
    report_.rc_steps = rc_steps_;
    report_.sim_seconds = sim_seconds();
    stats.messages = cluster_->stats().total_messages - messages_before;
    stats.bytes = cluster_->stats().total_bytes - bytes_before;
    stats.sim_seconds_after = sim_seconds();
    step_history_.push_back(stats);

    // Feed the migration planner the step's measured per-rank relax load
    // (post + ingest + propagate ops — the same numbers the phase spans
    // record). Observing is free bookkeeping; shards only move when
    // auto_migrate opts in.
    std::vector<double> rank_ops(ranks_.size(), 0);
    for (RankId r = 0; r < ranks_.size(); ++r) {
        rank_ops[r] = post_ops[r] + phase3_ops[r];
    }
    planner_.observe(rank_ops);
    if (mx) {
        metrics_->set(metrics_->gauge("shard.load.imbalance"),
                      planner_.imbalance());
    }
    // Auto-migration needs a warm EWMA: migrate_shards resets the planner, so
    // requiring a few boundaries of fresh observations before the next move
    // keeps the drain work of a migration (itself skewed toward the receiving
    // rank) from re-triggering the planner forever — the drain quiesces in
    // fewer steps than the warmup, so only sustained real load can migrate.
    constexpr std::size_t kAutoMigrateWarmupSteps = 4;
    if (config_.auto_migrate &&
        planner_.observations() >= kAutoMigrateWarmupSteps) {
        const std::vector<ShardMove> moves =
            plan_migration(config_.migrate_max_shards);
        if (!moves.empty()) {
            migrate_shards(moves);
        }
    }
    fire_boundary_hook();
    return true;
}

std::vector<double> AnytimeEngine::plan_step_budgets() const {
    const auto num_ranks = static_cast<std::uint32_t>(ranks_.size());
    if (config_.refine_budget_split == RefineBudgetSplit::Static ||
        config_.refine_budget_ops <= 0) {
        return std::vector<double>(num_ranks, config_.refine_budget_ops);
    }
    std::vector<double> heat;
    if (!demand_->snapshot(heat)) {
        return std::vector<double>(num_ranks, config_.refine_budget_ops);
    }
    return plan_rank_budgets(config_.refine_budget_ops, ownership_, num_ranks,
                             heat, config_.refine_budget_split);
}

std::vector<double> AnytimeEngine::shard_static_weights() const {
    std::vector<double> weights(ownership_.num_shards(), 0.0);
    for (const RankState& state : ranks_) {
        for (LocalId l = 0; l < state.sg.num_local(); ++l) {
            weights[ownership_.shard(state.sg.global_id(l))] +=
                1.0 + static_cast<double>(state.sg.neighbors(l).size());
        }
    }
    return weights;
}

std::vector<ShardMove> AnytimeEngine::plan_migration(
    std::uint32_t max_moves) const {
    if (!initialized_) {
        return {};
    }
    return planner_.plan(ownership_, shard_static_weights(), max_moves,
                         config_.migrate_imbalance_threshold);
}

void AnytimeEngine::rc_step_async(
    RcStepStats& stats, std::int64_t step_no,
    const std::vector<RankStats>& comm_before, std::vector<double>& phase3_ops,
    const std::vector<std::vector<LocalId>>& refine_plans,
    const std::vector<double>& step_budgets) {
    // Event-driven phases 2+3: the pipelined exchange turns every posted
    // message into a timestamped delivery event; a rank ingests each message
    // the moment it arrives, then propagates once its whole inbox is in.
    // Distances, dirty order, op counts, and traffic are bit-identical to the
    // synchronous path at every step — only the simulated timeline changes
    // (no entry barrier, no wait for the full exchange to drain).
    //
    // Canonical order is the load-bearing detail: relax() acceptance has an
    // epsilon band, so within one receiver the messages must be relaxed in
    // exactly the synchronous inbox order (round order of the all-to-all).
    // Events pop in (time, source, seq) order; each receiver buffers
    // out-of-order arrivals and ingests its canonical prefix as it completes,
    // each message starting no earlier than its own arrival instant.
    const bool mx = metrics_->enabled();

    // Leftover inbox messages (delivered by collectives outside the RC loop)
    // come first, exactly as receive() would present them ahead of this
    // step's arrivals in the synchronous path.
    for (RankId r = 0; r < ranks_.size(); ++r) {
        const auto leftovers = cluster_->receive(r);
        if (leftovers.empty()) {
            continue;
        }
        const double t0 = cluster_->time(r);
        RcIngestProfile profile;
        const double ops = rc_ingest_updates(
            ranks_[r].sg, ranks_[r].store, leftovers, config_.wire_format,
            pool_.get(), kRcIngestParallelGrain, rc_ingest_window_bytes_,
            mx ? &profile : nullptr);
        cluster_->charge_compute(r, ops);
        phase3_ops[r] += ops;
        if (mx) {
            MetricSpan span;
            span.name = "rc.ingest";
            span.rank = static_cast<std::int32_t>(r);
            span.step = step_no;
            span.t_begin = t0;
            span.t_end = cluster_->time(r);
            span.ops = ops;
            span.attrs.emplace_back("blocks", std::to_string(profile.blocks));
            span.attrs.emplace_back("entries", std::to_string(profile.entries));
            metrics_->record_span(std::move(span));
        }
    }

    // Earliest possible departure: the fastest poster's clock (there is no
    // entry barrier — that is the point).
    double inflight_begin = cluster_->time(0);
    for (RankId r = 1; r < ranks_.size(); ++r) {
        inflight_begin = std::min(inflight_begin, cluster_->time(r));
    }
    std::vector<DeliveryEvent> deliveries = cluster_->pipelined_exchange();

    // Per-receiver canonical order = ascending seq (events are generated in
    // canonical drain order with a monotone counter).
    std::vector<std::vector<std::uint64_t>> canon(ranks_.size());
    for (const DeliveryEvent& e : deliveries) {
        canon[e.message.to].push_back(e.seq);
    }
    std::vector<std::size_t> canon_next(ranks_.size(), 0);
    std::vector<std::vector<DeliveryEvent>> held(ranks_.size());

    EventQueue queue;
    double last_arrival = inflight_begin;
    for (DeliveryEvent& e : deliveries) {
        last_arrival = std::max(last_arrival, e.time);
        queue.push(std::move(e));
    }
    stats.exchange_seconds = last_arrival - inflight_begin;

    std::vector<Message> inbox_one;
    while (!queue.empty()) {
        DeliveryEvent ev = queue.pop();
        const RankId to = ev.message.to;
        delivery_trace_.push_back({stats.step, ev.time, ev.source, to, ev.seq,
                                   ev.message.size_bytes()});
        held[to].push_back(std::move(ev));
        // Ingest the canonical prefix that has now fully arrived. The pool is
        // safe here: the event loop runs on the driver thread with no rank
        // closure in flight, and pooled sweeps are bit-identical by contract.
        while (canon_next[to] < canon[to].size()) {
            const std::uint64_t want = canon[to][canon_next[to]];
            const auto it = std::find_if(
                held[to].begin(), held[to].end(),
                [want](const DeliveryEvent& h) { return h.seq == want; });
            if (it == held[to].end()) {
                break;  // a canonical predecessor is still in flight
            }
            DeliveryEvent next = std::move(*it);
            held[to].erase(it);
            ++canon_next[to];
            // The receiver cannot touch the payload before it arrives.
            cluster_->advance_rank_to(to, next.time);
            const double t0 = cluster_->time(to);
            RcIngestProfile profile;
            inbox_one.clear();
            inbox_one.push_back(std::move(next.message));
            const double ops = rc_ingest_updates(
                ranks_[to].sg, ranks_[to].store, inbox_one, config_.wire_format,
                pool_.get(), kRcIngestParallelGrain, rc_ingest_window_bytes_,
                mx ? &profile : nullptr);
            cluster_->charge_compute(to, ops);
            phase3_ops[to] += ops;
            if (mx) {
                MetricSpan span;
                span.name = "rc.ingest.early";
                span.rank = static_cast<std::int32_t>(to);
                span.step = step_no;
                span.t_begin = t0;
                span.t_end = cluster_->time(to);
                span.ops = ops;
                span.attrs.emplace_back("source", std::to_string(next.source));
                span.attrs.emplace_back("arrival", std::to_string(next.time));
                span.attrs.emplace_back("blocks", std::to_string(profile.blocks));
                span.attrs.emplace_back("entries", std::to_string(profile.entries));
                metrics_->record_span(std::move(span));
            }
        }
    }
    for (RankId r = 0; r < ranks_.size(); ++r) {
        AA_ASSERT_MSG(held[r].empty() && canon_next[r] == canon[r].size(),
                      "async exchange left undelivered messages");
    }

    if (mx) {
        // The in-flight window — earliest departure to last arrival — with
        // the same per-rank traffic children as the synchronous span.
        const auto h =
            metrics_->span_open("rc.exchange.inflight", -1, step_no, inflight_begin);
        for (RankId r = 0; r < ranks_.size(); ++r) {
            const RankStats& now = cluster_->rank_stats(r);
            MetricSpan span;
            span.name = "rc.exchange.rank";
            span.rank = static_cast<std::int32_t>(r);
            span.step = step_no;
            span.t_begin = inflight_begin;
            span.t_end = last_arrival;
            span.bytes = now.bytes_sent - comm_before[r].bytes_sent;
            span.messages = now.messages_sent - comm_before[r].messages_sent;
            span.attrs.emplace_back(
                "bytes_in",
                std::to_string(now.bytes_received - comm_before[r].bytes_received));
            span.attrs.emplace_back(
                "messages_in", std::to_string(now.messages_received -
                                              comm_before[r].messages_received));
            metrics_->record_span(std::move(span));
            metrics_->span_add(h, 0, span.bytes, span.messages);
        }
        metrics_->span_close(h, last_arrival);
    }

    // Phase 3b: propagate to local fixpoint once each rank's inbox is fully
    // ingested (deferring propagate past the last ingest is what keeps the
    // per-receiver relaxation order identical to the synchronous step).
    run_rank_phase([&](RankId r, std::vector<MetricSpan>& sink) {
        RcPropagateProfile prop_profile;
        const double t1 = cluster_->time(r);
        const double prop_ops = rc_propagate_local(
            ranks_[r].sg, ranks_[r].store, kernel_pool(),
            kRcPropagateParallelGrain, mx ? &prop_profile : nullptr,
            kRcPropagateTileCols, refine_plans[r], step_budgets[r]);
        cluster_->charge_compute(r, prop_ops);
        phase3_ops[r] += prop_ops;
        if (mx) {
            MetricSpan prop_span;
            prop_span.name = "rc.propagate";
            prop_span.rank = static_cast<std::int32_t>(r);
            prop_span.step = step_no;
            prop_span.t_begin = t1;
            prop_span.t_end = cluster_->time(r);
            prop_span.ops = prop_ops;
            prop_span.attrs.emplace_back(
                "rows_drained", std::to_string(prop_profile.rows_drained));
            sink.push_back(std::move(prop_span));
        }
    });
}

std::size_t AnytimeEngine::run_rc_steps(std::size_t max_steps) {
    std::size_t steps = 0;
    while (steps < max_steps && rc_step()) {
        ++steps;
    }
    return steps;
}

std::size_t AnytimeEngine::run_to_quiescence() {
    return run_rc_steps(std::numeric_limits<std::size_t>::max());
}

void AnytimeEngine::apply_addition(const GrowthBatch& batch,
                                   VertexAdditionStrategy& strategy) {
    AA_ASSERT_MSG(initialized_, "initialize() must run before dynamic updates");
    const bool mx = metrics_->enabled();
    auto h = MetricsRegistry::kNullHandle;
    if (mx) {
        h = metrics_->span_open("add", -1, static_cast<std::int64_t>(rc_steps_),
                                sim_seconds());
        metrics_->span_attr(h, "strategy", std::string(strategy.name()));
        metrics_->span_attr(h, "new_vertices", std::to_string(batch.num_new));
        metrics_->span_attr(h, "batch_edges", std::to_string(batch.edges.size()));
    }
    last_moved_vertices_ = 0;
    strategy.apply(*this, batch);
    report_.vertex_additions += batch.num_new;
    report_.edge_additions += batch.edges.size();
    report_.sim_seconds = sim_seconds();
    if (mx) {
        // Batch edges that ended up spanning ranks under the strategy's
        // placement — the paper's "new cut edges" quality signal (Figure 7).
        std::size_t new_cut = 0;
        for (const Edge& e : batch.edges) {
            if (ownership_.owner(e.u) != ownership_.owner(e.v)) {
                ++new_cut;
            }
        }
        metrics_->span_attr(h, "new_cut_edges", std::to_string(new_cut));
        metrics_->span_attr(h, "moved_vertices",
                            std::to_string(last_moved_vertices_));
        metrics_->span_attr(h, "cut_edges_after",
                            std::to_string(current_cut_edges()));
        metrics_->span_close(h, sim_seconds());
    }
    fire_boundary_hook();
}

std::size_t AnytimeEngine::current_cut_edges() const {
    std::size_t cut = 0;
    for (const Edge& e : graph_.edges()) {
        if (ownership_.owner(e.u) != ownership_.owner(e.v)) {
            ++cut;
        }
    }
    return cut;
}

std::vector<Weight> AnytimeEngine::distance_row(VertexId v) const {
    AA_ASSERT(v < ownership_.num_vertices());
    const RankState& state = ranks_[ownership_.owner(v)];
    const auto row = state.store.row(state.sg.local_id(v));
    return {row.begin(), row.end()};
}

Weight AnytimeEngine::query_distance(VertexId u, VertexId v) {
    AA_ASSERT_MSG(initialized_, "initialize() must run first");
    AA_ASSERT(u < ownership_.num_vertices() && v < ownership_.num_vertices());
    const RankId owner = ownership_.owner(u);
    const RankState& state = ranks_[owner];
    const Weight result = state.store.at(state.sg.local_id(u), v);
    // Price the round trip: an 8-byte request and a 16-byte reply between
    // rank 0 (the query frontend) and the owner, plus the O(1) lookup.
    if (owner != 0) {
        cluster_->send(0, owner, MessageTag::Control, std::vector<std::byte>(8));
        cluster_->send(owner, 0, MessageTag::Control, std::vector<std::byte>(16));
        cluster_->exchange();
        (void)cluster_->receive(0);
        (void)cluster_->receive(owner);
    }
    cluster_->charge_compute(owner, 1);
    return result;
}

std::vector<std::vector<Weight>> AnytimeEngine::full_distance_matrix() const {
    const std::size_t n = graph_.num_vertices();
    std::vector<std::vector<Weight>> matrix(n);
    for (const RankState& state : ranks_) {
        for (LocalId l = 0; l < state.sg.num_local(); ++l) {
            const auto row = state.store.row(l);
            matrix[state.sg.global_id(l)] = {row.begin(), row.end()};
        }
    }
    return matrix;
}

void AnytimeEngine::visit_rows(
    const std::function<void(VertexId, std::span<const Weight>)>& fn) const {
    for (const RankState& state : ranks_) {
        for (LocalId l = 0; l < state.sg.num_local(); ++l) {
            fn(state.sg.global_id(l), state.store.row(l));
        }
    }
}

std::span<const Weight> AnytimeEngine::row_view(VertexId v) const {
    AA_ASSERT(v < ownership_.num_vertices());
    const RankState& state = ranks_[ownership_.owner(v)];
    return state.store.row(state.sg.local_id(v));
}

AnytimeEngine::ChangedRows AnytimeEngine::take_changed_rows() {
    ChangedRows out;
    out.all = serve_rows_all_changed_;
    serve_rows_all_changed_ = false;
    // Drain even on the conservative answer so the stamps restart from a
    // clean epoch for the next interval.
    for (RankState& state : ranks_) {
        state.store.drain_touched([&](VertexId v) { out.rows.push_back(v); });
    }
    if (out.all) {
        out.rows.clear();
        return out;
    }
    // Each vertex lives in exactly one rank's store, but keep the output
    // canonical (ascending, unique) regardless of rank iteration order.
    std::sort(out.rows.begin(), out.rows.end());
    out.rows.erase(std::unique(out.rows.begin(), out.rows.end()),
                   out.rows.end());
    return out;
}

ClosenessScores AnytimeEngine::closeness() const {
    return closeness_from_matrix(full_distance_matrix(), config_.closeness_variant);
}

ClosenessScores AnytimeEngine::compute_closeness_distributed() {
    AA_ASSERT_MSG(initialized_, "initialize() must run first");
    const std::size_t n = graph_.num_vertices();

    // Wire triple: (vertex, closeness score, reachable count). The score is
    // evaluated rank-side through the same closeness_score() expression the
    // observer path uses, so the two agree bit-for-bit.
    struct ScoreEntry {
        VertexId vertex;
        double closeness;
        std::uint64_t reachable;
    };
    static_assert(std::is_trivially_copyable_v<ScoreEntry>);

    ClosenessScores scores;
    scores.closeness.assign(n, 0);
    scores.reachable.assign(n, 0);

    for (RankId r = 0; r < ranks_.size(); ++r) {
        const RankState& state = ranks_[r];
        std::vector<ScoreEntry> entries;
        entries.reserve(state.sg.num_local());
        for (LocalId l = 0; l < state.sg.num_local(); ++l) {
            const auto row = state.store.row(l);
            Weight sum = 0;
            std::uint64_t reached = 0;
            for (const Weight d : row) {
                if (d < kInfinity) {
                    sum += d;
                    ++reached;
                }
            }
            entries.push_back(
                {state.sg.global_id(l),
                 closeness_score(sum, static_cast<std::size_t>(reached), n,
                                 config_.closeness_variant),
                 reached});
        }
        // Each row costs one pass over its n columns.
        cluster_->charge_compute(
            r, static_cast<double>(state.sg.num_local()) * static_cast<double>(n));

        if (r == 0) {
            for (const ScoreEntry& entry : entries) {
                scores.closeness[entry.vertex] = entry.closeness;
                scores.reachable[entry.vertex] = entry.reachable;
            }
        } else {
            Serializer out;
            out.write_span(std::span<const ScoreEntry>(entries));
            cluster_->send(r, 0, MessageTag::Control, out.take());
        }
    }
    cluster_->exchange();
    for (const Message& message : cluster_->receive(0)) {
        Deserializer in(message.bytes());
        for (const ScoreEntry& entry : in.read_vector<ScoreEntry>()) {
            scores.closeness[entry.vertex] = entry.closeness;
            scores.reachable[entry.vertex] = entry.reachable;
        }
        cluster_->charge_compute(0, static_cast<double>(message.bytes().size()) / 16);
    }
    cluster_->barrier();
    return scores;
}

namespace {
constexpr std::uint64_t kCheckpointMagic = 0xAA00C4EC4901DEAD;
}  // namespace

void AnytimeEngine::save_checkpoint(std::ostream& out) const {
    AA_ASSERT_MSG(initialized_, "nothing to checkpoint before initialize()");
    Serializer s;
    s.write(kCheckpointMagic);
    s.write(static_cast<std::uint64_t>(cluster_->num_ranks()));
    s.write(static_cast<std::uint64_t>(graph_.num_vertices()));
    const auto edges = graph_.edges();
    s.write(static_cast<std::uint64_t>(edges.size()));
    for (const Edge& e : edges) {
        s.write(e.u);
        s.write(e.v);
        s.write(e.weight);
    }
    // Ownership travels as the two-level shard tables so a migrated
    // assignment (which no flat from_partition construction reproduces)
    // restores exactly.
    s.write_span(std::span<const ShardId>(ownership_.shard_of()));
    s.write_span(std::span<const RankId>(ownership_.shard_map()));
    s.write(ownership_.shards_per_rank());
    s.write(static_cast<std::uint64_t>(rc_steps_));
    s.write(sim_seconds());
    // Rows in ascending global-vertex order, full width.
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
        const RankState& state = ranks_[ownership_.owner(v)];
        s.write_span(state.store.row(state.sg.local_id(v)));
    }
    const auto buffer = s.take();
    out.write(reinterpret_cast<const char*>(buffer.data()),
              static_cast<std::streamsize>(buffer.size()));
    AA_ASSERT_MSG(out.good(), "checkpoint write failed");
}

AnytimeEngine AnytimeEngine::load_checkpoint(std::istream& in, EngineConfig config) {
    std::vector<std::byte> buffer;
    {
        std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
        buffer.resize(raw.size());
        std::memcpy(buffer.data(), raw.data(), raw.size());
    }
    Deserializer d(buffer);
    AA_ASSERT_MSG(d.read<std::uint64_t>() == kCheckpointMagic,
                  "not an anytime-anywhere checkpoint");
    const auto ranks = static_cast<std::uint32_t>(d.read<std::uint64_t>());
    AA_ASSERT_MSG(ranks == config.num_ranks,
                  "checkpoint was taken with a different rank count");
    const auto n = static_cast<std::size_t>(d.read<std::uint64_t>());
    const auto m = static_cast<std::size_t>(d.read<std::uint64_t>());

    DynamicGraph graph(n);
    for (std::size_t i = 0; i < m; ++i) {
        const auto u = d.read<VertexId>();
        const auto v = d.read<VertexId>();
        const auto w = d.read<Weight>();
        graph.add_edge(u, v, w);
    }
    auto shard_of = d.read_vector<ShardId>();
    AA_ASSERT(shard_of.size() == n);
    auto shard_map = d.read_vector<RankId>();
    const auto shards_per_rank = d.read<std::uint32_t>();
    const auto rc_steps = static_cast<std::size_t>(d.read<std::uint64_t>());
    const auto sim_time = d.read<double>();

    AnytimeEngine engine(std::move(graph), config);
    engine.initialized_ = true;
    engine.rc_steps_ = rc_steps;
    engine.ownership_ = ShardOwnership(std::move(shard_of), std::move(shard_map),
                                       shards_per_rank);

    // Rebuild rank state from the checkpointed ownership (no DD re-run).
    engine.ranks_.clear();
    engine.ranks_.reserve(ranks);
    for (RankId r = 0; r < ranks; ++r) {
        RankState state;
        state.sg = LocalSubgraph(r, engine.ownership_);
        state.store = DistanceStore(n);
        state.store.set_simd_enabled(config.rc_simd);
        for (const VertexId v : state.sg.local_vertices()) {
            state.store.add_row(v);
        }
        engine.ranks_.push_back(std::move(state));
    }
    for (const Edge& e : engine.graph_.edges()) {
        engine.distribute_edge(e.u, e.v, e.weight);
    }
    for (VertexId v = 0; v < n; ++v) {
        auto values = d.read_vector<Weight>();
        AA_ASSERT(values.size() == n);
        RankState& state = engine.ranks_[engine.ownership_.owner(v)];
        state.store.install_row(state.sg.local_id(v), std::move(values));
    }
    AA_ASSERT_MSG(d.exhausted(), "trailing bytes in checkpoint");
    // The wavefront certificate is not checkpointed: after a restore only
    // the (exact) diagonal is trusted until one full RC step re-establishes
    // the intra-rank base case.
    engine.wavefront_k_ = -1;
    engine.refresh_weight_extremes();
    engine.demand_->resize(n);

    // Pending worklist marks are not checkpointed; re-establish consistency
    // conservatively (one full sweep, like Repartition-S after migration).
    for (RankId r = 0; r < ranks; ++r) {
        RankState& state = engine.ranks_[r];
        for (LocalId l = 0; l < state.sg.num_local(); ++l) {
            state.store.mark_row_for_prop(l);
            if (state.sg.is_boundary(l)) {
                state.store.mark_row_for_send(l);
            }
        }
    }
    engine.cluster_->fast_forward(sim_time);
    return engine;
}

}  // namespace aa
