// AnytimeEngine::migrate_shards — incremental shard migration.
//
// Moving a shard is the surgical counterpart of Repartition-S's wholesale
// rebuild: repoint one logical shard in the (replicated) shard map, ship its
// DV rows and adjacency to the new owner over the wire, and splice the rows
// out of / into the two rank states in place. Everything else — every other
// row, every other rank — keeps its state, marks and worklists untouched.
//
// Protocol (order is load-bearing):
//   1. Drain in-flight boundary messages. Blocks already posted were
//      addressed under the old map; their send-lists are drained at the
//      sender, so a block that never lands is information lost.
//   2. Sources encode each moving shard — per vertex its adjacency, plus the
//      finite DV entries as boundary blocks in the configured wire format —
//      and post it to the destination under MessageTag::ShardMigration.
//      (Encode strictly before surgery: it reads the live rows.)
//   3. Republish the shard map: the engine's copy and every rank's replica
//      repoint the moved shards, priced as one Control broadcast. This must
//      precede the surgery — release() asserts the vertex is no longer owned,
//      adopt_migrated() that it now is.
//   4. Exchange delivers the payloads; then, rank-confined: destinations
//      adopt rows (LocalSubgraph::adopt_migrated + DistanceStore::add_row +
//      install_row in lockstep), sources release them (release +
//      swap_remove_row on the same slot).
//   5. Conservative re-marking plus one local propagate drain restore the
//      consistency invariants (see the mark rationale inline).
//
// Correctness: a moved row carries every contribution it ever relaxed in, so
// unmoved rows owe it nothing that the marks below don't re-send; relaxation
// is monotone, so the conservative extra marks only re-attempt relaxations
// that cannot change converged values. At quiescence the state is
// bit-identical to a from-scratch engine on the final assignment (pinned by
// the Migrate tests).
#include <algorithm>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "core/engine.hpp"
#include "core/rc.hpp"
#include "runtime/message.hpp"

namespace aa {

void AnytimeEngine::drain_in_flight_updates() {
    if (cluster_->has_pending_messages()) {
        cluster_->exchange();
    }
    // Inboxes can also hold messages delivered by earlier collectives but not
    // yet received (the async path's leftovers) — ingest those too, exactly
    // as the next RC step's phase 3 would have.
    std::vector<double> drain_ops(ranks_.size(), 0);
    run_rank_phase([&](RankId r, std::vector<MetricSpan>&) {
        const auto inbox = cluster_->receive(r);
        if (inbox.empty()) {
            return;
        }
        const double ops = rc_ingest_updates(
            ranks_[r].sg, ranks_[r].store, inbox, config_.wire_format,
            kernel_pool(), kRcIngestParallelGrain, rc_ingest_window_bytes_);
        cluster_->charge_compute(r, ops);
        drain_ops[r] = ops;
    });
    for (const double ops : drain_ops) {
        report_.dynamic_ops += ops;
    }
}

void AnytimeEngine::migrate_shards(std::span<const ShardMove> moves) {
    AA_ASSERT_MSG(initialized_, "initialize() must run before migration");
    const auto num_ranks = static_cast<RankId>(ranks_.size());

    // Validate sequentially against a scratch map: unknown shards, stale
    // `from` ranks, self-moves and repeated shards are skipped as no-ops.
    std::vector<ShardMove> applied;
    {
        std::vector<RankId> map = ownership_.shard_map();
        std::vector<std::uint8_t> seen(map.size(), 0);
        for (const ShardMove& m : moves) {
            if (m.shard >= map.size() || m.to >= num_ranks ||
                seen[m.shard] != 0 || map[m.shard] != m.from ||
                m.from == m.to) {
                continue;
            }
            seen[m.shard] = 1;
            map[m.shard] = m.to;
            applied.push_back(m);
        }
    }
    if (applied.empty()) {
        return;
    }

    const bool mx = metrics_->enabled();
    const auto migrate_span =
        mx ? metrics_->span_open("migrate", -1,
                                 static_cast<std::int64_t>(rc_steps_),
                                 sim_seconds())
           : MetricsRegistry::kNullHandle;
    double dynamic_ops = 0;
    const auto n = static_cast<double>(graph_.num_vertices());

    // ---- 1. Land every in-flight block under the old map. ----
    drain_in_flight_updates();

    // ---- 2. Snapshot each moving shard's vertex set (old map). ----
    struct PlannedMove {
        ShardMove move;
        std::vector<VertexId> vertices;
    };
    std::vector<PlannedMove> planned;
    planned.reserve(applied.size());
    std::size_t moved_rows = 0;
    for (const ShardMove& m : applied) {
        planned.push_back({m, ownership_.shard_vertices(m.shard)});
        moved_rows += planned.back().vertices.size();
    }

    // ---- 3. Sources encode & post the moving rows. ----
    for (const PlannedMove& pm : planned) {
        if (pm.vertices.empty()) {
            continue;  // metadata-only repoint, nothing on the wire
        }
        RankState& src = ranks_[pm.move.from];
        Serializer out;
        out.write(pm.move.shard);
        out.write(static_cast<std::uint64_t>(pm.vertices.size()));
        std::vector<BoundaryBlock> blocks;
        blocks.reserve(pm.vertices.size());
        std::size_t entries = 0;
        for (const VertexId v : pm.vertices) {
            const LocalId l = src.sg.local_id(v);
            out.write(v);
            out.write_span(src.sg.neighbors(l));
            blocks.push_back({v, src.store.finite_entries(l)});
            entries += blocks.back().entries.size();
        }
        // Pad so the block region starts 8-aligned within the payload — the
        // same offsets the encoder assumed, so v2 distance runs stay aligned.
        out.pad_to(8);
        out.write_bytes(encode_boundary_blocks(blocks, config_.wire_format));
        // Post-kernel accounting: one op per serialized entry, one per row.
        const double ops =
            static_cast<double>(entries) + static_cast<double>(pm.vertices.size());
        cluster_->charge_compute(pm.move.from, ops);
        dynamic_ops += ops;
        cluster_->send(pm.move.from, pm.move.to, MessageTag::ShardMigration,
                       out.take(), entries);
    }

    // ---- 4. Republish the shard map before any surgery. ----
    {
        // Price the publish as one small control broadcast (shard, from, to
        // per move); the map repointing itself is O(moves) on each rank.
        Serializer control;
        for (const PlannedMove& pm : planned) {
            control.write(pm.move.shard);
            control.write(pm.move.from);
            control.write(pm.move.to);
        }
        cluster_->broadcast(0, MessageTag::Control, control.take());
    }
    for (const PlannedMove& pm : planned) {
        ownership_.set_shard_rank(pm.move.shard, pm.move.to);
        for (RankId r = 0; r < num_ranks; ++r) {
            ranks_[r].sg.set_shard_rank(pm.move.shard, pm.move.to);
        }
    }

    // ---- 5. Deliver the payloads. ----
    cluster_->exchange();

    // ---- 6. Surgery + conservative re-marking, rank-confined. ----
    std::vector<double> rank_ops(num_ranks, 0);
    run_rank_phase([&, this](RankId r, std::vector<MetricSpan>&) {
        RankState& state = ranks_[r];
        double ops = 0;

        // Mark lists are collected as *global* ids and resolved after the
        // surgery: release() renumbers local ids under the swaps.
        std::vector<VertexId> arrived;           // adopted rows
        std::vector<VertexId> arrived_neighbors; // their still-local neighbors
        std::vector<VertexId> left_behind;       // local neighbors of departures

        // Departures' left-behind neighbors, read before the rows go.
        for (const PlannedMove& pm : planned) {
            if (pm.move.from != r) {
                continue;
            }
            for (const VertexId v : pm.vertices) {
                for (const Neighbor& nb : state.sg.neighbors(state.sg.local_id(v))) {
                    if (state.sg.owns(nb.to)) {  // stays here (new map)
                        left_behind.push_back(nb.to);
                    }
                }
            }
        }

        // 6a. Adopt arrivals first: a departure's left-behind bookkeeping may
        // reference a vertex arriving in this very batch.
        for (const Message& message : cluster_->receive(r)) {
            if (message.tag != MessageTag::ShardMigration) {
                continue;  // e.g. the Control publish copy — consumed here
            }
            const auto payload = message.bytes();
            Deserializer in(payload);
            (void)in.read<ShardId>();
            const auto nverts = in.read<std::uint64_t>();
            std::vector<std::pair<VertexId, std::vector<Neighbor>>> rows;
            rows.reserve(nverts);
            for (std::uint64_t i = 0; i < nverts; ++i) {
                const auto v = in.read<VertexId>();
                rows.emplace_back(v, in.read_vector<Neighbor>());
            }
            const std::size_t header = payload.size() - in.remaining();
            const std::size_t aligned = (header + 7) & ~std::size_t{7};
            const auto blocks = decode_boundary_blocks(payload.subspan(aligned),
                                                       config_.wire_format);
            AA_ASSERT_MSG(blocks.size() == rows.size(),
                          "migration payload row/block mismatch");
            for (std::size_t i = 0; i < rows.size(); ++i) {
                const VertexId v = rows[i].first;
                AA_ASSERT(blocks[i].vertex == v);
                const LocalId local = state.sg.adopt_migrated(v, rows[i].second);
                const LocalId row = state.store.add_row(v);
                AA_ASSERT_MSG(row == local, "sg/store slots diverged");
                std::vector<Weight> values(state.store.num_columns(), kInfinity);
                for (const DvEntry& e : blocks[i].entries) {
                    values[e.column] = e.distance;
                }
                values[v] = 0;
                state.store.install_row(local, std::move(values));
                // Ingest-style accounting: one op per installed entry + row.
                ops += static_cast<double>(blocks[i].entries.size()) + 1;
                arrived.push_back(v);
                for (const auto& nb : rows[i].second) {
                    if (state.sg.owns(nb.to)) {
                        arrived_neighbors.push_back(nb.to);
                    }
                }
            }
        }

        // 6b. Release departures, mirroring each swap in the store.
        for (const PlannedMove& pm : planned) {
            if (pm.move.from != r) {
                continue;
            }
            for (const VertexId v : pm.vertices) {
                const LocalId slot = state.sg.release(v);
                (void)state.store.swap_remove_row(slot);
                ops += 1;
            }
        }

        // 6c. Conservative marks (sorted + deduped: deterministic order, one
        // full-row mark each). Rationale:
        //   * arrived rows must propagate into their new co-located neighbors
        //     and announce themselves to their (new) neighboring ranks;
        //   * an arrived row's local neighbors may hold changed entries still
        //     marked for *send* to the old owner — that edge just became
        //     internal, so only a prop sweep reaches the arrival now;
        //   * a departure's left-behind neighbors may hold changed entries
        //     still marked for *prop* toward the departed row — that edge
        //     just became a cut edge, so only a (full) send reaches it now.
        const auto dedupe = [](std::vector<VertexId>& ids) {
            std::sort(ids.begin(), ids.end());
            ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
        };
        dedupe(arrived);
        dedupe(arrived_neighbors);
        dedupe(left_behind);
        for (const VertexId g : arrived) {
            const LocalId l = state.sg.local_id(g);
            state.store.mark_row_for_prop(l);
            ops += n;
            if (state.sg.is_boundary(l)) {
                state.store.mark_row_for_send(l);
                ops += n;
            }
        }
        for (const VertexId g : arrived_neighbors) {
            state.store.mark_row_for_prop(state.sg.local_id(g));
            ops += n;
        }
        for (const VertexId g : left_behind) {
            state.store.mark_row_for_send(state.sg.local_id(g));
            ops += n;
        }

        // 6d. Drain the local sweep now so the first post-migration RC step
        // already posts locally consistent boundary DVs.
        ops += rc_propagate_local(state.sg, state.store, kernel_pool());
        cluster_->charge_compute(r, ops);
        rank_ops[r] = ops;
    });
    for (RankId r = 0; r < num_ranks; ++r) {
        dynamic_ops += rank_ops[r];
    }
    cluster_->barrier();

    report_.shard_migrations += applied.size();
    report_.migrated_rows += moved_rows;
    report_.dynamic_ops += dynamic_ops;
    // The move reshuffles load attribution; let the EWMA re-learn before the
    // planner proposes another move.
    planner_.reset();
    note_structural_change();
    if (mx) {
        metrics_->span_attr(migrate_span, "moves",
                            std::to_string(applied.size()));
        metrics_->span_attr(migrate_span, "rows", std::to_string(moved_rows));
        metrics_->span_add(migrate_span, dynamic_ops);
        metrics_->span_close(migrate_span, sim_seconds());
    }
}

}  // namespace aa
