// Anytime solution quality: how close the current (interruptible) partial
// results are to the exact answer. Distances in the store are always upper
// bounds, so quality improves monotonically across RC steps — the paper's
// "monotonically non-decreasing" anytime property, which these metrics make
// measurable (and testable).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace aa {

struct QualityMetrics {
    /// Fraction of matrix entries equal to the exact value (infinite entries
    /// match infinite exact values).
    double frac_exact{0};
    /// Fraction of entries where the exact distance is finite but the
    /// current estimate is still unknown (infinity).
    double frac_unknown{0};
    /// Mean / max overestimate over entries where both are finite.
    double mean_excess{0};
    double max_excess{0};
    /// Mean relative error of closeness scores vs exact (over vertices whose
    /// exact closeness is positive).
    double closeness_mean_rel_error{0};
};

/// Compare a (partial) distance matrix against the exact one.
QualityMetrics evaluate_quality(const std::vector<std::vector<Weight>>& approx,
                                const std::vector<std::vector<Weight>>& exact);

/// True if `later` is at least as good as `earlier` in every monotone metric
/// (frac_exact non-decreasing, frac_unknown and mean_excess non-increasing).
bool quality_monotone(const QualityMetrics& earlier, const QualityMetrics& later);

}  // namespace aa
