// Anytime solution quality: how close the current (interruptible) partial
// results are to the exact answer. For growth-only workloads distances in
// the store are always upper bounds, so quality improves monotonically
// across RC steps — the paper's "monotonically non-decreasing" anytime
// property, which these metrics make measurable (and testable).
//
// Fully-dynamic workloads (deletions, weight increases) weaken the contract:
// between a shrinking structural update and requiescence an estimate may be
// *stale* — finite where the new graph disconnects the pair, or below the
// new exact distance — until the invalidation cascade and re-settlement
// catch up. Quality is then monotone only *between* structural updates; the
// QualityContract below selects whether staleness asserts (GrowthOnly, the
// historical behaviour) or is counted (FullyDynamic).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace aa {

/// Which workload invariants evaluate_quality may assume.
enum class QualityContract {
    /// Additive-only history: estimates are upper bounds and never finite
    /// where the exact distance is infinite. Violations are programming
    /// errors and assert (the historical strict behaviour).
    GrowthOnly,
    /// History contains deletions / weight increases: staleness is expected
    /// mid-settle and is counted in QualityMetrics::stale_finite /
    /// stale_low instead of asserting.
    FullyDynamic,
};

struct QualityMetrics {
    /// Fraction of matrix entries equal to the exact value (infinite entries
    /// match infinite exact values).
    double frac_exact{0};
    /// Fraction of entries where the exact distance is finite but the
    /// current estimate is still unknown (infinity).
    double frac_unknown{0};
    /// Mean / max overestimate over entries where both are finite.
    double mean_excess{0};
    double max_excess{0};
    /// Mean relative error of closeness scores vs exact (over vertices whose
    /// exact closeness is positive).
    double closeness_mean_rel_error{0};
    /// FullyDynamic only (always 0 under GrowthOnly, where either condition
    /// asserts instead): entries finite in the estimate but infinite in the
    /// exact matrix (reachability not yet invalidated), and finite entries
    /// strictly below the exact distance (stale paths through removed or
    /// raised edges). Neither kind counts toward frac_exact.
    std::size_t stale_finite{0};
    std::size_t stale_low{0};
};

/// Compare a (partial) distance matrix against the exact one under the given
/// workload contract (strict GrowthOnly by default).
QualityMetrics evaluate_quality(const std::vector<std::vector<Weight>>& approx,
                                const std::vector<std::vector<Weight>>& exact,
                                QualityContract contract = QualityContract::GrowthOnly);

/// True if `later` is at least as good as `earlier` in every monotone metric
/// (frac_exact non-decreasing, frac_unknown non-increasing). For
/// fully-dynamic workloads this holds between consecutive measurements *of
/// the same graph* — i.e. between structural updates — not across them.
bool quality_monotone(const QualityMetrics& earlier, const QualityMetrics& later);

}  // namespace aa
