// Engine-level telemetry exporters: render one AnytimeEngine's run as the
// standard per-step, per-rank timeline block that the figure/ablation benches
// embed in their JSON output and that `scenario_runner metrics` /
// `temporal_replay --timeline` dump standalone.
//
// Schema (`aa.timeline.v1`, documented in EXPERIMENTS.md):
//   {
//     "schema": "aa.timeline.v1",
//     "sim_seconds": <simulated clock at export>,
//     "rc_steps": <completed RC steps>,
//     "num_ranks": P,
//     "per_rank": [ {rank, ops, compute_seconds, messages_sent, bytes_sent,
//                    messages_received, bytes_received}, ... ],
//     "steps":    [ {step, exchange_seconds, messages, bytes, ops,
//                    sim_seconds_after}, ... ],           // RcStepStats
//     "metrics":  { enabled, spans, counters, histograms } // MetricsRegistry
//   }
//
// The `metrics.spans` stream carries the phase timeline proper: "dd",
// per-rank "ia", per-step/per-rank "rc.post" / "rc.exchange[.rank]" /
// "rc.ingest" / "rc.propagate", and "add" events (with strategy,
// moved-vertex count and new-cut-edge attributes) with their nested
// sub-phases. All times are simulated seconds. The CSV exporter emits just
// the span stream (common/metrics.hpp's lossless span CSV).
#pragma once

#include <string>

namespace aa {

class AnytimeEngine;

/// Full timeline block. `indent` = leading indentation (spaces) of every
/// line, so benches can nest the block inside a larger JSON object.
std::string telemetry_json(const AnytimeEngine& engine, int indent = 0);

/// The span stream as CSV (see spans_to_csv).
std::string telemetry_csv(const AnytimeEngine& engine);

}  // namespace aa
