// Fully-dynamic shrink updates — see the phase overview in edge_delete.hpp.
//
// Structure mirrors edge_add.cpp: a driver-side orchestration that charges
// every per-rank scan to the simulated clock, ships real serialized messages
// between rank address spaces, and hands the re-settlement to the unchanged
// RC worklists. The cascade itself runs rank-by-rank on the driver thread
// (like the collectives), so it is deterministic and backend-independent;
// only the final propagate sweep runs as a backend phase, exactly like
// edge addition's step 3.
#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/assert.hpp"
#include "core/edge_delete.hpp"
#include "core/engine.hpp"
#include "core/rc.hpp"
#include "runtime/message.hpp"

namespace aa {

namespace {

/// One edge whose old weight no longer supports any estimate: a removal, or
/// a reweight whose weight went up (support at w_old is gone either way).
struct AffectedEdge {
    VertexId u;
    VertexId v;
    Weight w_old;
};

/// Slack on the suspect tests (seed and dependant inequalities). Estimates
/// written by relax() are right-associated sums, for which the inequality is
/// floating-point exact; IA's Dijkstra accumulates left-associated sums, so
/// with non-dyadic weights a routed estimate can sit an ulp below
/// w_old + d(v, t). Widening the test only ever *over*-invalidates, which
/// re-settlement absorbs; with uniform (or dyadic) weights every quantity is
/// exact and the slack admits no extra suspect beyond exact ties.
constexpr Weight kSuspectSlack = 1e-9;

}  // namespace

ShrinkReport AnytimeEngine::apply_deletion(const ShrinkBatch& batch) {
    AA_ASSERT_MSG(initialized_, "initialize() must run before dynamic updates");
    const std::size_t n = graph_.num_vertices();
    const auto num_ranks = cluster_->num_ranks();
    ShrinkReport rep;
    double dynamic_ops = 0;
    const bool mx = metrics_->enabled();
    auto span = MetricsRegistry::kNullHandle;
    if (mx) {
        span = metrics_->span_open("delete", -1,
                                   static_cast<std::int64_t>(rc_steps_),
                                   sim_seconds());
    }

    // ---- 1. Normalize the batch and apply the shrinking structural changes.
    // Vertex deletions expand to their incident edge sets; duplicates (and
    // edges not present, e.g. already deleted) are skipped. Weight decreases
    // are split off and deferred to after the cascade: their broadcast ships
    // finite row values, which must not happen while stale-low entries exist.
    const auto canon = [](VertexId a, VertexId b) {
        return std::make_pair(std::min(a, b), std::max(a, b));
    };
    std::set<std::pair<VertexId, VertexId>> seen;
    std::vector<AffectedEdge> affected;
    std::vector<Edge> decreases;
    std::vector<Edge> removals;
    for (const VertexId v : batch.vertices) {
        AA_ASSERT(v < n);
        for (const Neighbor& nb : graph_.neighbors(v)) {
            removals.push_back({v, nb.to, nb.weight});
        }
    }
    for (const Edge& e : batch.deletions) {
        removals.push_back(e);
    }
    for (const Edge& e : removals) {
        AA_ASSERT(e.u < n && e.v < n && e.u != e.v);
        const auto key = canon(e.u, e.v);
        if (!seen.insert(key).second) {
            continue;  // duplicate within the batch
        }
        const Weight w_old = graph_.remove_edge(e.u, e.v);
        if (!(w_old < kInfinity)) {
            continue;  // not present (e.g. already deleted): a no-op
        }
        ranks_[ownership_.owner(e.u)].sg.remove_local_edge(e.u, e.v);
        if (ownership_.owner(e.v) != ownership_.owner(e.u)) {
            ranks_[ownership_.owner(e.v)].sg.remove_local_edge(e.u, e.v);
        }
        affected.push_back({key.first, key.second, w_old});
        ++rep.edges_removed;
    }
    for (const Edge& e : batch.reweights) {
        AA_ASSERT(e.u < n && e.v < n && e.u != e.v);
        AA_ASSERT_MSG(e.weight > 0, "edge weights must be positive");
        const auto key = canon(e.u, e.v);
        if (!seen.insert(key).second) {
            continue;  // edge already deleted/reweighted by this batch
        }
        const Weight w_old = graph_.edge_weight(e.u, e.v);
        if (!(w_old < kInfinity) || e.weight == w_old) {
            continue;  // absent or unchanged: a no-op
        }
        if (e.weight < w_old) {
            decreases.push_back({key.first, key.second, e.weight});
            continue;
        }
        graph_.set_edge_weight(e.u, e.v, e.weight);
        ranks_[ownership_.owner(e.u)].sg.update_edge_weight(e.u, e.v, e.weight);
        if (ownership_.owner(e.v) != ownership_.owner(e.u)) {
            ranks_[ownership_.owner(e.v)].sg.update_edge_weight(e.u, e.v, e.weight);
        }
        affected.push_back({key.first, key.second, w_old});
        ++rep.weight_increases;
    }

    // ---- 2. Endpoint-row exchange: for every affected cross-rank edge each
    // owner needs the *other* endpoint's current row for the seed scan. The
    // structural change cannot have moved any distance value, so the rows
    // read now are exactly the pre-change estimates.
    std::set<std::pair<VertexId, RankId>> row_requests;  // (vertex, needed by)
    for (const AffectedEdge& a : affected) {
        const RankId ru = ownership_.owner(a.u);
        const RankId rv = ownership_.owner(a.v);
        if (ru != rv) {
            row_requests.insert({a.v, ru});
            row_requests.insert({a.u, rv});
        }
    }
    for (const auto& [vtx, dest] : row_requests) {
        const RankId src = ownership_.owner(vtx);
        RankState& st = ranks_[src];
        const auto entries = st.store.finite_entries(st.sg.local_id(vtx));
        cluster_->charge_compute(src, static_cast<double>(entries.size()));
        dynamic_ops += static_cast<double>(entries.size());
        Serializer out;
        out.write(vtx);
        out.write_span(std::span<const DvEntry>(entries));
        cluster_->send(src, dest, MessageTag::ShrinkEndpointRow, out.take(),
                       entries.size());
    }
    std::vector<std::unordered_map<VertexId, std::vector<Weight>>> peer_rows(
        num_ranks);
    if (!row_requests.empty()) {
        cluster_->exchange();
        for (RankId r = 0; r < num_ranks; ++r) {
            for (const Message& m : cluster_->receive(r)) {
                AA_ASSERT(m.tag == MessageTag::ShrinkEndpointRow);
                Deserializer in(m.bytes());
                const auto vtx = in.read<VertexId>();
                const auto entries = in.read_vector<DvEntry>();
                auto& dense = peer_rows[r][vtx];
                dense.assign(n, kInfinity);
                for (const DvEntry& e : entries) {
                    dense[e.column] = e.distance;
                }
                cluster_->charge_compute(r, static_cast<double>(entries.size()));
                dynamic_ops += static_cast<double>(entries.size());
            }
        }
    }

    // ---- 3. Seed scan. d(u, t) is suspect iff d(u, t) >= w_old + d(v, t):
    // any estimate that was ever written through the edge satisfies this
    // exactly (it was written as that very sum while d(v, t) was no smaller
    // than it is now, and floating-point addition is monotone), so no stale
    // entry escapes. Entries that merely tie with an alternative support
    // survive the support check below.
    std::vector<std::deque<std::pair<LocalId, VertexId>>> queue(num_ranks);
    std::vector<std::set<VertexId>> rank_cols(num_ranks);
    const auto seed_endpoint = [&](VertexId u, VertexId v, Weight w_old) {
        const RankId ru = ownership_.owner(u);
        RankState& st = ranks_[ru];
        const LocalId lu = st.sg.local_id(u);
        const auto row_u = st.store.row(lu);
        std::span<const Weight> row_v;
        if (ownership_.owner(v) == ru) {
            row_v = st.store.row(st.sg.local_id(v));
        } else {
            row_v = peer_rows[ru].at(v);
        }
        for (VertexId t = 0; t < n; ++t) {
            if (t == u) {
                continue;
            }
            const Weight du = row_u[t];
            const Weight dv = row_v[t];
            if (du < kInfinity && dv < kInfinity &&
                du >= w_old + dv - kSuspectSlack) {
                queue[ru].push_back({lu, t});
                rank_cols[ru].insert(t);
                ++rep.seed_suspects;
            }
        }
        cluster_->charge_compute(ru, static_cast<double>(n));
        dynamic_ops += static_cast<double>(n);
    };
    for (const AffectedEdge& a : affected) {
        seed_endpoint(a.u, a.v, a.w_old);
        seed_endpoint(a.v, a.u, a.w_old);
    }

    if (rep.seed_suspects > 0) {
        // ---- 4. Union of affected columns: every suspect ever enqueued
        // keeps the column it was seeded with, so the union of the per-rank
        // seed columns bounds everything the cascade can touch. Gathered at
        // rank 0 and broadcast back (the per-rank external views below are
        // restricted to these columns).
        std::set<VertexId> union_cols;
        for (RankId r = 0; r < num_ranks; ++r) {
            if (r != 0 && !rank_cols[r].empty()) {
                const std::vector<VertexId> cols(rank_cols[r].begin(),
                                                 rank_cols[r].end());
                Serializer out;
                out.write_span(std::span<const VertexId>(cols));
                cluster_->send(r, 0, MessageTag::ShrinkAffectedColumns,
                               out.take());
            }
            union_cols.insert(rank_cols[r].begin(), rank_cols[r].end());
        }
        if (num_ranks > 1) {
            cluster_->exchange();
            for (const Message& m : cluster_->receive(0)) {
                AA_ASSERT(m.tag == MessageTag::ShrinkAffectedColumns);
                cluster_->charge_compute(
                    0, static_cast<double>(m.bytes().size()) / sizeof(VertexId));
            }
        }
        const std::vector<VertexId> cols_t(union_cols.begin(), union_cols.end());
        dynamic_ops += static_cast<double>(cols_t.size());
        std::vector<std::uint32_t> t_index(n, kInvalidVertex);
        for (std::uint32_t i = 0; i < cols_t.size(); ++i) {
            t_index[cols_t[i]] = i;
        }
        if (num_ranks > 1) {
            Serializer out;
            out.write_span(std::span<const VertexId>(cols_t));
            cluster_->broadcast(0, MessageTag::ShrinkAffectedColumns, out.take());
            for (RankId r = 1; r < num_ranks; ++r) {
                (void)cluster_->receive(r);
            }
        }

        // ---- 5. External views: each rank needs the affected columns of
        // every external boundary vertex to run support checks across cut
        // edges. Boundary rows restricted to the affected columns travel as
        // regular boundary blocks in the configured wire format; a vertex
        // with no finite affected column is simply absent (reads default to
        // infinity, which matches its row).
        std::vector<std::unordered_map<VertexId, std::vector<Weight>>> views(
            num_ranks);
        for (RankId p = 0; p < num_ranks; ++p) {
            RankState& st = ranks_[p];
            std::vector<std::vector<BoundaryBlock>> per_dest(num_ranks);
            std::vector<std::size_t> dest_entries(num_ranks, 0);
            double ops = 0;
            for (LocalId l = 0; l < st.sg.num_local(); ++l) {
                const auto destinations = st.sg.neighbor_ranks(l);
                if (destinations.empty()) {
                    continue;
                }
                BoundaryBlock block;
                block.vertex = st.sg.global_id(l);
                const auto row = st.store.row(l);
                for (const VertexId t : cols_t) {
                    if (row[t] < kInfinity) {
                        block.entries.push_back({t, row[t]});
                    }
                }
                ops += static_cast<double>(cols_t.size());
                if (block.entries.empty()) {
                    continue;
                }
                for (const RankId dest : destinations) {
                    dest_entries[dest] += block.entries.size();
                    per_dest[dest].push_back(block);
                }
            }
            for (RankId dest = 0; dest < num_ranks; ++dest) {
                if (per_dest[dest].empty()) {
                    continue;
                }
                ops += static_cast<double>(dest_entries[dest]);
                cluster_->send(p, dest, MessageTag::ShrinkBoundaryView,
                               encode_boundary_blocks(per_dest[dest],
                                                      config_.wire_format),
                               dest_entries[dest]);
            }
            cluster_->charge_compute(p, ops);
            dynamic_ops += ops;
        }
        if (cluster_->has_pending_messages()) {
            cluster_->exchange();
        }
        for (RankId p = 0; p < num_ranks; ++p) {
            double ops = 0;
            for (const Message& m : cluster_->receive(p)) {
                AA_ASSERT(m.tag == MessageTag::ShrinkBoundaryView);
                for (const BoundaryBlock& block :
                     decode_boundary_blocks(m.bytes(), config_.wire_format)) {
                    auto& view = views[p][block.vertex];
                    view.assign(cols_t.size(), kInfinity);
                    for (const DvEntry& e : block.entries) {
                        AA_ASSERT(t_index[e.column] != kInvalidVertex);
                        view[t_index[e.column]] = e.distance;
                    }
                    ops += static_cast<double>(block.entries.size());
                }
            }
            cluster_->charge_compute(p, ops);
            dynamic_ops += ops;
        }

        // ---- 6. Invalidation cascade to fixpoint. Each round drains every
        // rank's suspect queue (support check against local rows and the
        // external views; unsupported entries are invalidated, their local
        // dependants re-suspected and their surviving local neighbours
        // re-seeded for propagation) and then exchanges the raises, which
        // re-suspect the dependants across cut edges and re-seed surviving
        // boundary rows for resending. A raise carries the pre-raise value:
        // the dependant test d(y, t) >= w(y, x) + pre is exactly the seed
        // inequality one hop out, so under-invalidation cannot occur; an
        // entry is invalidated at most once, so the cascade terminates.
        while (true) {
            bool any_work = false;
            for (RankId p = 0; p < num_ranks; ++p) {
                if (!queue[p].empty()) {
                    any_work = true;
                    break;
                }
            }
            if (!any_work) {
                break;
            }
            ++rep.cascade_rounds;
            for (RankId p = 0; p < num_ranks; ++p) {
                RankState& st = ranks_[p];
                std::map<LocalId, std::vector<DvEntry>> raised;
                double ops = 0;
                auto& q = queue[p];
                while (!q.empty()) {
                    const auto [l, t] = q.front();
                    q.pop_front();
                    const Weight cur = st.store.at(l, t);
                    if (!(cur < kInfinity) || st.sg.global_id(l) == t) {
                        continue;  // already invalidated (or the diagonal)
                    }
                    bool supported = false;
                    for (const Neighbor& nb : st.sg.neighbors(l)) {
                        ops += 1;
                        Weight dn = kInfinity;
                        if (st.sg.owns(nb.to)) {
                            dn = st.store.at(st.sg.local_id(nb.to), t);
                        } else {
                            const auto it = views[p].find(nb.to);
                            if (it != views[p].end()) {
                                dn = it->second[t_index[t]];
                            }
                        }
                        if (dn < kInfinity && cur >= nb.weight + dn) {
                            supported = true;
                            break;
                        }
                    }
                    if (supported) {
                        continue;
                    }
                    st.store.mark_invalidated(l, t);
                    ++rep.invalidated_entries;
                    for (const Neighbor& nb : st.sg.neighbors(l)) {
                        ops += 1;
                        if (!st.sg.owns(nb.to)) {
                            continue;  // handled by the raise below
                        }
                        const LocalId ln = st.sg.local_id(nb.to);
                        const Weight dn = st.store.at(ln, t);
                        if (dn < kInfinity) {
                            // The surviving neighbour owes the invalidated
                            // entry a relaxation once re-settlement runs.
                            st.store.mark_for_prop(ln, t);
                            if (dn >= nb.weight + cur - kSuspectSlack) {
                                q.push_back({ln, t});
                            }
                        }
                    }
                    raised[l].push_back({t, cur});
                }
                // Ship the raises: one block per invalidated row, columns
                // ascending (map order per row; per-column at most one raise),
                // replicated to every rank sharing a cut edge with the row.
                std::vector<std::vector<BoundaryBlock>> per_dest(num_ranks);
                std::vector<std::size_t> dest_entries(num_ranks, 0);
                for (auto& [l, entries] : raised) {
                    std::sort(entries.begin(), entries.end(),
                              [](const DvEntry& a, const DvEntry& b) {
                                  return a.column < b.column;
                              });
                    const auto destinations = st.sg.neighbor_ranks(l);
                    if (destinations.empty()) {
                        continue;
                    }
                    BoundaryBlock block;
                    block.vertex = st.sg.global_id(l);
                    block.entries = std::move(entries);
                    ops += static_cast<double>(block.entries.size());
                    for (const RankId dest : destinations) {
                        dest_entries[dest] += block.entries.size();
                        per_dest[dest].push_back(block);
                    }
                }
                for (RankId dest = 0; dest < num_ranks; ++dest) {
                    if (per_dest[dest].empty()) {
                        continue;
                    }
                    cluster_->send(p, dest, MessageTag::ShrinkRaise,
                                   encode_boundary_blocks(per_dest[dest],
                                                          config_.wire_format),
                                   dest_entries[dest]);
                }
                cluster_->charge_compute(p, ops);
                dynamic_ops += ops;
            }
            if (!cluster_->has_pending_messages()) {
                continue;  // no raises in flight; the outer check ends the cascade
            }
            cluster_->exchange();
            for (RankId p = 0; p < num_ranks; ++p) {
                RankState& st = ranks_[p];
                double ops = 0;
                for (const Message& m : cluster_->receive(p)) {
                    AA_ASSERT(m.tag == MessageTag::ShrinkRaise);
                    for (const BoundaryBlock& block :
                         decode_boundary_blocks(m.bytes(), config_.wire_format)) {
                        const auto vit = views[p].find(block.vertex);
                        for (const DvEntry& e : block.entries) {
                            AA_ASSERT(t_index[e.column] != kInvalidVertex);
                            if (vit != views[p].end()) {
                                vit->second[t_index[e.column]] = kInfinity;
                            }
                            for (const auto& [ly, w] :
                                 st.sg.external_neighbors(block.vertex)) {
                                ops += 1;
                                const Weight dy = st.store.at(ly, e.column);
                                if (dy < kInfinity) {
                                    // The surviving endpoint owes the
                                    // invalidating rank a resend.
                                    st.store.mark_for_send(ly, e.column);
                                    if (dy >= w + e.distance - kSuspectSlack) {
                                        queue[p].push_back({ly, e.column});
                                    }
                                }
                            }
                        }
                    }
                }
                cluster_->charge_compute(p, ops);
                dynamic_ops += ops;
            }
        }
    }

    // ---- 7. Deferred weight decreases: monotone, so the growth-path
    // broadcast is sound now that no stale-low entry survives.
    for (const Edge& e : decreases) {
        graph_.set_edge_weight(e.u, e.v, e.weight);
        ranks_[ownership_.owner(e.u)].sg.update_edge_weight(e.u, e.v, e.weight);
        if (ownership_.owner(e.v) != ownership_.owner(e.u)) {
            ranks_[ownership_.owner(e.v)].sg.update_edge_weight(e.u, e.v, e.weight);
        }
        dynamic_ops += broadcast_edge_update(e.u, e.v, e.weight);
        dynamic_ops += broadcast_edge_update(e.v, e.u, e.weight);
        ++rep.weight_decreases;
    }

    // ---- 8. Local re-settlement to fixpoint (edge addition's step 3); the
    // cross-rank part rides the send worklists of the caller's next RC steps.
    std::vector<double> prop_ops(num_ranks, 0);
    run_rank_phase([&](RankId r, std::vector<MetricSpan>&) {
        const double ops =
            rc_propagate_local(ranks_[r].sg, ranks_[r].store, kernel_pool());
        cluster_->charge_compute(r, ops);
        prop_ops[r] = ops;
    });
    for (RankId r = 0; r < num_ranks; ++r) {
        dynamic_ops += prop_ops[r];
    }
    cluster_->barrier();

    report_.dynamic_ops += dynamic_ops;
    report_.edge_deletions += rep.edges_removed;
    report_.weight_updates += rep.weight_increases + rep.weight_decreases;
    report_.invalidated_entries += rep.invalidated_entries;
    report_.sim_seconds = sim_seconds();
    if (mx) {
        metrics_->span_attr(span, "edges_removed",
                            std::to_string(rep.edges_removed));
        metrics_->span_attr(span, "reweights",
                            std::to_string(rep.weight_increases +
                                           rep.weight_decreases));
        metrics_->span_attr(span, "invalidated",
                            std::to_string(rep.invalidated_entries));
        metrics_->span_attr(span, "cascade_rounds",
                            std::to_string(rep.cascade_rounds));
        metrics_->span_add(span, dynamic_ops);
        metrics_->span_close(span, sim_seconds());
    }
    note_structural_change();
    fire_boundary_hook();
    return rep;
}

ShrinkReport AnytimeEngine::update_edge_weights(std::span<const Edge> updates) {
    ShrinkBatch batch;
    batch.reweights.assign(updates.begin(), updates.end());
    return apply_deletion(batch);
}

}  // namespace aa
