// AnytimeEngine::repartition_add — the Repartition-S strategy (paper
// §IV.C.1.b).
//
// Integrate the batch structurally, repartition the *whole* grown graph with
// the multilevel partitioner, migrate existing DV rows to their new owners
// (reusing the anytime partial results — this is what separates
// Repartition-S from a restart), seed the batch edges through the anywhere
// broadcasts, and let the subsequent RC steps converge the rest.
#include <algorithm>
#include <unordered_map>

#include "common/assert.hpp"
#include "core/engine.hpp"
#include "core/rc.hpp"
#include "partition/refine.hpp"
#include "runtime/message.hpp"

namespace aa {

namespace {

/// Wire format for migrated rows: repeated [global vertex][row values].
void encode_migrated_row(Serializer& out, VertexId vertex,
                         std::span<const Weight> values) {
    out.write(vertex);
    out.write_span(values);
}

}  // namespace

void AnytimeEngine::repartition_add(const GrowthBatch& batch) {
    AA_ASSERT_MSG(initialized_, "initialize() must run before dynamic updates");
    AA_ASSERT_MSG(batch.base_id == graph_.num_vertices(),
                  "batch does not follow the current vertex space");

    const std::size_t old_n = graph_.num_vertices();
    const std::size_t new_n = old_n + batch.num_new;
    const auto num_ranks = cluster_->num_ranks();
    double dynamic_ops = 0;
    const bool mx = metrics_->enabled();
    const auto span_step = static_cast<std::int64_t>(rc_steps_);
    const auto open_stage = [&](const char* name) {
        return mx ? metrics_->span_open(name, -1, span_step, sim_seconds())
                  : MetricsRegistry::kNullHandle;
    };
    const auto close_stage = [&](MetricsRegistry::Handle h) {
        if (mx) {
            metrics_->span_close(h, sim_seconds());
        }
    };

    // ---- 1. Integrate the batch into the global structure. ----
    graph_.add_vertices(batch.num_new);
    for (const Edge& e : batch.edges) {
        graph_.add_edge(e.u, e.v, e.weight);
    }

    // ---- 2. Repartition the grown graph. ----
    const auto partition_span = open_stage("repartition.partition");
    std::vector<RankId> new_owners;
    if (config_.repartition_mode == RepartitionMode::Adaptive) {
        // Adaptive: start from the current assignment, place each new vertex
        // on its max-affinity rank (ties to the lightest), then FM-refine.
        new_owners = ownership_.owners();
        new_owners.resize(new_n, 0);
        std::vector<std::size_t> load(num_ranks, 0);
        for (VertexId v = 0; v < old_n; ++v) {
            ++load[new_owners[v]];
        }
        std::vector<double> affinity(num_ranks, 0);
        for (VertexId v = static_cast<VertexId>(old_n); v < new_n; ++v) {
            std::fill(affinity.begin(), affinity.end(), 0);
            for (const Neighbor& nb : graph_.neighbors(v)) {
                if (nb.to < v) {  // already placed
                    affinity[new_owners[nb.to]] += nb.weight;
                }
            }
            RankId best = 0;
            for (RankId r = 1; r < num_ranks; ++r) {
                if (affinity[r] > affinity[best] ||
                    (affinity[r] == affinity[best] && load[r] < load[best])) {
                    best = r;
                }
            }
            new_owners[v] = best;
            ++load[best];
        }
        Partitioning refined;
        refined.num_parts = num_ranks;
        refined.assignment = std::move(new_owners);
        const CsrGraph snapshot(graph_);
        refine_partition(snapshot, refined, config_.partition.refine);
        new_owners = std::move(refined.assignment);
        // Refinement is a few passes over the edges on each rank.
        const double units = config_.partition_cost_factor *
                             static_cast<double>(new_n + graph_.num_edges());
        for (RankId r = 0; r < num_ranks; ++r) {
            cluster_->charge_compute(r, units / static_cast<double>(num_ranks));
        }
    } else {
        Rng partition_rng = rng_.fork();
        const Partitioning partition = multilevel_partition(
            graph_, num_ranks, partition_rng, config_.partition);
        charge_partition_cost(new_n, graph_.num_edges());
        new_owners = partition.assignment;
    }

    // Part labels from a scratch partition are arbitrary; relabel each new
    // part to the old rank it overlaps most (greedy max-overlap matching) so
    // that unmoved vertices keep their owner and the migration volume is the
    // true repartitioning delta, not a label permutation. (A no-op for the
    // adaptive path, whose labels are already aligned.)
    if (config_.repartition_mode == RepartitionMode::Scratch) {
        std::vector<std::vector<std::size_t>> overlap(
            num_ranks, std::vector<std::size_t>(num_ranks, 0));
        for (VertexId v = 0; v < old_n; ++v) {
            ++overlap[new_owners[v]][ownership_.owner(v)];
        }
        std::vector<RankId> relabel(num_ranks, kInvalidVertex);
        std::vector<bool> rank_taken(num_ranks, false);
        for (std::uint32_t round = 0; round < num_ranks; ++round) {
            std::size_t best = 0;
            std::uint32_t best_part = 0;
            RankId best_rank = 0;
            bool found = false;
            for (std::uint32_t part = 0; part < num_ranks; ++part) {
                if (relabel[part] != kInvalidVertex) {
                    continue;
                }
                for (RankId r = 0; r < num_ranks; ++r) {
                    if (!rank_taken[r] && (!found || overlap[part][r] > best)) {
                        best = overlap[part][r];
                        best_part = part;
                        best_rank = r;
                        found = true;
                    }
                }
            }
            relabel[best_part] = best_rank;
            rank_taken[best_rank] = true;
        }
        for (auto& owner : new_owners) {
            owner = relabel[owner];
        }
        // Relabeling is O(P^2 + n) bookkeeping on each rank.
        for (RankId r = 0; r < num_ranks; ++r) {
            cluster_->charge_compute(
                r, static_cast<double>(num_ranks) * num_ranks + new_n);
        }
    }

    close_stage(partition_span);

    // Which existing vertices actually change owner (drives both migration
    // and the consistency re-marking below).
    std::vector<std::uint8_t> moved(new_n, 0);
    std::size_t moved_existing = 0;
    for (VertexId v = 0; v < old_n; ++v) {
        moved[v] = new_owners[v] != ownership_.owner(v) ? 1 : 0;
        moved_existing += moved[v];
    }
    for (VertexId v = static_cast<VertexId>(old_n); v < new_n; ++v) {
        moved[v] = 1;  // new vertices count as moved everywhere
    }
    last_moved_vertices_ = moved_existing;
    if (mx) {
        metrics_->span_attr(partition_span, "mode",
                            config_.repartition_mode == RepartitionMode::Adaptive
                                ? "adaptive"
                                : "scratch");
        metrics_->span_attr(partition_span, "moved_vertices",
                            std::to_string(moved_existing));
    }

    // ---- 3. Widen every row, then migrate rows whose owner changed. ----
    const auto migrate_span = open_stage("repartition.migrate");
    for (RankId r = 0; r < num_ranks; ++r) {
        const double ops = static_cast<double>(ranks_[r].store.num_rows()) +
                           static_cast<double>(batch.num_new);
        ranks_[r].store.grow_columns(new_n);
        cluster_->charge_compute(r, ops);
        dynamic_ops += ops;
    }

    // Rows this rank keeps (or receives), keyed by global vertex. Rows with
    // pending (unpropagated/unsent) changes lose that dirty state in the
    // rebuild, so they must be re-marked like moved rows.
    std::vector<std::unordered_map<VertexId, std::vector<Weight>>> retained(num_ranks);
    std::vector<std::uint8_t> had_pending(new_n, 0);
    for (RankId r = 0; r < num_ranks; ++r) {
        RankState& state = ranks_[r];
        std::vector<Serializer> outgoing(num_ranks);
        for (LocalId l = 0; l < state.sg.num_local(); ++l) {
            const VertexId g = state.sg.global_id(l);
            const RankId dest = new_owners[g];
            had_pending[g] =
                state.store.has_prop(l) || state.store.has_send(l) ? 1 : 0;
            auto values = state.store.extract_row(l);
            if (dest == r) {
                retained[r].emplace(g, std::move(values));
            } else {
                encode_migrated_row(outgoing[dest], g, values);
                cluster_->charge_compute(r, static_cast<double>(values.size()));
                dynamic_ops += static_cast<double>(values.size());
            }
        }
        for (RankId dest = 0; dest < num_ranks; ++dest) {
            if (dest != r && outgoing[dest].size() > 0) {
                cluster_->send(r, dest, MessageTag::MigratedRows,
                               outgoing[dest].take());
            }
        }
    }
    // The migration uses the same personalized all-to-all as an RC step.
    cluster_->exchange();
    for (RankId r = 0; r < num_ranks; ++r) {
        for (const Message& message : cluster_->receive(r)) {
            if (message.tag != MessageTag::MigratedRows) {
                continue;
            }
            Deserializer in(message.bytes());
            while (!in.exhausted()) {
                const auto vertex = in.read<VertexId>();
                auto values = in.read_vector<Weight>();
                cluster_->charge_compute(r, static_cast<double>(values.size()));
                dynamic_ops += static_cast<double>(values.size());
                retained[r].emplace(vertex, std::move(values));
            }
        }
    }
    close_stage(migrate_span);

    // ---- 4. Rebuild rank state under the new ownership. ----
    const auto rebuild_span = open_stage("repartition.rebuild");
    // A repartition re-deals the logical shards from scratch: the fresh
    // assignment defines the new shard layout (owner resolution is identical
    // for any shards_per_rank, so this does not perturb bit-identity).
    ownership_ = ShardOwnership::from_partition(new_owners, num_ranks,
                                                config_.shards_per_rank);
    planner_.reset();
    for (RankId r = 0; r < num_ranks; ++r) {
        RankState& state = ranks_[r];
        state.sg = LocalSubgraph(r, ownership_);
        state.store = DistanceStore(new_n);
        state.store.set_simd_enabled(config_.rc_simd);
        for (const VertexId v : state.sg.local_vertices()) {
            state.store.add_row(v);
        }
    }
    for (const Edge& e : graph_.edges()) {
        distribute_edge(e.u, e.v, e.weight);
    }

    // Install retained/migrated rows; new vertices keep their near-empty
    // (diagonal-only) rows and are seeded through the edge broadcasts below.
    for (RankId r = 0; r < num_ranks; ++r) {
        RankState& state = ranks_[r];
        for (LocalId l = 0; l < state.sg.num_local(); ++l) {
            const VertexId g = state.sg.global_id(l);
            const auto it = retained[r].find(g);
            if (it != retained[r].end()) {
                state.store.install_row(l, std::move(it->second));
            } else {
                AA_ASSERT_MSG(g >= old_n, "existing vertex lost its row");
            }
        }
    }

    close_stage(rebuild_span);

    // ---- 5. Seed the batch through the anywhere edge broadcasts (the same
    //          primitive as anywhere_add): each batch edge folds the lower
    //          endpoint's row through the cut edges and bridges the endpoint
    //          columns of every local row. A local SSSP from only the new
    //          vertices is NOT sound here: its paths route through old local
    //          vertices whose rows never learn the new columns, leaving
    //          estimates that no owner row witnesses — and the fully-dynamic
    //          deletion cascade (edge_delete.cpp) finds stale entries by
    //          walking exactly those owner-row witnesses. The broadcasts
    //          preserve the invariant; through-partition shortcuts the SSSP
    //          would have found arrive with the next RC exchanges. ----
    const auto seed_span = open_stage("repartition.seed");
    const double ops_before_seed = dynamic_ops;
    for (const Edge& e : batch.edges) {
        const VertexId lo = std::min(e.u, e.v);
        const VertexId hi = std::max(e.u, e.v);
        dynamic_ops += broadcast_edge_update(lo, hi, graph_.edge_weight(lo, hi));
    }
    if (mx) {
        metrics_->span_add(seed_span, dynamic_ops - ops_before_seed);
    }
    close_stage(seed_span);

    // ---- 6. Re-establish consistency marks — but only where the move
    //          actually changed relationships. A row is affected iff it
    //          moved or one of its neighbours moved: only then can it be
    //          newly co-located with rows it has never relaxed against, or
    //          face a neighbouring rank that lacks its DV. Unaffected rows
    //          keep both properties from before the repartition. This (plus
    //          the relabeling above) keeps Repartition-S's fixed cost at the
    //          true repartition delta; what remains is the paper's
    //          "additional RC steps" cost. ----
    const auto remark_span = open_stage("repartition.remark");
    std::vector<double> remark_ops(num_ranks, 0);
    run_rank_phase([&](RankId r, std::vector<MetricSpan>&) {
        // `moved` and `had_pending` are read-only from here, shared across
        // the concurrent rank closures.
        RankState& state = ranks_[r];
        double ops = 0;
        for (LocalId l = 0; l < state.sg.num_local(); ++l) {
            const VertexId g = state.sg.global_id(l);
            bool affected = moved[g] != 0 || had_pending[g] != 0;
            for (const Neighbor& nb : state.sg.neighbors(l)) {
                if (affected) {
                    break;
                }
                affected = moved[nb.to] != 0;
            }
            ops += static_cast<double>(state.sg.neighbors(l).size());
            if (!affected) {
                continue;
            }
            state.store.mark_row_for_prop(l);
            ops += static_cast<double>(new_n);
            if (state.sg.is_boundary(l)) {
                state.store.mark_row_for_send(l);
                ops += static_cast<double>(new_n);
            }
        }
        // Drain the local sweep now so the first post-repartition RC step
        // already sends locally consistent boundary DVs.
        ops += rc_propagate_local(state.sg, state.store, kernel_pool());
        cluster_->charge_compute(r, ops);
        remark_ops[r] = ops;
    });
    for (RankId r = 0; r < num_ranks; ++r) {
        dynamic_ops += remark_ops[r];
    }
    cluster_->barrier();
    close_stage(remark_span);
    report_.dynamic_ops += dynamic_ops;
    note_structural_change();
}

}  // namespace aa
