#include "core/distance_store.hpp"

#include <algorithm>
#include <utility>

namespace aa {

namespace {
/// Required relative improvement; guards against float-noise ping-pong when
/// the same path length is derived via different summation orders.
constexpr Weight kEpsilon = 1e-12;
}  // namespace

LocalId DistanceStore::add_row(VertexId self) {
    AA_ASSERT(self < num_columns_);
    Row row;
    row.self = self;
    row.dist.assign(num_columns_, kInfinity);
    row.dist[self] = 0;
    row.in_prop.assign(num_columns_, 0);
    row.in_send.assign(num_columns_, 0);
    rows_.push_back(std::move(row));
    return static_cast<LocalId>(rows_.size() - 1);
}

void DistanceStore::grow_columns(std::size_t new_count) {
    AA_ASSERT(new_count >= num_columns_);
    num_columns_ = new_count;
    for (Row& row : rows_) {
        row.dist.resize(new_count, kInfinity);
        row.in_prop.resize(new_count, 0);
        row.in_send.resize(new_count, 0);
    }
}

bool DistanceStore::relax(LocalId r, VertexId col, Weight candidate, bool mark_prop,
                          bool mark_send) {
    AA_ASSERT(r < rows_.size() && col < num_columns_);
    Row& row = rows_[r];
    if (!(candidate < row.dist[col] - kEpsilon)) {
        return false;
    }
    row.dist[col] = candidate;
    if (mark_prop && row.in_prop[col] == 0) {
        row.in_prop[col] = 1;
        row.prop_cols.push_back(col);
    }
    if (mark_send && row.in_send[col] == 0) {
        row.in_send[col] = 1;
        row.send_cols.push_back(col);
    }
    return true;
}

std::vector<VertexId> DistanceStore::take_prop(LocalId r) {
    AA_ASSERT(r < rows_.size());
    Row& row = rows_[r];
    for (const VertexId col : row.prop_cols) {
        row.in_prop[col] = 0;
    }
    return std::exchange(row.prop_cols, {});
}

std::vector<VertexId> DistanceStore::take_send(LocalId r) {
    AA_ASSERT(r < rows_.size());
    Row& row = rows_[r];
    for (const VertexId col : row.send_cols) {
        row.in_send[col] = 0;
    }
    return std::exchange(row.send_cols, {});
}

bool DistanceStore::any_send_pending() const {
    return std::any_of(rows_.begin(), rows_.end(),
                       [](const Row& row) { return !row.send_cols.empty(); });
}

bool DistanceStore::any_prop_pending() const {
    return std::any_of(rows_.begin(), rows_.end(),
                       [](const Row& row) { return !row.prop_cols.empty(); });
}

void DistanceStore::mark_row_for_send(LocalId r) {
    AA_ASSERT(r < rows_.size());
    Row& row = rows_[r];
    for (VertexId col = 0; col < num_columns_; ++col) {
        if (row.dist[col] < kInfinity && row.in_send[col] == 0) {
            row.in_send[col] = 1;
            row.send_cols.push_back(col);
        }
    }
}

void DistanceStore::mark_row_for_prop(LocalId r) {
    AA_ASSERT(r < rows_.size());
    Row& row = rows_[r];
    for (VertexId col = 0; col < num_columns_; ++col) {
        if (row.dist[col] < kInfinity && row.in_prop[col] == 0) {
            row.in_prop[col] = 1;
            row.prop_cols.push_back(col);
        }
    }
}

void DistanceStore::install_row(LocalId r, std::vector<Weight> values) {
    AA_ASSERT(r < rows_.size());
    AA_ASSERT(values.size() == num_columns_);
    Row& row = rows_[r];
    row.dist = std::move(values);
    AA_ASSERT_MSG(row.dist[row.self] == 0, "migrated row lost its zero diagonal");
}

std::vector<Weight> DistanceStore::extract_row(LocalId r) {
    AA_ASSERT(r < rows_.size());
    Row& row = rows_[r];
    std::vector<Weight> values = std::move(row.dist);
    row.dist.assign(num_columns_, kInfinity);
    row.dist[row.self] = 0;
    // Dirty state is meaningless for a vacated row.
    for (const VertexId col : row.prop_cols) {
        row.in_prop[col] = 0;
    }
    for (const VertexId col : row.send_cols) {
        row.in_send[col] = 0;
    }
    row.prop_cols.clear();
    row.send_cols.clear();
    return values;
}

std::vector<DvEntry> DistanceStore::finite_entries(LocalId r) const {
    AA_ASSERT(r < rows_.size());
    const Row& row = rows_[r];
    std::vector<DvEntry> entries;
    for (VertexId col = 0; col < num_columns_; ++col) {
        if (row.dist[col] < kInfinity) {
            entries.push_back({col, row.dist[col]});
        }
    }
    return entries;
}

}  // namespace aa
