#include "core/distance_store.hpp"

#include <algorithm>
#include <bit>
#include <utility>

// Explicit SIMD sweeps: compiled only when the build opts in
// (-DAA_ENABLE_SIMD=ON) on x86-64, taken at runtime only when the CPU
// reports AVX2 and the store's simd_enabled() toggle is on. The scalar loops
// below remain the reference semantics; the vector paths reproduce them bit
// for bit (same IEEE adds, same epsilon compare, improved columns recorded
// in ascending-entry order reconstructed from the compare mask).
#if defined(AA_ENABLE_SIMD) && defined(__x86_64__)
#define AA_SIMD_X86 1
#include <immintrin.h>
#endif

namespace aa {

namespace {
/// Required relative improvement; guards against float-noise ping-pong when
/// the same path length is derived via different summation orders.
constexpr Weight kEpsilon = 1e-12;

#if defined(AA_SIMD_X86)

bool detect_avx2() {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2");
}
const bool kHostHasAvx2 = detect_avx2();

/// AVX2 min-plus compare-and-store sweep over an SoA batch: four candidates
/// offset + dists[i..i+3] are compared against a gather of dist[cols[...]]
/// at once; stores stay conditional (mask-driven, lane order ascending via
/// countr_zero) so sweeps that improve nothing never dirty a cache line and
/// the improved-column sequence matches the scalar loop exactly. The caller
/// guarantees cols strictly increasing and cols.back() < num_columns, which
/// rules out intra-gather aliasing and makes the bounds check O(1). The i32
/// gather indices are read as signed, which is safe because a row of 2^31
/// doubles (16 GiB) is beyond any per-rank matrix slice this store holds.
/// Appends improved columns to `improved` and returns how many.
/// All-lanes-active gather through the masked intrinsic: the plain
/// _mm256_i32gather_pd leaves its source register formally undefined, which
/// gcc 12 flags under -Wmaybe-uninitialized; the masked form with an
/// explicit zero source emits the identical vgatherdpd.
__attribute__((target("avx2"))) inline __m256d gather_pd(const Weight* base,
                                                         __m128i vindex) {
    const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), base, vindex, all, 8);
}

__attribute__((target("avx2"))) std::size_t relax_soa_avx2(
    Weight* dist, const VertexId* cols, const Weight* dists, std::size_t count,
    Weight offset, VertexId* improved) {
    const __m256d voffset = _mm256_set1_pd(offset);
    const __m256d veps = _mm256_set1_pd(kEpsilon);
    std::size_t m = 0;
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        const __m128i vcols =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + i));
        const __m256d current = gather_pd(dist, vcols);
        const __m256d cand = _mm256_add_pd(voffset, _mm256_loadu_pd(dists + i));
        const __m256d better =
            _mm256_cmp_pd(cand, _mm256_sub_pd(current, veps), _CMP_LT_OQ);
        int mask = _mm256_movemask_pd(better);
        if (mask == 0) {
            continue;
        }
        alignas(32) Weight cand_lanes[4];
        _mm256_store_pd(cand_lanes, cand);
        while (mask != 0) {
            const int lane = std::countr_zero(static_cast<unsigned>(mask));
            mask &= mask - 1;
            const VertexId col = cols[i + lane];
            dist[col] = cand_lanes[lane];
            improved[m++] = col;
        }
    }
    for (; i < count; ++i) {  // tail: the scalar reference loop verbatim
        const VertexId col = cols[i];
        const Weight candidate = offset + dists[i];
        const bool better = candidate < dist[col] - kEpsilon;
        if (better) {
            dist[col] = candidate;
        }
        improved[m] = col;
        m += better;
    }
    return m;
}

/// Same sweep with the candidate gathered from a source row (the propagate
/// inner loop): cand = offset + src[col]. Columns may arrive in any order
/// and may even repeat (the contract is "exactly like relax() per column in
/// order"), so bounds are asserted per chunk and any chunk holding a
/// duplicate column is relaxed scalar: a duplicate inside one gather would
/// read the pre-store value for both lanes, where the sequential semantics
/// make the second attempt observe the first one's store. Duplicates across
/// chunks are safe (the later chunk re-gathers). Real callers pass drained
/// dirty sets (unique, sorted), so the fallback is cold.
__attribute__((target("avx2"))) std::size_t relax_from_row_avx2(
    Weight* dist, const Weight* src, const VertexId* cols, std::size_t count,
    Weight offset, VertexId* improved, std::size_t num_columns) {
    const __m256d voffset = _mm256_set1_pd(offset);
    const __m256d veps = _mm256_set1_pd(kEpsilon);
    std::size_t m = 0;
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        const VertexId c0 = cols[i], c1 = cols[i + 1], c2 = cols[i + 2],
                       c3 = cols[i + 3];
        AA_ASSERT(c0 < num_columns && c1 < num_columns && c2 < num_columns &&
                  c3 < num_columns);
        if (c0 == c1 || c0 == c2 || c0 == c3 || c1 == c2 || c1 == c3 || c2 == c3) {
            for (std::size_t k = i; k < i + 4; ++k) {
                const VertexId col = cols[k];
                const Weight candidate = offset + src[col];
                const bool better = candidate < dist[col] - kEpsilon;
                if (better) {
                    dist[col] = candidate;
                }
                improved[m] = col;
                m += better;
            }
            continue;
        }
        const __m128i vcols =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + i));
        const __m256d current = gather_pd(dist, vcols);
        const __m256d cand = _mm256_add_pd(voffset, gather_pd(src, vcols));
        const __m256d better =
            _mm256_cmp_pd(cand, _mm256_sub_pd(current, veps), _CMP_LT_OQ);
        int mask = _mm256_movemask_pd(better);
        if (mask == 0) {
            continue;
        }
        alignas(32) Weight cand_lanes[4];
        _mm256_store_pd(cand_lanes, cand);
        while (mask != 0) {
            const int lane = std::countr_zero(static_cast<unsigned>(mask));
            mask &= mask - 1;
            const VertexId col = cols[i + lane];
            dist[col] = cand_lanes[lane];
            improved[m++] = col;
        }
    }
    for (; i < count; ++i) {
        const VertexId col = cols[i];
        AA_ASSERT(col < num_columns);
        const Weight candidate = offset + src[col];
        const bool better = candidate < dist[col] - kEpsilon;
        if (better) {
            dist[col] = candidate;
        }
        improved[m] = col;
        m += better;
    }
    return m;
}

#endif  // AA_SIMD_X86
}  // namespace

LocalId DistanceStore::add_row(VertexId self) {
    AA_ASSERT(self < num_columns_);
    Row row;
    row.self = self;
    row.dist.assign(num_columns_, kInfinity);
    row.dist[self] = 0;
    rows_.push_back(std::move(row));
    prop_mark_.resize(rows_.size() * num_columns_, 0);
    send_mark_.resize(rows_.size() * num_columns_, 0);
    touch_stamp_.push_back(touch_epoch_);  // a fresh row is by definition touched
    return static_cast<LocalId>(rows_.size() - 1);
}

void DistanceStore::grow_columns(std::size_t new_count) {
    AA_ASSERT(new_count >= num_columns_);
    const std::size_t old_count = num_columns_;
    num_columns_ = new_count;
    for (Row& row : rows_) {
        row.dist.resize(new_count, kInfinity);
    }
    // Restride the mark arenas: each row's slice widens from old_count to
    // new_count, new columns start unmarked.
    if (new_count != old_count && !rows_.empty()) {
        for (auto* arena : {&prop_mark_, &send_mark_}) {
            std::vector<std::uint8_t> wider(rows_.size() * new_count, 0);
            for (std::size_t r = 0; r < rows_.size(); ++r) {
                std::copy_n(arena->data() + r * old_count, old_count,
                            wider.data() + r * new_count);
            }
            *arena = std::move(wider);
        }
    }
}

bool DistanceStore::relax(LocalId r, VertexId col, Weight candidate, bool mark_prop,
                          bool mark_send) {
    AA_ASSERT(r < rows_.size() && col < num_columns_);
    Row& row = rows_[r];
    if (!(candidate < row.dist[col] - kEpsilon)) {
        return false;
    }
    row.dist[col] = candidate;
    touch(r);
    if (mark_prop) {
        std::uint8_t* mark = this->prop_mark(r);
        if (mark[col] != row.prop.epoch) {
            mark[col] = row.prop.epoch;
            row.prop.cols.push_back(col);
        }
    }
    if (mark_send) {
        std::uint8_t* mark = this->send_mark(r);
        if (mark[col] != row.send.epoch) {
            mark[col] = row.send.epoch;
            row.send.cols.push_back(col);
        }
    }
    return true;
}

std::size_t DistanceStore::relax_batch(LocalId r, DvEntrySpan entries, Weight offset,
                                       bool mark_prop, bool mark_send) {
    AA_ASSERT(r < rows_.size());
    Row& row = rows_[r];
    Weight* dist = row.dist.data();

    // Scratch for improved columns; thread_local so concurrent sweeps over
    // distinct rows don't share it and its capacity is reused across calls.
    // Grow-only: resize() value-initializes any regrown tail, so shrinking for
    // a small batch would make every later large batch pay a memset.
    static thread_local std::vector<VertexId> improved;
    if (improved.size() < entries.size()) {
        improved.resize(entries.size());
    }

    // Compare-and-store sweep with compacting append of the improved column
    // indices: the `m += better` compaction keeps the bookkeeping free of
    // data-dependent branches. The store itself is conditional on purpose —
    // an unconditional cmov-style store would dirty every touched cache line
    // and force a DRAM writeback even for sweeps that improve nothing, which
    // for matrix-scale rows costs far more than the occasional branch miss.
    // Callers keep the destination row cache-resident across consecutive
    // batches (ingest groups a window's blocks by row; propagate reuses one
    // column-sorted batch across all neighbour rows), so the dist[] accesses
    // rarely leave the cache hierarchy mid-sweep.
    const std::size_t count = entries.size();
    std::size_t m = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const DvEntry entry = entries[i];
        const VertexId col = entry.column;
        AA_ASSERT(col < num_columns_);
        const Weight candidate = offset + entry.distance;
        const Weight current = dist[col];
        const bool better = candidate < current - kEpsilon;
        if (better) {
            dist[col] = candidate;
        }
        improved[m] = col;
        m += better;
    }
    if (m == 0) {
        return 0;
    }
    record_improved(r, std::span<const VertexId>(improved.data(), m), mark_prop,
                    mark_send);
    return m;
}

std::size_t DistanceStore::relax_batch_soa(LocalId r, std::span<const VertexId> cols,
                                           std::span<const Weight> dists, Weight offset,
                                           bool mark_prop, bool mark_send) {
    AA_ASSERT(r < rows_.size());
    AA_ASSERT(cols.size() == dists.size());
    Row& row = rows_[r];
    Weight* dist = row.dist.data();
    // cols ascending (decoder-validated), so the back() check bounds them all.
    AA_ASSERT(cols.empty() || cols.back() < num_columns_);

    static thread_local std::vector<VertexId> improved;
    if (improved.size() < cols.size()) {
        improved.resize(cols.size());
    }

    const std::size_t count = cols.size();
    std::size_t m = 0;
#if defined(AA_SIMD_X86)
    if (simd_enabled_ && kHostHasAvx2) {
        m = relax_soa_avx2(dist, cols.data(), dists.data(), count, offset,
                           improved.data());
    } else
#endif
    {
        // Scalar reference sweep — see relax_batch for why the store is
        // conditional and the append compacting.
        for (std::size_t i = 0; i < count; ++i) {
            const VertexId col = cols[i];
            const Weight candidate = offset + dists[i];
            const Weight current = dist[col];
            const bool better = candidate < current - kEpsilon;
            if (better) {
                dist[col] = candidate;
            }
            improved[m] = col;
            m += better;
        }
    }
    if (m == 0) {
        return 0;
    }
    record_improved(r, std::span<const VertexId>(improved.data(), m), mark_prop,
                    mark_send);
    return m;
}

std::size_t DistanceStore::relax_batch_from_row(LocalId r, std::span<const VertexId> cols,
                                                std::span<const Weight> src, Weight offset,
                                                bool mark_prop, bool mark_send) {
    AA_ASSERT(r < rows_.size());
    Row& row = rows_[r];
    Weight* dist = row.dist.data();
    AA_ASSERT(src.data() != dist);

    static thread_local std::vector<VertexId> improved;
    if (improved.size() < cols.size()) {
        improved.resize(cols.size());
    }

    // Same compare-and-store sweep as relax_batch, with the candidate read
    // straight out of the source row instead of a serialized entry. Columns
    // from a drained dirty set are unique, which is all the gather path needs
    // (no intra-gather aliasing); they need not be sorted.
    const std::size_t count = cols.size();
    std::size_t m = 0;
#if defined(AA_SIMD_X86)
    if (simd_enabled_ && kHostHasAvx2) {
        m = relax_from_row_avx2(dist, src.data(), cols.data(), count, offset,
                                improved.data(), num_columns_);
    } else
#endif
    for (std::size_t i = 0; i < count; ++i) {
        const VertexId col = cols[i];
        AA_ASSERT(col < num_columns_);
        const Weight candidate = offset + src[col];
        const Weight current = dist[col];
        const bool better = candidate < current - kEpsilon;
        if (better) {
            dist[col] = candidate;
        }
        improved[m] = col;
        m += better;
    }
    if (m == 0) {
        return 0;
    }
    record_improved(r, std::span<const VertexId>(improved.data(), m), mark_prop,
                    mark_send);
    return m;
}

void DistanceStore::record_improved(LocalId r, std::span<const VertexId> improved,
                                    bool mark_prop, bool mark_send) {
    Row& row = rows_[r];
    // All batched sweeps funnel their improvements through here, so one
    // stamp covers every batch variant.
    touch(r);
    // Record dirtiness once per improved column, after the sweep.
    if (mark_prop) {
        std::uint8_t* mark = this->prop_mark(r);
        const std::uint8_t epoch = row.prop.epoch;
        for (const VertexId col : improved) {
            if (mark[col] != epoch) {
                mark[col] = epoch;
                row.prop.cols.push_back(col);
            }
        }
    }
    if (mark_send) {
        std::uint8_t* mark = this->send_mark(r);
        const std::uint8_t epoch = row.send.epoch;
        for (const VertexId col : improved) {
            if (mark[col] != epoch) {
                mark[col] = epoch;
                row.send.cols.push_back(col);
            }
        }
    }
}

std::span<const VertexId> DistanceStore::drain(DirtySet& set, std::uint8_t* mark) {
    set.cols.swap(set.drained);
    set.cols.clear();
    if (++set.epoch == 0) {
        // 8-bit epoch wrapped: reset this row's slice so stale marks from the
        // previous cycle cannot collide. Amortized O(columns / 254) per drain.
        std::fill_n(mark, num_columns_, 0);
        set.epoch = 1;
    }
    return set.drained;
}

std::span<const VertexId> DistanceStore::take_prop(LocalId r) {
    AA_ASSERT(r < rows_.size());
    return drain(rows_[r].prop, prop_mark(r));
}

std::span<const VertexId> DistanceStore::take_send(LocalId r) {
    AA_ASSERT(r < rows_.size());
    return drain(rows_[r].send, send_mark(r));
}

bool DistanceStore::any_send_pending() const {
    return std::any_of(rows_.begin(), rows_.end(),
                       [](const Row& row) { return !row.send.cols.empty(); });
}

bool DistanceStore::any_prop_pending() const {
    return std::any_of(rows_.begin(), rows_.end(),
                       [](const Row& row) { return !row.prop.cols.empty(); });
}

void DistanceStore::mark_row_for_send(LocalId r) {
    AA_ASSERT(r < rows_.size());
    Row& row = rows_[r];
    std::uint8_t* mark = this->send_mark(r);
    for (VertexId col = 0; col < num_columns_; ++col) {
        if (row.dist[col] < kInfinity && mark[col] != row.send.epoch) {
            mark[col] = row.send.epoch;
            row.send.cols.push_back(col);
        }
    }
}

void DistanceStore::mark_row_for_prop(LocalId r) {
    AA_ASSERT(r < rows_.size());
    Row& row = rows_[r];
    std::uint8_t* mark = this->prop_mark(r);
    for (VertexId col = 0; col < num_columns_; ++col) {
        if (row.dist[col] < kInfinity && mark[col] != row.prop.epoch) {
            mark[col] = row.prop.epoch;
            row.prop.cols.push_back(col);
        }
    }
}

void DistanceStore::mark_for_prop(LocalId r, VertexId col) {
    AA_ASSERT(r < rows_.size() && col < num_columns_);
    Row& row = rows_[r];
    std::uint8_t* mark = this->prop_mark(r);
    if (mark[col] != row.prop.epoch) {
        mark[col] = row.prop.epoch;
        row.prop.cols.push_back(col);
    }
}

void DistanceStore::mark_for_send(LocalId r, VertexId col) {
    AA_ASSERT(r < rows_.size() && col < num_columns_);
    Row& row = rows_[r];
    std::uint8_t* mark = this->send_mark(r);
    if (mark[col] != row.send.epoch) {
        mark[col] = row.send.epoch;
        row.send.cols.push_back(col);
    }
}

void DistanceStore::mark_invalidated(LocalId r, VertexId col) {
    AA_ASSERT(r < rows_.size() && col < num_columns_);
    Row& row = rows_[r];
    AA_ASSERT_MSG(col != row.self, "the zero diagonal cannot be invalidated");
    row.dist[col] = kInfinity;
    touch(r);
    mark_for_prop(r, col);
    mark_for_send(r, col);
}

void DistanceStore::clear_dirty(LocalId r) {
    Row& row = rows_[r];
    (void)drain(row.prop, prop_mark(r));
    (void)drain(row.send, send_mark(r));
}

void DistanceStore::install_row(LocalId r, std::vector<Weight> values) {
    AA_ASSERT(r < rows_.size());
    AA_ASSERT(values.size() == num_columns_);
    Row& row = rows_[r];
    row.dist = std::move(values);
    touch(r);
    AA_ASSERT_MSG(row.dist[row.self] == 0, "migrated row lost its zero diagonal");
}

std::vector<Weight> DistanceStore::extract_row(LocalId r) {
    AA_ASSERT(r < rows_.size());
    Row& row = rows_[r];
    std::vector<Weight> values = std::move(row.dist);
    row.dist.assign(num_columns_, kInfinity);
    row.dist[row.self] = 0;
    touch(r);
    // Dirty state is meaningless for a vacated row.
    clear_dirty(r);
    return values;
}

std::vector<Weight> DistanceStore::swap_remove_row(LocalId r) {
    AA_ASSERT(r < rows_.size());
    std::vector<Weight> values = std::move(rows_[r].dist);
    const auto last = static_cast<LocalId>(rows_.size() - 1);
    if (r != last) {
        rows_[r] = std::move(rows_[last]);
        // The displaced row's mark-arena slices move with it so its dirty-set
        // epochs keep validating the right bytes.
        std::copy_n(prop_mark_.data() + static_cast<std::size_t>(last) * num_columns_,
                    num_columns_,
                    prop_mark_.data() + static_cast<std::size_t>(r) * num_columns_);
        std::copy_n(send_mark_.data() + static_cast<std::size_t>(last) * num_columns_,
                    num_columns_,
                    send_mark_.data() + static_cast<std::size_t>(r) * num_columns_);
        // The displaced row's touch stamp moves with it.
        touch_stamp_[r] = touch_stamp_[last];
    }
    rows_.pop_back();
    prop_mark_.resize(rows_.size() * num_columns_);
    send_mark_.resize(rows_.size() * num_columns_);
    touch_stamp_.resize(rows_.size());
    return values;
}

std::vector<DvEntry> DistanceStore::finite_entries(LocalId r) const {
    AA_ASSERT(r < rows_.size());
    const Row& row = rows_[r];
    std::vector<DvEntry> entries;
    for (VertexId col = 0; col < num_columns_; ++col) {
        if (row.dist[col] < kInfinity) {
            entries.push_back({col, row.dist[col]});
        }
    }
    return entries;
}

}  // namespace aa
