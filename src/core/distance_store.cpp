#include "core/distance_store.hpp"

#include <algorithm>
#include <utility>

namespace aa {

namespace {
/// Required relative improvement; guards against float-noise ping-pong when
/// the same path length is derived via different summation orders.
constexpr Weight kEpsilon = 1e-12;
}  // namespace

LocalId DistanceStore::add_row(VertexId self) {
    AA_ASSERT(self < num_columns_);
    Row row;
    row.self = self;
    row.dist.assign(num_columns_, kInfinity);
    row.dist[self] = 0;
    rows_.push_back(std::move(row));
    prop_mark_.resize(rows_.size() * num_columns_, 0);
    send_mark_.resize(rows_.size() * num_columns_, 0);
    return static_cast<LocalId>(rows_.size() - 1);
}

void DistanceStore::grow_columns(std::size_t new_count) {
    AA_ASSERT(new_count >= num_columns_);
    const std::size_t old_count = num_columns_;
    num_columns_ = new_count;
    for (Row& row : rows_) {
        row.dist.resize(new_count, kInfinity);
    }
    // Restride the mark arenas: each row's slice widens from old_count to
    // new_count, new columns start unmarked.
    if (new_count != old_count && !rows_.empty()) {
        for (auto* arena : {&prop_mark_, &send_mark_}) {
            std::vector<std::uint8_t> wider(rows_.size() * new_count, 0);
            for (std::size_t r = 0; r < rows_.size(); ++r) {
                std::copy_n(arena->data() + r * old_count, old_count,
                            wider.data() + r * new_count);
            }
            *arena = std::move(wider);
        }
    }
}

bool DistanceStore::relax(LocalId r, VertexId col, Weight candidate, bool mark_prop,
                          bool mark_send) {
    AA_ASSERT(r < rows_.size() && col < num_columns_);
    Row& row = rows_[r];
    if (!(candidate < row.dist[col] - kEpsilon)) {
        return false;
    }
    row.dist[col] = candidate;
    if (mark_prop) {
        std::uint8_t* mark = this->prop_mark(r);
        if (mark[col] != row.prop.epoch) {
            mark[col] = row.prop.epoch;
            row.prop.cols.push_back(col);
        }
    }
    if (mark_send) {
        std::uint8_t* mark = this->send_mark(r);
        if (mark[col] != row.send.epoch) {
            mark[col] = row.send.epoch;
            row.send.cols.push_back(col);
        }
    }
    return true;
}

std::size_t DistanceStore::relax_batch(LocalId r, DvEntrySpan entries, Weight offset,
                                       bool mark_prop, bool mark_send) {
    AA_ASSERT(r < rows_.size());
    Row& row = rows_[r];
    Weight* dist = row.dist.data();

    // Scratch for improved columns; thread_local so concurrent sweeps over
    // distinct rows don't share it and its capacity is reused across calls.
    // Grow-only: resize() value-initializes any regrown tail, so shrinking for
    // a small batch would make every later large batch pay a memset.
    static thread_local std::vector<VertexId> improved;
    if (improved.size() < entries.size()) {
        improved.resize(entries.size());
    }

    // Compare-and-store sweep with compacting append of the improved column
    // indices: the `m += better` compaction keeps the bookkeeping free of
    // data-dependent branches. The store itself is conditional on purpose —
    // an unconditional cmov-style store would dirty every touched cache line
    // and force a DRAM writeback even for sweeps that improve nothing, which
    // for matrix-scale rows costs far more than the occasional branch miss.
    // Callers keep the destination row cache-resident across consecutive
    // batches (ingest groups a window's blocks by row; propagate reuses one
    // column-sorted batch across all neighbour rows), so the dist[] accesses
    // rarely leave the cache hierarchy mid-sweep.
    const std::size_t count = entries.size();
    std::size_t m = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const DvEntry entry = entries[i];
        const VertexId col = entry.column;
        AA_ASSERT(col < num_columns_);
        const Weight candidate = offset + entry.distance;
        const Weight current = dist[col];
        const bool better = candidate < current - kEpsilon;
        if (better) {
            dist[col] = candidate;
        }
        improved[m] = col;
        m += better;
    }
    if (m == 0) {
        return 0;
    }
    record_improved(r, std::span<const VertexId>(improved.data(), m), mark_prop,
                    mark_send);
    return m;
}

std::size_t DistanceStore::relax_batch_from_row(LocalId r, std::span<const VertexId> cols,
                                                std::span<const Weight> src, Weight offset,
                                                bool mark_prop, bool mark_send) {
    AA_ASSERT(r < rows_.size());
    Row& row = rows_[r];
    Weight* dist = row.dist.data();
    AA_ASSERT(src.data() != dist);

    static thread_local std::vector<VertexId> improved;
    if (improved.size() < cols.size()) {
        improved.resize(cols.size());
    }

    // Same compare-and-store sweep as relax_batch, with the candidate read
    // straight out of the source row instead of a serialized entry.
    const std::size_t count = cols.size();
    std::size_t m = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const VertexId col = cols[i];
        AA_ASSERT(col < num_columns_);
        const Weight candidate = offset + src[col];
        const Weight current = dist[col];
        const bool better = candidate < current - kEpsilon;
        if (better) {
            dist[col] = candidate;
        }
        improved[m] = col;
        m += better;
    }
    if (m == 0) {
        return 0;
    }
    record_improved(r, std::span<const VertexId>(improved.data(), m), mark_prop,
                    mark_send);
    return m;
}

void DistanceStore::record_improved(LocalId r, std::span<const VertexId> improved,
                                    bool mark_prop, bool mark_send) {
    Row& row = rows_[r];
    // Record dirtiness once per improved column, after the sweep.
    if (mark_prop) {
        std::uint8_t* mark = this->prop_mark(r);
        const std::uint8_t epoch = row.prop.epoch;
        for (const VertexId col : improved) {
            if (mark[col] != epoch) {
                mark[col] = epoch;
                row.prop.cols.push_back(col);
            }
        }
    }
    if (mark_send) {
        std::uint8_t* mark = this->send_mark(r);
        const std::uint8_t epoch = row.send.epoch;
        for (const VertexId col : improved) {
            if (mark[col] != epoch) {
                mark[col] = epoch;
                row.send.cols.push_back(col);
            }
        }
    }
}

std::span<const VertexId> DistanceStore::drain(DirtySet& set, std::uint8_t* mark) {
    set.cols.swap(set.drained);
    set.cols.clear();
    if (++set.epoch == 0) {
        // 8-bit epoch wrapped: reset this row's slice so stale marks from the
        // previous cycle cannot collide. Amortized O(columns / 254) per drain.
        std::fill_n(mark, num_columns_, 0);
        set.epoch = 1;
    }
    return set.drained;
}

std::span<const VertexId> DistanceStore::take_prop(LocalId r) {
    AA_ASSERT(r < rows_.size());
    return drain(rows_[r].prop, prop_mark(r));
}

std::span<const VertexId> DistanceStore::take_send(LocalId r) {
    AA_ASSERT(r < rows_.size());
    return drain(rows_[r].send, send_mark(r));
}

bool DistanceStore::any_send_pending() const {
    return std::any_of(rows_.begin(), rows_.end(),
                       [](const Row& row) { return !row.send.cols.empty(); });
}

bool DistanceStore::any_prop_pending() const {
    return std::any_of(rows_.begin(), rows_.end(),
                       [](const Row& row) { return !row.prop.cols.empty(); });
}

void DistanceStore::mark_row_for_send(LocalId r) {
    AA_ASSERT(r < rows_.size());
    Row& row = rows_[r];
    std::uint8_t* mark = this->send_mark(r);
    for (VertexId col = 0; col < num_columns_; ++col) {
        if (row.dist[col] < kInfinity && mark[col] != row.send.epoch) {
            mark[col] = row.send.epoch;
            row.send.cols.push_back(col);
        }
    }
}

void DistanceStore::mark_row_for_prop(LocalId r) {
    AA_ASSERT(r < rows_.size());
    Row& row = rows_[r];
    std::uint8_t* mark = this->prop_mark(r);
    for (VertexId col = 0; col < num_columns_; ++col) {
        if (row.dist[col] < kInfinity && mark[col] != row.prop.epoch) {
            mark[col] = row.prop.epoch;
            row.prop.cols.push_back(col);
        }
    }
}

void DistanceStore::clear_dirty(LocalId r) {
    Row& row = rows_[r];
    (void)drain(row.prop, prop_mark(r));
    (void)drain(row.send, send_mark(r));
}

void DistanceStore::install_row(LocalId r, std::vector<Weight> values) {
    AA_ASSERT(r < rows_.size());
    AA_ASSERT(values.size() == num_columns_);
    Row& row = rows_[r];
    row.dist = std::move(values);
    AA_ASSERT_MSG(row.dist[row.self] == 0, "migrated row lost its zero diagonal");
}

std::vector<Weight> DistanceStore::extract_row(LocalId r) {
    AA_ASSERT(r < rows_.size());
    Row& row = rows_[r];
    std::vector<Weight> values = std::move(row.dist);
    row.dist.assign(num_columns_, kInfinity);
    row.dist[row.self] = 0;
    // Dirty state is meaningless for a vacated row.
    clear_dirty(r);
    return values;
}

std::vector<DvEntry> DistanceStore::finite_entries(LocalId r) const {
    AA_ASSERT(r < rows_.size());
    const Row& row = rows_[r];
    std::vector<DvEntry> entries;
    for (VertexId col = 0; col < num_columns_; ++col) {
        if (row.dist[col] < kInfinity) {
            entries.push_back({col, row.dist[col]});
        }
    }
    return entries;
}

}  // namespace aa
