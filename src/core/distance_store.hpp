// Distance vectors (DVs) — the per-rank partial APSP state.
//
// Rank p stores one row per owned vertex: row(v)[t] = the current upper bound
// on d(v, t) for every global vertex t. Under additive updates rows only ever
// decrease via relax() (the distance-vector-routing invariant), which is both
// the anytime monotonicity property and the termination argument. The fully
// dynamic shrink path (core/edge_delete.cpp) raises entries through exactly
// one door: mark_invalidated() resets an entry to kInfinity — no min-compare —
// and re-dirties it, after which re-settlement is monotone decrease again.
//
// Two pieces of dirty tracking drive the incremental algorithm:
//   * prop columns  — entries changed but not yet propagated to the rank's
//     *local* neighbours (the within-rank relaxation worklist),
//   * send columns  — entries changed but not yet shared with *other* ranks
//     (the boundary-DV payload of the next RC step).
//
// Layout (rebuilt for the batched RC kernels):
//   * distances live in one contiguous array per row;
//   * membership tests for the dirty sets use flat per-store mark arenas
//     (one byte per (row, column)) with per-row epoch stamps: a column is in
//     the set iff mark == epoch. Draining bumps the epoch instead of clearing
//     marks, so take_prop/take_send are O(1) + buffer swap — no allocation
//     and no per-column writes per drain (the arena is memset only when an
//     8-bit epoch wraps, amortized O(columns/254));
//   * each dirty set keeps two column buffers (pending / drained) that are
//     swapped on drain, so the capacity is reused forever and the span
//     returned by take_prop/take_send stays valid until the same row's next
//     drain.
//
// Concurrency contract: distinct rows may be mutated from distinct threads
// concurrently (all per-row state — distances, mark slices, column buffers —
// is disjoint). Concurrent mutation of the *same* row, or structural changes
// (add_row / grow_columns / install_row / extract_row) concurrent with any
// access, are data races.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace aa {

/// One serialized DV entry on the wire.
struct DvEntry {
    VertexId column;
    Weight distance;
};
static_assert(std::is_trivially_copyable_v<DvEntry>);

/// Layout of the boundary-DV payload blocks exchanged in the RC step (see
/// core/rc.hpp for the encoders/decoders and the byte-accounting contract).
enum class BoundaryWireFormat : std::uint8_t {
    /// Array-of-structs: [u32 vertex][u64 count][count x 12-byte DvEntry].
    /// The historical format; entry runs sit 12 bytes past the block header,
    /// so the doubles inside are never 8-aligned.
    V1Aos = 1,
    /// Struct-of-arrays: [u32 vertex][varint count][columns: delta-varint or
    /// run-length, ascending][zero pad to 8][count x aligned f64]. Columns
    /// cost ~1-2 bytes instead of 4+8-byte-amortized headers, and the
    /// contiguous aligned distance run is what the vectorized relaxation
    /// sweeps consume in place.
    V2Soa = 2,
};

/// Read-only view over a run of serialized DvEntry records at arbitrary byte
/// alignment. V1Aos payloads place each block's entry run 12 bytes past the
/// block header, so the doubles inside are not 8-aligned and the records
/// cannot be aliased as a DvEntry array; operator[] reads through memcpy
/// instead, which compiles to two plain loads on x86-64 — but it also pins
/// the sweep to scalar loads, which is one of the two costs the V2Soa format
/// exists to remove. This view is what lets the RC ingest kernel sweep v1
/// entries straight out of a received payload without first copying them
/// into an aligned vector.
class DvEntrySpan {
public:
    DvEntrySpan() = default;
    DvEntrySpan(const std::byte* data, std::size_t count) : data_(data), size_(count) {}
    /*implicit*/ DvEntrySpan(std::span<const DvEntry> entries)
        : data_(reinterpret_cast<const std::byte*>(entries.data())),
          size_(entries.size()) {}

    std::size_t size() const { return size_; }
    const std::byte* data() const { return data_; }
    DvEntry operator[](std::size_t i) const {
        DvEntry e;
        std::memcpy(&e, data_ + i * sizeof(DvEntry), sizeof(e));
        return e;
    }

private:
    const std::byte* data_{nullptr};
    std::size_t size_{0};
};

class DistanceStore {
public:
    explicit DistanceStore(std::size_t num_columns = 0) : num_columns_(num_columns) {}

    std::size_t num_rows() const { return rows_.size(); }
    std::size_t num_columns() const { return num_columns_; }

    /// Append a row of kInfinity except dist[self] = 0. Rows are indexed by
    /// LocalId in creation order, matching LocalSubgraph::adopt order.
    LocalId add_row(VertexId self);

    /// Grow every row (and the column space) to `new_count` columns.
    void grow_columns(std::size_t new_count);

    std::span<const Weight> row(LocalId r) const {
        AA_ASSERT(r < rows_.size());
        return rows_[r].dist;
    }

    Weight at(LocalId r, VertexId col) const {
        AA_ASSERT(r < rows_.size() && col < num_columns_);
        return rows_[r].dist[col];
    }

    /// Attempt to lower row r's entry for `col` to `candidate`. On success
    /// marks the column in the prop and/or send dirty sets. Returns true if
    /// the value improved.
    bool relax(LocalId r, VertexId col, Weight candidate, bool mark_prop = true,
               bool mark_send = true);

    /// Batched relaxation: attempt to lower row r's entry for every
    /// entry.column to offset + entry.distance in one compare-and-store sweep
    /// (the RC inner loop: offset is the connecting edge weight, the entries
    /// are another vertex's DV columns). Improved columns are recorded in the
    /// dirty sets once at the end rather than per element. Exactly equivalent
    /// to calling relax() per entry in order, including the acceptance
    /// epsilon. Returns the number of improved columns. The DvEntrySpan
    /// overload additionally accepts entries still sitting (possibly
    /// unaligned) inside a serialized payload.
    std::size_t relax_batch(LocalId r, DvEntrySpan entries, Weight offset,
                            bool mark_prop = true, bool mark_send = true);
    std::size_t relax_batch(LocalId r, std::span<const DvEntry> entries, Weight offset,
                            bool mark_prop = true, bool mark_send = true) {
        return relax_batch(r, DvEntrySpan(entries), offset, mark_prop, mark_send);
    }

    /// SoA variant of relax_batch: the candidates are offset + dists[i] for
    /// column cols[i], with `dists` a contiguous (8-aligned) f64 run — the
    /// shape the v2 wire format delivers, viewable in place, and also the
    /// shape of the row-blocked propagate sweep's gathered tiles (see
    /// kRcPropagateTileCols in core/rc.hpp). Preconditions:
    /// cols.size() == dists.size() and cols strictly increasing (the v2
    /// decoder guarantees both); sortedness makes the bounds check O(1) and
    /// rules out intra-batch column aliasing, which is what lets the AVX2
    /// sweep (compiled under AA_ENABLE_SIMD, taken when simd_enabled()) keep
    /// exactly the scalar reference semantics: same IEEE adds, same epsilon
    /// compare, improved columns recorded in ascending-entry order.
    std::size_t relax_batch_soa(LocalId r, std::span<const VertexId> cols,
                                std::span<const Weight> dists, Weight offset,
                                bool mark_prop = true, bool mark_send = true);

    /// Same sweep, but the candidate for each column is offset + src[col]
    /// instead of a serialized entry — the local-propagation inner loop,
    /// where `src` is the drained row and `cols` its changed columns. Sweeping
    /// straight out of the source row spares the caller materializing a
    /// DvEntry batch per drain. `src` must not alias row r (the propagation
    /// graph has no self loops). Exactly equivalent to calling relax() with
    /// offset + src[col] per column in order.
    std::size_t relax_batch_from_row(LocalId r, std::span<const VertexId> cols,
                                     std::span<const Weight> src, Weight offset,
                                     bool mark_prop = true, bool mark_send = true);

    /// Drain the propagation worklist of row r (columns changed since last
    /// local propagation), in mark order. Clears the set. The returned span
    /// remains valid until row r's next take_prop (marks on *other* rows, and
    /// new marks on r itself, do not invalidate it).
    std::span<const VertexId> take_prop(LocalId r);

    /// Drain the send worklist of row r. Same lifetime rules as take_prop.
    std::span<const VertexId> take_send(LocalId r);

    bool has_prop(LocalId r) const { return !rows_[r].prop.cols.empty(); }
    bool has_send(LocalId r) const { return !rows_[r].send.cols.empty(); }

    /// Any row with unsent changes?
    bool any_send_pending() const;
    /// Any row with unpropagated changes?
    bool any_prop_pending() const;

    /// Mark every finite entry of row r as needing (re)send — used after IA
    /// and when a row gains a new neighbouring rank (the paper's "start
    /// sending DV" notification).
    void mark_row_for_send(LocalId r);

    /// Mark every finite entry of row r for local propagation — used after
    /// Repartition-S rebuilds rank state: newly co-located rows have never
    /// been relaxed against each other, so a full local sweep is owed.
    void mark_row_for_prop(LocalId r);

    /// Mark a single (finite) entry for local propagation without touching
    /// its value — the deletion path's re-seed: a surviving neighbour entry
    /// must re-relax into a freshly invalidated one even though it never
    /// improved.
    void mark_for_prop(LocalId r, VertexId col);

    /// Single-entry analogue of mark_row_for_send, same re-seed purpose but
    /// for cut edges: the surviving value must travel to the rank that just
    /// invalidated its neighbour.
    void mark_for_send(LocalId r, VertexId col);

    /// Invalidate one entry: reset it to kInfinity *without* the min-compare
    /// (the only operation that may raise a value) and re-dirty both
    /// worklists through the same epoch marks relax() uses. The self column
    /// is never invalidated (d(v, v) = 0 by definition).
    void mark_invalidated(LocalId r, VertexId col);

    /// Install a full row received via migration (Repartition-S). Overwrites
    /// (the incoming row is the authoritative state for that vertex).
    void install_row(LocalId r, std::vector<Weight> values);

    /// Move row r out (for migration); the row remains but is reset to
    /// infinity. Returns the values.
    std::vector<Weight> extract_row(LocalId r);

    /// Remove row r entirely by swapping the last row into its slot — the
    /// DistanceStore mirror of LocalSubgraph::release (shard migration).
    /// The displaced row keeps its dirty sets and epoch marks (its arena
    /// slices move with it); the removed row's values are returned.
    std::vector<Weight> swap_remove_row(LocalId r);

    /// Collect (column, distance) pairs of all finite entries of row r.
    std::vector<DvEntry> finite_entries(LocalId r) const;

    /// Drain the touched-row set: invoke fn(self VertexId) once for every row
    /// whose values were mutated since the previous drain (relax/invalidate/
    /// install/extract — anything that can change the row's closeness sum),
    /// then reset the set. Driver thread only, engine idle (same contract as
    /// the boundary hook). The serve layer's delta publication reads this to
    /// re-sum only the touched rows instead of all of them. Stamps are
    /// epoch-validated like the dirty sets: a drain is O(rows) loads, the
    /// stamp array is rewritten only when the 32-bit epoch wraps.
    template <typename Fn>
    void drain_touched(Fn&& fn) {
        for (std::size_t r = 0; r < rows_.size(); ++r) {
            if (touch_stamp_[r] == touch_epoch_) {
                fn(rows_[r].self);
            }
        }
        if (++touch_epoch_ == 0) {
            std::fill(touch_stamp_.begin(), touch_stamp_.end(), 0u);
            touch_epoch_ = 1;
        }
    }

    /// Whether the explicit SIMD sweeps may run (effective only when the
    /// build enables them via -DAA_ENABLE_SIMD=ON and the CPU has AVX2; the
    /// scalar loop is the reference semantics either way and results are
    /// bit-identical by construction). Benchmarks flip this off to ablate
    /// the vector path; EngineConfig::rc_simd plumbs it per engine.
    void set_simd_enabled(bool enabled) { simd_enabled_ = enabled; }
    bool simd_enabled() const { return simd_enabled_; }

private:
    /// Shared tail of the batched sweeps: append each improved column to the
    /// requested dirty sets (deduplicated through the epoch marks).
    void record_improved(LocalId r, std::span<const VertexId> improved, bool mark_prop,
                         bool mark_send);

    /// One dirty set: pending columns + the last drained batch (buffers are
    /// swapped on drain so capacity is never released), plus the epoch that
    /// validates this row's slice of the shared mark arena.
    struct DirtySet {
        std::vector<VertexId> cols;
        std::vector<VertexId> drained;
        std::uint8_t epoch{1};
    };

    struct Row {
        VertexId self{kInvalidVertex};
        std::vector<Weight> dist;
        DirtySet prop;
        DirtySet send;
    };

    std::uint8_t* prop_mark(LocalId r) { return prop_mark_.data() + r * num_columns_; }
    std::uint8_t* send_mark(LocalId r) { return send_mark_.data() + r * num_columns_; }

    /// Stamp row r as touched since the last drain_touched(). Row-disjoint
    /// like the rest of the per-row state: concurrent sweeps over distinct
    /// rows write distinct stamp slots.
    void touch(LocalId r) { touch_stamp_[r] = touch_epoch_; }

    /// Swap/clear the set's buffers and invalidate its marks by bumping the
    /// epoch (memset of the arena slice only on 8-bit wrap). Returns the
    /// drained columns.
    std::span<const VertexId> drain(DirtySet& set, std::uint8_t* mark);

    void clear_dirty(LocalId r);

    std::vector<Row> rows_;
    std::size_t num_columns_{0};
    bool simd_enabled_{true};
    // Flat mark arenas, row-major with stride num_columns_: column c of row r
    // is in the prop set iff prop_mark_[r * num_columns_ + c] == prop epoch.
    std::vector<std::uint8_t> prop_mark_;
    std::vector<std::uint8_t> send_mark_;
    // Touched-row stamps (see drain_touched): row r was mutated since the
    // last drain iff touch_stamp_[r] == touch_epoch_.
    std::vector<std::uint32_t> touch_stamp_;
    std::uint32_t touch_epoch_{1};
};

}  // namespace aa
