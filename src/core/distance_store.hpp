// Distance vectors (DVs) — the per-rank partial APSP state.
//
// Rank p stores one row per owned vertex: row(v)[t] = the current upper bound
// on d(v, t) for every global vertex t. Rows only ever decrease (the
// distance-vector-routing invariant for additive updates), which is both the
// anytime monotonicity property and the termination argument.
//
// Two pieces of dirty tracking drive the incremental algorithm:
//   * prop columns  — entries changed but not yet propagated to the rank's
//     *local* neighbours (the within-rank relaxation worklist),
//   * send columns  — entries changed but not yet shared with *other* ranks
//     (the boundary-DV payload of the next RC step).
#pragma once

#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace aa {

/// One serialized DV entry on the wire.
struct DvEntry {
    VertexId column;
    Weight distance;
};
static_assert(std::is_trivially_copyable_v<DvEntry>);

class DistanceStore {
public:
    explicit DistanceStore(std::size_t num_columns = 0) : num_columns_(num_columns) {}

    std::size_t num_rows() const { return rows_.size(); }
    std::size_t num_columns() const { return num_columns_; }

    /// Append a row of kInfinity except dist[self] = 0. Rows are indexed by
    /// LocalId in creation order, matching LocalSubgraph::adopt order.
    LocalId add_row(VertexId self);

    /// Grow every row (and the column space) to `new_count` columns.
    void grow_columns(std::size_t new_count);

    std::span<const Weight> row(LocalId r) const {
        AA_ASSERT(r < rows_.size());
        return rows_[r].dist;
    }

    Weight at(LocalId r, VertexId col) const {
        AA_ASSERT(r < rows_.size() && col < num_columns_);
        return rows_[r].dist[col];
    }

    /// Attempt to lower row r's entry for `col` to `candidate`. On success
    /// marks the column in the prop and/or send dirty sets. Returns true if
    /// the value improved.
    bool relax(LocalId r, VertexId col, Weight candidate, bool mark_prop = true,
               bool mark_send = true);

    /// Drain the propagation worklist of row r (columns changed since last
    /// local propagation). Clears the set.
    std::vector<VertexId> take_prop(LocalId r);

    /// Drain the send worklist of row r.
    std::vector<VertexId> take_send(LocalId r);

    bool has_prop(LocalId r) const { return !rows_[r].prop_cols.empty(); }
    bool has_send(LocalId r) const { return !rows_[r].send_cols.empty(); }

    /// Any row with unsent changes?
    bool any_send_pending() const;
    /// Any row with unpropagated changes?
    bool any_prop_pending() const;

    /// Mark every finite entry of row r as needing (re)send — used after IA
    /// and when a row gains a new neighbouring rank (the paper's "start
    /// sending DV" notification).
    void mark_row_for_send(LocalId r);

    /// Mark every finite entry of row r for local propagation — used after
    /// Repartition-S rebuilds rank state: newly co-located rows have never
    /// been relaxed against each other, so a full local sweep is owed.
    void mark_row_for_prop(LocalId r);

    /// Install a full row received via migration (Repartition-S). Overwrites
    /// (the incoming row is the authoritative state for that vertex).
    void install_row(LocalId r, std::vector<Weight> values);

    /// Move row r out (for migration); the row remains but is reset to
    /// infinity. Returns the values.
    std::vector<Weight> extract_row(LocalId r);

    /// Collect (column, distance) pairs of all finite entries of row r.
    std::vector<DvEntry> finite_entries(LocalId r) const;

private:
    struct Row {
        VertexId self{kInvalidVertex};
        std::vector<Weight> dist;
        std::vector<VertexId> prop_cols;
        std::vector<VertexId> send_cols;
        std::vector<std::uint8_t> in_prop;  // bitmap over columns
        std::vector<std::uint8_t> in_send;
    };

    std::vector<Row> rows_;
    std::size_t num_columns_{0};
};

}  // namespace aa
