// Fully-dynamic shrink updates: edge/vertex deletions and weight increases.
//
// The growth path (core/edge_add.cpp) relies on monotone distance decreases;
// a deletion or weight increase breaks that invariant, so the engine follows
// the SSSP-Del recipe (PAPERS.md, arXiv 2508.14319) in two phases:
//
//   1. invalidate — every (source, target) entry whose current estimate was
//      supported by a deleted/raised edge is reset to unknown. Candidates are
//      seeded at the affected edges' endpoints (an entry d(u, t) is *suspect*
//      iff d(u, t) >= w_old + d(v, t), the floating-point inequality every
//      estimate routed through the edge satisfies exactly, because rows only
//      ever decreased since the estimate was written). A suspect survives if
//      some remaining neighbour still supports it; otherwise it is reset via
//      DistanceStore::mark_invalidated and the raise cascades to the
//      neighbours that depended on it — across ranks as ShrinkRaise messages
//      carrying the pre-raise value, encoded with the same boundary-block
//      codecs (both wire formats) as the regular RC exchange.
//
//   2. re-settle — the surviving frontier is re-marked into the ordinary
//      prop/send worklists (a finite neighbour of an invalidated entry owes
//      it a relaxation; a finite cut-edge endpoint owes the invalidating rank
//      a resend), after which the unchanged RC machinery — sync or rc_async,
//      either backend, either wire format — reconverges by monotone decrease.
//
// Over-invalidation is harmless (re-settlement relearns it); the design only
// has to avoid *under*-invalidation, which the support inequality guarantees
// in exact arithmetic and — because estimates are written as single
// floating-point sums and only ever decrease — in IEEE arithmetic as well.
// With non-uniform weights a support chain's value can differ from the
// re-derived sum by association order (same class of noise as the relaxation
// epsilon); with uniform weights every quantity is an exact small integer and
// the converged state is bit-identical to a from-scratch engine on the final
// graph, which is the acceptance bar the lattice tests enforce.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace aa {

/// A batch of shrinking updates applied atomically by
/// AnytimeEngine::apply_deletion.
struct ShrinkBatch {
    /// Edges to remove (the weight field is ignored). Edges not present in
    /// the graph — including edges deleted earlier — are skipped silently.
    std::vector<Edge> deletions;
    /// Vertices to delete. Vertex ids are stable (flat per-vertex arrays
    /// depend on dense ids), so vertex deletion removes every incident edge
    /// and leaves the id in place, isolated: its distances converge to
    /// infinity everywhere and it stops contributing to closeness.
    std::vector<VertexId> vertices;
    /// Weight changes, weight = the new weight. Increases run through the
    /// invalidate/re-settle machinery; decreases through the growth-path
    /// broadcast (deferred until after the cascade so no stale-low value is
    /// broadcast); absent edges are skipped.
    std::vector<Edge> reweights;
};

/// Counters describing one apply_deletion call.
struct ShrinkReport {
    std::size_t edges_removed{0};
    std::size_t weight_increases{0};
    std::size_t weight_decreases{0};
    /// Suspect (row, column) pairs flagged by the seed scan at the affected
    /// edges' endpoints.
    std::size_t seed_suspects{0};
    /// Entries reset to infinity by the invalidation cascade.
    std::size_t invalidated_entries{0};
    /// Cascade rounds (support-check sweep + raise exchange) until fixpoint.
    std::size_t cascade_rounds{0};
};

}  // namespace aa
