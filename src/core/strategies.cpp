#include "core/strategies.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "partition/multilevel.hpp"
#include "partition/partition.hpp"

namespace aa {

// ---- RoundRobin-PS ---------------------------------------------------------

std::vector<RankId> RoundRobinPS::assignment(std::size_t count,
                                             std::uint32_t num_ranks,
                                             std::uint32_t offset) {
    AA_ASSERT(num_ranks >= 1);
    std::vector<RankId> out(count);
    for (std::size_t i = 0; i < count; ++i) {
        out[i] = static_cast<RankId>((i + offset) % num_ranks);
    }
    return out;
}

void RoundRobinPS::apply(AnytimeEngine& engine, const GrowthBatch& batch) {
    const auto num_ranks = static_cast<std::uint32_t>(engine.num_ranks());
    const auto assign = assignment(batch.num_new, num_ranks, offset_);
    offset_ = static_cast<std::uint32_t>((offset_ + batch.num_new) % num_ranks);
    // O(k) assignment cost on every rank (each computes the trivial rule).
    for (RankId r = 0; r < num_ranks; ++r) {
        engine.cluster().charge_compute(r, static_cast<double>(batch.num_new));
    }
    engine.anywhere_add(batch, assign);
}

// ---- CutEdge-PS ------------------------------------------------------------

std::vector<RankId> CutEdgePS::assignment(const AnytimeEngine& engine,
                                          const GrowthBatch& batch) {
    const auto num_ranks = static_cast<std::uint32_t>(engine.num_ranks());
    const std::size_t k = batch.num_new;
    if (k == 0) {
        return {};
    }

    // The batch's internal graph: new vertices re-indexed to [0, k), edges
    // whose endpoints are both new.
    DynamicGraph internal(k);
    for (const Edge& e : batch.edges) {
        if (e.u >= batch.base_id && e.v >= batch.base_id) {
            internal.add_edge(e.u - batch.base_id, e.v - batch.base_id, e.weight);
        }
    }

    // Every processor computes a METIS partition of the batch and the best
    // cut wins (paper §V.A); we emulate with `candidates` independent seeds.
    const std::size_t candidates = candidates_ > 0 ? candidates_ : num_ranks;
    Partitioning best;
    std::size_t best_cut = std::numeric_limits<std::size_t>::max();
    for (std::size_t c = 0; c < candidates; ++c) {
        Rng candidate_rng = rng_.fork();
        Partitioning p = multilevel_partition(internal, num_ranks, candidate_rng);
        const std::size_t cut = count_cut_edges(internal, p);
        if (cut < best_cut) {
            best_cut = cut;
            best = std::move(p);
        }
    }

    // Map batch parts onto ranks: a part goes to the rank whose existing
    // vertices it shares the most host edges with (greedy max-affinity,
    // one part per rank), so anchor edges become internal rather than cut.
    const auto& owners = engine.owners();
    std::vector<std::vector<double>> affinity(num_ranks,
                                              std::vector<double>(num_ranks, 0));
    for (const Edge& e : batch.edges) {
        const bool u_new = e.u >= batch.base_id;
        const bool v_new = e.v >= batch.base_id;
        if (u_new != v_new) {  // host anchor edge
            const VertexId nv = u_new ? e.u : e.v;
            const VertexId host = u_new ? e.v : e.u;
            const RankId part = best.assignment[nv - batch.base_id];
            affinity[part][owners[host]] += 1;
        }
    }
    std::vector<RankId> part_to_rank(num_ranks, kInvalidVertex);
    std::vector<bool> rank_used(num_ranks, false);
    for (std::uint32_t round = 0; round < num_ranks; ++round) {
        double best_aff = -1;
        std::uint32_t best_part = 0;
        RankId best_rank = 0;
        for (std::uint32_t part = 0; part < num_ranks; ++part) {
            if (part_to_rank[part] != kInvalidVertex) {
                continue;
            }
            for (RankId r = 0; r < num_ranks; ++r) {
                if (!rank_used[r] && affinity[part][r] > best_aff) {
                    best_aff = affinity[part][r];
                    best_part = part;
                    best_rank = r;
                }
            }
        }
        part_to_rank[best_part] = best_rank;
        rank_used[best_rank] = true;
    }

    std::vector<RankId> assign(k);
    for (std::size_t i = 0; i < k; ++i) {
        assign[i] = part_to_rank[best.assignment[i]];
    }
    return assign;
}

void CutEdgePS::apply(AnytimeEngine& engine, const GrowthBatch& batch) {
    const auto num_ranks = static_cast<std::uint32_t>(engine.num_ranks());
    std::size_t internal_edges = 0;
    for (const Edge& e : batch.edges) {
        if (e.u >= batch.base_id && e.v >= batch.base_id) {
            ++internal_edges;
        }
    }
    // Each rank computes one candidate METIS partition of the batch graph.
    const double units =
        static_cast<double>(batch.num_new + internal_edges) *
        std::log2(static_cast<double>(std::max<std::size_t>(batch.num_new, 2)));
    for (RankId r = 0; r < num_ranks; ++r) {
        engine.cluster().charge_compute(
            r, engine.config().partition_cost_factor * units);
    }
    engine.anywhere_add(batch, assignment(engine, batch));
}

// ---- Repartition-S ---------------------------------------------------------

void RepartitionS::apply(AnytimeEngine& engine, const GrowthBatch& batch) {
    engine.repartition_add(batch);
}

}  // namespace aa
