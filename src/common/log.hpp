// Minimal leveled logging to stderr. Benchmarks and examples use Info;
// the library itself only logs at Debug so that default runs stay quiet.
//
// Formatting uses "{}" placeholders filled left to right (std::format is not
// available on the GCC 12 toolchain this builds on).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace aa {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {

void log_emit(LogLevel level, std::string_view message);

inline void format_into(std::ostringstream& out, std::string_view fmt) {
    out << fmt;
}

template <typename First, typename... Rest>
void format_into(std::ostringstream& out, std::string_view fmt, const First& first,
                 const Rest&... rest) {
    const std::size_t pos = fmt.find("{}");
    if (pos == std::string_view::npos) {
        out << fmt;
        return;
    }
    out << fmt.substr(0, pos) << first;
    format_into(out, fmt.substr(pos + 2), rest...);
}

}  // namespace detail

/// Format "{}" placeholders with the arguments, in order.
template <typename... Args>
std::string format(std::string_view fmt, const Args&... args) {
    std::ostringstream out;
    detail::format_into(out, fmt, args...);
    return out.str();
}

template <typename... Args>
void log(LogLevel level, std::string_view fmt, const Args&... args) {
    if (level < log_level()) {
        return;
    }
    detail::log_emit(level, format(fmt, args...));
}

template <typename... Args>
void log_debug(std::string_view fmt, const Args&... args) {
    log(LogLevel::Debug, fmt, args...);
}
template <typename... Args>
void log_info(std::string_view fmt, const Args&... args) {
    log(LogLevel::Info, fmt, args...);
}
template <typename... Args>
void log_warn(std::string_view fmt, const Args&... args) {
    log(LogLevel::Warn, fmt, args...);
}
template <typename... Args>
void log_error(std::string_view fmt, const Args&... args) {
    log(LogLevel::Error, fmt, args...);
}

}  // namespace aa
