// MetricsRegistry: the observability layer for the anytime engine.
//
// The paper's whole claim is *anytime* behaviour — solution quality as a
// function of elapsed (simulated) time — so the engine records where that
// time goes as a stream of *spans* on the simulated clock: one span per
// phase (DD, per-rank IA), per RC-step sub-phase (post / exchange / ingest /
// propagate, per rank), and per dynamic-addition event (with its strategy,
// moved-vertex count and new cut edges as attributes). Alongside spans the
// registry keeps plain counters, gauges and fixed-bucket histograms for
// scalar facts (per-rank traffic, exchange payload distributions).
//
// Cost discipline: a registry is *disabled* by default and then performs no
// allocation and no work beyond one branch per call — every register/record
// entry point starts with `if (!enabled_) return kNullHandle;`. Hot kernels
// (the RC relaxation loops) are never instrumented at all; spans wrap whole
// per-rank phase calls, so even an enabled registry adds O(ranks) work per
// RC step, not O(relaxations).
//
// Spans nest (LIFO): `span_open` inside an open span records the parent and
// depth, which the exporters preserve so a timeline viewer can reconstruct
// the tree (e.g. `add` > `repartition.migrate`). Times are whatever clock
// the caller passes — the engine passes simulated seconds; wall-clock
// benches pass host seconds.
//
// Exporters: `metrics_to_json` renders the full registry; `spans_to_csv` /
// `spans_from_csv` are a lossless round-trip for the span stream (the format
// external tooling ingests). The engine-level timeline schema built on top
// of these lives in core/telemetry.hpp.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace aa {

/// One closed (or still-open) phase interval on some clock.
struct MetricSpan {
    std::string name;
    /// Rank the span belongs to; -1 = collective / engine-global.
    std::int32_t rank{-1};
    /// RC step the span belongs to; -1 = outside the RC stepping loop.
    std::int64_t step{-1};
    /// Nesting depth at open (0 = top level) and parent span index
    /// (-1 = none): together they encode the span tree.
    std::uint32_t depth{0};
    std::int64_t parent{-1};
    double t_begin{0};
    double t_end{0};
    /// Work accounted to the span (abstract ops, payload traffic).
    double ops{0};
    std::uint64_t bytes{0};
    std::uint64_t messages{0};
    /// Free-form (key, value) annotations, e.g. {"strategy", "CutEdge-PS"}.
    std::vector<std::pair<std::string, std::string>> attrs;

    friend bool operator==(const MetricSpan&, const MetricSpan&) = default;
};

class MetricsRegistry {
public:
    using Handle = std::uint32_t;
    static constexpr Handle kNullHandle = std::numeric_limits<Handle>::max();

    struct CounterValue {
        std::string name;
        std::int32_t rank{-1};
        double value{0};
        bool is_gauge{false};
    };
    struct HistogramValue {
        std::string name;
        /// Upper bounds of the finite buckets; an implicit +inf bucket
        /// follows. counts.size() == bounds.size() + 1.
        std::vector<double> bounds;
        std::vector<std::uint64_t> counts;
        double sum{0};
        std::uint64_t observations{0};
    };

    MetricsRegistry() = default;

    /// Disabled registries ignore every call below without allocating.
    /// Register instruments only after enabling: handles minted while
    /// disabled are kNullHandle and stay inert if the registry is enabled
    /// later.
    void enable() { enabled_ = true; }
    void disable() { enabled_ = false; }
    bool enabled() const { return enabled_; }

    // ---- counters & gauges -------------------------------------------------

    /// Find-or-create a monotonically accumulating counter. `rank` = -1 for
    /// cluster-global counters.
    Handle counter(std::string_view name, std::int32_t rank = -1);
    /// Find-or-create a last-value-wins gauge.
    Handle gauge(std::string_view name, std::int32_t rank = -1);
    void add(Handle h, double delta);
    void set(Handle h, double value);
    double value(Handle h) const;

    // ---- histograms --------------------------------------------------------

    /// Find-or-create (by name) a histogram with the given finite bucket
    /// upper bounds (ascending); values above the last bound land in an
    /// implicit overflow bucket.
    Handle histogram(std::string_view name, std::span<const double> bounds);
    void observe(Handle h, double value);

    // ---- spans -------------------------------------------------------------

    /// Open a span at time `t_begin`. Spans close LIFO (assert-checked).
    Handle span_open(std::string_view name, std::int32_t rank = -1,
                     std::int64_t step = -1, double t_begin = 0);
    /// Accumulate work onto an open span.
    void span_add(Handle h, double ops, std::uint64_t bytes = 0,
                  std::uint64_t messages = 0);
    /// Annotate an open or closed span.
    void span_attr(Handle h, std::string_view key, std::string value);
    void span_close(Handle h, double t_end);
    /// One-shot convenience for spans whose bounds are already known.
    void record_span(MetricSpan span);

    // ---- introspection & lifecycle ----------------------------------------

    const std::vector<MetricSpan>& spans() const { return spans_; }
    std::size_t open_span_count() const { return open_stack_.size(); }
    std::vector<CounterValue> counters() const;
    std::vector<HistogramValue> histograms() const;

    /// Drop all recorded data (instruments and spans); keeps enablement.
    void clear();

private:
    bool enabled_{false};
    std::vector<MetricSpan> spans_;
    std::vector<std::uint32_t> open_stack_;
    std::vector<CounterValue> counters_;
    std::vector<HistogramValue> histograms_;
};

// ---- exporters -------------------------------------------------------------

/// Escape a string for embedding in a JSON string literal (quotes excluded).
std::string json_escape(std::string_view s);

/// Render one span as a JSON object. `indent` spaces prefix every line when
/// `pretty`; single-line otherwise.
std::string span_to_json(const MetricSpan& span);

/// Render a span list as a JSON array (one span per line, `indent` spaces of
/// leading indentation for each element).
std::string spans_to_json(std::span<const MetricSpan> spans, int indent = 2);

/// Full registry dump: {"enabled":..., "spans":[...], "counters":[...],
/// "histograms":[...]}.
std::string metrics_to_json(const MetricsRegistry& m, int indent = 0);

/// CSV with header `name,rank,step,depth,parent,t_begin,t_end,ops,bytes,
/// messages,attrs`; attrs is `k=v;k=v` with %-escaping of the delimiter
/// characters. Lossless: `spans_from_csv(spans_to_csv(s)) == s`.
std::string spans_to_csv(std::span<const MetricSpan> spans);
std::vector<MetricSpan> spans_from_csv(std::string_view csv);

}  // namespace aa
