#include "common/metrics.hpp"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace aa {

namespace {

// Locale-independent shortest-round-trip double formatting. %.17g is always
// enough for a bit-exact parse back; try shorter forms first so exported
// files stay readable (0.25 instead of 0.25000000000000000).
std::string format_double(double v) {
    char buf[64];
    for (int prec = 6; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v) break;
    }
    return buf;
}

bool same_instrument(const MetricsRegistry::CounterValue& c,
                     std::string_view name, std::int32_t rank, bool gauge) {
    return c.is_gauge == gauge && c.rank == rank && c.name == name;
}

}  // namespace

MetricsRegistry::Handle MetricsRegistry::counter(std::string_view name,
                                                std::int32_t rank) {
    if (!enabled_) return kNullHandle;
    for (std::size_t i = 0; i < counters_.size(); ++i) {
        if (same_instrument(counters_[i], name, rank, false)) {
            return static_cast<Handle>(i);
        }
    }
    counters_.push_back({std::string(name), rank, 0.0, false});
    return static_cast<Handle>(counters_.size() - 1);
}

MetricsRegistry::Handle MetricsRegistry::gauge(std::string_view name,
                                               std::int32_t rank) {
    if (!enabled_) return kNullHandle;
    for (std::size_t i = 0; i < counters_.size(); ++i) {
        if (same_instrument(counters_[i], name, rank, true)) {
            return static_cast<Handle>(i);
        }
    }
    counters_.push_back({std::string(name), rank, 0.0, true});
    return static_cast<Handle>(counters_.size() - 1);
}

void MetricsRegistry::add(Handle h, double delta) {
    if (!enabled_ || h == kNullHandle) return;
    assert(h < counters_.size());
    counters_[h].value += delta;
}

void MetricsRegistry::set(Handle h, double value) {
    if (!enabled_ || h == kNullHandle) return;
    assert(h < counters_.size());
    counters_[h].value = value;
}

double MetricsRegistry::value(Handle h) const {
    if (h == kNullHandle || h >= counters_.size()) return 0.0;
    return counters_[h].value;
}

MetricsRegistry::Handle MetricsRegistry::histogram(
    std::string_view name, std::span<const double> bounds) {
    if (!enabled_) return kNullHandle;
    for (std::size_t i = 0; i < histograms_.size(); ++i) {
        if (histograms_[i].name == name) return static_cast<Handle>(i);
    }
    HistogramValue h;
    h.name = std::string(name);
    h.bounds.assign(bounds.begin(), bounds.end());
    h.counts.assign(bounds.size() + 1, 0);
    histograms_.push_back(std::move(h));
    return static_cast<Handle>(histograms_.size() - 1);
}

void MetricsRegistry::observe(Handle h, double value) {
    if (!enabled_ || h == kNullHandle) return;
    assert(h < histograms_.size());
    HistogramValue& hist = histograms_[h];
    std::size_t bucket = 0;
    while (bucket < hist.bounds.size() && value > hist.bounds[bucket]) {
        ++bucket;
    }
    ++hist.counts[bucket];
    hist.sum += value;
    ++hist.observations;
}

MetricsRegistry::Handle MetricsRegistry::span_open(std::string_view name,
                                                   std::int32_t rank,
                                                   std::int64_t step,
                                                   double t_begin) {
    if (!enabled_) return kNullHandle;
    MetricSpan span;
    span.name = std::string(name);
    span.rank = rank;
    span.step = step;
    span.depth = static_cast<std::uint32_t>(open_stack_.size());
    span.parent = open_stack_.empty()
                      ? -1
                      : static_cast<std::int64_t>(open_stack_.back());
    span.t_begin = t_begin;
    span.t_end = t_begin;
    spans_.push_back(std::move(span));
    Handle h = static_cast<Handle>(spans_.size() - 1);
    open_stack_.push_back(h);
    return h;
}

void MetricsRegistry::span_add(Handle h, double ops, std::uint64_t bytes,
                               std::uint64_t messages) {
    if (!enabled_ || h == kNullHandle) return;
    assert(h < spans_.size());
    spans_[h].ops += ops;
    spans_[h].bytes += bytes;
    spans_[h].messages += messages;
}

void MetricsRegistry::span_attr(Handle h, std::string_view key,
                                std::string value) {
    if (!enabled_ || h == kNullHandle) return;
    assert(h < spans_.size());
    spans_[h].attrs.emplace_back(std::string(key), std::move(value));
}

void MetricsRegistry::span_close(Handle h, double t_end) {
    if (!enabled_ || h == kNullHandle) return;
    assert(!open_stack_.empty() && open_stack_.back() == h &&
           "spans must close LIFO");
    open_stack_.pop_back();
    spans_[h].t_end = t_end;
}

void MetricsRegistry::record_span(MetricSpan span) {
    if (!enabled_) return;
    span.depth = static_cast<std::uint32_t>(open_stack_.size());
    span.parent = open_stack_.empty()
                      ? -1
                      : static_cast<std::int64_t>(open_stack_.back());
    spans_.push_back(std::move(span));
}

std::vector<MetricsRegistry::CounterValue> MetricsRegistry::counters() const {
    return counters_;
}

std::vector<MetricsRegistry::HistogramValue> MetricsRegistry::histograms()
    const {
    return histograms_;
}

void MetricsRegistry::clear() {
    spans_.clear();
    open_stack_.clear();
    counters_.clear();
    histograms_.clear();
}

// ---- exporters -------------------------------------------------------------

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned char>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string span_to_json(const MetricSpan& s) {
    std::string out = "{\"name\":\"" + json_escape(s.name) + "\"";
    out += ",\"rank\":" + std::to_string(s.rank);
    out += ",\"step\":" + std::to_string(s.step);
    out += ",\"depth\":" + std::to_string(s.depth);
    out += ",\"parent\":" + std::to_string(s.parent);
    out += ",\"t_begin\":" + format_double(s.t_begin);
    out += ",\"t_end\":" + format_double(s.t_end);
    out += ",\"ops\":" + format_double(s.ops);
    out += ",\"bytes\":" + std::to_string(s.bytes);
    out += ",\"messages\":" + std::to_string(s.messages);
    if (!s.attrs.empty()) {
        out += ",\"attrs\":{";
        bool first = true;
        for (const auto& [k, v] : s.attrs) {
            if (!first) out += ",";
            first = false;
            out += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
        }
        out += "}";
    }
    out += "}";
    return out;
}

std::string spans_to_json(std::span<const MetricSpan> spans, int indent) {
    std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent), ' ');
    std::string out = "[";
    for (std::size_t i = 0; i < spans.size(); ++i) {
        out += (i == 0 ? "\n" : ",\n");
        out += pad + span_to_json(spans[i]);
    }
    if (!spans.empty()) out += "\n" + std::string(pad.size() >= 2 ? pad.size() - 2 : 0, ' ');
    out += "]";
    return out;
}

std::string metrics_to_json(const MetricsRegistry& m, int indent) {
    std::string pad(static_cast<std::size_t>(indent < 0 ? 0 : indent), ' ');
    std::string inner = pad + "  ";
    std::string out = "{\n";
    out += inner + "\"enabled\": " + (m.enabled() ? "true" : "false") + ",\n";
    out += inner + "\"spans\": " + spans_to_json(m.spans(), indent + 4) + ",\n";
    out += inner + "\"counters\": [";
    const auto counters = m.counters();
    for (std::size_t i = 0; i < counters.size(); ++i) {
        out += (i == 0 ? "\n" : ",\n");
        out += inner + "  {\"name\":\"" + json_escape(counters[i].name) +
               "\",\"rank\":" + std::to_string(counters[i].rank) +
               ",\"kind\":\"" + (counters[i].is_gauge ? "gauge" : "counter") +
               "\",\"value\":" + format_double(counters[i].value) + "}";
    }
    if (!counters.empty()) out += "\n" + inner;
    out += "],\n";
    out += inner + "\"histograms\": [";
    const auto hists = m.histograms();
    for (std::size_t i = 0; i < hists.size(); ++i) {
        out += (i == 0 ? "\n" : ",\n");
        out += inner + "  {\"name\":\"" + json_escape(hists[i].name) +
               "\",\"bounds\":[";
        for (std::size_t b = 0; b < hists[i].bounds.size(); ++b) {
            if (b) out += ",";
            out += format_double(hists[i].bounds[b]);
        }
        out += "],\"counts\":[";
        for (std::size_t b = 0; b < hists[i].counts.size(); ++b) {
            if (b) out += ",";
            out += std::to_string(hists[i].counts[b]);
        }
        out += "],\"sum\":" + format_double(hists[i].sum) +
               ",\"observations\":" + std::to_string(hists[i].observations) +
               "}";
    }
    if (!hists.empty()) out += "\n" + inner;
    out += "]\n" + pad + "}";
    return out;
}

namespace {

// Percent-escape the CSV/attr delimiter set so attr keys/values survive the
// `k=v;k=v` packing inside one comma-separated field.
std::string attr_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '%' || c == ',' || c == ';' || c == '=' || c == '\n' ||
            c == '\r') {
            char buf[4];
            std::snprintf(buf, sizeof buf, "%%%02X",
                          static_cast<unsigned char>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string attr_unescape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '%' && i + 2 < s.size()) {
            char hex[3] = {s[i + 1], s[i + 2], '\0'};
            out += static_cast<char>(std::strtoul(hex, nullptr, 16));
            i += 2;
        } else {
            out += s[i];
        }
    }
    return out;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
    std::vector<std::string_view> parts;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos) {
            parts.push_back(s.substr(start));
            break;
        }
        parts.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return parts;
}

}  // namespace

std::string spans_to_csv(std::span<const MetricSpan> spans) {
    std::string out =
        "name,rank,step,depth,parent,t_begin,t_end,ops,bytes,messages,attrs\n";
    for (const MetricSpan& s : spans) {
        out += attr_escape(s.name);
        out += "," + std::to_string(s.rank);
        out += "," + std::to_string(s.step);
        out += "," + std::to_string(s.depth);
        out += "," + std::to_string(s.parent);
        out += "," + format_double(s.t_begin);
        out += "," + format_double(s.t_end);
        out += "," + format_double(s.ops);
        out += "," + std::to_string(s.bytes);
        out += "," + std::to_string(s.messages);
        out += ",";
        for (std::size_t i = 0; i < s.attrs.size(); ++i) {
            if (i) out += ";";
            out += attr_escape(s.attrs[i].first) + "=" +
                   attr_escape(s.attrs[i].second);
        }
        out += "\n";
    }
    return out;
}

std::vector<MetricSpan> spans_from_csv(std::string_view csv) {
    std::vector<MetricSpan> spans;
    bool header = true;
    for (std::string_view line : split(csv, '\n')) {
        if (header) {
            header = false;
            continue;
        }
        if (line.empty()) continue;
        auto fields = split(line, ',');
        if (fields.size() != 11) continue;
        MetricSpan s;
        s.name = attr_unescape(fields[0]);
        s.rank = static_cast<std::int32_t>(
            std::strtol(std::string(fields[1]).c_str(), nullptr, 10));
        s.step = std::strtoll(std::string(fields[2]).c_str(), nullptr, 10);
        s.depth = static_cast<std::uint32_t>(
            std::strtoul(std::string(fields[3]).c_str(), nullptr, 10));
        s.parent = std::strtoll(std::string(fields[4]).c_str(), nullptr, 10);
        s.t_begin = std::strtod(std::string(fields[5]).c_str(), nullptr);
        s.t_end = std::strtod(std::string(fields[6]).c_str(), nullptr);
        s.ops = std::strtod(std::string(fields[7]).c_str(), nullptr);
        s.bytes = std::strtoull(std::string(fields[8]).c_str(), nullptr, 10);
        s.messages =
            std::strtoull(std::string(fields[9]).c_str(), nullptr, 10);
        if (!fields[10].empty()) {
            for (std::string_view pair : split(fields[10], ';')) {
                std::size_t eq = pair.find('=');
                if (eq == std::string_view::npos) continue;
                s.attrs.emplace_back(attr_unescape(pair.substr(0, eq)),
                                     attr_unescape(pair.substr(eq + 1)));
            }
        }
        spans.push_back(std::move(s));
    }
    return spans;
}

}  // namespace aa
