#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace aa {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO";
        case LogLevel::Warn: return "WARN";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF";
    }
    return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_emit(LogLevel level, std::string_view message) {
    std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
                 static_cast<int>(message.size()), message.data());
}
}  // namespace detail

}  // namespace aa
