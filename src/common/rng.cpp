#include "common/rng.hpp"

namespace aa {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) {
        word = splitmix64(sm);
    }
    // Avoid the all-zero state, which xoshiro cannot escape.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
        s_[0] = 1;
    }
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
    AA_ASSERT_MSG(bound > 0, "uniform() requires bound > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) mod bound
    for (;;) {
        const std::uint64_t r = (*this)();
        if (r >= threshold) {
            return r % bound;
        }
    }
}

}  // namespace aa
