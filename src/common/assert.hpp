// Lightweight contract checking. AA_ASSERT is active in all build types:
// the invariants it guards (distance monotonicity, id-mapping consistency)
// are cheap relative to the O(n^2) work around them and catching violations
// in RelWithDebInfo bench runs is worth the cost.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace aa::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
    std::fprintf(stderr, "AA_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
                 msg != nullptr ? msg : "");
    std::abort();
}

}  // namespace aa::detail

#define AA_ASSERT(expr)                                                      \
    ((expr) ? static_cast<void>(0)                                           \
            : ::aa::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define AA_ASSERT_MSG(expr, msg)                                             \
    ((expr) ? static_cast<void>(0)                                           \
            : ::aa::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)))
