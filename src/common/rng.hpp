// Deterministic pseudo-random number generation.
//
// All stochastic components (graph generators, random partitioners, workload
// builders) take an explicit Rng so that every experiment is reproducible from
// a single seed. The engine itself is fully deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace aa {

/// xoshiro256** with splitmix64 seeding. Satisfies
/// std::uniform_random_bit_generator.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

    void reseed(std::uint64_t seed);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~std::uint64_t{0}; }

    result_type operator()() {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). bound must be > 0.
    std::uint64_t uniform(std::uint64_t bound);

    /// Uniform double in [0, 1).
    double uniform01() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

    /// Bernoulli trial with success probability p.
    bool chance(double p) { return uniform01() < p; }

    /// In-place Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& items) {
        for (std::size_t i = items.size(); i > 1; --i) {
            using std::swap;
            swap(items[i - 1], items[uniform(i)]);
        }
    }

    /// Derive an independent child stream (for per-component seeding).
    Rng fork() { return Rng((*this)() ^ 0xA3EC647659359ACDull); }

private:
    static std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4]{};
};

}  // namespace aa
