// Fundamental scalar types shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace aa {

/// Global vertex identifier. Vertices are densely numbered [0, n).
using VertexId = std::uint32_t;

/// Local (per-rank) vertex index within a sub-graph.
using LocalId = std::uint32_t;

/// Rank (simulated processor) identifier.
using RankId = std::uint32_t;

/// Edge weight / shortest-path distance. Non-negative.
using Weight = double;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// Sentinel for "unknown / unreachable" distance.
inline constexpr Weight kInfinity = std::numeric_limits<Weight>::infinity();

/// An undirected weighted edge between global vertex ids.
struct Edge {
    VertexId u{kInvalidVertex};
    VertexId v{kInvalidVertex};
    Weight weight{1.0};

    friend bool operator==(const Edge&, const Edge&) = default;
};

}  // namespace aa
