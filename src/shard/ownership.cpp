#include "shard/ownership.hpp"

namespace aa {

ShardOwnership::ShardOwnership(std::vector<ShardId> shard_of,
                               std::vector<RankId> shard_to_rank,
                               std::uint32_t shards_per_rank)
    : shard_of_(std::move(shard_of)),
      shard_to_rank_(std::move(shard_to_rank)),
      shards_per_rank_(shards_per_rank == 0 ? 1 : shards_per_rank) {
    for (const ShardId s : shard_of_) {
        AA_ASSERT_MSG(s < shard_to_rank_.size(), "vertex maps to unknown shard");
    }
}

ShardOwnership ShardOwnership::from_partition(std::span<const RankId> owners,
                                              std::uint32_t num_ranks,
                                              std::uint32_t shards_per_rank) {
    ShardOwnership o;
    o.shards_per_rank_ = shards_per_rank == 0 ? 1 : shards_per_rank;
    o.shard_to_rank_.resize(static_cast<std::size_t>(num_ranks) * o.shards_per_rank_);
    for (RankId r = 0; r < num_ranks; ++r) {
        for (std::uint32_t j = 0; j < o.shards_per_rank_; ++j) {
            o.shard_to_rank_[static_cast<std::size_t>(r) * o.shards_per_rank_ + j] = r;
        }
    }
    o.shard_of_.resize(owners.size());
    std::vector<std::uint32_t> dealt(num_ranks, 0);
    for (VertexId v = 0; v < owners.size(); ++v) {
        const RankId r = owners[v];
        AA_ASSERT_MSG(r < num_ranks, "assignment names a rank beyond num_ranks");
        o.shard_of_[v] = static_cast<ShardId>(r) * o.shards_per_rank_ +
                         dealt[r]++ % o.shards_per_rank_;
    }
    return o;
}

void ShardOwnership::extend(std::span<const RankId> new_owners) {
    const auto base = static_cast<VertexId>(shard_of_.size());
    shard_of_.reserve(shard_of_.size() + new_owners.size());
    for (std::size_t i = 0; i < new_owners.size(); ++i) {
        shard_of_.push_back(
            shard_for_new_vertex(base + static_cast<VertexId>(i), new_owners[i]));
    }
}

ShardId ShardOwnership::shard_for_new_vertex(VertexId v, RankId rank) {
    std::uint32_t count = 0;
    for (const RankId r : shard_to_rank_) {
        count += r == rank ? 1 : 0;
    }
    if (count == 0) {
        shard_to_rank_.push_back(rank);
        return static_cast<ShardId>(shard_to_rank_.size() - 1);
    }
    // The (v mod count)-th of the rank's shards in ascending ShardId order.
    // Before any migration, rank r's shards are exactly [r*S, (r+1)*S), so
    // this reduces to r*S + v%S — a pure function of the flat assignment,
    // which keeps identity-map runs bit-identical to the pre-shard engine.
    std::uint32_t pick = static_cast<std::uint32_t>(v % count);
    for (ShardId s = 0; s < shard_to_rank_.size(); ++s) {
        if (shard_to_rank_[s] == rank && pick-- == 0) {
            return s;
        }
    }
    AA_ASSERT_MSG(false, "unreachable: rank shard count changed mid-scan");
    return kInvalidShard;
}

std::vector<RankId> ShardOwnership::owners() const {
    std::vector<RankId> flat(shard_of_.size());
    for (std::size_t v = 0; v < shard_of_.size(); ++v) {
        flat[v] = shard_to_rank_[shard_of_[v]];
    }
    return flat;
}

std::vector<VertexId> ShardOwnership::shard_vertices(ShardId s) const {
    std::vector<VertexId> verts;
    for (VertexId v = 0; v < shard_of_.size(); ++v) {
        if (shard_of_[v] == s) {
            verts.push_back(v);
        }
    }
    return verts;
}

std::vector<std::size_t> ShardOwnership::shard_sizes() const {
    std::vector<std::size_t> sizes(shard_to_rank_.size(), 0);
    for (const ShardId s : shard_of_) {
        ++sizes[s];
    }
    return sizes;
}

}  // namespace aa
