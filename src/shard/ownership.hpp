// Logical-shard ownership: the two-level vertex -> shard -> rank indirection
// that decouples *what* a rank owns from *which* rank that is.
//
// The flat `owners_[v] -> RankId` map the engine used through PR 8 bakes the
// physical rank into every vertex, so any ownership change is a stop-the-world
// repartition (rebuild every subgraph, re-route every row). Splitting the map
// into
//
//   shard_of_[v]      : VertexId -> ShardId   (stable, fine-grained buckets)
//   shard_to_rank_[s] : ShardId  -> RankId    (small, republishable cheaply)
//
// makes ownership changes O(shards) metadata plus O(moved vertices) state:
// repointing one shard re-routes every vertex in it at once, which is what
// the incremental hotspot migration (shard/migration.hpp, xDGP-style) and a
// future elastic rank count both need.
//
// Bit-identity contract: `from_partition` distributes rank r's vertices
// round-robin over shards [r*S, (r+1)*S), so `owner(v)` resolves to exactly
// the flat map's value for *any* shard granularity S — the refactored engine
// is bit-identical to the pre-shard engine (ops, messages, dirty order, span
// sequence) as long as no shard is repointed. S == 1 degenerates to the old
// one-bucket-per-rank map.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace aa {

/// Logical shard identifier. Shards are densely numbered [0, num_shards).
using ShardId = std::uint32_t;

/// Sentinel for "no shard".
inline constexpr ShardId kInvalidShard = std::numeric_limits<ShardId>::max();

class ShardOwnership {
public:
    ShardOwnership() = default;

    /// Rebuild from explicit tables (checkpoint restore, tests).
    ShardOwnership(std::vector<ShardId> shard_of, std::vector<RankId> shard_to_rank,
                   std::uint32_t shards_per_rank);

    /// Build from a flat partition assignment: rank r gets shards
    /// [r*shards_per_rank, (r+1)*shards_per_rank) and its vertices are dealt
    /// round-robin (in ascending global id) across them, so owner(v) ==
    /// owners[v] for every vertex and every granularity.
    static ShardOwnership from_partition(std::span<const RankId> owners,
                                         std::uint32_t num_ranks,
                                         std::uint32_t shards_per_rank);

    std::size_t num_vertices() const { return shard_of_.size(); }
    std::size_t num_shards() const { return shard_to_rank_.size(); }
    std::uint32_t shards_per_rank() const { return shards_per_rank_; }

    ShardId shard(VertexId v) const {
        AA_ASSERT(v < shard_of_.size());
        return shard_of_[v];
    }
    RankId rank_of(ShardId s) const {
        AA_ASSERT(s < shard_to_rank_.size());
        return shard_to_rank_[s];
    }
    RankId owner(VertexId v) const {
        AA_ASSERT(v < shard_of_.size());
        return shard_to_rank_[shard_of_[v]];
    }
    bool owned_by(VertexId v, RankId rank) const {
        return v < shard_of_.size() && shard_to_rank_[shard_of_[v]] == rank;
    }

    /// Repoint one shard — the whole migration publish step. O(1); every
    /// vertex in the shard re-routes on the next ownership lookup.
    void set_shard_rank(ShardId s, RankId rank) {
        AA_ASSERT(s < shard_to_rank_.size());
        shard_to_rank_[s] = rank;
    }

    /// Register newly added global vertices, one per entry. Each lands in its
    /// owning rank's shard picked by shard_for_new_vertex (deterministic, so
    /// every rank's replica of the map extends identically).
    void extend(std::span<const RankId> new_owners);

    /// Deterministic shard for a new vertex owned by `rank`: the (v mod k)-th
    /// of the rank's k current shards in ascending ShardId order. If the rank
    /// currently maps no shard (possible after migration drained it), a fresh
    /// shard is appended for it.
    ShardId shard_for_new_vertex(VertexId v, RankId rank);

    /// Materialize the flat vertex -> rank map (partition evaluation,
    /// placement strategies).
    std::vector<RankId> owners() const;

    /// Vertices of shard `s`, ascending. O(n) scan — migration-path only.
    std::vector<VertexId> shard_vertices(ShardId s) const;

    /// Per-shard vertex counts.
    std::vector<std::size_t> shard_sizes() const;

    // Raw tables, exposed for checkpointing and telemetry.
    const std::vector<ShardId>& shard_of() const { return shard_of_; }
    const std::vector<RankId>& shard_map() const { return shard_to_rank_; }

    friend bool operator==(const ShardOwnership&, const ShardOwnership&) = default;

private:
    std::vector<ShardId> shard_of_;
    std::vector<RankId> shard_to_rank_;
    std::uint32_t shards_per_rank_{1};
};

}  // namespace aa
