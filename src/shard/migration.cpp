#include "shard/migration.hpp"

#include <algorithm>

namespace aa {

void MigrationPlanner::observe(std::span<const double> rank_ops) {
    if (load_.size() != rank_ops.size()) {
        load_.assign(rank_ops.begin(), rank_ops.end());
        observations_ = 1;
        return;
    }
    for (std::size_t r = 0; r < rank_ops.size(); ++r) {
        load_[r] = (1.0 - alpha_) * load_[r] + alpha_ * rank_ops[r];
    }
    ++observations_;
}

double MigrationPlanner::imbalance() const {
    if (load_.empty()) {
        return 1.0;
    }
    double sum = 0;
    double max = 0;
    for (const double l : load_) {
        sum += l;
        max = std::max(max, l);
    }
    const double mean = sum / static_cast<double>(load_.size());
    return mean > 0 ? max / mean : 1.0;
}

void MigrationPlanner::reset() {
    load_.clear();
    observations_ = 0;
}

std::vector<ShardMove> MigrationPlanner::plan(const ShardOwnership& ownership,
                                              std::span<const double> shard_weights,
                                              std::uint32_t max_moves,
                                              double imbalance_threshold) const {
    std::vector<ShardMove> moves;
    const std::size_t num_ranks = load_.size();
    if (num_ranks < 2 || max_moves == 0) {
        return moves;
    }
    AA_ASSERT(shard_weights.size() == ownership.num_shards());

    // Working copies the greedy loop updates as it commits moves.
    std::vector<double> load = load_;
    std::vector<RankId> shard_rank(ownership.shard_map());
    std::vector<double> rank_weight(num_ranks, 0.0);
    std::vector<std::uint32_t> populated(num_ranks, 0);
    for (ShardId s = 0; s < shard_rank.size(); ++s) {
        const RankId r = shard_rank[s];
        if (r < num_ranks) {
            rank_weight[r] += shard_weights[s];
            populated[r] += shard_weights[s] > 0 ? 1 : 0;
        }
    }

    double mean = 0;
    for (const double l : load) {
        mean += l;
    }
    mean /= static_cast<double>(num_ranks);
    if (mean <= 0) {
        return moves;
    }

    for (std::uint32_t m = 0; m < max_moves; ++m) {
        RankId hot = 0;
        RankId cold = 0;
        for (RankId r = 1; r < num_ranks; ++r) {
            if (load[r] > load[hot]) {
                hot = r;
            }
            if (load[r] < load[cold]) {
                cold = r;
            }
        }
        if (hot == cold || load[hot] < imbalance_threshold * mean) {
            break;
        }
        if (populated[hot] <= 1 || rank_weight[hot] <= 0) {
            break;  // never drain a rank's last populated shard
        }

        // Pick the hot rank's heaviest shard whose attributed load still fits
        // into half the gap (so the move can't overshoot and flip the
        // imbalance); fall back to its lightest shard when even that is too
        // big, as long as moving it strictly shrinks the gap.
        const double gap = load[hot] - load[cold];
        ShardId best_fit = kInvalidShard;
        double best_fit_delta = -1.0;
        ShardId lightest = kInvalidShard;
        double lightest_delta = 0.0;
        for (ShardId s = 0; s < shard_rank.size(); ++s) {
            if (shard_rank[s] != hot || shard_weights[s] <= 0) {
                continue;
            }
            const double delta = load[hot] * shard_weights[s] / rank_weight[hot];
            if (delta <= gap / 2 && delta > best_fit_delta) {
                best_fit = s;
                best_fit_delta = delta;
            }
            if (lightest == kInvalidShard || delta < lightest_delta) {
                lightest = s;
                lightest_delta = delta;
            }
        }
        ShardId chosen = best_fit;
        double delta = best_fit_delta;
        if (chosen == kInvalidShard) {
            chosen = lightest;
            delta = lightest_delta;
        }
        if (chosen == kInvalidShard || delta >= gap) {
            break;  // no shard move shrinks the gap
        }

        moves.push_back({chosen, hot, cold});
        load[hot] -= delta;
        load[cold] += delta;
        rank_weight[hot] -= shard_weights[chosen];
        rank_weight[cold] += shard_weights[chosen];
        populated[hot] -= 1;
        populated[cold] += 1;
        shard_rank[chosen] = cold;
    }
    return moves;
}

}  // namespace aa
