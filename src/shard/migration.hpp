// Telemetry-driven incremental shard migration planning (xDGP-style).
//
// The planner watches the per-rank relaxation load the engine already
// measures (post + propagate ops per RC step — the same numbers the
// MetricsRegistry spans record) through an exponentially weighted moving
// average, and at engine boundaries emits a *bounded* list of shard moves:
// hottest rank donates its best-fitting shard to the coldest rank, repeated
// at most `max_moves` times. The engine applies the moves through the
// boundary-block wire machinery (core/migrate.cpp) — no stop-the-world
// repartition.
//
// Planning is deterministic: ties break toward the lowest rank / shard id,
// and the per-shard load attribution is the rank's EWMA load scaled by the
// shard's share of the rank's static weight (vertices + incident edges).
// A move is only emitted when it strictly shrinks the hot/cold gap, and a
// rank is never drained of its last populated shard.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "shard/ownership.hpp"

namespace aa {

/// One planned (or applied) shard move.
struct ShardMove {
    ShardId shard{kInvalidShard};
    RankId from{0};
    RankId to{0};

    friend bool operator==(const ShardMove&, const ShardMove&) = default;
};

class MigrationPlanner {
public:
    /// `alpha` is the EWMA weight of the newest observation.
    explicit MigrationPlanner(double alpha = 0.5) : alpha_(alpha) {}

    /// Fold one engine boundary's measured per-rank relax ops into the EWMA.
    void observe(std::span<const double> rank_ops);

    /// Smoothed per-rank load (empty before the first observation).
    const std::vector<double>& rank_load() const { return load_; }
    std::size_t observations() const { return observations_; }

    /// max(load) / mean(load); 1.0 when unobserved or all-idle.
    double imbalance() const;

    /// Forget all observations (structural changes that reshuffle load).
    void reset();

    /// Plan at most `max_moves` shard moves against the current ownership.
    /// `shard_weights` is the static per-shard weight (engine supplies
    /// vertices + incident edges); a shard's load estimate is
    /// rank_load[r] * weight(s) / weight(r). Returns an empty plan while
    /// max/mean load stays below `imbalance_threshold`.
    std::vector<ShardMove> plan(const ShardOwnership& ownership,
                                std::span<const double> shard_weights,
                                std::uint32_t max_moves,
                                double imbalance_threshold) const;

private:
    double alpha_;
    std::vector<double> load_;
    std::size_t observations_{0};
};

}  // namespace aa
