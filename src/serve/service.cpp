#include "serve/service.hpp"

#include <array>
#include <string>
#include <utility>

#include "common/assert.hpp"
#include "core/engine.hpp"

namespace aa {

namespace {

// Query latencies are host wall-clock (micro- to milliseconds); staleness is
// dominated by the driver's step cadence, so its buckets stretch further.
constexpr std::array<double, 11> kLatencyBounds{
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1};
constexpr std::array<double, 10> kStalenessWallBounds{
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0};
constexpr std::array<double, 6> kStalenessVersionBounds{0, 1, 2, 4, 8, 16};

}  // namespace

std::string_view freshness_policy_name(FreshnessPolicy policy) {
    switch (policy) {
        case FreshnessPolicy::ServeStale: return "stale";
        case FreshnessPolicy::WaitForNextStep: return "next-step";
        case FreshnessPolicy::WaitForQuiescence: return "quiescence";
        case FreshnessPolicy::BoundedError: return "bounded-error";
    }
    return "?";
}

QueryService::QueryService(AnytimeEngine& engine, ServeConfig config)
    : engine_(engine),
      config_(config),
      epoch_(std::chrono::steady_clock::now()),
      tracker_(config.topk_maintained) {
    if (config_.enable_metrics) {
        metrics_.enable();
        latency_point_ = metrics_.histogram("serve.latency.point", kLatencyBounds);
        latency_batch_ = metrics_.histogram("serve.latency.batch", kLatencyBounds);
        latency_topk_ = metrics_.histogram("serve.latency.topk", kLatencyBounds);
        staleness_wall_ =
            metrics_.histogram("serve.staleness.wall", kStalenessWallBounds);
        staleness_versions_ = metrics_.histogram("serve.staleness.versions",
                                                 kStalenessVersionBounds);
        queries_counter_ = metrics_.counter("serve.queries");
        shed_counter_ = metrics_.counter("serve.shed");
    }
    engine_.set_boundary_hook([this](AnytimeEngine&) { publish(); });
    if (engine_.initialized()) {
        publish();
    }
}

QueryService::~QueryService() {
    engine_.set_boundary_hook(nullptr);
    close();
}

double QueryService::wall_now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
}

void QueryService::publish() {
    const double t0 = wall_now();
    auto snapshot = build_snapshot(engine_, next_version_,
                                   last_published_.get(), config_.enable_bounds);
    snapshot->published_wall = wall_now();
    std::shared_ptr<const ResultSnapshot> frozen = std::move(snapshot);

    // Order matters: snapshot first (point/batch queries see it), then the
    // top-k view. A reader catching the gap sees a fresh snapshot with a
    // one-behind top-k view and falls back to a full selection — consistent
    // either way.
    store_.publish(frozen);
    ++next_version_;
    last_published_ = frozen;
    publications_.fetch_add(1, std::memory_order_relaxed);

    tracker_.apply(*frozen);
    auto view = std::make_shared<TopKView>();
    view->version = frozen->version;
    view->entries = tracker_.entries();
    topk_view_.store(std::move(view));
    topk_patched_.store(tracker_.patched(), std::memory_order_relaxed);
    topk_rebuilt_.store(tracker_.rebuilt(), std::memory_order_relaxed);

    if (engine_.refine_policy() == RefinePolicy::TopKPruned) {
        // Steer refinement at the vertices that decide the top-k answer: the
        // maintained reserve (the exact top-2k prefix) plus, when bounds are
        // available, every outsider whose upper bound still reaches into it.
        // A scheduling hint only — the focus never changes what converges.
        std::vector<VertexId> focus;
        focus.reserve(tracker_.reserve().size());
        double weakest_lo = kInfinity;
        for (const TopKEntry& e : tracker_.reserve()) {
            focus.push_back(e.vertex);
            if (frozen->has_bounds && e.vertex < frozen->bound_lo.size()) {
                weakest_lo = std::min(weakest_lo, frozen->bound_lo[e.vertex]);
            }
        }
        if (frozen->has_bounds && !focus.empty()) {
            for (std::size_t v = 0; v < frozen->bound_hi.size(); ++v) {
                if (frozen->bound_hi[v] > weakest_lo) {
                    focus.push_back(static_cast<VertexId>(v));
                }
            }
        }
        engine_.set_refine_focus(focus);
    }

    {
        // Empty critical section: pairs the publication with the waiters'
        // predicate re-check so no wakeup can slip between their check and
        // their wait.
        std::lock_guard<std::mutex> lock(wait_mutex_);
    }
    wait_cv_.notify_all();

    if (config_.enable_metrics) {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        MetricSpan span;
        span.name = "serve.publish";
        span.step = static_cast<std::int64_t>(frozen->rc_step);
        span.t_begin = t0;
        span.t_end = wall_now();
        span.attrs.emplace_back("version", std::to_string(frozen->version));
        span.attrs.emplace_back("changed",
                                std::to_string(frozen->changed.size()));
        span.attrs.emplace_back("quiescent", frozen->quiescent ? "1" : "0");
        metrics_.record_span(std::move(span));
    }
    if (on_publish_) {
        on_publish_(*frozen);
    }
}

void QueryService::set_on_publish(
    std::function<void(const ResultSnapshot&)> on_publish) {
    on_publish_ = std::move(on_publish);
}

void QueryService::set_step_driver(std::function<bool()> driver) {
    step_driver_ = std::move(driver);
}

void QueryService::close() {
    {
        std::lock_guard<std::mutex> lock(wait_mutex_);
        closed_ = true;
    }
    wait_cv_.notify_all();
}

bool QueryService::satisfied(FreshnessPolicy policy,
                             const ResultSnapshot* snapshot,
                             std::uint64_t arrival_version) {
    if (snapshot == nullptr) {
        return false;
    }
    switch (policy) {
        case FreshnessPolicy::ServeStale:
            return true;
        case FreshnessPolicy::WaitForNextStep:
            return snapshot->version > arrival_version;
        case FreshnessPolicy::WaitForQuiescence:
            return snapshot->quiescent;
        case FreshnessPolicy::BoundedError:
            return snapshot->has_bounds;
    }
    return false;
}

std::shared_ptr<const ResultSnapshot> QueryService::admit(
    FreshnessPolicy policy, QueryStatus& status) {
    auto current = store_.current();
    const std::uint64_t arrival = current ? current->version : 0;
    if (satisfied(policy, current.get(), arrival)) {
        status = QueryStatus::Ok;
        return current;
    }
    if (policy == FreshnessPolicy::ServeStale ||
        policy == FreshnessPolicy::BoundedError) {
        // Neither policy ever waits. ServeStale fails only before the first
        // publication; BoundedError also fails when snapshots carry no
        // bounds — a static configuration (enable_bounds) that waiting
        // could never fix.
        status = QueryStatus::Unavailable;
        return nullptr;
    }

    if (step_driver_) {
        // Synchronous mode: advance the engine inline. Each successful step
        // publishes through the boundary hook; when the engine cannot step
        // (already quiescent), one out-of-band publication still produces a
        // fresh — and then necessarily quiescent — snapshot.
        while (true) {
            const bool progressed = step_driver_();
            if (!progressed) {
                publish();
            }
            auto snapshot = store_.current();
            if (satisfied(policy, snapshot.get(), arrival)) {
                status = QueryStatus::Ok;
                return snapshot;
            }
            if (!progressed) {
                status = QueryStatus::Unavailable;
                return nullptr;
            }
        }
    }

    // Concurrent mode: bounded wait for the driver thread's publications.
    std::unique_lock<std::mutex> lock(wait_mutex_);
    if (closed_) {
        status = QueryStatus::Unavailable;
        return nullptr;
    }
    if (pending_ >= config_.max_pending) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        status = QueryStatus::Shed;
        return nullptr;
    }
    ++pending_;
    wait_cv_.wait(lock, [&] {
        if (closed_) {
            return true;
        }
        const auto snapshot = store_.current();
        return satisfied(policy, snapshot.get(), arrival);
    });
    --pending_;
    lock.unlock();

    auto snapshot = store_.current();
    if (satisfied(policy, snapshot.get(), arrival)) {
        status = QueryStatus::Ok;
        return snapshot;
    }
    status = QueryStatus::Unavailable;  // closed before the policy was met
    return nullptr;
}

ResponseMeta QueryService::make_meta(const ResultSnapshot& snapshot) const {
    ResponseMeta meta;
    meta.status = QueryStatus::Ok;
    meta.version = snapshot.version;
    meta.rc_step = snapshot.rc_step;
    meta.sim_seconds = snapshot.sim_seconds;
    meta.quiescent = snapshot.quiescent;
    meta.frac_unknown = snapshot.frac_unknown;
    meta.staleness_versions = store_.latest_version() - snapshot.version;
    meta.staleness_wall = wall_now() - snapshot.published_wall;
    return meta;
}

void QueryService::record_query(MetricsRegistry::Handle latency_histogram,
                                double latency_seconds,
                                const ResponseMeta& meta) {
    if (!config_.enable_metrics) {
        return;
    }
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.add(queries_counter_, 1);
    if (meta.status == QueryStatus::Shed) {
        metrics_.add(shed_counter_, 1);
        return;
    }
    if (meta.status != QueryStatus::Ok) {
        return;
    }
    metrics_.observe(latency_histogram, latency_seconds);
    metrics_.observe(staleness_wall_, meta.staleness_wall);
    metrics_.observe(staleness_versions_,
                     static_cast<double>(meta.staleness_versions));
}

PointResult QueryService::point(VertexId v, FreshnessPolicy policy) {
    const double t0 = wall_now();
    if (config_.record_demand) {
        engine_.demand().record(v);
    }
    PointResult result;
    result.vertex = v;
    QueryStatus status = QueryStatus::Unavailable;
    const auto snapshot = admit(policy, status);
    if (snapshot == nullptr) {
        result.meta.status = status;
        record_query(latency_point_, wall_now() - t0, result.meta);
        return result;
    }
    result.meta = make_meta(*snapshot);
    if (v < snapshot->scores.size()) {
        result.closeness = snapshot->scores.closeness(v);
        result.reachable = snapshot->scores.reachable(v);
    }
    if (snapshot->has_bounds && v < snapshot->bound_lo.size()) {
        result.bound_lo = snapshot->bound_lo[v];
        result.bound_hi = snapshot->bound_hi[v];
        result.exact = snapshot->bound_exact[v] != 0;
    }
    // Vertices newer than the snapshot read as (0, 0): the snapshot simply
    // predates them, which the version on the response makes diagnosable.
    record_query(latency_point_, wall_now() - t0, result.meta);
    return result;
}

BatchResult QueryService::batch(std::span<const VertexId> vertices,
                                FreshnessPolicy policy) {
    const double t0 = wall_now();
    if (config_.record_demand) {
        for (const VertexId v : vertices) {
            engine_.demand().record(v);
        }
    }
    BatchResult result;
    QueryStatus status = QueryStatus::Unavailable;
    const auto snapshot = admit(policy, status);
    if (snapshot == nullptr) {
        result.meta.status = status;
        record_query(latency_batch_, wall_now() - t0, result.meta);
        return result;
    }
    result.meta = make_meta(*snapshot);
    result.closeness.reserve(vertices.size());
    result.reachable.reserve(vertices.size());
    const std::size_t known = snapshot->scores.size();
    for (const VertexId v : vertices) {
        result.closeness.push_back(v < known ? snapshot->scores.closeness(v)
                                             : 0);
        result.reachable.push_back(v < known ? snapshot->scores.reachable(v)
                                             : 0);
    }
    if (snapshot->has_bounds) {
        result.bound_lo.reserve(vertices.size());
        result.bound_hi.reserve(vertices.size());
        for (const VertexId v : vertices) {
            const bool in = v < snapshot->bound_lo.size();
            result.bound_lo.push_back(in ? snapshot->bound_lo[v] : 0);
            result.bound_hi.push_back(in ? snapshot->bound_hi[v] : 0);
        }
    }
    record_query(latency_batch_, wall_now() - t0, result.meta);
    return result;
}

TopKResult QueryService::topk(std::size_t k, FreshnessPolicy policy) {
    const double t0 = wall_now();
    TopKResult result;
    QueryStatus status = QueryStatus::Unavailable;
    const auto snapshot = admit(policy, status);
    if (snapshot == nullptr) {
        result.meta.status = status;
        record_query(latency_topk_, wall_now() - t0, result.meta);
        return result;
    }
    result.meta = make_meta(*snapshot);
    const auto view = topk_view_.load();
    if (k <= config_.topk_maintained && view != nullptr &&
        view->version == snapshot->version) {
        // Served from the incrementally patched ranking; a k-prefix of the
        // maintained top-K is exactly the top-k of the same snapshot.
        const std::size_t take = std::min(k, view->entries.size());
        result.entries.assign(view->entries.begin(),
                              view->entries.begin() + take);
    } else {
        result.entries = topk_from_snapshot(*snapshot, k);
    }
    if (config_.record_demand) {
        for (const TopKEntry& e : result.entries) {
            engine_.demand().record(e.vertex);
        }
    }
    if (snapshot->has_bounds && !result.entries.empty()) {
        // The *set* is certified once every member's certified lower bound
        // strictly exceeds every non-member's upper bound: no remaining
        // refinement can move a non-member above a member. Strictness means
        // a tie at the k-th score never certifies — correctly, since the
        // set is genuinely ambiguous there.
        const std::size_t n = snapshot->bound_lo.size();
        std::vector<std::uint8_t> member(n, 0);
        double weakest_member = kInfinity;
        for (const TopKEntry& e : result.entries) {
            if (e.vertex < n) {
                member[e.vertex] = 1;
                weakest_member =
                    std::min(weakest_member, snapshot->bound_lo[e.vertex]);
            }
        }
        double strongest_outsider = -kInfinity;
        for (std::size_t v = 0; v < n; ++v) {
            if (!member[v]) {
                strongest_outsider =
                    std::max(strongest_outsider, snapshot->bound_hi[v]);
            }
        }
        result.certified = result.entries.size() >= n ||
                           weakest_member > strongest_outsider;
    }
    record_query(latency_topk_, wall_now() - t0, result.meta);
    return result;
}

std::uint64_t QueryService::publications() const {
    return publications_.load(std::memory_order_relaxed);
}

std::uint64_t QueryService::shed_count() const {
    return shed_.load(std::memory_order_relaxed);
}

std::size_t QueryService::topk_patched() const {
    return topk_patched_.load(std::memory_order_relaxed);
}

std::size_t QueryService::topk_rebuilt() const {
    return topk_rebuilt_.load(std::memory_order_relaxed);
}

MetricsRegistry QueryService::metrics_copy() const {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    return metrics_;
}

}  // namespace aa
