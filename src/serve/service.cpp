#include "serve/service.hpp"

#include <algorithm>
#include <array>
#include <string>
#include <utility>

#include "common/assert.hpp"
#include "core/engine.hpp"

namespace aa {

namespace {

// Query latencies are host wall-clock (micro- to milliseconds); staleness is
// dominated by the driver's step cadence, so its buckets stretch further.
constexpr std::array<double, 11> kLatencyBounds{
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1};
constexpr std::array<double, 10> kStalenessWallBounds{
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0};
constexpr std::array<double, 6> kStalenessVersionBounds{0, 1, 2, 4, 8, 16};

}  // namespace

std::string_view freshness_policy_name(FreshnessPolicy policy) {
    switch (policy) {
        case FreshnessPolicy::ServeStale: return "stale";
        case FreshnessPolicy::WaitForNextStep: return "next-step";
        case FreshnessPolicy::WaitForQuiescence: return "quiescence";
        case FreshnessPolicy::BoundedError: return "bounded-error";
    }
    return "?";
}

QueryService::QueryService(AnytimeEngine& engine, ServeConfig config)
    : engine_(engine),
      config_(config),
      epoch_(std::chrono::steady_clock::now()),
      tracker_(config.topk_maintained, config.topk_rebuild_churn) {
    if (config_.enable_metrics) {
        metrics_.enable();
        latency_point_ = metrics_.histogram("serve.latency.point", kLatencyBounds);
        latency_batch_ = metrics_.histogram("serve.latency.batch", kLatencyBounds);
        latency_topk_ = metrics_.histogram("serve.latency.topk", kLatencyBounds);
        staleness_wall_ =
            metrics_.histogram("serve.staleness.wall", kStalenessWallBounds);
        staleness_versions_ = metrics_.histogram("serve.staleness.versions",
                                                 kStalenessVersionBounds);
        queries_counter_ = metrics_.counter("serve.queries");
        shed_counter_ = metrics_.counter("serve.shed");
    }
    // Tenant 0 inherits the service-wide limits, so single-tenant callers
    // never see a tenant surface at all.
    TenantConfig default_tenant;
    default_tenant.max_pending = config_.max_pending;
    auto tenants =
        std::make_shared<std::vector<std::shared_ptr<TenantState>>>();
    tenants->push_back(make_tenant("default", default_tenant));
    tenants_.store(std::move(tenants));

    engine_.set_boundary_hook([this](AnytimeEngine&) { publish(); });
    if (engine_.initialized()) {
        publish();
    }
}

QueryService::~QueryService() {
    engine_.set_boundary_hook(nullptr);
    close();
}

double QueryService::wall_now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
}

std::shared_ptr<QueryService::TenantState> QueryService::make_tenant(
    std::string name, TenantConfig config) {
    auto state = std::make_shared<TenantState>();
    state->name = std::move(name);
    state->config = config;
    if (config_.enable_metrics) {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        const std::string prefix = "serve.tenant." + state->name;
        state->latency = metrics_.histogram(prefix + ".latency", kLatencyBounds);
        state->staleness =
            metrics_.histogram(prefix + ".staleness", kStalenessWallBounds);
        state->shed_counter = metrics_.counter(prefix + ".shed");
    }
    return state;
}

TenantId QueryService::register_tenant(std::string name, TenantConfig config) {
    auto state = make_tenant(std::move(name), config);
    const auto current = tenants_.load();
    auto next = std::make_shared<std::vector<std::shared_ptr<TenantState>>>(
        *current);
    next->push_back(std::move(state));
    const TenantId id = next->size() - 1;
    tenants_.store(std::move(next));
    return id;
}

std::shared_ptr<QueryService::TenantState> QueryService::tenant_state(
    TenantId tenant) const {
    const auto tenants = tenants_.load();
    AA_ASSERT_MSG(tenants != nullptr && tenant < tenants->size(),
                  "unknown tenant id");
    return (*tenants)[tenant];
}

std::size_t QueryService::num_tenants() const {
    return tenants_.load()->size();
}

TenantCounters QueryService::tenant_counters(TenantId tenant) const {
    const auto state = tenant_state(tenant);
    TenantCounters out;
    out.name = state->name;
    out.config = state->config;
    out.served = state->served.load(std::memory_order_relaxed);
    out.shed = state->shed.load(std::memory_order_relaxed);
    out.slo_misses = state->slo_misses.load(std::memory_order_relaxed);
    return out;
}

void QueryService::accumulate_publication_stats(const ResultSnapshot& frozen,
                                                bool via_delta,
                                                std::size_t rows_scanned) {
    ++stats_.publications;
    if (via_delta) {
        ++stats_.delta_publications;
    } else {
        ++stats_.full_publications;
    }
    stats_.changed_rows += frozen.changed.size();
    stats_.rows_scanned += rows_scanned;
    const ResultSnapshot* previous = last_published_.get();
    for (std::size_t c = 0; c < frozen.scores.num_chunks(); ++c) {
        const bool shared = previous != nullptr &&
                            c < previous->scores.num_chunks() &&
                            frozen.scores.chunk(c) == previous->scores.chunk(c);
        if (shared) {
            ++stats_.chunks_shared;
        } else {
            ++stats_.chunks_copied;
        }
    }
    // The full path materializes both n-length planes before CoW chunking;
    // the delta path only ever holds the changed rows' values.
    constexpr std::size_t kValueBytes = sizeof(Weight) + sizeof(std::size_t);
    if (via_delta) {
        stats_.published_bytes +=
            frozen.changed.size() * (kValueBytes + sizeof(VertexId));
    } else {
        stats_.published_bytes += frozen.scores.size() * kValueBytes +
                                  frozen.changed.size() * sizeof(VertexId);
    }
}

void QueryService::update_shard_planes(
    const std::shared_ptr<const ResultSnapshot>& frozen) {
    const ShardOwnership& ownership = engine_.shard_ownership();
    const std::size_t n = frozen->scores.size();
    const std::size_t num_shards = ownership.num_shards();
    const std::size_t num_planes = num_shards + 1;  // + pseudo-shard
    // Shard membership moves only when the vertex count does (a migration
    // re-binds shards to ranks, never vertices to shards), so this is the
    // only event that invalidates the routing table and the per-shard
    // trackers' chained state.
    const bool rebuild = !shard_table_built_ || shard_table_n_ != n ||
                         shard_members_.size() != num_planes;
    std::shared_ptr<ShardTable> fresh;
    std::shared_ptr<const ShardTable> table;
    if (rebuild) {
        shard_members_.assign(num_planes, {});
        for (std::size_t v = 0; v < n; ++v) {
            const std::size_t s =
                v < ownership.num_vertices()
                    ? ownership.shard(static_cast<VertexId>(v))
                    : num_shards;
            shard_members_[s].push_back(static_cast<VertexId>(v));
        }
        while (shard_trackers_.size() < num_planes) {
            shard_trackers_.emplace_back(config_.topk_maintained,
                                         config_.topk_rebuild_churn);
        }
        for (IncrementalTopK& tracker : shard_trackers_) {
            tracker.reset();
        }
        shard_changed_scratch_.assign(num_planes, {});
        shard_table_n_ = n;
        shard_table_built_ = true;

        fresh = std::make_shared<ShardTable>();
        fresh->shard_of.resize(n);
        for (std::size_t s = 0; s < num_planes; ++s) {
            for (const VertexId v : shard_members_[s]) {
                fresh->shard_of[v] = static_cast<ShardId>(s);
            }
        }
        fresh->planes.reserve(num_planes);
        for (std::size_t s = 0; s < num_planes; ++s) {
            fresh->planes.push_back(
                std::make_shared<SharedSlot<const ShardView>>());
        }
        table = fresh;
    } else {
        table = shard_table_.load();
        for (auto& scratch : shard_changed_scratch_) {
            scratch.clear();
        }
        for (const VertexId v : frozen->changed) {
            shard_changed_scratch_[table->shard_of[v]].push_back(v);
        }
    }
    for (std::size_t s = 0; s < num_planes; ++s) {
        IncrementalTopK& tracker = shard_trackers_[s];
        if (rebuild) {
            tracker.apply_subset(*frozen, shard_members_[s],
                                 shard_members_[s]);
        } else {
            tracker.apply_subset(*frozen, shard_members_[s],
                                 shard_changed_scratch_[s]);
        }
        auto view = std::make_shared<ShardView>();
        view->snapshot = frozen;
        view->topk = tracker.entries();
        table->planes[s]->store(std::move(view));
    }
    if (rebuild) {
        // Published only after every plane holds a view, so routed readers
        // never find an empty slot behind a live table entry.
        shard_table_.store(std::move(fresh));
    }
}

void QueryService::refresh_topk_counters() {
    std::size_t patched = tracker_.patched();
    std::size_t rebuilt = tracker_.rebuilt();
    for (const IncrementalTopK& tracker : shard_trackers_) {
        patched += tracker.patched();
        rebuilt += tracker.rebuilt();
    }
    topk_patched_.store(patched, std::memory_order_relaxed);
    topk_rebuilt_.store(rebuilt, std::memory_order_relaxed);
}

void QueryService::publish() {
    const double t0 = wall_now();
    std::shared_ptr<ResultSnapshot> built;
    bool via_delta = false;
    std::size_t rows_scanned = 0;
    if (config_.delta_publication && !config_.enable_bounds &&
        last_published_ != nullptr) {
        if (const auto delta = build_snapshot_delta(engine_, next_version_,
                                                    *last_published_)) {
            built = apply_snapshot_delta(*last_published_, *delta);
            rows_scanned = delta->rows_scanned;
            via_delta = true;
        }
    }
    if (built == nullptr) {
        built = build_snapshot(engine_, next_version_, last_published_.get(),
                               config_.enable_bounds);
        rows_scanned = built->scores.size();
    }
    built->published_wall = wall_now();
    std::shared_ptr<const ResultSnapshot> frozen = std::move(built);
    accumulate_publication_stats(*frozen, via_delta, rows_scanned);

    // Shard planes first, then the global slot: a reader routed through a
    // plane may briefly observe a newer version than the global slot
    // (per-shard monotone reads), while waiters woken below — who re-check
    // the global slot — always find the new snapshot already there.
    if (config_.shard_reads) {
        update_shard_planes(frozen);
    }
    store_.publish(frozen);
    ++next_version_;
    last_published_ = frozen;
    publications_.fetch_add(1, std::memory_order_relaxed);

    if (!config_.shard_reads) {
        // Unsharded: one global tracker feeds one global top-k view. A
        // reader catching the store/view gap sees a fresh snapshot with a
        // one-behind view and falls back to a full selection.
        tracker_.apply(*frozen);
        auto view = std::make_shared<TopKView>();
        view->version = frozen->version;
        view->entries = tracker_.entries();
        topk_view_.store(std::move(view));
    }
    refresh_topk_counters();

    if (engine_.refine_policy() == RefinePolicy::TopKPruned) {
        // Steer refinement at the vertices that decide the top-k answer: the
        // maintained reserves (the exact top-2k prefix, per shard when
        // sharded) plus, when bounds are available, every outsider whose
        // upper bound still reaches into them. A scheduling hint only — the
        // focus never changes what converges.
        std::vector<VertexId> focus;
        double weakest_lo = kInfinity;
        const auto add_reserve = [&](const IncrementalTopK& tracker) {
            for (const TopKEntry& e : tracker.reserve()) {
                focus.push_back(e.vertex);
                if (frozen->has_bounds && e.vertex < frozen->bound_lo.size()) {
                    weakest_lo =
                        std::min(weakest_lo, frozen->bound_lo[e.vertex]);
                }
            }
        };
        if (config_.shard_reads) {
            for (const IncrementalTopK& tracker : shard_trackers_) {
                add_reserve(tracker);
            }
        } else {
            add_reserve(tracker_);
        }
        if (frozen->has_bounds && !focus.empty()) {
            for (std::size_t v = 0; v < frozen->bound_hi.size(); ++v) {
                if (frozen->bound_hi[v] > weakest_lo) {
                    focus.push_back(static_cast<VertexId>(v));
                }
            }
        }
        engine_.set_refine_focus(focus);
    }

    {
        // Empty critical section: pairs the publication with the waiters'
        // predicate re-check so no wakeup can slip between their check and
        // their wait.
        std::lock_guard<std::mutex> lock(wait_mutex_);
    }
    wait_cv_.notify_all();

    if (config_.enable_metrics) {
        std::lock_guard<std::mutex> lock(metrics_mutex_);
        MetricSpan span;
        span.name = "serve.publish";
        span.step = static_cast<std::int64_t>(frozen->rc_step);
        span.t_begin = t0;
        span.t_end = wall_now();
        span.attrs.emplace_back("version", std::to_string(frozen->version));
        span.attrs.emplace_back("changed",
                                std::to_string(frozen->changed.size()));
        span.attrs.emplace_back("quiescent", frozen->quiescent ? "1" : "0");
        span.attrs.emplace_back("delta", via_delta ? "1" : "0");
        metrics_.record_span(std::move(span));
    }
    if (on_publish_) {
        on_publish_(*frozen);
    }
}

void QueryService::set_on_publish(
    std::function<void(const ResultSnapshot&)> on_publish) {
    on_publish_ = std::move(on_publish);
}

void QueryService::set_step_driver(std::function<bool()> driver) {
    step_driver_ = std::move(driver);
}

void QueryService::close() {
    {
        std::lock_guard<std::mutex> lock(wait_mutex_);
        closed_ = true;
    }
    wait_cv_.notify_all();
}

bool QueryService::satisfied(FreshnessPolicy policy,
                             const ResultSnapshot* snapshot,
                             std::uint64_t arrival_version) {
    if (snapshot == nullptr) {
        return false;
    }
    switch (policy) {
        case FreshnessPolicy::ServeStale:
            return true;
        case FreshnessPolicy::WaitForNextStep:
            return snapshot->version > arrival_version;
        case FreshnessPolicy::WaitForQuiescence:
            return snapshot->quiescent;
        case FreshnessPolicy::BoundedError:
            return snapshot->has_bounds;
    }
    return false;
}

std::shared_ptr<const ResultSnapshot> QueryService::shard_route(
    VertexId v) const {
    const auto table = shard_table_.load();
    if (table == nullptr || v >= table->shard_of.size()) {
        return nullptr;
    }
    const auto view = table->planes[table->shard_of[v]]->load();
    return view != nullptr ? view->snapshot : nullptr;
}

std::shared_ptr<const ResultSnapshot> QueryService::admit(
    FreshnessPolicy policy, TenantState& tenant, QueryStatus& status) {
    auto current = store_.current();
    const std::uint64_t arrival = current ? current->version : 0;
    if (satisfied(policy, current.get(), arrival)) {
        status = QueryStatus::Ok;
        return current;
    }
    if (policy == FreshnessPolicy::ServeStale ||
        policy == FreshnessPolicy::BoundedError) {
        // Neither policy ever waits. ServeStale fails only before the first
        // publication; BoundedError also fails when snapshots carry no
        // bounds — a static configuration (enable_bounds) that waiting
        // could never fix.
        status = QueryStatus::Unavailable;
        return nullptr;
    }

    if (step_driver_) {
        // Synchronous mode: advance the engine inline. Each successful step
        // publishes through the boundary hook; when the engine cannot step
        // (already quiescent), one out-of-band publication still produces a
        // fresh — and then necessarily quiescent — snapshot.
        while (true) {
            const bool progressed = step_driver_();
            if (!progressed) {
                publish();
            }
            auto snapshot = store_.current();
            if (satisfied(policy, snapshot.get(), arrival)) {
                status = QueryStatus::Ok;
                return snapshot;
            }
            if (!progressed) {
                status = QueryStatus::Unavailable;
                return nullptr;
            }
        }
    }

    // Concurrent mode: bounded wait for the driver thread's publications.
    // The bound is the querying tenant's alone — shedding here can neither
    // consume nor release any other tenant's waiting capacity.
    std::unique_lock<std::mutex> lock(wait_mutex_);
    if (closed_) {
        status = QueryStatus::Unavailable;
        return nullptr;
    }
    if (tenant.pending >= tenant.config.max_pending) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        tenant.shed.fetch_add(1, std::memory_order_relaxed);
        status = QueryStatus::Shed;
        return nullptr;
    }
    ++tenant.pending;
    wait_cv_.wait(lock, [&] {
        if (closed_) {
            return true;
        }
        const auto snapshot = store_.current();
        return satisfied(policy, snapshot.get(), arrival);
    });
    --tenant.pending;
    lock.unlock();

    auto snapshot = store_.current();
    if (satisfied(policy, snapshot.get(), arrival)) {
        status = QueryStatus::Ok;
        return snapshot;
    }
    status = QueryStatus::Unavailable;  // closed before the policy was met
    return nullptr;
}

ResponseMeta QueryService::make_meta(const ResultSnapshot& snapshot) const {
    ResponseMeta meta;
    meta.status = QueryStatus::Ok;
    meta.version = snapshot.version;
    meta.rc_step = snapshot.rc_step;
    meta.sim_seconds = snapshot.sim_seconds;
    meta.quiescent = snapshot.quiescent;
    meta.frac_unknown = snapshot.frac_unknown;
    // A shard plane can run ahead of the global slot mid-publication, so
    // clamp instead of underflowing: a newer-than-global answer is fresh.
    const std::uint64_t latest = store_.latest_version();
    meta.staleness_versions =
        latest > snapshot.version ? latest - snapshot.version : 0;
    meta.staleness_wall = wall_now() - snapshot.published_wall;
    return meta;
}

bool QueryService::certify_topk(const ResultSnapshot& snapshot,
                                const std::vector<TopKEntry>& entries) {
    // The *set* is certified once every member's certified lower bound
    // strictly exceeds every non-member's upper bound: no remaining
    // refinement can move a non-member above a member. Strictness means a
    // tie at the k-th score never certifies — correctly, since the set is
    // genuinely ambiguous there.
    const std::size_t n = snapshot.bound_lo.size();
    std::vector<std::uint8_t> member(n, 0);
    double weakest_member = kInfinity;
    for (const TopKEntry& e : entries) {
        if (e.vertex < n) {
            member[e.vertex] = 1;
            weakest_member = std::min(weakest_member, snapshot.bound_lo[e.vertex]);
        }
    }
    double strongest_outsider = -kInfinity;
    for (std::size_t v = 0; v < n; ++v) {
        if (!member[v]) {
            strongest_outsider =
                std::max(strongest_outsider, snapshot.bound_hi[v]);
        }
    }
    return entries.size() >= n || weakest_member > strongest_outsider;
}

void QueryService::finish_query(TenantState& tenant,
                                MetricsRegistry::Handle latency_histogram,
                                double latency_seconds,
                                const ResponseMeta& meta) {
    if (meta.status == QueryStatus::Ok) {
        tenant.served.fetch_add(1, std::memory_order_relaxed);
        if (meta.staleness_wall > tenant.config.freshness_slo) {
            tenant.slo_misses.fetch_add(1, std::memory_order_relaxed);
        }
    }
    if (!config_.enable_metrics) {
        return;
    }
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    metrics_.add(queries_counter_, 1);
    if (meta.status == QueryStatus::Shed) {
        metrics_.add(shed_counter_, 1);
        if (tenant.shed_counter != MetricsRegistry::kNullHandle) {
            metrics_.add(tenant.shed_counter, 1);
        }
        return;
    }
    if (meta.status != QueryStatus::Ok) {
        return;
    }
    metrics_.observe(latency_histogram, latency_seconds);
    metrics_.observe(staleness_wall_, meta.staleness_wall);
    metrics_.observe(staleness_versions_,
                     static_cast<double>(meta.staleness_versions));
    if (tenant.latency != MetricsRegistry::kNullHandle) {
        metrics_.observe(tenant.latency, latency_seconds);
        metrics_.observe(tenant.staleness, meta.staleness_wall);
    }
}

PointResult QueryService::point(VertexId v, FreshnessPolicy policy,
                                TenantId tenant_id) {
    const double t0 = wall_now();
    const auto tenant = tenant_state(tenant_id);
    if (config_.record_demand) {
        engine_.demand().record(v, tenant->config.demand_weight);
    }
    PointResult result;
    result.vertex = v;
    QueryStatus status = QueryStatus::Unavailable;
    std::shared_ptr<const ResultSnapshot> snapshot;
    if (config_.shard_reads && (policy == FreshnessPolicy::ServeStale ||
                                policy == FreshnessPolicy::BoundedError)) {
        // Immediate reads route through the plane owning v (per-shard
        // monotone reads); anything the planes cannot serve falls back to
        // the global slot below.
        snapshot = shard_route(v);
        if (snapshot != nullptr &&
            !satisfied(policy, snapshot.get(), snapshot->version)) {
            snapshot = nullptr;
        }
        if (snapshot != nullptr) {
            status = QueryStatus::Ok;
        }
    }
    if (snapshot == nullptr) {
        snapshot = admit(policy, *tenant, status);
    }
    if (snapshot == nullptr) {
        result.meta.status = status;
        finish_query(*tenant, latency_point_, wall_now() - t0, result.meta);
        return result;
    }
    result.meta = make_meta(*snapshot);
    if (v < snapshot->scores.size()) {
        result.closeness = snapshot->scores.closeness(v);
        result.reachable = snapshot->scores.reachable(v);
    }
    if (snapshot->has_bounds && v < snapshot->bound_lo.size()) {
        result.bound_lo = snapshot->bound_lo[v];
        result.bound_hi = snapshot->bound_hi[v];
        result.exact = snapshot->bound_exact[v] != 0;
    }
    // Vertices newer than the snapshot read as (0, 0): the snapshot simply
    // predates them, which the version on the response makes diagnosable.
    finish_query(*tenant, latency_point_, wall_now() - t0, result.meta);
    return result;
}

BatchResult QueryService::batch(std::span<const VertexId> vertices,
                                FreshnessPolicy policy, TenantId tenant_id) {
    const double t0 = wall_now();
    const auto tenant = tenant_state(tenant_id);
    if (config_.record_demand) {
        for (const VertexId v : vertices) {
            engine_.demand().record(v, tenant->config.demand_weight);
        }
    }
    BatchResult result;
    QueryStatus status = QueryStatus::Unavailable;
    std::shared_ptr<const ResultSnapshot> snapshot;
    if (config_.shard_reads && !vertices.empty() &&
        (policy == FreshnessPolicy::ServeStale ||
         policy == FreshnessPolicy::BoundedError)) {
        // One plane serves the whole batch (its snapshot is full-width), so
        // the batch stays consistent within a single snapshot. Routed by the
        // first vertex's shard: that is the vertex whose freshness the
        // caller most plausibly cares about.
        snapshot = shard_route(vertices.front());
        if (snapshot != nullptr &&
            !satisfied(policy, snapshot.get(), snapshot->version)) {
            snapshot = nullptr;
        }
        if (snapshot != nullptr) {
            status = QueryStatus::Ok;
        }
    }
    if (snapshot == nullptr) {
        snapshot = admit(policy, *tenant, status);
    }
    if (snapshot == nullptr) {
        result.meta.status = status;
        finish_query(*tenant, latency_batch_, wall_now() - t0, result.meta);
        return result;
    }
    result.meta = make_meta(*snapshot);
    result.closeness.reserve(vertices.size());
    result.reachable.reserve(vertices.size());
    const std::size_t known = snapshot->scores.size();
    for (const VertexId v : vertices) {
        result.closeness.push_back(v < known ? snapshot->scores.closeness(v)
                                             : 0);
        result.reachable.push_back(v < known ? snapshot->scores.reachable(v)
                                             : 0);
    }
    if (snapshot->has_bounds) {
        result.bound_lo.reserve(vertices.size());
        result.bound_hi.reserve(vertices.size());
        for (const VertexId v : vertices) {
            const bool in = v < snapshot->bound_lo.size();
            result.bound_lo.push_back(in ? snapshot->bound_lo[v] : 0);
            result.bound_hi.push_back(in ? snapshot->bound_hi[v] : 0);
        }
    }
    finish_query(*tenant, latency_batch_, wall_now() - t0, result.meta);
    return result;
}

TopKResult QueryService::topk(std::size_t k, FreshnessPolicy policy,
                              TenantId tenant_id) {
    const double t0 = wall_now();
    const auto tenant = tenant_state(tenant_id);
    TopKResult result;
    QueryStatus status = QueryStatus::Unavailable;
    std::shared_ptr<const ResultSnapshot> snapshot;
    bool merged = false;
    if (config_.shard_reads && policy == FreshnessPolicy::ServeStale &&
        k <= config_.topk_maintained) {
        // Merge the per-shard maintained partials at read time. Sound
        // because each partial is the exact top-min(K, |shard|) of its
        // members under the strict total ranking order, so the union
        // contains the global k-prefix; bit-identical to the full selection.
        // Requires every plane to hold the same snapshot — mid-publication
        // disagreement falls back to the global path below.
        const auto table = shard_table_.load();
        if (table != nullptr && !table->planes.empty()) {
            std::vector<std::shared_ptr<const ShardView>> views;
            views.reserve(table->planes.size());
            bool consistent = true;
            for (const auto& plane : table->planes) {
                auto view = plane->load();
                if (view == nullptr ||
                    (!views.empty() &&
                     view->snapshot != views.front()->snapshot)) {
                    consistent = false;
                    break;
                }
                views.push_back(std::move(view));
            }
            if (consistent) {
                snapshot = views.front()->snapshot;
                std::vector<TopKEntry> pool;
                for (const auto& view : views) {
                    pool.insert(pool.end(), view->topk.begin(),
                                view->topk.end());
                }
                const std::size_t want = std::min(k, pool.size());
                std::partial_sort(pool.begin(), pool.begin() + want,
                                  pool.end(), topk_outranks);
                pool.resize(want);
                result.entries = std::move(pool);
                status = QueryStatus::Ok;
                merged = true;
            }
        }
    }
    if (!merged) {
        snapshot = admit(policy, *tenant, status);
        if (snapshot == nullptr) {
            result.meta.status = status;
            finish_query(*tenant, latency_topk_, wall_now() - t0, result.meta);
            return result;
        }
        const auto view = topk_view_.load();
        if (!config_.shard_reads && k <= config_.topk_maintained &&
            view != nullptr && view->version == snapshot->version) {
            // Served from the incrementally patched ranking; a k-prefix of
            // the maintained top-K is exactly the top-k of the same snapshot.
            const std::size_t take = std::min(k, view->entries.size());
            result.entries.assign(view->entries.begin(),
                                  view->entries.begin() + take);
        } else {
            result.entries = topk_from_snapshot(*snapshot, k);
        }
    }
    result.meta = make_meta(*snapshot);
    if (config_.record_demand) {
        const double weight = tenant->config.demand_weight;
        for (const TopKEntry& e : result.entries) {
            engine_.demand().record(e.vertex, weight);
        }
    }
    if (snapshot->has_bounds && !result.entries.empty()) {
        result.certified = certify_topk(*snapshot, result.entries);
    }
    finish_query(*tenant, latency_topk_, wall_now() - t0, result.meta);
    return result;
}

std::uint64_t QueryService::publications() const {
    return publications_.load(std::memory_order_relaxed);
}

std::uint64_t QueryService::shed_count() const {
    return shed_.load(std::memory_order_relaxed);
}

std::size_t QueryService::topk_patched() const {
    return topk_patched_.load(std::memory_order_relaxed);
}

std::size_t QueryService::topk_rebuilt() const {
    return topk_rebuilt_.load(std::memory_order_relaxed);
}

MetricsRegistry QueryService::metrics_copy() const {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    return metrics_;
}

}  // namespace aa
