// Versioned, immutable result snapshots: the payload the serve layer hands
// to concurrent readers while the anytime engine keeps refining.
//
// The anytime property says a valid (monotonically improving) closeness
// result exists after every RC step; the serve layer turns that into a
// query-able artifact. At each engine boundary (initialize, RC step, dynamic
// addition) the publisher freezes the current per-vertex closeness scores,
// reachable counts and quality metadata into a `ResultSnapshot` and swaps it
// into the `SnapshotStore` through an atomic shared_ptr slot (SharedSlot).
// Readers therefore never observe a half-built result, never block the RC
// loop, and keep any snapshot they hold alive for exactly as long as they
// need it.
//
// Memory bound: the store retains one snapshot; during a publication the
// outgoing and incoming snapshots briefly coexist, so the *store* pins at
// most two. Older snapshots survive only while a reader still holds its
// `shared_ptr`, and die with the last reference.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "core/closeness.hpp"
#include "serve/shared_slot.hpp"

namespace aa {

class AnytimeEngine;

/// One frozen, immutable view of the engine's current answer. All fields are
/// set before publication and never mutated afterwards, which is what makes
/// lock-free sharing across reader threads sound.
struct ResultSnapshot {
    /// Strictly increasing across publications of one service.
    std::uint64_t version{0};
    /// RC steps the engine had completed when the snapshot was taken.
    std::size_t rc_step{0};
    /// Simulated clock at publication.
    double sim_seconds{0};
    /// True iff the engine was quiescent (answers are the exact APSP of the
    /// current graph — additions *and* deletions/reweights settled; exactly
    /// so for uniform weights, within the relaxation epsilon otherwise).
    bool quiescent{false};
    /// Self-measured unknown fraction: the share of distance-matrix entries
    /// still at infinity. An upper bound on QualityMetrics::frac_unknown
    /// (which also needs the exact matrix to exclude truly unreachable
    /// pairs); on connected graphs the two coincide at quiescence (both 0).
    double frac_unknown{0};
    /// Wall-clock publication time in seconds on the publisher's clock
    /// (QueryService's epoch); responses derive their staleness bound from
    /// it. 0 for snapshots built outside a service.
    double published_wall{0};
    /// Closeness + reachable per vertex, bit-identical to
    /// closeness_from_matrix(full_distance_matrix(), variant) at the same
    /// boundary (same per-row summation order).
    ClosenessScores scores;
    /// Vertices whose (closeness, reachable) differ from the previous
    /// snapshot — newly added vertices included. This is what lets the
    /// incremental top-k patch instead of rebuild.
    std::vector<VertexId> changed;
};

/// Freeze the engine's current state into a snapshot. Observer-only: reads
/// rank state directly and charges nothing to the simulated clock. Must be
/// called from the thread driving the engine (snapshot construction races
/// with RC relaxation otherwise). `previous` (may be null) seeds the
/// `changed` list.
std::shared_ptr<ResultSnapshot> build_snapshot(const AnytimeEngine& engine,
                                               std::uint64_t version,
                                               const ResultSnapshot* previous);

/// Single-slot snapshot holder. One writer (the RC/driver thread) swaps
/// snapshots in; any number of readers copy the current `shared_ptr` out.
/// A reader's critical section is a refcount bump (see SharedSlot), so
/// readers never wait on engine work and the RC loop never waits on readers.
class SnapshotStore {
public:
    SnapshotStore() = default;
    SnapshotStore(const SnapshotStore&) = delete;
    SnapshotStore& operator=(const SnapshotStore&) = delete;

    /// Publish a snapshot. Versions must strictly increase (assert-checked).
    void publish(std::shared_ptr<const ResultSnapshot> snapshot);

    /// The latest published snapshot (null before the first publication).
    /// Never blocks on engine work (see SharedSlot); the returned pointer
    /// keeps the snapshot alive.
    std::shared_ptr<const ResultSnapshot> current() const {
        return current_.load();
    }

    /// Version of the latest published snapshot; 0 before the first.
    std::uint64_t latest_version() const {
        return latest_version_.load(std::memory_order_acquire);
    }

private:
    SharedSlot<const ResultSnapshot> current_;
    std::atomic<std::uint64_t> latest_version_{0};
};

}  // namespace aa
