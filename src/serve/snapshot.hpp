// Versioned, immutable result snapshots: the payload the serve layer hands
// to concurrent readers while the anytime engine keeps refining.
//
// The anytime property says a valid (monotonically improving) closeness
// result exists after every RC step; the serve layer turns that into a
// query-able artifact. At each engine boundary (initialize, RC step, dynamic
// addition) the publisher freezes the current per-vertex closeness scores,
// reachable counts and quality metadata into a `ResultSnapshot` and swaps it
// into the `SnapshotStore` through an atomic shared_ptr slot (SharedSlot).
// Readers therefore never observe a half-built result, never block the RC
// loop, and keep any snapshot they hold alive for exactly as long as they
// need it.
//
// Memory bound: the store retains one snapshot; during a publication the
// outgoing and incoming snapshots briefly coexist, so the *store* pins at
// most two. Older snapshots survive only while a reader still holds its
// `shared_ptr`, and die with the last reference.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/closeness.hpp"
#include "serve/shared_slot.hpp"

namespace aa {

class AnytimeEngine;

/// Chunked copy-on-write score planes. Publication used to copy all n
/// closeness values every boundary even when the changed-vertex list was
/// tiny; CowScores shares the unchanged backing chunks with the previous
/// snapshot instead (groundwork for full snapshot deltas, ROADMAP item 5).
/// Chunks are immutable once built, so sharing them across snapshots is as
/// sound as sharing the snapshots themselves; a quiescent re-publication
/// shares every chunk and allocates only the chunk-pointer table.
class CowScores {
public:
    /// Vertices per chunk: small enough that test-scale graphs (a few
    /// hundred vertices) span several chunks, large enough that the
    /// per-chunk pointer overhead is negligible at production n.
    static constexpr std::size_t kChunkSize = 256;

    struct Chunk {
        std::vector<Weight> closeness;
        std::vector<std::size_t> reachable;
    };

    CowScores() = default;

    std::size_t size() const { return size_; }
    Weight closeness(std::size_t v) const {
        return chunks_[v / kChunkSize]->closeness[v % kChunkSize];
    }
    std::size_t reachable(std::size_t v) const {
        return chunks_[v / kChunkSize]->reachable[v % kChunkSize];
    }

    /// Build from fully materialized planes, sharing each chunk with
    /// `previous` when it has a size-compatible chunk at the same index and
    /// no vertex in `changed` (ascending ids) falls inside the chunk's
    /// range; chunks touched by a change (or beyond the previous snapshot)
    /// are freshly copied.
    static CowScores build(const std::vector<Weight>& closeness,
                           const std::vector<std::size_t>& reachable,
                           const CowScores* previous,
                           std::span<const VertexId> changed);

    /// Copy-on-write patch — the O(changed) publication path. Requires the
    /// new planes to have the same vertex count as `previous`: chunks
    /// containing a changed vertex are copied from `previous` and overwritten
    /// at exactly the changed positions, every other chunk pointer is shared.
    /// Produces chunk-for-chunk identical content (and the identical
    /// share/copy pattern) to build() over the fully materialized planes, so
    /// the delta and full publication paths are bit-indistinguishable.
    /// `changed` ascending; `closeness`/`reachable` parallel to it.
    static CowScores patch(const CowScores& previous,
                           std::span<const VertexId> changed,
                           std::span<const Weight> closeness,
                           std::span<const std::size_t> reachable);

    /// Adopt plain planes with every chunk freshly owned (no sharing) —
    /// test fixtures and adapters.
    static CowScores from(const ClosenessScores& scores);

    /// Copy back out to plain planes.
    ClosenessScores materialize() const;

    // Chunk identity, exposed for the memory-behaviour tests: two snapshots
    // share storage exactly when their chunk pointers compare equal.
    std::size_t num_chunks() const { return chunks_.size(); }
    const std::shared_ptr<const Chunk>& chunk(std::size_t i) const {
        return chunks_[i];
    }

private:
    std::size_t size_{0};
    std::vector<std::shared_ptr<const Chunk>> chunks_;
};

/// One frozen, immutable view of the engine's current answer. All fields are
/// set before publication and never mutated afterwards, which is what makes
/// lock-free sharing across reader threads sound.
struct ResultSnapshot {
    /// Strictly increasing across publications of one service.
    std::uint64_t version{0};
    /// RC steps the engine had completed when the snapshot was taken.
    std::size_t rc_step{0};
    /// Simulated clock at publication.
    double sim_seconds{0};
    /// True iff the engine was quiescent (answers are the exact APSP of the
    /// current graph — additions *and* deletions/reweights settled; exactly
    /// so for uniform weights, within the relaxation epsilon otherwise).
    bool quiescent{false};
    /// Self-measured unknown fraction: the share of distance-matrix entries
    /// still at infinity. An upper bound on QualityMetrics::frac_unknown
    /// (which also needs the exact matrix to exclude truly unreachable
    /// pairs); on connected graphs the two coincide at quiescence (both 0).
    double frac_unknown{0};
    /// Sum of reachable counts over all rows — the integer frac_unknown is
    /// derived from (unknown entries = n*n - total_reachable). Carried on
    /// the snapshot so the delta path can maintain it exactly (add the
    /// changed rows' reachable deltas) instead of re-scanning all rows.
    std::size_t total_reachable{0};
    /// Wall-clock publication time in seconds on the publisher's clock
    /// (QueryService's epoch); responses derive their staleness bound from
    /// it. 0 for snapshots built outside a service.
    double published_wall{0};
    /// Closeness + reachable per vertex, bit-identical to
    /// closeness_from_matrix(full_distance_matrix(), variant) at the same
    /// boundary (same per-row summation order). Chunks unchanged since the
    /// previous snapshot share its backing storage (copy-on-write).
    CowScores scores;
    /// Vertices whose (closeness, reachable) differ from the previous
    /// snapshot — newly added vertices included. This is what lets the
    /// incremental top-k patch instead of rebuild.
    std::vector<VertexId> changed;
    /// Certified closeness intervals, present iff has_bounds (the service's
    /// enable_bounds config). bound_lo/bound_hi bracket the converged score
    /// of every vertex via the wavefront certificate (see refine/bounds.hpp);
    /// bound_exact[v] != 0 means the interval has collapsed — v's published
    /// score is already its converged value.
    bool has_bounds{false};
    std::vector<double> bound_lo;
    std::vector<double> bound_hi;
    std::vector<std::uint8_t> bound_exact;
};

/// Freeze the engine's current state into a snapshot. Observer-only: reads
/// rank state directly and charges nothing to the simulated clock. Must be
/// called from the thread driving the engine (snapshot construction races
/// with RC relaxation otherwise). `previous` (may be null) seeds the
/// `changed` list and donates unchanged score chunks. `with_bounds` also
/// captures per-vertex closeness intervals (one extra pass-free scan of the
/// same rows; needed by the BoundedError freshness policy).
std::shared_ptr<ResultSnapshot> build_snapshot(const AnytimeEngine& engine,
                                               std::uint64_t version,
                                               const ResultSnapshot* previous,
                                               bool with_bounds = false);

/// The O(changed) publication payload: everything a predecessor snapshot
/// needs to become the next one. Only rows the engine actually mutated since
/// `previous` are re-summed and carried; a boundary that changed c rows costs
/// O(c * n) row scans + O(c) payload instead of O(n^2) + O(n).
struct SnapshotDelta {
    std::uint64_t version{0};
    std::size_t rc_step{0};
    double sim_seconds{0};
    bool quiescent{false};
    /// Vertices whose (closeness, reachable) bits differ from `previous` —
    /// exactly the list build_snapshot would have produced (touched but
    /// bit-unchanged rows are filtered out). Ascending.
    std::vector<VertexId> changed;
    /// New values, parallel to `changed`.
    std::vector<Weight> closeness;
    std::vector<std::size_t> reachable;
    /// Updated ResultSnapshot::total_reachable after applying the delta.
    std::size_t total_reachable{0};
    /// Rows actually re-summed to produce this delta (touched rows before
    /// the bit-unchanged filter) — the delta path's work measure.
    std::size_t rows_scanned{0};
};

/// Build the delta from `previous` to the engine's current boundary by
/// re-summing only the rows the engine reports as touched
/// (AnytimeEngine::take_changed_rows — which this call drains). Returns null
/// when a delta is not applicable and the caller must fall back to
/// build_snapshot: no identical-n predecessor (structural changes
/// re-normalize every score), a bounds-carrying predecessor (the wavefront
/// certificate tightens for *unchanged* rows every step), or a conservative
/// "all rows changed" report. Driver thread only, engine idle.
std::unique_ptr<SnapshotDelta> build_snapshot_delta(AnytimeEngine& engine,
                                                    std::uint64_t version,
                                                    const ResultSnapshot& previous);

/// Materialize the successor snapshot from `previous` + `delta`. Bit-identical
/// in every field (scores, changed list, frac_unknown, metadata) to
/// build_snapshot at the same boundary; only chunks containing changed
/// vertices are copied. published_wall is left 0 for the caller to stamp.
std::shared_ptr<ResultSnapshot> apply_snapshot_delta(
    const ResultSnapshot& previous, const SnapshotDelta& delta);

/// Single-slot snapshot holder. One writer (the RC/driver thread) swaps
/// snapshots in; any number of readers copy the current `shared_ptr` out.
/// A reader's critical section is a refcount bump (see SharedSlot), so
/// readers never wait on engine work and the RC loop never waits on readers.
class SnapshotStore {
public:
    SnapshotStore() = default;
    SnapshotStore(const SnapshotStore&) = delete;
    SnapshotStore& operator=(const SnapshotStore&) = delete;

    /// Publish a snapshot. Versions must strictly increase (assert-checked).
    void publish(std::shared_ptr<const ResultSnapshot> snapshot);

    /// The latest published snapshot (null before the first publication).
    /// Never blocks on engine work (see SharedSlot); the returned pointer
    /// keeps the snapshot alive.
    std::shared_ptr<const ResultSnapshot> current() const {
        return current_.load();
    }

    /// Version of the latest published snapshot; 0 before the first.
    std::uint64_t latest_version() const {
        return latest_version_.load(std::memory_order_acquire);
    }

private:
    SharedSlot<const ResultSnapshot> current_;
    std::atomic<std::uint64_t> latest_version_{0};
};

}  // namespace aa
