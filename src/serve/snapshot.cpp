#include "serve/snapshot.hpp"

#include <bit>

#include "common/assert.hpp"
#include "core/engine.hpp"

namespace aa {

namespace {

/// Bit-level equality: the "changed" list must treat any representational
/// difference as a change (responses promise bit-identity with the matrix
/// path), and must not trip on NaN-style surprises.
bool same_bits(Weight a, Weight b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

std::shared_ptr<ResultSnapshot> build_snapshot(const AnytimeEngine& engine,
                                               std::uint64_t version,
                                               const ResultSnapshot* previous) {
    auto snapshot = std::make_shared<ResultSnapshot>();
    snapshot->version = version;
    snapshot->rc_step = engine.rc_steps_completed();
    snapshot->sim_seconds = engine.sim_seconds();
    snapshot->quiescent = engine.quiescent();

    const std::size_t n = engine.num_vertices();
    const ClosenessVariant variant = engine.config().closeness_variant;
    snapshot->scores.closeness.assign(n, 0);
    snapshot->scores.reachable.assign(n, 0);

    // One pass per row, summing in column order — the identical order
    // closeness_from_matrix uses, so scores agree bit-for-bit with the
    // full_distance_matrix() path for the same engine state.
    std::size_t unknown_entries = 0;
    engine.visit_rows([&](VertexId v, std::span<const Weight> row) {
        Weight sum = 0;
        std::size_t reached = 0;
        for (const Weight d : row) {
            if (d < kInfinity) {
                sum += d;
                ++reached;
            }
        }
        unknown_entries += row.size() - reached;
        snapshot->scores.reachable[v] = reached;
        snapshot->scores.closeness[v] = closeness_score(sum, reached, n, variant);
    });
    snapshot->frac_unknown =
        n > 0 ? static_cast<double>(unknown_entries) / (static_cast<double>(n) *
                                                        static_cast<double>(n))
              : 0.0;

    if (previous == nullptr) {
        snapshot->changed.resize(n);
        for (std::size_t v = 0; v < n; ++v) {
            snapshot->changed[v] = static_cast<VertexId>(v);
        }
    } else {
        const std::size_t prev_n = previous->scores.closeness.size();
        for (std::size_t v = 0; v < n; ++v) {
            if (v >= prev_n ||
                !same_bits(snapshot->scores.closeness[v],
                           previous->scores.closeness[v]) ||
                snapshot->scores.reachable[v] != previous->scores.reachable[v]) {
                snapshot->changed.push_back(static_cast<VertexId>(v));
            }
        }
    }
    return snapshot;
}

void SnapshotStore::publish(std::shared_ptr<const ResultSnapshot> snapshot) {
    AA_ASSERT_MSG(snapshot != nullptr, "cannot publish a null snapshot");
    AA_ASSERT_MSG(snapshot->version > latest_version_.load(std::memory_order_relaxed),
                  "snapshot versions must strictly increase");
    // Version first, pointer second: latest_version() is always >= the
    // version of whatever current() returns, so a reader computing
    // `latest_version() - snapshot->version` never underflows (it may
    // over-report staleness by one publication mid-swap, never under).
    latest_version_.store(snapshot->version, std::memory_order_release);
    current_.store(std::move(snapshot));
}

}  // namespace aa
