#include "serve/snapshot.hpp"

#include <algorithm>
#include <bit>

#include "common/assert.hpp"
#include "core/engine.hpp"
#include "refine/bounds.hpp"

namespace aa {

namespace {

/// Bit-level equality: the "changed" list must treat any representational
/// difference as a change (responses promise bit-identity with the matrix
/// path), and must not trip on NaN-style surprises.
bool same_bits(Weight a, Weight b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

CowScores CowScores::build(const std::vector<Weight>& closeness,
                           const std::vector<std::size_t>& reachable,
                           const CowScores* previous,
                           std::span<const VertexId> changed) {
    AA_ASSERT_MSG(closeness.size() == reachable.size(),
                  "score planes must have equal length");
    CowScores out;
    out.size_ = closeness.size();
    const std::size_t num_chunks = (out.size_ + kChunkSize - 1) / kChunkSize;
    out.chunks_.reserve(num_chunks);
    std::size_t next_changed = 0;  // cursor into the ascending changed list
    for (std::size_t c = 0; c < num_chunks; ++c) {
        const std::size_t lo = c * kChunkSize;
        const std::size_t hi = std::min(lo + kChunkSize, out.size_);
        while (next_changed < changed.size() &&
               static_cast<std::size_t>(changed[next_changed]) < lo) {
            ++next_changed;
        }
        const bool touched = next_changed < changed.size() &&
                             static_cast<std::size_t>(changed[next_changed]) < hi;
        if (!touched && previous != nullptr && c < previous->chunks_.size() &&
            previous->chunks_[c]->closeness.size() == hi - lo) {
            out.chunks_.push_back(previous->chunks_[c]);
            continue;
        }
        auto chunk = std::make_shared<Chunk>();
        chunk->closeness.assign(closeness.begin() + static_cast<std::ptrdiff_t>(lo),
                                closeness.begin() + static_cast<std::ptrdiff_t>(hi));
        chunk->reachable.assign(reachable.begin() + static_cast<std::ptrdiff_t>(lo),
                                reachable.begin() + static_cast<std::ptrdiff_t>(hi));
        out.chunks_.push_back(std::move(chunk));
    }
    return out;
}

CowScores CowScores::patch(const CowScores& previous,
                           std::span<const VertexId> changed,
                           std::span<const Weight> closeness,
                           std::span<const std::size_t> reachable) {
    AA_ASSERT_MSG(changed.size() == closeness.size() &&
                      changed.size() == reachable.size(),
                  "delta planes must be parallel to the changed list");
    CowScores out;
    out.size_ = previous.size_;
    out.chunks_.reserve(previous.chunks_.size());
    std::size_t next = 0;  // cursor into the ascending changed list
    for (std::size_t c = 0; c < previous.chunks_.size(); ++c) {
        const std::size_t lo = c * kChunkSize;
        const std::size_t hi = std::min(lo + kChunkSize, out.size_);
        if (next >= changed.size() ||
            static_cast<std::size_t>(changed[next]) >= hi) {
            out.chunks_.push_back(previous.chunks_[c]);  // untouched: share
            continue;
        }
        auto chunk = std::make_shared<Chunk>(*previous.chunks_[c]);
        while (next < changed.size() &&
               static_cast<std::size_t>(changed[next]) < hi) {
            const std::size_t at = static_cast<std::size_t>(changed[next]) - lo;
            chunk->closeness[at] = closeness[next];
            chunk->reachable[at] = reachable[next];
            ++next;
        }
        out.chunks_.push_back(std::move(chunk));
    }
    AA_ASSERT_MSG(next == changed.size(),
                  "changed vertex beyond the previous snapshot's planes");
    return out;
}

CowScores CowScores::from(const ClosenessScores& scores) {
    return build(scores.closeness, scores.reachable, nullptr, {});
}

ClosenessScores CowScores::materialize() const {
    ClosenessScores out;
    out.closeness.reserve(size_);
    out.reachable.reserve(size_);
    for (const auto& chunk : chunks_) {
        out.closeness.insert(out.closeness.end(), chunk->closeness.begin(),
                             chunk->closeness.end());
        out.reachable.insert(out.reachable.end(), chunk->reachable.begin(),
                             chunk->reachable.end());
    }
    return out;
}

std::shared_ptr<ResultSnapshot> build_snapshot(const AnytimeEngine& engine,
                                               std::uint64_t version,
                                               const ResultSnapshot* previous,
                                               bool with_bounds) {
    auto snapshot = std::make_shared<ResultSnapshot>();
    snapshot->version = version;
    snapshot->rc_step = engine.rc_steps_completed();
    snapshot->sim_seconds = engine.sim_seconds();
    snapshot->quiescent = engine.quiescent();

    const std::size_t n = engine.num_vertices();
    const ClosenessVariant variant = engine.config().closeness_variant;
    std::vector<Weight> closeness(n, 0);
    std::vector<std::size_t> reachable(n, 0);
    const BoundsParams bounds_params =
        with_bounds ? engine.bounds_params() : BoundsParams{};
    if (with_bounds) {
        snapshot->has_bounds = true;
        snapshot->bound_lo.assign(n, 0);
        snapshot->bound_hi.assign(n, 0);
        snapshot->bound_exact.assign(n, 0);
    }

    // One pass per row, summing in column order — the identical order
    // closeness_from_matrix uses, so scores agree bit-for-bit with the
    // full_distance_matrix() path for the same engine state.
    std::size_t total_reachable = 0;
    engine.visit_rows([&](VertexId v, std::span<const Weight> row) {
        Weight sum = 0;
        std::size_t reached = 0;
        for (const Weight d : row) {
            if (d < kInfinity) {
                sum += d;
                ++reached;
            }
        }
        total_reachable += reached;
        reachable[v] = reached;
        closeness[v] = closeness_score(sum, reached, n, variant);
        if (with_bounds) {
            const ClosenessInterval interval =
                row_closeness_interval(row, v, bounds_params);
            snapshot->bound_lo[v] = interval.lo;
            snapshot->bound_hi[v] = interval.hi;
            snapshot->bound_exact[v] = interval.exact ? 1 : 0;
        }
    });
    // unknown entries = n*n - total_reachable (every row spans n columns):
    // the same integer the per-row (row.size - reached) accumulation yields,
    // kept in this closed form so the delta path can maintain it exactly.
    snapshot->total_reachable = total_reachable;
    snapshot->frac_unknown =
        n > 0 ? static_cast<double>(n * n - total_reachable) /
                    (static_cast<double>(n) * static_cast<double>(n))
              : 0.0;

    if (previous == nullptr) {
        snapshot->changed.resize(n);
        for (std::size_t v = 0; v < n; ++v) {
            snapshot->changed[v] = static_cast<VertexId>(v);
        }
    } else {
        const std::size_t prev_n = previous->scores.size();
        for (std::size_t v = 0; v < n; ++v) {
            if (v >= prev_n ||
                !same_bits(closeness[v], previous->scores.closeness(v)) ||
                reachable[v] != previous->scores.reachable(v)) {
                snapshot->changed.push_back(static_cast<VertexId>(v));
            }
        }
    }
    snapshot->scores =
        CowScores::build(closeness, reachable,
                         previous != nullptr ? &previous->scores : nullptr,
                         snapshot->changed);
    return snapshot;
}

std::unique_ptr<SnapshotDelta> build_snapshot_delta(AnytimeEngine& engine,
                                                    std::uint64_t version,
                                                    const ResultSnapshot& previous) {
    if (previous.has_bounds) {
        // The wavefront certificate tightens bounds of *unchanged* rows on
        // every step, so a bounds-carrying stream has no O(changed) delta.
        return nullptr;
    }
    const std::size_t n = engine.num_vertices();
    if (n == 0 || n != previous.scores.size()) {
        return nullptr;  // structural mismatch: the full path re-derives all
    }
    // Draining commits us: the stamps reset here, so from this point the
    // delta must be produced (or the caller must fall back to a *full*
    // build, which re-derives every row and needs no stamps).
    AnytimeEngine::ChangedRows touched = engine.take_changed_rows();
    if (touched.all) {
        return nullptr;
    }

    auto delta = std::make_unique<SnapshotDelta>();
    delta->version = version;
    delta->rc_step = engine.rc_steps_completed();
    delta->sim_seconds = engine.sim_seconds();
    delta->quiescent = engine.quiescent();
    delta->total_reachable = previous.total_reachable;
    delta->rows_scanned = touched.rows.size();
    const ClosenessVariant variant = engine.config().closeness_variant;
    for (const VertexId v : touched.rows) {
        const std::span<const Weight> row = engine.row_view(v);
        Weight sum = 0;
        std::size_t reached = 0;
        for (const Weight d : row) {
            if (d < kInfinity) {
                sum += d;
                ++reached;
            }
        }
        const Weight score = closeness_score(sum, reached, n, variant);
        // Touched rows whose published values kept their exact bits are
        // filtered here, so `changed` matches the full path's bit-compare
        // over all rows: untouched rows cannot have changed (no store
        // mutation, same n, same column-order summation).
        if (same_bits(score, previous.scores.closeness(v)) &&
            reached == previous.scores.reachable(v)) {
            continue;
        }
        delta->changed.push_back(v);
        delta->closeness.push_back(score);
        delta->reachable.push_back(reached);
        delta->total_reachable += reached;
        delta->total_reachable -= previous.scores.reachable(v);
    }
    return delta;
}

std::shared_ptr<ResultSnapshot> apply_snapshot_delta(
    const ResultSnapshot& previous, const SnapshotDelta& delta) {
    auto snapshot = std::make_shared<ResultSnapshot>();
    snapshot->version = delta.version;
    snapshot->rc_step = delta.rc_step;
    snapshot->sim_seconds = delta.sim_seconds;
    snapshot->quiescent = delta.quiescent;
    snapshot->total_reachable = delta.total_reachable;
    const std::size_t n = previous.scores.size();
    // Same closed form (and therefore the same bits) as build_snapshot.
    snapshot->frac_unknown =
        n > 0 ? static_cast<double>(n * n - delta.total_reachable) /
                    (static_cast<double>(n) * static_cast<double>(n))
              : 0.0;
    snapshot->changed = delta.changed;
    snapshot->scores = CowScores::patch(previous.scores, delta.changed,
                                        delta.closeness, delta.reachable);
    return snapshot;
}

void SnapshotStore::publish(std::shared_ptr<const ResultSnapshot> snapshot) {
    AA_ASSERT_MSG(snapshot != nullptr, "cannot publish a null snapshot");
    AA_ASSERT_MSG(snapshot->version > latest_version_.load(std::memory_order_relaxed),
                  "snapshot versions must strictly increase");
    // Version first, pointer second: latest_version() is always >= the
    // version of whatever current() returns, so a reader computing
    // `latest_version() - snapshot->version` never underflows (it may
    // over-report staleness by one publication mid-swap, never under).
    latest_version_.store(snapshot->version, std::memory_order_release);
    current_.store(std::move(snapshot));
}

}  // namespace aa
