// Top-k closeness over result snapshots: a one-shot selection plus an
// incrementally maintained ranking that is *patched* between consecutive
// snapshots (using the snapshot's changed-vertex list) and only rebuilt when
// a patch cannot be proven exact.
//
// Ordering is the library-wide ranking order (closeness_ranking): score
// descending, vertex id ascending on ties — a strict total order, since ids
// are unique. `topk_from_snapshot` is therefore always the k-prefix of
// closeness_ranking over the same scores, and the incremental tracker is
// pinned to produce bit-identical entries (tests enforce it).
//
// Why patching is sound: between consecutive snapshots, every vertex whose
// (closeness, reachable) changed appears in `ResultSnapshot::changed`. A
// vertex absent from that list kept its exact score bits, and — because the
// previous ranking prefix was correct — sorted strictly after the previous
// last maintained entry. Re-ranking the union {previous entries, changed
// vertices} with fresh scores is thus exact *unless* the new last entry is
// weaker than the previous last entry was: only then could an unchanged
// outsider deserve a slot, and the tracker falls back to a full rebuild
// (counted, observable). That threshold check is what keeps score
// *decreases* (deletions, weight raises) exact — a demoted hub either stays
// rankable from the maintained set or triggers the rebuild.
//
// To keep decreases cheap, the tracker maintains a *reserve*: the exact top
// R = min(2k, n) prefix of the ranking, of which entries() is the k-prefix.
// A demotion that drops a hub out of the top k but not out of the top R is
// then absorbed as a patch (the demoted entry is evicted from the served
// prefix and the next reserve entry promoted); only a demotion past the
// R-th entry — where unchanged outsiders could overtake — forces the O(n)
// rebuild.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "serve/snapshot.hpp"
#include "shard/ownership.hpp"

namespace aa {

struct TopKEntry {
    VertexId vertex{0};
    Weight score{0};

    friend bool operator==(const TopKEntry&, const TopKEntry&) = default;
};

/// True if `a` outranks `b`: higher score, ties broken by smaller id.
inline bool topk_outranks(const TopKEntry& a, const TopKEntry& b) {
    if (a.score != b.score) {
        return a.score > b.score;
    }
    return a.vertex < b.vertex;
}

/// The top min(k, n) vertices of a snapshot by full selection — the k-prefix
/// of closeness_ranking(snapshot.scores), scores included.
std::vector<TopKEntry> topk_from_snapshot(const ResultSnapshot& snapshot,
                                          std::size_t k);

/// Selection restricted to `members` (any order, unique): the k-prefix of the
/// ranking over just those vertices. The per-shard trackers rebuild through
/// this, and the global k-prefix is contained in the union of per-shard
/// k-prefixes (the merge-at-read argument, see topk_sharded).
std::vector<TopKEntry> topk_from_subset(const ResultSnapshot& snapshot,
                                        std::span<const VertexId> members,
                                        std::size_t k);

/// Shard-decomposed selection: one partial top-k per logical shard, merged at
/// read. Bit-identical to topk_from_snapshot (pinned by tests): the ranking
/// is a strict total order and the global k-prefix is contained in the union
/// of the per-shard k-prefixes. The decomposition is the serve layer's
/// sharding hook — each partial is computable by (and cacheable on) the
/// shard's owning rank, and a migration invalidates only the moved shard's
/// partial. Snapshot vertices the ownership map has not registered yet (a
/// snapshot can outrun the map across a growth batch) are pooled in one
/// extra pseudo-shard so no candidate is ever dropped.
std::vector<TopKEntry> topk_sharded(const ResultSnapshot& snapshot,
                                    const ShardOwnership& ownership,
                                    std::size_t k);

/// Maintains the top-k ranking across a stream of snapshots. Not thread-safe
/// by itself; QueryService serializes updates and hands readers immutable
/// copies.
class IncrementalTopK {
public:
    /// `rebuild_churn` bounds the patch path by churn fraction: when more
    /// than rebuild_churn * n tracked vertices changed in one snapshot, the
    /// O(n) rebuild is cheaper than sorting a candidate set of nearly n, so
    /// apply() rebuilds outright (entries are bit-identical either way —
    /// the threshold moves work, never results). 1.0 restores the historical
    /// always-try-to-patch behaviour; ServeConfig::topk_rebuild_churn is the
    /// service-level knob.
    explicit IncrementalTopK(std::size_t k, double rebuild_churn = 1.0);

    /// Advance to `snapshot`. Patches when the snapshot is the direct
    /// successor of the last one applied and the patch is provably exact;
    /// rebuilds otherwise. Entries afterwards are bit-identical to
    /// topk_from_snapshot(snapshot, k).
    void apply(const ResultSnapshot& snapshot);

    /// Advance over the fixed subset `members` (ascending, unique): the
    /// tracker maintains the top-k of just those vertices — the per-shard
    /// decomposition. `changed` must be the members whose scores changed in
    /// this snapshot (ascending; a subset of snapshot.changed). The patch /
    /// rebuild discipline and its soundness argument are the full-range
    /// ones with n = members.size(); the membership must not change between
    /// chained snapshots (call reset() when it does — the service resets on
    /// growth). Entries afterwards are bit-identical to
    /// topk_from_subset(snapshot, members, k).
    void apply_subset(const ResultSnapshot& snapshot,
                      std::span<const VertexId> members,
                      std::span<const VertexId> changed);

    /// Forget the maintained state (membership changed); the next apply is
    /// a rebuild.
    void reset();

    std::size_t k() const { return k_; }
    /// Version of the last snapshot applied (0 before the first).
    std::uint64_t version() const { return version_; }
    const std::vector<TopKEntry>& entries() const { return entries_; }
    /// The maintained exact ranking prefix (top min(2k, n)); entries() is
    /// its k-prefix. Exposed for tests and introspection.
    const std::vector<TopKEntry>& reserve() const { return reserve_; }

    /// Maintenance counters: how often apply() patched vs rebuilt.
    std::size_t patched() const { return patched_; }
    std::size_t rebuilt() const { return rebuilt_; }

private:
    /// Shared core of apply / apply_subset: `full` selects the whole
    /// snapshot; otherwise `members`/`changed` scope the tracked universe.
    void advance(const ResultSnapshot& snapshot, bool full,
                 std::span<const VertexId> members,
                 std::span<const VertexId> changed);

    std::size_t k_;
    double rebuild_churn_;
    std::uint64_t version_{0};
    /// Vertex count of the last snapshot applied: outsiders (vertices beyond
    /// reserve_) exist iff last_n_ > reserve_.size(), which is what decides
    /// whether a patch needs the threshold check at all.
    std::size_t last_n_{0};
    std::vector<TopKEntry> entries_;
    std::vector<TopKEntry> reserve_;
    std::size_t patched_{0};
    std::size_t rebuilt_{0};
};

}  // namespace aa
