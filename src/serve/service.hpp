// QueryService: the anytime query-serving layer over one AnytimeEngine.
//
// One *driver* thread owns the engine (initialize / rc_step / additions);
// the service hooks the engine's boundary callback so every RC step and
// add-phase boundary publishes a fresh immutable ResultSnapshot (see
// serve/snapshot.hpp). Any number of *reader* threads issue point, batch and
// top-k closeness queries against the published snapshots — they never touch
// engine state and never block the RC loop.
//
// Publication is O(changed): when the engine reports which rows it touched
// since the last boundary (AnytimeEngine::take_changed_rows), the service
// builds a SnapshotDelta — re-summing only those rows — and applies it to the
// predecessor's copy-on-write chunks, so a boundary that changed c vertices
// costs O(c·n) row scans and copies only the chunks containing them. The
// result is bit-identical in every field to the full build_snapshot path
// (pinned by lattice tests); the full path remains as the fallback for
// structural changes, bounds-carrying streams, and `delta_publication=false`.
// PublicationStats counts both paths' work (rows scanned, bytes published,
// chunks copied vs shared) so the saving is measurable, not assumed.
//
// Sharded reads: with `shard_reads` (default), the service maintains one
// SharedSlot plane per logical shard of the engine's ShardOwnership map,
// each holding the latest snapshot plus that shard's incrementally-patched
// top-k partial. Point and batch reads route through the plane owning the
// queried vertex; top-k reads merge the per-shard partials at read time
// (bit-identical to the full selection — the ranking is a strict total
// order). Planes are updated sequentially by the driver, so the freshness
// contract is *per-shard* monotone reads: successive reads of the same
// vertex never go backwards in version, while reads across different shards
// may briefly observe different versions mid-publication (the classic
// sharded-store contract). Queries that must wait, and the merged top-k
// read when plane versions disagree, fall back to the single global
// snapshot slot, which stays globally monotone.
//
// Freshness policies (per query):
//   ServeStale        — answer from the current snapshot immediately.
//   WaitForNextStep   — answer from the first snapshot published after the
//                       query arrived (one more engine boundary of progress).
//   WaitForQuiescence — answer only from a quiescent snapshot (exact APSP).
//   BoundedError      — answer immediately like ServeStale, but attach the
//                       certified closeness interval [bound_lo, bound_hi]
//                       that contains the converged score (Unavailable when
//                       the service was not configured with enable_bounds).
//
// Multi-tenant admission: every query is issued on behalf of a tenant
// (kDefaultTenant unless stated). Each tenant has its own bounded pending
// set (`TenantConfig::max_pending`): a waiting query from a tenant whose set
// is full is shed immediately (QueryStatus::Shed) *without* touching any
// other tenant's capacity — one tenant flooding the service cannot starve
// another's waiters. Tenants also carry a freshness SLO (served responses
// staler than `freshness_slo` wall-seconds count as SLO misses, observable
// per tenant) and a demand weight that scales the vertices they query in the
// engine's DemandTracker, so hot tenants steer demand-driven refinement
// harder. ServeStale queries never wait and are never shed.
//
// Two execution modes for the waiting policies:
//   * concurrent (default): the reader blocks on a condition variable until
//     the driver thread's next publication satisfies the policy (or the
//     service is closed).
//   * synchronous: a single-threaded caller (scenario_runner) installs a
//     step driver via set_step_driver(); unsatisfied queries advance the
//     engine inline instead of blocking.
//
// Every response carries its snapshot version, the engine progress metadata
// of that snapshot, and a staleness bound (publications that happened after
// the served snapshot, plus the snapshot's wall-clock age). Serving metrics
// (latency/staleness histograms, shed counters, publication spans, and
// per-tenant serve.tenant.<name>.* series) are recorded in the service's own
// internally-locked MetricsRegistry under `serve.*` names.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.hpp"
#include "serve/snapshot.hpp"
#include "serve/topk.hpp"
#include "shard/ownership.hpp"

namespace aa {

class AnytimeEngine;

enum class FreshnessPolicy {
    ServeStale,
    WaitForNextStep,
    WaitForQuiescence,
    /// Never waits; returns (score, certified error interval) pairs from the
    /// current snapshot. Requires snapshots built with bounds
    /// (ServeConfig::enable_bounds) — Unavailable otherwise.
    BoundedError,
};

/// Human-readable policy name
/// ("stale" / "next-step" / "quiescence" / "bounded-error").
std::string_view freshness_policy_name(FreshnessPolicy policy);

enum class QueryStatus {
    /// Served from a snapshot satisfying the policy.
    Ok,
    /// Rejected by admission control: the tenant's pending-query set was full.
    Shed,
    /// The policy cannot be satisfied: service closed while waiting, no
    /// snapshot exists yet under ServeStale, or the synchronous step driver
    /// ran out of progress.
    Unavailable,
};

/// Tenant identifier: a dense index assigned by register_tenant(). Tenant 0
/// always exists and inherits ServeConfig's service-wide limits.
using TenantId = std::size_t;
inline constexpr TenantId kDefaultTenant = 0;

/// Per-tenant admission and freshness contract.
struct TenantConfig {
    /// Bound on this tenant's concurrently *waiting* queries before its
    /// further waiting queries are shed. Independent per tenant: exhausting
    /// one tenant's budget never sheds (or delays) another's queries.
    std::size_t max_pending{64};
    /// Freshness SLO in wall-seconds: an Ok response whose staleness_wall
    /// exceeds this counts as an SLO miss for the tenant (observable via
    /// tenant_counters / serve.tenant.<name>.staleness). Infinity = no SLO.
    double freshness_slo{std::numeric_limits<double>::infinity()};
    /// Weight applied when recording this tenant's queried vertices into the
    /// engine's DemandTracker: a tenant with weight w counts as w queries per
    /// query when demand-driven refinement ranks vertices.
    double demand_weight{1.0};
};

/// Point-in-time copy of one tenant's identity and counters.
struct TenantCounters {
    std::string name;
    TenantConfig config;
    std::uint64_t served{0};
    std::uint64_t shed{0};
    std::uint64_t slo_misses{0};
};

/// Accumulated publication work, split by path. `published_bytes` charges the
/// full path for the planes it materializes (n score + n reachable values,
/// plus its changed list) and the delta path only for the delta payload —
/// the honest O(n) vs O(changed) comparison the bench's reduction bar is
/// measured on. Chunk counters compare each published snapshot's chunk
/// pointers against its predecessor's (shared = same backing storage).
struct PublicationStats {
    std::uint64_t publications{0};
    std::uint64_t delta_publications{0};
    std::uint64_t full_publications{0};
    /// Sum of changed-list lengths across publications.
    std::size_t changed_rows{0};
    /// Distance-matrix rows re-summed (full: n per publication).
    std::size_t rows_scanned{0};
    std::size_t chunks_copied{0};
    std::size_t chunks_shared{0};
    std::size_t published_bytes{0};
};

struct ServeConfig {
    /// k of the incrementally maintained top-k ranking; top-k queries with
    /// k <= this are served from the patched ranking, larger ones fall back
    /// to a full selection on the snapshot.
    std::size_t topk_maintained{10};
    /// Bound on concurrently *waiting* queries of the default tenant before
    /// shedding (TenantConfig::max_pending of tenant 0; additional tenants
    /// bring their own).
    std::size_t max_pending{64};
    /// Policy used by the no-policy query overloads.
    FreshnessPolicy default_policy{FreshnessPolicy::ServeStale};
    /// Record serve.* metrics (histograms, counters, publish spans).
    bool enable_metrics{true};
    /// Capture certified closeness intervals (refine/bounds.hpp) into every
    /// snapshot. Required by the BoundedError policy and by top-k
    /// certification; costs one interval computation per row per
    /// publication, so off by default. Disables delta publication (the
    /// wavefront certificate tightens unchanged rows' bounds every step).
    bool enable_bounds{false};
    /// Feed queried vertices into the engine's DemandTracker (scaled by the
    /// querying tenant's demand_weight) so the QueryHeat refinement policy
    /// can steer RC work toward them. Recording is wait-free and, under the
    /// default Uniform policy, has no effect on the engine schedule.
    bool record_demand{true};
    /// Publish O(changed) snapshot deltas against the previous snapshot when
    /// the engine can report touched rows; falls back to the full rebuild
    /// whenever a delta is inapplicable. Results are bit-identical either
    /// way (lattice-tested); off = always full (the bench baseline).
    bool delta_publication{true};
    /// Maintain per-shard snapshot planes aligned to the engine's
    /// ShardOwnership and route immediate reads through them (per-shard
    /// monotone reads); off = every read goes through the single global
    /// snapshot slot.
    bool shard_reads{true};
    /// Churn fraction above which the incremental top-k rebuilds instead of
    /// patching (see IncrementalTopK); identical entries either way.
    double topk_rebuild_churn{0.5};
};

/// Response metadata shared by every query shape.
struct ResponseMeta {
    QueryStatus status{QueryStatus::Unavailable};
    /// Snapshot the answer was read from (0 when status != Ok).
    std::uint64_t version{0};
    std::size_t rc_step{0};
    double sim_seconds{0};
    bool quiescent{false};
    double frac_unknown{0};
    /// Publications that had already superseded the served snapshot when the
    /// response was assembled (0 = served the latest).
    std::uint64_t staleness_versions{0};
    /// Wall-clock age of the served snapshot at response time, seconds.
    double staleness_wall{0};
};

struct PointResult {
    ResponseMeta meta;
    VertexId vertex{0};
    Weight closeness{0};
    std::size_t reachable{0};
    /// Certified interval containing the converged closeness score and
    /// whether it has already collapsed onto it. Meaningful iff the served
    /// snapshot carried bounds (ServeConfig::enable_bounds); [0, 0] / false
    /// otherwise.
    double bound_lo{0};
    double bound_hi{0};
    bool exact{false};
};

struct BatchResult {
    ResponseMeta meta;
    /// Parallel to the queried vertex list; all values from one snapshot.
    std::vector<Weight> closeness;
    std::vector<std::size_t> reachable;
    /// Certified intervals parallel to the vertex list; empty unless the
    /// served snapshot carried bounds (ServeConfig::enable_bounds).
    std::vector<double> bound_lo;
    std::vector<double> bound_hi;
};

struct TopKResult {
    ResponseMeta meta;
    std::vector<TopKEntry> entries;
    /// True iff the returned *set* of vertices is provably the converged
    /// top-k: every member's certified lower bound strictly exceeds every
    /// non-member's certified upper bound. Only a bounds-carrying snapshot
    /// can certify; ties at the k-th score never do (the set is genuinely
    /// ambiguous there).
    bool certified{false};
};

class QueryService {
public:
    /// Attaches to `engine` (installs its boundary hook) and, if the engine
    /// is already initialized, publishes snapshot #1 immediately. The engine
    /// must outlive the service; the service detaches the hook on
    /// destruction.
    explicit QueryService(AnytimeEngine& engine, ServeConfig config = {});
    ~QueryService();

    QueryService(const QueryService&) = delete;
    QueryService& operator=(const QueryService&) = delete;

    // ---- driver side (the thread stepping the engine) ---------------------

    /// Build and publish a snapshot of the engine's current state — through
    /// an O(changed) delta against the previous snapshot when applicable,
    /// through the full rebuild otherwise (identical results). Invoked
    /// automatically at engine boundaries through the hook; callable
    /// directly for an extra out-of-band publication.
    void publish();

    /// Observer called on the driver thread after every publication, with
    /// the engine guaranteed idle — tests use it to capture ground truth at
    /// exactly the published boundary.
    void set_on_publish(
        std::function<void(const ResultSnapshot&)> on_publish);

    /// Synchronous mode: instead of blocking, unsatisfied waiting queries
    /// call `driver` (which should advance the engine, e.g. one rc_step) and
    /// re-check; `driver` returning false means no more progress is
    /// possible. Only for single-threaded use.
    void set_step_driver(std::function<bool()> driver);

    /// Register a tenant; returns its id for the per-tenant query overloads.
    /// Driver thread only (readers may query concurrently; registrations
    /// must not race each other).
    TenantId register_tenant(std::string name, TenantConfig config);

    /// Wake all waiters with QueryStatus::Unavailable and refuse future
    /// waiting; ServeStale queries keep being served. Idempotent.
    void close();

    // ---- reader side (any thread) -----------------------------------------

    PointResult point(VertexId v, FreshnessPolicy policy, TenantId tenant);
    PointResult point(VertexId v, FreshnessPolicy policy) {
        return point(v, policy, kDefaultTenant);
    }
    PointResult point(VertexId v) {
        return point(v, config_.default_policy, kDefaultTenant);
    }
    BatchResult batch(std::span<const VertexId> vertices,
                      FreshnessPolicy policy, TenantId tenant);
    BatchResult batch(std::span<const VertexId> vertices,
                      FreshnessPolicy policy) {
        return batch(vertices, policy, kDefaultTenant);
    }
    BatchResult batch(std::span<const VertexId> vertices) {
        return batch(vertices, config_.default_policy, kDefaultTenant);
    }
    TopKResult topk(std::size_t k, FreshnessPolicy policy, TenantId tenant);
    TopKResult topk(std::size_t k, FreshnessPolicy policy) {
        return topk(k, policy, kDefaultTenant);
    }
    TopKResult topk(std::size_t k) {
        return topk(k, config_.default_policy, kDefaultTenant);
    }

    /// The latest snapshot (wait-free; null before the first publication).
    std::shared_ptr<const ResultSnapshot> snapshot() const {
        return store_.current();
    }
    const SnapshotStore& store() const { return store_; }

    // ---- introspection ----------------------------------------------------

    std::uint64_t publications() const;
    std::uint64_t shed_count() const;
    /// Incremental top-k maintenance counters, summed across the per-shard
    /// trackers (or the single global tracker when shard_reads is off).
    std::size_t topk_patched() const;
    std::size_t topk_rebuilt() const;
    /// Accumulated publication work counters. Mutated on the driver thread
    /// during publish(); read it from the driver thread or after the driver
    /// has gone idle.
    PublicationStats publication_stats() const { return stats_; }
    std::size_t num_tenants() const;
    /// Counter snapshot of one tenant (any thread).
    TenantCounters tenant_counters(TenantId tenant) const;
    /// Seconds since service construction on the service's wall clock (the
    /// epoch of ResultSnapshot::published_wall).
    double wall_now() const;
    /// Thread-safe copy of the serve.* metrics registry.
    MetricsRegistry metrics_copy() const;

    const ServeConfig& config() const { return config_; }

private:
    struct TopKView {
        std::uint64_t version{0};
        std::vector<TopKEntry> entries;
    };

    /// One shard's published plane: the snapshot it was cut from plus the
    /// shard's maintained top-k partial. Immutable once stored.
    struct ShardView {
        std::shared_ptr<const ResultSnapshot> snapshot;
        std::vector<TopKEntry> topk;
    };

    /// Routing table for sharded reads: vertex -> plane. Rebuilt only when
    /// the vertex count changes (shard membership is stable under migration
    /// — moves re-bind shards to ranks, not vertices to shards).
    struct ShardTable {
        std::vector<ShardId> shard_of;
        std::vector<std::shared_ptr<SharedSlot<const ShardView>>> planes;
    };

    struct TenantState {
        std::string name;
        TenantConfig config;
        /// Waiting queries of this tenant; guarded by wait_mutex_.
        std::size_t pending{0};
        std::atomic<std::uint64_t> served{0};
        std::atomic<std::uint64_t> shed{0};
        std::atomic<std::uint64_t> slo_misses{0};
        MetricsRegistry::Handle latency{MetricsRegistry::kNullHandle};
        MetricsRegistry::Handle staleness{MetricsRegistry::kNullHandle};
        MetricsRegistry::Handle shed_counter{MetricsRegistry::kNullHandle};
    };

    std::shared_ptr<TenantState> make_tenant(std::string name,
                                             TenantConfig config);
    std::shared_ptr<TenantState> tenant_state(TenantId tenant) const;

    /// Resolve the snapshot a query with `policy` should be served from;
    /// handles waiting, the step driver and per-tenant admission control.
    /// Null result means the query ends with `status` (Shed / Unavailable).
    std::shared_ptr<const ResultSnapshot> admit(FreshnessPolicy policy,
                                                TenantState& tenant,
                                                QueryStatus& status);
    static bool satisfied(FreshnessPolicy policy,
                          const ResultSnapshot* snapshot,
                          std::uint64_t arrival_version);
    /// The shard plane snapshot owning `v`, or null when sharded routing
    /// cannot serve it (no table yet, vertex newer than the table).
    std::shared_ptr<const ResultSnapshot> shard_route(VertexId v) const;
    ResponseMeta make_meta(const ResultSnapshot& snapshot) const;
    /// Certify `entries` as the converged top-k set from a bounds-carrying
    /// snapshot (see TopKResult::certified).
    static bool certify_topk(const ResultSnapshot& snapshot,
                             const std::vector<TopKEntry>& entries);
    void finish_query(TenantState& tenant,
                      MetricsRegistry::Handle latency_histogram,
                      double latency_seconds, const ResponseMeta& meta);
    void accumulate_publication_stats(const ResultSnapshot& frozen,
                                      bool via_delta,
                                      std::size_t rows_scanned);
    void update_shard_planes(
        const std::shared_ptr<const ResultSnapshot>& frozen);
    void refresh_topk_counters();

    AnytimeEngine& engine_;
    ServeConfig config_;
    std::chrono::steady_clock::time_point epoch_;
    SnapshotStore store_;
    SharedSlot<const TopKView> topk_view_;
    SharedSlot<const ShardTable> shard_table_;
    SharedSlot<const std::vector<std::shared_ptr<TenantState>>> tenants_;

    // Driver-thread-only state (publication path).
    std::uint64_t next_version_{1};
    std::shared_ptr<const ResultSnapshot> last_published_;
    IncrementalTopK tracker_;
    /// Per-shard members (ascending) + trackers, index num_shards = the
    /// pseudo-shard for vertices beyond the ownership map. Rebuilt (and
    /// trackers reset) when the vertex count changes.
    std::vector<std::vector<VertexId>> shard_members_;
    std::vector<IncrementalTopK> shard_trackers_;
    std::vector<std::vector<VertexId>> shard_changed_scratch_;
    std::size_t shard_table_n_{0};
    bool shard_table_built_{false};
    PublicationStats stats_;
    std::function<void(const ResultSnapshot&)> on_publish_;
    std::function<bool()> step_driver_;

    // Waiting / admission state.
    mutable std::mutex wait_mutex_;
    std::condition_variable wait_cv_;
    bool closed_{false};
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> publications_{0};
    // Mirrors of the trackers' counters, readable from any thread.
    std::atomic<std::size_t> topk_patched_{0};
    std::atomic<std::size_t> topk_rebuilt_{0};

    // serve.* metrics, internally locked (readers record concurrently).
    mutable std::mutex metrics_mutex_;
    MetricsRegistry metrics_;
    MetricsRegistry::Handle latency_point_{MetricsRegistry::kNullHandle};
    MetricsRegistry::Handle latency_batch_{MetricsRegistry::kNullHandle};
    MetricsRegistry::Handle latency_topk_{MetricsRegistry::kNullHandle};
    MetricsRegistry::Handle staleness_wall_{MetricsRegistry::kNullHandle};
    MetricsRegistry::Handle staleness_versions_{MetricsRegistry::kNullHandle};
    MetricsRegistry::Handle queries_counter_{MetricsRegistry::kNullHandle};
    MetricsRegistry::Handle shed_counter_{MetricsRegistry::kNullHandle};
};

}  // namespace aa
