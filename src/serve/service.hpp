// QueryService: the anytime query-serving layer over one AnytimeEngine.
//
// One *driver* thread owns the engine (initialize / rc_step / additions);
// the service hooks the engine's boundary callback so every RC step and
// add-phase boundary publishes a fresh immutable ResultSnapshot (see
// serve/snapshot.hpp). Any number of *reader* threads issue point, batch and
// top-k closeness queries against the published snapshots — they never touch
// engine state and never block the RC loop.
//
// Freshness policies (per query):
//   ServeStale        — answer from the current snapshot immediately.
//   WaitForNextStep   — answer from the first snapshot published after the
//                       query arrived (one more engine boundary of progress).
//   WaitForQuiescence — answer only from a quiescent snapshot (exact APSP).
//   BoundedError      — answer immediately like ServeStale, but attach the
//                       certified closeness interval [bound_lo, bound_hi]
//                       that contains the converged score (Unavailable when
//                       the service was not configured with enable_bounds).
//
// Admission control: queries that have to *wait* occupy a slot in a bounded
// pending set; when `ServeConfig::max_pending` waiters are already parked,
// further waiting queries are shed immediately (QueryStatus::Shed) instead
// of growing an unbounded queue. ServeStale queries never wait and are never
// shed.
//
// Two execution modes for the waiting policies:
//   * concurrent (default): the reader blocks on a condition variable until
//     the driver thread's next publication satisfies the policy (or the
//     service is closed).
//   * synchronous: a single-threaded caller (scenario_runner) installs a
//     step driver via set_step_driver(); unsatisfied queries advance the
//     engine inline instead of blocking.
//
// Every response carries its snapshot version, the engine progress metadata
// of that snapshot, and a staleness bound (publications that happened after
// the served snapshot, plus the snapshot's wall-clock age). Serving metrics
// (latency/staleness histograms, shed counters, publication spans) are
// recorded in the service's own internally-locked MetricsRegistry under
// `serve.*` names.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "common/metrics.hpp"
#include "serve/snapshot.hpp"
#include "serve/topk.hpp"

namespace aa {

class AnytimeEngine;

enum class FreshnessPolicy {
    ServeStale,
    WaitForNextStep,
    WaitForQuiescence,
    /// Never waits; returns (score, certified error interval) pairs from the
    /// current snapshot. Requires snapshots built with bounds
    /// (ServeConfig::enable_bounds) — Unavailable otherwise.
    BoundedError,
};

/// Human-readable policy name
/// ("stale" / "next-step" / "quiescence" / "bounded-error").
std::string_view freshness_policy_name(FreshnessPolicy policy);

enum class QueryStatus {
    /// Served from a snapshot satisfying the policy.
    Ok,
    /// Rejected by admission control: the pending-query set was full.
    Shed,
    /// The policy cannot be satisfied: service closed while waiting, no
    /// snapshot exists yet under ServeStale, or the synchronous step driver
    /// ran out of progress.
    Unavailable,
};

struct ServeConfig {
    /// k of the incrementally maintained top-k ranking; top-k queries with
    /// k <= this are served from the patched ranking, larger ones fall back
    /// to a full selection on the snapshot.
    std::size_t topk_maintained{10};
    /// Bound on concurrently *waiting* queries before shedding.
    std::size_t max_pending{64};
    /// Policy used by the no-policy query overloads.
    FreshnessPolicy default_policy{FreshnessPolicy::ServeStale};
    /// Record serve.* metrics (histograms, counters, publish spans).
    bool enable_metrics{true};
    /// Capture certified closeness intervals (refine/bounds.hpp) into every
    /// snapshot. Required by the BoundedError policy and by top-k
    /// certification; costs one interval computation per row per
    /// publication, so off by default.
    bool enable_bounds{false};
    /// Feed queried vertices into the engine's DemandTracker so the
    /// QueryHeat refinement policy can steer RC work toward them. Recording
    /// is wait-free and, under the default Uniform policy, has no effect on
    /// the engine schedule.
    bool record_demand{true};
};

/// Response metadata shared by every query shape.
struct ResponseMeta {
    QueryStatus status{QueryStatus::Unavailable};
    /// Snapshot the answer was read from (0 when status != Ok).
    std::uint64_t version{0};
    std::size_t rc_step{0};
    double sim_seconds{0};
    bool quiescent{false};
    double frac_unknown{0};
    /// Publications that had already superseded the served snapshot when the
    /// response was assembled (0 = served the latest).
    std::uint64_t staleness_versions{0};
    /// Wall-clock age of the served snapshot at response time, seconds.
    double staleness_wall{0};
};

struct PointResult {
    ResponseMeta meta;
    VertexId vertex{0};
    Weight closeness{0};
    std::size_t reachable{0};
    /// Certified interval containing the converged closeness score and
    /// whether it has already collapsed onto it. Meaningful iff the served
    /// snapshot carried bounds (ServeConfig::enable_bounds); [0, 0] / false
    /// otherwise.
    double bound_lo{0};
    double bound_hi{0};
    bool exact{false};
};

struct BatchResult {
    ResponseMeta meta;
    /// Parallel to the queried vertex list; all values from one snapshot.
    std::vector<Weight> closeness;
    std::vector<std::size_t> reachable;
    /// Certified intervals parallel to the vertex list; empty unless the
    /// served snapshot carried bounds (ServeConfig::enable_bounds).
    std::vector<double> bound_lo;
    std::vector<double> bound_hi;
};

struct TopKResult {
    ResponseMeta meta;
    std::vector<TopKEntry> entries;
    /// True iff the returned *set* of vertices is provably the converged
    /// top-k: every member's certified lower bound strictly exceeds every
    /// non-member's certified upper bound. Only a bounds-carrying snapshot
    /// can certify; ties at the k-th score never do (the set is genuinely
    /// ambiguous there).
    bool certified{false};
};

class QueryService {
public:
    /// Attaches to `engine` (installs its boundary hook) and, if the engine
    /// is already initialized, publishes snapshot #1 immediately. The engine
    /// must outlive the service; the service detaches the hook on
    /// destruction.
    explicit QueryService(AnytimeEngine& engine, ServeConfig config = {});
    ~QueryService();

    QueryService(const QueryService&) = delete;
    QueryService& operator=(const QueryService&) = delete;

    // ---- driver side (the thread stepping the engine) ---------------------

    /// Build and publish a snapshot of the engine's current state. Invoked
    /// automatically at engine boundaries through the hook; callable
    /// directly for an extra out-of-band publication.
    void publish();

    /// Observer called on the driver thread after every publication, with
    /// the engine guaranteed idle — tests use it to capture ground truth at
    /// exactly the published boundary.
    void set_on_publish(
        std::function<void(const ResultSnapshot&)> on_publish);

    /// Synchronous mode: instead of blocking, unsatisfied waiting queries
    /// call `driver` (which should advance the engine, e.g. one rc_step) and
    /// re-check; `driver` returning false means no more progress is
    /// possible. Only for single-threaded use.
    void set_step_driver(std::function<bool()> driver);

    /// Wake all waiters with QueryStatus::Unavailable and refuse future
    /// waiting; ServeStale queries keep being served. Idempotent.
    void close();

    // ---- reader side (any thread) -----------------------------------------

    PointResult point(VertexId v, FreshnessPolicy policy);
    PointResult point(VertexId v) { return point(v, config_.default_policy); }
    BatchResult batch(std::span<const VertexId> vertices, FreshnessPolicy policy);
    BatchResult batch(std::span<const VertexId> vertices) {
        return batch(vertices, config_.default_policy);
    }
    TopKResult topk(std::size_t k, FreshnessPolicy policy);
    TopKResult topk(std::size_t k) { return topk(k, config_.default_policy); }

    /// The latest snapshot (wait-free; null before the first publication).
    std::shared_ptr<const ResultSnapshot> snapshot() const {
        return store_.current();
    }
    const SnapshotStore& store() const { return store_; }

    // ---- introspection ----------------------------------------------------

    std::uint64_t publications() const;
    std::uint64_t shed_count() const;
    /// Incremental top-k maintenance counters (see IncrementalTopK).
    std::size_t topk_patched() const;
    std::size_t topk_rebuilt() const;
    /// Seconds since service construction on the service's wall clock (the
    /// epoch of ResultSnapshot::published_wall).
    double wall_now() const;
    /// Thread-safe copy of the serve.* metrics registry.
    MetricsRegistry metrics_copy() const;

    const ServeConfig& config() const { return config_; }

private:
    struct TopKView {
        std::uint64_t version{0};
        std::vector<TopKEntry> entries;
    };

    /// Resolve the snapshot a query with `policy` should be served from;
    /// handles waiting, the step driver and admission control. Null result
    /// means the query ends with `status` (Shed / Unavailable).
    std::shared_ptr<const ResultSnapshot> admit(FreshnessPolicy policy,
                                                QueryStatus& status);
    static bool satisfied(FreshnessPolicy policy,
                          const ResultSnapshot* snapshot,
                          std::uint64_t arrival_version);
    ResponseMeta make_meta(const ResultSnapshot& snapshot) const;
    void record_query(MetricsRegistry::Handle latency_histogram,
                      double latency_seconds, const ResponseMeta& meta);

    AnytimeEngine& engine_;
    ServeConfig config_;
    std::chrono::steady_clock::time_point epoch_;
    SnapshotStore store_;
    SharedSlot<const TopKView> topk_view_;

    // Driver-thread-only state (publication path).
    std::uint64_t next_version_{1};
    std::shared_ptr<const ResultSnapshot> last_published_;
    IncrementalTopK tracker_;
    std::function<void(const ResultSnapshot&)> on_publish_;
    std::function<bool()> step_driver_;

    // Waiting / admission state.
    mutable std::mutex wait_mutex_;
    std::condition_variable wait_cv_;
    std::size_t pending_{0};
    bool closed_{false};
    std::atomic<std::uint64_t> shed_{0};
    std::atomic<std::uint64_t> publications_{0};
    // Mirrors of the tracker's counters, readable from any thread.
    std::atomic<std::size_t> topk_patched_{0};
    std::atomic<std::size_t> topk_rebuilt_{0};

    // serve.* metrics, internally locked (readers record concurrently).
    mutable std::mutex metrics_mutex_;
    MetricsRegistry metrics_;
    MetricsRegistry::Handle latency_point_{MetricsRegistry::kNullHandle};
    MetricsRegistry::Handle latency_batch_{MetricsRegistry::kNullHandle};
    MetricsRegistry::Handle latency_topk_{MetricsRegistry::kNullHandle};
    MetricsRegistry::Handle staleness_wall_{MetricsRegistry::kNullHandle};
    MetricsRegistry::Handle staleness_versions_{MetricsRegistry::kNullHandle};
    MetricsRegistry::Handle queries_counter_{MetricsRegistry::kNullHandle};
    MetricsRegistry::Handle shed_counter_{MetricsRegistry::kNullHandle};
};

}  // namespace aa
