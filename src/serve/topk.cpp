#include "serve/topk.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace aa {

std::vector<TopKEntry> topk_from_snapshot(const ResultSnapshot& snapshot,
                                          std::size_t k) {
    const std::size_t n = snapshot.scores.size();
    std::vector<TopKEntry> entries;
    entries.reserve(n);
    for (std::size_t v = 0; v < n; ++v) {
        entries.push_back(
            {static_cast<VertexId>(v), snapshot.scores.closeness(v)});
    }
    const std::size_t want = std::min(k, n);
    std::partial_sort(entries.begin(), entries.begin() + want, entries.end(),
                      topk_outranks);
    entries.resize(want);
    return entries;
}

std::vector<TopKEntry> topk_from_subset(const ResultSnapshot& snapshot,
                                        std::span<const VertexId> members,
                                        std::size_t k) {
    std::vector<TopKEntry> entries;
    entries.reserve(members.size());
    for (const VertexId v : members) {
        entries.push_back({v, snapshot.scores.closeness(v)});
    }
    const std::size_t want = std::min(k, entries.size());
    std::partial_sort(entries.begin(), entries.begin() + want, entries.end(),
                      topk_outranks);
    entries.resize(want);
    return entries;
}

std::vector<TopKEntry> topk_sharded(const ResultSnapshot& snapshot,
                                    const ShardOwnership& ownership,
                                    std::size_t k) {
    const std::size_t n = snapshot.scores.size();
    const std::size_t want = std::min(k, n);
    if (want == 0) {
        return {};
    }
    // Bucket by shard; the trailing pseudo-bucket catches vertices the map
    // has not registered yet.
    std::vector<std::vector<TopKEntry>> partials(ownership.num_shards() + 1);
    for (std::size_t v = 0; v < n; ++v) {
        const std::size_t s = v < ownership.num_vertices()
                                  ? ownership.shard(static_cast<VertexId>(v))
                                  : ownership.num_shards();
        partials[s].push_back(
            {static_cast<VertexId>(v), snapshot.scores.closeness(v)});
    }
    std::vector<TopKEntry> pool;
    for (auto& partial : partials) {
        const std::size_t take = std::min(want, partial.size());
        std::partial_sort(partial.begin(), partial.begin() + take,
                          partial.end(), topk_outranks);
        pool.insert(pool.end(), partial.begin(), partial.begin() + take);
    }
    const std::size_t out = std::min(want, pool.size());
    std::partial_sort(pool.begin(), pool.begin() + out, pool.end(),
                      topk_outranks);
    pool.resize(out);
    return pool;
}

IncrementalTopK::IncrementalTopK(std::size_t k, double rebuild_churn)
    : k_(k), rebuild_churn_(rebuild_churn) {}

void IncrementalTopK::apply(const ResultSnapshot& snapshot) {
    advance(snapshot, /*full=*/true, {}, snapshot.changed);
}

void IncrementalTopK::apply_subset(const ResultSnapshot& snapshot,
                                   std::span<const VertexId> members,
                                   std::span<const VertexId> changed) {
    advance(snapshot, /*full=*/false, members, changed);
}

void IncrementalTopK::reset() {
    version_ = 0;
    last_n_ = 0;
    entries_.clear();
    reserve_.clear();
}

void IncrementalTopK::advance(const ResultSnapshot& snapshot, bool full,
                              std::span<const VertexId> members,
                              std::span<const VertexId> changed) {
    AA_ASSERT_MSG(version_ == 0 || snapshot.version > version_,
                  "snapshots must be applied in version order");
    const CowScores& scores = snapshot.scores;
    const std::size_t n = full ? scores.size() : members.size();
    const std::size_t want = std::min(k_, n);
    // The maintained exact prefix is deeper than what is served: demotions
    // that stay within the reserve patch instead of rebuilding.
    const std::size_t depth = std::min(2 * k_, n);

    // Patch only across a direct successor: the changed list is relative to
    // the immediately previous snapshot, so a skipped version breaks the
    // chain of "unchanged vertices kept their exact bits". It must also
    // describe the same tracked universe (last_n_ == n for the subset case
    // is guaranteed by the caller resetting on membership changes).
    const bool chainable =
        version_ != 0 && snapshot.version == version_ + 1 && want > 0;
    // Past the churn threshold a patch would sort nearly the whole universe
    // anyway; hand the work to the rebuild path (identical entries).
    const bool churny =
        n > 0 && static_cast<double>(changed.size()) >=
                     rebuild_churn_ * static_cast<double>(n);
    bool done = false;
    if (chainable && changed.empty()) {
        // Nothing tracked changed: the maintained state carries over as-is.
        done = true;
    } else if (chainable && !churny) {
        // Previous reserve was exact, so any vertex outside reserve_ that is
        // not in `changed` still sorts after the previous R-th entry's key.
        const bool had_outsiders = last_n_ > reserve_.size();
        const TopKEntry old_rth =
            had_outsiders ? reserve_.back() : TopKEntry{};

        std::vector<TopKEntry> candidates;
        candidates.reserve(reserve_.size() + changed.size());
        for (const TopKEntry& e : reserve_) {
            candidates.push_back({e.vertex, scores.closeness(e.vertex)});
        }
        for (const VertexId v : changed) {
            candidates.push_back({v, scores.closeness(v)});
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const TopKEntry& a, const TopKEntry& b) {
                      return a.vertex < b.vertex;
                  });
        candidates.erase(std::unique(candidates.begin(), candidates.end(),
                                     [](const TopKEntry& a, const TopKEntry& b) {
                                         return a.vertex == b.vertex;
                                     }),
                         candidates.end());
        if (candidates.size() >= depth) {
            std::partial_sort(candidates.begin(), candidates.begin() + depth,
                              candidates.end(), topk_outranks);
            candidates.resize(depth);
            // Exact unless the new R-th is weaker than the old R-th was under
            // its old score — only then could an unchanged outsider (known
            // weaker than old_rth) deserve a reserve slot. A hub demoted out
            // of the top k but not past the R-th entry passes this check and
            // is evicted from the served prefix by the re-rank itself.
            if (!had_outsiders || !topk_outranks(old_rth, candidates.back())) {
                reserve_ = std::move(candidates);
                entries_.assign(reserve_.begin(), reserve_.begin() + want);
                ++patched_;
                done = true;
            }
        }
    }
    if (!done) {
        reserve_ = full ? topk_from_snapshot(snapshot, depth)
                        : topk_from_subset(snapshot, members, depth);
        entries_.assign(reserve_.begin(),
                        reserve_.begin() +
                            std::min(want, reserve_.size()));
        ++rebuilt_;
    }
    version_ = snapshot.version;
    last_n_ = n;
}

}  // namespace aa
