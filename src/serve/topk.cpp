#include "serve/topk.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace aa {

std::vector<TopKEntry> topk_from_snapshot(const ResultSnapshot& snapshot,
                                          std::size_t k) {
    const std::size_t n = snapshot.scores.closeness.size();
    std::vector<TopKEntry> entries;
    entries.reserve(n);
    for (std::size_t v = 0; v < n; ++v) {
        entries.push_back(
            {static_cast<VertexId>(v), snapshot.scores.closeness[v]});
    }
    const std::size_t want = std::min(k, n);
    std::partial_sort(entries.begin(), entries.begin() + want, entries.end(),
                      topk_outranks);
    entries.resize(want);
    return entries;
}

IncrementalTopK::IncrementalTopK(std::size_t k) : k_(k) {}

void IncrementalTopK::apply(const ResultSnapshot& snapshot) {
    AA_ASSERT_MSG(version_ == 0 || snapshot.version > version_,
                  "snapshots must be applied in version order");
    const auto& closeness = snapshot.scores.closeness;
    const std::size_t n = closeness.size();
    const std::size_t want = std::min(k_, n);

    // Patch only across a direct successor: the changed list is relative to
    // the immediately previous snapshot, so a skipped version breaks the
    // chain of "unchanged vertices kept their exact bits".
    const bool chainable =
        version_ != 0 && snapshot.version == version_ + 1 && want > 0;
    bool done = false;
    if (chainable) {
        // Previous ranking was exact, so any vertex outside entries_ that is
        // not in `changed` still sorts after the previous k-th entry's key.
        const bool had_outsiders = last_n_ > entries_.size();
        const TopKEntry old_kth =
            had_outsiders ? entries_.back() : TopKEntry{};

        std::vector<TopKEntry> candidates;
        candidates.reserve(entries_.size() + snapshot.changed.size());
        for (const TopKEntry& e : entries_) {
            candidates.push_back({e.vertex, closeness[e.vertex]});
        }
        for (const VertexId v : snapshot.changed) {
            candidates.push_back({v, closeness[v]});
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const TopKEntry& a, const TopKEntry& b) {
                      return a.vertex < b.vertex;
                  });
        candidates.erase(std::unique(candidates.begin(), candidates.end(),
                                     [](const TopKEntry& a, const TopKEntry& b) {
                                         return a.vertex == b.vertex;
                                     }),
                         candidates.end());
        if (candidates.size() >= want) {
            std::partial_sort(candidates.begin(), candidates.begin() + want,
                              candidates.end(), topk_outranks);
            candidates.resize(want);
            // Exact unless the new k-th is weaker than the old k-th was under
            // its old score — only then could an unchanged outsider (known
            // weaker than old_kth) deserve a slot.
            if (!had_outsiders || !topk_outranks(old_kth, candidates.back())) {
                entries_ = std::move(candidates);
                ++patched_;
                done = true;
            }
        }
    }
    if (!done) {
        entries_ = topk_from_snapshot(snapshot, k_);
        ++rebuilt_;
    }
    version_ = snapshot.version;
    last_n_ = n;
}

}  // namespace aa
