// SharedSlot<T>: a single-slot atomic shared_ptr — one writer swaps values
// in, any number of readers copy the current pointer out.
//
// This is exactly the job of std::atomic<std::shared_ptr<T>>, and on this
// ABI that type is also lock-based (libstdc++ guards the slot with a lock
// bit). The reason for hand-rolling it: the libstdc++ 12.2 implementation
// predates the _GLIBCXX_TSAN annotations (added in 12.3/13), so every
// perfectly valid concurrent load/store pair is reported as a data race by
// ThreadSanitizer. Building the same protocol from std::atomic_flag — which
// TSan models natively — gives identical semantics and a clean TSan run.
//
// The critical section is a shared_ptr copy or swap (a refcount bump), a few
// nanoseconds; the outgoing value is released *outside* the lock so a slow
// destructor can never stall readers.
#pragma once

#include <atomic>
#include <memory>
#include <utility>

namespace aa {

template <typename T>
class SharedSlot {
public:
    SharedSlot() = default;
    SharedSlot(const SharedSlot&) = delete;
    SharedSlot& operator=(const SharedSlot&) = delete;

    /// Copy the current pointer out (null until the first store).
    std::shared_ptr<T> load() const {
        const SpinGuard guard(lock_);
        return ptr_;
    }

    /// Swap a new value in. The previous value is destroyed after the lock
    /// is released (unless a reader still holds it).
    void store(std::shared_ptr<T> next) {
        std::shared_ptr<T> previous;
        {
            const SpinGuard guard(lock_);
            previous = std::exchange(ptr_, std::move(next));
        }
    }

private:
    struct SpinGuard {
        explicit SpinGuard(std::atomic_flag& f) : flag(f) {
            while (flag.test_and_set(std::memory_order_acquire)) {
                // Contended (writer mid-swap or another reader mid-copy):
                // spin on a plain load until the flag clears.
                while (flag.test(std::memory_order_relaxed)) {
                }
            }
        }
        ~SpinGuard() { flag.clear(std::memory_order_release); }
        SpinGuard(const SpinGuard&) = delete;
        SpinGuard& operator=(const SpinGuard&) = delete;
        std::atomic_flag& flag;
    };

    mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
    std::shared_ptr<T> ptr_;
};

}  // namespace aa
