// RefinePlanner: turns query demand into a per-rank RC sweep order.
//
// The RC kernels drain their worklists in ascending LocalId order by
// default; plan_rank_order() produces an alternative visiting order that
// puts rows users are asking about (and their surrounding neighborhoods,
// via a decayed multi-hop smear) first.
// Refinement *coverage* is untouched — a plan is a permutation of all local
// rows, every marked row still drains, and propagation still runs to the
// same fixpoint — only the order in which rows are swept changes, which is
// what makes hot rows reach exactness earlier under a per-step budget.
//
// Ordering contract (the bit-identity discipline of PRs 4-6): when the
// policy is Uniform, or no positive heat/focus signal exists, the planner
// returns an *empty* plan and the kernels take their historical ascending
// sweep — byte-identical schedule, ops, and dirty-append order to the
// pre-refine engine. Plans themselves are deterministic: rows sort by
// (focus, heat, LocalId), so equal-signal rows keep ascending order.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/subgraph.hpp"

namespace aa {

/// How the engine orders per-rank RC work (EngineConfig::refine_policy).
enum class RefinePolicy : std::uint8_t {
    /// Historical ascending-LocalId sweeps; bit-identical to the pre-refine
    /// engine by contract.
    Uniform,
    /// Rows hot in the DemandTracker (plus their smeared neighborhoods)
    /// sweep first.
    QueryHeat,
    /// Like QueryHeat, but the serve layer's uncertain top-k candidates are
    /// injected as focus rows ahead of plain heat.
    TopKPruned,
};

/// Canonical lower-case name ("uniform" / "heat" / "topk").
std::string_view refine_policy_name(RefinePolicy policy);

/// Parse a canonical name; returns false on unknown values.
bool parse_refine_policy(std::string_view name, RefinePolicy& out);

/// How a positive EngineConfig::refine_budget_ops is split across ranks.
enum class RefineBudgetSplit : std::uint8_t {
    /// Every rank gets the configured per-rank budget — bit-identical to the
    /// pre-split engine by contract.
    Static,
    /// The same *total* budget (per-rank budget x P), steered toward the
    /// ranks owning the query-hot vertices through the shard map. Uniform
    /// (or absent) heat reproduces the static split exactly.
    DemandProportional,
};

/// Canonical lower-case name ("static" / "demand").
std::string_view refine_budget_split_name(RefineBudgetSplit split);

/// Parse a canonical name; returns false on unknown values.
bool parse_refine_budget_split(std::string_view name, RefineBudgetSplit& out);

/// Per-rank propagate budgets for one RC step. Static split, a non-positive
/// per-rank budget (0 = unbounded), or an empty/zero heat snapshot all yield
/// `per_rank_budget` for every rank (the bit-identity cases). Otherwise each
/// rank receives half its static budget as a floor — a positive budget must
/// stay positive, since 0 means "unbounded" to the kernels — plus its
/// owned-heat share of the remaining half-total, so uniform per-rank heat
/// also reproduces the static split bit for bit.
std::vector<double> plan_rank_budgets(double per_rank_budget,
                                      const ShardOwnership& ownership,
                                      std::uint32_t num_ranks,
                                      std::span<const double> heat,
                                      RefineBudgetSplit split);

/// Demand-priority sweep order for one rank, or empty when no positive
/// signal exists (callers must then use the historical ascending order).
///
/// `heat` is the global per-vertex heat snapshot (may be empty), and
/// `focus` an optional 0/1 mask of top-k focus vertices (may be empty).
/// A row's priority folds in a decayed multi-hop smear of its neighborhood —
/// a hot row's missing columns arrive along drain chains several hops away,
/// so rows between the wave and a hot destination inherit a proximity
/// gradient (halved per hop, carried across rank boundaries by the global
/// heat snapshot).
std::vector<LocalId> plan_rank_order(const LocalSubgraph& sg,
                                     std::span<const double> heat,
                                     std::span<const std::uint8_t> focus);

}  // namespace aa
