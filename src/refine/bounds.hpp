// BoundsOracle: closeness intervals from partial (anytime) distance rows.
//
// Mid-refinement every stored d̂(v, t) is an *upper bound* on the true
// distance (IA seeds rows with exact local SSSP, every later relax only
// lowers entries, and the deletion cascade resets anything it cannot
// certify back to +inf). The cheap lower-bound side-channel is the RC
// *wavefront* argument: after k completed RC steps since the last base
// case, any shortest path crossing at most k cut edges has been fully
// folded into the rows. A cut edge costs at least w_min, so a path of
// length d crosses at most d / w_min cut edges — which turns the upper
// bound itself into a settledness certificate:
//
//     d̂(v, t) <= k * w_min   =>   d̂(v, t) = d(v, t)  (exact)
//
// (k = the engine's wavefront counter, reset to 0 by every structural
// update path after its local re-settlement, -1 right after a checkpoint
// restore when only the diagonal is trusted; w_min = the smallest edge
// weight in the live graph.) Entries that are still +inf are *unknown*: the
// true distance is anywhere in [max(1, k) * w_min, +inf]. Finite but
// unsettled entries are certainly reachable (the estimate is a witness
// path) with true distance in [max(1, k) * w_min, d̂].
//
// row_closeness_interval() folds those per-entry intervals through the
// closeness formula into a certified [lo, hi] enclosure of the *converged*
// closeness score. The Corrected variant is not monotone in a single
// unknown entry (adding one more reachable-but-far vertex can lower the
// score), so both endpoints are taken over the candidate extremes of
// j = "how many unknowns are truly reachable"; the score as a function of j
// with all-near (resp. all-far) distances is a ratio of quadratics with at
// most one interior extremum, so checking j in {0, interior, all} is exact.
//
// Intervals are widened by kIntervalSlack on both sides unless the row is
// certified exact, mirroring the repo-wide 1e-9 comparison tolerance: the
// relaxation epsilon means converged values can sit a hair off the
// infinite-precision score, and a *sound* interval must still contain them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/types.hpp"
#include "core/closeness.hpp"

namespace aa {

/// Slack added to non-exact interval endpoints, matching the repo-wide
/// floating-point comparison tolerance.
inline constexpr double kIntervalSlack = 1e-9;

/// A certified enclosure of one vertex's converged closeness score.
struct ClosenessInterval {
    double lo{0};
    double hi{0};
    /// True when lo == hi up to the relaxation epsilon: every entry of the
    /// row is settled (or the engine is quiescent), so the current score is
    /// the converged score.
    bool exact{false};
    /// Entries of the row certified exact by the wavefront bound (including
    /// the diagonal).
    std::size_t settled{0};
    /// Finite entries (current lower bound on the reachable count).
    std::size_t reached{0};
};

/// Everything the per-row interval math needs from the engine, captured once
/// per boundary (see AnytimeEngine::bounds_params).
struct BoundsParams {
    std::size_t n{0};
    ClosenessVariant variant{ClosenessVariant::Corrected};
    /// Smallest / largest edge weight in the live graph (kInfinity / 0 for
    /// an edgeless graph — every off-diagonal entry is then unknown and
    /// unreachable respectively, and the interval code guards the products).
    Weight w_min{kInfinity};
    Weight w_max{0};
    /// Completed RC steps since the last structural base case; -1 = only the
    /// diagonal is trusted (fresh checkpoint restore).
    std::int64_t wavefront_k{-1};
    /// Quiescent engines are converged: intervals collapse to the exact
    /// score and +inf entries are certified unreachable.
    bool quiescent{false};
};

/// Certified closeness interval for one distance row (row[self] == 0).
/// `row` is the vertex's current DV row of length params.n.
ClosenessInterval row_closeness_interval(std::span<const Weight> row,
                                         VertexId self,
                                         const BoundsParams& params);

}  // namespace aa
