#include "refine/bounds.hpp"

#include <algorithm>
#include <cmath>

namespace aa {
namespace {

/// Candidate list for the "how many unknown entries are truly reachable"
/// variable: small fixed-size set, deduplicated, clamped to [0, max_j].
struct JCandidates {
    std::size_t values[4];
    std::size_t count{0};

    void add(std::size_t j, std::size_t max_j) {
        j = std::min(j, max_j);
        for (std::size_t i = 0; i < count; ++i) {
            if (values[i] == j) {
                return;
            }
        }
        values[count++] = j;
    }
};

}  // namespace

ClosenessInterval row_closeness_interval(std::span<const Weight> row,
                                         VertexId self,
                                         const BoundsParams& params) {
    const std::size_t n = params.n;
    ClosenessInterval out;
    if (n <= 1 || row.size() != n || self >= n) {
        out.exact = n <= 1;
        out.settled = n;
        out.reached = n;
        return out;
    }

    // One pass: split the row into settled-exact, finite-unsettled and
    // unknown entries. Settledness is the wavefront certificate from the
    // header comment; a zero entry is exact unconditionally (distances are
    // nonnegative and d̂ is an upper bound).
    const std::int64_t k = params.wavefront_k;
    const Weight w_min = params.w_min;
    const Weight settle_threshold =
        k >= 1 ? static_cast<Weight>(k) * w_min : 0.0;
    Weight s1 = 0;        // sum of all finite entries (upper-bound sum)
    Weight s0 = 0;        // sum of settled entries (exact part)
    std::size_t r1 = 0;   // finite count, including self
    std::size_t settled = 0;
    std::size_t unsettled_finite = 0;
    for (std::size_t t = 0; t < n; ++t) {
        const Weight d = row[t];
        if (!(d < kInfinity)) {
            continue;
        }
        s1 += d;
        ++r1;
        if (params.quiescent || d <= settle_threshold) {
            s0 += d;
            ++settled;
        } else {
            ++unsettled_finite;
        }
    }
    const std::size_t unknown = n - r1;
    out.reached = r1;

    if (params.quiescent) {
        // Quiescence certifies the +inf entries as truly unreachable too.
        const double score =
            closeness_score(s1, r1, n, params.variant);
        out.lo = score;
        out.hi = score;
        out.exact = true;
        out.settled = n;
        return out;
    }
    out.settled = settled;
    if (unknown == 0 && unsettled_finite == 0) {
        const double score =
            closeness_score(s1, r1, n, params.variant);
        out.lo = score;
        out.hi = score;
        out.exact = true;
        return out;
    }

    // Per-entry true-distance bounds: an unsettled entry escaped the k-step
    // wavefront, so its true distance exceeds k * w_min (and is at least
    // w_min regardless); a reachable vertex is at most (n-1) * w_max away.
    // Products are guarded against 0 * inf (edgeless graph: w_min = +inf).
    const double L =
        (k >= 1 ? static_cast<double>(k) : 1.0) * w_min;
    const double d_max = static_cast<double>(n - 1) * params.w_max;

    // Upper endpoint: every non-exact distance at its lower bound. The
    // score as a function of j reachable unknowns is a convex ratio, so the
    // max over j in [0, unknown] is at an endpoint; j = 1 additionally
    // covers Raw's 1/sum jump away from sum == 0.
    const double base_near =
        s0 + (unsettled_finite > 0
                  ? static_cast<double>(unsettled_finite) * L
                  : 0.0);
    JCandidates hi_js;
    hi_js.add(0, unknown);
    hi_js.add(1, unknown);
    hi_js.add(unknown, unknown);
    double hi = 0;
    for (std::size_t i = 0; i < hi_js.count; ++i) {
        const std::size_t j = hi_js.values[i];
        const double sum =
            j > 0 ? base_near + static_cast<double>(j) * L : base_near;
        hi = std::max(hi,
                      closeness_score(sum, r1 + j, n, params.variant));
    }

    // Lower endpoint: every finite entry at its upper bound d̂, unknowns
    // reachable at d_max. Corrected closeness has one interior minimum in j
    // at j* = (r1 - 1) - 2 * s1 / d_max; evaluating floor/ceil of j* plus
    // the endpoints is exact over the integers (the ratio is convex).
    JCandidates lo_js;
    lo_js.add(0, unknown);
    lo_js.add(unknown, unknown);
    if (params.variant == ClosenessVariant::Corrected && d_max > 0) {
        const double j_star =
            static_cast<double>(r1 - 1) - 2.0 * s1 / d_max;
        if (j_star > 0) {
            lo_js.add(static_cast<std::size_t>(std::floor(j_star)), unknown);
            lo_js.add(static_cast<std::size_t>(std::ceil(j_star)), unknown);
        }
    }
    double lo = kInfinity;
    for (std::size_t i = 0; i < lo_js.count; ++i) {
        const std::size_t j = lo_js.values[i];
        const double sum =
            j > 0 ? s1 + static_cast<double>(j) * d_max : s1;
        lo = std::min(lo,
                      closeness_score(sum, r1 + j, n, params.variant));
    }

    // Slack mirrors the repo-wide comparison tolerance: converged values sit
    // within the relaxation epsilon of the infinite-precision score, and a
    // sound interval must still contain them.
    out.lo = std::max(0.0, lo - kIntervalSlack);
    out.hi = hi + kIntervalSlack;
    return out;
}

}  // namespace aa
