#include "refine/planner.hpp"

#include <algorithm>
#include <numeric>

namespace aa {
namespace {

double vertex_signal(VertexId v, std::span<const double> values) {
    return v < values.size() ? values[v] : 0.0;
}

double vertex_signal(VertexId v, std::span<const std::uint8_t> values) {
    return v < values.size() ? static_cast<double>(values[v]) : 0.0;
}

}  // namespace

std::string_view refine_policy_name(RefinePolicy policy) {
    switch (policy) {
        case RefinePolicy::Uniform:
            return "uniform";
        case RefinePolicy::QueryHeat:
            return "heat";
        case RefinePolicy::TopKPruned:
            return "topk";
    }
    return "uniform";
}

bool parse_refine_policy(std::string_view name, RefinePolicy& out) {
    if (name == "uniform") {
        out = RefinePolicy::Uniform;
    } else if (name == "heat") {
        out = RefinePolicy::QueryHeat;
    } else if (name == "topk") {
        out = RefinePolicy::TopKPruned;
    } else {
        return false;
    }
    return true;
}

std::string_view refine_budget_split_name(RefineBudgetSplit split) {
    switch (split) {
        case RefineBudgetSplit::Static:
            return "static";
        case RefineBudgetSplit::DemandProportional:
            return "demand";
    }
    return "static";
}

bool parse_refine_budget_split(std::string_view name, RefineBudgetSplit& out) {
    if (name == "static") {
        out = RefineBudgetSplit::Static;
    } else if (name == "demand") {
        out = RefineBudgetSplit::DemandProportional;
    } else {
        return false;
    }
    return true;
}

std::vector<double> plan_rank_budgets(double per_rank_budget,
                                      const ShardOwnership& ownership,
                                      std::uint32_t num_ranks,
                                      std::span<const double> heat,
                                      RefineBudgetSplit split) {
    std::vector<double> budgets(num_ranks, per_rank_budget);
    if (split == RefineBudgetSplit::Static || per_rank_budget <= 0 ||
        num_ranks == 0 || heat.empty()) {
        return budgets;
    }
    std::vector<double> rank_heat(num_ranks, 0.0);
    double total_heat = 0;
    const std::size_t n = std::min(heat.size(), ownership.num_vertices());
    for (VertexId v = 0; v < n; ++v) {
        const RankId r = ownership.owner(v);
        if (r < num_ranks) {
            rank_heat[r] += heat[v];
            total_heat += heat[v];
        }
    }
    if (total_heat <= 0) {
        return budgets;
    }
    const double total_budget = per_rank_budget * num_ranks;
    for (RankId r = 0; r < num_ranks; ++r) {
        budgets[r] = total_budget *
                     (0.5 / num_ranks + 0.5 * rank_heat[r] / total_heat);
    }
    return budgets;
}

std::vector<LocalId> plan_rank_order(const LocalSubgraph& sg,
                                     std::span<const double> heat,
                                     std::span<const std::uint8_t> focus) {
    const std::size_t local = sg.num_local();
    if (local == 0 || (heat.empty() && focus.empty())) {
        return {};
    }

    // Row priority = own signal + a decayed multi-hop smear. One hop is not
    // enough: a hot row's missing columns arrive along drain *chains* that
    // run several hops (and several ranks) away from it, so the rows between
    // the wave and a hot destination need priority too. Iterating a halved
    // diffusion kSmearHops times gives every row a gradient proportional to
    // its proximity to query mass. Cross-rank neighbors contribute their raw
    // (global) heat each round — their smeared values live on other ranks —
    // which is what carries the gradient across partition boundaries.
    const auto smear = [&](auto&& signal) {
        std::vector<double> base(local, 0.0);
        for (LocalId l = 0; l < local; ++l) {
            base[l] = vertex_signal(sg.global_id(l), signal);
        }
        std::vector<double> cur = base;
        std::vector<double> next(local, 0.0);
        constexpr int kSmearHops = 4;
        constexpr double kSmearDecay = 0.5;
        for (int hop = 0; hop < kSmearHops; ++hop) {
            for (LocalId l = 0; l < local; ++l) {
                double inflow = 0;
                for (const Neighbor& nb : sg.neighbors(l)) {
                    inflow += sg.owns(nb.to) ? cur[sg.local_id(nb.to)]
                                             : vertex_signal(nb.to, signal);
                }
                next[l] = base[l] + kSmearDecay * inflow;
            }
            cur.swap(next);
        }
        return cur;
    };
    const std::vector<double> row_heat = smear(heat);
    const std::vector<double> row_focus = smear(focus);
    bool any = false;
    for (LocalId l = 0; l < local; ++l) {
        any = any || row_heat[l] > 0 || row_focus[l] > 0;
    }
    if (!any) {
        return {};
    }

    std::vector<LocalId> order(local);
    std::iota(order.begin(), order.end(), LocalId{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](LocalId a, LocalId b) {
                         if (row_focus[a] != row_focus[b]) {
                             return row_focus[a] > row_focus[b];
                         }
                         if (row_heat[a] != row_heat[b]) {
                             return row_heat[a] > row_heat[b];
                         }
                         return a < b;
                     });
    return order;
}

}  // namespace aa
