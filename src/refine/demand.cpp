#include "refine/demand.hpp"

#include <algorithm>
#include <cmath>

namespace aa {

void DemandTracker::resize(std::size_t n) {
    const auto old = cells_.load();
    if (old && old->heat.size() == n) {
        return;
    }
    auto next = std::make_shared<Cells>(n);
    if (old) {
        const std::size_t keep = std::min(n, old->heat.size());
        for (std::size_t i = 0; i < keep; ++i) {
            next->heat[i].store(old->heat[i].load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
        }
    }
    cells_.store(std::move(next));
}

void DemandTracker::record(VertexId v, double weight) {
    if (!(weight > 0)) {
        return;
    }
    const auto cells = cells_.load();
    if (!cells || v >= cells->heat.size()) {
        return;
    }
    const auto units = static_cast<std::uint64_t>(weight * kHeatScale);
    if (units == 0) {
        return;
    }
    cells->heat[v].fetch_add(units, std::memory_order_relaxed);
}

void DemandTracker::decay(double factor) {
    const auto cells = cells_.load();
    if (!cells) {
        return;
    }
    if (!(factor > 0)) {
        for (auto& cell : cells->heat) {
            cell.store(0, std::memory_order_relaxed);
        }
        return;
    }
    if (factor >= 1.0) {
        return;
    }
    for (auto& cell : cells->heat) {
        const std::uint64_t units = cell.load(std::memory_order_relaxed);
        if (units == 0) {
            continue;
        }
        // Racy-lossy by contract: a record() between this load and store is
        // dropped. Heat steers a heuristic schedule, never correctness.
        cell.store(static_cast<std::uint64_t>(
                       static_cast<double>(units) * factor),
                   std::memory_order_relaxed);
    }
}

double DemandTracker::heat(VertexId v) const {
    const auto cells = cells_.load();
    if (!cells || v >= cells->heat.size()) {
        return 0;
    }
    return static_cast<double>(cells->heat[v].load(std::memory_order_relaxed)) /
           kHeatScale;
}

bool DemandTracker::snapshot(std::vector<double>& out) const {
    const auto cells = cells_.load();
    if (!cells) {
        out.clear();
        return false;
    }
    out.resize(cells->heat.size());
    bool any = false;
    for (std::size_t i = 0; i < out.size(); ++i) {
        const std::uint64_t units =
            cells->heat[i].load(std::memory_order_relaxed);
        out[i] = static_cast<double>(units) / kHeatScale;
        any = any || units != 0;
    }
    return any;
}

DemandTracker::Totals DemandTracker::totals() const {
    Totals t;
    const auto cells = cells_.load();
    if (!cells) {
        return t;
    }
    for (const auto& cell : cells->heat) {
        const std::uint64_t units = cell.load(std::memory_order_relaxed);
        if (units == 0) {
            continue;
        }
        const double h = static_cast<double>(units) / kHeatScale;
        t.total += h;
        t.max = std::max(t.max, h);
        ++t.hot;
    }
    return t;
}

}  // namespace aa
