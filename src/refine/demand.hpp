// DemandTracker: a lock-cheap per-vertex query-heat accumulator.
//
// The serve layer records which vertices users actually touch (point reads,
// batch reads, top-k candidate scans), scaled by the querying tenant's
// demand weight — a weight-w tenant counts as w queries per query, so its
// working set pulls refinement proportionally harder; the engine reads the
// accumulated heat back at every boundary to steer RC refinement toward the
// hot rows (see refine/planner.hpp). Heat decays exponentially per engine
// boundary so stale interest fades instead of pinning the schedule forever.
//
// Concurrency contract (the reason this is not a plain std::vector<double>):
//   - record() may run from any number of service reader threads at once —
//     it is one relaxed fetch_add on a fixed-point cell, no locks.
//   - decay(), snapshot() and resize() run on the engine driver thread at
//     boundaries. decay() is a per-cell load/multiply/store; an increment
//     that lands between the load and the store is scaled away or lost —
//     benign by design (heat is a heuristic, not an invariant) and clean
//     under ThreadSanitizer because every access is an atomic op.
//   - resize() installs a fresh cell block behind a SharedSlot; records that
//     raced into the old block during the swap are dropped, which is the
//     same benign loss.
//
// Heat is stored as fixed-point (kHeatScale units per 1.0) so record() can
// stay a single integer fetch_add instead of a CAS loop on doubles.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "serve/shared_slot.hpp"

namespace aa {

/// Per-boundary multiplicative decay applied by the engine: heat halves at
/// every boundary, so a vertex stops influencing the schedule a few steps
/// after users stop asking about it.
inline constexpr double kDefaultHeatDecay = 0.5;

class DemandTracker {
public:
    explicit DemandTracker(std::size_t n = 0) { resize(n); }

    /// Number of vertices tracked.
    std::size_t size() const {
        const auto cells = cells_.load();
        return cells ? cells->heat.size() : 0;
    }

    /// Grow (or shrink) to n vertices, preserving existing heat. Driver
    /// thread only; concurrent record()s during the swap may be dropped.
    void resize(std::size_t n);

    /// Add `weight` heat to vertex v. Thread-safe from any thread; out-of
    /// -range vertices (a query racing a resize) are ignored. Negative or
    /// zero weights are ignored.
    void record(VertexId v, double weight = 1.0);

    /// Multiply all heat by `factor` in [0, 1]. Driver thread only.
    void decay(double factor = kDefaultHeatDecay);

    /// Current heat of one vertex (0 when out of range).
    double heat(VertexId v) const;

    /// Copy all heat into `out` (resized to size()). Returns true iff any
    /// cell is nonzero — the planner's "is there demand at all" test.
    bool snapshot(std::vector<double>& out) const;

    /// Sum / max / count of nonzero cells, for the refine.demand.* gauges.
    struct Totals {
        double total{0};
        double max{0};
        std::size_t hot{0};
    };
    Totals totals() const;

private:
    /// Fixed-point units per 1.0 of heat.
    static constexpr double kHeatScale = static_cast<double>(1u << 20);

    struct Cells {
        explicit Cells(std::size_t n) : heat(n) {}
        std::vector<std::atomic<std::uint64_t>> heat;
    };

    SharedSlot<Cells> cells_;
};

}  // namespace aa
