// Synthetic graph generators.
//
// The paper evaluates on undirected scale-free graphs produced with Pajek and
// on batches of new vertices extracted (with Louvain) from a larger graph so
// that the batch carries community structure. This environment has no network
// access, so these generators stand in for both (see DESIGN.md §2):
//   * barabasi_albert  — scale-free host graphs (degree distribution ~ k^-3),
//   * planted_partition — graphs with ground-truth communities,
//   * grow_batch        — a community-structured batch of *new* vertices
//                         attached to an existing host graph, the workload for
//                         the vertex-addition experiments (Figures 5-8).
// All generators are deterministic given the Rng seed.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace aa {

/// Optional random edge weights; weight 1.0 (unweighted) when lo == hi == 1.
struct WeightRange {
    Weight lo{1.0};
    Weight hi{1.0};

    Weight sample(Rng& rng) const {
        return lo == hi ? lo : rng.uniform(lo, hi);
    }
};

/// Barabasi-Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `edges_per_vertex` existing vertices chosen
/// proportionally to degree. Produces a connected scale-free graph.
DynamicGraph barabasi_albert(std::size_t n, std::size_t edges_per_vertex, Rng& rng,
                             WeightRange weights = {});

/// Erdos-Renyi G(n, m): n vertices, m distinct uniform random edges.
DynamicGraph erdos_renyi_gnm(std::size_t n, std::size_t m, Rng& rng,
                             WeightRange weights = {});

/// Watts-Strogatz small world: ring lattice with k neighbours per side,
/// each edge rewired with probability beta.
DynamicGraph watts_strogatz(std::size_t n, std::size_t k, double beta, Rng& rng,
                            WeightRange weights = {});

/// R-MAT / Kronecker-style generator (Chakrabarti et al.): 2^scale vertices,
/// `edges` distinct undirected edges placed by recursive quadrant descent
/// with probabilities (a, b, c, d), a + b + c + d = 1. The SNAP datasets'
/// synthetic cousins; defaults give the usual skewed (0.57, 0.19, 0.19,
/// 0.05) distribution.
struct RmatParams {
    double a{0.57};
    double b{0.19};
    double c{0.19};
    double d{0.05};
};
DynamicGraph rmat(std::size_t scale, std::size_t edges, Rng& rng,
                  RmatParams params = {}, WeightRange weights = {});

/// Planted partition (stochastic block model with equal-size blocks):
/// `communities` blocks; intra-block edge probability p_in, inter p_out.
/// Returns the graph and writes each vertex's block id into `membership`.
DynamicGraph planted_partition(std::size_t n, std::size_t communities, double p_in,
                               double p_out, Rng& rng,
                               std::vector<std::uint32_t>* membership = nullptr,
                               WeightRange weights = {});

/// A batch of vertices to be added dynamically to a host graph.
///
/// New vertices are numbered base_id .. base_id + num_new - 1 (i.e. the ids
/// they will occupy once appended to the host). `edges` may connect two new
/// vertices or a new vertex to an existing host vertex, matching the paper's
/// model where a vertex addition carries one or more edge additions.
struct GrowthBatch {
    VertexId base_id{0};
    std::size_t num_new{0};
    std::vector<Edge> edges;
    /// Ground-truth community of each new vertex (size num_new); used by
    /// benchmarks to verify CutEdge-PS exploits the structure.
    std::vector<std::uint32_t> community;
};

/// Parameters for grow_batch.
struct GrowthConfig {
    std::size_t num_new{0};
    /// Number of communities among the new vertices (>= 1).
    std::size_t communities{4};
    /// Edges from each new vertex to earlier vertices of its own community.
    std::size_t intra_edges{3};
    /// Edges from each new vertex to uniform-random host vertices.
    std::size_t host_edges{2};
    /// Probability that an intra edge is rewired to a different community
    /// (adds noise; 0 = perfectly separable communities).
    double noise{0.05};
    WeightRange weights{};
};

/// Generate a community-structured batch of new vertices for a host graph of
/// `host_vertices` vertices. Each community grows by preferential attachment
/// internally, so the batch is itself scale-free-ish; every new vertex gets
/// `host_edges` anchors into the host so the grown graph stays connected.
GrowthBatch grow_batch(std::size_t host_vertices, const GrowthConfig& config, Rng& rng);

}  // namespace aa
