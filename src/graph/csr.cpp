#include "graph/csr.hpp"

#include <numeric>

#include "common/assert.hpp"

namespace aa {

CsrGraph::CsrGraph(const DynamicGraph& g) {
    const std::size_t n = g.num_vertices();
    offsets_.resize(n + 1, 0);
    for (VertexId v = 0; v < n; ++v) {
        offsets_[v + 1] = offsets_[v] + g.degree(v);
    }
    targets_.resize(offsets_[n]);
    weights_.resize(offsets_[n]);
    for (VertexId v = 0; v < n; ++v) {
        std::size_t pos = offsets_[v];
        for (const Neighbor& nb : g.neighbors(v)) {
            targets_[pos] = nb.to;
            weights_[pos] = nb.weight;
            ++pos;
        }
    }
    vertex_weights_.assign(n, 1.0);
    total_vertex_weight_ = static_cast<Weight>(n);
}

CsrGraph::CsrGraph(std::vector<std::size_t> offsets, std::vector<VertexId> targets,
                   std::vector<Weight> weights, std::vector<Weight> vertex_weights)
    : offsets_(std::move(offsets)),
      targets_(std::move(targets)),
      weights_(std::move(weights)),
      vertex_weights_(std::move(vertex_weights)) {
    AA_ASSERT(offsets_.size() == vertex_weights_.size() + 1);
    AA_ASSERT(targets_.size() == weights_.size());
    AA_ASSERT(offsets_.back() == targets_.size());
    total_vertex_weight_ =
        std::accumulate(vertex_weights_.begin(), vertex_weights_.end(), Weight{0});
}

}  // namespace aa
