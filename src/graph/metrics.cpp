#include "graph/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_set>

namespace aa {

std::vector<std::size_t> degree_histogram(const DynamicGraph& g) {
    std::vector<std::size_t> histogram;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        const std::size_t d = g.degree(v);
        if (d >= histogram.size()) {
            histogram.resize(d + 1, 0);
        }
        ++histogram[d];
    }
    return histogram;
}

std::vector<std::uint32_t> connected_components(const DynamicGraph& g) {
    const std::size_t n = g.num_vertices();
    std::vector<std::uint32_t> component(n, UINT32_MAX);
    std::uint32_t next = 0;
    std::vector<VertexId> stack;
    for (VertexId start = 0; start < n; ++start) {
        if (component[start] != UINT32_MAX) {
            continue;
        }
        component[start] = next;
        stack.push_back(start);
        while (!stack.empty()) {
            const VertexId v = stack.back();
            stack.pop_back();
            for (const Neighbor& nb : g.neighbors(v)) {
                if (component[nb.to] == UINT32_MAX) {
                    component[nb.to] = next;
                    stack.push_back(nb.to);
                }
            }
        }
        ++next;
    }
    return component;
}

std::size_t num_connected_components(const DynamicGraph& g) {
    const auto component = connected_components(g);
    return component.empty()
               ? 0
               : *std::max_element(component.begin(), component.end()) + 1;
}

bool is_connected(const DynamicGraph& g) {
    return g.num_vertices() <= 1 || num_connected_components(g) == 1;
}

double power_law_exponent_mle(const DynamicGraph& g, std::size_t x_min) {
    double log_sum = 0.0;
    std::size_t count = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        const std::size_t d = g.degree(v);
        if (d >= x_min) {
            log_sum += std::log(static_cast<double>(d) /
                                (static_cast<double>(x_min) - 0.5));
            ++count;
        }
    }
    if (count < 2 || log_sum <= 0) {
        return 0.0;
    }
    return 1.0 + static_cast<double>(count) / log_sum;
}

double global_clustering_coefficient(const DynamicGraph& g) {
    // Count closed and open wedges centred at each vertex.
    std::size_t wedges = 0;
    std::size_t closed = 0;
    std::unordered_set<VertexId> mark;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        const auto nbs = g.neighbors(v);
        const std::size_t d = nbs.size();
        if (d < 2) {
            continue;
        }
        wedges += d * (d - 1) / 2;
        mark.clear();
        for (const Neighbor& nb : nbs) {
            mark.insert(nb.to);
        }
        for (std::size_t i = 0; i < d; ++i) {
            for (const Neighbor& second : g.neighbors(nbs[i].to)) {
                // Count each triangle corner once (i < index of second in mark
                // handled by id ordering).
                if (second.to > nbs[i].to && mark.contains(second.to)) {
                    ++closed;
                }
            }
        }
    }
    return wedges == 0 ? 0.0 : static_cast<double>(closed) / static_cast<double>(wedges);
}

double average_degree(const DynamicGraph& g) {
    return g.num_vertices() == 0
               ? 0.0
               : 2.0 * static_cast<double>(g.num_edges()) /
                     static_cast<double>(g.num_vertices());
}

}  // namespace aa
