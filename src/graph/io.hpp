// Graph file I/O.
//
// Two formats:
//   * SNAP edge list — the format of the public SNAP datasets the repro hint
//     points at: one "u v [w]" pair per line, '#' comment lines ignored.
//     Vertex ids are compacted to a dense [0, n) range on load (SNAP files
//     often have gaps).
//   * Pajek .net — the tool the paper used to generate its graphs:
//     "*Vertices n" followed by "*Edges"/"*Arcs" with 1-based endpoints.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/graph.hpp"

namespace aa {

/// Thrown on malformed input files.
class IoError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

DynamicGraph read_snap_edge_list(std::istream& in);
DynamicGraph read_snap_edge_list_file(const std::string& path);
void write_snap_edge_list(const DynamicGraph& g, std::ostream& out);
void write_snap_edge_list_file(const DynamicGraph& g, const std::string& path);

DynamicGraph read_pajek(std::istream& in);
DynamicGraph read_pajek_file(const std::string& path);
void write_pajek(const DynamicGraph& g, std::ostream& out);
void write_pajek_file(const DynamicGraph& g, const std::string& path);

/// METIS .graph format (the native input of the partitioner family our DD
/// phase reimplements): header "n m [fmt]" followed by one adjacency line
/// per vertex, 1-based ids; fmt "1" means edge weights are interleaved.
DynamicGraph read_metis(std::istream& in);
DynamicGraph read_metis_file(const std::string& path);
void write_metis(const DynamicGraph& g, std::ostream& out);
void write_metis_file(const DynamicGraph& g, const std::string& path);

}  // namespace aa
