// Compressed sparse row (CSR) snapshot of a DynamicGraph.
//
// The multilevel partitioner and the graph metrics work on an immutable
// snapshot; CSR gives them contiguous adjacency with no per-vertex allocation.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace aa {

class CsrGraph {
public:
    CsrGraph() = default;

    /// Snapshot `g` into CSR form.
    explicit CsrGraph(const DynamicGraph& g);

    /// Build directly from components (used by the coarsener).
    CsrGraph(std::vector<std::size_t> offsets, std::vector<VertexId> targets,
             std::vector<Weight> weights, std::vector<Weight> vertex_weights);

    std::size_t num_vertices() const {
        return offsets_.empty() ? 0 : offsets_.size() - 1;
    }
    std::size_t num_edges() const { return targets_.size() / 2; }

    std::size_t degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }

    std::span<const VertexId> neighbors(VertexId v) const {
        return {targets_.data() + offsets_[v], degree(v)};
    }
    std::span<const Weight> neighbor_weights(VertexId v) const {
        return {weights_.data() + offsets_[v], degree(v)};
    }

    /// Vertex weight: 1 for snapshots, aggregate size for coarsened graphs.
    Weight vertex_weight(VertexId v) const { return vertex_weights_[v]; }
    Weight total_vertex_weight() const { return total_vertex_weight_; }

private:
    std::vector<std::size_t> offsets_;
    std::vector<VertexId> targets_;
    std::vector<Weight> weights_;
    std::vector<Weight> vertex_weights_;
    Weight total_vertex_weight_{0};
};

}  // namespace aa
