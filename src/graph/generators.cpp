#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/assert.hpp"

namespace aa {

DynamicGraph barabasi_albert(std::size_t n, std::size_t edges_per_vertex, Rng& rng,
                             WeightRange weights) {
    AA_ASSERT_MSG(edges_per_vertex >= 1, "edges_per_vertex must be >= 1");
    const std::size_t m = edges_per_vertex;
    const std::size_t seed_size = std::max<std::size_t>(m + 1, 2);
    AA_ASSERT_MSG(n >= seed_size, "graph too small for edges_per_vertex");

    DynamicGraph g(n);
    // `targets` holds one entry per edge endpoint; sampling uniformly from it
    // implements preferential attachment.
    std::vector<VertexId> endpoint_pool;
    endpoint_pool.reserve(2 * m * n);

    // Seed: a small clique so every early vertex has nonzero degree.
    for (VertexId u = 0; u < seed_size; ++u) {
        for (VertexId v = u + 1; v < seed_size; ++v) {
            g.add_edge(u, v, weights.sample(rng));
            endpoint_pool.push_back(u);
            endpoint_pool.push_back(v);
        }
    }

    std::unordered_set<VertexId> chosen;
    for (VertexId v = static_cast<VertexId>(seed_size); v < n; ++v) {
        chosen.clear();
        while (chosen.size() < m) {
            const VertexId candidate = endpoint_pool[rng.uniform(endpoint_pool.size())];
            chosen.insert(candidate);
        }
        for (VertexId u : chosen) {
            g.add_edge(v, u, weights.sample(rng));
            endpoint_pool.push_back(v);
            endpoint_pool.push_back(u);
        }
    }
    return g;
}

DynamicGraph erdos_renyi_gnm(std::size_t n, std::size_t m, Rng& rng,
                             WeightRange weights) {
    AA_ASSERT_MSG(n >= 2, "need at least 2 vertices");
    const std::size_t max_edges = n * (n - 1) / 2;
    AA_ASSERT_MSG(m <= max_edges, "too many edges requested");
    DynamicGraph g(n);
    std::size_t added = 0;
    while (added < m) {
        const auto u = static_cast<VertexId>(rng.uniform(n));
        const auto v = static_cast<VertexId>(rng.uniform(n));
        if (g.add_edge(u, v, weights.sample(rng))) {
            ++added;
        }
    }
    return g;
}

DynamicGraph watts_strogatz(std::size_t n, std::size_t k, double beta, Rng& rng,
                            WeightRange weights) {
    AA_ASSERT_MSG(k >= 1 && 2 * k < n, "invalid lattice degree");
    DynamicGraph g(n);
    for (VertexId u = 0; u < n; ++u) {
        for (std::size_t j = 1; j <= k; ++j) {
            VertexId v = static_cast<VertexId>((u + j) % n);
            if (rng.chance(beta)) {
                // Rewire: pick a random non-neighbour target.
                for (int attempts = 0; attempts < 32; ++attempts) {
                    const auto w = static_cast<VertexId>(rng.uniform(n));
                    if (w != u && !g.has_edge(u, w)) {
                        v = w;
                        break;
                    }
                }
            }
            g.add_edge(u, v, weights.sample(rng));
        }
    }
    return g;
}

DynamicGraph rmat(std::size_t scale, std::size_t edges, Rng& rng,
                  RmatParams params, WeightRange weights) {
    AA_ASSERT_MSG(scale >= 1 && scale < 31, "invalid R-MAT scale");
    const double total = params.a + params.b + params.c + params.d;
    AA_ASSERT_MSG(std::abs(total - 1.0) < 1e-9, "R-MAT probabilities must sum to 1");
    const std::size_t n = std::size_t{1} << scale;
    AA_ASSERT_MSG(edges <= n * (n - 1) / 2, "too many edges requested");

    DynamicGraph g(n);
    std::size_t added = 0;
    std::size_t attempts = 0;
    const std::size_t max_attempts = 64 * edges + 1024;
    while (added < edges && attempts++ < max_attempts) {
        // Recursive quadrant descent with light noise on the probabilities
        // (standard practice to avoid exact self-similarity artifacts).
        std::size_t u = 0;
        std::size_t v = 0;
        for (std::size_t level = 0; level < scale; ++level) {
            const double noise = 0.9 + 0.2 * rng.uniform01();
            const double pa = params.a * noise;
            const double r = rng.uniform01() * (pa + params.b + params.c + params.d);
            u <<= 1;
            v <<= 1;
            if (r < pa) {
                // top-left quadrant: no bits set
            } else if (r < pa + params.b) {
                v |= 1;
            } else if (r < pa + params.b + params.c) {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if (u != v &&
            g.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v),
                       weights.sample(rng))) {
            ++added;
        }
    }
    return g;
}

DynamicGraph planted_partition(std::size_t n, std::size_t communities, double p_in,
                               double p_out, Rng& rng,
                               std::vector<std::uint32_t>* membership,
                               WeightRange weights) {
    AA_ASSERT_MSG(communities >= 1 && communities <= n, "invalid community count");
    DynamicGraph g(n);
    std::vector<std::uint32_t> block(n);
    for (std::size_t v = 0; v < n; ++v) {
        // Contiguous equal-size blocks (id-cyclic assignment would correlate
        // with round-robin partitioning and bias comparisons).
        block[v] = static_cast<std::uint32_t>(
            std::min(v * communities / n, communities - 1));
    }
    for (VertexId u = 0; u < n; ++u) {
        for (VertexId v = u + 1; v < n; ++v) {
            const double p = block[u] == block[v] ? p_in : p_out;
            if (rng.chance(p)) {
                g.add_edge(u, v, weights.sample(rng));
            }
        }
    }
    if (membership != nullptr) {
        *membership = std::move(block);
    }
    return g;
}

GrowthBatch grow_batch(std::size_t host_vertices, const GrowthConfig& config,
                       Rng& rng) {
    AA_ASSERT_MSG(host_vertices >= 1, "host graph must be non-empty");
    AA_ASSERT_MSG(config.communities >= 1, "need at least one community");
    GrowthBatch batch;
    batch.base_id = static_cast<VertexId>(host_vertices);
    batch.num_new = config.num_new;
    batch.community.resize(config.num_new);

    // Per-community endpoint pools for preferential attachment among the new
    // vertices (mirrors how a community in a real network grows).
    std::vector<std::vector<VertexId>> pools(config.communities);
    std::unordered_set<VertexId> chosen;

    for (std::size_t i = 0; i < config.num_new; ++i) {
        const VertexId vid = batch.base_id + static_cast<VertexId>(i);
        // Contiguous community blocks, like a Louvain-extracted batch (and
        // unlike id-cyclic assignment, which would accidentally correlate
        // with round-robin processor assignment).
        auto comm = static_cast<std::uint32_t>(i * config.communities /
                                               std::max<std::size_t>(config.num_new, 1));
        comm = std::min(comm, static_cast<std::uint32_t>(config.communities - 1));
        if (config.noise > 0 && config.communities > 1 && rng.chance(config.noise)) {
            comm = static_cast<std::uint32_t>(rng.uniform(config.communities));
        }
        batch.community[i] = comm;
        auto& pool = pools[comm];

        // Intra-community edges to earlier batch members (preferential).
        const std::size_t want = std::min(config.intra_edges, pool.size());
        chosen.clear();
        std::size_t guard = 0;
        while (chosen.size() < want && guard++ < 64 * config.intra_edges + 64) {
            chosen.insert(pool[rng.uniform(pool.size())]);
        }
        for (VertexId u : chosen) {
            batch.edges.push_back({vid, u, config.weights.sample(rng)});
            pool.push_back(u);
            pool.push_back(vid);
        }
        if (chosen.empty()) {
            pool.push_back(vid);  // community founder
        }

        // Anchor edges into the host graph.
        for (std::size_t j = 0; j < config.host_edges; ++j) {
            const auto host = static_cast<VertexId>(rng.uniform(host_vertices));
            batch.edges.push_back({vid, host, config.weights.sample(rng)});
        }
    }

    // Deduplicate (preferential attachment can propose the same pair twice via
    // different pool entries; DynamicGraph would reject them, but benchmarks
    // count batch.edges directly).
    std::sort(batch.edges.begin(), batch.edges.end(), [](const Edge& a, const Edge& b) {
        const auto ka = std::minmax(a.u, a.v);
        const auto kb = std::minmax(b.u, b.v);
        return ka < kb;
    });
    batch.edges.erase(std::unique(batch.edges.begin(), batch.edges.end(),
                                  [](const Edge& a, const Edge& b) {
                                      return std::minmax(a.u, a.v) ==
                                             std::minmax(b.u, b.v);
                                  }),
                      batch.edges.end());
    return batch;
}

}  // namespace aa
