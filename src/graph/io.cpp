#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <unordered_map>

namespace aa {

namespace {

std::ifstream open_input(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw IoError("cannot open file for reading: " + path);
    }
    return in;
}

std::ofstream open_output(const std::string& path) {
    std::ofstream out(path);
    if (!out) {
        throw IoError("cannot open file for writing: " + path);
    }
    return out;
}

}  // namespace

DynamicGraph read_snap_edge_list(std::istream& in) {
    struct RawEdge {
        std::uint64_t u;
        std::uint64_t v;
        Weight w;
    };
    std::vector<RawEdge> raw;
    std::uint64_t max_id = 0;
    std::size_t distinct_bound = 0;  // upper bound: 2 * edges

    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#' || line[0] == '%') {
            continue;
        }
        std::istringstream fields(line);
        std::uint64_t u = 0;
        std::uint64_t v = 0;
        if (!(fields >> u >> v)) {
            throw IoError("malformed SNAP line " + std::to_string(line_no) + ": " +
                          line);
        }
        Weight w = 1.0;
        fields >> w;  // optional third column
        if (w <= 0) {
            throw IoError("non-positive weight on SNAP line " +
                          std::to_string(line_no));
        }
        raw.push_back({u, v, w});
        max_id = std::max({max_id, u, v});
        distinct_bound += 2;
    }

    std::vector<Edge> edges;
    edges.reserve(raw.size());
    std::size_t n = 0;
    if (max_id < distinct_bound && max_id < (1ull << 31)) {
        // Dense-ish id space: keep the file's own numbering so round trips
        // and cross-references with external tooling are stable.
        for (const RawEdge& e : raw) {
            edges.push_back({static_cast<VertexId>(e.u), static_cast<VertexId>(e.v),
                             e.w});
        }
        n = raw.empty() ? 0 : static_cast<std::size_t>(max_id) + 1;
    } else {
        // Sparse ids (common in SNAP dumps): compact in encounter order.
        std::unordered_map<std::uint64_t, VertexId> remap;
        const auto intern = [&remap](std::uint64_t id) {
            const auto [it, inserted] =
                remap.emplace(id, static_cast<VertexId>(remap.size()));
            return it->second;
        };
        for (const RawEdge& e : raw) {
            edges.push_back({intern(e.u), intern(e.v), e.w});
        }
        n = remap.size();
    }
    return DynamicGraph::from_edges(edges, n);
}

DynamicGraph read_snap_edge_list_file(const std::string& path) {
    auto in = open_input(path);
    return read_snap_edge_list(in);
}

void write_snap_edge_list(const DynamicGraph& g, std::ostream& out) {
    out << std::setprecision(std::numeric_limits<Weight>::max_digits10);
    out << "# Undirected graph, " << g.num_vertices() << " vertices, "
        << g.num_edges() << " edges\n";
    out << "# FromNodeId\tToNodeId\tWeight\n";
    for (const Edge& e : g.edges()) {
        out << e.u << '\t' << e.v << '\t' << e.weight << '\n';
    }
}

void write_snap_edge_list_file(const DynamicGraph& g, const std::string& path) {
    auto out = open_output(path);
    write_snap_edge_list(g, out);
}

DynamicGraph read_pajek(std::istream& in) {
    std::string line;
    std::size_t n = 0;
    bool saw_vertices = false;
    std::vector<Edge> edges;
    bool in_edges = false;

    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '%') {
            continue;
        }
        std::istringstream fields(line);
        std::string token;
        fields >> token;
        for (auto& c : token) {
            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        if (token == "*vertices") {
            if (!(fields >> n)) {
                throw IoError("malformed *Vertices header");
            }
            saw_vertices = true;
            in_edges = false;
        } else if (token == "*edges" || token == "*arcs") {
            in_edges = true;
        } else if (token.starts_with("*")) {
            in_edges = false;  // *Partition etc. — skip section
        } else if (in_edges) {
            std::istringstream edge_line(line);
            std::uint64_t u = 0;
            std::uint64_t v = 0;
            if (!(edge_line >> u >> v)) {
                throw IoError("malformed edge line: " + line);
            }
            Weight w = 1.0;
            edge_line >> w;
            if (u < 1 || v < 1 || u > n || v > n) {
                throw IoError("edge endpoint out of range: " + line);
            }
            edges.push_back({static_cast<VertexId>(u - 1),
                             static_cast<VertexId>(v - 1), w});
        }
        // Vertex label lines between *Vertices and the first edge section are
        // ignored: ids are positional.
    }
    if (!saw_vertices) {
        throw IoError("missing *Vertices header");
    }
    return DynamicGraph::from_edges(edges, n);
}

DynamicGraph read_pajek_file(const std::string& path) {
    auto in = open_input(path);
    return read_pajek(in);
}

void write_pajek(const DynamicGraph& g, std::ostream& out) {
    out << std::setprecision(std::numeric_limits<Weight>::max_digits10);
    out << "*Vertices " << g.num_vertices() << '\n';
    out << "*Edges\n";
    for (const Edge& e : g.edges()) {
        out << (e.u + 1) << ' ' << (e.v + 1) << ' ' << e.weight << '\n';
    }
}

void write_pajek_file(const DynamicGraph& g, const std::string& path) {
    auto out = open_output(path);
    write_pajek(g, out);
}

DynamicGraph read_metis(std::istream& in) {
    std::string line;
    // Header: skip comment lines (starting with '%').
    std::size_t n = 0;
    std::size_t m = 0;
    std::string fmt = "0";
    for (;;) {
        if (!std::getline(in, line)) {
            throw IoError("missing METIS header");
        }
        if (line.empty() || line[0] == '%') {
            continue;
        }
        std::istringstream header(line);
        if (!(header >> n >> m)) {
            throw IoError("malformed METIS header: " + line);
        }
        header >> fmt;  // optional
        break;
    }
    const bool weighted = fmt == "1" || fmt == "01" || fmt == "011";
    if (fmt != "0" && !weighted) {
        throw IoError("unsupported METIS fmt field: " + fmt);
    }

    DynamicGraph g(n);
    std::size_t vertex = 0;
    while (vertex < n) {
        if (!std::getline(in, line)) {
            throw IoError("METIS file ends before vertex " +
                          std::to_string(vertex + 1));
        }
        if (!line.empty() && line[0] == '%') {
            continue;
        }
        std::istringstream fields(line);
        std::uint64_t neighbor = 0;
        while (fields >> neighbor) {
            Weight w = 1.0;
            if (weighted && !(fields >> w)) {
                throw IoError("missing edge weight on METIS line for vertex " +
                              std::to_string(vertex + 1));
            }
            if (neighbor < 1 || neighbor > n) {
                throw IoError("METIS neighbor out of range: " +
                              std::to_string(neighbor));
            }
            // Each undirected edge appears in both adjacency lines; add once.
            if (neighbor - 1 > vertex) {
                if (w <= 0) {
                    throw IoError("non-positive METIS edge weight");
                }
                g.add_edge(static_cast<VertexId>(vertex),
                           static_cast<VertexId>(neighbor - 1), w);
            }
        }
        ++vertex;
    }
    if (g.num_edges() != m) {
        throw IoError("METIS header declares " + std::to_string(m) +
                      " edges but file contains " + std::to_string(g.num_edges()));
    }
    return g;
}

DynamicGraph read_metis_file(const std::string& path) {
    auto in = open_input(path);
    return read_metis(in);
}

void write_metis(const DynamicGraph& g, std::ostream& out) {
    out << std::setprecision(std::numeric_limits<Weight>::max_digits10);
    // Always emit weights (fmt 1): lossless for weighted graphs, harmless
    // (all 1s) otherwise.
    out << g.num_vertices() << ' ' << g.num_edges() << " 1\n";
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        bool first = true;
        for (const Neighbor& nb : g.neighbors(v)) {
            if (!first) {
                out << ' ';
            }
            out << (nb.to + 1) << ' ' << nb.weight;
            first = false;
        }
        out << '\n';
    }
}

void write_metis_file(const DynamicGraph& g, const std::string& path) {
    auto out = open_output(path);
    write_metis(g, out);
}

}  // namespace aa
