// Louvain community detection (Blondel et al. 2008).
//
// The paper builds its vertex-addition workloads by extracting communities
// with Pajek's Louvain implementation; this module plays that role (and lets
// examples analyze community structure on arbitrary graphs). Standard
// modularity-maximizing local moving + graph aggregation, repeated until the
// modularity gain falls below `min_gain`.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace aa {

struct LouvainResult {
    /// Community id of each vertex, compacted to [0, num_communities).
    std::vector<std::uint32_t> membership;
    std::uint32_t num_communities{0};
    /// Modularity of the returned partition.
    double modularity{0.0};
    /// Number of local-moving/aggregation rounds performed.
    std::size_t levels{0};
};

struct LouvainConfig {
    /// Stop when a full level improves modularity by less than this.
    double min_gain{1e-6};
    /// Cap on aggregation levels (safety bound; Louvain converges quickly).
    std::size_t max_levels{32};
};

/// Run Louvain on `g`. Vertex visit order is shuffled with `rng`, which is the
/// only source of nondeterminism — a fixed seed gives a fixed partition.
LouvainResult louvain(const DynamicGraph& g, Rng& rng, LouvainConfig config = {});

/// Modularity of an arbitrary membership vector on `g`.
double modularity(const DynamicGraph& g, const std::vector<std::uint32_t>& membership);

}  // namespace aa
