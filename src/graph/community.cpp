#include "graph/community.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/assert.hpp"

namespace aa {

namespace {

/// Internal Louvain representation: supports self-loops, which carry the
/// aggregated internal weight of a community after each coarsening level
/// (DynamicGraph deliberately rejects self-loops, so we cannot reuse it).
struct LouvainGraph {
    // adjacency[v] = (neighbor, weight), self-loops excluded
    std::vector<std::vector<std::pair<std::uint32_t, Weight>>> adjacency;
    // self[v] = total self-loop weight at v (counted once)
    std::vector<Weight> self;
    // degree[v] = weighted degree incl. 2 * self[v]
    std::vector<Weight> degree;
    Weight two_m{0};

    std::size_t size() const { return adjacency.size(); }
};

LouvainGraph from_dynamic(const DynamicGraph& g) {
    LouvainGraph lg;
    const std::size_t n = g.num_vertices();
    lg.adjacency.resize(n);
    lg.self.assign(n, 0);
    lg.degree.assign(n, 0);
    for (VertexId v = 0; v < n; ++v) {
        for (const Neighbor& nb : g.neighbors(v)) {
            lg.adjacency[v].push_back({nb.to, nb.weight});
        }
        lg.degree[v] = g.weighted_degree(v);
        lg.two_m += lg.degree[v];
    }
    return lg;
}

/// One local-moving phase: greedily move vertices to the neighbouring
/// community with the best modularity gain until no move helps.
/// Returns true if anything moved.
bool local_moving(const LouvainGraph& g, std::vector<std::uint32_t>& membership,
                  Rng& rng) {
    const std::size_t n = g.size();
    std::vector<Weight> community_degree(n, 0);
    for (std::uint32_t v = 0; v < n; ++v) {
        community_degree[membership[v]] += g.degree[v];
    }

    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    bool any_moved = false;
    bool moved = true;
    std::unordered_map<std::uint32_t, Weight> links_to;
    while (moved) {
        moved = false;
        for (const std::uint32_t v : order) {
            const std::uint32_t current = membership[v];
            const Weight k_v = g.degree[v];

            links_to.clear();
            links_to[current];  // staying is always an option
            for (const auto& [u, w] : g.adjacency[v]) {
                links_to[membership[u]] += w;
            }

            community_degree[current] -= k_v;

            // gain(C) ∝ k_{v,in}(C) - Σ_tot(C) * k_v / 2m  (self-loop weight
            // moves with v and is community-independent, so it cancels).
            std::uint32_t best = current;
            double best_gain =
                links_to[current] - community_degree[current] * k_v / g.two_m;
            for (const auto& [comm, w] : links_to) {
                const double gain = w - community_degree[comm] * k_v / g.two_m;
                if (gain > best_gain + 1e-12) {
                    best_gain = gain;
                    best = comm;
                }
            }

            community_degree[best] += k_v;
            if (best != current) {
                membership[v] = best;
                moved = true;
                any_moved = true;
            }
        }
    }
    return any_moved;
}

/// Renumber membership ids to a dense [0, k) range; returns k.
std::uint32_t compact(std::vector<std::uint32_t>& membership) {
    std::unordered_map<std::uint32_t, std::uint32_t> remap;
    for (auto& m : membership) {
        const auto [it, inserted] =
            remap.emplace(m, static_cast<std::uint32_t>(remap.size()));
        m = it->second;
    }
    return static_cast<std::uint32_t>(remap.size());
}

/// Aggregate communities into super-vertices; intra-community weight (edges
/// plus constituent self-loops) becomes the super-vertex's self-loop.
LouvainGraph aggregate(const LouvainGraph& g,
                       const std::vector<std::uint32_t>& membership,
                       std::uint32_t num_communities) {
    LouvainGraph coarse;
    coarse.adjacency.resize(num_communities);
    coarse.self.assign(num_communities, 0);
    coarse.degree.assign(num_communities, 0);
    coarse.two_m = g.two_m;

    std::unordered_map<std::uint64_t, Weight> acc;
    for (std::uint32_t v = 0; v < g.size(); ++v) {
        const std::uint32_t cv = membership[v];
        coarse.self[cv] += g.self[v];
        for (const auto& [u, w] : g.adjacency[v]) {
            const std::uint32_t cu = membership[u];
            if (cu == cv) {
                if (u > v) {
                    coarse.self[cv] += w;  // intra edge counted once
                }
            } else {
                acc[(static_cast<std::uint64_t>(cv) << 32) | cu] += w;
            }
        }
    }
    for (const auto& [key, w] : acc) {
        // Each direction of the pair appears once in acc (v-side iteration),
        // so this inserts both directed adjacency entries naturally.
        coarse.adjacency[static_cast<std::uint32_t>(key >> 32)].push_back(
            {static_cast<std::uint32_t>(key & 0xFFFFFFFFu), w});
    }
    for (std::uint32_t c = 0; c < num_communities; ++c) {
        Weight d = 2 * coarse.self[c];
        for (const auto& [u, w] : coarse.adjacency[c]) {
            d += w;
        }
        coarse.degree[c] = d;
    }
    return coarse;
}

}  // namespace

double modularity(const DynamicGraph& g, const std::vector<std::uint32_t>& membership) {
    AA_ASSERT(membership.size() == g.num_vertices());
    const Weight two_m = 2 * g.total_edge_weight();
    if (two_m == 0) {
        return 0.0;
    }
    const std::uint32_t k =
        membership.empty() ? 0 : *std::max_element(membership.begin(), membership.end()) + 1;
    std::vector<Weight> internal(k, 0);
    std::vector<Weight> degree(k, 0);
    for (const Edge& e : g.edges()) {
        if (membership[e.u] == membership[e.v]) {
            internal[membership[e.u]] += e.weight;
        }
    }
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        degree[membership[v]] += g.weighted_degree(v);
    }
    double q = 0.0;
    for (std::uint32_t c = 0; c < k; ++c) {
        q += 2 * internal[c] / two_m - (degree[c] / two_m) * (degree[c] / two_m);
    }
    return q;
}

LouvainResult louvain(const DynamicGraph& g, Rng& rng, LouvainConfig config) {
    LouvainResult result;
    const std::size_t n = g.num_vertices();
    result.membership.resize(n);
    std::iota(result.membership.begin(), result.membership.end(), 0);
    if (g.num_edges() == 0) {
        result.num_communities = compact(result.membership);
        return result;
    }

    LouvainGraph level_graph = from_dynamic(g);
    std::vector<std::uint32_t> flat = result.membership;
    double previous_modularity = modularity(g, flat);

    for (std::size_t level = 0; level < config.max_levels; ++level) {
        std::vector<std::uint32_t> level_membership(level_graph.size());
        std::iota(level_membership.begin(), level_membership.end(), 0);
        const bool moved = local_moving(level_graph, level_membership, rng);
        const std::uint32_t k = compact(level_membership);
        ++result.levels;

        for (auto& c : flat) {
            c = level_membership[c];
        }
        if (!moved || k == level_graph.size()) {
            break;
        }
        const double q = modularity(g, flat);
        if (q < previous_modularity + config.min_gain) {
            break;
        }
        previous_modularity = q;
        level_graph = aggregate(level_graph, level_membership, k);
    }

    result.membership = std::move(flat);
    result.num_communities = compact(result.membership);
    result.modularity = modularity(g, result.membership);
    return result;
}

}  // namespace aa
