#include "graph/graph.hpp"

#include <algorithm>

namespace aa {

DynamicGraph DynamicGraph::from_edges(std::span<const Edge> edges, std::size_t n) {
    std::size_t max_needed = n;
    for (const Edge& e : edges) {
        max_needed = std::max(max_needed, static_cast<std::size_t>(e.u) + 1);
        max_needed = std::max(max_needed, static_cast<std::size_t>(e.v) + 1);
    }
    DynamicGraph g(max_needed);
    for (const Edge& e : edges) {
        g.add_edge(e.u, e.v, e.weight);
    }
    return g;
}

VertexId DynamicGraph::add_vertex() {
    adjacency_.emplace_back();
    return static_cast<VertexId>(adjacency_.size() - 1);
}

VertexId DynamicGraph::add_vertices(std::size_t count) {
    const auto first = static_cast<VertexId>(adjacency_.size());
    adjacency_.resize(adjacency_.size() + count);
    return first;
}

bool DynamicGraph::add_edge(VertexId u, VertexId v, Weight weight) {
    AA_ASSERT(u < adjacency_.size() && v < adjacency_.size());
    AA_ASSERT_MSG(weight > 0, "edge weights must be positive");
    if (u == v || has_edge(u, v)) {
        return false;
    }
    adjacency_[u].push_back({v, weight});
    adjacency_[v].push_back({u, weight});
    ++num_edges_;
    return true;
}

bool DynamicGraph::has_edge(VertexId u, VertexId v) const {
    AA_ASSERT(u < adjacency_.size() && v < adjacency_.size());
    const auto& smaller =
        adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u] : adjacency_[v];
    const VertexId target = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
    return std::any_of(smaller.begin(), smaller.end(),
                       [target](const Neighbor& nb) { return nb.to == target; });
}

Weight DynamicGraph::edge_weight(VertexId u, VertexId v) const {
    AA_ASSERT(u < adjacency_.size() && v < adjacency_.size());
    for (const Neighbor& nb : adjacency_[u]) {
        if (nb.to == v) {
            return nb.weight;
        }
    }
    return kInfinity;
}

bool DynamicGraph::set_edge_weight(VertexId u, VertexId v, Weight weight) {
    AA_ASSERT(u < adjacency_.size() && v < adjacency_.size());
    AA_ASSERT_MSG(weight > 0, "edge weights must be positive");
    bool found = false;
    for (Neighbor& nb : adjacency_[u]) {
        if (nb.to == v) {
            nb.weight = weight;
            found = true;
        }
    }
    if (found) {
        for (Neighbor& nb : adjacency_[v]) {
            if (nb.to == u) {
                nb.weight = weight;
            }
        }
    }
    return found;
}

Weight DynamicGraph::remove_edge(VertexId u, VertexId v) {
    AA_ASSERT(u < adjacency_.size() && v < adjacency_.size());
    const Weight old = edge_weight(u, v);
    if (!(old < kInfinity)) {
        return kInfinity;
    }
    std::erase_if(adjacency_[u], [v](const Neighbor& nb) { return nb.to == v; });
    std::erase_if(adjacency_[v], [u](const Neighbor& nb) { return nb.to == u; });
    --num_edges_;
    return old;
}

std::vector<Edge> DynamicGraph::edges() const {
    std::vector<Edge> out;
    out.reserve(num_edges_);
    for (VertexId u = 0; u < adjacency_.size(); ++u) {
        for (const Neighbor& nb : adjacency_[u]) {
            if (u < nb.to) {
                out.push_back({u, nb.to, nb.weight});
            }
        }
    }
    return out;
}

Weight DynamicGraph::total_edge_weight() const {
    Weight total = 0;
    for (VertexId u = 0; u < adjacency_.size(); ++u) {
        for (const Neighbor& nb : adjacency_[u]) {
            if (u < nb.to) {
                total += nb.weight;
            }
        }
    }
    return total;
}

Weight DynamicGraph::weighted_degree(VertexId v) const {
    AA_ASSERT(v < adjacency_.size());
    Weight total = 0;
    for (const Neighbor& nb : adjacency_[v]) {
        total += nb.weight;
    }
    return total;
}

}  // namespace aa
