// DynamicGraph: an undirected, weighted graph with mutable vertex/edge sets.
//
// This is the library's canonical in-memory representation. It is optimized
// for the access patterns of the anytime-anywhere engine:
//   * dense vertex ids [0, n) so per-vertex state can live in flat arrays,
//   * cheap vertex/edge addition (the paper's dynamic updates),
//   * adjacency iteration for Dijkstra / partitioning / Louvain.
//
// Vertex ids are stable once assigned: "deleting" a vertex means removing all
// of its incident edges (see AnytimeEngine::apply_deletion), which leaves the
// id in place and the vertex isolated. Edges can be removed and reweighted.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace aa {

/// One adjacency entry: the neighbour and the weight of the connecting edge.
struct Neighbor {
    VertexId to{kInvalidVertex};
    Weight weight{1.0};

    friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

class DynamicGraph {
public:
    DynamicGraph() = default;

    /// Construct with `n` isolated vertices.
    explicit DynamicGraph(std::size_t n) : adjacency_(n) {}

    /// Construct from an edge list; vertex count is max endpoint + 1 unless a
    /// larger `n` is given.
    static DynamicGraph from_edges(std::span<const Edge> edges, std::size_t n = 0);

    std::size_t num_vertices() const { return adjacency_.size(); }
    std::size_t num_edges() const { return num_edges_; }

    /// Append a new isolated vertex; returns its id.
    VertexId add_vertex();

    /// Append `count` isolated vertices; returns the id of the first.
    VertexId add_vertices(std::size_t count);

    /// Add undirected edge {u, v} with the given positive weight.
    /// Self-loops and duplicate edges are rejected (returns false) because
    /// neither affects shortest paths and duplicates would distort cut-edge
    /// accounting in the partitioner.
    bool add_edge(VertexId u, VertexId v, Weight weight = 1.0);

    /// True if {u, v} is present. Linear in min(deg(u), deg(v)).
    bool has_edge(VertexId u, VertexId v) const;

    /// Weight of edge {u, v}; kInfinity if absent.
    Weight edge_weight(VertexId u, VertexId v) const;

    /// Change the weight of an existing edge {u, v} (both directions).
    /// Returns false if the edge does not exist.
    bool set_edge_weight(VertexId u, VertexId v, Weight weight);

    /// Remove edge {u, v} (both directions). Returns its old weight, or
    /// kInfinity if the edge was not present (removal is then a no-op).
    Weight remove_edge(VertexId u, VertexId v);

    std::size_t degree(VertexId v) const {
        AA_ASSERT(v < adjacency_.size());
        return adjacency_[v].size();
    }

    std::span<const Neighbor> neighbors(VertexId v) const {
        AA_ASSERT(v < adjacency_.size());
        return adjacency_[v];
    }

    /// All edges, each once, with u < v.
    std::vector<Edge> edges() const;

    /// Sum of all edge weights (each edge counted once).
    Weight total_edge_weight() const;

    /// Weighted degree (sum of incident edge weights).
    Weight weighted_degree(VertexId v) const;

private:
    std::vector<std::vector<Neighbor>> adjacency_;
    std::size_t num_edges_{0};
};

}  // namespace aa
