// Structural graph metrics used by examples, tests and benchmark reporting.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace aa {

/// Degree histogram: index = degree, value = number of vertices.
std::vector<std::size_t> degree_histogram(const DynamicGraph& g);

/// Connected components via BFS; returns component id per vertex (dense).
std::vector<std::uint32_t> connected_components(const DynamicGraph& g);

std::size_t num_connected_components(const DynamicGraph& g);

bool is_connected(const DynamicGraph& g);

/// Maximum-likelihood estimate of the power-law exponent of the degree
/// distribution (Clauset-Shalizi-Newman discrete MLE with x_min fixed).
/// Returns 0 if fewer than 2 vertices have degree >= x_min.
double power_law_exponent_mle(const DynamicGraph& g, std::size_t x_min = 2);

/// Global clustering coefficient (3 * triangles / open wedges).
double global_clustering_coefficient(const DynamicGraph& g);

/// Average degree (2m / n); 0 for empty graph.
double average_degree(const DynamicGraph& g);

}  // namespace aa
