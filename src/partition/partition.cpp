#include "partition/partition.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace aa {

bool Partitioning::valid() const {
    if (num_parts == 0) {
        return assignment.empty();
    }
    return std::all_of(assignment.begin(), assignment.end(),
                       [this](RankId r) { return r < num_parts; });
}

namespace {

template <typename GraphT>
PartitionQuality evaluate_impl(const GraphT& g, const Partitioning& p) {
    AA_ASSERT(p.assignment.size() == g.num_vertices());
    AA_ASSERT(p.valid());
    PartitionQuality q;
    q.part_sizes.assign(p.num_parts, 0);
    q.part_cut_edges.assign(p.num_parts, 0);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        ++q.part_sizes[p.assignment[v]];
    }
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
        const RankId ru = p.assignment[u];
        auto nbs = g.neighbors(u);
        for (std::size_t i = 0; i < nbs.size(); ++i) {
            VertexId v;
            Weight w;
            if constexpr (std::is_same_v<GraphT, DynamicGraph>) {
                v = nbs[i].to;
                w = nbs[i].weight;
            } else {
                v = nbs[i];
                w = g.neighbor_weights(u)[i];
            }
            if (u < v && ru != p.assignment[v]) {
                ++q.cut_edges;
                q.cut_weight += w;
                ++q.part_cut_edges[ru];
                ++q.part_cut_edges[p.assignment[v]];
            }
        }
    }
    const double ideal = static_cast<double>(g.num_vertices()) /
                         static_cast<double>(std::max<std::uint32_t>(p.num_parts, 1));
    const std::size_t largest =
        q.part_sizes.empty()
            ? 0
            : *std::max_element(q.part_sizes.begin(), q.part_sizes.end());
    q.imbalance = ideal > 0 ? static_cast<double>(largest) / ideal : 0.0;
    return q;
}

}  // namespace

PartitionQuality evaluate_partition(const DynamicGraph& g, const Partitioning& p) {
    return evaluate_impl(g, p);
}

PartitionQuality evaluate_partition(const CsrGraph& g, const Partitioning& p) {
    return evaluate_impl(g, p);
}

PartitionQuality evaluate_partition(const DynamicGraph& g,
                                    const ShardOwnership& ownership,
                                    std::uint32_t num_parts) {
    Partitioning p;
    p.assignment = ownership.owners();
    p.num_parts = num_parts;
    PartitionQuality q = evaluate_impl(g, p);
    q.shard_loads.assign(ownership.num_shards(), 0.0);
    q.shard_cut_edges.assign(ownership.num_shards(), 0);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
        const ShardId su = ownership.shard(u);
        q.shard_loads[su] += 1.0 + static_cast<double>(g.neighbors(u).size());
        for (const Neighbor& nb : g.neighbors(u)) {
            if (u < nb.to && p.assignment[u] != p.assignment[nb.to]) {
                ++q.shard_cut_edges[su];
                ++q.shard_cut_edges[ownership.shard(nb.to)];
            }
        }
    }
    return q;
}

std::size_t count_cut_edges(const DynamicGraph& g, const Partitioning& p) {
    AA_ASSERT(p.assignment.size() == g.num_vertices());
    std::size_t cut = 0;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
        for (const Neighbor& nb : g.neighbors(u)) {
            if (u < nb.to && p.assignment[u] != p.assignment[nb.to]) {
                ++cut;
            }
        }
    }
    return cut;
}

}  // namespace aa
