// Boundary refinement: greedy Fiduccia-Mattheyses-style passes that move
// boundary vertices to the neighbouring part with the largest cut-weight gain,
// subject to a balance constraint.
#pragma once

#include "graph/csr.hpp"
#include "partition/partition.hpp"

namespace aa {

struct RefineConfig {
    /// Maximum allowed part weight = balance_factor * (total / k).
    double balance_factor{1.05};
    /// Number of full boundary sweeps.
    std::size_t max_passes{8};
    /// Allow zero-gain moves that improve balance.
    bool balance_moves{true};
};

/// Refine `p` in place on `g`. Returns total cut-weight improvement.
Weight refine_partition(const CsrGraph& g, Partitioning& p, RefineConfig config = {});

}  // namespace aa
