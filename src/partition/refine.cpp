#include "partition/refine.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"

namespace aa {

Weight refine_partition(const CsrGraph& g, Partitioning& p, RefineConfig config) {
    const std::size_t n = g.num_vertices();
    const std::uint32_t k = p.num_parts;
    AA_ASSERT(p.assignment.size() == n);
    if (k <= 1 || n == 0) {
        return 0;
    }

    std::vector<Weight> load(k, 0);
    for (VertexId v = 0; v < n; ++v) {
        load[p.assignment[v]] += g.vertex_weight(v);
    }
    const Weight max_load =
        config.balance_factor * g.total_vertex_weight() / static_cast<Weight>(k);

    // Connection weight from a vertex to each part; reused scratch, reset via
    // a touched list to stay O(deg) per vertex.
    std::vector<Weight> conn(k, 0);
    std::vector<std::uint32_t> touched;
    touched.reserve(k);

    Weight total_gain = 0;
    for (std::size_t pass = 0; pass < config.max_passes; ++pass) {
        Weight pass_gain = 0;
        for (VertexId v = 0; v < n; ++v) {
            const std::uint32_t current = p.assignment[v];
            const auto nbs = g.neighbors(v);
            const auto wts = g.neighbor_weights(v);
            bool boundary = false;
            for (std::size_t i = 0; i < nbs.size(); ++i) {
                const std::uint32_t part = p.assignment[nbs[i]];
                if (conn[part] == 0) {
                    touched.push_back(part);
                }
                conn[part] += wts[i];
                if (part != current) {
                    boundary = true;
                }
            }
            if (boundary) {
                const Weight internal = conn[current];
                const Weight vw = g.vertex_weight(v);
                std::uint32_t best = current;
                Weight best_gain = 0;
                for (const std::uint32_t part : touched) {
                    if (part == current) {
                        continue;
                    }
                    if (load[part] + vw > max_load) {
                        continue;  // would break balance
                    }
                    const Weight gain = conn[part] - internal;
                    const bool better_cut = gain > best_gain + 1e-12;
                    const bool balance_tiebreak =
                        config.balance_moves && gain >= best_gain - 1e-12 &&
                        load[part] + vw < load[current];
                    if (better_cut || (best == current && balance_tiebreak)) {
                        best = part;
                        best_gain = gain;
                    }
                }
                if (best != current) {
                    p.assignment[v] = best;
                    load[current] -= vw;
                    load[best] += vw;
                    pass_gain += best_gain;
                }
            }
            for (const std::uint32_t part : touched) {
                conn[part] = 0;
            }
            touched.clear();
        }
        total_gain += pass_gain;
        if (pass_gain <= 0) {
            break;
        }
    }
    return total_gain;
}

}  // namespace aa
