#include "partition/simple.hpp"

#include <deque>
#include <numeric>

#include "common/assert.hpp"

namespace aa {

Partitioning block_partition(std::size_t n, std::uint32_t k) {
    AA_ASSERT(k >= 1);
    Partitioning p;
    p.num_parts = k;
    p.assignment.resize(n);
    const std::size_t base = n / k;
    const std::size_t extra = n % k;
    std::size_t v = 0;
    for (std::uint32_t part = 0; part < k; ++part) {
        const std::size_t size = base + (part < extra ? 1 : 0);
        for (std::size_t i = 0; i < size; ++i) {
            p.assignment[v++] = part;
        }
    }
    return p;
}

Partitioning round_robin_partition(std::size_t n, std::uint32_t k,
                                   std::uint32_t offset) {
    AA_ASSERT(k >= 1);
    Partitioning p;
    p.num_parts = k;
    p.assignment.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
        p.assignment[v] = static_cast<RankId>((v + offset) % k);
    }
    return p;
}

Partitioning random_partition(std::size_t n, std::uint32_t k, Rng& rng) {
    AA_ASSERT(k >= 1);
    Partitioning p;
    p.num_parts = k;
    p.assignment.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
        p.assignment[v] = static_cast<RankId>(rng.uniform(k));
    }
    return p;
}

Partitioning bfs_partition(const DynamicGraph& g, std::uint32_t k, Rng& rng) {
    AA_ASSERT(k >= 1);
    const std::size_t n = g.num_vertices();
    Partitioning p;
    p.num_parts = k;
    p.assignment.assign(n, kInvalidVertex);

    if (n == 0) {
        return p;
    }

    // Pick k distinct random seeds (or all vertices if n < k).
    std::vector<VertexId> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    const std::size_t cap = (n + k - 1) / k;  // per-part size target
    std::vector<std::deque<VertexId>> frontiers(k);
    std::vector<std::size_t> size(k, 0);
    for (std::uint32_t part = 0; part < k && part < n; ++part) {
        frontiers[part].push_back(order[part]);
    }

    // Round-robin BFS expansion: each part claims one frontier vertex per turn
    // until it hits the size cap.
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::uint32_t part = 0; part < k; ++part) {
            while (!frontiers[part].empty() && size[part] < cap) {
                const VertexId v = frontiers[part].front();
                frontiers[part].pop_front();
                if (p.assignment[v] != kInvalidVertex) {
                    continue;
                }
                p.assignment[v] = part;
                ++size[part];
                progress = true;
                for (const Neighbor& nb : g.neighbors(v)) {
                    if (p.assignment[nb.to] == kInvalidVertex) {
                        frontiers[part].push_back(nb.to);
                    }
                }
                break;  // one claim per turn keeps growth balanced
            }
        }
    }

    // Leftovers: isolated vertices / other components / capped-out regions.
    std::uint32_t next = 0;
    for (VertexId v = 0; v < n; ++v) {
        if (p.assignment[v] == kInvalidVertex) {
            // Prefer the smallest part to preserve balance.
            std::uint32_t best = next;
            for (std::uint32_t part = 0; part < k; ++part) {
                if (size[part] < size[best]) {
                    best = part;
                }
            }
            p.assignment[v] = best;
            ++size[best];
            next = (next + 1) % k;
        }
    }
    return p;
}

}  // namespace aa
