// Graph partitioning: the assignment of vertices to ranks, plus quality
// metrics. The anytime-anywhere DD phase, CutEdge-PS and Repartition-S all
// consume this interface, so any partitioner can be swapped in — exactly the
// modularity the paper claims for its framework.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "shard/ownership.hpp"

namespace aa {

/// A k-way partitioning: assignment[v] in [0, num_parts) for every vertex.
struct Partitioning {
    std::vector<RankId> assignment;
    std::uint32_t num_parts{0};

    bool valid() const;
};

/// Quality metrics of a partitioning on a graph.
struct PartitionQuality {
    /// Number of edges with endpoints in different parts.
    std::size_t cut_edges{0};
    /// Total weight of cut edges.
    Weight cut_weight{0};
    /// Vertices per part.
    std::vector<std::size_t> part_sizes;
    /// max(part size) / (n / k); 1.0 = perfectly balanced.
    double imbalance{0};
    /// Cut edges incident to each part (a part's communication volume).
    std::vector<std::size_t> part_cut_edges;
    /// Per-shard load (vertices + incident edge endpoints) and per-shard cut
    /// edges — filled only by the ShardOwnership overload (empty otherwise).
    /// This is the migration telemetry: which logical buckets carry the
    /// weight a shard move would redistribute.
    std::vector<double> shard_loads;
    std::vector<std::size_t> shard_cut_edges;
};

PartitionQuality evaluate_partition(const DynamicGraph& g, const Partitioning& p);
PartitionQuality evaluate_partition(const CsrGraph& g, const Partitioning& p);

/// Shard-aware evaluation: the rank-level metrics of the materialized
/// assignment plus per-shard load and cut telemetry (shard_loads /
/// shard_cut_edges). num_parts is taken as the shard map's rank span.
PartitionQuality evaluate_partition(const DynamicGraph& g,
                                    const ShardOwnership& ownership,
                                    std::uint32_t num_parts);

/// Number of cut edges only (cheaper than full evaluation).
std::size_t count_cut_edges(const DynamicGraph& g, const Partitioning& p);

}  // namespace aa
