// Heavy-edge matching for multilevel coarsening (Karypis & Kumar).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "graph/csr.hpp"

namespace aa {

/// Compute a matching: match[v] == partner of v, or v itself if unmatched.
/// Vertices are visited in random order; each unmatched vertex pairs with its
/// unmatched neighbour of maximum edge weight (heavy-edge rule), which
/// preserves cut structure through coarsening.
std::vector<VertexId> heavy_edge_matching(const CsrGraph& g, Rng& rng);

/// Number of matched pairs in a matching vector.
std::size_t matching_size(const std::vector<VertexId>& match);

}  // namespace aa
