// Graph coarsening: collapse matched vertex pairs into super-vertices,
// accumulating edge and vertex weights.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace aa {

struct CoarseLevel {
    CsrGraph graph;
    /// fine vertex id -> coarse vertex id.
    std::vector<VertexId> fine_to_coarse;
};

/// Contract `g` along `match` (as produced by heavy_edge_matching). Parallel
/// edges between super-vertices are merged with summed weights; edges internal
/// to a pair disappear.
CoarseLevel coarsen(const CsrGraph& g, const std::vector<VertexId>& match);

}  // namespace aa
