// Multilevel k-way partitioner (the Karypis-Kumar scheme the paper delegates
// to METIS/ParMETIS for): heavy-edge-matching coarsening until the graph is
// small, greedy growing on the coarsest level, then uncoarsening with FM
// boundary refinement at every level.
//
// Used by the DD phase, by CutEdge-PS (on the batch graph) and by
// Repartition-S (on the grown graph).
#pragma once

#include "common/rng.hpp"
#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "partition/partition.hpp"
#include "partition/refine.hpp"

namespace aa {

struct MultilevelConfig {
    /// Stop coarsening once the graph has at most max(coarsen_to * k, 64)
    /// vertices.
    std::size_t coarsen_to{30};
    /// Stop coarsening when a level shrinks by less than this factor
    /// (matching has stalled, e.g. on a star graph).
    double min_shrink{0.95};
    /// Safety cap on levels.
    std::size_t max_levels{64};
    RefineConfig refine{};
};

/// Partition `g` into k parts minimizing cut weight under the balance
/// constraint in `config.refine`.
Partitioning multilevel_partition(const CsrGraph& g, std::uint32_t k, Rng& rng,
                                  const MultilevelConfig& config = {});

/// Convenience overload snapshotting a DynamicGraph.
Partitioning multilevel_partition(const DynamicGraph& g, std::uint32_t k, Rng& rng,
                                  const MultilevelConfig& config = {});

}  // namespace aa
