#include "partition/coarsen.hpp"

#include <unordered_map>

#include "common/assert.hpp"

namespace aa {

CoarseLevel coarsen(const CsrGraph& g, const std::vector<VertexId>& match) {
    const std::size_t n = g.num_vertices();
    AA_ASSERT(match.size() == n);

    CoarseLevel level;
    level.fine_to_coarse.assign(n, kInvalidVertex);

    // Number super-vertices: one per matched pair / unmatched vertex.
    VertexId next = 0;
    for (VertexId v = 0; v < n; ++v) {
        if (level.fine_to_coarse[v] != kInvalidVertex) {
            continue;
        }
        level.fine_to_coarse[v] = next;
        const VertexId partner = match[v];
        AA_ASSERT_MSG(match[partner] == v, "matching is not symmetric");
        if (partner != v) {
            level.fine_to_coarse[partner] = next;
        }
        ++next;
    }
    const std::size_t coarse_n = next;

    // Accumulate vertex weights and coarse adjacency.
    std::vector<Weight> vertex_weights(coarse_n, 0);
    for (VertexId v = 0; v < n; ++v) {
        vertex_weights[level.fine_to_coarse[v]] += g.vertex_weight(v);
    }

    // Per-coarse-vertex neighbour accumulation. A scan per super-vertex with a
    // small hash map keeps this O(E) overall.
    std::vector<std::size_t> offsets(coarse_n + 1, 0);
    std::vector<VertexId> targets;
    std::vector<Weight> weights;
    targets.reserve(g.num_edges() * 2);
    weights.reserve(g.num_edges() * 2);

    std::vector<VertexId> members(coarse_n, kInvalidVertex);
    std::vector<VertexId> second(coarse_n, kInvalidVertex);
    for (VertexId v = 0; v < n; ++v) {
        const VertexId c = level.fine_to_coarse[v];
        if (members[c] == kInvalidVertex) {
            members[c] = v;
        } else {
            second[c] = v;
        }
    }

    std::unordered_map<VertexId, Weight> acc;
    for (VertexId c = 0; c < coarse_n; ++c) {
        acc.clear();
        for (const VertexId fine : {members[c], second[c]}) {
            if (fine == kInvalidVertex) {
                continue;
            }
            const auto nbs = g.neighbors(fine);
            const auto wts = g.neighbor_weights(fine);
            for (std::size_t i = 0; i < nbs.size(); ++i) {
                const VertexId cu = level.fine_to_coarse[nbs[i]];
                if (cu != c) {
                    acc[cu] += wts[i];
                }
            }
        }
        offsets[c + 1] = offsets[c] + acc.size();
        for (const auto& [cu, w] : acc) {
            targets.push_back(cu);
            weights.push_back(w);
        }
    }

    level.graph = CsrGraph(std::move(offsets), std::move(targets), std::move(weights),
                           std::move(vertex_weights));
    return level;
}

}  // namespace aa
