// Initial k-way partition of the coarsest graph: greedy graph growing.
#pragma once

#include "common/rng.hpp"
#include "graph/csr.hpp"
#include "partition/partition.hpp"

namespace aa {

/// Grow k regions from random seeds, always expanding the currently lightest
/// region across its heaviest frontier edge. Respects vertex weights (coarse
/// vertices aggregate many fine vertices). Leftover vertices go to the
/// lightest part.
Partitioning greedy_growing_partition(const CsrGraph& g, std::uint32_t k, Rng& rng);

}  // namespace aa
