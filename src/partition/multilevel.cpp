#include "partition/multilevel.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "partition/coarsen.hpp"
#include "partition/initial.hpp"
#include "partition/matching.hpp"

namespace aa {

Partitioning multilevel_partition(const CsrGraph& g, std::uint32_t k, Rng& rng,
                                  const MultilevelConfig& config) {
    AA_ASSERT(k >= 1);
    if (k == 1) {
        Partitioning p;
        p.num_parts = 1;
        p.assignment.assign(g.num_vertices(), 0);
        return p;
    }

    // Coarsening phase. Keep every level's fine->coarse map for projection.
    std::vector<CsrGraph> levels;
    std::vector<std::vector<VertexId>> maps;
    levels.push_back(g);

    const std::size_t stop_size =
        std::max<std::size_t>(config.coarsen_to * k, 64);
    while (levels.back().num_vertices() > stop_size &&
           levels.size() < config.max_levels) {
        const CsrGraph& fine = levels.back();
        const auto match = heavy_edge_matching(fine, rng);
        CoarseLevel next = coarsen(fine, match);
        const double shrink = static_cast<double>(next.graph.num_vertices()) /
                              static_cast<double>(fine.num_vertices());
        if (shrink > config.min_shrink) {
            break;  // matching stalled; coarser levels would not help
        }
        maps.push_back(std::move(next.fine_to_coarse));
        levels.push_back(std::move(next.graph));
    }

    // Initial partition on the coarsest level, then refine.
    Partitioning p = greedy_growing_partition(levels.back(), k, rng);
    refine_partition(levels.back(), p, config.refine);

    // Uncoarsening: project through each map and refine at the finer level.
    for (std::size_t level = maps.size(); level-- > 0;) {
        const auto& fine_to_coarse = maps[level];
        Partitioning finer;
        finer.num_parts = k;
        finer.assignment.resize(fine_to_coarse.size());
        for (VertexId v = 0; v < fine_to_coarse.size(); ++v) {
            finer.assignment[v] = p.assignment[fine_to_coarse[v]];
        }
        p = std::move(finer);
        refine_partition(levels[level], p, config.refine);
    }

    AA_ASSERT(p.assignment.size() == g.num_vertices());
    return p;
}

Partitioning multilevel_partition(const DynamicGraph& g, std::uint32_t k, Rng& rng,
                                  const MultilevelConfig& config) {
    return multilevel_partition(CsrGraph(g), k, rng, config);
}

}  // namespace aa
