#include "partition/matching.hpp"

#include <numeric>

namespace aa {

std::vector<VertexId> heavy_edge_matching(const CsrGraph& g, Rng& rng) {
    const std::size_t n = g.num_vertices();
    std::vector<VertexId> match(n);
    std::iota(match.begin(), match.end(), 0);

    std::vector<VertexId> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    for (VertexId v : order) {
        if (match[v] != v) {
            continue;  // already matched
        }
        VertexId best = v;
        Weight best_weight = -1;
        const auto nbs = g.neighbors(v);
        const auto wts = g.neighbor_weights(v);
        for (std::size_t i = 0; i < nbs.size(); ++i) {
            const VertexId u = nbs[i];
            if (u != v && match[u] == u && wts[i] > best_weight) {
                best = u;
                best_weight = wts[i];
            }
        }
        if (best != v) {
            match[v] = best;
            match[best] = v;
        }
    }
    return match;
}

std::size_t matching_size(const std::vector<VertexId>& match) {
    std::size_t pairs = 0;
    for (VertexId v = 0; v < match.size(); ++v) {
        if (match[v] > v) {
            ++pairs;
        }
    }
    return pairs;
}

}  // namespace aa
