// Baseline partitioners: cheap strategies with no cut-edge optimization.
// Round-robin is also the processor-assignment rule behind RoundRobin-PS.
#pragma once

#include "common/rng.hpp"
#include "partition/partition.hpp"

namespace aa {

/// Contiguous blocks of ~n/k vertices per part (id order).
Partitioning block_partition(std::size_t n, std::uint32_t k);

/// Vertex v -> part (v + offset) % k. Perfectly balanced, structure-blind.
Partitioning round_robin_partition(std::size_t n, std::uint32_t k,
                                   std::uint32_t offset = 0);

/// Uniform random assignment.
Partitioning random_partition(std::size_t n, std::uint32_t k, Rng& rng);

/// Grow k parts by parallel BFS from k random seeds; locality-aware but with
/// no explicit cut minimization. Unreached vertices (other components) are
/// assigned round-robin.
Partitioning bfs_partition(const DynamicGraph& g, std::uint32_t k, Rng& rng);

}  // namespace aa
