#include "partition/initial.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/assert.hpp"

namespace aa {

Partitioning greedy_growing_partition(const CsrGraph& g, std::uint32_t k, Rng& rng) {
    AA_ASSERT(k >= 1);
    const std::size_t n = g.num_vertices();
    Partitioning p;
    p.num_parts = k;
    p.assignment.assign(n, kInvalidVertex);
    if (n == 0) {
        return p;
    }

    const Weight target = g.total_vertex_weight() / static_cast<Weight>(k);
    std::vector<Weight> load(k, 0);

    // Frontier per part: max-heap on connection weight into the part.
    using Entry = std::pair<Weight, VertexId>;
    std::vector<std::priority_queue<Entry>> frontier(k);

    std::vector<VertexId> seeds(n);
    std::iota(seeds.begin(), seeds.end(), 0);
    rng.shuffle(seeds);
    std::size_t seed_cursor = 0;

    const auto claim = [&](VertexId v, std::uint32_t part) {
        p.assignment[v] = part;
        load[part] += g.vertex_weight(v);
        const auto nbs = g.neighbors(v);
        const auto wts = g.neighbor_weights(v);
        for (std::size_t i = 0; i < nbs.size(); ++i) {
            if (p.assignment[nbs[i]] == kInvalidVertex) {
                frontier[part].push({wts[i], nbs[i]});
            }
        }
    };

    std::size_t assigned = 0;
    while (assigned < n) {
        // Pick the lightest part to grow next.
        std::uint32_t part = 0;
        for (std::uint32_t q = 1; q < k; ++q) {
            if (load[q] < load[part]) {
                part = q;
            }
        }
        // Pop until we find an unassigned frontier vertex.
        VertexId next = kInvalidVertex;
        auto& heap = frontier[part];
        while (!heap.empty()) {
            const VertexId candidate = heap.top().second;
            heap.pop();
            if (p.assignment[candidate] == kInvalidVertex) {
                next = candidate;
                break;
            }
        }
        if (next == kInvalidVertex) {
            // Region exhausted (component boundary): reseed from any
            // unassigned vertex.
            while (seed_cursor < n && p.assignment[seeds[seed_cursor]] != kInvalidVertex) {
                ++seed_cursor;
            }
            if (seed_cursor == n) {
                break;
            }
            next = seeds[seed_cursor];
        }
        claim(next, part);
        ++assigned;
        // Soft balance: once a part passes the target, stop feeding it unless
        // it is still the global minimum (handled by the lightest-part rule).
        (void)target;
    }
    AA_ASSERT(assigned == n);
    return p;
}

}  // namespace aa
