#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/graph.hpp"

namespace aa {
namespace {

TEST(DynamicGraph, EmptyGraph) {
    DynamicGraph g;
    EXPECT_EQ(g.num_vertices(), 0u);
    EXPECT_EQ(g.num_edges(), 0u);
}

TEST(DynamicGraph, AddVertices) {
    DynamicGraph g(3);
    EXPECT_EQ(g.num_vertices(), 3u);
    EXPECT_EQ(g.add_vertex(), 3u);
    EXPECT_EQ(g.add_vertices(2), 4u);
    EXPECT_EQ(g.num_vertices(), 6u);
}

TEST(DynamicGraph, AddEdgeBothDirectionsVisible) {
    DynamicGraph g(3);
    EXPECT_TRUE(g.add_edge(0, 1, 2.5));
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(1, 0));
    EXPECT_EQ(g.edge_weight(0, 1), 2.5);
    EXPECT_EQ(g.edge_weight(1, 0), 2.5);
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.degree(2), 0u);
}

TEST(DynamicGraph, RejectsSelfLoop) {
    DynamicGraph g(2);
    EXPECT_FALSE(g.add_edge(1, 1));
    EXPECT_EQ(g.num_edges(), 0u);
}

TEST(DynamicGraph, RejectsDuplicateEdge) {
    DynamicGraph g(2);
    EXPECT_TRUE(g.add_edge(0, 1));
    EXPECT_FALSE(g.add_edge(0, 1, 5.0));
    EXPECT_FALSE(g.add_edge(1, 0));
    EXPECT_EQ(g.num_edges(), 1u);
    EXPECT_EQ(g.edge_weight(0, 1), 1.0);  // original weight kept
}

TEST(DynamicGraph, MissingEdgeIsInfinite) {
    DynamicGraph g(3);
    g.add_edge(0, 1);
    EXPECT_EQ(g.edge_weight(0, 2), kInfinity);
    EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(DynamicGraph, EdgesListedOnceOrdered) {
    DynamicGraph g(4);
    g.add_edge(2, 0, 1.0);
    g.add_edge(3, 1, 2.0);
    g.add_edge(0, 1, 3.0);
    const auto edges = g.edges();
    EXPECT_EQ(edges.size(), 3u);
    for (const Edge& e : edges) {
        EXPECT_LT(e.u, e.v);
    }
}

TEST(DynamicGraph, FromEdges) {
    const std::vector<Edge> edges{{0, 1, 1.0}, {1, 2, 2.0}, {4, 2, 0.5}};
    const auto g = DynamicGraph::from_edges(edges);
    EXPECT_EQ(g.num_vertices(), 5u);
    EXPECT_EQ(g.num_edges(), 3u);
    EXPECT_EQ(g.edge_weight(2, 4), 0.5);
}

TEST(DynamicGraph, FromEdgesWithExplicitSize) {
    const std::vector<Edge> edges{{0, 1, 1.0}};
    const auto g = DynamicGraph::from_edges(edges, 10);
    EXPECT_EQ(g.num_vertices(), 10u);
}

TEST(DynamicGraph, WeightedDegreeAndTotalWeight) {
    DynamicGraph g(3);
    g.add_edge(0, 1, 2.0);
    g.add_edge(0, 2, 3.0);
    EXPECT_EQ(g.weighted_degree(0), 5.0);
    EXPECT_EQ(g.weighted_degree(1), 2.0);
    EXPECT_EQ(g.total_edge_weight(), 5.0);
}

TEST(CsrGraph, SnapshotMatchesDynamic) {
    DynamicGraph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 2.0);
    g.add_edge(2, 3, 3.0);
    g.add_edge(3, 0, 4.0);
    const CsrGraph csr(g);
    EXPECT_EQ(csr.num_vertices(), 4u);
    EXPECT_EQ(csr.num_edges(), 4u);
    for (VertexId v = 0; v < 4; ++v) {
        EXPECT_EQ(csr.degree(v), g.degree(v));
        EXPECT_EQ(csr.vertex_weight(v), 1.0);
    }
    EXPECT_EQ(csr.total_vertex_weight(), 4.0);
    // Neighbor sets agree.
    const auto nbs = csr.neighbors(1);
    const auto wts = csr.neighbor_weights(1);
    ASSERT_EQ(nbs.size(), 2u);
    for (std::size_t i = 0; i < nbs.size(); ++i) {
        EXPECT_EQ(g.edge_weight(1, nbs[i]), wts[i]);
    }
}

TEST(CsrGraph, EmptySnapshot) {
    const CsrGraph csr{DynamicGraph{}};
    EXPECT_EQ(csr.num_vertices(), 0u);
    EXPECT_EQ(csr.num_edges(), 0u);
}

TEST(CsrGraph, ComponentConstructor) {
    // A 2-vertex graph with one weighted edge and vertex weights.
    CsrGraph csr({0, 1, 2}, {1, 0}, {5.0, 5.0}, {2.0, 3.0});
    EXPECT_EQ(csr.num_vertices(), 2u);
    EXPECT_EQ(csr.num_edges(), 1u);
    EXPECT_EQ(csr.vertex_weight(0), 2.0);
    EXPECT_EQ(csr.total_vertex_weight(), 5.0);
}

}  // namespace
}  // namespace aa
