// Fully-dynamic shrink correctness: after any sequence of additions,
// deletions and weight changes, the converged engine must be
// indistinguishable from a from-scratch engine on the final graph —
// bit-identical (distances AND closeness) for uniform/dyadic weights,
// within the relaxation epsilon otherwise. The churn lattice sweeps
// P in {2, 4, 8} x both backends x both wire formats x sync/async.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/baseline.hpp"
#include "core/closeness.hpp"
#include "core/edge_delete.hpp"
#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

EngineConfig shrink_config(std::uint32_t ranks) {
    EngineConfig config;
    config.num_ranks = ranks;
    config.ia_threads = 1;
    config.seed = 23;
    return config;
}

std::uint64_t bits(Weight w) { return std::bit_cast<std::uint64_t>(w); }

/// Mirror a ShrinkBatch onto a plain DynamicGraph (the reference world).
void apply_to_mirror(DynamicGraph& g, const ShrinkBatch& batch) {
    for (const VertexId v : batch.vertices) {
        std::vector<VertexId> targets;
        for (const Neighbor& nb : g.neighbors(v)) {
            targets.push_back(nb.to);
        }
        for (const VertexId t : targets) {
            g.remove_edge(v, t);
        }
    }
    for (const Edge& e : batch.deletions) {
        g.remove_edge(e.u, e.v);
    }
    for (const Edge& e : batch.reweights) {
        if (g.edge_weight(e.u, e.v) < kInfinity) {
            g.set_edge_weight(e.u, e.v, e.weight);
        }
    }
}

/// The shrink acceptance bar: distances and closeness bit-identical to a
/// from-scratch engine (same config) on the final graph.
void expect_bit_identical(const AnytimeEngine& engine,
                          const DynamicGraph& final_graph,
                          const EngineConfig& config) {
    AnytimeEngine fresh(final_graph, config);
    fresh.initialize();
    fresh.run_to_quiescence();
    const auto got = engine.full_distance_matrix();
    const auto want = fresh.full_distance_matrix();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t v = 0; v < want.size(); ++v) {
        for (std::size_t t = 0; t < want.size(); ++t) {
            ASSERT_EQ(bits(got[v][t]), bits(want[v][t]))
                << "d(" << v << "," << t << ") = " << got[v][t]
                << " want " << want[v][t];
        }
    }
    const ClosenessScores got_scores = engine.closeness();
    const ClosenessScores want_scores = fresh.closeness();
    ASSERT_EQ(got_scores.closeness.size(), want_scores.closeness.size());
    for (std::size_t v = 0; v < want_scores.closeness.size(); ++v) {
        EXPECT_EQ(bits(got_scores.closeness[v]), bits(want_scores.closeness[v]))
            << "closeness(" << v << ")";
        EXPECT_EQ(got_scores.reachable[v], want_scores.reachable[v])
            << "reachable(" << v << ")";
    }
}

/// Weighted-graph bar: within the relaxation epsilon of the exact APSP.
void expect_exact(const AnytimeEngine& engine, const DynamicGraph& expected) {
    ASSERT_EQ(engine.num_vertices(), expected.num_vertices());
    const auto approx = engine.full_distance_matrix();
    const auto exact = exact_apsp(expected);
    for (std::size_t v = 0; v < exact.size(); ++v) {
        for (std::size_t t = 0; t < exact.size(); ++t) {
            if (exact[v][t] < kInfinity) {
                ASSERT_NEAR(approx[v][t], exact[v][t], 1e-9)
                    << "d(" << v << "," << t << ")";
            } else {
                ASSERT_GE(approx[v][t], kInfinity)
                    << "d(" << v << "," << t << ")";
            }
        }
    }
}

GrowthBatch make_batch(const DynamicGraph& host, std::size_t count,
                       std::uint64_t seed) {
    GrowthConfig config;
    config.num_new = count;
    config.communities = 3;
    config.intra_edges = 2;
    config.host_edges = 2;
    Rng rng(seed);
    return grow_batch(host.num_vertices(), config, rng);
}

/// Deterministically pick `count` edges not incident to `avoid` (so the
/// mirror semantics stay independent of in-batch dedup order).
std::vector<Edge> pick_edges(const DynamicGraph& g, std::size_t count,
                             VertexId avoid, std::size_t skip = 0) {
    std::vector<Edge> picked;
    std::size_t seen = 0;
    for (const Edge& e : g.edges()) {
        if (e.u == avoid || e.v == avoid) {
            continue;
        }
        if (seen++ < skip) {
            continue;
        }
        picked.push_back(e);
        if (picked.size() == count) {
            break;
        }
    }
    EXPECT_EQ(picked.size(), count);
    return picked;
}

TEST(EngineDelete, ChainMiddleEdgeDeletionDisconnects) {
    DynamicGraph g(6);
    for (VertexId v = 0; v + 1 < 6; ++v) {
        g.add_edge(v, v + 1, 1.0);
    }
    const EngineConfig config = shrink_config(2);
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_to_quiescence();

    ShrinkBatch batch;
    batch.deletions.push_back({2, 3, 0.0});
    const ShrinkReport rep = engine.apply_deletion(batch);
    EXPECT_EQ(rep.edges_removed, 1u);
    EXPECT_GT(rep.seed_suspects, 0u);
    EXPECT_GT(rep.invalidated_entries, 0u);
    engine.run_to_quiescence();

    DynamicGraph mirror = g;
    apply_to_mirror(mirror, batch);
    expect_bit_identical(engine, mirror, config);
    // The two halves must actually be disconnected.
    const auto dist = engine.full_distance_matrix();
    EXPECT_GE(dist[0][5], kInfinity);
    EXPECT_GE(dist[3][2], kInfinity);
    EXPECT_EQ(engine.report().edge_deletions, 1u);
    EXPECT_GT(engine.report().invalidated_entries, 0u);
}

TEST(EngineDelete, CutVertexDeletionIsolatesStar) {
    // Star center plus an outer ring edge: deleting the hub (a cut vertex)
    // must drop every incident edge and push whole rows to infinity.
    DynamicGraph g(6);
    for (VertexId leaf = 1; leaf < 6; ++leaf) {
        g.add_edge(0, leaf, 1.0);
    }
    g.add_edge(1, 2, 1.0);
    const EngineConfig config = shrink_config(2);
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_to_quiescence();

    ShrinkBatch batch;
    batch.vertices.push_back(0);
    const ShrinkReport rep = engine.apply_deletion(batch);
    EXPECT_EQ(rep.edges_removed, 5u);
    engine.run_to_quiescence();

    DynamicGraph mirror = g;
    apply_to_mirror(mirror, batch);
    expect_bit_identical(engine, mirror, config);
    const auto dist = engine.full_distance_matrix();
    for (std::size_t t = 1; t < 6; ++t) {
        EXPECT_GE(dist[0][t], kInfinity);
        EXPECT_GE(dist[t][0], kInfinity);
    }
    EXPECT_NEAR(dist[1][2], 1.0, 0.0);  // the surviving ring edge
    EXPECT_GE(dist[3][4], kInfinity);   // leaves lost their only route
}

TEST(EngineDelete, AlreadyDeletedEdgeIsNoOp) {
    Rng rng(7);
    DynamicGraph g = barabasi_albert(30, 2, rng);
    const EngineConfig config = shrink_config(4);
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_to_quiescence();

    ShrinkBatch batch;
    batch.deletions = pick_edges(g, 1, kInvalidVertex);
    engine.apply_deletion(batch);
    engine.run_to_quiescence();

    // Deleting the same edge again (and a never-existing one) is silent.
    ShrinkBatch again = batch;
    again.deletions.push_back({0, 29, 0.0});
    if (g.edge_weight(0, 29) < kInfinity) {
        again.deletions.pop_back();
    }
    const ShrinkReport rep = engine.apply_deletion(again);
    EXPECT_EQ(rep.edges_removed, 0u);
    EXPECT_EQ(rep.seed_suspects, 0u);
    EXPECT_EQ(rep.invalidated_entries, 0u);
    engine.run_to_quiescence();

    DynamicGraph mirror = g;
    apply_to_mirror(mirror, batch);
    expect_bit_identical(engine, mirror, config);
}

TEST(EngineDelete, WeightIncreaseMatchesExact) {
    DynamicGraph g(5);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    g.add_edge(2, 3, 1.0);
    g.add_edge(3, 4, 1.0);
    g.add_edge(0, 4, 2.5);  // shortcut that wins once the chain gets heavy
    const EngineConfig config = shrink_config(2);
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_to_quiescence();

    const Edge raise{1, 2, 6.0};
    const ShrinkReport rep = engine.update_edge_weights({&raise, 1});
    EXPECT_EQ(rep.weight_increases, 1u);
    EXPECT_EQ(rep.weight_decreases, 0u);
    EXPECT_GT(rep.invalidated_entries, 0u);
    engine.run_to_quiescence();

    DynamicGraph mirror = g;
    mirror.set_edge_weight(1, 2, 6.0);
    expect_exact(engine, mirror);
    EXPECT_EQ(engine.report().weight_updates, 1u);
}

TEST(EngineDelete, MixedRaiseAndDecreaseInOneBatch) {
    Rng rng(11);
    DynamicGraph g = barabasi_albert(32, 2, rng);
    const EngineConfig config = shrink_config(4);
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_to_quiescence();

    const std::vector<Edge> chosen = pick_edges(g, 2, kInvalidVertex);
    ShrinkBatch batch;
    batch.reweights.push_back({chosen[0].u, chosen[0].v, 4.0});  // raise
    batch.reweights.push_back({chosen[1].u, chosen[1].v, 0.5});  // decrease
    const ShrinkReport rep = engine.apply_deletion(batch);
    EXPECT_EQ(rep.weight_increases, 1u);
    EXPECT_EQ(rep.weight_decreases, 1u);
    engine.run_to_quiescence();

    DynamicGraph mirror = g;
    apply_to_mirror(mirror, batch);
    expect_bit_identical(engine, mirror, config);
}

TEST(EngineDelete, DecreaseEdgeWeightRoutesIncreasesThroughShrink) {
    DynamicGraph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    g.add_edge(2, 3, 1.0);
    g.add_edge(0, 3, 5.0);
    const EngineConfig config = shrink_config(2);
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_to_quiescence();

    // The old entry point used to assert on increases; it must now accept
    // them and converge to the exact answer for the reweighted graph.
    EXPECT_TRUE(engine.decrease_edge_weight(1, 2, 9.0));
    engine.run_to_quiescence();

    DynamicGraph mirror = g;
    mirror.set_edge_weight(1, 2, 9.0);
    expect_exact(engine, mirror);
}

TEST(EngineDelete, SingleRankDegenerate) {
    Rng rng(3);
    DynamicGraph g = barabasi_albert(24, 2, rng);
    const EngineConfig config = shrink_config(1);
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_to_quiescence();

    ShrinkBatch batch;
    batch.deletions = pick_edges(g, 2, 5);
    batch.vertices.push_back(5);
    const std::vector<Edge> rw = pick_edges(g, 1, 5, 2);
    batch.reweights.push_back({rw[0].u, rw[0].v, 3.0});
    engine.apply_deletion(batch);
    engine.run_to_quiescence();

    DynamicGraph mirror = g;
    apply_to_mirror(mirror, batch);
    expect_bit_identical(engine, mirror, config);
}

TEST(EngineDelete, MidConvergenceDeletionStaysSound) {
    // Delete while RC is only partially converged: suspects seeded against
    // in-flight estimates must still reconverge to the exact final state.
    Rng rng(19);
    DynamicGraph g = barabasi_albert(40, 2, rng);
    const EngineConfig config = shrink_config(4);
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_rc_steps(1);  // deliberately not quiescent

    ShrinkBatch batch;
    batch.deletions = pick_edges(g, 3, kInvalidVertex);
    engine.apply_deletion(batch);
    engine.run_to_quiescence();

    DynamicGraph mirror = g;
    apply_to_mirror(mirror, batch);
    expect_bit_identical(engine, mirror, config);
}

/// One full churn scenario — delete + vertex-delete + reweight both ways,
/// then grow, then delete again — checked against a fresh engine.
void run_churn(const EngineConfig& config) {
    Rng rng(42);
    DynamicGraph g = barabasi_albert(48, 2, rng);
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_to_quiescence();

    DynamicGraph mirror = g;

    // Batch 1: structural churn around (but not incident to) vertex 7,
    // which is itself deleted; one raise, one dyadic decrease.
    ShrinkBatch batch1;
    batch1.deletions = pick_edges(g, 3, 7);
    batch1.vertices.push_back(7);
    const std::vector<Edge> rw = pick_edges(g, 2, 7, 3);
    batch1.reweights.push_back({rw[0].u, rw[0].v, 3.0});
    batch1.reweights.push_back({rw[1].u, rw[1].v, 0.5});
    engine.apply_deletion(batch1);
    apply_to_mirror(mirror, batch1);
    engine.run_rc_steps(2);  // interleave: grow while still settling

    GrowthBatch growth = make_batch(mirror, 6, 99);
    RoundRobinPS strategy;
    engine.apply_addition(growth, strategy);
    mirror = apply_batch(mirror, growth);

    // Batch 2: delete an edge of the *grown* graph mid-settle.
    ShrinkBatch batch2;
    batch2.deletions = pick_edges(mirror, 1, 7, 5);
    engine.apply_deletion(batch2);
    apply_to_mirror(mirror, batch2);

    engine.run_to_quiescence();
    expect_bit_identical(engine, mirror, config);
}

TEST(EngineDelete, ChurnLatticeSequential) {
    for (const std::uint32_t ranks : {2u, 4u, 8u}) {
        for (const BoundaryWireFormat wire :
             {BoundaryWireFormat::V1Aos, BoundaryWireFormat::V2Soa}) {
            for (const bool rc_async : {false, true}) {
                EngineConfig config = shrink_config(ranks);
                config.backend = BackendKind::Sequential;
                config.wire_format = wire;
                config.rc_async = rc_async;
                SCOPED_TRACE(::testing::Message()
                             << "ranks=" << ranks << " wire="
                             << (wire == BoundaryWireFormat::V1Aos ? "v1" : "v2")
                             << " async=" << rc_async);
                run_churn(config);
            }
        }
    }
}

TEST(EngineDelete, ChurnLatticeThreaded) {
    for (const std::uint32_t ranks : {2u, 4u, 8u}) {
        for (const BoundaryWireFormat wire :
             {BoundaryWireFormat::V1Aos, BoundaryWireFormat::V2Soa}) {
            for (const bool rc_async : {false, true}) {
                EngineConfig config = shrink_config(ranks);
                config.backend = BackendKind::Threaded;
                config.wire_format = wire;
                config.rc_async = rc_async;
                SCOPED_TRACE(::testing::Message()
                             << "ranks=" << ranks << " wire="
                             << (wire == BoundaryWireFormat::V1Aos ? "v1" : "v2")
                             << " async=" << rc_async);
                run_churn(config);
            }
        }
    }
}

TEST(EngineDelete, WeightedChurnWithinEpsilon) {
    // Non-dyadic weights forfeit bit-identity but not epsilon-exactness.
    Rng rng(29);
    DynamicGraph g = barabasi_albert(36, 2, rng, WeightRange{0.5, 2.0});
    const EngineConfig config = shrink_config(4);
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_to_quiescence();

    ShrinkBatch batch;
    batch.deletions = pick_edges(g, 3, 4);
    batch.vertices.push_back(4);
    const std::vector<Edge> rw = pick_edges(g, 1, 4, 3);
    batch.reweights.push_back({rw[0].u, rw[0].v, rw[0].weight * 3.0});
    engine.apply_deletion(batch);
    engine.run_to_quiescence();

    DynamicGraph mirror = g;
    apply_to_mirror(mirror, batch);
    expect_exact(engine, mirror);
}

// Regression: a vertex deletion applied mid-settle after CutEdge-PS and
// Repartition-S batches once kept stale-low entries. Two support-invariant
// holes fed it: IA's local Dijkstra routed *through* external boundary
// vertices (estimates no owner row could witness — fixed by making ghosts
// terminals, ia.cpp), and Repartition-S seeded new rows with a local SSSP
// whose paths ran through old local vertices that never learn the new
// columns (fixed by seeding through the anywhere edge broadcasts,
// repartition.cpp). The scale matters: smaller graphs never tripped it.
TEST(EngineDelete, MidSettleDeletionAfterCutEdgeAndRepartition) {
    Rng rng(9);
    const DynamicGraph base = barabasi_albert(400, 3, rng);
    EngineConfig config = shrink_config(8);
    AnytimeEngine engine(base, config);
    engine.initialize();
    DynamicGraph mirror = base;

    CutEdgePS cut_edge(9 * 31 + 7);
    const GrowthBatch first = make_batch(mirror, 30, 77);
    engine.apply_addition(first, cut_edge);
    mirror = apply_batch(mirror, first);

    RepartitionS repartition;
    const GrowthBatch second = make_batch(mirror, 120, 78);
    engine.apply_addition(second, repartition);
    mirror = apply_batch(mirror, second);

    // No RC steps in between: the deletion lands on the freshly repartitioned,
    // unsettled state.
    ShrinkBatch batch;
    batch.vertices.push_back(7);
    apply_to_mirror(mirror, batch);
    engine.apply_deletion(batch);

    engine.run_to_quiescence();
    expect_bit_identical(engine, mirror, config);
}

}  // namespace
}  // namespace aa
