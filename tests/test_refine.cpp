// Demand-driven refinement: the DemandTracker heat accumulator, the
// BoundsOracle closeness intervals (soundness at every engine boundary,
// across additions, deletions and reweights), the RefinePlanner's hard
// bit-identity contract under Uniform / empty demand, budgeted refinement,
// and the serve layer's BoundedError + top-k certification. The *Concurrent*
// cases are the ThreadSanitizer targets.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <tuple>
#include <vector>

#include "core/baseline.hpp"
#include "core/closeness.hpp"
#include "core/edge_delete.hpp"
#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "refine/bounds.hpp"
#include "refine/demand.hpp"
#include "refine/planner.hpp"
#include "serve/service.hpp"

namespace aa {
namespace {

// ---------------------------------------------------------------------------
// RefinePlanner: policy parsing.
// ---------------------------------------------------------------------------

TEST(RefinePlanner, PolicyNamesRoundTripThroughParse) {
    for (const RefinePolicy policy :
         {RefinePolicy::Uniform, RefinePolicy::QueryHeat,
          RefinePolicy::TopKPruned}) {
        RefinePolicy parsed{};
        ASSERT_TRUE(parse_refine_policy(refine_policy_name(policy), parsed));
        EXPECT_EQ(parsed, policy);
    }
}

TEST(RefinePlanner, ParseRejectsUnknownSpellingsUntouched) {
    RefinePolicy policy = RefinePolicy::QueryHeat;
    EXPECT_FALSE(parse_refine_policy("Uniform", policy));
    EXPECT_FALSE(parse_refine_policy("query-heat", policy));
    EXPECT_FALSE(parse_refine_policy("", policy));
    EXPECT_FALSE(parse_refine_policy("top-k", policy));
    EXPECT_EQ(policy, RefinePolicy::QueryHeat);  // left untouched on failure
}

// ---------------------------------------------------------------------------
// DemandTracker: heat accumulation, decay, snapshots.
// ---------------------------------------------------------------------------

TEST(RefineDemand, RecordAccumulatesAndQueriesHeat) {
    DemandTracker demand(8);
    EXPECT_EQ(demand.size(), 8u);
    demand.record(3);
    demand.record(3, 2.5);
    demand.record(7, 0.25);
    demand.record(99);      // out of range: ignored
    demand.record(1, 0.0);  // non-positive weight: ignored
    EXPECT_NEAR(demand.heat(3), 3.5, 1e-5);
    EXPECT_NEAR(demand.heat(7), 0.25, 1e-5);
    EXPECT_EQ(demand.heat(1), 0.0);
    EXPECT_EQ(demand.heat(99), 0.0);

    const DemandTracker::Totals t = demand.totals();
    EXPECT_NEAR(t.total, 3.75, 1e-5);
    EXPECT_NEAR(t.max, 3.5, 1e-5);
    EXPECT_EQ(t.hot, 2u);
}

TEST(RefineDemand, DecayHalvesZeroesAndSaturates) {
    DemandTracker demand(4);
    demand.record(0, 4.0);
    demand.decay(0.5);
    EXPECT_NEAR(demand.heat(0), 2.0, 1e-5);
    demand.decay(1.0);  // factor >= 1: no-op
    EXPECT_NEAR(demand.heat(0), 2.0, 1e-5);
    demand.decay(0.0);  // non-positive factor: hard reset
    EXPECT_EQ(demand.heat(0), 0.0);
}

TEST(RefineDemand, SnapshotReportsWhetherAnyHeatExists) {
    DemandTracker demand(5);
    std::vector<double> heat;
    EXPECT_FALSE(demand.snapshot(heat));
    ASSERT_EQ(heat.size(), 5u);
    demand.record(2, 1.5);
    EXPECT_TRUE(demand.snapshot(heat));
    EXPECT_NEAR(heat[2], 1.5, 1e-5);
    EXPECT_EQ(heat[0], 0.0);
}

TEST(RefineDemand, ResizePreservesExistingHeat) {
    DemandTracker demand(4);
    demand.record(1, 2.0);
    demand.resize(16);
    EXPECT_EQ(demand.size(), 16u);
    EXPECT_NEAR(demand.heat(1), 2.0, 1e-5);
    demand.record(12, 1.0);
    EXPECT_NEAR(demand.heat(12), 1.0, 1e-5);
}

// TSan target: reader threads hammer record() while the "driver" decays and
// snapshots — the tracker's contract is that this is race-free (fixed-point
// atomic cells; decay is racy-lossy by design, never undefined).
TEST(RefineDemandConcurrent, RecordersRaceDecayAndSnapshots) {
    DemandTracker demand(64);
    std::vector<std::thread> recorders;
    for (int t = 0; t < 4; ++t) {
        recorders.emplace_back([&demand, t] {
            for (int i = 0; i < 4000; ++i) {
                demand.record(static_cast<VertexId>((t * 17 + i) % 64), 0.5);
            }
        });
    }
    std::vector<double> heat;
    for (int round = 0; round < 50; ++round) {
        demand.decay(0.5);
        demand.snapshot(heat);
        demand.totals();
    }
    for (auto& th : recorders) {
        th.join();
    }
    // Heat is present (decay cannot outrun 16k records) and finite.
    const DemandTracker::Totals t = demand.totals();
    EXPECT_GE(t.total, 0.0);
    EXPECT_EQ(demand.size(), 64u);
}

TEST(RefineDemandConcurrent, RecordersRaceResize) {
    DemandTracker demand(32);
    std::thread recorder([&demand] {
        for (int i = 0; i < 8000; ++i) {
            demand.record(static_cast<VertexId>(i % 96));
        }
    });
    for (int n = 32; n <= 96; n += 8) {
        demand.resize(static_cast<std::size_t>(n));
    }
    recorder.join();
    EXPECT_EQ(demand.size(), 96u);
}

// ---------------------------------------------------------------------------
// BoundsOracle: interval unit tests.
// ---------------------------------------------------------------------------

TEST(Bounds, DegenerateSizesAreExactZero) {
    BoundsParams p;
    p.n = 0;
    EXPECT_TRUE(row_closeness_interval({}, 0, p).exact);
    p.n = 1;
    const std::vector<Weight> row{0};
    const ClosenessInterval iv = row_closeness_interval(row, 0, p);
    EXPECT_EQ(iv.lo, 0.0);
    EXPECT_EQ(iv.hi, 0.0);
    EXPECT_TRUE(iv.exact);
}

TEST(Bounds, QuiescentRowCollapsesToExactScore) {
    const std::vector<Weight> row{0, 1, 2, kInfinity};
    BoundsParams p;
    p.n = 4;
    p.variant = ClosenessVariant::Corrected;
    p.w_min = 1;
    p.w_max = 2;
    p.wavefront_k = 5;
    p.quiescent = true;
    const ClosenessInterval iv = row_closeness_interval(row, 0, p);
    const double want = closeness_score(3.0, 3, 4, ClosenessVariant::Corrected);
    EXPECT_EQ(iv.lo, want);
    EXPECT_EQ(iv.hi, want);
    EXPECT_TRUE(iv.exact);
    EXPECT_EQ(iv.settled, 4u);
    EXPECT_EQ(iv.reached, 3u);
}

TEST(Bounds, PartialRowBracketsEveryFeasibleCompletion) {
    // k = 1, w_min = 1: entries <= 1 are settled; entry 2 (value 3) is a
    // reachable witness with true distance in [1, 3]; entry 3 is unknown
    // (true distance >= 1, or unreachable). Every feasible completion's
    // converged score must land inside the interval.
    for (const ClosenessVariant variant :
         {ClosenessVariant::Corrected, ClosenessVariant::Raw}) {
        const std::vector<Weight> row{0, 1, 3, kInfinity};
        BoundsParams p;
        p.n = 4;
        p.variant = variant;
        p.w_min = 1;
        p.w_max = 3;
        p.wavefront_k = 1;
        const ClosenessInterval iv = row_closeness_interval(row, 0, p);
        EXPECT_FALSE(iv.exact);
        EXPECT_EQ(iv.settled, 2u);
        EXPECT_EQ(iv.reached, 3u);

        const auto score_of = [&](Weight d2, Weight d3) {
            Weight sum = 1;
            std::size_t reached = 2;
            if (d2 < kInfinity) {
                sum += d2;
                ++reached;
            }
            if (d3 < kInfinity) {
                sum += d3;
                ++reached;
            }
            return closeness_score(sum, reached, 4, variant);
        };
        // Feasible completions only: a reachable pair's shortest path is
        // simple, so its distance is capped at (n - 1) * w_max = 9 here.
        for (const auto& [d2, d3] : std::vector<std::pair<Weight, Weight>>{
                 {3, kInfinity},  // current estimates were already true
                 {1, kInfinity},  // witness tightens to the floor
                 {3, 9},          // unknown turns out reachable, maximally far
                 {1, 1},          // everything as near as allowed
             }) {
            const double s = score_of(d2, d3);
            EXPECT_LE(iv.lo, s) << "completion (" << d2 << ", " << d3 << ")";
            EXPECT_GE(iv.hi, s) << "completion (" << d2 << ", " << d3 << ")";
        }
    }
}

// ---------------------------------------------------------------------------
// BoundsOracle: engine-level soundness at every boundary.
// ---------------------------------------------------------------------------

/// Every vertex's interval must contain the converged closeness of the
/// *current* graph. The interval contract is containment of the engine's
/// own converged value; the independent sequential-APSP reference used here
/// can differ from it in the last floating-point bits (different summation
/// order), so containment is checked up to the repo-wide 1e-9 tolerance.
void expect_intervals_contain_converged(const AnytimeEngine& engine,
                                        const DynamicGraph& mirror) {
    const ClosenessScores exact = closeness_from_matrix(
        exact_apsp(mirror), engine.config().closeness_variant);
    for (VertexId v = 0; v < engine.num_vertices(); ++v) {
        const ClosenessInterval iv = engine.closeness_interval(v);
        EXPECT_LE(iv.lo, exact.closeness[v] + 1e-9)
            << "vertex " << v << " at RC" << engine.rc_steps_completed();
        EXPECT_GE(iv.hi, exact.closeness[v] - 1e-9)
            << "vertex " << v << " at RC" << engine.rc_steps_completed();
        if (engine.quiescent()) {
            EXPECT_TRUE(iv.exact) << "vertex " << v;
        }
    }
}

void run_boundary_soundness(WeightRange weights, std::uint64_t seed) {
    Rng rng(seed);
    DynamicGraph g = barabasi_albert(90, 2, rng, weights);
    DynamicGraph mirror = g;

    EngineConfig config;
    config.num_ranks = 4;
    config.ia_threads = 2;
    config.seed = seed * 3 + 1;
    AnytimeEngine engine(std::move(g), config);
    engine.initialize();
    expect_intervals_contain_converged(engine, mirror);

    engine.rc_step();
    expect_intervals_contain_converged(engine, mirror);

    // Addition boundary.
    GrowthConfig gc;
    gc.num_new = 6;
    gc.communities = 2;
    gc.weights = weights;
    Rng batch_rng(seed + 7);
    const GrowthBatch batch = grow_batch(engine.num_vertices(), gc, batch_rng);
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    mirror = apply_batch(mirror, batch);
    expect_intervals_contain_converged(engine, mirror);

    engine.rc_step();
    expect_intervals_contain_converged(engine, mirror);

    // Deletion boundary (invalidate / re-settle).
    const VertexId du = 0;
    const VertexId dv = mirror.neighbors(du).front().to;
    ShrinkBatch shrink;
    shrink.deletions.push_back({du, dv, 0.0});
    engine.apply_deletion(shrink);
    mirror.remove_edge(du, dv);
    expect_intervals_contain_converged(engine, mirror);

    // Weight-raise boundary (changes w_max, exercises the cascade).
    const VertexId ru = 1;
    const VertexId rv = mirror.neighbors(ru).front().to;
    const Weight raised = mirror.neighbors(ru).front().weight * 2.5;
    const Edge update{ru, rv, raised};
    engine.update_edge_weights({&update, 1});
    mirror.set_edge_weight(ru, rv, raised);
    expect_intervals_contain_converged(engine, mirror);

    // Every remaining boundary down to quiescence, then the collapse.
    while (engine.rc_step()) {
        expect_intervals_contain_converged(engine, mirror);
    }
    ASSERT_TRUE(engine.quiescent());
    expect_intervals_contain_converged(engine, mirror);
}

TEST(Bounds, IntervalsContainConvergedAtEveryBoundaryUnitWeights) {
    run_boundary_soundness(WeightRange{}, 21);
}

TEST(Bounds, IntervalsContainConvergedAtEveryBoundaryWeighted) {
    run_boundary_soundness(WeightRange{1.0, 3.0}, 22);
}

TEST(Bounds, WavefrontCounterTracksStructuralChanges) {
    Rng rng(5);
    DynamicGraph g = barabasi_albert(60, 2, rng);
    EngineConfig config;
    config.num_ranks = 4;
    config.ia_threads = 1;
    config.seed = 11;
    AnytimeEngine engine(std::move(g), config);
    engine.initialize();
    EXPECT_EQ(engine.wavefront_steps(), 0);
    engine.rc_step();
    EXPECT_EQ(engine.wavefront_steps(), 1);
    engine.rc_step();
    EXPECT_EQ(engine.wavefront_steps(), 2);

    GrowthConfig gc;
    gc.num_new = 4;
    Rng batch_rng(3);
    const GrowthBatch batch = grow_batch(engine.num_vertices(), gc, batch_rng);
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    EXPECT_EQ(engine.wavefront_steps(), 0);  // structural change resets

    engine.rc_step();
    EXPECT_EQ(engine.wavefront_steps(), 1);

    ShrinkBatch shrink;
    shrink.deletions.push_back({0, engine.graph().neighbors(0).front().to, 0.0});
    engine.apply_deletion(shrink);
    EXPECT_EQ(engine.wavefront_steps(), 0);
}

TEST(Bounds, CheckpointRestoreTrustsOnlyTheDiagonal) {
    Rng rng(9);
    DynamicGraph g = barabasi_albert(70, 2, rng);
    const DynamicGraph mirror = g;
    EngineConfig config;
    config.num_ranks = 4;
    config.ia_threads = 1;
    config.seed = 13;
    AnytimeEngine engine(std::move(g), config);
    engine.initialize();
    engine.rc_step();

    std::stringstream buffer;
    engine.save_checkpoint(buffer);
    AnytimeEngine restored = AnytimeEngine::load_checkpoint(buffer, config);
    EXPECT_EQ(restored.wavefront_steps(), -1);
    // Intervals stay sound with only the diagonal trusted...
    expect_intervals_contain_converged(restored, mirror);
    // ...and recover normal settledness once the engine steps again.
    restored.rc_step();
    EXPECT_EQ(restored.wavefront_steps(), 0);
    restored.run_to_quiescence();
    expect_intervals_contain_converged(restored, mirror);
}

// ---------------------------------------------------------------------------
// The hard bit-identity contract: Uniform policy, or any policy with no
// demand signal, reproduces the historical engine bit for bit — distances,
// closeness, the simulated clock, per-step ops/messages/bytes, and the
// telemetry span sequence — across ranks x backend x wire format x sync/async.
// ---------------------------------------------------------------------------

struct RunResult {
    std::vector<std::vector<Weight>> matrix;
    ClosenessScores scores;
    double sim_seconds{0};
    std::size_t rc_steps{0};
    std::vector<RcStepStats> steps;
    std::vector<MetricSpan> spans;
};

enum class DemandMode { None, Heavy };

RunResult run_refine_scenario(RefinePolicy policy, DemandMode demand,
                              std::uint32_t ranks, BackendKind backend,
                              BoundaryWireFormat wire, bool async) {
    Rng rng(987);
    DynamicGraph g = barabasi_albert(72, 2, rng, WeightRange{1.0, 3.0});

    EngineConfig config;
    config.num_ranks = ranks;
    config.ia_threads = 2;
    config.seed = 0xF1DE + ranks;
    config.backend = backend;
    config.wire_format = wire;
    config.rc_async = async;
    config.enable_metrics = true;
    config.refine_policy = policy;

    AnytimeEngine engine(g, config);
    engine.initialize();
    const auto inject = [&] {
        if (demand == DemandMode::Heavy) {
            for (VertexId v = 0; v < 8; ++v) {
                engine.demand().record(v, static_cast<double>(v + 1));
            }
        }
    };
    inject();
    engine.run_rc_steps(2);

    GrowthConfig gc;
    gc.num_new = 5;
    gc.communities = 2;
    gc.intra_edges = 2;
    gc.host_edges = 2;
    Rng batch_rng(4242);
    const GrowthBatch batch = grow_batch(g.num_vertices(), gc, batch_rng);
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    inject();
    engine.run_to_quiescence();

    RunResult result;
    result.matrix = engine.full_distance_matrix();
    result.scores = engine.closeness();
    result.sim_seconds = engine.sim_seconds();
    result.rc_steps = engine.rc_steps_completed();
    result.steps = engine.step_history();
    result.spans = engine.metrics().spans();
    return result;
}

void expect_bit_identical(const RunResult& a, const RunResult& b) {
    // EXPECT_EQ on doubles is exact comparison — bit-identical, not "close".
    EXPECT_EQ(a.sim_seconds, b.sim_seconds);
    EXPECT_EQ(a.rc_steps, b.rc_steps);
    ASSERT_EQ(a.matrix.size(), b.matrix.size());
    for (std::size_t v = 0; v < a.matrix.size(); ++v) {
        ASSERT_EQ(a.matrix[v], b.matrix[v]) << "row " << v;
    }
    ASSERT_EQ(a.scores.closeness, b.scores.closeness);
    ASSERT_EQ(a.scores.reachable, b.scores.reachable);
    ASSERT_EQ(a.steps.size(), b.steps.size());
    for (std::size_t i = 0; i < a.steps.size(); ++i) {
        EXPECT_EQ(a.steps[i].ops, b.steps[i].ops) << "step " << i;
        EXPECT_EQ(a.steps[i].messages, b.steps[i].messages) << "step " << i;
        EXPECT_EQ(a.steps[i].bytes, b.steps[i].bytes) << "step " << i;
        EXPECT_EQ(a.steps[i].exchange_seconds, b.steps[i].exchange_seconds)
            << "step " << i;
    }
    ASSERT_EQ(a.spans.size(), b.spans.size());
    for (std::size_t i = 0; i < a.spans.size(); ++i) {
        EXPECT_EQ(a.spans[i].name, b.spans[i].name) << "span " << i;
        EXPECT_EQ(a.spans[i].rank, b.spans[i].rank) << "span " << i;
        EXPECT_EQ(a.spans[i].step, b.spans[i].step) << "span " << i;
        EXPECT_EQ(a.spans[i].t_begin, b.spans[i].t_begin) << "span " << i;
        EXPECT_EQ(a.spans[i].t_end, b.spans[i].t_end) << "span " << i;
        EXPECT_EQ(a.spans[i].ops, b.spans[i].ops) << "span " << i;
    }
}

using UniformParam =
    std::tuple<std::uint32_t, BackendKind, BoundaryWireFormat, bool>;

class RefineUniform : public ::testing::TestWithParam<UniformParam> {};

TEST_P(RefineUniform, UniformAndEmptyDemandAreBitIdenticalToBaseline) {
    const auto [ranks, backend, wire, async] = GetParam();
    const RunResult baseline = run_refine_scenario(
        RefinePolicy::Uniform, DemandMode::None, ranks, backend, wire, async);
    // Uniform ignores demand entirely...
    expect_bit_identical(baseline,
                         run_refine_scenario(RefinePolicy::Uniform,
                                             DemandMode::Heavy, ranks, backend,
                                             wire, async));
    // ...and a demand-aware policy with no recorded demand plans nothing.
    expect_bit_identical(baseline,
                         run_refine_scenario(RefinePolicy::QueryHeat,
                                             DemandMode::None, ranks, backend,
                                             wire, async));
}

INSTANTIATE_TEST_SUITE_P(
    Lattice, RefineUniform,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(BackendKind::Sequential,
                                         BackendKind::Threaded),
                       ::testing::Values(BoundaryWireFormat::V1Aos,
                                         BoundaryWireFormat::V2Soa),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<UniformParam>& p) {
        return "r" + std::to_string(std::get<0>(p.param)) +
               (std::get<1>(p.param) == BackendKind::Threaded ? "_threaded"
                                                              : "_seq") +
               (std::get<2>(p.param) == BoundaryWireFormat::V2Soa ? "_v2"
                                                                  : "_v1") +
               (std::get<3>(p.param) ? "_async" : "_sync");
    });

// Heat steering is a pure reordering: converged values agree with Uniform —
// bitwise on unit weights, within the repo tolerance when weighted (equal
// shortest paths may be discovered in a different order).
TEST(RefineHeat, SteeredRunConvergesToUniformValues) {
    const auto run = [](RefinePolicy policy, DemandMode demand) {
        return run_refine_scenario(policy, demand, 4,
                                   BackendKind::Sequential,
                                   BoundaryWireFormat::V2Soa, false);
    };
    const RunResult uniform = run(RefinePolicy::Uniform, DemandMode::None);
    for (const RefinePolicy policy :
         {RefinePolicy::QueryHeat, RefinePolicy::TopKPruned}) {
        const RunResult steered = run(policy, DemandMode::Heavy);
        ASSERT_EQ(steered.matrix.size(), uniform.matrix.size());
        for (std::size_t v = 0; v < uniform.matrix.size(); ++v) {
            for (std::size_t t = 0; t < uniform.matrix[v].size(); ++t) {
                EXPECT_NEAR(steered.matrix[v][t], uniform.matrix[v][t], 1e-9)
                    << "d(" << v << ", " << t << ")";
            }
        }
    }
}

TEST(RefineHeat, TopKPrunedFocusStillConverges) {
    Rng rng(33);
    DynamicGraph g = barabasi_albert(80, 2, rng);
    const DynamicGraph mirror = g;
    EngineConfig config;
    config.num_ranks = 4;
    config.ia_threads = 1;
    config.seed = 17;
    config.refine_policy = RefinePolicy::TopKPruned;
    AnytimeEngine engine(std::move(g), config);
    engine.initialize();
    engine.set_refine_focus({0, 3, 5, 11});
    engine.run_to_quiescence();
    ASSERT_TRUE(engine.quiescent());
    expect_intervals_contain_converged(engine, mirror);
}

// ---------------------------------------------------------------------------
// Budgeted refinement: refine_budget_ops caps propagation work per rank per
// step. Budgeted runs still converge to the same fixpoint (no mark is ever
// lost), and budgeted steps never advance the wavefront certificate.
// ---------------------------------------------------------------------------

TEST(RefineBudget, BudgetedRunConvergesWithSoundBounds) {
    Rng rng(41);
    DynamicGraph g = barabasi_albert(100, 2, rng);
    const DynamicGraph mirror = g;

    EngineConfig config;
    config.num_ranks = 4;
    config.ia_threads = 1;
    config.seed = 19;
    config.refine_policy = RefinePolicy::QueryHeat;
    config.refine_budget_ops = 800;
    AnytimeEngine engine(std::move(g), config);
    engine.initialize();
    for (VertexId v = 0; v < 4; ++v) {
        engine.demand().record(v, 8.0);
    }

    std::size_t steps = 0;
    while (engine.rc_step()) {
        ASSERT_LT(++steps, 600u) << "budgeted run failed to converge";
        // Budgeted steps may stop short of the local fixpoint, so the
        // wavefront certificate must not advance — and the (stale-k)
        // intervals must stay sound anyway.
        EXPECT_EQ(engine.wavefront_steps(), 0);
        if (steps % 25 == 0) {
            expect_intervals_contain_converged(engine, mirror);
        }
    }
    ASSERT_TRUE(engine.quiescent());

    // Unit weights: the converged fixpoint is bitwise unique, budget or not.
    const auto matrix = engine.full_distance_matrix();
    const auto exact = exact_apsp(mirror);
    for (std::size_t v = 0; v < exact.size(); ++v) {
        ASSERT_EQ(matrix[v], exact[v]) << "row " << v;
    }
    expect_intervals_contain_converged(engine, mirror);
}

// ---------------------------------------------------------------------------
// Serve integration: BoundedError freshness and top-k certification.
// ---------------------------------------------------------------------------

TEST(RefineServe, BoundedErrorRequiresBoundsCapableSnapshots) {
    Rng rng(51);
    DynamicGraph g = barabasi_albert(60, 2, rng);
    EngineConfig config;
    config.num_ranks = 4;
    config.ia_threads = 1;
    config.seed = 23;
    AnytimeEngine engine(std::move(g), config);
    engine.initialize();

    {
        QueryService service(engine);  // enable_bounds defaults to false
        const PointResult r = service.point(0, FreshnessPolicy::BoundedError);
        EXPECT_EQ(r.meta.status, QueryStatus::Unavailable);
    }
    ServeConfig sc;
    sc.enable_bounds = true;
    QueryService service(engine, sc);
    const PointResult r = service.point(0, FreshnessPolicy::BoundedError);
    ASSERT_EQ(r.meta.status, QueryStatus::Ok);
    EXPECT_LE(r.bound_lo, r.closeness);
    EXPECT_GE(r.bound_hi, r.closeness);

    const std::vector<VertexId> vs{0, 5, 9};
    const BatchResult b = service.batch(vs, FreshnessPolicy::BoundedError);
    ASSERT_EQ(b.meta.status, QueryStatus::Ok);
    ASSERT_EQ(b.bound_lo.size(), vs.size());
    ASSERT_EQ(b.bound_hi.size(), vs.size());
    for (std::size_t i = 0; i < vs.size(); ++i) {
        EXPECT_LE(b.bound_lo[i], b.closeness[i]);
        EXPECT_GE(b.bound_hi[i], b.closeness[i]);
    }
}

TEST(RefineServe, QueriesFeedTheDemandTracker) {
    Rng rng(52);
    DynamicGraph g = barabasi_albert(50, 2, rng);
    EngineConfig config;
    config.num_ranks = 2;
    config.ia_threads = 1;
    config.seed = 29;
    AnytimeEngine engine(std::move(g), config);
    engine.initialize();
    QueryService service(engine);  // record_demand defaults to true

    ASSERT_EQ(engine.demand().heat(7), 0.0);
    service.point(7);
    EXPECT_GT(engine.demand().heat(7), 0.0);
    const std::vector<VertexId> vs{1, 2};
    service.batch(vs);
    EXPECT_GT(engine.demand().heat(1), 0.0);
    EXPECT_GT(engine.demand().heat(2), 0.0);

    ServeConfig quiet;
    quiet.record_demand = false;
    QueryService silent(engine, quiet);
    const double before = engine.demand().heat(9);
    silent.point(9);
    EXPECT_EQ(engine.demand().heat(9), before);
}

TEST(RefineCertify, CertifiedTopKNeverDisagreesWithConvergedRanking) {
    Rng rng(31);
    DynamicGraph g = barabasi_albert(80, 2, rng, WeightRange{1.0, 2.0});
    const DynamicGraph mirror = g;
    EngineConfig config;
    config.num_ranks = 4;
    config.ia_threads = 2;
    config.seed = 37;
    AnytimeEngine engine(std::move(g), config);
    engine.initialize();

    ServeConfig sc;
    sc.enable_bounds = true;
    QueryService service(engine, sc);
    const std::size_t k = 5;

    std::vector<std::vector<VertexId>> certified_sets;
    const auto poll = [&] {
        const TopKResult r = service.topk(k, FreshnessPolicy::BoundedError);
        ASSERT_EQ(r.meta.status, QueryStatus::Ok);
        if (r.certified) {
            std::vector<VertexId> set;
            for (const TopKEntry& e : r.entries) {
                set.push_back(e.vertex);
            }
            std::sort(set.begin(), set.end());
            certified_sets.push_back(std::move(set));
        }
    };
    poll();
    while (engine.rc_step()) {
        poll();
    }
    ASSERT_TRUE(engine.quiescent());
    poll();

    // Converged reference set from exact sequential APSP.
    const ClosenessScores exact = closeness_from_matrix(
        exact_apsp(mirror), engine.config().closeness_variant);
    const std::vector<VertexId> ranking = closeness_ranking(exact);
    std::vector<VertexId> want(ranking.begin(), ranking.begin() + k);
    std::sort(want.begin(), want.end());

    // The quiescent snapshot must certify (scores are distinct at this seed),
    // and no certified set ever disagrees with the converged ranking.
    ASSERT_FALSE(certified_sets.empty());
    for (const auto& set : certified_sets) {
        EXPECT_EQ(set, want);
    }
}

}  // namespace
}  // namespace aa
