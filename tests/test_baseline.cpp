#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

EngineConfig config_with(std::uint32_t ranks) {
    EngineConfig config;
    config.num_ranks = ranks;
    config.ia_threads = 1;
    config.seed = 91;
    return config;
}

GrowthBatch make_batch(const DynamicGraph& host, std::size_t count,
                       std::uint64_t seed) {
    GrowthConfig gc;
    gc.num_new = count;
    gc.host_edges = 2;
    gc.intra_edges = 2;
    Rng rng(seed);
    return grow_batch(host.num_vertices(), gc, rng);
}

TEST(ApplyBatch, GrowsGraph) {
    Rng rng(1);
    const auto host = barabasi_albert(30, 2, rng);
    const auto batch = make_batch(host, 10, 3);
    const auto grown = apply_batch(host, batch);
    EXPECT_EQ(grown.num_vertices(), 40u);
    EXPECT_EQ(grown.num_edges(), host.num_edges() + batch.edges.size());
    // Host untouched (value semantics).
    EXPECT_EQ(host.num_vertices(), 30u);
}

TEST(StaticRun, ProducesTimeAndSteps) {
    Rng rng(2);
    const auto g = barabasi_albert(60, 2, rng);
    const auto run = static_run(g, config_with(4));
    EXPECT_GT(run.sim_seconds, 0.0);
    EXPECT_GE(run.rc_steps, 1u);
}

TEST(BaselineRestart, TotalsAddUp) {
    Rng rng(3);
    const auto host = barabasi_albert(60, 2, rng);
    const auto batch = make_batch(host, 15, 5);
    const auto run = baseline_restart(host, batch, 2, config_with(4));
    EXPECT_GT(run.wasted_seconds, 0.0);
    EXPECT_GT(run.recompute_seconds, 0.0);
    EXPECT_NEAR(run.total_seconds(), run.wasted_seconds + run.recompute_seconds,
                1e-12);
}

TEST(BaselineRestart, LaterInjectionWastesMore) {
    Rng rng(4);
    const auto host = barabasi_albert(80, 2, rng);
    const auto batch = make_batch(host, 15, 7);
    const auto early = baseline_restart(host, batch, 0, config_with(4));
    const auto late = baseline_restart(host, batch, 4, config_with(4));
    EXPECT_GT(late.wasted_seconds, early.wasted_seconds);
    // Recompute cost is injection-independent.
    EXPECT_NEAR(late.recompute_seconds, early.recompute_seconds, 1e-9);
}

TEST(BaselineRestart, SlowerThanAnytimeApproach) {
    // The paper's Figure 4 headline: anytime-anywhere beats restart. The gap
    // only opens once the graph is large enough that recomputation dominates
    // the per-edge update overhead (at toy sizes the broadcast latency of the
    // anywhere algorithm can exceed a from-scratch run — which is exactly the
    // trade-off the paper's Repartition-S discussion is about).
    Rng rng(5);
    const auto host = barabasi_albert(400, 2, rng);
    const auto batch = make_batch(host, 8, 9);
    const auto config = config_with(4);

    const auto restart = baseline_restart(host, batch, 3, config);

    AnytimeEngine engine(host, config);
    engine.initialize();
    engine.run_rc_steps(3);
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();

    EXPECT_LT(engine.sim_seconds(), restart.total_seconds());
}

}  // namespace
}  // namespace aa
