// Randomized round-trip sweeps for the wire formats — the closest thing to
// fuzzing that stays deterministic and offline.
#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "core/rc.hpp"
#include "runtime/message.hpp"

namespace aa {
namespace {

class SerializerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializerFuzz, MixedScalarsRoundTrip) {
    Rng rng(GetParam());
    Serializer out;
    // Random interleaving of types, recorded for replay.
    std::vector<int> kinds;
    std::vector<std::uint32_t> u32s;
    std::vector<double> doubles;
    std::vector<std::vector<float>> spans;
    const int count = 1 + static_cast<int>(rng.uniform(64));
    for (int i = 0; i < count; ++i) {
        const int kind = static_cast<int>(rng.uniform(3));
        kinds.push_back(kind);
        if (kind == 0) {
            u32s.push_back(static_cast<std::uint32_t>(rng()));
            out.write(u32s.back());
        } else if (kind == 1) {
            doubles.push_back(rng.uniform(-1e9, 1e9));
            out.write(doubles.back());
        } else {
            std::vector<float> span(rng.uniform(20));
            for (auto& x : span) {
                x = static_cast<float>(rng.uniform01());
            }
            spans.push_back(span);
            out.write_span(std::span<const float>(spans.back()));
        }
    }

    const auto buffer = out.take();
    Deserializer in(buffer);
    std::size_t iu = 0;
    std::size_t id = 0;
    std::size_t is = 0;
    for (const int kind : kinds) {
        if (kind == 0) {
            ASSERT_EQ(in.read<std::uint32_t>(), u32s[iu++]);
        } else if (kind == 1) {
            ASSERT_EQ(in.read<double>(), doubles[id++]);
        } else {
            ASSERT_EQ(in.read_vector<float>(), spans[is++]);
        }
    }
    EXPECT_TRUE(in.exhausted());
}

TEST_P(SerializerFuzz, BoundaryBlocksRoundTripV1) {
    // The v1 AoS format accepts arbitrary entry streams (unsorted columns,
    // duplicates included); pin the format explicitly since the default
    // moved to v2.
    Rng rng(GetParam() ^ 0xB10C);
    std::vector<BoundaryBlock> blocks;
    const std::size_t block_count = rng.uniform(16);
    for (std::size_t b = 0; b < block_count; ++b) {
        BoundaryBlock block;
        block.vertex = static_cast<VertexId>(rng.uniform(1u << 20));
        const std::size_t entries = rng.uniform(40);
        for (std::size_t e = 0; e < entries; ++e) {
            block.entries.push_back(
                {static_cast<VertexId>(rng.uniform(1u << 20)),
                 rng.uniform(0.0, 1e6)});
        }
        blocks.push_back(std::move(block));
    }
    const auto payload =
        encode_boundary_blocks(blocks, BoundaryWireFormat::V1Aos);
    const auto back =
        decode_boundary_blocks(payload, BoundaryWireFormat::V1Aos);
    ASSERT_EQ(back.size(), blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        EXPECT_EQ(back[b].vertex, blocks[b].vertex);
        ASSERT_EQ(back[b].entries.size(), blocks[b].entries.size());
        for (std::size_t e = 0; e < blocks[b].entries.size(); ++e) {
            EXPECT_EQ(back[b].entries[e].column, blocks[b].entries[e].column);
            EXPECT_EQ(back[b].entries[e].distance, blocks[b].entries[e].distance);
        }
    }
}

TEST_P(SerializerFuzz, BoundaryBlocksRoundTripV2) {
    // The v2 SoA format requires strictly-ascending columns per block (the
    // post kernel sorts). Mix dense consecutive runs with sparse gaps so both
    // column encodings (run-length and delta-varint) get exercised, and check
    // the copying decoder and the zero-copy SoA-view decoder agree byte for
    // byte.
    Rng rng(GetParam() ^ 0x50A2);
    std::vector<BoundaryBlock> blocks;
    const std::size_t block_count = rng.uniform(16);
    for (std::size_t b = 0; b < block_count; ++b) {
        BoundaryBlock block;
        block.vertex = static_cast<VertexId>(rng.uniform(1u << 20));
        const std::size_t entries = rng.uniform(40);
        VertexId col = static_cast<VertexId>(rng.uniform(1u << 16));
        for (std::size_t e = 0; e < entries; ++e) {
            // 70% consecutive step, 30% random jump: dense prefixes favour
            // RLE, jumpy tails favour delta-varint.
            col += rng.uniform01() < 0.7
                       ? 1
                       : 1 + static_cast<VertexId>(rng.uniform(1u << 12));
            block.entries.push_back({col, rng.uniform(0.0, 1e6)});
        }
        blocks.push_back(std::move(block));
    }
    const auto payload =
        encode_boundary_blocks(blocks, BoundaryWireFormat::V2Soa);
    const auto back =
        decode_boundary_blocks(payload, BoundaryWireFormat::V2Soa);
    ASSERT_EQ(back.size(), blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        EXPECT_EQ(back[b].vertex, blocks[b].vertex);
        ASSERT_EQ(back[b].entries.size(), blocks[b].entries.size());
        for (std::size_t e = 0; e < blocks[b].entries.size(); ++e) {
            EXPECT_EQ(back[b].entries[e].column, blocks[b].entries[e].column);
            EXPECT_EQ(back[b].entries[e].distance, blocks[b].entries[e].distance);
        }
    }
    // Zero-copy SoA views over the same payload.
    std::vector<VertexId> arena;
    const auto views = decode_boundary_block_soa_views(payload, arena);
    ASSERT_EQ(views.size(), blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        EXPECT_EQ(views[b].vertex, blocks[b].vertex);
        ASSERT_EQ(views[b].cols.size(), blocks[b].entries.size());
        ASSERT_EQ(views[b].dists.size(), blocks[b].entries.size());
        for (std::size_t e = 0; e < blocks[b].entries.size(); ++e) {
            EXPECT_EQ(views[b].cols[e], blocks[b].entries[e].column);
            EXPECT_EQ(views[b].dists[e], blocks[b].entries[e].distance);
        }
    }
    // Every v2 block occupies a multiple of 8 bytes (that is what keeps the
    // f64 runs aligned under concatenation), so the whole payload must too.
    EXPECT_EQ(payload.size() % sizeof(Weight), 0u);
}

TEST_P(SerializerFuzz, RaiseBlocksAgreeAcrossFormats) {
    // ShrinkRaise payloads (core/edge_delete.cpp) reuse the boundary-block
    // codecs with a distinctive shape: columns are an ascending *subset* of
    // the affected-column set (dense runs where a whole region was
    // invalidated, gaps where entries survived) and distances carry the
    // finite pre-raise values. Both wire formats must reproduce that shape
    // entry-for-entry and agree with each other.
    Rng rng(GetParam() ^ 0x5A15E);
    std::vector<BoundaryBlock> blocks;
    const std::size_t block_count = 1 + rng.uniform(8);
    for (std::size_t b = 0; b < block_count; ++b) {
        BoundaryBlock block;
        block.vertex = static_cast<VertexId>(rng.uniform(1u << 20));
        // Walk a sorted universe of affected columns, keeping ~half: long
        // kept stretches exercise RLE, skipped stretches the delta path.
        VertexId col = static_cast<VertexId>(rng.uniform(1u << 10));
        const std::size_t universe = rng.uniform(60);
        for (std::size_t e = 0; e < universe; ++e) {
            col += 1;
            if (rng.uniform01() < 0.55) {
                block.entries.push_back({col, rng.uniform(1.0, 1e4)});
            }
        }
        blocks.push_back(std::move(block));
    }
    const auto v1 = decode_boundary_blocks(
        encode_boundary_blocks(blocks, BoundaryWireFormat::V1Aos),
        BoundaryWireFormat::V1Aos);
    const auto v2 = decode_boundary_blocks(
        encode_boundary_blocks(blocks, BoundaryWireFormat::V2Soa),
        BoundaryWireFormat::V2Soa);
    ASSERT_EQ(v1.size(), blocks.size());
    ASSERT_EQ(v2.size(), blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        EXPECT_EQ(v1[b].vertex, blocks[b].vertex);
        EXPECT_EQ(v2[b].vertex, blocks[b].vertex);
        ASSERT_EQ(v1[b].entries.size(), blocks[b].entries.size());
        ASSERT_EQ(v2[b].entries.size(), blocks[b].entries.size());
        for (std::size_t e = 0; e < blocks[b].entries.size(); ++e) {
            EXPECT_EQ(v1[b].entries[e].column, blocks[b].entries[e].column);
            EXPECT_EQ(v1[b].entries[e].distance, blocks[b].entries[e].distance);
            EXPECT_EQ(v2[b].entries[e].column, blocks[b].entries[e].column);
            EXPECT_EQ(v2[b].entries[e].distance, blocks[b].entries[e].distance);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializerFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

// Malformed-payload cases: decode_boundary_blocks validates the structure
// before allocating anything, so a hostile length prefix must die on the
// contract check instead of attempting a huge allocation.

TEST(BoundaryBlockValidation, OversizedEntryCountDies) {
    Serializer out;
    out.write(VertexId{7});
    out.write(std::uint64_t{1} << 61);  // declares ~2.3e18 entries, sends none
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V1Aos),
                 "entry count exceeds payload");
}

TEST(BoundaryBlockValidation, OverflowWrappingEntryCountDies) {
    // A count chosen so count * sizeof(DvEntry) wraps std::size_t to a tiny
    // number; the division-based bound check must still reject it.
    Serializer out;
    out.write(VertexId{1});
    const std::uint64_t wrapping =
        (std::numeric_limits<std::uint64_t>::max() / sizeof(DvEntry)) + 2;
    out.write(wrapping);
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V1Aos),
                 "entry count exceeds payload");
}

TEST(BoundaryBlockValidation, DeclaredCountPastPayloadEndDies) {
    // A structurally plausible block whose count is one larger than the
    // entries actually shipped.
    Serializer out;
    out.write(VertexId{3});
    out.write(std::uint64_t{3});
    for (int i = 0; i < 2; ++i) {  // only two entries behind a count of three
        out.write(DvEntry{static_cast<VertexId>(i), 1.5});
    }
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V1Aos),
                 "entry count exceeds payload");
}

TEST(BoundaryBlockValidation, TruncatedHeaderDies) {
    const std::vector<std::byte> payload(sizeof(VertexId) + 2);  // half a header
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V1Aos),
                 "header truncated");
}

TEST(BoundaryBlockValidation, TrailingGarbageAfterValidBlockDies) {
    std::vector<BoundaryBlock> blocks(1);
    blocks[0].vertex = 9;
    blocks[0].entries.push_back({4, 2.5});
    auto payload = encode_boundary_blocks(blocks, BoundaryWireFormat::V1Aos);
    payload.resize(payload.size() + 5);  // 5 stray bytes: not even a header
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V1Aos),
                 "header truncated");
}

// The zero-copy decoder shares the validation pass with the copying one; the
// same hostile prefixes must die there too.

TEST(BoundaryBlockValidation, ViewDecoderOversizedEntryCountDies) {
    Serializer out;
    out.write(VertexId{7});
    out.write(std::uint64_t{1} << 61);
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_block_views(payload),
                 "entry count exceeds payload");
}

TEST(BoundaryBlockValidation, ViewDecoderTruncatedHeaderDies) {
    const std::vector<std::byte> payload(sizeof(VertexId) + 2);
    EXPECT_DEATH((void)decode_boundary_block_views(payload),
                 "header truncated");
}

TEST(BoundaryBlockValidation, ViewDecoderMatchesCopyingDecoder) {
    Rng rng(99);
    std::vector<BoundaryBlock> blocks(4);
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        blocks[b].vertex = static_cast<VertexId>(100 + b);
        const std::size_t count = rng.uniform(50);
        for (std::size_t i = 0; i < count; ++i) {
            blocks[b].entries.push_back(
                {static_cast<VertexId>(rng.uniform(1000)), rng.uniform(0.1, 9.0)});
        }
    }
    const auto payload =
        encode_boundary_blocks(blocks, BoundaryWireFormat::V1Aos);
    const auto copies =
        decode_boundary_blocks(payload, BoundaryWireFormat::V1Aos);
    const auto views = decode_boundary_block_views(payload);
    ASSERT_EQ(copies.size(), views.size());
    for (std::size_t b = 0; b < copies.size(); ++b) {
        EXPECT_EQ(copies[b].vertex, views[b].vertex);
        ASSERT_EQ(copies[b].entries.size(), views[b].entries.size());
        for (std::size_t i = 0; i < copies[b].entries.size(); ++i) {
            EXPECT_EQ(copies[b].entries[i].column, views[b].entries[i].column);
            EXPECT_EQ(copies[b].entries[i].distance, views[b].entries[i].distance);
        }
    }
}

// Hostile v2 payloads. The SoA decoder walks [u32 vertex][varint count]
// [u8 encoding][columns][zero pad to 8][count × f64] and must reject every
// malformed shape on a contract check — no UB, no allocation driven by a
// hostile count. Payloads are crafted byte-by-byte with the Serializer.

namespace v2 {
constexpr std::uint8_t kDelta = 0;    // delta-varint column encoding tag
constexpr std::uint8_t kRunLen = 1;   // run-length column encoding tag
}  // namespace v2

TEST(BoundaryBlockV2Validation, TruncatedCountVarintDies) {
    Serializer out;
    out.write(VertexId{7});
    out.write(std::uint8_t{0x80});  // continuation bit set, stream ends
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V2Soa),
                 "varint truncated");
}

TEST(BoundaryBlockV2Validation, OverlongCountVarintDies) {
    // Six continuation bytes: a u32 varint never legitimately needs more
    // than five, so this must die before it can fabricate a huge count.
    Serializer out;
    out.write(VertexId{7});
    for (int i = 0; i < 5; ++i) {
        out.write(std::uint8_t{0x80});
    }
    out.write(std::uint8_t{0x01});
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V2Soa),
                 "varint overlong");
}

TEST(BoundaryBlockV2Validation, DeclaredCountPastPayloadEndDies) {
    // A count of 2^28 with no bytes behind it: the division-based bound
    // check must reject it before any column materialization, so a hostile
    // count can never drive allocation.
    Serializer out;
    out.write(VertexId{3});
    out.write_varint(std::uint64_t{1} << 28);
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V2Soa),
                 "entry count exceeds payload");
}

TEST(BoundaryBlockV2Validation, NonMonotoneColumnDeltaDies) {
    // Delta 0 between columns encodes a duplicate/regressing column; the
    // format requires strictly-ascending columns (delta >= 1 after the
    // first).
    Serializer out;
    out.write(VertexId{5});
    out.write_varint(2);          // two entries
    out.write(v2::kDelta);
    out.write_varint(9);          // first column, absolute
    out.write_varint(0);          // zero delta: non-monotone
    out.pad_to(sizeof(Weight));
    out.write(1.5);
    out.write(2.5);
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V2Soa),
                 "non-monotone column delta");
}

TEST(BoundaryBlockV2Validation, RunLengthSumMismatchDies) {
    // RLE runs must produce exactly `count` columns; one run of length 2
    // behind a declared count of 3 is a lie.
    Serializer out;
    out.write(VertexId{5});
    out.write_varint(3);          // declares three entries
    out.write(v2::kRunLen);
    out.write_varint(1);          // one run
    out.write_varint(4);          // run starts at column 4
    out.write_varint(1);          // run length 2 (encoded as len - 1)
    out.pad_to(sizeof(Weight));
    out.write(1.0);
    out.write(2.0);
    out.write(3.0);
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V2Soa),
                 "run length mismatch");
}

TEST(BoundaryBlockV2Validation, ZeroRunCountDies) {
    Serializer out;
    out.write(VertexId{5});
    out.write_varint(2);
    out.write(v2::kRunLen);
    out.write_varint(0);          // zero runs behind a nonzero count
    out.pad_to(sizeof(Weight));
    out.write(1.0);
    out.write(2.0);
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V2Soa),
                 "run count invalid");
}

TEST(BoundaryBlockV2Validation, UnknownColumnEncodingDies) {
    Serializer out;
    out.write(VertexId{5});
    out.write_varint(1);
    out.write(std::uint8_t{7});   // no such encoding
    out.write_varint(4);
    out.pad_to(sizeof(Weight));
    out.write(1.0);
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V2Soa),
                 "unknown column encoding");
}

TEST(BoundaryBlockV2Validation, NonZeroPaddingByteDies) {
    // Craft a valid one-entry block, then flip its single pad byte: the
    // decoder checks padding is zero so corruption cannot hide there.
    Serializer out;
    out.write(VertexId{5});
    out.write_varint(1);
    out.write(v2::kDelta);
    out.write_varint(4);          // 7 bytes so far: exactly one pad byte
    out.write(std::uint8_t{0xAB});
    out.write(1.0);
    const auto payload = out.take();
    ASSERT_EQ(payload.size() % sizeof(Weight), 0u);
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V2Soa),
                 "padding corrupt");
}

TEST(BoundaryBlockV2Validation, PayloadEndingInsidePaddingDies) {
    // A five-byte column varint pushes the pad region past the hostile-count
    // bound (which only needs count * 8 bytes behind the count field), so the
    // stream can end mid-padding without tripping an earlier check.
    Serializer out;
    out.write(VertexId{5});
    out.write_varint(1);
    out.write(v2::kDelta);
    out.write_varint(0xFFFFFFFFull);  // 5-byte varint: columns end at byte 11
    out.write(std::uint8_t{0});       // 3 of the 5 pad bytes, then the stream
    out.write(std::uint8_t{0});       // stops short of the 16-byte boundary
    out.write(std::uint8_t{0});
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V2Soa),
                 "padding truncated");
}

TEST(BoundaryBlockV2Validation, TruncatedHeaderDies) {
    const std::vector<std::byte> payload(sizeof(VertexId) - 1);
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V2Soa),
                 "header truncated");
}

// Hostile shrink payloads: a raise message names the columns being pushed to
// infinity, so corruption there silently redirects the invalidation. Every
// malformed column stream must die on a contract check before ingest.

TEST(BoundaryBlockV2Validation, InflatedRunLengthOnRaiseColumnsDies) {
    // One RLE run claiming *more* columns than the declared entry count: the
    // run would invalidate columns the sender never named.
    Serializer out;
    out.write(VertexId{5});
    out.write_varint(2);          // declares two raised columns
    out.write(v2::kRunLen);
    out.write_varint(1);          // one run
    out.write_varint(10);         // starting at column 10
    out.write_varint(3);          // run length 4 (len - 1): two columns extra
    out.pad_to(sizeof(Weight));
    out.write(1.0);
    out.write(2.0);
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V2Soa),
                 "run length mismatch");
}

TEST(BoundaryBlockV2Validation, ColumnVarintCorruptionCannotEatValueRun) {
    // Flip the second column delta into a continuation-bit run: the varint
    // reader would otherwise march through the padding and pre-raise values
    // reinterpreting them as column bytes. The overlong guard (a u32 varint
    // never needs more than five bytes) stops it first. A *short* payload
    // with the same corruption instead dies on the count bound before the
    // column walk even starts — both paths are pinned here.
    Serializer out;
    out.write(VertexId{5});
    out.write_varint(2);
    out.write(v2::kDelta);
    out.write_varint(4);               // first column, absolute
    for (int i = 0; i < 16; ++i) {     // "values" now look like continuations
        out.write(std::uint8_t{0x80});
    }
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V2Soa),
                 "varint overlong");

    Serializer short_out;
    short_out.write(VertexId{5});
    short_out.write_varint(2);
    short_out.write(v2::kDelta);
    short_out.write_varint(4);
    short_out.write(std::uint8_t{0x80});  // stream ends mid-varint
    const auto short_payload = short_out.take();
    EXPECT_DEATH(
        (void)decode_boundary_blocks(short_payload, BoundaryWireFormat::V2Soa),
        "entry count exceeds payload");
}

TEST(BoundaryBlockV2Validation, TruncatedPreRaiseValueRunDies) {
    // A structurally valid two-column block whose f64 value run was cut to
    // one value: the count-versus-payload bound must reject it up front.
    Serializer out;
    out.write(VertexId{5});
    out.write_varint(2);
    out.write(v2::kDelta);
    out.write_varint(4);
    out.write_varint(1);
    out.pad_to(sizeof(Weight));
    out.write(1.0);               // second value missing
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V2Soa),
                 "entry count exceeds payload");
}

TEST(BoundaryBlockValidation, TruncatedPreRaiseValueRunDiesV1) {
    // Same corruption through the v1 AoS path: count says two DvEntry
    // records, the stream carries one and a half.
    Serializer out;
    out.write(VertexId{5});
    out.write(std::uint64_t{2});
    out.write(DvEntry{4, 1.0});
    out.write(VertexId{6});       // half an entry
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_blocks(payload, BoundaryWireFormat::V1Aos),
                 "entry count exceeds payload");
}

TEST(BoundaryBlockV2Validation, SoaViewDecoderRejectsTheSamePayloads) {
    // The SoA-view decoder is the same validation pass; spot-check the two
    // highest-risk cases (hostile count, truncated varint) through it.
    std::vector<VertexId> arena;
    {
        Serializer out;
        out.write(VertexId{3});
        out.write_varint(std::uint64_t{1} << 28);
        const auto payload = out.take();
        EXPECT_DEATH((void)decode_boundary_block_soa_views(payload, arena),
                     "entry count exceeds payload");
    }
    {
        Serializer out;
        out.write(VertexId{7});
        out.write(std::uint8_t{0x80});
        const auto payload = out.take();
        EXPECT_DEATH((void)decode_boundary_block_soa_views(payload, arena),
                     "varint truncated");
    }
}

}  // namespace
}  // namespace aa
