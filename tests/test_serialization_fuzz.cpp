// Randomized round-trip sweeps for the wire formats — the closest thing to
// fuzzing that stays deterministic and offline.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/rc.hpp"
#include "runtime/message.hpp"

namespace aa {
namespace {

class SerializerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializerFuzz, MixedScalarsRoundTrip) {
    Rng rng(GetParam());
    Serializer out;
    // Random interleaving of types, recorded for replay.
    std::vector<int> kinds;
    std::vector<std::uint32_t> u32s;
    std::vector<double> doubles;
    std::vector<std::vector<float>> spans;
    const int count = 1 + static_cast<int>(rng.uniform(64));
    for (int i = 0; i < count; ++i) {
        const int kind = static_cast<int>(rng.uniform(3));
        kinds.push_back(kind);
        if (kind == 0) {
            u32s.push_back(static_cast<std::uint32_t>(rng()));
            out.write(u32s.back());
        } else if (kind == 1) {
            doubles.push_back(rng.uniform(-1e9, 1e9));
            out.write(doubles.back());
        } else {
            std::vector<float> span(rng.uniform(20));
            for (auto& x : span) {
                x = static_cast<float>(rng.uniform01());
            }
            spans.push_back(span);
            out.write_span(std::span<const float>(spans.back()));
        }
    }

    const auto buffer = out.take();
    Deserializer in(buffer);
    std::size_t iu = 0;
    std::size_t id = 0;
    std::size_t is = 0;
    for (const int kind : kinds) {
        if (kind == 0) {
            ASSERT_EQ(in.read<std::uint32_t>(), u32s[iu++]);
        } else if (kind == 1) {
            ASSERT_EQ(in.read<double>(), doubles[id++]);
        } else {
            ASSERT_EQ(in.read_vector<float>(), spans[is++]);
        }
    }
    EXPECT_TRUE(in.exhausted());
}

TEST_P(SerializerFuzz, BoundaryBlocksRoundTrip) {
    Rng rng(GetParam() ^ 0xB10C);
    std::vector<BoundaryBlock> blocks;
    const std::size_t block_count = rng.uniform(16);
    for (std::size_t b = 0; b < block_count; ++b) {
        BoundaryBlock block;
        block.vertex = static_cast<VertexId>(rng.uniform(1u << 20));
        const std::size_t entries = rng.uniform(40);
        for (std::size_t e = 0; e < entries; ++e) {
            block.entries.push_back(
                {static_cast<VertexId>(rng.uniform(1u << 20)),
                 rng.uniform(0.0, 1e6)});
        }
        blocks.push_back(std::move(block));
    }
    const auto payload = encode_boundary_blocks(blocks);
    const auto back = decode_boundary_blocks(payload);
    ASSERT_EQ(back.size(), blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        EXPECT_EQ(back[b].vertex, blocks[b].vertex);
        ASSERT_EQ(back[b].entries.size(), blocks[b].entries.size());
        for (std::size_t e = 0; e < blocks[b].entries.size(); ++e) {
            EXPECT_EQ(back[b].entries[e].column, blocks[b].entries[e].column);
            EXPECT_EQ(back[b].entries[e].distance, blocks[b].entries[e].distance);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializerFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace aa
