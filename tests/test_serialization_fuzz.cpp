// Randomized round-trip sweeps for the wire formats — the closest thing to
// fuzzing that stays deterministic and offline.
#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "core/rc.hpp"
#include "runtime/message.hpp"

namespace aa {
namespace {

class SerializerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializerFuzz, MixedScalarsRoundTrip) {
    Rng rng(GetParam());
    Serializer out;
    // Random interleaving of types, recorded for replay.
    std::vector<int> kinds;
    std::vector<std::uint32_t> u32s;
    std::vector<double> doubles;
    std::vector<std::vector<float>> spans;
    const int count = 1 + static_cast<int>(rng.uniform(64));
    for (int i = 0; i < count; ++i) {
        const int kind = static_cast<int>(rng.uniform(3));
        kinds.push_back(kind);
        if (kind == 0) {
            u32s.push_back(static_cast<std::uint32_t>(rng()));
            out.write(u32s.back());
        } else if (kind == 1) {
            doubles.push_back(rng.uniform(-1e9, 1e9));
            out.write(doubles.back());
        } else {
            std::vector<float> span(rng.uniform(20));
            for (auto& x : span) {
                x = static_cast<float>(rng.uniform01());
            }
            spans.push_back(span);
            out.write_span(std::span<const float>(spans.back()));
        }
    }

    const auto buffer = out.take();
    Deserializer in(buffer);
    std::size_t iu = 0;
    std::size_t id = 0;
    std::size_t is = 0;
    for (const int kind : kinds) {
        if (kind == 0) {
            ASSERT_EQ(in.read<std::uint32_t>(), u32s[iu++]);
        } else if (kind == 1) {
            ASSERT_EQ(in.read<double>(), doubles[id++]);
        } else {
            ASSERT_EQ(in.read_vector<float>(), spans[is++]);
        }
    }
    EXPECT_TRUE(in.exhausted());
}

TEST_P(SerializerFuzz, BoundaryBlocksRoundTrip) {
    Rng rng(GetParam() ^ 0xB10C);
    std::vector<BoundaryBlock> blocks;
    const std::size_t block_count = rng.uniform(16);
    for (std::size_t b = 0; b < block_count; ++b) {
        BoundaryBlock block;
        block.vertex = static_cast<VertexId>(rng.uniform(1u << 20));
        const std::size_t entries = rng.uniform(40);
        for (std::size_t e = 0; e < entries; ++e) {
            block.entries.push_back(
                {static_cast<VertexId>(rng.uniform(1u << 20)),
                 rng.uniform(0.0, 1e6)});
        }
        blocks.push_back(std::move(block));
    }
    const auto payload = encode_boundary_blocks(blocks);
    const auto back = decode_boundary_blocks(payload);
    ASSERT_EQ(back.size(), blocks.size());
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        EXPECT_EQ(back[b].vertex, blocks[b].vertex);
        ASSERT_EQ(back[b].entries.size(), blocks[b].entries.size());
        for (std::size_t e = 0; e < blocks[b].entries.size(); ++e) {
            EXPECT_EQ(back[b].entries[e].column, blocks[b].entries[e].column);
            EXPECT_EQ(back[b].entries[e].distance, blocks[b].entries[e].distance);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializerFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

// Malformed-payload cases: decode_boundary_blocks validates the structure
// before allocating anything, so a hostile length prefix must die on the
// contract check instead of attempting a huge allocation.

TEST(BoundaryBlockValidation, OversizedEntryCountDies) {
    Serializer out;
    out.write(VertexId{7});
    out.write(std::uint64_t{1} << 61);  // declares ~2.3e18 entries, sends none
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_blocks(payload),
                 "entry count exceeds payload");
}

TEST(BoundaryBlockValidation, OverflowWrappingEntryCountDies) {
    // A count chosen so count * sizeof(DvEntry) wraps std::size_t to a tiny
    // number; the division-based bound check must still reject it.
    Serializer out;
    out.write(VertexId{1});
    const std::uint64_t wrapping =
        (std::numeric_limits<std::uint64_t>::max() / sizeof(DvEntry)) + 2;
    out.write(wrapping);
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_blocks(payload),
                 "entry count exceeds payload");
}

TEST(BoundaryBlockValidation, DeclaredCountPastPayloadEndDies) {
    // A structurally plausible block whose count is one larger than the
    // entries actually shipped.
    Serializer out;
    out.write(VertexId{3});
    out.write(std::uint64_t{3});
    for (int i = 0; i < 2; ++i) {  // only two entries behind a count of three
        out.write(DvEntry{static_cast<VertexId>(i), 1.5});
    }
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_blocks(payload),
                 "entry count exceeds payload");
}

TEST(BoundaryBlockValidation, TruncatedHeaderDies) {
    const std::vector<std::byte> payload(sizeof(VertexId) + 2);  // half a header
    EXPECT_DEATH((void)decode_boundary_blocks(payload),
                 "header truncated");
}

TEST(BoundaryBlockValidation, TrailingGarbageAfterValidBlockDies) {
    std::vector<BoundaryBlock> blocks(1);
    blocks[0].vertex = 9;
    blocks[0].entries.push_back({4, 2.5});
    auto payload = encode_boundary_blocks(blocks);
    payload.resize(payload.size() + 5);  // 5 stray bytes: not even a header
    EXPECT_DEATH((void)decode_boundary_blocks(payload),
                 "header truncated");
}

// The zero-copy decoder shares the validation pass with the copying one; the
// same hostile prefixes must die there too.

TEST(BoundaryBlockValidation, ViewDecoderOversizedEntryCountDies) {
    Serializer out;
    out.write(VertexId{7});
    out.write(std::uint64_t{1} << 61);
    const auto payload = out.take();
    EXPECT_DEATH((void)decode_boundary_block_views(payload),
                 "entry count exceeds payload");
}

TEST(BoundaryBlockValidation, ViewDecoderTruncatedHeaderDies) {
    const std::vector<std::byte> payload(sizeof(VertexId) + 2);
    EXPECT_DEATH((void)decode_boundary_block_views(payload),
                 "header truncated");
}

TEST(BoundaryBlockValidation, ViewDecoderMatchesCopyingDecoder) {
    Rng rng(99);
    std::vector<BoundaryBlock> blocks(4);
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        blocks[b].vertex = static_cast<VertexId>(100 + b);
        const std::size_t count = rng.uniform(50);
        for (std::size_t i = 0; i < count; ++i) {
            blocks[b].entries.push_back(
                {static_cast<VertexId>(rng.uniform(1000)), rng.uniform(0.1, 9.0)});
        }
    }
    const auto payload = encode_boundary_blocks(blocks);
    const auto copies = decode_boundary_blocks(payload);
    const auto views = decode_boundary_block_views(payload);
    ASSERT_EQ(copies.size(), views.size());
    for (std::size_t b = 0; b < copies.size(); ++b) {
        EXPECT_EQ(copies[b].vertex, views[b].vertex);
        ASSERT_EQ(copies[b].entries.size(), views[b].entries.size());
        for (std::size_t i = 0; i < copies[b].entries.size(); ++i) {
            EXPECT_EQ(copies[b].entries[i].column, views[b].entries[i].column);
            EXPECT_EQ(copies[b].entries[i].distance, views[b].entries[i].distance);
        }
    }
}

}  // namespace
}  // namespace aa
