#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace aa {
namespace {

TEST(Metrics, DegreeHistogram) {
    DynamicGraph g(4);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(0, 3);
    const auto hist = degree_histogram(g);
    ASSERT_EQ(hist.size(), 4u);
    EXPECT_EQ(hist[0], 0u);
    EXPECT_EQ(hist[1], 3u);  // vertices 1,2,3
    EXPECT_EQ(hist[3], 1u);  // vertex 0
}

TEST(Metrics, ConnectedComponents) {
    DynamicGraph g(6);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(3, 4);
    const auto comp = connected_components(g);
    EXPECT_EQ(comp[0], comp[1]);
    EXPECT_EQ(comp[1], comp[2]);
    EXPECT_EQ(comp[3], comp[4]);
    EXPECT_NE(comp[0], comp[3]);
    EXPECT_NE(comp[5], comp[0]);
    EXPECT_NE(comp[5], comp[3]);
    EXPECT_EQ(num_connected_components(g), 3u);
    EXPECT_FALSE(is_connected(g));
}

TEST(Metrics, SingleVertexIsConnected) {
    DynamicGraph g(1);
    EXPECT_TRUE(is_connected(g));
    DynamicGraph empty;
    EXPECT_TRUE(is_connected(empty));
}

TEST(Metrics, ClusteringCoefficientTriangle) {
    DynamicGraph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    EXPECT_NEAR(global_clustering_coefficient(g), 1.0, 1e-12);
}

TEST(Metrics, ClusteringCoefficientStar) {
    DynamicGraph g(5);
    for (VertexId v = 1; v < 5; ++v) {
        g.add_edge(0, v);
    }
    EXPECT_NEAR(global_clustering_coefficient(g), 0.0, 1e-12);
}

TEST(Metrics, ClusteringCoefficientMixed) {
    // A triangle with a pendant: 1 triangle, wedges: deg(0)=3 -> 3, deg(1)=2
    // -> 1, deg(2)=2 -> 1, deg(3)=1 -> 0; total 5 wedges, 3 closed.
    DynamicGraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    g.add_edge(0, 3);
    EXPECT_NEAR(global_clustering_coefficient(g), 3.0 / 5.0, 1e-12);
}

TEST(Metrics, AverageDegree) {
    DynamicGraph g(4);
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    EXPECT_NEAR(average_degree(g), 1.0, 1e-12);
    EXPECT_EQ(average_degree(DynamicGraph{}), 0.0);
}

TEST(Metrics, PowerLawExponentOnScaleFree) {
    Rng rng(1);
    const auto ba = barabasi_albert(3000, 2, rng);
    const double gamma_ba = power_law_exponent_mle(ba, 3);
    EXPECT_GT(gamma_ba, 1.5);
    EXPECT_LT(gamma_ba, 4.5);

    // An ER graph's Poisson degrees fit much flatter/steeper, with a clearly
    // different estimate from BA at the same density.
    Rng rng2(2);
    const auto er = erdos_renyi_gnm(3000, 6000, rng2);
    const double gamma_er = power_law_exponent_mle(er, 3);
    EXPECT_GT(gamma_er, gamma_ba);
}

TEST(Metrics, PowerLawExponentDegenerate) {
    DynamicGraph g(3);  // no vertex reaches x_min
    EXPECT_EQ(power_law_exponent_mle(g, 2), 0.0);
}

}  // namespace
}  // namespace aa
