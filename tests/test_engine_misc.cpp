// Engine odds and ends: configuration edge cases, cost-model effects, and
// consistency between the engine's views of its own state.
#include <gtest/gtest.h>

#include "core/closeness.hpp"
#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "partition/partition.hpp"

namespace aa {
namespace {

EngineConfig base_config(std::uint32_t ranks) {
    EngineConfig config;
    config.num_ranks = ranks;
    config.ia_threads = 1;
    config.seed = 1001;
    return config;
}

TEST(EngineMisc, MoreRanksThanVertices) {
    DynamicGraph g(5);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    g.add_edge(3, 4);
    AnytimeEngine engine(g, base_config(8));  // some ranks stay empty
    engine.initialize();
    engine.run_to_quiescence();
    const auto exact = exact_apsp(g);
    const auto matrix = engine.full_distance_matrix();
    for (std::size_t v = 0; v < 5; ++v) {
        for (std::size_t t = 0; t < 5; ++t) {
            EXPECT_NEAR(matrix[v][t], exact[v][t], 1e-9);
        }
    }
    // Dynamic updates still work with empty ranks present.
    GrowthBatch batch;
    batch.base_id = 5;
    batch.num_new = 1;
    batch.edges = {{5, 0, 1.0}};
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();
    EXPECT_NEAR(engine.distance_row(5)[4], 5.0, 1e-9);
}

TEST(EngineMisc, CurrentCutMatchesPartitionEvaluation) {
    Rng rng(1);
    const auto g = barabasi_albert(80, 2, rng);
    AnytimeEngine engine(g, base_config(4));
    engine.initialize();
    Partitioning p;
    p.num_parts = 4;
    p.assignment = engine.owners();
    EXPECT_EQ(engine.current_cut_edges(), count_cut_edges(engine.graph(), p));
}

TEST(EngineMisc, DistanceRowMatchesMatrix) {
    Rng rng(2);
    const auto g = barabasi_albert(50, 2, rng);
    AnytimeEngine engine(g, base_config(3));
    engine.initialize();
    engine.run_to_quiescence();
    const auto matrix = engine.full_distance_matrix();
    for (VertexId v = 0; v < 50; v += 7) {
        EXPECT_EQ(engine.distance_row(v), matrix[v]);
    }
}

TEST(EngineMisc, MoreIaThreadsLowerSimTime) {
    Rng rng(3);
    const auto g = barabasi_albert(150, 3, rng);

    auto run_with_threads = [&](std::size_t threads) {
        EngineConfig config = base_config(2);
        config.ia_threads = threads;
        AnytimeEngine engine(g, config);
        engine.initialize();
        return engine.sim_seconds();  // init = DD + IA; IA dominated by SSSP
    };
    // Same counted ops, divided by T in the model.
    EXPECT_GT(run_with_threads(1), run_with_threads(4));
}

TEST(EngineMisc, ScheduleChangesTimeNotResults) {
    Rng rng(4);
    const auto g = barabasi_albert(70, 2, rng);

    auto run_with = [&](CommSchedule schedule) {
        EngineConfig config = base_config(4);
        config.schedule = schedule;
        AnytimeEngine engine(g, config);
        engine.initialize();
        engine.run_to_quiescence();
        return std::make_pair(engine.sim_seconds(), engine.full_distance_matrix());
    };
    const auto [serial_time, serial_matrix] =
        run_with(CommSchedule::SerializedAllToAll);
    const auto [parallel_time, parallel_matrix] =
        run_with(CommSchedule::ParallelRounds);
    EXPECT_GT(serial_time, parallel_time);
    EXPECT_EQ(serial_matrix, parallel_matrix);
}

TEST(EngineMisc, SlowerNetworkOnlyStretchesTime) {
    Rng rng(5);
    const auto g = barabasi_albert(60, 2, rng);

    auto run_with_gap = [&](double gap) {
        EngineConfig config = base_config(4);
        config.logp.gap_per_byte = gap;
        AnytimeEngine engine(g, config);
        engine.initialize();
        engine.run_to_quiescence();
        return std::make_pair(engine.sim_seconds(), engine.full_distance_matrix());
    };
    const auto [fast_time, fast_matrix] = run_with_gap(1e-9);
    const auto [slow_time, slow_matrix] = run_with_gap(100e-9);
    EXPECT_GT(slow_time, fast_time);
    EXPECT_EQ(fast_matrix, slow_matrix);
}

TEST(EngineMisc, DeterministicAcrossRuns) {
    Rng rng(6);
    const auto g = barabasi_albert(90, 2, rng, WeightRange{1.0, 3.0});
    const auto run = [&] {
        AnytimeEngine engine(g, base_config(4));
        engine.initialize();
        engine.run_to_quiescence();
        return std::make_tuple(engine.sim_seconds(),
                               engine.cluster().stats().total_bytes,
                               engine.full_distance_matrix());
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(std::get<0>(a), std::get<0>(b));
    EXPECT_EQ(std::get<1>(a), std::get<1>(b));
    EXPECT_EQ(std::get<2>(a), std::get<2>(b));
}

TEST(EngineMisc, TwoVertexGraph) {
    DynamicGraph g(2);
    g.add_edge(0, 1, 2.5);
    AnytimeEngine engine(g, base_config(2));
    engine.initialize();
    engine.run_to_quiescence();
    EXPECT_EQ(engine.distance_row(0)[1], 2.5);
    EXPECT_EQ(engine.distance_row(1)[0], 2.5);
}

TEST(EngineMisc, EmptyBatchIsHarmless) {
    Rng rng(7);
    const auto g = barabasi_albert(40, 2, rng);
    AnytimeEngine engine(g, base_config(3));
    engine.initialize();
    engine.run_to_quiescence();
    GrowthBatch batch;
    batch.base_id = 40;
    batch.num_new = 0;
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();
    EXPECT_EQ(engine.num_vertices(), 40u);
    const auto exact = exact_apsp(g);
    const auto matrix = engine.full_distance_matrix();
    for (std::size_t v = 0; v < 40; ++v) {
        EXPECT_NEAR(matrix[v][20], exact[v][20], 1e-9);
    }
}

TEST(EngineMisc, AddEdgesEmptySpanIsHarmless) {
    DynamicGraph g(4);
    g.add_edge(0, 1);
    AnytimeEngine engine(g, base_config(2));
    engine.initialize();
    engine.add_edges({});
    engine.run_to_quiescence();
    EXPECT_EQ(engine.graph().num_edges(), 1u);
}

TEST(EngineMisc, QueryDistanceMatchesStateAndCharges) {
    Rng rng(9);
    const auto g = barabasi_albert(60, 2, rng);
    AnytimeEngine engine(g, base_config(4));
    engine.initialize();
    engine.run_to_quiescence();
    const auto exact = exact_apsp(g);
    const double before = engine.sim_seconds();
    std::size_t remote_queries = 0;
    for (VertexId u = 0; u < 60; u += 11) {
        for (VertexId v = 0; v < 60; v += 7) {
            EXPECT_NEAR(engine.query_distance(u, v), exact[u][v], 1e-9);
            remote_queries += engine.owners()[u] != 0;
        }
    }
    if (remote_queries > 0) {
        EXPECT_GT(engine.sim_seconds(), before);  // round trips were priced
    }
}

TEST(EngineMisc, QueryDistanceBeforeConvergenceIsUpperBound) {
    Rng rng(10);
    const auto g = barabasi_albert(60, 2, rng);
    AnytimeEngine engine(g, base_config(4));
    engine.initialize();  // no RC yet: only local knowledge
    const auto exact = exact_apsp(g);
    for (VertexId u = 0; u < 60; u += 13) {
        const Weight estimate = engine.query_distance(u, 59);
        if (estimate < kInfinity) {
            EXPECT_GE(estimate, exact[u][59] - 1e-9);
        }
    }
}

TEST(EngineMisc, RawVariantThroughFullEnginePath) {
    // EngineConfig::closeness_variant = Raw must flow through every result
    // surface: the observer path, the distributed reduction, and exact
    // recomputation — all agreeing with each other and differing from the
    // Corrected default wherever the graph is non-trivial.
    Rng rng(12);
    const auto g = barabasi_albert(70, 2, rng);
    EngineConfig config = base_config(4);
    config.closeness_variant = ClosenessVariant::Raw;
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_to_quiescence();

    const auto exact_raw = exact_closeness(g, ClosenessVariant::Raw);
    const auto observed = engine.closeness();
    const auto distributed = engine.compute_closeness_distributed();
    ASSERT_EQ(observed.closeness.size(), 70u);
    for (VertexId v = 0; v < 70; ++v) {
        EXPECT_NEAR(observed.closeness[v], exact_raw.closeness[v], 1e-9)
            << "v=" << v;
        EXPECT_NEAR(distributed.closeness[v], exact_raw.closeness[v], 1e-9)
            << "v=" << v;
        EXPECT_EQ(observed.reachable[v], exact_raw.reachable[v]);
    }

    // Sanity: Raw and Corrected genuinely disagree on this graph (otherwise
    // the test would pass with the variant silently ignored).
    const auto exact_corrected = exact_closeness(g, ClosenessVariant::Corrected);
    std::size_t differing = 0;
    for (VertexId v = 0; v < 70; ++v) {
        differing += exact_raw.closeness[v] != exact_corrected.closeness[v];
    }
    EXPECT_GT(differing, 0u);

    // The variant also survives a dynamic update: scores after growth and
    // reconvergence are the Raw scores of the grown graph.
    GrowthConfig gc;
    gc.num_new = 6;
    Rng brng(13);
    const auto batch = grow_batch(70, gc, brng);
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();
    const auto grown_raw =
        exact_closeness(engine.graph(), ClosenessVariant::Raw);
    const auto after = engine.closeness();
    for (std::size_t v = 0; v < after.closeness.size(); ++v) {
        EXPECT_NEAR(after.closeness[v], grown_raw.closeness[v], 1e-9)
            << "v=" << v;
    }
}

TEST(EngineMisc, ReportSimSecondsTracksCluster) {
    Rng rng(8);
    const auto g = barabasi_albert(50, 2, rng);
    AnytimeEngine engine(g, base_config(3));
    engine.initialize();
    engine.run_to_quiescence();
    EXPECT_EQ(engine.report().sim_seconds, engine.sim_seconds());
    EXPECT_EQ(engine.report().rc_steps, engine.rc_steps_completed());
}

}  // namespace
}  // namespace aa
