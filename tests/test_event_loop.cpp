// Event-queue scheduler: ordering contract, hostile-timestamp death tests,
// fuzzed heap invariants, and schedule_arrivals consistency with the
// collective exchange_duration makespans.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "runtime/alltoall.hpp"
#include "runtime/event_loop.hpp"
#include "runtime/logp.hpp"

namespace aa {
namespace {

DeliveryEvent make_event(double time, RankId source, std::uint64_t seq) {
    DeliveryEvent e;
    e.time = time;
    e.source = source;
    e.seq = seq;
    e.message.from = source;
    return e;
}

TEST(EventQueue, PopsInTimeOrder) {
    EventQueue q;
    q.push(make_event(3.0, 0, q.next_seq()));
    q.push(make_event(1.0, 1, q.next_seq()));
    q.push(make_event(2.0, 2, q.next_seq()));
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop().time, 1.0);
    EXPECT_EQ(q.pop().time, 2.0);
    EXPECT_EQ(q.pop().time, 3.0);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TimestampTiesBreakBySourceThenSeq) {
    EventQueue q;
    // Same instant from three sources; source 1 contributes two events.
    q.push(make_event(5.0, 2, 7));
    q.push(make_event(5.0, 1, 9));
    q.push(make_event(5.0, 1, 4));
    q.push(make_event(5.0, 0, 8));
    const auto a = q.pop();
    EXPECT_EQ(a.source, 0u);
    const auto b = q.pop();
    EXPECT_EQ(b.source, 1u);
    EXPECT_EQ(b.seq, 4u);
    const auto c = q.pop();
    EXPECT_EQ(c.source, 1u);
    EXPECT_EQ(c.seq, 9u);
    EXPECT_EQ(q.pop().source, 2u);
}

TEST(EventQueue, NextSeqIsMonotoneFromZero) {
    EventQueue q;
    EXPECT_EQ(q.next_seq(), 0u);
    EXPECT_EQ(q.next_seq(), 1u);
    EXPECT_EQ(q.next_seq(), 2u);
}

TEST(EventQueueDeath, HostileTimestampsDie) {
    EventQueue q;
    EXPECT_DEATH(q.push(make_event(std::nan(""), 0, 0)), "not finite");
    EXPECT_DEATH(
        q.push(make_event(std::numeric_limits<double>::infinity(), 0, 0)),
        "not finite");
    EXPECT_DEATH(
        q.push(make_event(-std::numeric_limits<double>::infinity(), 0, 0)),
        "not finite");
    EXPECT_DEATH(q.push(make_event(-1e-9, 0, 0)), "negative");
}

TEST(EventQueueDeath, EmptyAccessDies) {
    EventQueue q;
    EXPECT_DEATH((void)q.top(), "empty");
    EXPECT_DEATH((void)q.pop(), "empty");
    q.push(make_event(1.0, 0, 0));
    (void)q.pop();
    EXPECT_DEATH((void)q.pop(), "empty");
}

TEST(EventQueue, FuzzedPushPopMatchesTotalOrder) {
    // Random interleavings of pushes and pops must always drain in the
    // (time, source, seq) total order, including many exact-tie timestamps
    // (coarse quantization below forces them).
    std::mt19937_64 rng(0xE7E27);
    for (int round = 0; round < 50; ++round) {
        EventQueue q;
        std::vector<DeliveryEvent> all;
        std::uniform_int_distribution<int> time_q(0, 9);
        std::uniform_int_distribution<int> src(0, 3);
        const int n = 64;
        for (int i = 0; i < n; ++i) {
            all.push_back(make_event(time_q(rng) * 0.125,
                                     static_cast<RankId>(src(rng)), q.next_seq()));
        }
        std::vector<DeliveryEvent> expected = all;
        std::stable_sort(expected.begin(), expected.end(),
                         [](const DeliveryEvent& a, const DeliveryEvent& b) {
                             return DeliveryAfter{}(b, a);  // a before b
                         });
        std::shuffle(all.begin(), all.end(), rng);
        std::vector<DeliveryEvent> popped;
        std::size_t pushed = 0;
        std::uniform_int_distribution<int> coin(0, 1);
        while (popped.size() < all.size()) {
            const bool can_push = pushed < all.size();
            const bool do_push = can_push && (q.empty() || coin(rng) == 0);
            if (do_push) {
                q.push(all[pushed++]);
            } else {
                popped.push_back(q.pop());
            }
        }
        // Interleaved pops only see the events pushed so far, so the global
        // pop order is not simply `expected` — but each pop must be the
        // minimum of what was in the queue, which implies: among events with
        // equal keys nothing to check (keys are unique via seq), and the
        // subsequence property below must hold for the final drain.
        // Re-run as pure push-all-then-pop-all for the exact total order.
        EventQueue q2;
        for (const DeliveryEvent& e : all) {
            q2.push(e);
        }
        for (const DeliveryEvent& want : expected) {
            const DeliveryEvent got = q2.pop();
            ASSERT_EQ(got.time, want.time);
            ASSERT_EQ(got.source, want.source);
            ASSERT_EQ(got.seq, want.seq);
        }
        EXPECT_TRUE(q2.empty());
        // And the interleaved drain must at least respect the heap invariant
        // pairwise: each popped event is no later (in the total order) than
        // anything popped afterwards that was already in the queue. Cheap
        // proxy: every pop's key must not decrease relative to the previous
        // pop *when no push intervened*; full validation is the q2 pass.
        for (const DeliveryEvent& e : popped) {
            ASSERT_TRUE(std::isfinite(e.time));
        }
    }
}

// ---- schedule_arrivals ----------------------------------------------------

struct ArrivalCase {
    CommSchedule schedule;
    const char* name;
};

class ScheduleArrivals : public ::testing::TestWithParam<ArrivalCase> {};

/// Build the canonical message list for a dense exchange where rank i sends
/// (i * P + j + 1) * 100 bytes to rank j.
std::vector<InFlightMessage> dense_messages(std::uint32_t P) {
    std::vector<InFlightMessage> messages;
    for (const auto& [from, to] : all_to_all_pairs(P)) {
        messages.push_back(
            {from, to, static_cast<std::size_t>(from * P + to + 1) * 100, 0});
    }
    return messages;
}

TEST_P(ScheduleArrivals, MakespanMatchesExchangeDurationAtEqualReady) {
    // When every sender is ready at the same instant, the event-driven
    // arrival schedule must reproduce the collective pricing exactly: the
    // last arrival minus the common start equals exchange_duration of the
    // same byte matrix. (Each pair carries one message, so per-message and
    // per-pair-aggregate chunking agree.)
    const LogPParams params{};
    for (const std::uint32_t P : {2u, 3u, 4u, 8u}) {
        auto messages = dense_messages(P);
        std::vector<std::size_t> matrix(static_cast<std::size_t>(P) * P, 0);
        for (const InFlightMessage& m : messages) {
            matrix[static_cast<std::size_t>(m.from) * P + m.to] = m.bytes;
        }
        const double start = 3.25;
        std::vector<double> ready(P, start);
        schedule_arrivals(messages, P, ready, params, GetParam().schedule);
        double last = start;
        for (const InFlightMessage& m : messages) {
            EXPECT_GE(m.arrive, start);
            last = std::max(last, m.arrive);
        }
        const double expect =
            exchange_duration(matrix, P, params, GetParam().schedule);
        EXPECT_NEAR(last - start, expect, 1e-12)
            << GetParam().name << " P=" << P;
    }
}

TEST_P(ScheduleArrivals, DeterministicAcrossCalls) {
    const LogPParams params{};
    const std::uint32_t P = 4;
    std::vector<double> ready{0.5, 0.25, 1.0, 0.0};
    auto a = dense_messages(P);
    auto b = dense_messages(P);
    schedule_arrivals(a, P, ready, params, GetParam().schedule);
    schedule_arrivals(b, P, ready, params, GetParam().schedule);
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].arrive, b[i].arrive);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedules, ScheduleArrivals,
    ::testing::Values(
        ArrivalCase{CommSchedule::SerializedAllToAll, "serialized"},
        ArrivalCase{CommSchedule::ParallelRounds, "rounds"},
        ArrivalCase{CommSchedule::Flooding, "flooding"},
        ArrivalCase{CommSchedule::Pipelined, "pipelined"}),
    [](const ::testing::TestParamInfo<ArrivalCase>& p) {
        return std::string(p.param.name);
    });

TEST(ScheduleArrivalsPipelined, SendersSerializeReceiversOverlap) {
    // Under Pipelined, one sender's messages are back to back from its own
    // ready time, and distinct senders do not delay each other.
    const LogPParams params{};
    const std::uint32_t P = 4;
    std::vector<double> ready{0.0, 10.0, 0.0, 0.0};
    auto messages = dense_messages(P);
    schedule_arrivals(messages, P, ready, params, CommSchedule::Pipelined);
    std::vector<double> sender_clock(ready);
    for (const InFlightMessage& m : messages) {
        const double expect = sender_clock[m.from] + params.message_time(m.bytes);
        ASSERT_DOUBLE_EQ(m.arrive, expect);
        sender_clock[m.from] = m.arrive;
    }
    // Sender 1's lateness must not leak into sender 0's arrivals.
    for (const InFlightMessage& m : messages) {
        if (m.from == 0) {
            EXPECT_LT(m.arrive, 10.0);
        }
    }
}

TEST(ScheduleArrivalsSerialized, LateSenderStallsOnlyLaterWireSlots) {
    // The serialized wire processes canonical order, but a message departs at
    // max(wire free, sender ready): early senders' traffic is not held back
    // by a later sender that appears after them in canonical order.
    const LogPParams params{};
    const std::uint32_t P = 3;
    std::vector<double> ready{0.0, 100.0, 0.0};
    auto messages = dense_messages(P);
    schedule_arrivals(messages, P, ready, params,
                      CommSchedule::SerializedAllToAll);
    double wire_free = 0;
    for (const InFlightMessage& m : messages) {
        const double start = std::max(wire_free, ready[m.from]);
        ASSERT_DOUBLE_EQ(m.arrive, start + params.message_time(m.bytes));
        wire_free = m.arrive;
    }
    // The first canonical message is from rank 0, which is ready at t=0.
    EXPECT_LT(messages.front().arrive, 1.0);
}

TEST(ScheduleArrivalsDeath, OutOfRangeRanksDie) {
    const LogPParams params{};
    std::vector<double> ready(2, 0.0);
    std::vector<InFlightMessage> bad{{5, 0, 100, 0}};
    EXPECT_DEATH(
        schedule_arrivals(bad, 2, ready, params, CommSchedule::Pipelined), "");
    std::vector<InFlightMessage> self{{1, 1, 100, 0}};
    EXPECT_DEATH(
        schedule_arrivals(self, 2, ready, params, CommSchedule::Pipelined), "");
}

}  // namespace
}  // namespace aa
