#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "core/distance_store.hpp"

namespace aa {
namespace {

TEST(DistanceStore, FreshRowIsInfExceptSelf) {
    DistanceStore store(4);
    const LocalId r = store.add_row(2);
    EXPECT_EQ(store.at(r, 2), 0.0);
    for (VertexId c : {0u, 1u, 3u}) {
        EXPECT_GE(store.at(r, c), kInfinity);
    }
    EXPECT_FALSE(store.has_prop(r));
    EXPECT_FALSE(store.has_send(r));
}

TEST(DistanceStore, RelaxImprovesAndMarks) {
    DistanceStore store(3);
    const LocalId r = store.add_row(0);
    EXPECT_TRUE(store.relax(r, 1, 5.0));
    EXPECT_EQ(store.at(r, 1), 5.0);
    EXPECT_TRUE(store.has_prop(r));
    EXPECT_TRUE(store.has_send(r));
    // Worse or equal candidates are rejected.
    EXPECT_FALSE(store.relax(r, 1, 5.0));
    EXPECT_FALSE(store.relax(r, 1, 6.0));
    EXPECT_TRUE(store.relax(r, 1, 4.0));
    EXPECT_EQ(store.at(r, 1), 4.0);
}

TEST(DistanceStore, MarkFlagsControlLists) {
    DistanceStore store(3);
    const LocalId r = store.add_row(0);
    store.relax(r, 1, 2.0, /*mark_prop=*/false, /*mark_send=*/true);
    EXPECT_FALSE(store.has_prop(r));
    EXPECT_TRUE(store.has_send(r));
    store.relax(r, 2, 3.0, /*mark_prop=*/true, /*mark_send=*/false);
    EXPECT_TRUE(store.has_prop(r));
}

TEST(DistanceStore, TakeDrainsAndDeduplicates) {
    DistanceStore store(5);
    const LocalId r = store.add_row(0);
    store.relax(r, 1, 5.0);
    store.relax(r, 1, 4.0);  // same column twice
    store.relax(r, 2, 7.0);
    const auto cols = store.take_send(r);
    EXPECT_EQ(cols.size(), 2u);
    EXPECT_FALSE(store.has_send(r));
    // After draining, a further improvement re-marks.
    store.relax(r, 1, 3.0);
    EXPECT_TRUE(store.has_send(r));
    EXPECT_EQ(store.take_send(r).size(), 1u);
}

TEST(DistanceStore, GrowColumnsPreservesValues) {
    DistanceStore store(2);
    const LocalId r = store.add_row(0);
    store.relax(r, 1, 2.0);
    store.grow_columns(5);
    EXPECT_EQ(store.num_columns(), 5u);
    EXPECT_EQ(store.at(r, 1), 2.0);
    EXPECT_GE(store.at(r, 4), kInfinity);
    EXPECT_TRUE(store.relax(r, 4, 1.0));
}

TEST(DistanceStore, MarkRowForSendCollectsFinite) {
    DistanceStore store(4);
    const LocalId r = store.add_row(1);
    store.relax(r, 0, 3.0);
    (void)store.take_send(r);
    (void)store.take_prop(r);
    store.mark_row_for_send(r);
    const auto cols = store.take_send(r);
    // Finite entries: column 0 (3.0) and the self column 1 (0.0).
    EXPECT_EQ(cols.size(), 2u);
}

TEST(DistanceStore, MarkRowForPropCollectsFinite) {
    DistanceStore store(4);
    const LocalId r = store.add_row(0);
    store.relax(r, 2, 1.0);
    (void)store.take_prop(r);
    store.mark_row_for_prop(r);
    EXPECT_EQ(store.take_prop(r).size(), 2u);  // self + column 2
}

TEST(DistanceStore, ExtractAndInstallRow) {
    DistanceStore store(3);
    const LocalId r = store.add_row(1);
    store.relax(r, 0, 4.0);
    auto values = store.extract_row(r);
    EXPECT_EQ(values[0], 4.0);
    EXPECT_EQ(values[1], 0.0);
    // Extracted row resets to fresh state.
    EXPECT_GE(store.at(r, 0), kInfinity);
    EXPECT_EQ(store.at(r, 1), 0.0);
    EXPECT_FALSE(store.has_send(r));
    store.install_row(r, std::move(values));
    EXPECT_EQ(store.at(r, 0), 4.0);
}

TEST(DistanceStore, FiniteEntries) {
    DistanceStore store(4);
    const LocalId r = store.add_row(3);
    store.relax(r, 1, 2.5);
    const auto entries = store.finite_entries(r);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].column, 1u);
    EXPECT_EQ(entries[0].distance, 2.5);
    EXPECT_EQ(entries[1].column, 3u);
    EXPECT_EQ(entries[1].distance, 0.0);
}

TEST(DistanceStore, PendingQueries) {
    DistanceStore store(3);
    const LocalId a = store.add_row(0);
    const LocalId b = store.add_row(1);
    EXPECT_FALSE(store.any_send_pending());
    store.relax(b, 2, 1.0);
    EXPECT_TRUE(store.any_send_pending());
    EXPECT_TRUE(store.any_prop_pending());
    (void)store.take_send(b);
    (void)store.take_prop(b);
    (void)a;
    EXPECT_FALSE(store.any_send_pending());
    EXPECT_FALSE(store.any_prop_pending());
}

TEST(DistanceStore, RelaxBatchMatchesRelaxLoop) {
    // relax_batch must be exactly equivalent to per-entry relax() — same
    // values, same improved count, same dirty-set contents — on random entry
    // streams including duplicates, worse candidates, and epsilon-window
    // near-ties.
    Rng rng(99);
    for (int round = 0; round < 20; ++round) {
        DistanceStore a(64);
        DistanceStore b(64);
        const LocalId ra = a.add_row(0);
        const LocalId rb = b.add_row(0);
        std::vector<DvEntry> entries;
        for (int i = 0; i < 200; ++i) {
            entries.push_back({static_cast<VertexId>(rng.uniform(64)),
                               rng.uniform(0.0, 10.0)});
        }
        const Weight offset = rng.uniform(0.0, 2.0);
        std::size_t improved_loop = 0;
        for (const DvEntry& e : entries) {
            improved_loop += a.relax(ra, e.column, offset + e.distance) ? 1 : 0;
        }
        const std::size_t improved_batch = b.relax_batch(rb, entries, offset);
        EXPECT_EQ(improved_loop, improved_batch);
        for (VertexId c = 0; c < 64; ++c) {
            EXPECT_EQ(a.at(ra, c), b.at(rb, c)) << "col " << c;
        }
        const auto pa = a.take_prop(ra);
        const auto pb = b.take_prop(rb);
        std::vector<VertexId> sa(pa.begin(), pa.end());
        std::vector<VertexId> sb(pb.begin(), pb.end());
        std::sort(sa.begin(), sa.end());
        std::sort(sb.begin(), sb.end());
        EXPECT_EQ(sa, sb);
    }
}

TEST(DistanceStore, RelaxBatchFromRowMatchesRelaxLoop) {
    // relax_batch_from_row (the propagate inner loop: candidates gathered
    // from a source row instead of serialized entries) must match per-column
    // relax() exactly.
    Rng rng(321);
    for (int round = 0; round < 20; ++round) {
        DistanceStore a(64);
        DistanceStore b(64);
        const LocalId ua = a.add_row(0);
        const LocalId va = a.add_row(1);
        const LocalId ub = b.add_row(0);
        const LocalId vb = b.add_row(1);
        std::vector<VertexId> cols;
        for (int i = 0; i < 40; ++i) {
            const auto col = static_cast<VertexId>(rng.uniform(64));
            const Weight d = rng.uniform(0.0, 10.0);
            a.relax(ua, col, d);
            b.relax(ub, col, d);
            cols.push_back(col);
        }
        const Weight offset = rng.uniform(0.0, 2.0);
        const auto src_a = a.row(ua);
        std::size_t improved_loop = 0;
        for (const VertexId col : cols) {
            improved_loop += a.relax(va, col, offset + src_a[col]) ? 1 : 0;
        }
        const std::size_t improved_batch =
            b.relax_batch_from_row(vb, cols, b.row(ub), offset);
        EXPECT_EQ(improved_loop, improved_batch);
        for (VertexId c = 0; c < 64; ++c) {
            EXPECT_EQ(a.at(va, c), b.at(vb, c)) << "col " << c;
        }
        const auto pa = a.take_send(va);
        const auto pb = b.take_send(vb);
        std::vector<VertexId> sa(pa.begin(), pa.end());
        std::vector<VertexId> sb(pb.begin(), pb.end());
        std::sort(sa.begin(), sa.end());
        std::sort(sb.begin(), sb.end());
        EXPECT_EQ(sa, sb);
    }
}

TEST(DistanceStore, RelaxBatchHonoursMarkFlags) {
    DistanceStore store(4);
    const LocalId r = store.add_row(0);
    const std::vector<DvEntry> entries{{1, 1.0}, {2, 2.0}};
    store.relax_batch(r, entries, 0.0, /*mark_prop=*/false, /*mark_send=*/true);
    EXPECT_FALSE(store.has_prop(r));
    EXPECT_TRUE(store.has_send(r));
    (void)store.take_send(r);
    const std::vector<DvEntry> more{{3, 1.5}};
    store.relax_batch(r, more, 0.0, /*mark_prop=*/true, /*mark_send=*/false);
    EXPECT_TRUE(store.has_prop(r));
    EXPECT_FALSE(store.has_send(r));
}

TEST(DistanceStore, EpochWrapKeepsDirtyTrackingExact) {
    // The epoch stamp is 8 bits; exceed 255 drains per worklist to force the
    // wrap-around path (arena reset) and check marks never leak or get lost.
    DistanceStore store(8);
    const LocalId r = store.add_row(0);
    (void)store.take_prop(r);
    (void)store.take_send(r);
    double value = 1000.0;
    for (int cycle = 0; cycle < 600; ++cycle) {
        const VertexId col = 1 + static_cast<VertexId>(cycle % 7);
        value -= 1.0;
        ASSERT_TRUE(store.relax(r, col, value));
        const auto prop = store.take_prop(r);
        ASSERT_EQ(prop.size(), 1u);
        EXPECT_EQ(prop[0], col);
        const auto send = store.take_send(r);
        ASSERT_EQ(send.size(), 1u);
        EXPECT_EQ(send[0], col);
        EXPECT_FALSE(store.has_prop(r));
        EXPECT_FALSE(store.has_send(r));
    }
}

TEST(DistanceStore, EpochWrapCannotAliasStaleMarks) {
    // The dedupe check is `mark[col] == epoch` over 8-bit stamps. A column
    // marked once and then left untouched for a full 255-drain cycle ends up
    // with a stale stamp numerically equal to the live epoch again; without
    // the wrap-time arena reset in bump_epoch() the next improvement on that
    // column would look already-marked and silently vanish from the drained
    // set. This pins the memset branch as load-bearing.
    DistanceStore store(4);
    const LocalId r = store.add_row(0);
    (void)store.take_prop(r);
    (void)store.take_send(r);
    // Stamp column 1 at the current epoch, then drain once.
    store.relax(r, 1, 100.0);
    ASSERT_EQ(store.take_prop(r).size(), 1u);
    ASSERT_EQ(store.take_send(r).size(), 1u);
    // 254 further drains on a different column bring the 8-bit epoch back
    // around to column 1's stale stamp (255 drains per cycle).
    double value = 100.0;
    for (int i = 0; i < 254; ++i) {
        value -= 0.1;
        ASSERT_TRUE(store.relax(r, 2, value));
        ASSERT_EQ(store.take_prop(r).size(), 1u);
        ASSERT_EQ(store.take_send(r).size(), 1u);
    }
    // Column 1 must be re-recorded exactly once and in append order.
    ASSERT_TRUE(store.relax(r, 1, 50.0));
    ASSERT_TRUE(store.relax(r, 3, 60.0));
    const auto prop = store.take_prop(r);
    ASSERT_EQ(prop.size(), 2u);
    EXPECT_EQ(prop[0], 1u);
    EXPECT_EQ(prop[1], 3u);
    const auto send = store.take_send(r);
    ASSERT_EQ(send.size(), 2u);
    EXPECT_EQ(send[0], 1u);
    EXPECT_EQ(send[1], 3u);
}

TEST(DistanceStore, MarkInvalidatedRaisesWithoutMinCompare) {
    // The shrink path's single door: unlike relax(), mark_invalidated must
    // overwrite unconditionally (infinity never wins a min-compare) and
    // stamp both worklists so the raise is re-propagated and re-sent.
    DistanceStore store(5);
    const LocalId r = store.add_row(0);
    (void)store.take_prop(r);
    (void)store.take_send(r);
    ASSERT_TRUE(store.relax(r, 2, 7.0));
    (void)store.take_prop(r);
    (void)store.take_send(r);

    store.mark_invalidated(r, 2);
    EXPECT_GE(store.row(r)[2], kInfinity);
    const auto prop = store.take_prop(r);
    ASSERT_EQ(prop.size(), 1u);
    EXPECT_EQ(prop[0], 2u);
    const auto send = store.take_send(r);
    ASSERT_EQ(send.size(), 1u);
    EXPECT_EQ(send[0], 2u);

    // Invalidating an already-infinite column is idempotent: marked once,
    // value still infinite, and a later relax can re-learn it.
    store.mark_invalidated(r, 2);
    store.mark_invalidated(r, 2);
    EXPECT_EQ(store.take_prop(r).size(), 1u);
    ASSERT_TRUE(store.relax(r, 2, 9.0));  // worse than the old 7.0, but fresh
    EXPECT_EQ(store.row(r)[2], 9.0);
}

TEST(DistanceStore, EpochWrapSurvivesInterleavedInvalidation) {
    // Satellite regression for the fully-dynamic path: mark_invalidated
    // shares the 8-bit epoch machinery with relax(), so interleave raises
    // through several full 255-drain cycles and check that (a) no mark is
    // ever lost to a stale stamp aliasing the live epoch and (b) the
    // invalidate-then-relearn sequence drains exactly once per cycle.
    DistanceStore store(8);
    const LocalId r = store.add_row(0);
    (void)store.take_prop(r);
    (void)store.take_send(r);
    double value = 2000.0;
    for (int cycle = 0; cycle < 600; ++cycle) {
        const VertexId col = 1 + static_cast<VertexId>(cycle % 7);
        value -= 1.0;
        if (cycle % 3 == 0) {
            // Raise an entry that was finite in some earlier cycle (or is
            // still fresh-infinite: idempotent) and re-learn it worse —
            // legal after invalidation, impossible under pure relax().
            store.mark_invalidated(r, col);
            ASSERT_TRUE(store.relax(r, col, value + 0.5));
        } else {
            ASSERT_TRUE(store.relax(r, col, value));
        }
        const auto prop = store.take_prop(r);
        ASSERT_EQ(prop.size(), 1u) << "cycle " << cycle;
        EXPECT_EQ(prop[0], col);
        const auto send = store.take_send(r);
        ASSERT_EQ(send.size(), 1u) << "cycle " << cycle;
        EXPECT_EQ(send[0], col);
        EXPECT_FALSE(store.has_prop(r));
        EXPECT_FALSE(store.has_send(r));
    }
}

TEST(DistanceStore, RelaxBatchSoaMatchesRelaxLoop) {
    // relax_batch_soa (the v2 ingest kernel: strictly-ascending column span
    // plus a parallel distance span) must match per-column relax() exactly —
    // values, improved count, and dirty-append order — with the SIMD sweep
    // both enabled and disabled.
    for (const bool simd : {true, false}) {
        Rng rng(4242);
        for (int round = 0; round < 20; ++round) {
            DistanceStore a(128);
            DistanceStore b(128);
            b.set_simd_enabled(simd);
            const LocalId ra = a.add_row(0);
            const LocalId rb = b.add_row(0);
            // Strictly-ascending columns with random gaps; pre-populate a
            // third of them so the sweep sees a mix of improvements,
            // rejections, and epsilon-window near-ties.
            std::vector<VertexId> cols;
            std::vector<Weight> dists;
            for (VertexId c = static_cast<VertexId>(rng.uniform(3)); c < 128;
                 c += 1 + static_cast<VertexId>(rng.uniform(4))) {
                cols.push_back(c);
                dists.push_back(rng.uniform(0.0, 10.0));
            }
            for (std::size_t i = 0; i < cols.size(); i += 3) {
                const Weight w = rng.uniform(0.0, 12.0);
                a.relax(ra, cols[i], w);
                b.relax(rb, cols[i], w);
            }
            (void)a.take_prop(ra);
            (void)a.take_send(ra);
            (void)b.take_prop(rb);
            (void)b.take_send(rb);
            const Weight offset = rng.uniform(0.0, 2.0);
            std::size_t improved_loop = 0;
            for (std::size_t i = 0; i < cols.size(); ++i) {
                improved_loop +=
                    a.relax(ra, cols[i], offset + dists[i]) ? 1 : 0;
            }
            const std::size_t improved_batch =
                b.relax_batch_soa(rb, cols, dists, offset);
            EXPECT_EQ(improved_loop, improved_batch) << "simd " << simd;
            for (VertexId c = 0; c < 128; ++c) {
                EXPECT_EQ(a.at(ra, c), b.at(rb, c))
                    << "col " << c << " simd " << simd;
            }
            // Ascending input columns make the loop's append order
            // deterministic, so the batch must reproduce it exactly.
            const auto pa = a.take_prop(ra);
            const auto pb = b.take_prop(rb);
            ASSERT_EQ(pa.size(), pb.size());
            EXPECT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin()));
            const auto sa = a.take_send(ra);
            const auto sb = b.take_send(rb);
            ASSERT_EQ(sa.size(), sb.size());
            EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin()));
        }
    }
}

TEST(DistanceStore, TakeSpanSurvivesOtherRowActivity) {
    // The drained span stays valid while *other* rows are relaxed and drained
    // (the propagate kernel depends on this: it holds row u's drained columns
    // while batch-relaxing into u's neighbours).
    DistanceStore store(6);
    const LocalId u = store.add_row(0);
    const LocalId v = store.add_row(1);
    store.relax(u, 2, 5.0);
    store.relax(u, 3, 6.0);
    const auto cols = store.take_prop(u);
    ASSERT_EQ(cols.size(), 2u);
    store.relax(v, 2, 7.0);
    store.relax(u, 4, 1.0);  // new marks on u itself do not invalidate either
    (void)store.take_prop(v);
    EXPECT_EQ(cols[0], 2u);
    EXPECT_EQ(cols[1], 3u);
}

TEST(DistanceStore, EpsilonGuardsFloatNoise) {
    DistanceStore store(2);
    const LocalId r = store.add_row(0);
    store.relax(r, 1, 1.0);
    (void)store.take_send(r);
    // A candidate smaller by less than epsilon must be ignored (no dirty
    // churn from floating-point noise).
    EXPECT_FALSE(store.relax(r, 1, 1.0 - 1e-15));
    EXPECT_FALSE(store.has_send(r));
}

}  // namespace
}  // namespace aa
