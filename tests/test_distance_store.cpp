#include <gtest/gtest.h>

#include "core/distance_store.hpp"

namespace aa {
namespace {

TEST(DistanceStore, FreshRowIsInfExceptSelf) {
    DistanceStore store(4);
    const LocalId r = store.add_row(2);
    EXPECT_EQ(store.at(r, 2), 0.0);
    for (VertexId c : {0u, 1u, 3u}) {
        EXPECT_GE(store.at(r, c), kInfinity);
    }
    EXPECT_FALSE(store.has_prop(r));
    EXPECT_FALSE(store.has_send(r));
}

TEST(DistanceStore, RelaxImprovesAndMarks) {
    DistanceStore store(3);
    const LocalId r = store.add_row(0);
    EXPECT_TRUE(store.relax(r, 1, 5.0));
    EXPECT_EQ(store.at(r, 1), 5.0);
    EXPECT_TRUE(store.has_prop(r));
    EXPECT_TRUE(store.has_send(r));
    // Worse or equal candidates are rejected.
    EXPECT_FALSE(store.relax(r, 1, 5.0));
    EXPECT_FALSE(store.relax(r, 1, 6.0));
    EXPECT_TRUE(store.relax(r, 1, 4.0));
    EXPECT_EQ(store.at(r, 1), 4.0);
}

TEST(DistanceStore, MarkFlagsControlLists) {
    DistanceStore store(3);
    const LocalId r = store.add_row(0);
    store.relax(r, 1, 2.0, /*mark_prop=*/false, /*mark_send=*/true);
    EXPECT_FALSE(store.has_prop(r));
    EXPECT_TRUE(store.has_send(r));
    store.relax(r, 2, 3.0, /*mark_prop=*/true, /*mark_send=*/false);
    EXPECT_TRUE(store.has_prop(r));
}

TEST(DistanceStore, TakeDrainsAndDeduplicates) {
    DistanceStore store(5);
    const LocalId r = store.add_row(0);
    store.relax(r, 1, 5.0);
    store.relax(r, 1, 4.0);  // same column twice
    store.relax(r, 2, 7.0);
    const auto cols = store.take_send(r);
    EXPECT_EQ(cols.size(), 2u);
    EXPECT_FALSE(store.has_send(r));
    // After draining, a further improvement re-marks.
    store.relax(r, 1, 3.0);
    EXPECT_TRUE(store.has_send(r));
    EXPECT_EQ(store.take_send(r).size(), 1u);
}

TEST(DistanceStore, GrowColumnsPreservesValues) {
    DistanceStore store(2);
    const LocalId r = store.add_row(0);
    store.relax(r, 1, 2.0);
    store.grow_columns(5);
    EXPECT_EQ(store.num_columns(), 5u);
    EXPECT_EQ(store.at(r, 1), 2.0);
    EXPECT_GE(store.at(r, 4), kInfinity);
    EXPECT_TRUE(store.relax(r, 4, 1.0));
}

TEST(DistanceStore, MarkRowForSendCollectsFinite) {
    DistanceStore store(4);
    const LocalId r = store.add_row(1);
    store.relax(r, 0, 3.0);
    (void)store.take_send(r);
    (void)store.take_prop(r);
    store.mark_row_for_send(r);
    const auto cols = store.take_send(r);
    // Finite entries: column 0 (3.0) and the self column 1 (0.0).
    EXPECT_EQ(cols.size(), 2u);
}

TEST(DistanceStore, MarkRowForPropCollectsFinite) {
    DistanceStore store(4);
    const LocalId r = store.add_row(0);
    store.relax(r, 2, 1.0);
    (void)store.take_prop(r);
    store.mark_row_for_prop(r);
    EXPECT_EQ(store.take_prop(r).size(), 2u);  // self + column 2
}

TEST(DistanceStore, ExtractAndInstallRow) {
    DistanceStore store(3);
    const LocalId r = store.add_row(1);
    store.relax(r, 0, 4.0);
    auto values = store.extract_row(r);
    EXPECT_EQ(values[0], 4.0);
    EXPECT_EQ(values[1], 0.0);
    // Extracted row resets to fresh state.
    EXPECT_GE(store.at(r, 0), kInfinity);
    EXPECT_EQ(store.at(r, 1), 0.0);
    EXPECT_FALSE(store.has_send(r));
    store.install_row(r, std::move(values));
    EXPECT_EQ(store.at(r, 0), 4.0);
}

TEST(DistanceStore, FiniteEntries) {
    DistanceStore store(4);
    const LocalId r = store.add_row(3);
    store.relax(r, 1, 2.5);
    const auto entries = store.finite_entries(r);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].column, 1u);
    EXPECT_EQ(entries[0].distance, 2.5);
    EXPECT_EQ(entries[1].column, 3u);
    EXPECT_EQ(entries[1].distance, 0.0);
}

TEST(DistanceStore, PendingQueries) {
    DistanceStore store(3);
    const LocalId a = store.add_row(0);
    const LocalId b = store.add_row(1);
    EXPECT_FALSE(store.any_send_pending());
    store.relax(b, 2, 1.0);
    EXPECT_TRUE(store.any_send_pending());
    EXPECT_TRUE(store.any_prop_pending());
    (void)store.take_send(b);
    (void)store.take_prop(b);
    (void)a;
    EXPECT_FALSE(store.any_send_pending());
    EXPECT_FALSE(store.any_prop_pending());
}

TEST(DistanceStore, EpsilonGuardsFloatNoise) {
    DistanceStore store(2);
    const LocalId r = store.add_row(0);
    store.relax(r, 1, 1.0);
    (void)store.take_send(r);
    // A candidate smaller by less than epsilon must be ignored (no dirty
    // churn from floating-point noise).
    EXPECT_FALSE(store.relax(r, 1, 1.0 - 1e-15));
    EXPECT_FALSE(store.has_send(r));
}

}  // namespace
}  // namespace aa
