#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/generators.hpp"
#include "measures/betweenness.hpp"
#include "measures/degree.hpp"

namespace aa {
namespace {

TEST(ExactBetweenness, PathGraph) {
    // Path 0-1-2-3-4: betweenness of vertex i = (i+1 choose pairs through it).
    DynamicGraph g(5);
    for (VertexId v = 0; v + 1 < 5; ++v) {
        g.add_edge(v, v + 1);
    }
    const auto scores = exact_betweenness(g);
    EXPECT_NEAR(scores[0], 0.0, 1e-9);
    EXPECT_NEAR(scores[1], 3.0, 1e-9);  // pairs (0,2),(0,3),(0,4)
    EXPECT_NEAR(scores[2], 4.0, 1e-9);  // (0,3),(0,4),(1,3),(1,4)
    EXPECT_NEAR(scores[3], 3.0, 1e-9);
    EXPECT_NEAR(scores[4], 0.0, 1e-9);
}

TEST(ExactBetweenness, StarCenter) {
    // Star with k leaves: center carries every leaf pair = k(k-1)/2.
    DynamicGraph g(6);
    for (VertexId v = 1; v < 6; ++v) {
        g.add_edge(0, v);
    }
    const auto scores = exact_betweenness(g);
    EXPECT_NEAR(scores[0], 10.0, 1e-9);
    for (VertexId v = 1; v < 6; ++v) {
        EXPECT_NEAR(scores[v], 0.0, 1e-9);
    }
}

TEST(ExactBetweenness, EqualPathsSplitCredit) {
    // Square 0-1-2-3-0: the pair (0,2) has two shortest paths (via 1 and 3),
    // each carrying half a unit; same for (1,3).
    DynamicGraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    g.add_edge(3, 0);
    const auto scores = exact_betweenness(g);
    for (VertexId v = 0; v < 4; ++v) {
        EXPECT_NEAR(scores[v], 0.5, 1e-9);
    }
}

TEST(ExactBetweenness, WeightsChangeRouting) {
    // Triangle with one heavy edge: traffic between its endpoints detours.
    DynamicGraph g(3);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    g.add_edge(0, 2, 10.0);
    const auto scores = exact_betweenness(g);
    EXPECT_NEAR(scores[1], 1.0, 1e-9);  // carries the (0,2) pair
    EXPECT_NEAR(scores[0], 0.0, 1e-9);
    EXPECT_NEAR(scores[2], 0.0, 1e-9);
}

TEST(ExactBetweenness, CliqueIsZero) {
    DynamicGraph g(5);
    for (VertexId u = 0; u < 5; ++u) {
        for (VertexId v = u + 1; v < 5; ++v) {
            g.add_edge(u, v);
        }
    }
    for (const double s : exact_betweenness(g)) {
        EXPECT_NEAR(s, 0.0, 1e-9);
    }
}

TEST(ApproxBetweenness, AllPivotsIsExact) {
    Rng gen_rng(1);
    const auto g = barabasi_albert(60, 2, gen_rng);
    const auto exact = exact_betweenness(g);
    Rng rng(2);
    const auto approx = approx_betweenness(g, 60, rng);
    for (std::size_t v = 0; v < 60; ++v) {
        EXPECT_NEAR(approx[v], exact[v], 1e-9);
    }
}

TEST(ApproxBetweenness, SampledEstimateTracksRanking) {
    Rng gen_rng(3);
    const auto g = barabasi_albert(150, 3, gen_rng);
    const auto exact = exact_betweenness(g);
    Rng rng(4);
    const auto approx = approx_betweenness(g, 50, rng);
    // The top exact vertex should rank near the top of the estimate.
    const auto top_exact = static_cast<std::size_t>(
        std::max_element(exact.begin(), exact.end()) - exact.begin());
    std::size_t better = 0;
    for (std::size_t v = 0; v < approx.size(); ++v) {
        better += approx[v] > approx[top_exact];
    }
    EXPECT_LT(better, 5u);
}

TEST(BetweennessEngine, ExactWhenAllPivotsProcessed) {
    Rng gen_rng(5);
    const auto g = barabasi_albert(80, 2, gen_rng);
    EngineConfig config;
    config.num_ranks = 4;
    config.seed = 6;
    BetweennessEngine engine(g, config);
    engine.initialize();
    while (!engine.exact()) {
        engine.refine(16);
    }
    const auto exact = exact_betweenness(g);
    const auto scores = engine.scores();
    for (std::size_t v = 0; v < 80; ++v) {
        EXPECT_NEAR(scores[v], exact[v], 1e-9);
    }
}

TEST(BetweennessEngine, AnytimeRefinementChargesTime) {
    Rng gen_rng(7);
    const auto g = barabasi_albert(100, 2, gen_rng);
    EngineConfig config;
    config.num_ranks = 4;
    config.seed = 8;
    BetweennessEngine engine(g, config);
    engine.initialize();
    const double t0 = engine.sim_seconds();
    EXPECT_EQ(engine.refine(10), 10u);
    const double t1 = engine.sim_seconds();
    EXPECT_GT(t1, t0);
    EXPECT_EQ(engine.pivots_processed(), 10u);
    EXPECT_FALSE(engine.exact());
    // Refining beyond n caps at n.
    EXPECT_EQ(engine.refine(1000), 90u);
    EXPECT_TRUE(engine.exact());
}

TEST(Degree, BasicProperties) {
    DynamicGraph g(5);
    for (VertexId v = 1; v < 5; ++v) {
        g.add_edge(0, v, 2.0);
    }
    EXPECT_EQ(degree_centrality(g)[0], 4u);
    EXPECT_EQ(degree_centrality(g)[1], 1u);
    EXPECT_NEAR(normalized_degree_centrality(g)[0], 1.0, 1e-12);
    EXPECT_NEAR(strength_centrality(g)[0], 8.0, 1e-12);
    EXPECT_EQ(degree_ranking(g)[0], 0u);
    // A star maximizes Freeman centralization.
    EXPECT_NEAR(degree_centralization(g), 1.0, 1e-12);
}

TEST(Degree, RegularGraphZeroCentralization) {
    DynamicGraph g(6);
    for (VertexId v = 0; v < 6; ++v) {
        g.add_edge(v, (v + 1) % 6);
    }
    EXPECT_NEAR(degree_centralization(g), 0.0, 1e-12);
}

}  // namespace
}  // namespace aa
