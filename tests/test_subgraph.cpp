#include <gtest/gtest.h>

#include "core/subgraph.hpp"

namespace aa {
namespace {

// Ownership: rank 0 gets {0, 2}, rank 1 gets {1, 3}.
std::vector<RankId> owners4() { return {0, 1, 0, 1}; }

TEST(LocalSubgraph, AdoptsOwnedVerticesInOrder) {
    LocalSubgraph sg(0, owners4());
    EXPECT_EQ(sg.num_local(), 2u);
    EXPECT_EQ(sg.num_global(), 4u);
    EXPECT_EQ(sg.global_id(0), 0u);
    EXPECT_EQ(sg.global_id(1), 2u);
    EXPECT_EQ(sg.local_id(0), 0u);
    EXPECT_EQ(sg.local_id(2), 1u);
    EXPECT_TRUE(sg.owns(0));
    EXPECT_FALSE(sg.owns(1));
    EXPECT_EQ(sg.owner(3), 1u);
}

TEST(LocalSubgraph, LocalEdgeBothSides) {
    LocalSubgraph sg(0, owners4());
    sg.add_local_edge(0, 2, 1.5);  // both owned
    EXPECT_EQ(sg.neighbors(sg.local_id(0)).size(), 1u);
    EXPECT_EQ(sg.neighbors(sg.local_id(2)).size(), 1u);
    EXPECT_TRUE(sg.external_neighbors(0).empty());
    EXPECT_FALSE(sg.is_boundary(sg.local_id(0)));
}

TEST(LocalSubgraph, CutEdgeTracksExternal) {
    LocalSubgraph sg(0, owners4());
    sg.add_local_edge(0, 1, 2.0);  // 1 owned by rank 1
    const LocalId l0 = sg.local_id(0);
    EXPECT_TRUE(sg.is_boundary(l0));
    const auto ext = sg.external_neighbors(1);
    ASSERT_EQ(ext.size(), 1u);
    EXPECT_EQ(ext[0].first, l0);
    EXPECT_EQ(ext[0].second, 2.0);
    EXPECT_EQ(sg.neighbor_ranks(l0), std::vector<RankId>{1});
    EXPECT_EQ(sg.external_boundary(), std::vector<VertexId>{1});
}

TEST(LocalSubgraph, NeighborRanksDeduplicated) {
    // Rank 0 owns 0; vertices 1..3 owned by ranks 1, 1, 2.
    LocalSubgraph sg(0, {0, 1, 1, 2});
    sg.add_local_edge(0, 1, 1.0);
    sg.add_local_edge(0, 2, 1.0);
    sg.add_local_edge(0, 3, 1.0);
    const auto ranks = sg.neighbor_ranks(sg.local_id(0));
    EXPECT_EQ(ranks, (std::vector<RankId>{1, 2}));
}

TEST(LocalSubgraph, ExtendOwnershipAdoptsNewVertices) {
    LocalSubgraph sg(1, owners4());
    const std::vector<RankId> new_owners{1, 0, 1};
    sg.extend_ownership(new_owners);
    EXPECT_EQ(sg.num_global(), 7u);
    EXPECT_EQ(sg.num_local(), 4u);  // 1, 3, 4, 6
    EXPECT_TRUE(sg.owns(4));
    EXPECT_FALSE(sg.owns(5));
    EXPECT_TRUE(sg.owns(6));
    EXPECT_EQ(sg.global_id(2), 4u);
    EXPECT_EQ(sg.global_id(3), 6u);
}

TEST(LocalSubgraph, ResetOwnershipClearsState) {
    LocalSubgraph sg(0, owners4());
    sg.add_local_edge(0, 1, 1.0);
    sg.reset_ownership({1, 1, 1, 0});
    EXPECT_EQ(sg.num_local(), 0u);  // caller must re-adopt
    EXPECT_TRUE(sg.external_neighbors(1).empty());
    sg.adopt(3);
    EXPECT_EQ(sg.num_local(), 1u);
    EXPECT_EQ(sg.local_id(3), 0u);
}

TEST(LocalSubgraph, ExternalBoundarySorted) {
    LocalSubgraph sg(0, {0, 1, 1, 1, 0});
    sg.add_local_edge(0, 3, 1.0);
    sg.add_local_edge(0, 1, 1.0);
    sg.add_local_edge(4, 2, 1.0);
    EXPECT_EQ(sg.external_boundary(), (std::vector<VertexId>{1, 2, 3}));
}

}  // namespace
}  // namespace aa
