#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "partition/simple.hpp"

namespace aa {
namespace {

std::size_t max_size_gap(const std::vector<std::size_t>& sizes) {
    const auto [lo, hi] = std::minmax_element(sizes.begin(), sizes.end());
    return *hi - *lo;
}

TEST(BlockPartition, ContiguousAndBalanced) {
    const auto p = block_partition(10, 3);
    EXPECT_TRUE(p.valid());
    EXPECT_EQ(p.assignment.size(), 10u);
    // Non-decreasing part ids.
    EXPECT_TRUE(std::is_sorted(p.assignment.begin(), p.assignment.end()));
    DynamicGraph g(10);
    const auto q = evaluate_partition(g, p);
    EXPECT_LE(max_size_gap(q.part_sizes), 1u);
}

TEST(RoundRobinPartition, PerfectBalance) {
    const auto p = round_robin_partition(11, 4);
    DynamicGraph g(11);
    const auto q = evaluate_partition(g, p);
    EXPECT_LE(max_size_gap(q.part_sizes), 1u);
    EXPECT_EQ(p.assignment[0], 0u);
    EXPECT_EQ(p.assignment[4], 0u);
    EXPECT_EQ(p.assignment[5], 1u);
}

TEST(RoundRobinPartition, OffsetRotates) {
    const auto p = round_robin_partition(6, 3, 2);
    EXPECT_EQ(p.assignment[0], 2u);
    EXPECT_EQ(p.assignment[1], 0u);
}

TEST(RandomPartition, CoversAllParts) {
    Rng rng(1);
    const auto p = random_partition(1000, 8, rng);
    EXPECT_TRUE(p.valid());
    DynamicGraph g(1000);
    const auto q = evaluate_partition(g, p);
    for (const std::size_t s : q.part_sizes) {
        EXPECT_GT(s, 0u);
    }
}

TEST(BfsPartition, AssignsEveryVertex) {
    Rng gen_rng(2);
    const auto g = barabasi_albert(300, 2, gen_rng);
    Rng rng(3);
    const auto p = bfs_partition(g, 4, rng);
    EXPECT_TRUE(p.valid());
    EXPECT_EQ(p.assignment.size(), 300u);
    const auto q = evaluate_partition(g, p);
    for (const std::size_t s : q.part_sizes) {
        EXPECT_GT(s, 0u);
    }
    EXPECT_LT(q.imbalance, 1.2);
}

TEST(BfsPartition, HandlesDisconnectedGraph) {
    DynamicGraph g(20);
    for (VertexId v = 0; v + 1 < 10; ++v) {
        g.add_edge(v, v + 1);
    }
    // vertices 10..19 isolated
    Rng rng(4);
    const auto p = bfs_partition(g, 3, rng);
    EXPECT_TRUE(p.valid());
    const auto q = evaluate_partition(g, p);
    EXPECT_LT(q.imbalance, 1.5);
}

TEST(BfsPartition, LocalityBeatsRandomOnCommunityGraph) {
    Rng gen_rng(5);
    const auto g = planted_partition(160, 4, 0.3, 0.01, gen_rng);
    Rng rng_a(6);
    Rng rng_b(7);
    const auto bfs = bfs_partition(g, 4, rng_a);
    const auto rnd = random_partition(160, 4, rng_b);
    EXPECT_LT(count_cut_edges(g, bfs), count_cut_edges(g, rnd));
}

TEST(PartitionQuality, CutEdgeAccounting) {
    DynamicGraph g(4);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    Partitioning p;
    p.num_parts = 2;
    p.assignment = {0, 0, 1, 1};
    const auto q = evaluate_partition(g, p);
    EXPECT_EQ(q.cut_edges, 1u);  // only edge 1-2 crosses
    EXPECT_EQ(q.cut_weight, 1.0);
    EXPECT_EQ(q.part_cut_edges[0], 1u);
    EXPECT_EQ(q.part_cut_edges[1], 1u);
    EXPECT_EQ(count_cut_edges(g, p), 1u);
}

TEST(PartitionQuality, ImbalanceMetric) {
    DynamicGraph g(4);
    Partitioning p;
    p.num_parts = 2;
    p.assignment = {0, 0, 0, 1};
    const auto q = evaluate_partition(g, p);
    EXPECT_NEAR(q.imbalance, 1.5, 1e-12);  // 3 / (4/2)
}

TEST(PartitionValidity, RejectsOutOfRange) {
    Partitioning p;
    p.num_parts = 2;
    p.assignment = {0, 1, 2};
    EXPECT_FALSE(p.valid());
}

}  // namespace
}  // namespace aa
