#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace aa {
namespace {

TEST(SnapIo, RoundTrip) {
    Rng rng(1);
    const auto g = barabasi_albert(50, 2, rng, WeightRange{1.0, 3.0});
    std::stringstream stream;
    write_snap_edge_list(g, stream);
    const auto back = read_snap_edge_list(stream);
    EXPECT_EQ(back.num_vertices(), g.num_vertices());
    EXPECT_EQ(back.num_edges(), g.num_edges());
    for (const Edge& e : g.edges()) {
        EXPECT_NEAR(back.edge_weight(e.u, e.v), e.weight, 1e-9);
    }
}

TEST(SnapIo, SkipsCommentsAndCompactsIds) {
    std::stringstream in(
        "# a SNAP-style comment\n"
        "% another comment style\n"
        "10 20\n"
        "20 30\n"
        "\n"
        "10 30\n");
    const auto g = read_snap_edge_list(in);
    EXPECT_EQ(g.num_vertices(), 3u);  // ids compacted to 0..2
    EXPECT_EQ(g.num_edges(), 3u);
}

TEST(SnapIo, OptionalWeightColumn) {
    std::stringstream in("0 1 2.5\n1 2\n");
    const auto g = read_snap_edge_list(in);
    EXPECT_EQ(g.edge_weight(0, 1), 2.5);
    EXPECT_EQ(g.edge_weight(1, 2), 1.0);
}

TEST(SnapIo, MalformedLineThrows) {
    std::stringstream in("0 1\nnot numbers\n");
    EXPECT_THROW(read_snap_edge_list(in), IoError);
}

TEST(SnapIo, NonPositiveWeightThrows) {
    std::stringstream in("0 1 -2\n");
    EXPECT_THROW(read_snap_edge_list(in), IoError);
}

TEST(SnapIo, MissingFileThrows) {
    EXPECT_THROW(read_snap_edge_list_file("/nonexistent/path/graph.txt"), IoError);
}

TEST(PajekIo, RoundTrip) {
    Rng rng(2);
    const auto g = erdos_renyi_gnm(30, 60, rng, WeightRange{1.0, 5.0});
    std::stringstream stream;
    write_pajek(g, stream);
    const auto back = read_pajek(stream);
    EXPECT_EQ(back.num_vertices(), g.num_vertices());
    EXPECT_EQ(back.num_edges(), g.num_edges());
    for (const Edge& e : g.edges()) {
        EXPECT_NEAR(back.edge_weight(e.u, e.v), e.weight, 1e-9);
    }
}

TEST(PajekIo, ParsesVertexLabelsSection) {
    std::stringstream in(
        "*Vertices 3\n"
        "1 \"alpha\"\n"
        "2 \"beta\"\n"
        "3 \"gamma\"\n"
        "*Edges\n"
        "1 2 1.5\n"
        "2 3\n");
    const auto g = read_pajek(in);
    EXPECT_EQ(g.num_vertices(), 3u);
    EXPECT_EQ(g.num_edges(), 2u);
    EXPECT_EQ(g.edge_weight(0, 1), 1.5);
    EXPECT_EQ(g.edge_weight(1, 2), 1.0);
}

TEST(PajekIo, AcceptsArcsSection) {
    std::stringstream in("*Vertices 2\n*Arcs\n1 2 3.0\n");
    const auto g = read_pajek(in);
    EXPECT_EQ(g.edge_weight(0, 1), 3.0);
}

TEST(PajekIo, IsolatedVerticesPreserved) {
    std::stringstream in("*Vertices 5\n*Edges\n1 2\n");
    const auto g = read_pajek(in);
    EXPECT_EQ(g.num_vertices(), 5u);
    EXPECT_EQ(g.degree(4), 0u);
}

TEST(PajekIo, OutOfRangeEndpointThrows) {
    std::stringstream in("*Vertices 2\n*Edges\n1 5\n");
    EXPECT_THROW(read_pajek(in), IoError);
}

TEST(PajekIo, MissingHeaderThrows) {
    std::stringstream in("*Edges\n1 2\n");
    EXPECT_THROW(read_pajek(in), IoError);
}

TEST(MetisIo, RoundTrip) {
    Rng rng(4);
    const auto g = barabasi_albert(40, 2, rng, WeightRange{1.0, 5.0});
    std::stringstream stream;
    write_metis(g, stream);
    const auto back = read_metis(stream);
    EXPECT_EQ(back.num_vertices(), g.num_vertices());
    EXPECT_EQ(back.num_edges(), g.num_edges());
    for (const Edge& e : g.edges()) {
        EXPECT_NEAR(back.edge_weight(e.u, e.v), e.weight, 1e-9);
    }
}

TEST(MetisIo, UnweightedFormat) {
    std::stringstream in(
        "% a comment\n"
        "4 3 0\n"
        "2\n"
        "1 3\n"
        "2 4\n"
        "3\n");
    const auto g = read_metis(in);
    EXPECT_EQ(g.num_vertices(), 4u);
    EXPECT_EQ(g.num_edges(), 3u);
    EXPECT_EQ(g.edge_weight(0, 1), 1.0);
}

TEST(MetisIo, WeightedFormat) {
    std::stringstream in(
        "3 2 1\n"
        "2 1.5\n"
        "1 1.5 3 2.5\n"
        "2 2.5\n");
    const auto g = read_metis(in);
    EXPECT_EQ(g.edge_weight(0, 1), 1.5);
    EXPECT_EQ(g.edge_weight(1, 2), 2.5);
}

TEST(MetisIo, IsolatedVertexEmptyLine) {
    std::stringstream in("3 1 0\n2\n1\n\n");
    const auto g = read_metis(in);
    EXPECT_EQ(g.num_vertices(), 3u);
    EXPECT_EQ(g.degree(2), 0u);
}

TEST(MetisIo, EdgeCountMismatchThrows) {
    std::stringstream in("3 5 0\n2\n1\n\n");
    EXPECT_THROW(read_metis(in), IoError);
}

TEST(MetisIo, MissingHeaderThrows) {
    std::stringstream in("");
    EXPECT_THROW(read_metis(in), IoError);
}

TEST(MetisIo, TruncatedFileThrows) {
    std::stringstream in("4 3 0\n2\n1 3\n");
    EXPECT_THROW(read_metis(in), IoError);
}

TEST(MetisIo, OutOfRangeNeighborThrows) {
    std::stringstream in("2 1 0\n9\n\n");
    EXPECT_THROW(read_metis(in), IoError);
}

TEST(FileIo, RoundTripThroughDisk) {
    Rng rng(3);
    const auto g = barabasi_albert(40, 2, rng);
    const std::string path = testing::TempDir() + "/aa_test_graph.txt";
    write_snap_edge_list_file(g, path);
    const auto back = read_snap_edge_list_file(path);
    EXPECT_EQ(back.num_edges(), g.num_edges());
}

}  // namespace
}  // namespace aa
