#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace aa {
namespace {

TEST(BarabasiAlbert, SizeAndConnectivity) {
    Rng rng(1);
    const auto g = barabasi_albert(200, 3, rng);
    EXPECT_EQ(g.num_vertices(), 200u);
    EXPECT_TRUE(is_connected(g));
    // Each non-seed vertex adds exactly m edges.
    EXPECT_GE(g.num_edges(), (200 - 4) * 3u);
}

TEST(BarabasiAlbert, ScaleFreeTail) {
    Rng rng(2);
    const auto g = barabasi_albert(2000, 2, rng);
    // Preferential attachment yields gamma ~ 3; accept a generous band.
    const double gamma = power_law_exponent_mle(g, 3);
    EXPECT_GT(gamma, 1.8);
    EXPECT_LT(gamma, 4.5);
    // Hubs exist: max degree far above the mean.
    const auto hist = degree_histogram(g);
    EXPECT_GT(hist.size(), 20u);
}

TEST(BarabasiAlbert, Deterministic) {
    Rng a(42);
    Rng b(42);
    const auto g1 = barabasi_albert(100, 2, a);
    const auto g2 = barabasi_albert(100, 2, b);
    EXPECT_EQ(g1.edges().size(), g2.edges().size());
    EXPECT_EQ(g1.edges(), g2.edges());
}

TEST(ErdosRenyi, ExactEdgeCount) {
    Rng rng(3);
    const auto g = erdos_renyi_gnm(50, 200, rng);
    EXPECT_EQ(g.num_vertices(), 50u);
    EXPECT_EQ(g.num_edges(), 200u);
}

TEST(ErdosRenyi, WeightsInRange) {
    Rng rng(4);
    const auto g = erdos_renyi_gnm(30, 100, rng, WeightRange{2.0, 5.0});
    for (const Edge& e : g.edges()) {
        EXPECT_GE(e.weight, 2.0);
        EXPECT_LT(e.weight, 5.0);
    }
}

TEST(WattsStrogatz, LatticeWhenBetaZero) {
    Rng rng(5);
    const auto g = watts_strogatz(20, 2, 0.0, rng);
    EXPECT_EQ(g.num_edges(), 40u);  // n * k
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(0, 2));
    EXPECT_TRUE(g.has_edge(19, 0));
}

TEST(WattsStrogatz, RewiringChangesStructure) {
    Rng rng(6);
    const auto g = watts_strogatz(200, 3, 0.5, rng);
    // With heavy rewiring, many lattice edges must be gone.
    std::size_t lattice_edges = 0;
    for (VertexId v = 0; v < 200; ++v) {
        for (std::size_t j = 1; j <= 3; ++j) {
            lattice_edges += g.has_edge(v, static_cast<VertexId>((v + j) % 200));
        }
    }
    EXPECT_LT(lattice_edges, 500u);
}

TEST(PlantedPartition, CommunityStructureDominates) {
    Rng rng(7);
    std::vector<std::uint32_t> membership;
    const auto g = planted_partition(120, 4, 0.4, 0.01, rng, &membership);
    ASSERT_EQ(membership.size(), 120u);
    std::size_t intra = 0;
    std::size_t inter = 0;
    for (const Edge& e : g.edges()) {
        (membership[e.u] == membership[e.v] ? intra : inter) += 1;
    }
    EXPECT_GT(intra, 5 * inter);
}

TEST(GrowBatch, ShapeAndIds) {
    Rng rng(8);
    GrowthConfig config;
    config.num_new = 30;
    config.communities = 3;
    config.intra_edges = 2;
    config.host_edges = 2;
    const auto batch = grow_batch(100, config, rng);
    EXPECT_EQ(batch.base_id, 100u);
    EXPECT_EQ(batch.num_new, 30u);
    EXPECT_EQ(batch.community.size(), 30u);
    for (const Edge& e : batch.edges) {
        const VertexId hi = std::max(e.u, e.v);
        const VertexId lo = std::min(e.u, e.v);
        EXPECT_GE(hi, 100u);   // at least one endpoint is new
        EXPECT_LT(hi, 130u);
        EXPECT_LT(lo, hi);
    }
    for (const auto c : batch.community) {
        EXPECT_LT(c, 3u);
    }
}

TEST(GrowBatch, EveryVertexHasHostAnchor) {
    Rng rng(9);
    GrowthConfig config;
    config.num_new = 25;
    config.host_edges = 2;
    const auto batch = grow_batch(50, config, rng);
    std::vector<int> anchors(25, 0);
    for (const Edge& e : batch.edges) {
        const bool u_new = e.u >= 50;
        const bool v_new = e.v >= 50;
        if (u_new != v_new) {
            anchors[(u_new ? e.u : e.v) - 50] += 1;
        }
    }
    for (int i = 0; i < 25; ++i) {
        EXPECT_GE(anchors[i], 1) << "vertex " << i;
    }
}

TEST(GrowBatch, NoDuplicateEdges) {
    Rng rng(10);
    GrowthConfig config;
    config.num_new = 40;
    config.intra_edges = 3;
    config.host_edges = 2;
    auto batch = grow_batch(80, config, rng);
    auto key = [](const Edge& e) {
        const auto [lo, hi] = std::minmax(e.u, e.v);
        return (static_cast<std::uint64_t>(lo) << 32) | hi;
    };
    std::vector<std::uint64_t> keys;
    for (const Edge& e : batch.edges) {
        keys.push_back(key(e));
    }
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(GrowBatch, IntraCommunityBias) {
    Rng rng(11);
    GrowthConfig config;
    config.num_new = 60;
    config.communities = 3;
    config.intra_edges = 3;
    config.host_edges = 1;
    config.noise = 0.0;
    const auto batch = grow_batch(100, config, rng);
    std::size_t intra = 0;
    std::size_t inter = 0;
    for (const Edge& e : batch.edges) {
        if (e.u >= 100 && e.v >= 100) {
            (batch.community[e.u - 100] == batch.community[e.v - 100] ? intra : inter) +=
                1;
        }
    }
    EXPECT_EQ(inter, 0u);  // noise 0: internal edges never cross communities
    EXPECT_GT(intra, 0u);
}

TEST(GrowBatch, ZeroVerticesIsEmpty) {
    Rng rng(12);
    GrowthConfig config;
    config.num_new = 0;
    const auto batch = grow_batch(10, config, rng);
    EXPECT_EQ(batch.num_new, 0u);
    EXPECT_TRUE(batch.edges.empty());
}

}  // namespace
}  // namespace aa
