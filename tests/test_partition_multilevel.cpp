// Multilevel partitioner: matching/coarsening invariants plus end-to-end
// quality, including a parameterized sweep over graph families and k.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "partition/coarsen.hpp"
#include "partition/matching.hpp"
#include "partition/initial.hpp"
#include "partition/multilevel.hpp"
#include "partition/refine.hpp"
#include "partition/simple.hpp"

namespace aa {
namespace {

TEST(HeavyEdgeMatching, SymmetricAndValid) {
    Rng gen_rng(1);
    const CsrGraph g{barabasi_albert(200, 3, gen_rng)};
    Rng rng(2);
    const auto match = heavy_edge_matching(g, rng);
    ASSERT_EQ(match.size(), 200u);
    for (VertexId v = 0; v < 200; ++v) {
        EXPECT_EQ(match[match[v]], v);  // involution
    }
    EXPECT_GT(matching_size(match), 50u);  // a dense graph matches most vertices
}

TEST(HeavyEdgeMatching, PrefersHeavyEdges) {
    // Path 2 -10- 0 -1- 1 -10- 3: whatever the visit order, the heavy-edge
    // rule must produce the pairs {0,2} and {1,3}.
    DynamicGraph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(0, 2, 10.0);
    g.add_edge(1, 3, 10.0);
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        Rng rng(seed);
        const auto match = heavy_edge_matching(CsrGraph{g}, rng);
        EXPECT_EQ(match[0], 2u) << "seed " << seed;
        EXPECT_EQ(match[1], 3u) << "seed " << seed;
    }
}

TEST(Coarsen, PreservesTotalVertexWeight) {
    Rng gen_rng(4);
    const CsrGraph g{barabasi_albert(300, 2, gen_rng)};
    Rng rng(5);
    const auto match = heavy_edge_matching(g, rng);
    const auto level = coarsen(g, match);
    EXPECT_NEAR(level.graph.total_vertex_weight(), g.total_vertex_weight(), 1e-9);
    EXPECT_LT(level.graph.num_vertices(), g.num_vertices());
    // Every fine vertex maps somewhere valid.
    for (const VertexId c : level.fine_to_coarse) {
        EXPECT_LT(c, level.graph.num_vertices());
    }
}

TEST(Coarsen, CutWeightInvariantUnderProjection) {
    // The cut of a coarse partition equals the cut of its projection.
    Rng gen_rng(6);
    const CsrGraph g{erdos_renyi_gnm(120, 400, gen_rng)};
    Rng rng(7);
    const auto match = heavy_edge_matching(g, rng);
    const auto level = coarsen(g, match);

    Rng prng(8);
    const auto coarse_p = greedy_growing_partition(level.graph, 3, prng);
    Partitioning fine_p;
    fine_p.num_parts = 3;
    fine_p.assignment.resize(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        fine_p.assignment[v] = coarse_p.assignment[level.fine_to_coarse[v]];
    }
    const auto coarse_q = evaluate_partition(level.graph, coarse_p);
    const auto fine_q = evaluate_partition(g, fine_p);
    EXPECT_NEAR(coarse_q.cut_weight, fine_q.cut_weight, 1e-9);
}

TEST(Refine, NeverWorsensCut) {
    Rng gen_rng(9);
    const CsrGraph g{barabasi_albert(250, 2, gen_rng)};
    Rng rng(10);
    auto p = random_partition(250, 4, rng);
    const auto before = evaluate_partition(g, p);
    const Weight gain = refine_partition(g, p);
    const auto after = evaluate_partition(g, p);
    EXPECT_GE(gain, 0.0);
    EXPECT_LE(after.cut_weight, before.cut_weight + 1e-9);
    EXPECT_NEAR(before.cut_weight - after.cut_weight, gain, 1e-6);
}

TEST(Refine, RespectsBalanceCeiling) {
    Rng gen_rng(11);
    const CsrGraph g{planted_partition(120, 2, 0.4, 0.02, gen_rng)};
    Rng rng(12);
    auto p = random_partition(120, 4, rng);
    RefineConfig config;
    config.balance_factor = 1.1;
    refine_partition(g, p, config);
    const auto q = evaluate_partition(g, p);
    EXPECT_LE(q.imbalance, 1.1 + 1e-9);
}

struct MultilevelCase {
    const char* name;
    std::uint32_t k;
};

class MultilevelSweep : public ::testing::TestWithParam<MultilevelCase> {};

TEST_P(MultilevelSweep, BalancedAndBetterThanRandom) {
    const auto param = GetParam();
    Rng gen_rng(13);
    DynamicGraph g;
    if (std::string_view(param.name) == "ba") {
        g = barabasi_albert(400, 2, gen_rng);
    } else if (std::string_view(param.name) == "community") {
        g = planted_partition(400, param.k, 0.1, 0.004, gen_rng);
    } else {
        g = watts_strogatz(400, 3, 0.1, gen_rng);
    }

    Rng rng(14);
    const auto p = multilevel_partition(g, param.k, rng);
    EXPECT_TRUE(p.valid());
    const auto q = evaluate_partition(g, p);
    EXPECT_LE(q.imbalance, 1.25);
    for (const std::size_t s : q.part_sizes) {
        EXPECT_GT(s, 0u);
    }

    Rng rrng(15);
    const auto rnd = random_partition(g.num_vertices(), param.k, rrng);
    const auto rq = evaluate_partition(g, rnd);
    EXPECT_LT(q.cut_edges, rq.cut_edges)
        << param.name << " k=" << param.k;
}

INSTANTIATE_TEST_SUITE_P(
    Families, MultilevelSweep,
    ::testing::Values(MultilevelCase{"ba", 2}, MultilevelCase{"ba", 4},
                      MultilevelCase{"ba", 8}, MultilevelCase{"ba", 16},
                      MultilevelCase{"community", 4},
                      MultilevelCase{"community", 8}, MultilevelCase{"ws", 4},
                      MultilevelCase{"ws", 8}),
    [](const ::testing::TestParamInfo<MultilevelCase>& info) {
        return std::string(info.param.name) + "_k" + std::to_string(info.param.k);
    });

TEST(Multilevel, SinglePartTrivial) {
    Rng gen_rng(16);
    const auto g = barabasi_albert(50, 2, gen_rng);
    Rng rng(17);
    const auto p = multilevel_partition(g, 1, rng);
    EXPECT_EQ(p.num_parts, 1u);
    EXPECT_TRUE(std::all_of(p.assignment.begin(), p.assignment.end(),
                            [](RankId r) { return r == 0; }));
}

TEST(Multilevel, RecoversPlantedCommunitiesWell) {
    // On a strongly separable graph, the cut should be close to the planted
    // inter-community edge count.
    Rng gen_rng(18);
    std::vector<std::uint32_t> truth;
    const auto g = planted_partition(200, 4, 0.3, 0.005, gen_rng, &truth);
    Partitioning planted;
    planted.num_parts = 4;
    planted.assignment = truth;
    const auto planted_cut = count_cut_edges(g, planted);

    Rng rng(19);
    const auto p = multilevel_partition(g, 4, rng);
    const auto cut = count_cut_edges(g, p);
    EXPECT_LE(cut, planted_cut * 2 + 10);
}

TEST(Multilevel, TinyGraphFewerVerticesThanParts) {
    DynamicGraph g(3);
    g.add_edge(0, 1);
    Rng rng(20);
    const auto p = multilevel_partition(g, 8, rng);
    EXPECT_TRUE(p.valid());
    EXPECT_EQ(p.assignment.size(), 3u);
}

TEST(Multilevel, StarGraphStallsGracefully) {
    // Heavy-edge matching on a star collapses almost nothing after the first
    // pair; the min_shrink guard must stop coarsening, not loop.
    DynamicGraph g(100);
    for (VertexId v = 1; v < 100; ++v) {
        g.add_edge(0, v);
    }
    Rng rng(21);
    const auto p = multilevel_partition(g, 4, rng);
    EXPECT_TRUE(p.valid());
    const auto q = evaluate_partition(g, p);
    EXPECT_LE(q.imbalance, 1.6);
}

}  // namespace
}  // namespace aa
