#include <gtest/gtest.h>

#include "common/metrics.hpp"
#include "runtime/cluster.hpp"

namespace aa {
namespace {

std::vector<std::byte> bytes(std::size_t n) { return std::vector<std::byte>(n); }

TEST(Cluster, ComputeChargesOnlyThatRank) {
    Cluster cluster(3);
    cluster.charge_compute(1, 1e6);
    EXPECT_EQ(cluster.time(0), 0.0);
    EXPECT_GT(cluster.time(1), 0.0);
    EXPECT_EQ(cluster.time(2), 0.0);
    EXPECT_EQ(cluster.rank_stats(1).ops, 1e6);
}

TEST(Cluster, ThreadsSpeedUpCompute) {
    Cluster cluster(2);
    cluster.charge_compute(0, 1e6, 1);
    cluster.charge_compute(1, 1e6, 4);
    EXPECT_NEAR(cluster.time(0), 4 * cluster.time(1), 1e-12);
}

TEST(Cluster, ExchangeDeliversAndSynchronizes) {
    Cluster cluster(3);
    cluster.charge_compute(0, 5e6);  // rank 0 is ahead
    cluster.send(0, 1, MessageTag::Control, bytes(64));
    cluster.send(2, 1, MessageTag::Control, bytes(64));
    EXPECT_TRUE(cluster.has_pending_messages());
    const double duration = cluster.exchange();
    EXPECT_GT(duration, 0.0);
    EXPECT_FALSE(cluster.has_pending_messages());
    // Barrier semantics: all clocks equal afterwards.
    EXPECT_EQ(cluster.time(0), cluster.time(1));
    EXPECT_EQ(cluster.time(1), cluster.time(2));
    EXPECT_EQ(cluster.receive(1).size(), 2u);
    EXPECT_TRUE(cluster.receive(0).empty());
}

TEST(Cluster, EmptyExchangeCostsNothingButSyncs) {
    Cluster cluster(2);
    cluster.charge_compute(0, 1e6);
    const double t0 = cluster.time(0);
    EXPECT_EQ(cluster.exchange(), 0.0);
    EXPECT_EQ(cluster.time(1), t0);  // pulled up to the barrier
}

TEST(Cluster, BroadcastReachesEveryoneElse) {
    Cluster cluster(4);
    const double duration =
        cluster.broadcast(2, MessageTag::Control, bytes(128));
    EXPECT_GT(duration, 0.0);
    for (RankId r = 0; r < 4; ++r) {
        const auto inbox = cluster.receive(r);
        if (r == 2) {
            EXPECT_TRUE(inbox.empty());
        } else {
            ASSERT_EQ(inbox.size(), 1u);
            EXPECT_EQ(inbox[0].from, 2u);
            EXPECT_EQ(inbox[0].bytes().size(), 128u);
        }
    }
}

TEST(Cluster, BroadcastOnSingleRankIsFree) {
    Cluster cluster(1);
    EXPECT_EQ(cluster.broadcast(0, MessageTag::Control, bytes(1024)), 0.0);
}

TEST(Cluster, BroadcastCostLogarithmicInRanks) {
    LogPParams params;
    Cluster c4(4, params);
    Cluster c16(16, params);
    const double t4 = c4.broadcast(0, MessageTag::Control, bytes(1 << 16));
    const double t16 = c16.broadcast(0, MessageTag::Control, bytes(1 << 16));
    EXPECT_NEAR(t16 / t4, 2.0, 1e-9);  // log2(16)/log2(4)
}

TEST(Cluster, StatsAccumulate) {
    Cluster cluster(2);
    cluster.send(0, 1, MessageTag::Control, bytes(100));
    cluster.exchange();
    cluster.broadcast(1, MessageTag::Control, bytes(50));
    const auto& stats = cluster.stats();
    EXPECT_EQ(stats.exchanges, 1u);
    EXPECT_EQ(stats.broadcasts, 1u);
    EXPECT_EQ(stats.total_messages, 2u);
    EXPECT_GT(stats.comm_seconds, 0.0);
    EXPECT_EQ(cluster.rank_stats(0).messages_sent, 1u);
    EXPECT_EQ(cluster.rank_stats(1).messages_sent, 1u);
}

TEST(Cluster, SerializedScheduleCostsMoreThanParallel) {
    const auto run = [&](CommSchedule schedule) {
        Cluster cluster(8, LogPParams{}, schedule);
        for (RankId i = 0; i < 8; ++i) {
            for (RankId j = 0; j < 8; ++j) {
                if (i != j) {
                    cluster.send(i, j, MessageTag::Control, bytes(4096));
                }
            }
        }
        return cluster.exchange();
    };
    EXPECT_GT(run(CommSchedule::SerializedAllToAll),
              run(CommSchedule::ParallelRounds));
}

TEST(Cluster, ResetClearsEverything) {
    Cluster cluster(2);
    cluster.charge_compute(0, 1e6);
    cluster.send(0, 1, MessageTag::Control, bytes(10));
    cluster.reset();
    EXPECT_EQ(cluster.max_time(), 0.0);
    EXPECT_FALSE(cluster.has_pending_messages());
    EXPECT_EQ(cluster.stats().total_messages, 0u);
    EXPECT_EQ(cluster.rank_stats(0).ops, 0.0);
}

TEST(Cluster, InFlightMessageVisibleOnExactlyOneSide) {
    // RankStats contract: sent-side counters advance at send() time, the
    // received side only at delivery — an in-flight message never double
    // counts and never vanishes.
    Cluster cluster(3);
    cluster.send(0, 2, MessageTag::Control, bytes(100));
    EXPECT_EQ(cluster.rank_stats(0).messages_sent, 1u);
    EXPECT_GT(cluster.rank_stats(0).bytes_sent, 100u);  // payload + envelope
    EXPECT_EQ(cluster.rank_stats(2).messages_received, 0u);
    EXPECT_EQ(cluster.rank_stats(2).bytes_received, 0u);
    // The cluster totals count the sent side, so the in-flight message is
    // already included.
    EXPECT_EQ(cluster.stats().total_messages, 1u);
    EXPECT_EQ(cluster.stats().total_bytes, cluster.rank_stats(0).bytes_sent);

    cluster.exchange();
    EXPECT_EQ(cluster.rank_stats(2).messages_received, 1u);
    EXPECT_EQ(cluster.rank_stats(2).bytes_received,
              cluster.rank_stats(0).bytes_sent);
    EXPECT_EQ(cluster.stats().total_messages, 1u);  // delivery adds nothing
}

TEST(Cluster, SentAndReceivedTotalsBalanceAfterDelivery) {
    Cluster cluster(4);
    for (RankId i = 0; i < 4; ++i) {
        for (RankId j = 0; j < 4; ++j) {
            if (i != j) {
                cluster.send(i, j, MessageTag::Control, bytes(32 + i));
            }
        }
    }
    cluster.exchange();
    std::size_t sent = 0, received = 0, bytes_sent = 0, bytes_received = 0;
    for (RankId r = 0; r < 4; ++r) {
        sent += cluster.rank_stats(r).messages_sent;
        received += cluster.rank_stats(r).messages_received;
        bytes_sent += cluster.rank_stats(r).bytes_sent;
        bytes_received += cluster.rank_stats(r).bytes_received;
    }
    EXPECT_EQ(sent, 12u);
    EXPECT_EQ(received, sent);
    EXPECT_EQ(bytes_received, bytes_sent);
    EXPECT_EQ(cluster.stats().total_messages, sent);
    EXPECT_EQ(cluster.stats().total_bytes, bytes_sent);
}

TEST(Cluster, FastForwardKeepsPendingMessagesAndStats) {
    // fast_forward is checkpoint restore: it jumps the clocks without
    // touching the mailboxes or the accounting.
    Cluster cluster(2);
    cluster.send(0, 1, MessageTag::Control, bytes(10));
    cluster.fast_forward(123.0);
    EXPECT_EQ(cluster.time(0), 123.0);
    EXPECT_EQ(cluster.time(1), 123.0);
    EXPECT_TRUE(cluster.has_pending_messages());
    EXPECT_EQ(cluster.stats().total_messages, 1u);
    // The buffered message is still deliverable afterwards.
    cluster.exchange();
    EXPECT_EQ(cluster.receive(1).size(), 1u);
    // fast_forward never rewinds a clock that is already ahead.
    cluster.fast_forward(1.0);
    EXPECT_GE(cluster.time(0), 123.0);
}

TEST(Cluster, ResetDropsPendingMessagesAndZeroesRankStats) {
    Cluster cluster(2);
    cluster.send(0, 1, MessageTag::Control, bytes(10));
    cluster.broadcast(0, MessageTag::Control, bytes(5));
    (void)cluster.receive(1);
    cluster.reset();
    EXPECT_FALSE(cluster.has_pending_messages());
    cluster.exchange();
    EXPECT_TRUE(cluster.receive(1).empty());  // the pending send is gone
    for (RankId r = 0; r < 2; ++r) {
        EXPECT_EQ(cluster.rank_stats(r).messages_sent, 0u);
        EXPECT_EQ(cluster.rank_stats(r).bytes_sent, 0u);
        EXPECT_EQ(cluster.rank_stats(r).messages_received, 0u);
        EXPECT_EQ(cluster.rank_stats(r).bytes_received, 0u);
        EXPECT_EQ(cluster.rank_stats(r).ops, 0.0);
        EXPECT_EQ(cluster.rank_stats(r).compute_seconds, 0.0);
    }
    EXPECT_EQ(cluster.stats().total_messages, 0u);
    EXPECT_EQ(cluster.stats().broadcasts, 0u);
}

TEST(Cluster, ResetLeavesAttachedMetricsUntouched) {
    // reset() rewinds the machine-scoped accounting; the attached registry is
    // experiment-scoped observability and intentionally survives (see the
    // reset() contract in cluster.hpp). A baseline restart keeps its full
    // pre-restart telemetry.
    MetricsRegistry metrics;
    metrics.enable();
    Cluster cluster(2);
    cluster.set_metrics(&metrics);
    cluster.send(0, 1, MessageTag::Control, bytes(64));
    cluster.exchange();
    const auto h = metrics.counter("exchange.count");
    ASSERT_EQ(metrics.value(h), 1.0);

    cluster.reset();
    EXPECT_EQ(metrics.value(h), 1.0);  // survived the reset

    // The registry stays attached: post-reset collectives keep feeding it.
    cluster.send(1, 0, MessageTag::Control, bytes(64));
    cluster.exchange();
    EXPECT_EQ(metrics.value(h), 2.0);
}

TEST(Cluster, BarrierPullsClocksTogether) {
    Cluster cluster(3);
    cluster.charge_compute(2, 1e7);
    cluster.barrier();
    EXPECT_EQ(cluster.time(0), cluster.time(2));
}

}  // namespace
}  // namespace aa
