// Wire-format equivalence at the engine level.
//
// The v2 SoA boundary-DV format (and its SIMD relaxation sweeps) is a pure
// transport/kernel optimization: for a fixed seed and config, switching
// EngineConfig::wire_format (and rc_simd) must leave every distance, the
// closeness scores, rc ops, and the full telemetry span stream bit-identical
// to the v1 AoS format with scalar kernels. Only the bytes-on-wire accounting
// is allowed to change — and it must change downward. The lattice below pins
// that across rank counts, both execution backends, and both graph
// generators, with a mid-RC vertex-addition batch in every run.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "runtime/backend.hpp"

namespace aa {
namespace {

struct RunResult {
    std::vector<std::vector<Weight>> matrix;
    ClosenessScores scores;
    double sim_seconds{0};
    std::size_t rc_steps{0};
    std::size_t total_bytes{0};
    std::size_t total_messages{0};
    std::vector<RcStepStats> steps;
    std::vector<MetricSpan> spans;
};

struct Scenario {
    std::uint32_t ranks{4};
    BackendKind backend{BackendKind::Sequential};
    bool planted{false};  // false: Barabási–Albert, true: planted partition
};

RunResult run_scenario(const Scenario& s, BoundaryWireFormat format,
                       bool simd) {
    Rng rng(555);
    DynamicGraph g = s.planted
                         ? planted_partition(70, 4, 0.2, 0.02, rng)
                         : barabasi_albert(80, 2, rng, WeightRange{1.0, 4.0});

    EngineConfig config;
    config.num_ranks = s.ranks;
    config.seed = 0xF0 + s.ranks;
    config.backend = s.backend;
    config.enable_metrics = true;
    config.wire_format = format;
    config.rc_simd = simd;

    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_rc_steps(2);

    // Mid-RC addition batch: the extend/broadcast/propagate loops re-enter
    // the post+ingest kernels with rows added between steps.
    GrowthConfig gc;
    gc.num_new = 6;
    gc.communities = 2;
    gc.intra_edges = 2;
    gc.host_edges = 2;
    Rng batch_rng(9001);
    const auto batch = grow_batch(g.num_vertices(), gc, batch_rng);
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();

    RunResult result;
    result.matrix = engine.full_distance_matrix();
    result.scores = engine.closeness();
    result.sim_seconds = engine.sim_seconds();
    result.rc_steps = engine.rc_steps_completed();
    result.total_bytes = engine.cluster().stats().total_bytes;
    result.total_messages = engine.cluster().stats().total_messages;
    result.steps = engine.step_history();
    result.spans = engine.metrics().spans();
    return result;
}

void expect_equivalent_modulo_bytes(const RunResult& v1, const RunResult& v2) {
    // EXPECT_EQ on doubles is exact comparison — bit-identical, not "close".
    EXPECT_EQ(v1.rc_steps, v2.rc_steps);
    ASSERT_EQ(v1.matrix.size(), v2.matrix.size());
    for (std::size_t v = 0; v < v1.matrix.size(); ++v) {
        ASSERT_EQ(v1.matrix[v], v2.matrix[v]) << "row " << v;
    }
    ASSERT_EQ(v1.scores.closeness, v2.scores.closeness);
    ASSERT_EQ(v1.scores.reachable, v2.scores.reachable);
    // Per-step relaxation work is priced identically across formats; message
    // counts match because the exchange fan-out is format-independent.
    ASSERT_EQ(v1.steps.size(), v2.steps.size());
    for (std::size_t i = 0; i < v1.steps.size(); ++i) {
        EXPECT_EQ(v1.steps[i].step, v2.steps[i].step);
        EXPECT_EQ(v1.steps[i].ops, v2.steps[i].ops) << "step " << i;
        EXPECT_EQ(v1.steps[i].messages, v2.steps[i].messages) << "step " << i;
    }
    EXPECT_EQ(v1.total_messages, v2.total_messages);
    // Telemetry spans: same names, ranks, steps, and op counts in the same
    // order. Span *times* are excluded here — exchange duration legitimately
    // shrinks with the payload (that is the point) — but the compute-side op
    // totals may not move at all.
    ASSERT_EQ(v1.spans.size(), v2.spans.size());
    for (std::size_t i = 0; i < v1.spans.size(); ++i) {
        const MetricSpan& a = v1.spans[i];
        const MetricSpan& b = v2.spans[i];
        EXPECT_EQ(a.name, b.name) << "span " << i;
        EXPECT_EQ(a.rank, b.rank) << "span " << i;
        EXPECT_EQ(a.step, b.step) << "span " << i;
        EXPECT_EQ(a.ops, b.ops) << "span " << i << " (" << a.name << ")";
    }
}

using Param = std::tuple<std::uint32_t /*ranks*/, BackendKind, bool /*planted*/>;

class WireFormatEquivalence : public ::testing::TestWithParam<Param> {};

TEST_P(WireFormatEquivalence, V2SimdMatchesV1ScalarBitIdentically) {
    const auto [ranks, backend, planted] = GetParam();
    const Scenario s{ranks, backend, planted};
    const RunResult v1 =
        run_scenario(s, BoundaryWireFormat::V1Aos, /*simd=*/false);
    const RunResult v2 =
        run_scenario(s, BoundaryWireFormat::V2Soa, /*simd=*/true);
    expect_equivalent_modulo_bytes(v1, v2);
    // The accounting change the formats are allowed to disagree on, in the
    // only direction allowed: v2 ships strictly fewer bytes, so under LogP
    // pricing the simulated clock can only improve.
    EXPECT_LT(v2.total_bytes, v1.total_bytes);
    EXPECT_LE(v2.sim_seconds, v1.sim_seconds);
    for (std::size_t i = 0; i < v1.steps.size(); ++i) {
        EXPECT_LE(v2.steps[i].bytes, v1.steps[i].bytes) << "step " << i;
    }
}

TEST_P(WireFormatEquivalence, SimdToggleIsInvisibleUnderV2) {
    // With the format held fixed, the SIMD sweeps must be a pure
    // implementation detail: everything including bytes and sim_seconds is
    // bit-identical with the kernels forced scalar.
    const auto [ranks, backend, planted] = GetParam();
    const Scenario s{ranks, backend, planted};
    const RunResult vec =
        run_scenario(s, BoundaryWireFormat::V2Soa, /*simd=*/true);
    const RunResult scalar =
        run_scenario(s, BoundaryWireFormat::V2Soa, /*simd=*/false);
    expect_equivalent_modulo_bytes(vec, scalar);
    EXPECT_EQ(vec.total_bytes, scalar.total_bytes);
    EXPECT_EQ(vec.sim_seconds, scalar.sim_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    Lattice, WireFormatEquivalence,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(BackendKind::Sequential,
                                         BackendKind::Threaded),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<Param>& p) {
        std::string name = "r";
        name += std::to_string(std::get<0>(p.param));
        name += std::get<1>(p.param) == BackendKind::Threaded ? "_threaded"
                                                              : "_seq";
        name += std::get<2>(p.param) ? "_planted" : "_ba";
        return name;
    });

}  // namespace
}  // namespace aa
