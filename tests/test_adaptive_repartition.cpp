// Adaptive repartitioning mode (extension): correctness and the
// fewer-migrations property.
#include <gtest/gtest.h>

#include "core/baseline.hpp"
#include "core/closeness.hpp"
#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

EngineConfig adaptive_config(std::uint32_t ranks) {
    EngineConfig config;
    config.num_ranks = ranks;
    config.ia_threads = 1;
    config.seed = 404;
    config.repartition_mode = RepartitionMode::Adaptive;
    return config;
}

GrowthBatch make_batch(std::size_t host, std::size_t count, std::uint64_t seed) {
    GrowthConfig gc;
    gc.num_new = count;
    gc.communities = 3;
    gc.intra_edges = 2;
    gc.host_edges = 2;
    Rng rng(seed);
    return grow_batch(host, gc, rng);
}

TEST(AdaptiveRepartition, ConvergesToExact) {
    Rng rng(1);
    const auto host = barabasi_albert(80, 2, rng);
    AnytimeEngine engine(host, adaptive_config(4));
    engine.initialize();
    engine.run_rc_steps(2);

    const auto batch = make_batch(80, 20, 11);
    RepartitionS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();

    const auto grown = apply_batch(host, batch);
    const auto exact = exact_apsp(grown);
    const auto matrix = engine.full_distance_matrix();
    for (std::size_t v = 0; v < exact.size(); ++v) {
        for (std::size_t t = 0; t < exact.size(); ++t) {
            if (exact[v][t] < kInfinity) {
                ASSERT_NEAR(matrix[v][t], exact[v][t], 1e-9);
            }
        }
    }
}

TEST(AdaptiveRepartition, MovesFewerVerticesThanScratch) {
    Rng rng(2);
    const auto host = barabasi_albert(150, 2, rng);
    const auto batch = make_batch(150, 30, 13);

    const auto moved_with = [&](RepartitionMode mode) {
        EngineConfig config = adaptive_config(4);
        config.repartition_mode = mode;
        AnytimeEngine engine(host, config);
        engine.initialize();
        engine.run_to_quiescence();
        const auto before = engine.owners();
        engine.repartition_add(batch);
        std::size_t moved = 0;
        for (std::size_t v = 0; v < before.size(); ++v) {
            moved += engine.owners()[v] != before[v];
        }
        return moved;
    };

    const std::size_t adaptive = moved_with(RepartitionMode::Adaptive);
    const std::size_t scratch = moved_with(RepartitionMode::Scratch);
    EXPECT_LT(adaptive, scratch);
    // Adaptive keeps the vast majority of vertices in place.
    EXPECT_LT(adaptive, host.num_vertices() / 3);
}

TEST(AdaptiveRepartition, KeepsReasonableBalance) {
    Rng rng(3);
    const auto host = barabasi_albert(120, 2, rng);
    AnytimeEngine engine(host, adaptive_config(4));
    engine.initialize();
    engine.run_to_quiescence();
    const auto batch = make_batch(120, 40, 17);
    engine.repartition_add(batch);

    std::vector<std::size_t> counts(4, 0);
    for (const RankId r : engine.owners()) {
        ++counts[r];
    }
    const std::size_t ideal = engine.owners().size() / 4;
    for (const std::size_t c : counts) {
        EXPECT_LT(c, ideal * 2);
        EXPECT_GT(c, ideal / 3);
    }
}

TEST(AdaptiveRepartition, BackToBackBatches) {
    Rng rng(4);
    auto host = barabasi_albert(60, 2, rng);
    AnytimeEngine engine(host, adaptive_config(3));
    engine.initialize();

    DynamicGraph expected = host;
    RepartitionS strategy;
    for (int i = 0; i < 3; ++i) {
        const auto batch = make_batch(expected.num_vertices(), 10, 30 + i);
        engine.apply_addition(batch, strategy);
        engine.run_rc_steps(1);
        expected = apply_batch(expected, batch);
    }
    engine.run_to_quiescence();
    const auto exact = exact_apsp(expected);
    const auto matrix = engine.full_distance_matrix();
    for (std::size_t v = 0; v < exact.size(); ++v) {
        for (std::size_t t = 0; t < exact.size(); ++t) {
            if (exact[v][t] < kInfinity) {
                ASSERT_NEAR(matrix[v][t], exact[v][t], 1e-9);
            }
        }
    }
}

}  // namespace
}  // namespace aa
