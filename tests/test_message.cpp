#include <gtest/gtest.h>

#include "core/distance_store.hpp"
#include "core/rc.hpp"
#include "runtime/message.hpp"

namespace aa {
namespace {

TEST(Serializer, ScalarRoundTrip) {
    Serializer out;
    out.write<std::uint32_t>(42);
    out.write<double>(3.5);
    out.write<std::uint8_t>(7);
    const auto buffer = out.take();
    Deserializer in(buffer);
    EXPECT_EQ(in.read<std::uint32_t>(), 42u);
    EXPECT_EQ(in.read<double>(), 3.5);
    EXPECT_EQ(in.read<std::uint8_t>(), 7);
    EXPECT_TRUE(in.exhausted());
}

TEST(Serializer, SpanRoundTrip) {
    const std::vector<double> values{1.0, 2.5, -3.0};
    Serializer out;
    out.write_span(std::span<const double>(values));
    const auto buffer = out.take();
    Deserializer in(buffer);
    EXPECT_EQ(in.read_vector<double>(), values);
}

TEST(Serializer, EmptySpan) {
    Serializer out;
    out.write_span(std::span<const int>{});
    const auto buffer = out.take();
    Deserializer in(buffer);
    EXPECT_TRUE(in.read_vector<int>().empty());
    EXPECT_TRUE(in.exhausted());
}

TEST(Serializer, TakeResets) {
    Serializer out;
    out.write<int>(1);
    EXPECT_GT(out.size(), 0u);
    (void)out.take();
    EXPECT_EQ(out.size(), 0u);
}

TEST(Deserializer, RemainingTracksCursor) {
    Serializer out;
    out.write<std::uint64_t>(1);
    out.write<std::uint64_t>(2);
    const auto buffer = out.take();
    Deserializer in(buffer);
    EXPECT_EQ(in.remaining(), 16u);
    in.read<std::uint64_t>();
    EXPECT_EQ(in.remaining(), 8u);
}

TEST(Message, SharedPayloadZeroCopy) {
    auto shared = Message::share(std::vector<std::byte>(256));
    Message a;
    a.payload = shared;
    Message b;
    b.payload = shared;
    EXPECT_EQ(a.bytes().data(), b.bytes().data());
    EXPECT_EQ(a.size_bytes(), 256u + 16);
}

TEST(Message, EmptyPayloadIsSafe) {
    Message m;
    EXPECT_TRUE(m.bytes().empty());
    EXPECT_EQ(m.size_bytes(), 16u);  // header only
}

TEST(BoundaryBlocks, RoundTrip) {
    std::vector<BoundaryBlock> blocks;
    blocks.push_back({7, {{1, 2.0}, {3, 4.5}}});
    blocks.push_back({9, {{0, 1.0}}});
    blocks.push_back({11, {}});
    const auto payload = encode_boundary_blocks(blocks);
    const auto back = decode_boundary_blocks(payload);
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back[0].vertex, 7u);
    ASSERT_EQ(back[0].entries.size(), 2u);
    EXPECT_EQ(back[0].entries[1].column, 3u);
    EXPECT_EQ(back[0].entries[1].distance, 4.5);
    EXPECT_EQ(back[1].vertex, 9u);
    EXPECT_TRUE(back[2].entries.empty());
}

TEST(BoundaryBlocks, EmptyPayload) {
    EXPECT_TRUE(decode_boundary_blocks({}).empty());
}

}  // namespace
}  // namespace aa
