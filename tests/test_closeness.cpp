#include <gtest/gtest.h>

#include "core/closeness.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

TEST(ExactSssp, PathGraph) {
    DynamicGraph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 2.0);
    g.add_edge(2, 3, 3.0);
    const auto dist = exact_sssp(g, 0);
    EXPECT_EQ(dist[0], 0.0);
    EXPECT_EQ(dist[1], 1.0);
    EXPECT_EQ(dist[2], 3.0);
    EXPECT_EQ(dist[3], 6.0);
}

TEST(ExactSssp, PrefersLighterLongerPath) {
    DynamicGraph g(3);
    g.add_edge(0, 2, 10.0);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    EXPECT_EQ(exact_sssp(g, 0)[2], 2.0);
}

TEST(ExactSssp, UnreachableIsInfinite) {
    DynamicGraph g(3);
    g.add_edge(0, 1);
    EXPECT_GE(exact_sssp(g, 0)[2], kInfinity);
}

TEST(ExactApsp, SymmetricOnUndirectedGraph) {
    Rng rng(1);
    const auto g = barabasi_albert(40, 2, rng, WeightRange{1.0, 4.0});
    const auto dist = exact_apsp(g);
    for (VertexId u = 0; u < 40; ++u) {
        for (VertexId v = 0; v < 40; ++v) {
            EXPECT_NEAR(dist[u][v], dist[v][u], 1e-9);
        }
    }
}

TEST(Closeness, StarCenterIsMostCentral) {
    DynamicGraph g(6);
    for (VertexId v = 1; v < 6; ++v) {
        g.add_edge(0, v);
    }
    const auto scores = exact_closeness(g);
    // Center: sum of distances = 5; connected, so corrected = (n-1)/sum = 1.
    EXPECT_NEAR(scores.closeness[0], 5.0 / 5.0, 1e-12);
    // Leaves: 1 + 4*2 = 9.
    EXPECT_NEAR(scores.closeness[1], 5.0 / 9.0, 1e-12);
    const auto ranking = closeness_ranking(scores);
    EXPECT_EQ(ranking[0], 0u);

    // Raw variant: the paper's plain inverse sums.
    const auto raw = exact_closeness(g, ClosenessVariant::Raw);
    EXPECT_NEAR(raw.closeness[0], 1.0 / 5.0, 1e-12);
    EXPECT_NEAR(raw.closeness[1], 1.0 / 9.0, 1e-12);
    // On a connected graph the two variants rank identically.
    EXPECT_EQ(closeness_ranking(raw), ranking);
}

TEST(Closeness, PathEndpointsLeastCentral) {
    DynamicGraph g(5);
    for (VertexId v = 0; v + 1 < 5; ++v) {
        g.add_edge(v, v + 1);
    }
    const auto scores = exact_closeness(g);
    const auto ranking = closeness_ranking(scores);
    EXPECT_EQ(ranking[0], 2u);  // middle vertex
    EXPECT_TRUE(ranking[3] == 0u || ranking[3] == 4u);
    EXPECT_TRUE(ranking[4] == 0u || ranking[4] == 4u);
}

TEST(Closeness, IsolatedVertexScoresZero) {
    DynamicGraph g(3);
    g.add_edge(0, 1);
    const auto scores = exact_closeness(g);
    EXPECT_EQ(scores.closeness[2], 0.0);
    EXPECT_EQ(scores.reachable[2], 1u);  // itself
}

TEST(Closeness, ReachableCounts) {
    DynamicGraph g(4);
    g.add_edge(0, 1);
    g.add_edge(2, 3);
    const auto scores = exact_closeness(g);
    EXPECT_EQ(scores.reachable[0], 2u);
    EXPECT_EQ(scores.reachable[2], 2u);
}

TEST(Closeness, FromMatrixHandlesInfinities) {
    const Weight inf = kInfinity;
    const std::vector<std::vector<Weight>> dist{
        {0, 1, inf},
        {1, 0, inf},
        {inf, inf, 0},
    };
    const auto scores = closeness_from_matrix(dist);
    // Vertex 0 reaches one of the two other vertices at distance 1:
    // corrected = (1/2) * (1/1) = 0.5.
    EXPECT_NEAR(scores.closeness[0], 0.5, 1e-12);
    EXPECT_EQ(scores.closeness[2], 0.0);
    const auto raw = closeness_from_matrix(dist, ClosenessVariant::Raw);
    EXPECT_NEAR(raw.closeness[0], 1.0, 1e-12);
    EXPECT_EQ(raw.closeness[2], 0.0);
}

// Regression for the disconnected-closeness bug: raw 1/sum lets a vertex in
// a tiny component out-rank hub vertices of the giant component (its few
// finite distances have a tiny sum). The Wasserman–Faust correction scales
// by the reachable fraction, restoring the sane ranking.
TEST(Closeness, CorrectedRankingOnTwoComponents) {
    // Giant component: a 7-vertex star (center 0); tiny component: the pair
    // {7, 8} at distance 1.
    DynamicGraph g(9);
    for (VertexId v = 1; v < 7; ++v) {
        g.add_edge(0, v);
    }
    g.add_edge(7, 8);

    const auto raw = exact_closeness(g, ClosenessVariant::Raw);
    // The bug: raw scores the pair vertices 1/1 = 1, above the star center's
    // 1/6.
    EXPECT_GT(raw.closeness[7], raw.closeness[0]);
    EXPECT_EQ(closeness_ranking(raw)[0], 7u);

    const auto corrected = exact_closeness(g);
    // Corrected: center = (6/8)*(6/6) = 0.75; pair = (1/8)*(1/1) = 0.125;
    // star leaf = (6/8)*(6/11).
    EXPECT_NEAR(corrected.closeness[0], 0.75, 1e-12);
    EXPECT_NEAR(corrected.closeness[7], 0.125, 1e-12);
    EXPECT_NEAR(corrected.closeness[1], (6.0 / 8.0) * (6.0 / 11.0), 1e-12);
    const auto ranking = closeness_ranking(corrected);
    EXPECT_EQ(ranking[0], 0u);  // giant-component hub back on top
    // Every giant-component vertex outranks the tiny component.
    for (std::size_t i = 0; i < 7; ++i) {
        EXPECT_LT(ranking[i], 7u);
    }
}

TEST(Closeness, RankingTiesBrokenById) {
    const std::vector<std::vector<Weight>> dist{
        {0, 1},
        {1, 0},
    };
    const auto ranking = closeness_ranking(closeness_from_matrix(dist));
    EXPECT_EQ(ranking, (std::vector<VertexId>{0, 1}));
}

TEST(HarmonicCloseness, HandlesDisconnection) {
    DynamicGraph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(2, 3, 2.0);
    const auto scores = exact_harmonic_closeness(g);
    EXPECT_NEAR(scores[0], 1.0, 1e-12);
    EXPECT_NEAR(scores[2], 0.5, 1e-12);
}

TEST(HarmonicCloseness, StarCenterHighest) {
    DynamicGraph g(6);
    for (VertexId v = 1; v < 6; ++v) {
        g.add_edge(0, v);
    }
    const auto scores = exact_harmonic_closeness(g);
    EXPECT_NEAR(scores[0], 5.0, 1e-12);            // five distance-1 targets
    EXPECT_NEAR(scores[1], 1.0 + 4 * 0.5, 1e-12);  // one hop + four 2-hops
}

TEST(Eccentricity, PathGraphDiameterAndRadius) {
    DynamicGraph g(5);
    for (VertexId v = 0; v + 1 < 5; ++v) {
        g.add_edge(v, v + 1);
    }
    const auto stats = eccentricity_from_matrix(exact_apsp(g));
    EXPECT_EQ(stats.eccentricity[0], 4.0);
    EXPECT_EQ(stats.eccentricity[2], 2.0);
    EXPECT_EQ(stats.diameter, 4.0);
    EXPECT_EQ(stats.radius, 2.0);
}

TEST(Eccentricity, IsolatedVerticesIgnored) {
    DynamicGraph g(3);
    g.add_edge(0, 1, 3.0);
    const auto stats = eccentricity_from_matrix(exact_apsp(g));
    EXPECT_EQ(stats.eccentricity[2], 0.0);
    EXPECT_EQ(stats.diameter, 3.0);
    EXPECT_EQ(stats.radius, 3.0);
}

}  // namespace
}  // namespace aa
