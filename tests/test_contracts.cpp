// Contract enforcement: the library aborts loudly (AA_ASSERT) on misuse
// instead of corrupting distributed state. Death tests pin the most
// important guards.
#include <gtest/gtest.h>

#include "core/distance_store.hpp"
#include "core/engine.hpp"
#include "core/subgraph.hpp"
#include "graph/generators.hpp"
#include "runtime/logp.hpp"
#include "runtime/message.hpp"

namespace aa {
namespace {

TEST(Contracts, GraphRejectsNonPositiveWeight) {
    DynamicGraph g(2);
    EXPECT_DEATH(g.add_edge(0, 1, 0.0), "positive");
    EXPECT_DEATH(g.add_edge(0, 1, -1.0), "positive");
}

TEST(Contracts, GraphRejectsOutOfRangeVertex) {
    DynamicGraph g(2);
    EXPECT_DEATH(g.add_edge(0, 5), "");
    EXPECT_DEATH((void)g.degree(9), "");
}

TEST(Contracts, DeserializerRejectsUnderrun) {
    Serializer out;
    out.write<std::uint32_t>(1);
    const auto buffer = out.take();
    Deserializer in(buffer);
    in.read<std::uint32_t>();
    EXPECT_DEATH(in.read<std::uint64_t>(), "underrun");
}

TEST(Contracts, DeserializerRejectsOverlongVector) {
    Serializer out;
    out.write<std::uint64_t>(1000);  // claims 1000 doubles, provides none
    const auto buffer = out.take();
    Deserializer in(buffer);
    EXPECT_DEATH(in.read_vector<double>(), "underrun");
}

TEST(Contracts, SubgraphRejectsForeignLookup) {
    LocalSubgraph sg(0, {0, 1});
    EXPECT_DEATH((void)sg.local_id(1), "not owned");
}

TEST(Contracts, SubgraphRejectsUnrelatedEdge) {
    LocalSubgraph sg(0, {0, 1, 1});
    EXPECT_DEATH(sg.add_local_edge(1, 2, 1.0), "no owned vertex");
}

TEST(Contracts, DistanceStoreRejectsBadColumn) {
    DistanceStore store(3);
    const LocalId r = store.add_row(0);
    EXPECT_DEATH(store.relax(r, 7, 1.0), "");
}

TEST(Contracts, EngineRejectsRcBeforeInitialize) {
    DynamicGraph g(3);
    g.add_edge(0, 1);
    AnytimeEngine engine(g, EngineConfig{.num_ranks = 2, .ia_threads = 1});
    EXPECT_DEATH(engine.rc_step(), "initialize");
}

TEST(Contracts, EngineRejectsDoubleInitialize) {
    DynamicGraph g(3);
    g.add_edge(0, 1);
    AnytimeEngine engine(g, EngineConfig{.num_ranks = 2, .ia_threads = 1});
    engine.initialize();
    EXPECT_DEATH(engine.initialize(), "twice");
}

TEST(Contracts, EngineRejectsStaleBatch) {
    DynamicGraph g(4);
    g.add_edge(0, 1);
    AnytimeEngine engine(g, EngineConfig{.num_ranks = 2, .ia_threads = 1});
    engine.initialize();
    GrowthBatch batch;
    batch.base_id = 99;  // does not follow the current vertex space
    batch.num_new = 1;
    EXPECT_DEATH(engine.anywhere_add(batch, {0}), "vertex space");
}

// Weight increases used to be rejected ("future work"); they now route
// through the invalidate/re-settle machinery and must land exactly.
TEST(Contracts, EngineAcceptsWeightIncrease) {
    DynamicGraph g(3);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    AnytimeEngine engine(g, EngineConfig{.num_ranks = 2, .ia_threads = 1});
    engine.initialize();
    EXPECT_TRUE(engine.decrease_edge_weight(0, 1, 5.0));
    engine.run_to_quiescence();
    const auto matrix = engine.full_distance_matrix();
    EXPECT_DOUBLE_EQ(matrix[0][1], 5.0);
    EXPECT_DOUBLE_EQ(matrix[0][2], 6.0);
}

TEST(Contracts, ClockRejectsNegativeAdvance) {
    SimClock clock;
    EXPECT_DEATH(clock.advance(-1.0), "backwards");
}

}  // namespace
}  // namespace aa
