// Delta-stepping IA kernel: must produce exactly the same distances as the
// Dijkstra kernel for any bucket width.
#include <gtest/gtest.h>

#include <numeric>

#include "core/closeness.hpp"
#include "core/engine.hpp"
#include "core/ia.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

struct RankFixture {
    LocalSubgraph sg;
    DistanceStore store;

    RankFixture(RankId rank, const DynamicGraph& g, const std::vector<RankId>& owners)
        : sg(rank, owners), store(g.num_vertices()) {
        for (const VertexId v : sg.local_vertices()) {
            store.add_row(v);
        }
        for (const Edge& e : g.edges()) {
            if (owners[e.u] == rank || owners[e.v] == rank) {
                sg.add_local_edge(e.u, e.v, e.weight);
            }
        }
    }
};

class DeltaSweep : public ::testing::TestWithParam<double> {};

TEST_P(DeltaSweep, MatchesDijkstraOnWeightedGraph) {
    Rng rng(1);
    const auto g = barabasi_albert(70, 3, rng, WeightRange{0.5, 5.0});
    const std::vector<RankId> owners(70, 0);
    ThreadPool pool(1);

    RankFixture dijkstra(0, g, owners);
    RankFixture delta(0, g, owners);
    ia_dijkstra_all(dijkstra.sg, dijkstra.store, pool);

    std::vector<LocalId> sources(70);
    std::iota(sources.begin(), sources.end(), 0);
    ia_delta_stepping(delta.sg, delta.store, pool, sources, false, GetParam());

    for (LocalId l = 0; l < 70; ++l) {
        for (VertexId t = 0; t < 70; ++t) {
            EXPECT_NEAR(delta.store.at(l, t), dijkstra.store.at(l, t), 1e-9)
                << "delta=" << GetParam() << " d(" << l << "," << t << ")";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(BucketWidths, DeltaSweep,
                         ::testing::Values(0.0,   // heuristic
                                           0.25,  // finer than min weight
                                           1.0, 2.5,
                                           100.0  // one giant bucket = Bellman-Ford
                                           ),
                         [](const ::testing::TestParamInfo<double>& info) {
                             std::string name = std::to_string(info.param);
                             for (auto& c : name) {
                                 if (c == '.') {
                                     c = '_';
                                 }
                             }
                             return "delta_" + name;
                         });

TEST(DeltaStepping, UnitWeightsEqualBfs) {
    Rng rng(2);
    const auto g = erdos_renyi_gnm(60, 180, rng);
    const std::vector<RankId> owners(60, 0);
    ThreadPool pool(1);
    RankFixture fx(0, g, owners);
    std::vector<LocalId> sources(60);
    std::iota(sources.begin(), sources.end(), 0);
    ia_delta_stepping(fx.sg, fx.store, pool, sources, false, 1.0);
    const auto exact = exact_apsp(g);
    for (LocalId l = 0; l < 60; ++l) {
        for (VertexId t = 0; t < 60; ++t) {
            EXPECT_EQ(fx.store.at(l, t), exact[l][t]);
        }
    }
}

TEST(DeltaStepping, PartitionedSubgraphUpperBounds) {
    Rng rng(3);
    const auto g = barabasi_albert(80, 2, rng, WeightRange{1.0, 3.0});
    std::vector<RankId> owners(80);
    for (VertexId v = 0; v < 80; ++v) {
        owners[v] = v % 3;
    }
    ThreadPool pool(1);
    RankFixture fx(1, g, owners);
    std::vector<LocalId> sources(fx.sg.num_local());
    std::iota(sources.begin(), sources.end(), 0);
    ia_delta_stepping(fx.sg, fx.store, pool, sources, false, 0);
    const auto exact = exact_apsp(g);
    for (LocalId l = 0; l < fx.sg.num_local(); ++l) {
        const VertexId src = fx.sg.global_id(l);
        for (VertexId t = 0; t < 80; ++t) {
            if (fx.store.at(l, t) < kInfinity) {
                EXPECT_GE(fx.store.at(l, t), exact[src][t] - 1e-9);
            }
        }
    }
}

TEST(DeltaStepping, EngineEndToEnd) {
    // Full engine with the delta-stepping IA kernel: same final answer.
    Rng rng(4);
    const auto g = barabasi_albert(90, 2, rng, WeightRange{1.0, 4.0});
    EngineConfig config;
    config.num_ranks = 4;
    config.ia_threads = 1;
    config.ia_kernel = IaKernel::DeltaStepping;
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_to_quiescence();
    const auto exact = exact_apsp(g);
    const auto matrix = engine.full_distance_matrix();
    for (std::size_t v = 0; v < 90; ++v) {
        for (std::size_t t = 0; t < 90; ++t) {
            if (exact[v][t] < kInfinity) {
                ASSERT_NEAR(matrix[v][t], exact[v][t], 1e-9);
            }
        }
    }
}

TEST(DeltaStepping, LargerDeltaMoreRelaxations) {
    // The classic trade-off: wider buckets -> more (re-)relaxations.
    Rng rng(5);
    const auto g = barabasi_albert(100, 3, rng, WeightRange{0.5, 4.0});
    const std::vector<RankId> owners(100, 0);
    ThreadPool pool(1);
    std::vector<LocalId> sources(100);
    std::iota(sources.begin(), sources.end(), 0);

    RankFixture fine(0, g, owners);
    RankFixture coarse(0, g, owners);
    const double fine_ops =
        ia_delta_stepping(fine.sg, fine.store, pool, sources, false, 0.5);
    const double coarse_ops =
        ia_delta_stepping(coarse.sg, coarse.store, pool, sources, false, 1000.0);
    EXPECT_GT(coarse_ops, fine_ops);
}

}  // namespace
}  // namespace aa
