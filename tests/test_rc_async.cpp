// Event-driven RC exchange (relax-on-arrival) equivalence at the engine
// level.
//
// EngineConfig::rc_async reshapes only the simulated timeline: boundary
// messages become timestamped delivery events and ranks ingest them as they
// arrive, but ingest preserves the canonical per-receiver message order and
// propagation is deferred until a rank has everything — so distances,
// closeness, dirty order, per-step ops, and message traffic must stay
// bit-identical to the step-synchronous default at every step. The lattice
// below pins that across rank counts × both execution backends × both wire
// formats, with a mid-RC vertex-addition batch in every run. The event loop
// itself runs on the driver thread, so the delivery trace must also be
// identical across backends and across repeated threaded runs.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/engine.hpp"
#include "core/rc.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "runtime/backend.hpp"

namespace aa {
namespace {

struct RunResult {
    std::vector<std::vector<Weight>> matrix;
    ClosenessScores scores;
    double sim_seconds{0};
    std::size_t rc_steps{0};
    std::size_t total_bytes{0};
    std::size_t total_messages{0};
    std::vector<RcStepStats> steps;
    std::vector<DeliveryTraceEntry> trace;
};

struct Overrides {
    bool rc_async{false};
    CommSchedule schedule{CommSchedule::SerializedAllToAll};
    PriceModel price_model{PriceModel::PerByte};
    std::size_t ingest_window{0};
};

RunResult run_scenario(std::uint32_t ranks, BackendKind backend,
                       BoundaryWireFormat format, const Overrides& o) {
    Rng rng(555);
    DynamicGraph g = barabasi_albert(80, 2, rng, WeightRange{1.0, 4.0});

    EngineConfig config;
    config.num_ranks = ranks;
    config.seed = 0xF0 + ranks;
    config.backend = backend;
    config.enable_metrics = true;
    config.wire_format = format;
    config.rc_async = o.rc_async;
    config.schedule = o.schedule;
    config.price_model = o.price_model;
    config.rc_ingest_window_bytes = o.ingest_window;

    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_rc_steps(2);

    // Mid-RC addition batch: async steps must stay equivalent with rows
    // added (and rank neighbourhoods changed) between steps.
    GrowthConfig gc;
    gc.num_new = 6;
    gc.communities = 2;
    gc.intra_edges = 2;
    gc.host_edges = 2;
    Rng batch_rng(9001);
    const auto batch = grow_batch(g.num_vertices(), gc, batch_rng);
    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);
    engine.run_to_quiescence();

    RunResult result;
    result.matrix = engine.full_distance_matrix();
    result.scores = engine.closeness();
    result.sim_seconds = engine.sim_seconds();
    result.rc_steps = engine.rc_steps_completed();
    result.total_bytes = engine.cluster().stats().total_bytes;
    result.total_messages = engine.cluster().stats().total_messages;
    result.steps = engine.step_history();
    result.trace = engine.delivery_trace();
    return result;
}

/// Everything an event-driven step may NOT change: results, work, traffic.
/// (EXPECT_EQ on doubles is exact comparison — bit-identical, not "close".)
/// `same_bytes=false` relaxes only the byte accounting — for comparisons
/// across wire formats, where payload size legitimately differs.
void expect_equivalent_modulo_timeline(const RunResult& sync,
                                       const RunResult& async_r,
                                       bool same_bytes = true) {
    EXPECT_EQ(sync.rc_steps, async_r.rc_steps);
    ASSERT_EQ(sync.matrix.size(), async_r.matrix.size());
    for (std::size_t v = 0; v < sync.matrix.size(); ++v) {
        ASSERT_EQ(sync.matrix[v], async_r.matrix[v]) << "row " << v;
    }
    ASSERT_EQ(sync.scores.closeness, async_r.scores.closeness);
    ASSERT_EQ(sync.scores.reachable, async_r.scores.reachable);
    ASSERT_EQ(sync.steps.size(), async_r.steps.size());
    for (std::size_t i = 0; i < sync.steps.size(); ++i) {
        EXPECT_EQ(sync.steps[i].step, async_r.steps[i].step);
        EXPECT_EQ(sync.steps[i].ops, async_r.steps[i].ops) << "step " << i;
        EXPECT_EQ(sync.steps[i].messages, async_r.steps[i].messages)
            << "step " << i;
        if (same_bytes) {
            EXPECT_EQ(sync.steps[i].bytes, async_r.steps[i].bytes)
                << "step " << i;
        }
    }
    EXPECT_EQ(sync.total_messages, async_r.total_messages);
    if (same_bytes) {
        EXPECT_EQ(sync.total_bytes, async_r.total_bytes);
    }
}

void expect_identical_trace(const RunResult& a, const RunResult& b) {
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        const DeliveryTraceEntry& x = a.trace[i];
        const DeliveryTraceEntry& y = b.trace[i];
        EXPECT_EQ(x.step, y.step) << "event " << i;
        EXPECT_EQ(x.time, y.time) << "event " << i;
        EXPECT_EQ(x.from, y.from) << "event " << i;
        EXPECT_EQ(x.to, y.to) << "event " << i;
        EXPECT_EQ(x.seq, y.seq) << "event " << i;
        EXPECT_EQ(x.bytes, y.bytes) << "event " << i;
    }
}

using Param =
    std::tuple<std::uint32_t /*ranks*/, BackendKind, BoundaryWireFormat>;

class RcAsyncEquivalence : public ::testing::TestWithParam<Param> {};

TEST_P(RcAsyncEquivalence, AsyncMatchesSyncModuloTimeline) {
    const auto [ranks, backend, format] = GetParam();
    const RunResult sync =
        run_scenario(ranks, backend, format, {/*rc_async=*/false});
    const RunResult async_r =
        run_scenario(ranks, backend, format, {/*rc_async=*/true});
    expect_equivalent_modulo_timeline(sync, async_r);
    // The sync run never produces delivery events; the async run produces one
    // per RC-exchanged message (dynamic-update broadcasts stay collective, so
    // the trace is a subset of total message traffic).
    EXPECT_TRUE(sync.trace.empty());
    EXPECT_FALSE(async_r.trace.empty());
    EXPECT_LE(async_r.trace.size(), async_r.total_messages);
    // Relax-on-arrival can only shorten the timeline: ingest overlaps the
    // in-flight tail instead of waiting for the full collective.
    EXPECT_LE(async_r.sim_seconds, sync.sim_seconds * (1 + 1e-12));
}

TEST_P(RcAsyncEquivalence, PipelinedScheduleSameFixpoint) {
    // Changing the communication schedule under async changes arrival times
    // only — the canonical ingest order keeps the fixpoint (and all work
    // accounting) bit-identical; the pipelined wire can only be faster than
    // the serialized one.
    const auto [ranks, backend, format] = GetParam();
    Overrides serialized{/*rc_async=*/true, CommSchedule::SerializedAllToAll};
    Overrides pipelined{/*rc_async=*/true, CommSchedule::Pipelined};
    const RunResult a = run_scenario(ranks, backend, format, serialized);
    const RunResult b = run_scenario(ranks, backend, format, pipelined);
    expect_equivalent_modulo_timeline(a, b);
    EXPECT_LE(b.sim_seconds, a.sim_seconds * (1 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    Lattice, RcAsyncEquivalence,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(BackendKind::Sequential,
                                         BackendKind::Threaded),
                       ::testing::Values(BoundaryWireFormat::V1Aos,
                                         BoundaryWireFormat::V2Soa)),
    [](const ::testing::TestParamInfo<Param>& p) {
        std::string name = "r";
        name += std::to_string(std::get<0>(p.param));
        name += std::get<1>(p.param) == BackendKind::Threaded ? "_threaded"
                                                              : "_seq";
        name += std::get<2>(p.param) == BoundaryWireFormat::V2Soa ? "_v2"
                                                                  : "_v1";
        return name;
    });

TEST(RcAsyncDeterminism, ThreadedRunsReplayIdentically) {
    // Same seed, same config, two fresh engines on the threaded backend: the
    // delivery traces (event pop order with timestamps) must match event for
    // event, and so must every result. The event loop runs on the driver
    // thread between rank phases, so worker scheduling cannot perturb it.
    const Overrides async_pipelined{/*rc_async=*/true, CommSchedule::Pipelined};
    const RunResult a = run_scenario(8, BackendKind::Threaded,
                                     BoundaryWireFormat::V2Soa, async_pipelined);
    const RunResult b = run_scenario(8, BackendKind::Threaded,
                                     BoundaryWireFormat::V2Soa, async_pipelined);
    expect_identical_trace(a, b);
    expect_equivalent_modulo_timeline(a, b);
    EXPECT_EQ(a.sim_seconds, b.sim_seconds);
    EXPECT_FALSE(a.trace.empty());
}

TEST(RcAsyncDeterminism, BackendsShareOneTrace) {
    const Overrides async_pipelined{/*rc_async=*/true, CommSchedule::Pipelined};
    const RunResult seq = run_scenario(4, BackendKind::Sequential,
                                       BoundaryWireFormat::V2Soa, async_pipelined);
    const RunResult thr = run_scenario(4, BackendKind::Threaded,
                                       BoundaryWireFormat::V2Soa, async_pipelined);
    expect_identical_trace(seq, thr);
    expect_equivalent_modulo_timeline(seq, thr);
    EXPECT_EQ(seq.sim_seconds, thr.sim_seconds);
}

TEST(RcAsyncDeterminism, TraceIsInEventOrderPerStep) {
    const Overrides async_serialized{/*rc_async=*/true};
    const RunResult r = run_scenario(4, BackendKind::Sequential,
                                     BoundaryWireFormat::V2Soa, async_serialized);
    ASSERT_FALSE(r.trace.empty());
    for (std::size_t i = 1; i < r.trace.size(); ++i) {
        const DeliveryTraceEntry& prev = r.trace[i - 1];
        const DeliveryTraceEntry& cur = r.trace[i];
        if (prev.step != cur.step) {
            continue;  // new exchange, clock keyed from its own inflight start
        }
        // (time, source, seq) lexicographic — the EventQueue contract.
        const bool ordered =
            prev.time < cur.time ||
            (prev.time == cur.time &&
             (prev.from < cur.from || (prev.from == cur.from && prev.seq < cur.seq)));
        EXPECT_TRUE(ordered) << "events " << i - 1 << " and " << i;
    }
}

TEST(RcIngest, AdaptiveWindowMatchesFixed) {
    // The 0 sentinel resolves to a host-dependent window; windowing is
    // contractually invisible to results, so the adaptive run must be
    // bit-identical — including sim_seconds — to the historical fixed
    // 128 MiB window, sync and async alike.
    for (const bool rc_async : {false, true}) {
        Overrides adaptive{rc_async};
        Overrides fixed{rc_async};
        fixed.ingest_window = kRcIngestWindowBytes;
        const RunResult a = run_scenario(4, BackendKind::Sequential,
                                         BoundaryWireFormat::V2Soa, adaptive);
        const RunResult f = run_scenario(4, BackendKind::Sequential,
                                         BoundaryWireFormat::V2Soa, fixed);
        expect_equivalent_modulo_timeline(a, f);
        expect_identical_trace(a, f);
        EXPECT_EQ(a.sim_seconds, f.sim_seconds) << "rc_async=" << rc_async;
    }
}

TEST(RcIngest, AdaptiveResolutionRules) {
    // Explicit values win verbatim; the sentinel resolves into the documented
    // clamp range, and concurrent backends get a share no larger than the
    // sequential backend's whole-LLC window.
    Rng rng(7);
    DynamicGraph g = barabasi_albert(40, 2, rng, WeightRange{1.0, 2.0});
    EngineConfig config;
    config.num_ranks = 4;
    config.rc_ingest_window_bytes = 12345;
    AnytimeEngine explicit_engine(g, config);
    EXPECT_EQ(explicit_engine.rc_ingest_window_bytes_effective(), 12345u);

    config.rc_ingest_window_bytes = 0;
    AnytimeEngine seq_engine(g, config);
    const std::size_t seq_window = seq_engine.rc_ingest_window_bytes_effective();
    EXPECT_GE(seq_window, std::size_t{4} << 20);
    EXPECT_LE(seq_window, std::size_t{128} << 20);
    EXPECT_EQ(seq_window, adaptive_rc_ingest_window_bytes(1));

    config.backend = BackendKind::Threaded;
    AnytimeEngine thr_engine(g, config);
    const std::size_t thr_window = thr_engine.rc_ingest_window_bytes_effective();
    EXPECT_GE(thr_window, std::size_t{4} << 20);
    EXPECT_LE(thr_window, seq_window);
    EXPECT_EQ(thr_window, adaptive_rc_ingest_window_bytes(4));
}

TEST(PriceModel, PerEntryMakesSimSecondsFormatIndependent) {
    // The point of the per-entry price model: v1 and v2 runs still ship
    // different wire bytes (accounting is always wire-truthful), but the
    // priced exchange time — and with it sim_seconds — no longer depends on
    // the encoding.
    const Overrides per_entry{/*rc_async=*/false,
                              CommSchedule::SerializedAllToAll,
                              PriceModel::PerEntry};
    const RunResult v1 = run_scenario(4, BackendKind::Sequential,
                                      BoundaryWireFormat::V1Aos, per_entry);
    const RunResult v2 = run_scenario(4, BackendKind::Sequential,
                                      BoundaryWireFormat::V2Soa, per_entry);
    EXPECT_EQ(v1.sim_seconds, v2.sim_seconds);
    ASSERT_EQ(v1.steps.size(), v2.steps.size());
    for (std::size_t i = 0; i < v1.steps.size(); ++i) {
        EXPECT_EQ(v1.steps[i].exchange_seconds, v2.steps[i].exchange_seconds)
            << "step " << i;
    }
    EXPECT_LT(v2.total_bytes, v1.total_bytes);  // accounting stays wire-truthful
    // And the results lattice still holds across formats under PerEntry.
    expect_equivalent_modulo_timeline(v1, v2, /*same_bytes=*/false);
}

TEST(PriceModel, PerByteIsTheHistoricalDefault) {
    const Overrides defaulted{};
    Overrides explicit_per_byte{};
    explicit_per_byte.price_model = PriceModel::PerByte;
    const RunResult a = run_scenario(4, BackendKind::Sequential,
                                     BoundaryWireFormat::V2Soa, defaulted);
    const RunResult b = run_scenario(4, BackendKind::Sequential,
                                     BoundaryWireFormat::V2Soa, explicit_per_byte);
    expect_equivalent_modulo_timeline(a, b);
    EXPECT_EQ(a.sim_seconds, b.sim_seconds);
}

TEST(PriceModel, PerEntryAsyncStillBitIdenticalToSync) {
    // Price model and event-driven exchange compose: under PerEntry the
    // async run must still reach the sync run's exact fixpoint.
    Overrides sync_pe{/*rc_async=*/false, CommSchedule::SerializedAllToAll,
                      PriceModel::PerEntry};
    Overrides async_pe{/*rc_async=*/true, CommSchedule::SerializedAllToAll,
                       PriceModel::PerEntry};
    const RunResult s = run_scenario(4, BackendKind::Sequential,
                                     BoundaryWireFormat::V2Soa, sync_pe);
    const RunResult a = run_scenario(4, BackendKind::Sequential,
                                     BoundaryWireFormat::V2Soa, async_pe);
    expect_equivalent_modulo_timeline(s, a);
    EXPECT_LE(a.sim_seconds, s.sim_seconds * (1 + 1e-12));
}

TEST(CommSchedule, PipelinedSyncMatchesSerializedResults) {
    // The Pipelined schedule in the step-synchronous engine: pure pricing
    // change, same fixpoint and work, never slower than the serialized wire.
    Overrides serialized{};
    Overrides pipelined{};
    pipelined.schedule = CommSchedule::Pipelined;
    const RunResult a = run_scenario(8, BackendKind::Sequential,
                                     BoundaryWireFormat::V2Soa, serialized);
    const RunResult b = run_scenario(8, BackendKind::Sequential,
                                     BoundaryWireFormat::V2Soa, pipelined);
    expect_equivalent_modulo_timeline(a, b);
    EXPECT_LE(b.sim_seconds, a.sim_seconds);
}

}  // namespace
}  // namespace aa
