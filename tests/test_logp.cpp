#include <gtest/gtest.h>

#include "runtime/logp.hpp"

namespace aa {
namespace {

TEST(LogP, MessageTimeSingleChunk) {
    LogPParams p;
    p.latency = 10e-6;
    p.overhead = 1e-6;
    p.gap_per_byte = 1e-9;
    p.max_message_bytes = 1024;
    // 100 bytes: one chunk -> 2o + L + 100G.
    EXPECT_NEAR(p.message_time(100), 2e-6 + 10e-6 + 100e-9, 1e-15);
}

TEST(LogP, EmptyMessageStillPaysLatency) {
    LogPParams p;
    EXPECT_GT(p.message_time(0), 0.0);
}

TEST(LogP, ChunkingAddsPerChunkOverhead) {
    LogPParams p;
    p.latency = 10e-6;
    p.overhead = 1e-6;
    p.gap_per_byte = 0;
    p.max_message_bytes = 100;
    // 250 bytes -> 3 chunks.
    EXPECT_NEAR(p.message_time(250), 3 * (2e-6 + 10e-6), 1e-15);
    // Exactly 200 -> 2 chunks.
    EXPECT_NEAR(p.message_time(200), 2 * (2e-6 + 10e-6), 1e-15);
}

TEST(LogP, MessageTimeMonotoneInSize) {
    LogPParams p;
    double prev = 0;
    for (std::size_t bytes : {1u, 10u, 100u, 1000u, 100000u, 10000000u}) {
        const double t = p.message_time(bytes);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(LogP, ComputeTimeScalesWithThreads) {
    LogPParams p;
    p.seconds_per_op = 1e-9;
    EXPECT_NEAR(p.compute_time(1e6, 1), 1e-3, 1e-12);
    EXPECT_NEAR(p.compute_time(1e6, 4), 0.25e-3, 1e-12);
    EXPECT_EQ(p.compute_time(0, 8), 0.0);
}

TEST(SimClock, AdvanceAccumulates) {
    SimClock clock;
    EXPECT_EQ(clock.now(), 0.0);
    clock.advance(1.5);
    clock.advance(0.5);
    EXPECT_NEAR(clock.now(), 2.0, 1e-15);
}

TEST(SimClock, AdvanceToNeverRewinds) {
    SimClock clock;
    clock.advance(5.0);
    clock.advance_to(3.0);
    EXPECT_EQ(clock.now(), 5.0);
    clock.advance_to(7.0);
    EXPECT_EQ(clock.now(), 7.0);
}

}  // namespace
}  // namespace aa
