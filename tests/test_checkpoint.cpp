// Checkpoint / restore: the anytime property turned into persistence.
#include <gtest/gtest.h>

#include <sstream>

#include "core/baseline.hpp"
#include "core/closeness.hpp"
#include "core/engine.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

EngineConfig small_config(std::uint32_t ranks) {
    EngineConfig config;
    config.num_ranks = ranks;
    config.ia_threads = 1;
    config.seed = 55;
    return config;
}

TEST(Checkpoint, RoundTripAtQuiescence) {
    Rng rng(1);
    const auto g = barabasi_albert(60, 2, rng);
    AnytimeEngine engine(g, small_config(4));
    engine.initialize();
    engine.run_to_quiescence();
    const double saved_time = engine.sim_seconds();
    const auto saved_matrix = engine.full_distance_matrix();

    std::stringstream blob;
    engine.save_checkpoint(blob);
    auto restored = AnytimeEngine::load_checkpoint(blob, small_config(4));

    EXPECT_EQ(restored.num_vertices(), 60u);
    EXPECT_EQ(restored.rc_steps_completed(), engine.rc_steps_completed());
    EXPECT_GE(restored.sim_seconds(), saved_time);
    const auto matrix = restored.full_distance_matrix();
    for (std::size_t v = 0; v < 60; ++v) {
        for (std::size_t t = 0; t < 60; ++t) {
            EXPECT_EQ(matrix[v][t], saved_matrix[v][t]);
        }
    }
    // A restored quiescent state converges immediately (the conservative
    // consistency sweep finds nothing new).
    restored.run_to_quiescence();
    const auto exact = exact_apsp(g);
    const auto final_matrix = restored.full_distance_matrix();
    for (std::size_t v = 0; v < 60; ++v) {
        for (std::size_t t = 0; t < 60; ++t) {
            if (exact[v][t] < kInfinity) {
                ASSERT_NEAR(final_matrix[v][t], exact[v][t], 1e-9);
            }
        }
    }
}

TEST(Checkpoint, ResumeMidConvergence) {
    // Interrupt after one RC step, checkpoint, restore, finish: must reach
    // the exact answer.
    Rng rng(2);
    const auto g = erdos_renyi_gnm(50, 140, rng, WeightRange{1.0, 3.0});
    AnytimeEngine engine(g, small_config(3));
    engine.initialize();
    engine.run_rc_steps(1);

    std::stringstream blob;
    engine.save_checkpoint(blob);
    auto restored = AnytimeEngine::load_checkpoint(blob, small_config(3));
    restored.run_to_quiescence();

    const auto exact = exact_apsp(g);
    const auto matrix = restored.full_distance_matrix();
    for (std::size_t v = 0; v < 50; ++v) {
        for (std::size_t t = 0; t < 50; ++t) {
            if (exact[v][t] < kInfinity) {
                ASSERT_NEAR(matrix[v][t], exact[v][t], 1e-9);
            } else {
                ASSERT_GE(matrix[v][t], kInfinity);
            }
        }
    }
}

TEST(Checkpoint, RestoredEngineAcceptsDynamicUpdates) {
    Rng rng(3);
    const auto g = barabasi_albert(50, 2, rng);
    AnytimeEngine engine(g, small_config(4));
    engine.initialize();
    engine.run_to_quiescence();

    std::stringstream blob;
    engine.save_checkpoint(blob);
    auto restored = AnytimeEngine::load_checkpoint(blob, small_config(4));

    GrowthConfig gc;
    gc.num_new = 10;
    Rng brng(4);
    const auto batch = grow_batch(50, gc, brng);
    RoundRobinPS strategy;
    restored.apply_addition(batch, strategy);
    restored.run_to_quiescence();

    const auto grown = apply_batch(g, batch);
    const auto exact = exact_apsp(grown);
    const auto matrix = restored.full_distance_matrix();
    for (std::size_t v = 0; v < exact.size(); ++v) {
        for (std::size_t t = 0; t < exact.size(); ++t) {
            if (exact[v][t] < kInfinity) {
                ASSERT_NEAR(matrix[v][t], exact[v][t], 1e-9);
            }
        }
    }
}

TEST(Checkpoint, RejectsGarbage) {
    std::stringstream blob;
    blob << "definitely not a checkpoint";
    EXPECT_DEATH((void)AnytimeEngine::load_checkpoint(blob, small_config(2)), "");
}

TEST(Checkpoint, RejectsRankMismatch) {
    Rng rng(5);
    const auto g = barabasi_albert(30, 2, rng);
    AnytimeEngine engine(g, small_config(4));
    engine.initialize();
    std::stringstream blob;
    engine.save_checkpoint(blob);
    EXPECT_DEATH((void)AnytimeEngine::load_checkpoint(blob, small_config(8)),
                 "rank count");
}

TEST(StepHistory, RecordsEveryStep) {
    Rng rng(6);
    const auto g = barabasi_albert(70, 2, rng);
    AnytimeEngine engine(g, small_config(4));
    engine.initialize();
    EXPECT_TRUE(engine.step_history().empty());
    const std::size_t steps = engine.run_to_quiescence();
    const auto& history = engine.step_history();
    ASSERT_EQ(history.size(), steps);
    double last_time = 0;
    for (std::size_t i = 0; i < history.size(); ++i) {
        EXPECT_EQ(history[i].step, i + 1);
        EXPECT_GE(history[i].sim_seconds_after, last_time);
        last_time = history[i].sim_seconds_after;
        EXPECT_GT(history[i].ops, 0.0);
    }
    // The first step ships the IA results: it must carry traffic.
    EXPECT_GT(history[0].messages, 0u);
    EXPECT_GT(history[0].bytes, 0u);
    EXPECT_GT(history[0].exchange_seconds, 0.0);
}

TEST(DistributedCloseness, MatchesObserverAndChargesTime) {
    Rng rng(7);
    const auto g = barabasi_albert(80, 2, rng);
    AnytimeEngine engine(g, small_config(4));
    engine.initialize();
    engine.run_to_quiescence();

    const auto observer = engine.closeness();
    const double before = engine.sim_seconds();
    const auto distributed = engine.compute_closeness_distributed();
    EXPECT_GT(engine.sim_seconds(), before);  // it costs something

    ASSERT_EQ(distributed.closeness.size(), observer.closeness.size());
    for (std::size_t v = 0; v < observer.closeness.size(); ++v) {
        EXPECT_NEAR(distributed.closeness[v], observer.closeness[v], 1e-12);
        EXPECT_EQ(distributed.reachable[v], observer.reachable[v]);
    }
}

}  // namespace
}  // namespace aa
