// Anytime quality metrics and the monotonicity property (paper §I: solution
// quality improves monotonically with computation).
#include <gtest/gtest.h>

#include "core/closeness.hpp"
#include "core/engine.hpp"
#include "core/quality.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

TEST(Quality, PerfectMatchIsAllExact) {
    const std::vector<std::vector<Weight>> m{{0, 1}, {1, 0}};
    const auto q = evaluate_quality(m, m);
    EXPECT_EQ(q.frac_exact, 1.0);
    EXPECT_EQ(q.frac_unknown, 0.0);
    EXPECT_EQ(q.mean_excess, 0.0);
    EXPECT_EQ(q.closeness_mean_rel_error, 0.0);
}

TEST(Quality, DetectsUnknownEntries) {
    const Weight inf = kInfinity;
    const std::vector<std::vector<Weight>> approx{{0, inf}, {inf, 0}};
    const std::vector<std::vector<Weight>> exact{{0, 1}, {1, 0}};
    const auto q = evaluate_quality(approx, exact);
    EXPECT_EQ(q.frac_unknown, 0.5);
    EXPECT_EQ(q.frac_exact, 0.5);  // the two diagonal zeros
}

TEST(Quality, MeasuresExcess) {
    const std::vector<std::vector<Weight>> approx{{0, 3}, {3, 0}};
    const std::vector<std::vector<Weight>> exact{{0, 1}, {1, 0}};
    const auto q = evaluate_quality(approx, exact);
    EXPECT_NEAR(q.max_excess, 2.0, 1e-12);
    // Diagonals are exact, the two off-diagonals overestimate by 2.
    EXPECT_NEAR(q.mean_excess, 1.0, 1e-12);
    EXPECT_LT(q.frac_exact, 1.0);
    EXPECT_GT(q.closeness_mean_rel_error, 0.0);
}

TEST(Quality, MatchingInfinitiesAreExact) {
    const Weight inf = kInfinity;
    const std::vector<std::vector<Weight>> m{{0, inf}, {inf, 0}};
    const auto q = evaluate_quality(m, m);
    EXPECT_EQ(q.frac_exact, 1.0);
    EXPECT_EQ(q.frac_unknown, 0.0);
}

TEST(Quality, MonotoneAcrossAllUnknownToAllExact) {
    // The extreme anytime trajectory: from "nothing known" (everything
    // off-diagonal unknown) straight to a perfect match. Monotone in that
    // order, not in the reverse.
    const Weight inf = kInfinity;
    const std::vector<std::vector<Weight>> exact{{0, 1, 2}, {1, 0, 1}, {2, 1, 0}};
    const std::vector<std::vector<Weight>> unknown{
        {0, inf, inf}, {inf, 0, inf}, {inf, inf, 0}};
    const auto q_unknown = evaluate_quality(unknown, exact);
    const auto q_exact = evaluate_quality(exact, exact);
    EXPECT_EQ(q_unknown.frac_unknown, 6.0 / 9.0);
    EXPECT_EQ(q_exact.frac_unknown, 0.0);
    EXPECT_TRUE(quality_monotone(q_unknown, q_exact));
    EXPECT_FALSE(quality_monotone(q_exact, q_unknown));
    // A state is always monotone with itself (the predicate is reflexive:
    // a stalled engine does not violate the anytime property).
    EXPECT_TRUE(quality_monotone(q_unknown, q_unknown));
    EXPECT_TRUE(quality_monotone(q_exact, q_exact));
}

TEST(Quality, InfiniteExactDistancesAreNotUnknown) {
    // Disconnected exact matrix: an infinite approx entry whose exact value
    // is also infinite is *exact*, not unknown — frac_unknown only counts
    // entries the algorithm has yet to discover.
    const Weight inf = kInfinity;
    const std::vector<std::vector<Weight>> exact{{0, inf}, {inf, 0}};
    const auto q_match = evaluate_quality(exact, exact);
    EXPECT_EQ(q_match.frac_exact, 1.0);
    EXPECT_EQ(q_match.frac_unknown, 0.0);
    EXPECT_EQ(q_match.mean_excess, 0.0);

    // A partially discovered disconnected graph: the reachable pair is known
    // exactly, the cross-component entries match the exact infinities.
    const std::vector<std::vector<Weight>> split{
        {0, inf, inf}, {inf, 0, 1}, {inf, 1, 0}};
    const auto q_split = evaluate_quality(split, split);
    EXPECT_EQ(q_split.frac_exact, 1.0);
    EXPECT_EQ(q_split.frac_unknown, 0.0);
    EXPECT_TRUE(quality_monotone(q_split, q_split));

    // A finite estimate where the exact distance is infinite would mean the
    // relaxation invented a path; the contract check rejects it outright.
    const std::vector<std::vector<Weight>> bogus{{0, 5}, {5, 0}};
    EXPECT_DEATH(evaluate_quality(bogus, exact),
                 "estimate finite where exact is infinite");
}

TEST(Quality, MonotonePredicate) {
    QualityMetrics a;
    a.frac_exact = 0.5;
    a.frac_unknown = 0.3;
    QualityMetrics b;
    b.frac_exact = 0.7;
    b.frac_unknown = 0.1;
    EXPECT_TRUE(quality_monotone(a, b));
    EXPECT_FALSE(quality_monotone(b, a));
}

TEST(Quality, AnytimeMonotoneAcrossRcSteps) {
    // The core anytime property: each RC step only improves quality.
    Rng rng(1);
    const auto g = barabasi_albert(90, 2, rng);
    const auto exact = exact_apsp(g);

    EngineConfig config;
    config.num_ranks = 6;
    config.ia_threads = 1;
    config.seed = 5;
    AnytimeEngine engine(g, config);
    engine.initialize();

    auto previous = evaluate_quality(engine.full_distance_matrix(), exact);
    int steps = 0;
    while (engine.rc_step() && steps++ < 64) {
        const auto current = evaluate_quality(engine.full_distance_matrix(), exact);
        EXPECT_TRUE(quality_monotone(previous, current)) << "step " << steps;
        previous = current;
    }
    EXPECT_NEAR(previous.frac_exact, 1.0, 1e-12);
    EXPECT_EQ(previous.frac_unknown, 0.0);
}

TEST(Quality, AnytimeMonotoneThroughDynamicUpdate) {
    // Quality is measured against the *final* graph; once the batch is
    // applied, quality must again improve monotonically to 1.
    Rng rng(2);
    const auto g = barabasi_albert(60, 2, rng);
    GrowthConfig gc;
    gc.num_new = 10;
    Rng brng(3);
    const auto batch = grow_batch(60, gc, brng);

    EngineConfig config;
    config.num_ranks = 4;
    config.ia_threads = 1;
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_rc_steps(1);

    RoundRobinPS strategy;
    engine.apply_addition(batch, strategy);

    DynamicGraph grown = g;
    grown.add_vertices(batch.num_new);
    for (const Edge& e : batch.edges) {
        grown.add_edge(e.u, e.v, e.weight);
    }
    const auto exact = exact_apsp(grown);

    auto previous = evaluate_quality(engine.full_distance_matrix(), exact);
    int steps = 0;
    while (engine.rc_step() && steps++ < 64) {
        const auto current = evaluate_quality(engine.full_distance_matrix(), exact);
        EXPECT_TRUE(quality_monotone(previous, current)) << "step " << steps;
        previous = current;
    }
    EXPECT_NEAR(previous.frac_exact, 1.0, 1e-12);
}

TEST(Quality, FullyDynamicCountsStalenessGrowthOnlyAsserts) {
    // A deletion can leave estimates that are finite for now-unreachable
    // pairs (stale_finite) or below the new true distance (stale_low).
    // Under the historical GrowthOnly contract both are programming errors;
    // under FullyDynamic they are counted and excluded from frac_exact.
    const Weight inf = kInfinity;
    const std::vector<std::vector<Weight>> approx{
        {0, 1, 2}, {1, 0, 1}, {2, 1, 0}};
    const std::vector<std::vector<Weight>> exact{
        {0, 1, inf}, {1, 0, inf}, {inf, inf, 0}};

    EXPECT_DEATH(evaluate_quality(approx, exact),
                 "estimate finite where exact is infinite");
    const auto q = evaluate_quality(approx, exact, QualityContract::FullyDynamic);
    EXPECT_EQ(q.stale_finite, 4u);  // (0,2) (1,2) (2,0) (2,1)
    EXPECT_EQ(q.stale_low, 0u);
    EXPECT_EQ(q.frac_unknown, 0.0);
    EXPECT_NEAR(q.frac_exact, 5.0 / 9.0, 1e-12);  // stale is not exact

    // A weight increase (1 -> 5 on every edge) leaves stale-low estimates.
    const std::vector<std::vector<Weight>> raised{
        {0, 5, 10}, {5, 0, 5}, {10, 5, 0}};
    EXPECT_DEATH(evaluate_quality(approx, raised),
                 "estimate below the true distance");
    const auto low = evaluate_quality(approx, raised, QualityContract::FullyDynamic);
    EXPECT_EQ(low.stale_low, 6u);  // every off-diagonal entry
    EXPECT_EQ(low.stale_finite, 0u);
    EXPECT_NEAR(low.frac_exact, 3.0 / 9.0, 1e-12);  // only the diagonal
}

TEST(Quality, MonotoneBetweenStructuralUpdates) {
    // The relaxed fully-dynamic contract: measured against the *final*
    // graph, quality before the deletion may include stale entries (counted,
    // not asserted); once apply_deletion returns, the cascade has already
    // restored the upper-bound invariant, staleness stays zero, and quality
    // is again monotone to 1 across the remaining RC steps.
    Rng rng(4);
    const auto g = barabasi_albert(70, 2, rng);

    EngineConfig config;
    config.num_ranks = 4;
    config.ia_threads = 1;
    AnytimeEngine engine(g, config);
    engine.initialize();
    engine.run_to_quiescence();

    DynamicGraph shrunk = g;
    ShrinkBatch batch;
    std::size_t count = 0;
    for (const Edge& e : g.edges()) {
        if (count++ % 17 == 0) {
            batch.deletions.push_back(e);
            shrunk.remove_edge(e.u, e.v);
        }
    }
    const auto exact = exact_apsp(shrunk);

    // Pre-update state vs the final graph: stale, measurable, not fatal.
    const auto before = evaluate_quality(engine.full_distance_matrix(), exact,
                                         QualityContract::FullyDynamic);
    EXPECT_GT(before.stale_low + before.stale_finite, 0u);

    engine.apply_deletion(batch);
    auto previous = evaluate_quality(engine.full_distance_matrix(), exact,
                                     QualityContract::FullyDynamic);
    EXPECT_EQ(previous.stale_low, 0u);
    EXPECT_EQ(previous.stale_finite, 0u);
    // Note: no quality_monotone(before, previous) — invalidation turns
    // stale entries unknown, so quality may legitimately *drop* at the
    // structural update itself. Monotonicity restarts here.
    int steps = 0;
    while (engine.rc_step() && steps++ < 64) {
        const auto current = evaluate_quality(
            engine.full_distance_matrix(), exact, QualityContract::FullyDynamic);
        EXPECT_EQ(current.stale_low, 0u) << "step " << steps;
        EXPECT_EQ(current.stale_finite, 0u) << "step " << steps;
        EXPECT_TRUE(quality_monotone(previous, current)) << "step " << steps;
        previous = current;
    }
    EXPECT_NEAR(previous.frac_exact, 1.0, 1e-12);
    EXPECT_EQ(previous.frac_unknown, 0.0);
}

TEST(Quality, EmptyMatrices) {
    const auto q = evaluate_quality({}, {});
    EXPECT_EQ(q.frac_exact, 1.0);
}

}  // namespace
}  // namespace aa
