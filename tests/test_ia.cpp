// IA phase: per-rank Dijkstra over the local sub-graph (owned vertices plus
// external boundary bridges).
#include <gtest/gtest.h>

#include <numeric>

#include "core/closeness.hpp"
#include "core/ia.hpp"
#include "graph/generators.hpp"

namespace aa {
namespace {

struct RankFixture {
    LocalSubgraph sg;
    DistanceStore store;

    RankFixture(RankId rank, const DynamicGraph& g, const std::vector<RankId>& owners)
        : sg(rank, owners), store(g.num_vertices()) {
        for (const VertexId v : sg.local_vertices()) {
            store.add_row(v);
        }
        for (const Edge& e : g.edges()) {
            if (owners[e.u] == rank || owners[e.v] == rank) {
                sg.add_local_edge(e.u, e.v, e.weight);
            }
        }
    }
};

TEST(Ia, SingleRankEqualsExactApsp) {
    Rng rng(1);
    const auto g = barabasi_albert(50, 2, rng, WeightRange{1.0, 3.0});
    const std::vector<RankId> owners(50, 0);
    RankFixture rank(0, g, owners);
    ThreadPool pool(1);
    const double ops = ia_dijkstra_all(rank.sg, rank.store, pool);
    EXPECT_GT(ops, 0.0);

    const auto exact = exact_apsp(g);
    for (LocalId l = 0; l < 50; ++l) {
        for (VertexId t = 0; t < 50; ++t) {
            EXPECT_NEAR(rank.store.at(l, t), exact[l][t], 1e-9);
        }
    }
}

TEST(Ia, LocalDistancesAreUpperBoundsUnderPartition) {
    // With two ranks, local sub-graph distances can only overestimate the
    // true distances (paths may shortcut through the other rank).
    Rng rng(2);
    const auto g = barabasi_albert(60, 2, rng);
    std::vector<RankId> owners(60);
    for (VertexId v = 0; v < 60; ++v) {
        owners[v] = v % 2;
    }
    RankFixture rank(0, g, owners);
    ThreadPool pool(1);
    ia_dijkstra_all(rank.sg, rank.store, pool);

    const auto exact = exact_apsp(g);
    for (LocalId l = 0; l < rank.sg.num_local(); ++l) {
        const VertexId src = rank.sg.global_id(l);
        for (VertexId t = 0; t < 60; ++t) {
            if (rank.store.at(l, t) < kInfinity) {
                EXPECT_GE(rank.store.at(l, t), exact[src][t] - 1e-9);
            }
        }
    }
}

TEST(Ia, ReachesExternalBoundaryVertices) {
    // Path 0-1-2-3 split as {0,1} vs {2,3}: rank 0's sub-graph includes the
    // bridge vertex 2 through the cut edge 1-2, but not 3.
    DynamicGraph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    g.add_edge(2, 3, 1.0);
    const std::vector<RankId> owners{0, 0, 1, 1};
    RankFixture rank(0, g, owners);
    ThreadPool pool(1);
    ia_dijkstra_all(rank.sg, rank.store, pool);
    const LocalId l0 = rank.sg.local_id(0);
    EXPECT_NEAR(rank.store.at(l0, 1), 1.0, 1e-12);
    EXPECT_NEAR(rank.store.at(l0, 2), 2.0, 1e-12);
    EXPECT_GE(rank.store.at(l0, 3), kInfinity);  // not in G_p
}

TEST(Ia, SubsetSeedingOnlyTouchesRequestedRows) {
    DynamicGraph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    g.add_edge(2, 3, 1.0);
    const std::vector<RankId> owners(4, 0);
    RankFixture rank(0, g, owners);
    ThreadPool pool(1);
    const std::vector<LocalId> sources{rank.sg.local_id(2)};
    ia_dijkstra(rank.sg, rank.store, pool, sources, /*mark_prop=*/true);
    EXPECT_NEAR(rank.store.at(rank.sg.local_id(2), 0), 2.0, 1e-12);
    // Untouched row still fresh.
    EXPECT_GE(rank.store.at(rank.sg.local_id(0), 1), kInfinity);
    // mark_prop=true queues propagation on the seeded row.
    EXPECT_TRUE(rank.store.has_prop(rank.sg.local_id(2)));
}

TEST(Ia, FullIaSkipsPropMarks) {
    DynamicGraph g(3);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 1.0);
    const std::vector<RankId> owners(3, 0);
    RankFixture rank(0, g, owners);
    ThreadPool pool(1);
    ia_dijkstra_all(rank.sg, rank.store, pool);
    for (LocalId l = 0; l < 3; ++l) {
        EXPECT_FALSE(rank.store.has_prop(l));  // already at local fixpoint
        EXPECT_TRUE(rank.store.has_send(l));   // but everything must be shared
    }
}

TEST(Ia, MultithreadedMatchesSingleThreaded) {
    Rng rng(3);
    const auto g = barabasi_albert(80, 3, rng, WeightRange{1.0, 5.0});
    std::vector<RankId> owners(80, 0);

    RankFixture serial(0, g, owners);
    RankFixture parallel(0, g, owners);
    ThreadPool pool1(1);
    ThreadPool pool4(4);
    ia_dijkstra_all(serial.sg, serial.store, pool1);
    ia_dijkstra_all(parallel.sg, parallel.store, pool4);
    for (LocalId l = 0; l < 80; ++l) {
        for (VertexId t = 0; t < 80; ++t) {
            EXPECT_EQ(serial.store.at(l, t), parallel.store.at(l, t));
        }
    }
}

TEST(Ia, OpsCountDeterministic) {
    Rng rng(4);
    const auto g = barabasi_albert(60, 2, rng);
    const std::vector<RankId> owners(60, 0);
    RankFixture a(0, g, owners);
    RankFixture b(0, g, owners);
    ThreadPool pool1(1);
    ThreadPool pool3(3);
    const double ops_a = ia_dijkstra_all(a.sg, a.store, pool1);
    const double ops_b = ia_dijkstra_all(b.sg, b.store, pool3);
    EXPECT_EQ(ops_a, ops_b);  // thread count must not change counted work
}

TEST(Ia, EmptySourcesNoWork) {
    DynamicGraph g(3);
    g.add_edge(0, 1);
    const std::vector<RankId> owners(3, 0);
    RankFixture rank(0, g, owners);
    ThreadPool pool(1);
    EXPECT_EQ(ia_dijkstra(rank.sg, rank.store, pool, {}, false), 0.0);
}

}  // namespace
}  // namespace aa
