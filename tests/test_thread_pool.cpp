#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "runtime/thread_pool.hpp"

namespace aa {
namespace {

TEST(ThreadPool, InlineExecutionWhenNoWorkers) {
    ThreadPool pool(1);
    EXPECT_EQ(pool.num_threads(), 1u);
    std::vector<int> hits(10, 0);
    pool.parallel_for(0, 10, [&](std::size_t i) { hits[i] = 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
    ThreadPool pool(2);
    bool touched = false;
    pool.parallel_for(5, 5, [&](std::size_t) { touched = true; });
    pool.parallel_for(7, 3, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPool, NonZeroOffsetRange) {
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(20);
    pool.parallel_for(5, 15, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < 20; ++i) {
        EXPECT_EQ(hits[i].load(), (i >= 5 && i < 15) ? 1 : 0);
    }
}

TEST(ThreadPool, ReusableAcrossCalls) {
    ThreadPool pool(4);
    std::atomic<int> total{0};
    for (int round = 0; round < 50; ++round) {
        pool.parallel_for(0, 100, [&](std::size_t) { total.fetch_add(1); });
    }
    EXPECT_EQ(total.load(), 5000);
}

TEST(ThreadPool, MoreItemsThanThreads) {
    ThreadPool pool(2);
    std::atomic<long> sum{0};
    pool.parallel_for(0, 10000, [&](std::size_t i) {
        sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 10000L * 9999 / 2);
}

TEST(ThreadPool, FewerItemsThanThreads) {
    ThreadPool pool(8);
    std::atomic<int> count{0};
    pool.parallel_for(0, 3, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 3);
}

}  // namespace
}  // namespace aa
