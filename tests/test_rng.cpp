#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/rng.hpp"

namespace aa {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        equal += a() == b();
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, ZeroSeedIsValid) {
    Rng rng(0);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 100; ++i) {
        seen.insert(rng());
    }
    EXPECT_GT(seen.size(), 95u);  // not stuck
}

TEST(Rng, UniformRespectsBound) {
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.uniform(bound), bound);
        }
    }
}

TEST(Rng, UniformBoundOneIsAlwaysZero) {
    Rng rng(9);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(rng.uniform(1), 0u);
    }
}

TEST(Rng, Uniform01InRange) {
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.uniform01();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // crude uniformity check
}

TEST(Rng, UniformRange) {
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(2.5, 7.5);
        ASSERT_GE(x, 2.5);
        ASSERT_LT(x, 7.5);
    }
}

TEST(Rng, ChanceExtremes) {
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ShufflePreservesElements) {
    Rng rng(19);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto shuffled = v;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleActuallyPermutes) {
    Rng rng(23);
    std::vector<int> v(100);
    std::iota(v.begin(), v.end(), 0);
    auto shuffled = v;
    rng.shuffle(shuffled);
    EXPECT_NE(shuffled, v);
}

TEST(Rng, ForkProducesIndependentStream) {
    Rng parent(29);
    Rng child = parent.fork();
    // Child diverges from parent continuation.
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        equal += parent() == child();
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestoresSequence) {
    Rng rng(31);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 10; ++i) {
        first.push_back(rng());
    }
    rng.reseed(31);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(rng(), first[i]);
    }
}

}  // namespace
}  // namespace aa
